(* Benchmark and reproduction harness.

   Regenerates every table and figure of the paper's evaluation:
   - Tables 1-16 (aggregate ratio statistics over the factorial design);
   - Figure 3(a)/(b) (optimized vs non-optimized on-line heuristic);
   - the §5.3 scheduling-overhead comparison.

   Invoked as `main.exe perf [OUT.json]` it instead runs only the tracked
   solver benchmark (lib/experiments/perf.ml): times the exact/float
   solvers on the pinned corpus, writes BENCH_stretch.json (or OUT.json)
   and exits non-zero if the warm-started solver disagrees with a cold
   solve — the mode the CI perf smoke job runs.

   Invoked as `main.exe scale [OUT.json]` it runs the large-n scale
   experiment (lib/experiments/scale.ml): events/sec of the incremental
   priority schedulers, differentially checked against the legacy resort
   oracle, written as BENCH_scale.json.  GRIPPS_SCALE_SIZES (e.g.
   "1000") trims the size grid; exits non-zero on any divergence — the
   mode the CI scale smoke job runs.

   Invoked as `main.exe serve [OUT.json]` it streams GRIPPS_SERVE_JOBS
   Poisson jobs (default 10^6) through the crash-safe scheduler daemon
   with a GRIPPS_SERVE_MAXLIVE slot pool (default 4096), gates on the
   bounded-memory and drain guarantees, and writes BENCH_serve.json.

   Invoked as `main.exe federate [OUT.json]` it runs the federation-gap
   experiment (lib/experiments/federation.ml): stretch ratios of the
   sharded SRPT front-end vs the single-aggregate run, written as
   BENCH_federate.json, gated on the 1-shard degeneration invariant.

   Scale knobs (environment variables):
     GRIPPS_BENCH_INSTANCES   instances per configuration   (default 3)
     GRIPPS_BENCH_HORIZON     arrival window in seconds     (default 30)
     GRIPPS_BENCH_FIG_INST    instances per density point   (default 10)
     GRIPPS_BENCH_QUOTA      bechamel quota per timing test (default 0.5 s)
     GRIPPS_PERF_REPEATS      timed repetitions in perf mode (default 5)
     GRIPPS_JOBS              worker domains for the sweeps  (default 1;
                              results are identical at any value)

   The bechamel section registers one Test.make per table and figure
   (timing its aggregation + rendering from the measured sweep) and one
   per scheduler (timing a full simulated workload — the actual §5.3
   overhead experiment). *)

open Bechamel
open Bechamel.Toolkit
module E = Gripps_experiments
module W = Gripps_workload

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string v with Failure _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> (try float_of_string v with Failure _ -> default)
  | None -> default

let instances_per_config = env_int "GRIPPS_BENCH_INSTANCES" 3
let horizon = env_float "GRIPPS_BENCH_HORIZON" 30.0
let fig_instances = env_int "GRIPPS_BENCH_FIG_INST" 10
let quota = env_float "GRIPPS_BENCH_QUOTA" 0.5

(* ---- the sweep: run once, reused by all tables ----------------------- *)

(* Honors GRIPPS_JOBS; a Pool.sequential-equivalent when unset. *)
let pool = Gripps_parallel.Pool.create ()

let sweep_results =
  lazy
    (let progress k total = Printf.eprintf "\rsweep: job %d/%d   %!" k total in
     let r = E.Tables.sweep ~instances_per_config ~progress ~pool ~horizon () in
     Printf.eprintf "\n%!";
     r)

let figure_samples =
  lazy
    (let base =
       W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0 ~horizon ()
     in
     let progress k total = Printf.eprintf "\rfigure 3: density %d/%d   %!" k total in
     let r = E.Figures.sweep ~instances_per_density:fig_instances ~progress ~base () in
     Printf.eprintf "\n%!";
     r)

let overhead_entries = lazy (E.Overhead.measure ~instances:2 ~horizon ~pool ())

(* ---- reproduction output --------------------------------------------- *)

let print_reproduction () =
  let results = Lazy.force sweep_results in
  let all = E.Tables.all_tables results in
  List.iter
    (fun (n, t) -> Printf.printf "=== Table %d ===\n%s\n" n (E.Render.table t))
    all;
  Printf.printf "=== Ranking agreement with the published tables ===\n%s\n"
    (E.Paper_reference.render_comparison
       (List.map (fun (n, t) -> E.Paper_reference.compare_tables n t) all));
  let samples = Lazy.force figure_samples in
  Printf.printf "=== Figure 3(a) ===\n%s\n" (E.Render.figure3a samples);
  Printf.printf "=== Figure 3(b) ===\n%s\n" (E.Render.figure3b samples);
  Printf.printf "=== Section 5.3 overhead ===\n%s\n"
    (E.Render.overhead (Lazy.force overhead_entries));
  Printf.printf "%s\n" (E.Render.overhead_scaling (E.Overhead.scaling ()))

(* ---- bechamel timing tests -------------------------------------------- *)

let table_tests () =
  let results = Lazy.force sweep_results in
  List.map
    (fun (n, _) ->
      Test.make
        ~name:(Printf.sprintf "table%d" n)
        (Staged.stage (fun () ->
             ignore
               (E.Render.table
                  (match n with
                   | 1 -> E.Tables.table1 results
                   | 2 | 3 | 4 ->
                     E.Tables.by_sites results (List.nth [ 3; 10; 20 ] (n - 2))
                   | 5 | 6 | 7 | 8 | 9 | 10 ->
                     E.Tables.by_density results
                       (List.nth [ 0.75; 1.0; 1.25; 1.5; 2.0; 3.0 ] (n - 5))
                   | 11 | 12 | 13 ->
                     E.Tables.by_databases results (List.nth [ 3; 10; 20 ] (n - 11))
                   | _ ->
                     E.Tables.by_availability results
                       (List.nth [ 0.3; 0.6; 0.9 ] (n - 14)))))))
    (E.Tables.all_tables results)

let figure_tests () =
  let samples = Lazy.force figure_samples in
  [ Test.make ~name:"figure3a" (Staged.stage (fun () -> ignore (E.Render.figure3a samples)));
    Test.make ~name:"figure3b" (Staged.stage (fun () -> ignore (E.Render.figure3b samples))) ]

(* The real §5.3 content: wall time of each scheduler on a 3-cluster
   workload. *)
let scheduler_tests () =
  let c = W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0 ~horizon () in
  let inst = W.Generator.instance (Gripps_rng.Splitmix.create 53) c in
  List.map
    (fun s ->
      Test.make
        ~name:(Printf.sprintf "overhead:%s" s.Gripps_engine.Sim.name)
        (Staged.stage (fun () -> ignore (Gripps_engine.Sim.run ~horizon:1e9 s inst))))
    (E.Sched_registry.schedulers E.Sched_registry.paper_panel)

(* Fault-injection overhead: the same instance and scheduler fault-free
   and under a seeded outage trace, for both loss semantics.  Measures
   what the availability bookkeeping and the extra replans cost. *)
let fault_tests () =
  let module Sim = Gripps_engine.Sim in
  let module Fault = Gripps_engine.Fault in
  let c = W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0 ~horizon () in
  let inst = W.Generator.instance (Gripps_rng.Splitmix.create 53) c in
  let machines =
    Gripps_model.Platform.num_machines (Gripps_model.Instance.platform inst)
  in
  let faults =
    Fault.poisson
      (Gripps_rng.Splitmix.create 11)
      ~mtbf:(horizon /. 2.0) ~mttr:(horizon /. 10.0) ~machines ~until:horizon
  in
  let bench name ?faults ?loss s =
    Test.make ~name
      (Staged.stage (fun () -> ignore (Sim.run ~horizon:1e9 ?faults ?loss s inst)))
  in
  [ bench "faults:SWRPT-reliable" Gripps_sched.List_sched.swrpt;
    bench "faults:SWRPT-crash" ~faults ~loss:Fault.Crash Gripps_sched.List_sched.swrpt;
    bench "faults:SWRPT-pause" ~faults ~loss:Fault.Pause Gripps_sched.List_sched.swrpt;
    bench "faults:Online-reliable" Gripps_core.Online_lp.online;
    bench "faults:Online-crash" ~faults ~loss:Fault.Crash Gripps_core.Online_lp.online ]

(* Ablations for the design choices called out in DESIGN.md:
   - exact rational vs floating-point solver pipeline;
   - virtual-machine aggregation on vs off;
   - System (1) decided by max-flow vs by the from-scratch simplex. *)
let ablation_tests () =
  let module S = Gripps_core.Stretch_solver in
  let module Snapshot = Gripps_core.Snapshot in
  let module Q = Gripps_numeric.Rat in
  let open Gripps_model in
  let c =
    W.Config.make ~sites:10 ~databases:3 ~availability:0.9 ~density:1.5
      ~horizon:10.0 ()
  in
  let inst = W.Generator.instance (Gripps_rng.Splitmix.create 97) c in
  let snap = Snapshot.of_instance inst in
  let aggregated = snap.Snapshot.problem in
  let platform = Instance.platform inst in
  let raw =
    { S.now = Q.zero;
      jobs =
        Array.to_list (Instance.jobs inst)
        |> List.map (fun (j : Job.t) ->
               { S.jid = j.id; release = Q.of_float j.release;
                 size = Q.of_float j.size; remaining = Q.of_float j.size;
                 machines =
                   Platform.hosts_of platform j.databank
                   |> List.map (fun (m : Machine.t) -> m.id) });
      machines =
        Array.to_list (Platform.machines platform)
        |> List.map (fun (m : Machine.t) ->
               { S.mid = m.id; speed = Q.of_float m.speed }) }
  in
  (* Simplex-based System (1) feasibility on a small probe value. *)
  let module Qlp = Gripps_lp.Lp.Rat_lp in
  let lp_feasible p stretch =
    let jobs = Array.of_list p.S.jobs in
    let deadline ji = Q.add jobs.(ji).S.release (Q.mul stretch jobs.(ji).S.size) in
    let points =
      (p.S.now :: List.map (fun (j : S.job_spec) -> Q.max_rat p.S.now j.release) p.S.jobs)
      @ List.init (Array.length jobs) deadline
      |> List.filter (fun t -> Q.ge t p.S.now)
      |> List.sort_uniq Q.compare
      |> Array.of_list
    in
    let nints = max 0 (Array.length points - 1) in
    let m = Qlp.create () in
    let vars = Hashtbl.create 64 in
    Array.iteri
      (fun ji (j : S.job_spec) ->
        for t = 0 to nints - 1 do
          if Q.ge points.(t) (Q.max_rat p.S.now j.release)
             && Q.le points.(t + 1) (deadline ji)
          then
            List.iter
              (fun mid -> Hashtbl.replace vars (ji, t, mid) (Qlp.variable m "w"))
              j.machines
        done)
      jobs;
    Array.iteri
      (fun ji (j : S.job_spec) ->
        let mine =
          Hashtbl.fold
            (fun (ji', _, _) v acc -> if ji' = ji then Qlp.v v :: acc else acc)
            vars []
        in
        if mine <> [] then Qlp.eq m (Qlp.sum mine) (Qlp.const j.remaining))
      jobs;
    List.iter
      (fun (mach : S.machine_spec) ->
        for t = 0 to nints - 1 do
          let mine =
            Hashtbl.fold
              (fun (_, t', mid) v acc ->
                if t' = t && mid = mach.S.mid then Qlp.v v :: acc else acc)
              vars []
          in
          if mine <> [] then
            Qlp.le m (Qlp.sum mine)
              (Qlp.const (Q.mul (Q.sub points.(t + 1) points.(t)) mach.S.speed))
        done)
      p.S.machines;
    Qlp.set_objective m Qlp.Minimize (Qlp.const Q.zero);
    match Qlp.solve m with
    | Qlp.Optimal _ -> true
    | Qlp.Infeasible | Qlp.Unbounded -> false
  in
  let probe = S.optimal_max_stretch aggregated in
  [ Test.make ~name:"ablation:solver-exact"
      (Staged.stage (fun () -> ignore (S.optimal_max_stretch aggregated)));
    Test.make ~name:"ablation:solver-float"
      (Staged.stage (fun () -> ignore (S.optimal_max_stretch_float aggregated)));
    Test.make ~name:"ablation:aggregation-on"
      (Staged.stage (fun () -> ignore (S.optimal_max_stretch_float aggregated)));
    Test.make ~name:"ablation:aggregation-off"
      (Staged.stage (fun () -> ignore (S.optimal_max_stretch_float raw)));
    Test.make ~name:"ablation:system1-flow"
      (Staged.stage (fun () -> ignore (S.feasible aggregated ~stretch:probe)));
    Test.make ~name:"ablation:system1-simplex"
      (Staged.stage (fun () -> ignore (lp_feasible aggregated probe))) ]

let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 10) ()
  in
  let grouped = Test.make_grouped ~name:"gripps" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-28s %16s\n" "benchmark" "time/run";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let time =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%12.3f us" (t /. 1000.0)
        | Some [] | None -> "n/a"
      in
      Printf.printf "%-28s %16s\n" name time)
    (List.sort compare rows)

(* Tracked solver benchmark (CI smoke mode): corpus timings + warm/cold
   cross-check, written as BENCH_stretch.json. *)
let run_perf () =
  let out = if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_stretch.json" in
  let progress name = Printf.eprintf "perf: measuring %s...\n%!" name in
  (* The artifact always records a sequential and a parallel sweep leg;
     GRIPPS_JOBS > 1 widens the parallel one, otherwise it is 2 domains. *)
  let sweep_domains = max 2 (Gripps_parallel.Pool.domains pool) in
  let r = E.Perf.run ~sweep_domains ~progress () in
  print_string (E.Perf.render r);
  E.Perf.write_json ~path:out r;
  Printf.eprintf "perf: wrote %s\n%!" out;
  if not r.E.Perf.all_baseline_match then
    Printf.eprintf
      "perf: note: optimum differs from the recorded baseline (expected \
       when the platform's libm differs from the reference machine's)\n%!";
  if not r.E.Perf.all_cold_warm_match then begin
    Printf.eprintf
      "perf: error: warm-started solver disagrees with cold solve\n%!";
    exit 1
  end

(* Large-n scale benchmark (CI smoke mode): events/sec of the flat
   zero-allocation priority schedulers with the legacy-oracle
   differential gate, written as BENCH_scale.json.  GRIPPS_SCALE_SIZES
   trims the size grid (the CI smoke leg runs n=1000 only);
   GRIPPS_SCALE_REPEATS (default 1) takes the best of N timed runs per
   cell, the standard answer to wall-clock noise on a contended box.
   Optional hard gates, both off unless set:
     GRIPPS_SCALE_MIN_EVENTS_S   minimum events/s any cell may report
     GRIPPS_SCALE_MAX_MW_PER_EV  maximum minor-words-per-event any cell
                                 may allocate (steady state is 0; the
                                 residue is setup amortized over events)
   Any divergence from the oracle, or any gate violation, names the
   failing cells and exits non-zero. *)
let run_scale () =
  Gripps_engine.Gc_tune.throughput ();
  let out = if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_scale.json" in
  let sizes =
    match Sys.getenv_opt "GRIPPS_SCALE_SIZES" with
    | None -> E.Scale.default_sizes
    | Some v ->
      (try List.map int_of_string (String.split_on_char ',' v)
       with Failure _ -> E.Scale.default_sizes)
  in
  let min_events_s = env_float "GRIPPS_SCALE_MIN_EVENTS_S" 0.0 in
  let max_mw_per_ev = env_float "GRIPPS_SCALE_MAX_MW_PER_EV" infinity in
  let repeats = env_int "GRIPPS_SCALE_REPEATS" 1 in
  let progress k total = Printf.eprintf "\rscale: cell %d/%d%!" k total in
  let r = E.Scale.run ~sizes ~repeats ~pool ~progress ~seed:42 () in
  Printf.eprintf "\n%!";
  print_string (E.Scale.render r);
  E.Scale.write_json ~path:out r;
  Printf.eprintf "scale: wrote %s (gc: %s)\n%!" out
    (Gripps_engine.Gc_tune.describe ());
  let failed = ref false in
  if not r.E.Scale.identical then begin
    failed := true;
    List.iter
      (fun (n, s) ->
        Printf.eprintf
          "scale: error: n=%d %s: flat/incremental diverged from the resort \
           oracle\n%!"
          n s)
      (E.Scale.failing_cells r)
  end;
  List.iter
    (fun (e : E.Scale.entry) ->
      if e.E.Scale.events_per_s < min_events_s then begin
        failed := true;
        Printf.eprintf
          "scale: error: n=%d %s: %.0f events/s below the %.0f floor\n%!"
          e.E.Scale.n_target e.E.Scale.scheduler e.E.Scale.events_per_s
          min_events_s
      end;
      if e.E.Scale.mw_per_event > max_mw_per_ev then begin
        failed := true;
        Printf.eprintf
          "scale: error: n=%d %s: %.3f minor words/event above the %.3f cap\n%!"
          e.E.Scale.n_target e.E.Scale.scheduler e.E.Scale.mw_per_event
          max_mw_per_ev
      end)
    r.E.Scale.entries;
  if !failed then exit 1

(* Streaming daemon benchmark (CI smoke mode): pushes GRIPPS_SERVE_JOBS
   Poisson jobs (default 10^6) through the crash-safe daemon at ~90% of
   the platform's fluid capacity, with a GRIPPS_SERVE_MAXLIVE slot pool
   (default 4096) and Drop admission, journaling and checkpoints off.
   Gates on the memory bound (peak live <= max-live, peak queue <=
   queue-cap) and on draining; written as BENCH_serve.json. *)
let run_serve () =
  Gripps_engine.Gc_tune.throughput ();
  let module S = Gripps_service.Service in
  let out = if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_serve.json" in
  let n_jobs = env_int "GRIPPS_SERVE_JOBS" 1_000_000 in
  let max_live = env_int "GRIPPS_SERVE_MAXLIVE" 4096 in
  let queue_cap = max_live / 4 in
  let seed = 42 in
  let c =
    W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0
      ~horizon:60.0 ()
  in
  let real = W.Generator.platform (Gripps_rng.Splitmix.create seed) c in
  let platform = real.W.Generator.platform in
  let sizes = real.W.Generator.db_sizes in
  let mean_size =
    Array.fold_left ( +. ) 0.0 sizes /. float_of_int (Array.length sizes)
  in
  (* 90% utilization: arrivals almost saturate the fluid capacity, so the
     pool stays busy without the queue growing unboundedly. *)
  let rate =
    0.9 *. Gripps_model.Platform.total_speed platform /. mean_size
  in
  let cfg =
    S.config ~platform ~rule:S.Swrpt ~policy:S.Drop ~max_live ~queue_cap
      ~source_desc:(Printf.sprintf "bench:seed=%d:jobs=%d" seed n_jobs)
      ()
  in
  Printf.eprintf "serve: %d jobs, rate %.1f/s, max-live %d...\n%!" n_jobs rate
    max_live;
  let src = W.Source.poisson ~seed ~rate ~sizes ~jobs:n_jobs () in
  let t0 = Unix.gettimeofday () in
  let r = S.run cfg src in
  let wall = Unix.gettimeofday () -. t0 in
  let events_per_s = float_of_int r.S.events /. wall in
  let within_cap = r.S.peak_live <= max_live && r.S.peak_queue <= queue_cap in
  let drained = r.S.outcome = S.Drained in
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"jobs\": %d,\n  \"max_live\": %d,\n  \"queue_cap\": %d,\n" n_jobs
    max_live queue_cap;
  add "  \"rate\": %.3f,\n  \"wall_s\": %.3f,\n  \"events\": %d,\n" rate wall
    r.S.events;
  add "  \"events_per_s\": %.1f,\n  \"replans\": %d,\n  \"replan_p99_s\": %.6g,\n"
    events_per_s r.S.replans r.S.replan_p99_s;
  add "  \"completed\": %d,\n  \"admitted\": %d,\n  \"dropped\": %d,\n"
    r.S.metrics.S.completed r.S.admitted r.S.dropped;
  add "  \"peak_live\": %d,\n  \"peak_queue\": %d,\n" r.S.peak_live
    r.S.peak_queue;
  add "  \"max_stretch\": %.6f,\n  \"drained\": %b,\n  \"within_cap\": %b\n}\n"
    r.S.metrics.S.max_stretch drained within_cap;
  Gripps_obs.Fsio.write_atomic ~path:out (Buffer.contents buf);
  Printf.eprintf
    "serve: %d events in %.2fs (%.0f events/s), peak live %d/%d, peak queue \
     %d/%d, p99 replan %.2gs\n%!"
    r.S.events wall events_per_s r.S.peak_live max_live r.S.peak_queue
    queue_cap r.S.replan_p99_s;
  Printf.eprintf "serve: wrote %s\n%!" out;
  if not (within_cap && drained) then begin
    Printf.eprintf
      "serve: error: daemon %s — memory bound or drain guarantee violated\n%!"
      (if drained then "exceeded its slot or queue capacity"
       else "failed to drain the stream");
    exit 1
  end

(* Objective-evaluation micro-benchmark (CI smoke mode): times
   Metrics.eval per objective on a pinned completed run, differentially
   checks the new eval path against the classic accumulators and the
   record:false route against the recorded one, and re-asserts the flat
   event loop's zero-allocation steady state with metrics computed
   through eval (the record:false epilogue must stay allocation-free).
   Written as BENCH_objectives.json; any mismatch or allocation-budget
   violation exits non-zero. *)
let run_objectives () =
  let module M = Gripps_model.Metrics in
  let module Sim = Gripps_engine.Sim in
  let out =
    if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_objectives.json"
  in
  let repeats = env_int "GRIPPS_OBJ_REPEATS" 2000 in
  let c =
    W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.5
      ~horizon:60.0 ~users:4 ()
  in
  let inst = W.Generator.instance (Gripps_rng.Splitmix.create 42) c in
  let report = Sim.run_report ~horizon:1e9 Gripps_sched.List_sched.swrpt inst in
  let completion =
    Array.mapi
      (fun j c ->
        match c with Some t -> t | None -> raise (M.Incomplete j))
      report.Sim.schedule.Gripps_model.Schedule.completion
  in
  let objectives =
    [ M.Makespan; M.Max_flow; M.Sum_flow; M.Max_stretch; M.Sum_stretch;
      M.Lp_stretch 1.0; M.Lp_stretch 2.0; M.Lp_stretch 3.0;
      M.Lp_stretch infinity; M.Lp_flow 2.0; M.Per_user_max_stretch ]
  in
  let timings =
    List.map
      (fun o ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to repeats do
          ignore (Sys.opaque_identity (M.eval o inst ~completion))
        done;
        let ns =
          (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int repeats
        in
        (M.objective_name o, M.eval o inst ~completion, ns))
      objectives
  in
  let failed = ref false in
  let check name ok =
    if not ok then begin
      failed := true;
      Printf.eprintf "objectives: error: %s\n%!" name
    end
  in
  (* eval agrees with the classic accumulators bit for bit. *)
  let m = report.Sim.metrics in
  check "eval Max_stretch = metrics.max_stretch"
    (M.eval M.Max_stretch inst ~completion = m.M.max_stretch);
  check "eval (Lp_stretch 1) = metrics.sum_stretch"
    (M.eval (M.Lp_stretch 1.0) inst ~completion = m.M.sum_stretch);
  check "eval (Lp_stretch inf) = metrics.max_stretch"
    (M.eval (M.Lp_stretch infinity) inst ~completion = m.M.max_stretch);
  check "eval Makespan = metrics.makespan"
    (M.eval M.Makespan inst ~completion = m.M.makespan);
  (* The record:false route computes the same Metrics.t as the recorded
     one, through the same eval-based of_completion. *)
  let recorded =
    Sim.run_report_flat ~horizon:1e9 ~record:true
      Gripps_sched.List_sched.flat_swrpt inst
  in
  let unrecorded =
    Sim.run_report_flat ~horizon:1e9 ~record:false
      Gripps_sched.List_sched.flat_swrpt inst
  in
  check "record:false metrics = record:true metrics"
    (recorded.Sim.metrics = unrecorded.Sim.metrics);
  (* Zero-allocation steady state, unchanged with metrics via eval: same
     posture and budget as test/test_flat.ml — the epilogue's O(n) copy
     amortizes to ~2 words/event on this workload, so any per-event leak
     introduced by the eval path blows the 3.0 cap. *)
  let mw_per_event =
    Gripps_obs.Obs.with_level Gripps_obs.Obs.Counters (fun () ->
        let cfg =
          W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0
            ~horizon:50_000.0 ()
        in
        let big = W.Generator.instance (Gripps_rng.Splitmix.create 42) cfg in
        let run () =
          Sim.run_report_flat ~horizon:1e12 ~record:false
            Gripps_sched.List_sched.flat_swpt big
        in
        ignore (run ());
        let gc0 = Gc.minor_words () in
        let rep = run () in
        let dw = Gc.minor_words () -. gc0 in
        dw /. float_of_int rep.Sim.events)
  in
  check
    (Printf.sprintf
       "record:false steady state allocation-free (%.3f minor words/event, \
        cap 3.0)"
       mw_per_event)
    (mw_per_event <= 3.0);
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"repeats\": %d,\n  \"jobs\": %d,\n" repeats
    (Gripps_model.Instance.num_jobs inst);
  add "  \"mw_per_event\": %.3f,\n  \"ok\": %b,\n  \"objectives\": [\n"
    mw_per_event (not !failed);
  List.iteri
    (fun i (name, value, ns) ->
      add "    { \"objective\": %S, \"value\": %.6f, \"ns_per_eval\": %.1f }%s\n"
        name value ns
        (if i = List.length timings - 1 then "" else ","))
    timings;
  add "  ]\n}\n";
  Gripps_obs.Fsio.write_atomic ~path:out (Buffer.contents buf);
  Printf.printf "%-22s %14s %14s\n" "objective" "value" "ns/eval";
  List.iter
    (fun (name, value, ns) -> Printf.printf "%-22s %14.6f %14.1f\n" name value ns)
    timings;
  Printf.printf "record:false steady state: %.3f minor words/event (cap 3.0)\n"
    mw_per_event;
  Printf.eprintf "objectives: wrote %s\n%!" out;
  if !failed then exit 1

(* Federation benchmark (CI smoke mode): the federation-gap experiment —
   max-/sum-stretch ratios of the sharded SRPT front-end vs the
   single-aggregate run across the shard grid, written as
   BENCH_federate.json.  GRIPPS_FED_INSTANCES (default 5) sets the
   instances averaged per cell.  Gates on the degeneration invariant: a
   1-shard federation of the first instance must reproduce the plain
   run's metrics bit for bit; any drift exits non-zero. *)
let run_federate () =
  let module Fed = Gripps_federation.Federation in
  let module Sim = Gripps_engine.Sim in
  let out =
    if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_federate.json"
  in
  let instances = env_int "GRIPPS_FED_INSTANCES" 5 in
  let seed = 42 in
  let progress k total = Printf.eprintf "\rfederate: instance %d/%d%!" k total in
  let r = E.Federation.run ~pool ~progress ~seed ~instances () in
  Printf.eprintf "\n%!";
  print_string (E.Federation.render r);
  E.Federation.write_json ~path:out r;
  Printf.eprintf "federate: wrote %s\n%!" out;
  let sched =
    match E.Sched_registry.find_scheduler r.E.Federation.scheduler with
    | Some s -> s
    | None -> assert false
  in
  let inst =
    W.Generator.instance
      (Gripps_rng.Splitmix.create (seed + 1_000_003 * 0))
      r.E.Federation.config
  in
  let plain = (Sim.run_report sched inst).Sim.metrics in
  let one = (Fed.run ~shards:1 ~scheduler:sched inst).Fed.metrics in
  if compare plain one <> 0 then begin
    Printf.eprintf
      "federate: error: 1-shard federation diverged from the \
       single-aggregate run — this is a bug\n%!";
    exit 1
  end

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "perf" then run_perf ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "objectives" then
    run_objectives ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "scale" then run_scale ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "serve" then run_serve ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "federate" then
    run_federate ()
  else begin
    print_reproduction ();
    Printf.printf "=== bechamel timings ===\n%!";
    run_bechamel
      (table_tests () @ figure_tests () @ scheduler_tests () @ fault_tests ()
       @ ablation_tests ())
  end
