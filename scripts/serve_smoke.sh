#!/usr/bin/env bash
# Kill-and-resume smoke test for the streaming scheduler daemon.
#
# Runs the same workload twice: once uninterrupted (the reference), once
# SIGKILLed mid-run and then resumed from its last on-disk checkpoint.
# The resumed run must reproduce the reference bit for bit: the metric /
# admission / progress report lines, every rotated journal segment, and
# the final checkpoint file.
#
# Usage: scripts/serve_smoke.sh [CLI_BINARY] [OUT_DIR]
#
# Without OUT_DIR the run works in a mktemp directory that is removed on
# exit; pass an explicit OUT_DIR (CI does, to upload artifacts) to keep
# the outputs.
#
# Env:   GRIPPS_SMOKE_JOBS        workload size        (default 1000000)
#        GRIPPS_SMOKE_KILL_AFTER  seconds before kill  (default 1.5)
set -euo pipefail

CLI="${1:-_build/default/bin/gripps_cli.exe}"
if [ $# -ge 2 ]; then
  OUT="$2"
  rm -rf "$OUT"
else
  OUT="$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")"
  trap 'rm -rf "$OUT"' EXIT
fi
JOBS="${GRIPPS_SMOKE_JOBS:-1000000}"
KILL_AFTER="${GRIPPS_SMOKE_KILL_AFTER:-1.5}"

ARGS=(--seed 7 --n-jobs "$JOBS" --rate 1 --scheduler SWRPT --policy drop
      --max-live 256 --queue-cap 64 --checkpoint-every 5000)

mkdir -p "$OUT/ref/journal" "$OUT/killed/journal"

echo "serve-smoke: reference (uninterrupted) run..."
"$CLI" serve "${ARGS[@]}" --checkpoint "$OUT/ref/ck.bin" \
  --journal-dir "$OUT/ref/journal" > "$OUT/ref/report.txt"

echo "serve-smoke: victim run (SIGKILL after ${KILL_AFTER}s)..."
"$CLI" serve "${ARGS[@]}" --checkpoint "$OUT/killed/ck.bin" \
  --journal-dir "$OUT/killed/journal" > "$OUT/killed/first-attempt.txt" &
pid=$!
sleep "$KILL_AFTER"
if kill -9 "$pid" 2>/dev/null; then
  echo "serve-smoke: delivered SIGKILL to pid $pid"
else
  echo "serve-smoke: warning: run drained before the kill landed;" \
       "resuming from its final checkpoint (weaker, but still checked)"
fi
wait "$pid" 2>/dev/null || true

if [ ! -f "$OUT/killed/ck.bin" ]; then
  echo "serve-smoke: FAIL: no checkpoint on disk after the kill" >&2
  exit 1
fi

echo "serve-smoke: resuming from the checkpoint..."
"$CLI" serve "${ARGS[@]}" --checkpoint "$OUT/killed/ck.bin" \
  --journal-dir "$OUT/killed/journal" --resume > "$OUT/killed/report.txt"

# 1. Deterministic report lines (outcome, metrics, admission counters,
#    event/checkpoint/cursor progress) must match exactly.  The latency
#    line is wall-clock and excluded by construction.
grep -E '^(outcome|metrics|admission|progress)' "$OUT/ref/report.txt" \
  > "$OUT/ref/cmp.txt"
grep -E '^(outcome|metrics|admission|progress)' "$OUT/killed/report.txt" \
  > "$OUT/killed/cmp.txt"
if ! diff -u "$OUT/ref/cmp.txt" "$OUT/killed/cmp.txt"; then
  echo "serve-smoke: FAIL: resumed run diverged from the reference" >&2
  exit 1
fi

# 2. The rotated journal segments must be byte-identical.
if ! diff <(cat "$OUT/ref/journal/"*.jsonl) \
          <(cat "$OUT/killed/journal/"*.jsonl) > /dev/null; then
  echo "serve-smoke: FAIL: journal segments diverged" >&2
  exit 1
fi

# 3. So must the final checkpoints.
if ! cmp -s "$OUT/ref/ck.bin" "$OUT/killed/ck.bin"; then
  echo "serve-smoke: FAIL: final checkpoints differ" >&2
  exit 1
fi

echo "serve-smoke: PASS — resumed run is bit-identical to the reference"
