module Heap = Gripps_collections.Heap
module Vec = Gripps_collections.Vec

let test_heap_basic () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check int) "peek min" 1 (Heap.peek_exn h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "to_sorted_list non-destructive" 5 (Heap.length h)

let test_heap_exn () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "peek_exn" (Invalid_argument "Heap.peek_exn: empty heap")
    (fun () -> ignore (Heap.peek_exn h));
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_custom_order () =
  let h = Heap.of_list ~cmp:(fun a b -> Int.compare b a) [ 1; 5; 3 ] in
  Alcotest.(check int) "max-heap top" 5 (Heap.pop_exn h);
  Alcotest.(check int) "next" 3 (Heap.pop_exn h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck2.Gen.(list small_int)
    (fun l ->
      let h = Heap.of_list ~cmp:Int.compare l in
      Heap.to_sorted_list h = List.sort Int.compare l)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do Vec.push v (i * i) done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 0;
  Alcotest.(check int) "set" 0 (Vec.get v 7);
  Alcotest.(check (option int)) "pop" (Some (99 * 99)) (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 99))

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 4 (List.length !acc);
  Vec.clear v;
  Alcotest.(check bool) "clear" true (Vec.is_empty v)

let suite =
  ( "collections",
    [ Alcotest.test_case "heap basic" `Quick test_heap_basic;
      Alcotest.test_case "heap exceptions" `Quick test_heap_exn;
      Alcotest.test_case "heap custom order" `Quick test_heap_custom_order;
      QCheck_alcotest.to_alcotest prop_heap_sorts;
      Alcotest.test_case "vec basic" `Quick test_vec_basic;
      Alcotest.test_case "vec iter/fold" `Quick test_vec_iter_fold ] )
