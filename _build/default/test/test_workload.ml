(* Workload generation: configuration validation, platform realization
   invariants, and density calibration of the Poisson workloads. *)

open Gripps_model
module W = Gripps_workload
module Splitmix = Gripps_rng.Splitmix

let test_config_validation () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Config.make: non-positive sites" (fun () ->
      ignore (W.Config.make ~sites:0 ~databases:1 ~availability:0.5 ~density:1.0 ()));
  expect "Config.make: availability outside (0, 1]" (fun () ->
      ignore (W.Config.make ~sites:1 ~databases:1 ~availability:1.5 ~density:1.0 ()));
  expect "Config.make: non-positive density" (fun () ->
      ignore (W.Config.make ~sites:1 ~databases:1 ~availability:0.5 ~density:0.0 ()));
  expect "Config.make: degenerate size range" (fun () ->
      ignore
        (W.Config.make ~db_size_range:(5.0, 1.0) ~sites:1 ~databases:1
           ~availability:0.5 ~density:1.0 ()))

let test_paper_grid () =
  let grid = W.Config.paper_grid ~horizon:60.0 () in
  Alcotest.(check int) "162 configurations" 162 (List.length grid);
  (* All distinct. *)
  Alcotest.(check int) "no duplicates" 162
    (List.length (List.sort_uniq compare grid))

let test_platform_realization () =
  let c = W.Config.make ~sites:5 ~databases:4 ~availability:0.5 ~density:1.0 () in
  let rng = Splitmix.create 11 in
  for _ = 1 to 20 do
    let r = W.Generator.platform rng c in
    Alcotest.(check int) "sites" 5 (Platform.num_machines r.W.Generator.platform);
    Alcotest.(check int) "databanks" 4 (Platform.num_databanks r.W.Generator.platform);
    (* Every databank hosted somewhere (forced replica). *)
    for d = 0 to 3 do
      Alcotest.(check bool) "hosted" true
        (Platform.hosts_of r.W.Generator.platform d <> [])
    done;
    (* Cluster speeds are 10x a reference value. *)
    Array.iter
      (fun (m : Machine.t) ->
        let per_cpu = m.speed /. 10.0 in
        Alcotest.(check bool) "reference speed" true
          (Array.exists (fun s -> abs_float (s -. per_cpu) < 1e-9)
             c.W.Config.reference_speeds))
      (Platform.machines r.W.Generator.platform);
    (* Databank sizes within range. *)
    Array.iter
      (fun s -> Alcotest.(check bool) "size range" true (s >= 10.0 && s <= 1000.0))
      r.W.Generator.db_sizes
  done

let test_workload_density_calibration () =
  (* Expected total work ~= density x total speed x horizon. *)
  let c =
    W.Config.make ~sites:3 ~databases:3 ~availability:0.9 ~density:2.0 ~horizon:200.0 ()
  in
  let rng = Splitmix.create 5 in
  let reps = 40 in
  let ratio_sum = ref 0.0 in
  for _ = 1 to reps do
    let r = W.Generator.platform rng c in
    let jobs = W.Generator.jobs rng c r in
    let work = List.fold_left (fun acc (j : Job.t) -> acc +. j.size) 0.0 jobs in
    let cap = Platform.total_speed r.W.Generator.platform *. 200.0 in
    ratio_sum := !ratio_sum +. (work /. cap)
  done;
  let mean_ratio = !ratio_sum /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "mean load %.3f near density 2.0" mean_ratio)
    true
    (abs_float (mean_ratio -. 2.0) < 0.3)

let test_jobs_sorted_and_within_horizon () =
  let c = W.Config.make ~sites:2 ~databases:2 ~availability:0.8 ~density:1.0 ~horizon:50.0 () in
  let rng = Splitmix.create 3 in
  let r = W.Generator.platform rng c in
  let jobs = W.Generator.jobs rng c r in
  let rec sorted = function
    | (a : Job.t) :: (b : Job.t) :: rest -> a.release <= b.release && sorted (b :: rest)
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (sorted jobs);
  List.iter
    (fun (j : Job.t) ->
      Alcotest.(check bool) "release within horizon" true
        (j.release >= 0.0 && j.release < 50.0);
      Alcotest.(check bool) "size is its databank's size" true
        (abs_float (j.size -. r.W.Generator.db_sizes.(j.databank)) < 1e-9))
    jobs

let test_instance_deterministic () =
  let c = W.Config.default in
  let i1 = W.Generator.instance (Splitmix.create 99) c in
  let i2 = W.Generator.instance (Splitmix.create 99) c in
  Alcotest.(check int) "same job count" (Instance.num_jobs i1) (Instance.num_jobs i2);
  Array.iteri
    (fun k (j : Job.t) ->
      let j2 = Instance.job i2 k in
      Alcotest.(check (float 0.0)) "same release" j.release j2.Job.release;
      Alcotest.(check (float 0.0)) "same size" j.size j2.Job.size)
    (Instance.jobs i1)

let suite =
  ( "workload",
    [ Alcotest.test_case "config validation" `Quick test_config_validation;
      Alcotest.test_case "paper grid" `Quick test_paper_grid;
      Alcotest.test_case "platform realization" `Quick test_platform_realization;
      Alcotest.test_case "density calibration" `Quick test_workload_density_calibration;
      Alcotest.test_case "jobs sorted within horizon" `Quick
        test_jobs_sorted_and_within_horizon;
      Alcotest.test_case "deterministic generation" `Quick test_instance_deterministic ] )
