(* Bigint: unit tests on edge cases plus qcheck properties cross-checked
   against native int arithmetic and against decimal string round-trips. *)

module B = Gripps_numeric.Bigint

let b = B.of_int
let check_b msg expected actual = Alcotest.(check string) msg expected (B.to_string actual)

let test_constants () =
  check_b "zero" "0" B.zero;
  check_b "one" "1" B.one;
  check_b "minus_one" "-1" B.minus_one;
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  Alcotest.(check int) "sign one" 1 (B.sign B.one);
  Alcotest.(check int) "sign minus_one" (-1) (B.sign B.minus_one)

let test_of_int_extremes () =
  Alcotest.(check int) "max_int round-trip" max_int (B.to_int (b max_int));
  Alcotest.(check int) "min_int round-trip" min_int (B.to_int (b min_int));
  check_b "max_int string" (string_of_int max_int) (b max_int);
  check_b "min_int string" (string_of_int min_int) (b min_int);
  Alcotest.(check bool) "min_int fits" true (B.fits_int (b min_int));
  Alcotest.(check bool) "min_int - 1 does not fit" false
    (B.fits_int (B.pred (b min_int)))

let test_string_roundtrip () =
  let cases =
    [ "0"; "1"; "-1"; "999999999"; "1000000000"; "123456789012345678901234567890";
      "-98765432109876543210987654321"; "1073741824"; "1152921504606846976" ]
  in
  List.iter (fun s -> check_b s s (B.of_string s)) cases;
  check_b "leading plus" "42" (B.of_string "+42")

let test_string_invalid () =
  let bad s = Alcotest.check_raises s (Invalid_argument "Bigint.of_string: malformed input")
      (fun () -> ignore (B.of_string s)) in
  bad "12a3"; bad "-"; bad "1 2";
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (B.of_string ""))

let test_add_carry_chain () =
  (* 2^300 - 1 plus 1 carries across all limbs. *)
  let big = B.pred (B.shift_left B.one 300) in
  check_b "carry chain" (B.to_string (B.shift_left B.one 300)) (B.succ big)

let test_divmod_basic () =
  let q, r = B.divmod (b 17) (b 5) in
  check_b "17/5 q" "3" q;
  check_b "17/5 r" "2" r;
  let q, r = B.divmod (b (-17)) (b 5) in
  check_b "-17/5 q" "-3" q;
  check_b "-17/5 r" "-2" r;
  let q, r = B.divmod (b 17) (b (-5)) in
  check_b "17/-5 q" "-3" q;
  check_b "17/-5 r" "2" r;
  let q, r = B.divmod (b (-17)) (b (-5)) in
  check_b "-17/-5 q" "3" q;
  check_b "-17/-5 r" "-2" r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_ediv_rem () =
  let q, r = B.ediv_rem (b (-17)) (b 5) in
  check_b "ediv q" "-4" q;
  check_b "ediv r" "3" r;
  let q, r = B.ediv_rem (b (-17)) (b (-5)) in
  check_b "ediv neg divisor q" "4" q;
  check_b "ediv neg divisor r" "3" r

let test_divmod_knuth_addback () =
  (* A case exercising the multi-limb path with a large quotient digit. *)
  let u = B.of_string "340282366920938463463374607431768211456" (* 2^128 *) in
  let v = B.of_string "18446744073709551617" (* 2^64 + 1 *) in
  let q, r = B.divmod u v in
  check_b "knuth q" "18446744073709551615" q (* 2^64 - 1 *);
  check_b "knuth r" "1" r;
  (* Check u = q*v + r. *)
  Alcotest.(check bool) "reconstruct" true B.(equal u (add (mul q v) r))

let test_shift () =
  check_b "1 << 100" (B.to_string (B.pow B.two 100)) (B.shift_left B.one 100);
  check_b "(1<<100) >> 37" (B.to_string (B.pow B.two 63)) (B.shift_right (B.shift_left B.one 100) 37);
  check_b "5 >> 10" "0" (B.shift_right (b 5) 10);
  check_b "-8 >> 1" "-4" (B.shift_right (b (-8)) 1)

let test_pow () =
  check_b "10^30" "1000000000000000000000000000000" (B.pow (b 10) 30);
  check_b "x^0" "1" (B.pow (b 12345) 0);
  Alcotest.check_raises "neg exponent" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.two (-1)))

let test_gcd () =
  check_b "gcd 12 18" "6" (B.gcd (b 12) (b 18));
  check_b "gcd -12 18" "6" (B.gcd (b (-12)) (b 18));
  check_b "gcd 0 5" "5" (B.gcd B.zero (b 5));
  check_b "gcd 0 0" "0" (B.gcd B.zero B.zero);
  let a = B.mul (B.of_string "123456789123456789") (b 7919) in
  let c = B.mul (B.of_string "123456789123456789") (b 104729) in
  check_b "gcd large" "123456789123456789" (B.gcd a c)

let test_numbits () =
  Alcotest.(check int) "numbits 0" 0 (B.numbits B.zero);
  Alcotest.(check int) "numbits 1" 1 (B.numbits B.one);
  Alcotest.(check int) "numbits 2^100" 101 (B.numbits (B.pow B.two 100));
  Alcotest.(check int) "numbits 2^100-1" 100 (B.numbits (B.pred (B.pow B.two 100)))

let test_to_float () =
  Alcotest.(check (float 0.0)) "to_float small" 12345.0 (B.to_float (b 12345));
  Alcotest.(check (float 1e-9)) "to_float 2^80 relative" 1.0
    (B.to_float (B.pow B.two 80) /. 1.2089258196146292e24);
  Alcotest.(check (float 0.0)) "to_float neg" (-42.0) (B.to_float (b (-42)))

(* qcheck properties: small ints behave exactly like native ints. *)
let small_int = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

let prop_ring_matches_native =
  QCheck2.Test.make ~name:"bigint matches native int ring ops" ~count:500
    QCheck2.Gen.(triple small_int small_int small_int)
    (fun (x, y, z) ->
      let open B in
      to_int (add (b x) (b y)) = x + y
      && to_int (sub (b x) (b y)) = x - y
      && to_int (mul (b x) (b y)) = x * y
      && to_int (add (mul (b x) (b y)) (b z)) = (x * y) + z)

let prop_divmod_matches_native =
  QCheck2.Test.make ~name:"bigint divmod matches native" ~count:500
    QCheck2.Gen.(pair small_int small_int)
    (fun (x, y) ->
      QCheck2.assume (y <> 0);
      let q, r = B.divmod (b x) (b y) in
      B.to_int q = x / y && B.to_int r = x mod y)

(* Large-number properties via random decimal strings. *)
let digits_gen =
  QCheck2.Gen.(
    let* sign = oneofl [ ""; "-" ] in
    let* first = int_range 1 9 in
    let* rest = list_size (int_range 0 60) (int_range 0 9) in
    let body = String.concat "" (List.map string_of_int (first :: rest)) in
    return (sign ^ body))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"decimal string round-trip" ~count:300 digits_gen
    (fun s -> B.to_string (B.of_string s) = s)

let prop_divmod_reconstruct =
  QCheck2.Test.make ~name:"a = q*b + r with |r| < |b|" ~count:300
    QCheck2.Gen.(pair digits_gen digits_gen)
    (fun (sa, sb) ->
      let a = B.of_string sa and bb = B.of_string sb in
      QCheck2.assume (not (B.is_zero bb));
      let q, r = B.divmod a bb in
      B.equal a (B.add (B.mul q bb) r)
      && B.compare (B.abs r) (B.abs bb) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both arguments" ~count:200
    QCheck2.Gen.(pair digits_gen digits_gen)
    (fun (sa, sb) ->
      let a = B.of_string sa and bb = B.of_string sb in
      let g = B.gcd a bb in
      (not (B.is_zero g))
      && B.is_zero (B.rem a g)
      && B.is_zero (B.rem bb g))

let prop_mul_commutative_assoc =
  QCheck2.Test.make ~name:"mul commutative and associative (large)" ~count:200
    QCheck2.Gen.(triple digits_gen digits_gen digits_gen)
    (fun (sa, sb, sc) ->
      let a = B.of_string sa and bb = B.of_string sb and c = B.of_string sc in
      B.equal (B.mul a bb) (B.mul bb a)
      && B.equal (B.mul (B.mul a bb) c) (B.mul a (B.mul bb c)))

let prop_shift_is_pow2 =
  QCheck2.Test.make ~name:"shift_left = multiply by 2^n" ~count:200
    QCheck2.Gen.(pair digits_gen (int_range 0 120))
    (fun (sa, n) ->
      let a = B.of_string sa in
      B.equal (B.shift_left a n) (B.mul a (B.pow B.two n)))

let prop_compare_total_order =
  QCheck2.Test.make ~name:"compare consistent with sub sign" ~count:300
    QCheck2.Gen.(pair digits_gen digits_gen)
    (fun (sa, sb) ->
      let a = B.of_string sa and bb = B.of_string sb in
      let c = B.compare a bb in
      let s = B.sign (B.sub a bb) in
      (c > 0 && s > 0) || (c < 0 && s < 0) || (c = 0 && s = 0))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ring_matches_native; prop_divmod_matches_native; prop_string_roundtrip;
      prop_divmod_reconstruct; prop_gcd_divides; prop_mul_commutative_assoc;
      prop_shift_is_pow2; prop_compare_total_order ]

let suite =
  ( "bigint",
    [ Alcotest.test_case "constants" `Quick test_constants;
      Alcotest.test_case "of_int extremes" `Quick test_of_int_extremes;
      Alcotest.test_case "string round-trip" `Quick test_string_roundtrip;
      Alcotest.test_case "string invalid" `Quick test_string_invalid;
      Alcotest.test_case "add carry chain" `Quick test_add_carry_chain;
      Alcotest.test_case "divmod basic signs" `Quick test_divmod_basic;
      Alcotest.test_case "euclidean divmod" `Quick test_ediv_rem;
      Alcotest.test_case "knuth division multi-limb" `Quick test_divmod_knuth_addback;
      Alcotest.test_case "shifts" `Quick test_shift;
      Alcotest.test_case "pow" `Quick test_pow;
      Alcotest.test_case "gcd" `Quick test_gcd;
      Alcotest.test_case "numbits" `Quick test_numbits;
      Alcotest.test_case "to_float" `Quick test_to_float ]
    @ qcheck_cases )
