open Gripps_model

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let mk_job ?(id = 0) ?(release = 0.0) ?(size = 1.0) ?(databank = 0) () =
  Job.make ~id ~release ~size ~databank

let two_machine_platform () =
  (* M0 holds db 0 and 1; M1 holds db 1 only.  Speeds 2 and 3. *)
  Platform.make
    ~machines:
      [ Machine.make ~id:0 ~speed:2.0 ~databanks:[| true; true |];
        Machine.make ~id:1 ~speed:3.0 ~databanks:[| false; true |] ]
    ~num_databanks:2

let test_job_validation () =
  Alcotest.check_raises "negative release"
    (Invalid_argument "Job.make: negative release date") (fun () ->
      ignore (mk_job ~release:(-1.0) ()));
  Alcotest.check_raises "zero size" (Invalid_argument "Job.make: non-positive size")
    (fun () -> ignore (mk_job ~size:0.0 ()));
  Alcotest.check_raises "bad databank"
    (Invalid_argument "Job.make: negative databank index") (fun () ->
      ignore (mk_job ~databank:(-2) ()))

let test_stretch_weight () =
  Alcotest.(check (float 1e-12)) "w = 1/W" 0.25 (Job.stretch_weight (mk_job ~size:4.0 ()))

let test_machine () =
  let m = Machine.make ~id:3 ~speed:2.5 ~databanks:[| true; false |] in
  Alcotest.(check bool) "hosts 0" true (Machine.hosts m 0);
  Alcotest.(check bool) "hosts 1" false (Machine.hosts m 1);
  Alcotest.(check bool) "out of range" false (Machine.hosts m 5);
  Alcotest.check_raises "bad speed" (Invalid_argument "Machine.make: non-positive speed")
    (fun () -> ignore (Machine.make ~id:0 ~speed:0.0 ~databanks:[| true |]))

let test_platform_queries () =
  let p = two_machine_platform () in
  Alcotest.(check int) "machines" 2 (Platform.num_machines p);
  Alcotest.(check (float 1e-12)) "total speed" 5.0 (Platform.total_speed p);
  Alcotest.(check (float 1e-12)) "speed for db0" 2.0 (Platform.speed_for p 0);
  Alcotest.(check (float 1e-12)) "speed for db1" 5.0 (Platform.speed_for p 1);
  Alcotest.(check int) "hosts of db1" 2 (List.length (Platform.hosts_of p 1));
  Alcotest.(check bool) "can_run restricted" false
    (Platform.can_run p (mk_job ~databank:0 ()) (Platform.machine p 1))

let test_platform_validation () =
  Alcotest.check_raises "bad ids" (Invalid_argument "Platform.make: machine ids must be 0..m-1")
    (fun () ->
      ignore
        (Platform.make
           ~machines:[ Machine.make ~id:1 ~speed:1.0 ~databanks:[| true |] ]
           ~num_databanks:1));
  Alcotest.check_raises "db vector length"
    (Invalid_argument "Platform.make: databank vector length mismatch") (fun () ->
      ignore
        (Platform.make
           ~machines:[ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true |] ]
           ~num_databanks:2))

let test_instance_sorting () =
  let p = Platform.single ~speed:1.0 in
  let jobs =
    [ mk_job ~id:7 ~release:5.0 ~size:2.0 (); mk_job ~id:3 ~release:1.0 ~size:4.0 () ]
  in
  let inst = Instance.make ~platform:p ~jobs in
  Alcotest.(check int) "renumbered first" 0 (Instance.job inst 0).Job.id;
  Alcotest.(check (float 0.0)) "sorted by release" 1.0 (Instance.job inst 0).Job.release;
  Alcotest.(check (float 1e-12)) "delta" 2.0 (Instance.delta inst)

let test_instance_validation () =
  let p = two_machine_platform () in
  Alcotest.check_raises "db out of range"
    (Invalid_argument "Instance.make: job databank out of range") (fun () ->
      ignore (Instance.make ~platform:p ~jobs:[ mk_job ~databank:5 () ]))

let test_instance_unhosted_databank () =
  let p =
    Platform.make
      ~machines:[ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; false |] ]
      ~num_databanks:2
  in
  Alcotest.check_raises "hosted nowhere"
    (Invalid_argument "Instance.make: job databank hosted nowhere") (fun () ->
      ignore (Instance.make ~platform:p ~jobs:[ mk_job ~databank:1 () ]))

let test_ideal_time () =
  let p = two_machine_platform () in
  let inst =
    Instance.make ~platform:p
      ~jobs:[ mk_job ~size:10.0 ~databank:1 (); mk_job ~size:10.0 ~databank:0 () ]
  in
  Alcotest.(check (float 1e-12)) "db1 uses both machines" 2.0 (Instance.ideal_time inst 0);
  Alcotest.(check (float 1e-12)) "db0 uses machine 0 only" 5.0 (Instance.ideal_time inst 1)

(* Schedule validation. *)
let simple_schedule () =
  let p = Platform.single ~speed:2.0 in
  let inst = Instance.make ~platform:p ~jobs:[ mk_job ~size:4.0 () ] in
  let segments =
    [ { Schedule.start_time = 0.0; end_time = 2.0; shares = [ (0, [ (0, 1.0) ]) ] } ]
  in
  Schedule.make ~instance:inst ~segments ~completion:[| Some 2.0 |]

let test_schedule_valid () =
  let s = simple_schedule () in
  Alcotest.(check (list string)) "no violations" [] (Schedule.validate s);
  Alcotest.(check (float 1e-9)) "work" 4.0 (Schedule.work_received s 0);
  Alcotest.(check (float 1e-9)) "busy" 2.0 (Schedule.machine_busy_time s 0);
  Alcotest.(check bool) "completed" true (Schedule.all_completed s)

let test_schedule_catches_oversubscription () =
  let p = Platform.single ~speed:1.0 in
  let inst =
    Instance.make ~platform:p ~jobs:[ mk_job ~size:1.0 (); mk_job ~id:1 ~size:1.0 () ]
  in
  let segments =
    [ { Schedule.start_time = 0.0; end_time = 1.0;
        shares = [ (0, [ (0, 0.8); (1, 0.8) ]) ] } ]
  in
  let s = Schedule.make ~instance:inst ~segments ~completion:[| None; None |] in
  Alcotest.(check bool) "oversubscription detected" true
    (List.exists
       (fun e -> contains e "oversubscribed")
       (Schedule.validate s))


let test_schedule_catches_early_start () =
  let p = Platform.single ~speed:1.0 in
  let inst = Instance.make ~platform:p ~jobs:[ mk_job ~release:5.0 ~size:1.0 () ] in
  let segments =
    [ { Schedule.start_time = 0.0; end_time = 1.0; shares = [ (0, [ (0, 1.0) ]) ] } ]
  in
  let s = Schedule.make ~instance:inst ~segments ~completion:[| Some 1.0 |] in
  Alcotest.(check bool) "early start detected" true
    (Schedule.validate s
     |> List.exists (fun e -> contains e "before release"))

let test_schedule_catches_wrong_machine () =
  let p = two_machine_platform () in
  let inst = Instance.make ~platform:p ~jobs:[ mk_job ~size:1.0 ~databank:0 () ] in
  let segments =
    [ { Schedule.start_time = 0.0; end_time = 1.0; shares = [ (1, [ (0, 1.0) ]) ] } ]
  in
  let s = Schedule.make ~instance:inst ~segments ~completion:[| None |] in
  Alcotest.(check bool) "restricted availability detected" true
    (Schedule.validate s
     |> List.exists (fun e -> contains e "lacking databank"))

let test_metrics () =
  let p = Platform.single ~speed:1.0 in
  let inst =
    Instance.make ~platform:p
      ~jobs:[ mk_job ~release:0.0 ~size:2.0 (); mk_job ~id:1 ~release:1.0 ~size:1.0 () ]
  in
  (* FCFS on a unit-speed machine: C_0 = 2, C_1 = 3. *)
  let m = Metrics.of_completion inst ~completion:[| 2.0; 3.0 |] in
  Alcotest.(check (float 1e-12)) "makespan" 3.0 m.Metrics.makespan;
  Alcotest.(check (float 1e-12)) "max flow" 2.0 m.Metrics.max_flow;
  Alcotest.(check (float 1e-12)) "sum flow" 4.0 m.Metrics.sum_flow;
  (* Stretches: 2/2 = 1 and 2/1 = 2. *)
  Alcotest.(check (float 1e-12)) "max stretch" 2.0 m.Metrics.max_stretch;
  Alcotest.(check (float 1e-12)) "sum stretch" 3.0 m.Metrics.sum_stretch;
  Alcotest.(check (float 1e-12)) "slowdown 1" 1.0
    (Metrics.slowdown inst ~completion:[| 2.0; 3.0 |] 0)

let suite =
  ( "model",
    [ Alcotest.test_case "job validation" `Quick test_job_validation;
      Alcotest.test_case "stretch weight" `Quick test_stretch_weight;
      Alcotest.test_case "machine" `Quick test_machine;
      Alcotest.test_case "platform queries" `Quick test_platform_queries;
      Alcotest.test_case "platform validation" `Quick test_platform_validation;
      Alcotest.test_case "instance sorting" `Quick test_instance_sorting;
      Alcotest.test_case "instance validation" `Quick test_instance_validation;
      Alcotest.test_case "unhosted databank" `Quick test_instance_unhosted_databank;
      Alcotest.test_case "ideal time" `Quick test_ideal_time;
      Alcotest.test_case "schedule valid" `Quick test_schedule_valid;
      Alcotest.test_case "oversubscription" `Quick test_schedule_catches_oversubscription;
      Alcotest.test_case "early start" `Quick test_schedule_catches_early_start;
      Alcotest.test_case "wrong machine" `Quick test_schedule_catches_wrong_machine;
      Alcotest.test_case "metrics" `Quick test_metrics ] )

(* Pretty-printers: smoke (misnested Format boxes fail at runtime). *)
let test_printers_smoke () =
  let p = two_machine_platform () in
  let inst =
    Instance.make ~platform:p
      ~jobs:[ mk_job ~size:2.0 ~databank:1 (); mk_job ~id:1 ~release:1.0 ~databank:0 () ]
  in
  let s = Format.asprintf "%a" Instance.pp inst in
  Alcotest.(check bool) "instance pp" true (String.length s > 0);
  let m = Format.asprintf "%a" Machine.pp (Platform.machine p 0) in
  Alcotest.(check bool) "machine pp lists databanks" true (String.length m > 0);
  let j = Format.asprintf "%a" Job.pp (Instance.job inst 0) in
  Alcotest.(check bool) "job pp" true (String.length j > 0)

let test_gantt_contention_marker () =
  (* Two jobs share one machine evenly: no majority owner -> '#'. *)
  let p = Platform.single ~speed:1.0 in
  let inst =
    Instance.make ~platform:p ~jobs:[ mk_job ~size:1.0 (); mk_job ~id:1 ~size:1.0 () ]
  in
  let segments =
    [ { Schedule.start_time = 0.0; end_time = 2.0;
        shares = [ (0, [ (0, 0.5); (1, 0.5) ]) ] } ]
  in
  let s = Schedule.make ~instance:inst ~segments ~completion:[| Some 2.0; Some 2.0 |] in
  let txt = Gantt.render ~width:8 s in
  Alcotest.(check bool) "shared cells marked" true (String.contains txt '#')

let suite =
  ( fst suite,
    snd suite
    @ [ Alcotest.test_case "printers smoke" `Quick test_printers_smoke;
        Alcotest.test_case "gantt contention" `Quick test_gantt_contention_marker ] )
