(* Snapshot aggregation and plan realization.

   The key invariant: aggregating machines with identical databank
   signatures into virtual machines of summed speed is EXACT under the
   divisible fluid model — the optimal max-stretch is unchanged, and
   expanded commitments deliver exactly the aggregated work. *)

open Gripps_model
open Gripps_core
module Q = Gripps_numeric.Rat
module S = Stretch_solver

let mk_job ?(id = 0) ?(release = 0.0) ?(size = 1.0) ?(databank = 0) () =
  Job.make ~id ~release ~size ~databank

(* A platform with two pairs of identical machines plus one unique one. *)
let clustered_platform () =
  Platform.make
    ~machines:
      [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; false |];
        Machine.make ~id:1 ~speed:2.0 ~databanks:[| true; false |];
        Machine.make ~id:2 ~speed:1.5 ~databanks:[| true; true |];
        Machine.make ~id:3 ~speed:0.5 ~databanks:[| true; true |];
        Machine.make ~id:4 ~speed:3.0 ~databanks:[| false; true |] ]
    ~num_databanks:2

let test_aggregation_structure () =
  let inst =
    Instance.make ~platform:(clustered_platform ())
      ~jobs:[ mk_job ~databank:0 (); mk_job ~id:1 ~databank:1 () ]
  in
  let snap = Snapshot.of_instance inst in
  (* Three signatures: {db0}, {db0,db1}, {db1}. *)
  Alcotest.(check int) "three virtual machines" 3
    (List.length snap.Snapshot.problem.S.machines);
  (* Virtual ids are the smallest member id; speeds are summed. *)
  Alcotest.(check (list int)) "members of v0" [ 0; 1 ] (snap.Snapshot.members 0);
  Alcotest.(check (list int)) "members of v2" [ 2; 3 ] (snap.Snapshot.members 2);
  Alcotest.(check (list int)) "members of v4" [ 4 ] (snap.Snapshot.members 4);
  Alcotest.(check string) "speed of v0" "3" (Q.to_string (snap.Snapshot.vspeed 0));
  Alcotest.(check string) "speed of v2" "2" (Q.to_string (snap.Snapshot.vspeed 2))

(* Unaggregated reference problem built directly from the instance. *)
let raw_problem inst =
  let platform = Instance.platform inst in
  { S.now = Q.zero;
    jobs =
      Array.to_list (Instance.jobs inst)
      |> List.map (fun (j : Job.t) ->
             { S.jid = j.id; release = Q.of_float j.release;
               size = Q.of_float j.size; remaining = Q.of_float j.size;
               machines =
                 Platform.hosts_of platform j.databank
                 |> List.map (fun (m : Machine.t) -> m.id) });
    machines =
      Array.to_list (Platform.machines platform)
      |> List.map (fun (m : Machine.t) ->
             { S.mid = m.id; speed = Q.of_float m.speed }) }

let instance_gen =
  QCheck2.Gen.(
    let* ndb = int_range 1 3 in
    let* machines =
      list_size (int_range 2 5) (pair (int_range 1 4) (int_range 1 ((1 lsl ndb) - 1)))
    in
    let* jobs =
      list_size (int_range 1 5) (triple (int_range 0 6) (int_range 1 6) (int_range 0 (ndb - 1)))
    in
    return (ndb, machines, jobs))

let build_instance (ndb, machines, jobs) =
  let machines =
    List.mapi
      (fun i (speed, mask) ->
        Machine.make ~id:i ~speed:(float_of_int speed)
          ~databanks:(Array.init ndb (fun d -> mask land (1 lsl d) <> 0)))
      machines
  in
  let hosted =
    List.filter
      (fun d -> List.exists (fun (m : Machine.t) -> Machine.hosts m d) machines)
      (List.init ndb Fun.id)
  in
  match hosted with
  | [] -> None
  | _ ->
    let jobs =
      List.mapi
        (fun i (r, s, d) ->
          mk_job ~id:i ~release:(float_of_int r /. 2.0) ~size:(float_of_int s /. 2.0)
            ~databank:(List.nth hosted (d mod List.length hosted)) ())
        jobs
    in
    Some (Instance.make ~platform:(Platform.make ~machines ~num_databanks:ndb) ~jobs)

let prop_aggregation_preserves_optimum =
  QCheck2.Test.make
    ~name:"virtual-machine aggregation preserves the exact optimum" ~count:50
    instance_gen
    (fun spec ->
      match build_instance spec with
      | None -> true
      | Some inst ->
        let aggregated =
          S.optimal_max_stretch (Snapshot.of_instance inst).Snapshot.problem
        in
        let raw = S.optimal_max_stretch (raw_problem inst) in
        Q.equal aggregated raw)

let test_expand_commitments () =
  let inst =
    Instance.make ~platform:(clustered_platform ())
      ~jobs:[ mk_job ~size:6.0 ~databank:0 () ]
  in
  let snap = Snapshot.of_instance inst in
  let comms =
    [ (0, [ { Realize.start_ = 0.0; stop = 1.0; job = 0 } ]) ]
  in
  let expanded = Snapshot.expand_commitments snap comms in
  (* Virtual machine 0 = real machines 0 and 1: both get the window. *)
  Alcotest.(check int) "two real machines" 2 (List.length expanded);
  Alcotest.(check (list int)) "real ids" [ 0; 1 ]
    (List.sort Int.compare (List.map fst expanded))

(* Realize: policy ordering. *)
let two_interval_assignment () =
  (* Intervals [0,2] and [2,4] on machine 7 (speed 1); job 1 finishes on
     the machine in interval 0, job 2 spans both. *)
  { S.s_star = Q.one;
    intervals =
      [| { S.lo = Q.zero; hi = Q.of_int 2 }; { S.lo = Q.of_int 2; hi = Q.of_int 4 } |];
    work =
      [ (1, 0, 7, Q.one); (2, 0, 7, Q.one); (2, 1, 7, Q.one) ] }

let test_realize_terminal_first () =
  let a = two_interval_assignment () in
  let sizes = function 1 -> Q.of_int 5 | _ -> Q.one in
  let speeds _ = Q.one in
  match Realize.commitments a ~policy:Realize.Terminal_first ~sizes ~speeds with
  | [ (7, comms) ] ->
    (* In interval 0, job 1 is terminal on machine 7 (no later work) so it
       runs first even though its SWRPT key (1 x 5) is larger than job 2's
       remaining key. *)
    let order = List.map (fun (c : Realize.commitment) -> c.job) comms in
    Alcotest.(check (list int)) "terminal job first" [ 1; 2; 2 ] order;
    (match comms with
     | first :: _ ->
       Alcotest.(check (float 1e-9)) "starts at interval lo" 0.0 first.Realize.start_
     | [] -> Alcotest.fail "no commitments")
  | other ->
    Alcotest.failf "expected one machine, got %d" (List.length other)

let test_realize_by_completion_interval () =
  let a = two_interval_assignment () in
  let sizes = function 1 -> Q.of_int 5 | _ -> Q.one in
  let speeds _ = Q.one in
  match Realize.commitments a ~policy:Realize.By_completion_interval ~sizes ~speeds with
  | [ (7, comms) ] ->
    (* Job 1 completes in interval 0, job 2 in interval 1: EDF-like order
       puts job 1 first in interval 0. *)
    let order = List.map (fun (c : Realize.commitment) -> c.job) comms in
    Alcotest.(check (list int)) "completion-interval order" [ 1; 2; 2 ] order
  | other -> Alcotest.failf "expected one machine, got %d" (List.length other)

let test_completion_order () =
  let a = two_interval_assignment () in
  let sizes _ = Q.one in
  Alcotest.(check (list int)) "EGDF order" [ 1; 2 ]
    (Realize.completion_order a ~sizes)

let prop_float_assignment_within_windows =
  QCheck2.Test.make
    ~name:"float witness places work only inside release/deadline windows" ~count:50
    instance_gen
    (fun spec ->
      match build_instance spec with
      | None -> true
      | Some inst ->
        let snap = Snapshot.of_instance inst in
        let p = snap.Snapshot.problem in
        let a = S.solve_float ~refine:true p in
        List.for_all
          (fun (jid, t, _mid, _w) ->
            let j = List.find (fun (j : S.job_spec) -> j.S.jid = jid) p.S.jobs in
            let dl =
              Q.to_float (Q.add j.S.release (Q.mul a.S.s_star j.S.size))
            in
            let iv = a.S.intervals.(t) in
            Q.to_float iv.S.lo >= Q.to_float j.S.release -. 1e-6
            && Q.to_float iv.S.hi <= dl +. 1e-6)
          a.S.work)

let suite =
  ( "snapshot-realize",
    [ Alcotest.test_case "aggregation structure" `Quick test_aggregation_structure;
      QCheck_alcotest.to_alcotest prop_aggregation_preserves_optimum;
      Alcotest.test_case "expand commitments" `Quick test_expand_commitments;
      Alcotest.test_case "terminal-first policy" `Quick test_realize_terminal_first;
      Alcotest.test_case "completion-interval policy" `Quick
        test_realize_by_completion_interval;
      Alcotest.test_case "EGDF completion order" `Quick test_completion_order;
      QCheck_alcotest.to_alcotest prop_float_assignment_within_windows ] )

(* Regression: a job with microscopic remaining work must still drive the
   objective and receive service (with an aggregate-only tolerance its
   work was "forgiven" and the job starved until the plan drained). *)
let test_micro_residue_still_scheduled () =
  let q = Q.of_ints in
  let p =
    { S.now = Q.of_int 10;
      jobs =
        [ (* Small sliver of an early job — above the 1e-9-of-total
             negligibility threshold, so it must be served: deadline
             pressure is high. *)
          { S.jid = 0; release = Q.zero; size = Q.of_int 2;
            remaining = q 1 10_000; machines = [ 0 ] };
          (* A big fresh job dominating the total work. *)
          { S.jid = 1; release = Q.of_int 10; size = Q.of_int 1000;
            remaining = Q.of_int 1000; machines = [ 0 ] } ];
      machines = [ { S.mid = 0; speed = Q.one } ] }
  in
  let a = S.solve_float ~refine:true p in
  (* The sliver must appear in the witness... *)
  Alcotest.(check bool) "sliver scheduled" true
    (List.exists (fun (jid, _, _, _) -> jid = 0) a.S.work);
  (* ...and the objective must reflect its (tight) deadline:
     S* >= (now - r_0) / W_0 = 5. *)
  Alcotest.(check bool) "sliver drives the objective" true
    (Q.to_float a.S.s_star >= 5.0 -. 1e-6)

let test_gantt_render () =
  let inst =
    Instance.make ~platform:(Platform.uniform ~speeds:[ 1.0; 1.0 ])
      ~jobs:[ mk_job ~size:2.0 (); mk_job ~id:1 ~size:2.0 () ]
  in
  let segments =
    [ { Schedule.start_time = 0.0; end_time = 2.0;
        shares = [ (0, [ (0, 1.0) ]); (1, [ (1, 1.0) ]) ] } ]
  in
  let s = Schedule.make ~instance:inst ~segments ~completion:[| Some 2.0; Some 2.0 |] in
  let txt = Gantt.render ~width:10 s in
  let lines = String.split_on_char '\n' txt in
  Alcotest.(check bool) "machine rows present" true
    (List.exists (fun l -> String.length l > 4 && String.sub l 0 2 = "M0") lines
     && List.exists (fun l -> String.length l > 4 && String.sub l 0 2 = "M1") lines);
  (* Machine 0 runs job 0 throughout: its row is all '0'. *)
  let row0 = List.find (fun l -> String.length l > 4 && String.sub l 0 2 = "M0") lines in
  Alcotest.(check bool) "job digits rendered" true (String.contains row0 '0')

let extra_cases =
  [ Alcotest.test_case "micro-residue regression" `Quick test_micro_residue_still_scheduled;
    Alcotest.test_case "gantt render" `Quick test_gantt_render ]

let suite = (fst suite, snd suite @ extra_cases)
