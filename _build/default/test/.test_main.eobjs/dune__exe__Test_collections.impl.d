test/test_collections.ml: Alcotest Gripps_collections Int List QCheck2 QCheck_alcotest
