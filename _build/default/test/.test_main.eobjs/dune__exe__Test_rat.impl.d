test/test_rat.ml: Alcotest Gripps_numeric List QCheck2 QCheck_alcotest
