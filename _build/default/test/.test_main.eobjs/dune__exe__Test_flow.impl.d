test/test_flow.ml: Alcotest Array Gripps_flow Gripps_lp Gripps_numeric List QCheck2 QCheck_alcotest
