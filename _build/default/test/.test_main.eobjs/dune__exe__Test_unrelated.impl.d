test/test_unrelated.ml: Alcotest Edf Fun Gripps_core Gripps_numeric List Printf QCheck2 QCheck_alcotest Stretch_solver Unrelated
