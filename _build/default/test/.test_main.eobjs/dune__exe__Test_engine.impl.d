test/test_engine.ml: Alcotest Array Fun Gripps_engine Gripps_model Instance Job List Machine Platform QCheck2 QCheck_alcotest Schedule Sim
