test/test_rng.ml: Alcotest Array Float Fun Gripps_rng Int List
