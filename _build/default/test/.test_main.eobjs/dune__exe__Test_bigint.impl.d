test/test_bigint.ml: Alcotest Gripps_numeric List QCheck2 QCheck_alcotest String
