test/test_snapshot.ml: Alcotest Array Fun Gantt Gripps_core Gripps_model Gripps_numeric Instance Int Job List Machine Platform QCheck2 QCheck_alcotest Realize Schedule Snapshot Stretch_solver String
