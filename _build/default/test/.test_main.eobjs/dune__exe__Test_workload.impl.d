test/test_workload.ml: Alcotest Array Gripps_model Gripps_rng Gripps_workload Instance Job List Machine Platform Printf
