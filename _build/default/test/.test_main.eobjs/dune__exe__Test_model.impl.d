test/test_model.ml: Alcotest Format Gantt Gripps_model Instance Job List Machine Metrics Platform Schedule String
