test/test_sched.ml: Alcotest Float Fun Greedy Gripps_engine Gripps_model Gripps_sched Instance Job List List_sched Machine Metrics Platform QCheck2 QCheck_alcotest Schedule Sim
