test/test_lp.ml: Alcotest Array Gripps_lp Gripps_numeric List QCheck2 QCheck_alcotest
