(* The unrelated-machines LP solver (§4.3.1 in full generality) and the
   EDF uniprocessor feasibility checker, cross-checked against the flow
   solver on their common domain. *)

open Gripps_core
module Q = Gripps_numeric.Rat
module S = Stretch_solver
module U = Unrelated

let q = Q.of_ints

(* --- EDF ---------------------------------------------------------------- *)

let ejob r d w = { Edf.release = q r 1; deadline = q d 1; work = q w 1 }

let test_edf_basic () =
  Alcotest.(check bool) "empty" true (Edf.feasible []);
  Alcotest.(check bool) "single fits" true (Edf.feasible [ ejob 0 2 2 ]);
  Alcotest.(check bool) "single misses" false (Edf.feasible [ ejob 0 2 3 ]);
  (* Two jobs needing preemption: J1 (r=0, d=10, w=5), J2 (r=1, d=3, w=2). *)
  Alcotest.(check bool) "preemption required" true
    (Edf.feasible [ ejob 0 10 5; ejob 1 3 2 ]);
  (* Same but J2 too big. *)
  Alcotest.(check bool) "overload detected" false
    (Edf.feasible [ ejob 0 4 3; ejob 1 3 2 ]);
  Alcotest.(check bool) "zero work ignored" true
    (Edf.feasible [ { Edf.release = Q.zero; deadline = Q.zero; work = Q.zero } ]);
  Alcotest.check_raises "negative work" (Invalid_argument "Edf.feasible: negative work")
    (fun () -> ignore (Edf.feasible [ { (ejob 0 1 1) with Edf.work = q (-1) 1 } ]))

let test_edf_exact_boundary () =
  (* Total work exactly fills [0, 3]. *)
  Alcotest.(check bool) "tight fit" true (Edf.feasible [ ejob 0 3 1; ejob 0 3 2 ]);
  Alcotest.(check bool) "one epsilon over" false
    (Edf.feasible
       [ ejob 0 3 1;
         { Edf.release = Q.zero; deadline = q 3 1; work = Q.add (q 2 1) (q 1 1000) } ])

(* Property: on a unit-speed uniprocessor, the flow solver's feasibility
   equals EDF feasibility with deadlines d_j(F). *)
let uni_gen =
  QCheck2.Gen.(
    let* jobs =
      list_size (int_range 1 6) (pair (int_range 0 8) (int_range 1 8))
    in
    let* probe_num = int_range 1 8 in
    return (jobs, probe_num))

let uni_problem jobs =
  { S.now = Q.zero;
    jobs =
      List.mapi
        (fun i (r, w) ->
          { S.jid = i; release = Q.of_int r; size = Q.of_int w;
            remaining = Q.of_int w; machines = [ 0 ] })
        jobs;
    machines = [ { S.mid = 0; speed = Q.one } ] }

let prop_solver_matches_edf =
  QCheck2.Test.make ~name:"System (1) on one machine == EDF feasibility" ~count:150
    uni_gen
    (fun (jobs, probe_num) ->
      let p = uni_problem jobs in
      let f = q probe_num 2 in
      let edf_jobs =
        List.mapi
          (fun i (r, w) ->
            ignore i;
            { Edf.release = Q.of_int r;
              deadline = Q.add (Q.of_int r) (Q.mul f (Q.of_int w));
              work = Q.of_int w })
          jobs
      in
      S.feasible p ~stretch:f = Edf.feasible edf_jobs)

let prop_optimum_is_edf_boundary =
  QCheck2.Test.make ~name:"S* is the EDF feasibility boundary on one machine"
    ~count:80
    QCheck2.Gen.(list_size (int_range 1 5) (pair (int_range 0 8) (int_range 1 8)))
    (fun jobs ->
      let p = uni_problem jobs in
      let s = S.optimal_max_stretch p in
      let deadlines f =
        List.map
          (fun (r, w) ->
            { Edf.release = Q.of_int r;
              deadline = Q.add (Q.of_int r) (Q.mul f (Q.of_int w));
              work = Q.of_int w })
          jobs
      in
      let eps = q 1 1_000_000_000 in
      Edf.feasible (deadlines s)
      && ((Q.sign s = 0) || not (Edf.feasible (deadlines (Q.sub s eps)))))

(* --- Unrelated machines ------------------------------------------------- *)

let test_unrelated_single_machine () =
  (* One machine: identical to the uniprocessor case J0 (W=2), J1 (W=1,
     r=1): S* = 3/2. *)
  let p =
    { U.now = Q.zero;
      jobs =
        [ { U.jid = 0; release = Q.zero; weight_inv = q 2 1; fraction = Q.one;
            times = [ (0, q 2 1) ] };
          { U.jid = 1; release = Q.one; weight_inv = Q.one; fraction = Q.one;
            times = [ (0, Q.one) ] } ] }
  in
  Alcotest.(check string) "S* = 3/2" "3/2"
    (Q.to_string (U.optimal_max_weighted_flow p))

let test_unrelated_affinity () =
  (* Two machines; J0 is fast on M0 (time 1) and slow on M1 (time 10);
     J1 only runs on M0 (time 1).  Both released at 0, weight_inv = 1.
     Placing J1 then J0 on M0 sequentially gives max weighted flow 2; but
     the LP can split J0 across both machines concurrently with J1 on M0:
     F < 2 becomes reachable. *)
  let p =
    { U.now = Q.zero;
      jobs =
        [ { U.jid = 0; release = Q.zero; weight_inv = Q.one; fraction = Q.one;
            times = [ (0, Q.one); (1, q 10 1) ] };
          { U.jid = 1; release = Q.zero; weight_inv = Q.one; fraction = Q.one;
            times = [ (0, Q.one) ] } ] }
  in
  let s = U.optimal_max_weighted_flow p in
  Alcotest.(check bool)
    (Printf.sprintf "parallel split beats serial (S* = %s)" (Q.to_string s))
    true
    (Q.lt s (q 2 1));
  Alcotest.(check bool) "feasible at S*" true (U.feasible p ~objective:s);
  let eps = q 1 1_000_000 in
  Alcotest.(check bool) "infeasible below" false
    (U.feasible p ~objective:(Q.sub s eps))

let test_unrelated_validation () =
  Alcotest.check_raises "no machine"
    (Invalid_argument "Unrelated: pending job with no machine") (fun () ->
      ignore
        (U.optimal_max_weighted_flow
           { U.now = Q.zero;
             jobs =
               [ { U.jid = 0; release = Q.zero; weight_inv = Q.one;
                   fraction = Q.one; times = [] } ] }));
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Unrelated: fraction outside [0, 1]") (fun () ->
      ignore
        (U.feasible ~objective:Q.one
           { U.now = Q.zero;
             jobs =
               [ { U.jid = 0; release = Q.zero; weight_inv = Q.one;
                   fraction = q 3 2; times = [ (0, Q.one) ] } ] }))

(* Property: on uniform-with-restrictions instances the LP solver agrees
   exactly with the flow solver. *)
let restricted_gen =
  QCheck2.Gen.(
    let* nmach = int_range 1 3 in
    let* speeds = list_size (return nmach) (int_range 1 3) in
    let* jobs =
      list_size (int_range 1 4)
        (triple (int_range 0 6) (int_range 1 6) (int_range 1 ((1 lsl nmach) - 1)))
    in
    return (speeds, jobs))

let prop_unrelated_matches_flow_on_uniform =
  QCheck2.Test.make
    ~name:"unrelated LP == flow solver on uniform restricted instances" ~count:40
    restricted_gen
    (fun (speeds, jobs) ->
      let speeds = List.map Q.of_int speeds in
      let flow_problem =
        { S.now = Q.zero;
          jobs =
            List.mapi
              (fun i (r, w, mask) ->
                { S.jid = i; release = Q.of_int r; size = Q.of_int w;
                  remaining = Q.of_int w;
                  machines =
                    List.init (List.length speeds) Fun.id
                    |> List.filter (fun m -> mask land (1 lsl m) <> 0) })
              jobs;
          machines = List.mapi (fun m s -> { S.mid = m; speed = s }) speeds }
      in
      let lp_problem =
        { U.now = Q.zero;
          jobs =
            List.mapi
              (fun i (r, w, mask) ->
                { U.jid = i; release = Q.of_int r; weight_inv = Q.of_int w;
                  fraction = Q.one;
                  times =
                    List.mapi (fun m s -> (m, s)) speeds
                    |> List.filter_map (fun (m, s) ->
                           if mask land (1 lsl m) <> 0 then
                             (* p_{i,j} = W_j / speed_i *)
                             Some (m, Q.div (Q.of_int w) s)
                           else None) })
              jobs }
      in
      Q.equal
        (S.optimal_max_stretch flow_problem)
        (U.optimal_max_weighted_flow lp_problem))

let suite =
  ( "unrelated-edf",
    [ Alcotest.test_case "edf basic" `Quick test_edf_basic;
      Alcotest.test_case "edf exact boundary" `Quick test_edf_exact_boundary;
      QCheck_alcotest.to_alcotest prop_solver_matches_edf;
      QCheck_alcotest.to_alcotest prop_optimum_is_edf_boundary;
      Alcotest.test_case "unrelated single machine" `Quick test_unrelated_single_machine;
      Alcotest.test_case "unrelated affinity split" `Quick test_unrelated_affinity;
      Alcotest.test_case "unrelated validation" `Quick test_unrelated_validation;
      QCheck_alcotest.to_alcotest prop_unrelated_matches_flow_on_uniform ] )
