(* The paper's contribution: exact optimal max-stretch (milestones +
   parametric flow), System (2) refinement, Lemma 1 equivalence, on-line
   LP heuristics, Bender baselines, and the adversarial instances of
   Theorems 1 and 2. *)

open Gripps_model
open Gripps_engine
open Gripps_core
module Q = Gripps_numeric.Rat
module S = Stretch_solver

let q = Q.of_ints
let mk_job ?(id = 0) ?(release = 0.0) ?(size = 1.0) ?(databank = 0) () =
  Job.make ~id ~release ~size ~databank

let uni_machines = [ { S.mid = 0; speed = Q.one } ]

let jspec ?(release = Q.zero) ?rem ~size ~machines jid =
  { S.jid; release; size;
    remaining = Option.value ~default:size rem;
    machines }

(* --- solver unit tests ------------------------------------------------ *)

let test_single_job () =
  let p = { S.now = Q.zero; jobs = [ jspec ~size:(q 2 1) ~machines:[ 0 ] 0 ];
            machines = uni_machines } in
  Alcotest.(check string) "S* = 1" "1" (Q.to_string (S.optimal_max_stretch p))

let test_two_unit_jobs () =
  let p = { S.now = Q.zero;
            jobs = [ jspec ~size:Q.one ~machines:[ 0 ] 0;
                     jspec ~size:Q.one ~machines:[ 0 ] 1 ];
            machines = uni_machines } in
  Alcotest.(check string) "S* = 2" "2" (Q.to_string (S.optimal_max_stretch p))

let test_known_fraction () =
  (* J0 (W=2, r=0), J1 (W=1, r=1) on a unit machine: S* = 3/2. *)
  let p = { S.now = Q.zero;
            jobs = [ jspec ~size:(q 2 1) ~machines:[ 0 ] 0;
                     jspec ~release:Q.one ~size:Q.one ~machines:[ 0 ] 1 ];
            machines = uni_machines } in
  Alcotest.(check string) "S* = 3/2" "3/2" (Q.to_string (S.optimal_max_stretch p))

let test_restricted_machines () =
  let machines = [ { S.mid = 0; speed = Q.one }; { S.mid = 1; speed = Q.one } ] in
  let p = { S.now = Q.zero;
            jobs = [ jspec ~size:Q.one ~machines:[ 0 ] 0;
                     jspec ~size:Q.one ~machines:[ 1 ] 1 ];
            machines } in
  Alcotest.(check string) "independent machines: S* = 1" "1"
    (Q.to_string (S.optimal_max_stretch p))

let test_snapshot_semantics () =
  (* At now = 1 with J0 half done, J1 fresh: same optimum as the full
     off-line problem (1.5) because the past was spent optimally. *)
  let p = { S.now = Q.one;
            jobs = [ { S.jid = 0; release = Q.zero; size = q 2 1; remaining = Q.one;
                       machines = [ 0 ] };
                     jspec ~release:Q.one ~size:Q.one ~machines:[ 0 ] 1 ];
            machines = uni_machines } in
  Alcotest.(check string) "snapshot S* = 3/2" "3/2" (Q.to_string (S.optimal_max_stretch p))

let test_floor_respected () =
  let p = { S.now = Q.zero; jobs = [ jspec ~size:Q.one ~machines:[ 0 ] 0 ];
            machines = uni_machines } in
  Alcotest.(check string) "floor raises the optimum" "5"
    (Q.to_string (S.optimal_max_stretch ~floor:(q 5 1) p))

let test_empty_problem () =
  let p = { S.now = Q.zero; jobs = []; machines = uni_machines } in
  Alcotest.(check string) "no jobs: floor" "0" (Q.to_string (S.optimal_max_stretch p));
  let a = S.solve p in
  Alcotest.(check int) "no work" 0 (List.length a.S.work)

let test_validation () =
  Alcotest.check_raises "no machine" (Invalid_argument "Stretch_solver: no machines")
    (fun () ->
      ignore (S.optimal_max_stretch { S.now = Q.zero; jobs = []; machines = [] }));
  Alcotest.check_raises "orphan job"
    (Invalid_argument "Stretch_solver: pending job with no machine") (fun () ->
      ignore
        (S.optimal_max_stretch
           { S.now = Q.zero; jobs = [ jspec ~size:Q.one ~machines:[] 0 ];
             machines = uni_machines }))

let test_feasibility_boundary () =
  (* The defining property of exactness: feasible at S*, infeasible just
     below. *)
  let p = { S.now = Q.zero;
            jobs = [ jspec ~size:(q 2 1) ~machines:[ 0 ] 0;
                     jspec ~release:Q.one ~size:Q.one ~machines:[ 0 ] 1;
                     jspec ~release:(q 3 2) ~size:(q 1 2) ~machines:[ 0 ] 2 ];
            machines = uni_machines } in
  let s = S.optimal_max_stretch p in
  let eps = q 1 1_000_000_000 in
  Alcotest.(check bool) "feasible at S*" true (S.feasible p ~stretch:s);
  Alcotest.(check bool) "infeasible below S*" false
    (S.feasible p ~stretch:(Q.sub s eps))

(* Random solver properties. *)
let problem_gen =
  QCheck2.Gen.(
    let* njobs = int_range 1 6 in
    let* nmach = int_range 1 3 in
    let* speeds = list_size (return nmach) (int_range 1 4) in
    let* jobs =
      list_size (return njobs)
        (let* rel = int_range 0 8 in
         let* size = int_range 1 8 in
         let* mask = int_range 1 ((1 lsl nmach) - 1) in
         return (rel, size, mask))
    in
    return (speeds, jobs))

let build_problem (speeds, jobs) =
  let machines = List.mapi (fun i s -> { S.mid = i; speed = Q.of_int s }) speeds in
  let nmach = List.length speeds in
  let jobs =
    List.mapi
      (fun jid (rel, size, mask) ->
        let ms =
          List.filter (fun m -> mask land (1 lsl m) <> 0) (List.init nmach Fun.id)
        in
        jspec ~release:(Q.of_int rel) ~size:(Q.of_ints size 2) ~machines:ms jid)
      jobs
  in
  { S.now = Q.zero; jobs; machines }

let prop_boundary_exact =
  QCheck2.Test.make ~name:"S* is the exact feasibility boundary" ~count:80 problem_gen
    (fun spec ->
      let p = build_problem spec in
      let s = S.optimal_max_stretch p in
      let eps = q 1 1_000_000_000 in
      S.feasible p ~stretch:s
      && ((Q.sign s = 0) || not (S.feasible p ~stretch:(Q.sub s eps))))

let prop_float_close_to_exact =
  QCheck2.Test.make ~name:"float pipeline matches exact optimum" ~count:80 problem_gen
    (fun spec ->
      let p = build_problem spec in
      let s = Q.to_float (S.optimal_max_stretch p) in
      let sf = S.optimal_max_stretch_float p in
      abs_float (sf -. s) <= (1e-6 *. Float.max 1.0 s))

let check_assignment p (a : S.assignment) =
  (* Work conservation per job and capacity per (interval, machine). *)
  let by_job = Hashtbl.create 16 and by_cell = Hashtbl.create 16 in
  List.iter
    (fun (jid, t, mid, w) ->
      let add tbl k =
        Hashtbl.replace tbl k
          (Q.add w (Option.value ~default:Q.zero (Hashtbl.find_opt tbl k)))
      in
      add by_job jid;
      add by_cell (t, mid))
    a.S.work;
  List.for_all
    (fun (j : S.job_spec) ->
      Q.sign j.remaining = 0
      || Q.equal j.remaining
           (Option.value ~default:Q.zero (Hashtbl.find_opt by_job j.jid)))
    p.S.jobs
  && Hashtbl.fold
       (fun (t, mid) w ok ->
         let iv = a.S.intervals.(t) in
         let speed = (List.nth p.S.machines mid).S.speed in
         ok && Q.le w (Q.mul (Q.sub iv.S.hi iv.S.lo) speed))
       by_cell true

let prop_witness_valid =
  QCheck2.Test.make ~name:"solver witness conserves work within capacities" ~count:60
    problem_gen
    (fun spec ->
      let p = build_problem spec in
      check_assignment p (S.solve p) && check_assignment p (S.solve ~refine:true p))

let prop_refine_same_objective =
  QCheck2.Test.make ~name:"System (2) refinement keeps S*" ~count:60 problem_gen
    (fun spec ->
      let p = build_problem spec in
      Q.equal (S.solve p).S.s_star (S.solve ~refine:true p).S.s_star)

(* Cross-check System (1) feasibility against the exact-rational simplex
   LP on small instances: the flow formulation and the LP must agree. *)
module Qlp = Gripps_lp.Lp.Rat_lp

let lp_feasible p ~stretch =
  (* Variables: work w_{j,t,i}.  Intervals from the breakpoints at this
     stretch value. *)
  let jobs = Array.of_list p.S.jobs in
  let machines = Array.of_list p.S.machines in
  let deadline j = Q.add jobs.(j).S.release (Q.mul stretch jobs.(j).S.size) in
  let points =
    (p.S.now
     :: (Array.to_list jobs |> List.map (fun (j : S.job_spec) -> Q.max_rat p.S.now j.release)))
    @ List.init (Array.length jobs) deadline
    |> List.filter (fun t -> Q.ge t p.S.now)
    |> List.sort_uniq Q.compare
    |> Array.of_list
  in
  let nints = max 0 (Array.length points - 1) in
  let m = Qlp.create () in
  let vars = Hashtbl.create 64 in
  Array.iteri
    (fun ji (j : S.job_spec) ->
      for t = 0 to nints - 1 do
        if Q.ge points.(t) (Q.max_rat p.S.now j.release)
           && Q.le points.(t + 1) (deadline ji)
        then
          List.iter
            (fun mid -> Hashtbl.replace vars (ji, t, mid) (Qlp.variable m "w"))
            j.machines
      done)
    jobs;
  (* Demands. *)
  Array.iteri
    (fun ji (j : S.job_spec) ->
      let mine =
        Hashtbl.fold
          (fun (ji', _, _) v acc -> if ji' = ji then Qlp.v v :: acc else acc)
          vars []
      in
      if Q.sign j.remaining > 0 && mine = [] then Qlp.eq m (Qlp.const Q.one) (Qlp.const Q.zero)
      else Qlp.eq m (Qlp.sum mine) (Qlp.const j.remaining))
    jobs;
  (* Capacities. *)
  Array.iteri
    (fun mi (mach : S.machine_spec) ->
      for t = 0 to nints - 1 do
        let mine =
          Hashtbl.fold
            (fun (_, t', mid) v acc ->
              if t' = t && mid = mach.S.mid then Qlp.v v :: acc else acc)
            vars []
        in
        if mine <> [] then
          Qlp.le m (Qlp.sum mine)
            (Qlp.const (Q.mul (Q.sub points.(t + 1) points.(t)) mach.S.speed))
      done;
      ignore mi)
    machines;
  Qlp.set_objective m Qlp.Minimize (Qlp.const Q.zero);
  match Qlp.solve m with
  | Qlp.Optimal _ -> true
  | Qlp.Infeasible -> false
  | Qlp.Unbounded -> false

let prop_flow_matches_lp_system1 =
  QCheck2.Test.make ~name:"System (1) via flow agrees with exact LP" ~count:30
    QCheck2.Gen.(pair problem_gen (int_range 0 4))
    (fun (spec, probe) ->
      let p = build_problem spec in
      let s = S.optimal_max_stretch p in
      (* Probe feasibility at several multiples around S*. *)
      let factor = q (2 + probe) 4 (* 1/2 .. 3/2 *) in
      let stretch = Q.mul s factor in
      (* Deadlines before now make both sides trivially infeasible; the LP
         formulation above encodes that with an absent-variable guard. *)
      S.feasible p ~stretch = lp_feasible p ~stretch)

(* --- Lemma 1 equivalence ---------------------------------------------- *)

let test_equivalence_transform () =
  let platform = Platform.uniform ~speeds:[ 1.0; 3.0 ] in
  let inst =
    Instance.make ~platform
      ~jobs:[ mk_job ~size:4.0 (); mk_job ~id:1 ~release:1.0 ~size:2.0 () ]
  in
  Alcotest.(check bool) "uniform" true (Equivalence.is_uniform inst);
  let u = Equivalence.to_uniprocessor inst in
  Alcotest.(check int) "one machine" 1 (Platform.num_machines (Instance.platform u));
  Alcotest.(check (float 1e-12)) "aggregate speed" 4.0
    (Platform.total_speed (Instance.platform u))

let test_equivalence_rejects_restricted () =
  let platform =
    Platform.make
      ~machines:
        [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; false |];
          Machine.make ~id:1 ~speed:1.0 ~databanks:[| true; true |] ]
      ~num_databanks:2
  in
  let inst = Instance.make ~platform ~jobs:[ mk_job () ] in
  Alcotest.(check bool) "not uniform" false (Equivalence.is_uniform inst);
  Alcotest.check_raises "transform refuses"
    (Invalid_argument "Equivalence.to_uniprocessor: restricted availability")
    (fun () -> ignore (Equivalence.to_uniprocessor inst))

let prop_lemma1_equal_completions =
  (* Priority-list schedulers produce identical completion times on the
     uniform platform and on its equivalent uniprocessor. *)
  QCheck2.Test.make ~name:"Lemma 1: heuristic traces match on equivalent uniprocessor"
    ~count:50
    QCheck2.Gen.(
      let* speeds = list_size (int_range 1 3) (int_range 1 4) in
      let* jobs =
        list_size (int_range 1 6)
          (pair (int_range 0 8) (int_range 1 8))
      in
      return (speeds, jobs))
    (fun (speeds, jobs) ->
      let platform = Platform.uniform ~speeds:(List.map float_of_int speeds) in
      let inst =
        Instance.make ~platform
          ~jobs:
            (List.mapi
               (fun i (r, s) ->
                 mk_job ~id:i ~release:(float_of_int r) ~size:(float_of_int s) ())
               jobs)
      in
      let u = Equivalence.to_uniprocessor inst in
      List.for_all
        (fun sched ->
          let c1 = Sim.run ~horizon:1e7 sched inst in
          let c2 = Sim.run ~horizon:1e7 sched u in
          List.for_all
            (fun j ->
              abs_float (Schedule.completion_exn c1 j -. Schedule.completion_exn c2 j)
              < 1e-6)
            (List.init (Instance.num_jobs inst) Fun.id))
        [ Gripps_sched.List_sched.srpt; Gripps_sched.List_sched.swrpt;
          Gripps_sched.List_sched.fcfs ])

(* --- Offline and on-line heuristics in the simulator ------------------- *)

let restricted_instance () =
  let platform =
    Platform.make
      ~machines:
        [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; true |];
          Machine.make ~id:1 ~speed:2.0 ~databanks:[| false; true |] ]
      ~num_databanks:2
  in
  Instance.make ~platform
    ~jobs:
      [ mk_job ~size:6.0 ~databank:0 (); mk_job ~id:1 ~release:0.5 ~size:2.0 ~databank:1 ();
        mk_job ~id:2 ~release:1.0 ~size:1.0 ~databank:1 ();
        mk_job ~id:3 ~release:1.5 ~size:4.0 ~databank:0 ();
        mk_job ~id:4 ~release:2.0 ~size:0.5 ~databank:1 () ]

let test_offline_achieves_optimum () =
  let inst = restricted_instance () in
  let opt = Q.to_float (Offline.optimal_max_stretch inst) in
  let sched = Sim.run ~horizon:1e7 Offline.scheduler inst in
  Alcotest.(check (list string)) "valid" [] (Schedule.validate sched);
  let m = Metrics.of_schedule sched in
  Alcotest.(check bool) "max-stretch = S* (within fp)" true
    (abs_float (m.Metrics.max_stretch -. opt) < 1e-6)

let test_online_achieves_optimum_here () =
  (* On this instance the on-line heuristic attains the off-line optimum
     (as in the paper, it is near-optimal in the vast majority of runs). *)
  let inst = restricted_instance () in
  let opt = Q.to_float (Offline.optimal_max_stretch inst) in
  List.iter
    (fun s ->
      let m = Metrics.of_schedule (Sim.run ~horizon:1e7 s inst) in
      Alcotest.(check bool)
        (s.Sim.name ^ " hits optimum") true
        (m.Metrics.max_stretch < opt +. 1e-6))
    [ Online_lp.online; Online_lp.online_edf ]

let test_refined_improves_sum_stretch () =
  let inst = restricted_instance () in
  let sum s = (Metrics.of_schedule (Sim.run ~horizon:1e7 s inst)).Metrics.sum_stretch in
  Alcotest.(check bool) "System (2) helps the sum-stretch" true
    (sum Offline.scheduler_refined < sum Offline.scheduler -. 1e-9)

let instance_gen =
  QCheck2.Gen.(
    let* nmach = int_range 1 3 in
    let* ndb = int_range 1 2 in
    let* machines =
      list_size (return nmach)
        (pair (int_range 1 3) (int_range 1 ((1 lsl ndb) - 1)))
    in
    let* jobs =
      list_size (int_range 1 6)
        (triple (int_range 0 8) (int_range 1 6) (int_range 0 (ndb - 1)))
    in
    return (ndb, machines, jobs))

let build_instance (ndb, machines, jobs) =
  let machines =
    List.mapi
      (fun i (speed, mask) ->
        Machine.make ~id:i ~speed:(float_of_int speed)
          ~databanks:(Array.init ndb (fun d -> mask land (1 lsl d) <> 0)))
      machines
  in
  (* Remap each job's databank to one hosted somewhere. *)
  let hosted =
    List.filter
      (fun d -> List.exists (fun (m : Machine.t) -> Machine.hosts m d) machines)
      (List.init ndb Fun.id)
  in
  match hosted with
  | [] -> None
  | _ ->
    let jobs =
      List.mapi
        (fun i (r, s, d) ->
          let db = List.nth hosted (d mod List.length hosted) in
          mk_job ~id:i ~release:(float_of_int r /. 2.0)
            ~size:(float_of_int s /. 2.0) ~databank:db ())
        jobs
    in
    Some (Instance.make ~platform:(Platform.make ~machines ~num_databanks:ndb) ~jobs)

let prop_offline_lower_bounds_heuristics =
  QCheck2.Test.make
    ~name:"exact S* lower-bounds every heuristic's realized max-stretch" ~count:40
    instance_gen
    (fun spec ->
      match build_instance spec with
      | None -> true
      | Some inst ->
        let opt = Q.to_float (Offline.optimal_max_stretch inst) in
        List.for_all
          (fun s ->
            let m = Metrics.of_schedule (Sim.run ~horizon:1e8 s inst) in
            m.Metrics.max_stretch >= opt -. 1e-6 *. Float.max 1.0 opt)
          [ Offline.scheduler; Online_lp.online; Online_lp.online_egdf;
            Gripps_sched.List_sched.srpt; Gripps_sched.List_sched.swrpt;
            Gripps_sched.Greedy.mct; Bender.bender02 ])

let prop_offline_realizes_optimum =
  QCheck2.Test.make ~name:"Offline realizes S* in simulation" ~count:40 instance_gen
    (fun spec ->
      match build_instance spec with
      | None -> true
      | Some inst ->
        let opt = Q.to_float (Offline.optimal_max_stretch inst) in
        let sched = Sim.run ~horizon:1e8 Offline.scheduler inst in
        Schedule.validate sched = []
        && (let m = Metrics.of_schedule sched in
            abs_float (m.Metrics.max_stretch -. opt) <= 1e-5 *. Float.max 1.0 opt))

let prop_online_schedulers_valid =
  QCheck2.Test.make ~name:"LP and Bender schedulers produce valid schedules" ~count:30
    instance_gen
    (fun spec ->
      match build_instance spec with
      | None -> true
      | Some inst ->
        List.for_all
          (fun s ->
            let sched = Sim.run ~horizon:1e8 s inst in
            Schedule.validate sched = [] && Schedule.all_completed sched)
          [ Online_lp.online; Online_lp.online_edf; Online_lp.online_egdf;
            Online_lp.online_non_optimized; Bender.bender98; Bender.bender02 ])

(* --- Theorem 1: starvation --------------------------------------------- *)

let test_starvation_instance_shape () =
  let inst = Adversary.starvation ~delta:8.0 ~k:5 in
  Alcotest.(check int) "job count" 6 (Instance.num_jobs inst);
  Alcotest.(check (float 0.0)) "delta" 8.0 (Instance.delta inst)

let test_starvation_of_srpt () =
  (* SRPT (sum-based behaviour) starves the long job: its stretch grows
     linearly with k while the optimal max-stretch stays bounded. *)
  let delta = 4.0 and k = 40 in
  let inst = Adversary.starvation ~delta ~k in
  let sched = Sim.run ~horizon:1e7 Gripps_sched.List_sched.srpt inst in
  let completion = Schedule.completion_exn sched 0 in
  (* SRPT serves every unit job first: J_delta finishes last. *)
  Alcotest.(check bool) "long job finishes last" true
    (completion >= float_of_int k);
  let m = Metrics.of_schedule sched in
  let opt = Q.to_float (Offline.optimal_max_stretch inst) in
  Alcotest.(check bool) "max-stretch far above optimal" true
    (m.Metrics.max_stretch > 2.0 *. opt)

(* --- Theorem 2: SWRPT lower bound -------------------------------------- *)

let test_swrpt_parameters () =
  let p = Adversary.swrpt_parameters ~epsilon:0.5 ~l:100 in
  Alcotest.(check (float 1e-12)) "alpha" (1.0 -. (0.5 /. 3.0)) p.Adversary.alpha;
  Alcotest.(check bool) "n >= 2" true (p.Adversary.n >= 2);
  Alcotest.(check bool) "k >= 1" true (p.Adversary.k >= 1);
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Adversary.swrpt_parameters: epsilon outside (0, 1]")
    (fun () -> ignore (Adversary.swrpt_parameters ~epsilon:0.0 ~l:1))

let test_theorem2_simulation () =
  (* Simulate SWRPT and SRPT on the adversarial instance: the sum-stretch
     ratio must exceed 2 - ε (for ε = 0.6 and a long unit tail). *)
  let epsilon = 0.6 and l = 1500 in
  let inst = Adversary.swrpt_instance ~epsilon ~l in
  let sum s = (Metrics.of_schedule (Sim.run ~horizon:1e12 s inst)).Metrics.sum_stretch in
  let ratio = sum Gripps_sched.List_sched.swrpt /. sum Gripps_sched.List_sched.srpt in
  Alcotest.(check bool)
    (Printf.sprintf "SWRPT/SRPT ratio %.4f > 2 - eps" ratio)
    true
    (ratio > 2.0 -. epsilon);
  (* And the analytic closed form agrees with the simulation. *)
  let predicted = Adversary.theorem2_lower_bound ~epsilon ~l in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.4f vs simulated %.4f" predicted ratio)
    true
    (abs_float (predicted -. ratio) < 0.05 *. predicted)

(* --- Bender pseudo-stretch --------------------------------------------- *)

let test_pseudo_stretch () =
  (* Short jobs are divided by sqrt(delta), long ones by delta. *)
  let v_short =
    Bender.pseudo_stretch ~delta:16.0 ~min_size:1.0 ~size:2.0 ~release:0.0 ~now:8.0
  in
  let v_long =
    Bender.pseudo_stretch ~delta:16.0 ~min_size:1.0 ~size:8.0 ~release:0.0 ~now:8.0
  in
  Alcotest.(check (float 1e-9)) "short: (8-0)/4" 2.0 v_short;
  Alcotest.(check (float 1e-9)) "long: (8-0)/16" 0.5 v_long

let suite =
  ( "core",
    [ Alcotest.test_case "solver: single job" `Quick test_single_job;
      Alcotest.test_case "solver: two unit jobs" `Quick test_two_unit_jobs;
      Alcotest.test_case "solver: known fraction" `Quick test_known_fraction;
      Alcotest.test_case "solver: restricted machines" `Quick test_restricted_machines;
      Alcotest.test_case "solver: snapshot semantics" `Quick test_snapshot_semantics;
      Alcotest.test_case "solver: floor" `Quick test_floor_respected;
      Alcotest.test_case "solver: empty problem" `Quick test_empty_problem;
      Alcotest.test_case "solver: validation" `Quick test_validation;
      Alcotest.test_case "solver: boundary exactness" `Quick test_feasibility_boundary;
      QCheck_alcotest.to_alcotest prop_boundary_exact;
      QCheck_alcotest.to_alcotest prop_float_close_to_exact;
      QCheck_alcotest.to_alcotest prop_witness_valid;
      QCheck_alcotest.to_alcotest prop_refine_same_objective;
      QCheck_alcotest.to_alcotest prop_flow_matches_lp_system1;
      Alcotest.test_case "Lemma 1 transform" `Quick test_equivalence_transform;
      Alcotest.test_case "Lemma 1 restricted rejected" `Quick
        test_equivalence_rejects_restricted;
      QCheck_alcotest.to_alcotest prop_lemma1_equal_completions;
      Alcotest.test_case "Offline achieves optimum" `Quick test_offline_achieves_optimum;
      Alcotest.test_case "Online achieves optimum here" `Quick
        test_online_achieves_optimum_here;
      Alcotest.test_case "System (2) improves sum-stretch" `Quick
        test_refined_improves_sum_stretch;
      QCheck_alcotest.to_alcotest prop_offline_lower_bounds_heuristics;
      QCheck_alcotest.to_alcotest prop_offline_realizes_optimum;
      QCheck_alcotest.to_alcotest prop_online_schedulers_valid;
      Alcotest.test_case "Theorem 1 instance" `Quick test_starvation_instance_shape;
      Alcotest.test_case "Theorem 1 starvation of SRPT" `Quick test_starvation_of_srpt;
      Alcotest.test_case "Theorem 2 parameters" `Quick test_swrpt_parameters;
      Alcotest.test_case "Theorem 2 ratio > 2 - eps" `Slow test_theorem2_simulation;
      Alcotest.test_case "Bender pseudo-stretch" `Quick test_pseudo_stretch ] )
