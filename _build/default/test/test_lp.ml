(* Simplex and modeling layer: textbook LPs with known optima, infeasible
   and unbounded detection, exact rational optima, and random-instance
   agreement between the float and exact-rational instantiations. *)

module Q = Gripps_numeric.Rat
module FS = Gripps_lp.Simplex.Make (Gripps_numeric.Field.Float)
module QS = Gripps_lp.Simplex.Make (Gripps_numeric.Rat)
module Flp = Gripps_lp.Lp.Float_lp
module Qlp = Gripps_lp.Lp.Rat_lp

let feps = 1e-7
let checkf msg expected actual = Alcotest.(check (float feps)) msg expected actual

let test_max_2d () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6). *)
  let p =
    { FS.num_vars = 2; maximize = true; objective = [| 3.0; 5.0 |];
      constraints =
        [ { FS.coeffs = [| 1.0; 0.0 |]; relation = FS.Le; rhs = 4.0 };
          { FS.coeffs = [| 0.0; 2.0 |]; relation = FS.Le; rhs = 12.0 };
          { FS.coeffs = [| 3.0; 2.0 |]; relation = FS.Le; rhs = 18.0 } ] }
  in
  match FS.solve p with
  | FS.Optimal { objective; solution } ->
    checkf "objective" 36.0 objective;
    checkf "x" 2.0 solution.(0);
    checkf "y" 6.0 solution.(1)
  | FS.Infeasible | FS.Unbounded -> Alcotest.fail "expected optimal"

let test_min_with_ge () =
  (* min 2x + 3y st x + y >= 4, x + 3y >= 6 -> optimum 9 at (3, 1). *)
  let p =
    { FS.num_vars = 2; maximize = false; objective = [| 2.0; 3.0 |];
      constraints =
        [ { FS.coeffs = [| 1.0; 1.0 |]; relation = FS.Ge; rhs = 4.0 };
          { FS.coeffs = [| 1.0; 3.0 |]; relation = FS.Ge; rhs = 6.0 } ] }
  in
  match FS.solve p with
  | FS.Optimal { objective; solution } ->
    checkf "objective" 9.0 objective;
    checkf "x" 3.0 solution.(0);
    checkf "y" 1.0 solution.(1)
  | FS.Infeasible | FS.Unbounded -> Alcotest.fail "expected optimal"

let test_equality () =
  (* max x + y st x + y = 5, x - y <= 1 -> 5, e.g. at (3, 2). *)
  let p =
    { FS.num_vars = 2; maximize = true; objective = [| 1.0; 1.0 |];
      constraints =
        [ { FS.coeffs = [| 1.0; 1.0 |]; relation = FS.Eq; rhs = 5.0 };
          { FS.coeffs = [| 1.0; -1.0 |]; relation = FS.Le; rhs = 1.0 } ] }
  in
  match FS.solve p with
  | FS.Optimal { objective; solution } ->
    checkf "objective" 5.0 objective;
    checkf "sum" 5.0 (solution.(0) +. solution.(1))
  | FS.Infeasible | FS.Unbounded -> Alcotest.fail "expected optimal"

let test_infeasible () =
  let p =
    { FS.num_vars = 1; maximize = true; objective = [| 1.0 |];
      constraints =
        [ { FS.coeffs = [| 1.0 |]; relation = FS.Le; rhs = 1.0 };
          { FS.coeffs = [| 1.0 |]; relation = FS.Ge; rhs = 2.0 } ] }
  in
  match FS.solve p with
  | FS.Infeasible -> ()
  | FS.Optimal _ | FS.Unbounded -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p =
    { FS.num_vars = 2; maximize = true; objective = [| 1.0; 0.0 |];
      constraints = [ { FS.coeffs = [| 0.0; 1.0 |]; relation = FS.Le; rhs = 1.0 } ] }
  in
  match FS.solve p with
  | FS.Unbounded -> ()
  | FS.Optimal _ | FS.Infeasible -> Alcotest.fail "expected unbounded"

let test_degenerate_no_cycle () =
  (* Beale's classical cycling example; Bland's rule must terminate. *)
  let p =
    { FS.num_vars = 4; maximize = false;
      objective = [| -0.75; 150.0; -0.02; 6.0 |];
      constraints =
        [ { FS.coeffs = [| 0.25; -60.0; -0.04; 9.0 |]; relation = FS.Le; rhs = 0.0 };
          { FS.coeffs = [| 0.5; -90.0; -0.02; 3.0 |]; relation = FS.Le; rhs = 0.0 };
          { FS.coeffs = [| 0.0; 0.0; 1.0; 0.0 |]; relation = FS.Le; rhs = 1.0 } ] }
  in
  match FS.solve p with
  | FS.Optimal { objective; _ } -> checkf "Beale optimum" (-0.05) objective
  | FS.Infeasible | FS.Unbounded -> Alcotest.fail "expected optimal"

let test_exact_rational () =
  (* max x + y st 3x + y <= 1, x + 3y <= 1: optimum exactly 1/2 at (1/4, 1/4). *)
  let q = Q.of_ints in
  let p =
    { QS.num_vars = 2; maximize = true; objective = [| q 1 1; q 1 1 |];
      constraints =
        [ { QS.coeffs = [| q 3 1; q 1 1 |]; relation = QS.Le; rhs = q 1 1 };
          { QS.coeffs = [| q 1 1; q 3 1 |]; relation = QS.Le; rhs = q 1 1 } ] }
  in
  match QS.solve p with
  | QS.Optimal { objective; solution } ->
    Alcotest.(check string) "objective exact" "1/2" (Q.to_string objective);
    Alcotest.(check string) "x exact" "1/4" (Q.to_string solution.(0));
    Alcotest.(check string) "y exact" "1/4" (Q.to_string solution.(1))
  | QS.Infeasible | QS.Unbounded -> Alcotest.fail "expected optimal"

let test_modeling_layer () =
  let m = Flp.create () in
  let x = Flp.variable m "x" and y = Flp.variable m "y" in
  Flp.le m Flp.(add (v x) (v y)) (Flp.const 10.0);
  Flp.le m (Flp.v x) (Flp.const 6.0);
  Flp.set_objective m Flp.Maximize Flp.(add (scale 2.0 (v x)) (v y));
  Alcotest.(check int) "vars" 2 (Flp.num_variables m);
  Alcotest.(check int) "constraints" 2 (Flp.num_constraints m);
  Alcotest.(check string) "name" "x" (Flp.name m x);
  match Flp.solve m with
  | Flp.Optimal s ->
    checkf "objective" 16.0 (Flp.objective_value s);
    checkf "x" 6.0 (Flp.value s x);
    checkf "y" 4.0 (Flp.value s y)
  | Flp.Infeasible | Flp.Unbounded -> Alcotest.fail "expected optimal"

let test_modeling_constant_in_objective () =
  let m = Flp.create () in
  let x = Flp.variable m "x" in
  Flp.le m (Flp.v x) (Flp.const 3.0);
  Flp.set_objective m Flp.Maximize Flp.(add (v x) (const 100.0));
  match Flp.solve m with
  | Flp.Optimal s -> checkf "objective with constant" 103.0 (Flp.objective_value s)
  | Flp.Infeasible | Flp.Unbounded -> Alcotest.fail "expected optimal"

(* Random LPs: max c.x st A x <= b with b > 0 (so x = 0 is feasible) plus
   upper bounds on every variable (so the optimum is bounded).  Properties:
   the solution is feasible, the optimum is >= the value at the origin, and
   the float and exact-rational solvers agree. *)
let random_lp_gen =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* mrows = int_range 1 4 in
    let coef = map (fun i -> float_of_int i /. 4.0) (int_range (-8) 12) in
    let pos = map (fun i -> float_of_int i /. 2.0) (int_range 1 10) in
    let* obj = array_size (return n) coef in
    let* rows = list_size (return mrows) (array_size (return n) coef) in
    let* rhs = list_size (return mrows) pos in
    let* ub = array_size (return n) pos in
    return (n, obj, rows, rhs, ub))

let build_float (n, obj, rows, rhs, ub) =
  let bound_rows =
    List.init n (fun i ->
        let c = Array.make n 0.0 in
        c.(i) <- 1.0;
        { FS.coeffs = c; relation = FS.Le; rhs = ub.(i) })
  in
  { FS.num_vars = n; maximize = true; objective = obj;
    constraints =
      List.map2 (fun c r -> { FS.coeffs = c; relation = FS.Le; rhs = r }) rows rhs
      @ bound_rows }

let build_rat (n, obj, rows, rhs, ub) =
  let qa = Array.map Q.of_float in
  let bound_rows =
    List.init n (fun i ->
        let c = Array.make n Q.zero in
        c.(i) <- Q.one;
        { QS.coeffs = c; relation = QS.Le; rhs = Q.of_float ub.(i) })
  in
  { QS.num_vars = n; maximize = true; objective = qa obj;
    constraints =
      List.map2
        (fun c r -> { QS.coeffs = qa c; relation = QS.Le; rhs = Q.of_float r })
        rows rhs
      @ bound_rows }

let feasible fp x =
  List.for_all
    (fun (c : FS.linear_constraint) ->
      let dot = ref 0.0 in
      Array.iteri (fun i v -> dot := !dot +. (v *. x.(i))) c.coeffs;
      !dot <= c.rhs +. 1e-6)
    fp.FS.constraints
  && Array.for_all (fun v -> v >= -1e-9) x

let prop_random_lp_agreement =
  QCheck2.Test.make ~name:"float and exact simplex agree on random LPs" ~count:150
    random_lp_gen
    (fun spec ->
      let fp = build_float spec and qp = build_rat spec in
      match (FS.solve fp, QS.solve qp) with
      | FS.Optimal f, QS.Optimal q ->
        feasible fp f.solution
        && abs_float (f.objective -. Q.to_float q.objective) < 1e-6
      | FS.Infeasible, QS.Infeasible | FS.Unbounded, QS.Unbounded -> true
      | (FS.Optimal _ | FS.Infeasible | FS.Unbounded), _ -> false)

let prop_beats_origin =
  QCheck2.Test.make ~name:"optimum dominates the feasible origin" ~count:150
    random_lp_gen
    (fun spec ->
      let fp = build_float spec in
      match FS.solve fp with
      | FS.Optimal { objective; _ } -> objective >= -1e-9
      | FS.Infeasible | FS.Unbounded -> false)

let test_exact_rational_modeling () =
  let m = Qlp.create () in
  let x = Qlp.variable m "x" in
  Qlp.eq m Qlp.(scale (Q.of_ints 3 1) (v x)) (Qlp.const Q.one);
  Qlp.set_objective m Qlp.Maximize (Qlp.v x);
  match Qlp.solve m with
  | Qlp.Optimal s ->
    Alcotest.(check string) "x = 1/3 exactly" "1/3" (Q.to_string (Qlp.value s x))
  | Qlp.Infeasible | Qlp.Unbounded -> Alcotest.fail "expected optimal"

let suite =
  ( "lp",
    [ Alcotest.test_case "max 2d textbook" `Quick test_max_2d;
      Alcotest.test_case "min with >= rows" `Quick test_min_with_ge;
      Alcotest.test_case "equality constraint" `Quick test_equality;
      Alcotest.test_case "infeasible" `Quick test_infeasible;
      Alcotest.test_case "unbounded" `Quick test_unbounded;
      Alcotest.test_case "Beale degeneracy (no cycling)" `Quick test_degenerate_no_cycle;
      Alcotest.test_case "exact rational optimum" `Quick test_exact_rational;
      Alcotest.test_case "modeling layer" `Quick test_modeling_layer;
      Alcotest.test_case "objective constant" `Quick test_modeling_constant_in_objective;
      Alcotest.test_case "rational modeling exactness" `Quick test_exact_rational_modeling;
      QCheck_alcotest.to_alcotest prop_random_lp_agreement;
      QCheck_alcotest.to_alcotest prop_beats_origin ] )
