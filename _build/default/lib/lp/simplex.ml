(* Two-phase full-tableau simplex with Bland's anti-cycling rule.

   Phase 1 minimizes the sum of artificial variables added to Eq/Ge rows
   (after making all right-hand sides non-negative); phase 2 minimizes the
   (possibly negated) user objective.  The tableau carries a reduced-cost
   row updated by the same pivot as the constraint rows, so the algorithm
   is a direct transcription of the textbook method and is exact whenever
   the field is exact. *)

module Make (F : Gripps_numeric.Field.ORDERED_FIELD) = struct
  type relation = Le | Ge | Eq

  type linear_constraint = {
    coeffs : F.t array;
    relation : relation;
    rhs : F.t;
  }

  type problem = {
    num_vars : int;
    maximize : bool;
    objective : F.t array;
    constraints : linear_constraint list;
  }

  type outcome =
    | Optimal of { objective : F.t; solution : F.t array }
    | Infeasible
    | Unbounded

  type tableau = {
    rows : F.t array array;  (* m rows of (ncols) coefficients *)
    rhs : F.t array;         (* m right-hand sides, kept >= 0 *)
    cost : F.t array;        (* reduced-cost row *)
    mutable cost_rhs : F.t;  (* negated current objective value *)
    basis : int array;       (* column basic in each row *)
    ncols : int;
  }

  let pivot t ~row ~col =
    let p = t.rows.(row).(col) in
    let inv = F.div F.one p in
    (* Scale the pivot row. *)
    for j = 0 to t.ncols - 1 do
      t.rows.(row).(j) <- F.mul t.rows.(row).(j) inv
    done;
    t.rhs.(row) <- F.mul t.rhs.(row) inv;
    (* Eliminate the pivot column from every other row. *)
    for i = 0 to Array.length t.rows - 1 do
      if i <> row then begin
        let factor = t.rows.(i).(col) in
        if F.sign factor <> 0 then begin
          for j = 0 to t.ncols - 1 do
            t.rows.(i).(j) <- F.sub t.rows.(i).(j) (F.mul factor t.rows.(row).(j))
          done;
          t.rhs.(i) <- F.sub t.rhs.(i) (F.mul factor t.rhs.(row))
        end
      end
    done;
    let factor = t.cost.(col) in
    if F.sign factor <> 0 then begin
      for j = 0 to t.ncols - 1 do
        t.cost.(j) <- F.sub t.cost.(j) (F.mul factor t.rows.(row).(j))
      done;
      t.cost_rhs <- F.sub t.cost_rhs (F.mul factor t.rhs.(row))
    end;
    t.basis.(row) <- col

  (* Bland's rule: entering column = smallest index with negative reduced
     cost; leaving row = min ratio, ties broken by smallest basis column. *)
  let rec iterate t ~allowed =
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && F.sign t.cost.(j) < 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let leaving = ref (-1) in
      let best = ref F.zero in
      for i = 0 to Array.length t.rows - 1 do
        if F.sign t.rows.(i).(col) > 0 then begin
          let ratio = F.div t.rhs.(i) t.rows.(i).(col) in
          let better =
            !leaving < 0
            || F.compare ratio !best < 0
            || (F.compare ratio !best = 0 && t.basis.(i) < t.basis.(!leaving))
          in
          if better then begin
            leaving := i;
            best := ratio
          end
        end
      done;
      if !leaving < 0 then `Unbounded
      else begin
        pivot t ~row:!leaving ~col;
        iterate t ~allowed
      end
    end

  let solve p =
    let n = p.num_vars in
    List.iter
      (fun c ->
        if Array.length c.coeffs <> n then
          invalid_arg "Simplex.solve: constraint arity mismatch")
      p.constraints;
    if Array.length p.objective <> n then
      invalid_arg "Simplex.solve: objective arity mismatch";
    let constraints = Array.of_list p.constraints in
    let m = Array.length constraints in
    (* Normalize rows so every rhs is >= 0. *)
    let norm =
      Array.map
        (fun (c : linear_constraint) ->
          if F.sign c.rhs < 0 then
            { coeffs = Array.map F.neg c.coeffs;
              relation = (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
              rhs = F.neg c.rhs }
          else c)
        constraints
    in
    (* Column layout: [0, n) structural; then one slack/surplus per Le/Ge
       row; then one artificial per Ge/Eq row. *)
    let nslack =
      Array.fold_left
        (fun acc c -> match c.relation with Le | Ge -> acc + 1 | Eq -> acc)
        0 norm
    in
    let nart =
      Array.fold_left
        (fun acc c -> match c.relation with Ge | Eq -> acc + 1 | Le -> acc)
        0 norm
    in
    let ncols = n + nslack + nart in
    let rows = Array.init m (fun _ -> Array.make ncols F.zero) in
    let rhs = Array.make m F.zero in
    let basis = Array.make m (-1) in
    let art_start = n + nslack in
    let slack = ref n and art = ref art_start in
    Array.iteri
      (fun i c ->
        Array.blit c.coeffs 0 rows.(i) 0 n;
        rhs.(i) <- c.rhs;
        (match c.relation with
         | Le ->
           rows.(i).(!slack) <- F.one;
           basis.(i) <- !slack;
           incr slack
         | Ge ->
           rows.(i).(!slack) <- F.neg F.one;
           incr slack;
           rows.(i).(!art) <- F.one;
           basis.(i) <- !art;
           incr art
         | Eq ->
           rows.(i).(!art) <- F.one;
           basis.(i) <- !art;
           incr art))
      norm;
    let t = { rows; rhs; cost = Array.make ncols F.zero; cost_rhs = F.zero; basis; ncols } in
    (* Phase 1: minimize the sum of artificials.  Reduced costs start as
       c_j - sum over rows with artificial basis of row coefficients. *)
    if nart > 0 then begin
      for j = art_start to ncols - 1 do t.cost.(j) <- F.one done;
      Array.iteri
        (fun i bi ->
          if bi >= art_start then begin
            for j = 0 to ncols - 1 do
              t.cost.(j) <- F.sub t.cost.(j) t.rows.(i).(j)
            done;
            t.cost_rhs <- F.sub t.cost_rhs t.rhs.(i)
          end)
        t.basis
    end;
    let phase1 = if nart = 0 then `Optimal else iterate t ~allowed:(fun _ -> true) in
    match phase1 with
    | `Unbounded ->
      (* Phase 1 objective is bounded below by 0; unboundedness cannot
         happen on a well-formed tableau. *)
      assert false
    | `Optimal ->
      if nart > 0 && F.sign (F.neg t.cost_rhs) > 0 then Infeasible
      else begin
        (* Drive any remaining (zero-valued) artificials out of the basis;
           a row with no structural pivot available is redundant and can be
           neutralized by keeping the artificial pinned at zero. *)
        Array.iteri
          (fun i bi ->
            if bi >= art_start then begin
              let found = ref (-1) in
              (try
                 for j = 0 to art_start - 1 do
                   if F.sign t.rows.(i).(j) <> 0 then begin
                     found := j;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if !found >= 0 then pivot t ~row:i ~col:!found
            end)
          t.basis;
        (* Phase 2: rebuild the cost row from the user objective (as a
           minimization) restricted to structural + slack columns. *)
        let minimize_obj =
          if p.maximize then Array.map F.neg p.objective else p.objective
        in
        Array.fill t.cost 0 ncols F.zero;
        t.cost_rhs <- F.zero;
        Array.blit minimize_obj 0 t.cost 0 n;
        Array.iteri
          (fun i bi ->
            if bi < n && F.sign minimize_obj.(bi) <> 0 then begin
              let factor = minimize_obj.(bi) in
              for j = 0 to ncols - 1 do
                t.cost.(j) <- F.sub t.cost.(j) (F.mul factor t.rows.(i).(j))
              done;
              t.cost_rhs <- F.sub t.cost_rhs (F.mul factor t.rhs.(i))
            end)
          t.basis;
        let allowed j = j < art_start in
        match iterate t ~allowed with
        | `Unbounded -> Unbounded
        | `Optimal ->
          let solution = Array.make n F.zero in
          Array.iteri
            (fun i bi -> if bi < n then solution.(bi) <- t.rhs.(i))
            t.basis;
          (* cost_rhs holds -(current minimized objective). *)
          let value = F.neg t.cost_rhs in
          let objective = if p.maximize then F.neg value else value in
          Optimal { objective; solution }
      end
end
