(** Two-phase dense simplex, functorized over an ordered field.

    The paper's Systems (1) and (2) are linear programs; no LP solver
    bindings are available offline, so this module implements one from
    scratch.  Instantiated at {!Gripps_numeric.Rat} it is an {e exact}
    solver (Bland's rule guarantees termination without cycling), which is
    what removes the floating-point milestone anomaly reported in §5.3 of
    the paper.  Instantiated at {!Gripps_numeric.Field.Float} it is a fast
    approximate solver used for cross-checks and examples. *)

module Make (F : Gripps_numeric.Field.ORDERED_FIELD) : sig
  type relation = Le | Ge | Eq

  type linear_constraint = {
    coeffs : F.t array;  (** dense row over the problem variables *)
    relation : relation;
    rhs : F.t;
  }

  type problem = {
    num_vars : int;  (** all variables are implicitly [>= 0] *)
    maximize : bool;
    objective : F.t array;
    constraints : linear_constraint list;
  }

  type outcome =
    | Optimal of { objective : F.t; solution : F.t array }
    | Infeasible
    | Unbounded

  val solve : problem -> outcome
  (** @raise Invalid_argument when a constraint row length differs from
      [num_vars]. *)
end
