(** Modeling layer over {!Simplex}: named non-negative variables and
    linear-expression combinators, so the paper's Systems (1) and (2) can
    be written down almost literally. *)

module Make (F : Gripps_numeric.Field.ORDERED_FIELD) : sig
  module S : module type of Simplex.Make (F)

  type model
  type var

  val create : unit -> model

  val variable : model -> string -> var
  (** Fresh non-negative variable; the name is only used for display.
      Calling twice with the same name creates two distinct variables. *)

  val num_variables : model -> int
  val name : model -> var -> string

  (** {1 Linear expressions} *)

  type expr

  val const : F.t -> expr
  val term : F.t -> var -> expr
  val v : var -> expr
  (** [v x] is [term F.one x]. *)

  val add : expr -> expr -> expr
  val sub : expr -> expr -> expr
  val scale : F.t -> expr -> expr
  val sum : expr list -> expr

  (** {1 Constraints and objective} *)

  val le : model -> expr -> expr -> unit
  val ge : model -> expr -> expr -> unit
  val eq : model -> expr -> expr -> unit
  val num_constraints : model -> int

  type objective_sense = Minimize | Maximize

  val set_objective : model -> objective_sense -> expr -> unit

  (** {1 Solving} *)

  type solution

  type outcome = Optimal of solution | Infeasible | Unbounded

  val solve : model -> outcome
  val objective_value : solution -> F.t
  val value : solution -> var -> F.t
end

module Float_lp : module type of Make (Gripps_numeric.Field.Float)
module Rat_lp : module type of Make (Gripps_numeric.Rat)
