lib/lp/simplex.ml: Array Gripps_numeric List
