lib/lp/simplex.mli: Gripps_numeric
