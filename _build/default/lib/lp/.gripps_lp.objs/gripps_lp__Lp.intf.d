lib/lp/lp.mli: Gripps_numeric Simplex
