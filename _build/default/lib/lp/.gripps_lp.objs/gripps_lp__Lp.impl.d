lib/lp/lp.ml: Array Gripps_numeric List Simplex
