module Make (F : Gripps_numeric.Field.ORDERED_FIELD) = struct
  module S = Simplex.Make (F)

  type var = int

  type expr = { constant : F.t; terms : (var * F.t) list }

  type objective_sense = Minimize | Maximize

  type model = {
    mutable names : string list;  (* reversed *)
    mutable nvars : int;
    mutable constraints : (expr * S.relation) list;  (* expr REL 0 *)
    mutable objective : expr;
    mutable sense : objective_sense;
  }

  let create () =
    { names = []; nvars = 0; constraints = [];
      objective = { constant = F.zero; terms = [] }; sense = Minimize }

  let variable m name =
    let id = m.nvars in
    m.nvars <- id + 1;
    m.names <- name :: m.names;
    id

  let num_variables m = m.nvars
  let name m v = List.nth m.names (m.nvars - 1 - v)

  let const c = { constant = c; terms = [] }
  let term c x = { constant = F.zero; terms = [ (x, c) ] }
  let v x = term F.one x

  let add a b = { constant = F.add a.constant b.constant; terms = a.terms @ b.terms }

  let scale k e =
    { constant = F.mul k e.constant;
      terms = List.map (fun (x, c) -> (x, F.mul k c)) e.terms }

  let sub a b = add a (scale (F.neg F.one) b)
  let sum es = List.fold_left add (const F.zero) es

  let relate m rel lhs rhs = m.constraints <- (sub lhs rhs, rel) :: m.constraints
  let le m lhs rhs = relate m S.Le lhs rhs
  let ge m lhs rhs = relate m S.Ge lhs rhs
  let eq m lhs rhs = relate m S.Eq lhs rhs
  let num_constraints m = List.length m.constraints

  let set_objective m sense e =
    m.sense <- sense;
    m.objective <- e

  type solution = { objective : F.t; values : F.t array }

  type outcome = Optimal of solution | Infeasible | Unbounded

  let dense n e =
    let row = Array.make n F.zero in
    List.iter (fun (x, c) -> row.(x) <- F.add row.(x) c) e.terms;
    row

  let solve m =
    let n = m.nvars in
    let constraints =
      List.rev_map
        (fun (e, rel) ->
          (* e REL 0  <=>  terms REL -constant *)
          { S.coeffs = dense n e; relation = rel; rhs = F.neg e.constant })
        m.constraints
    in
    let problem =
      { S.num_vars = n;
        maximize = (m.sense = Maximize);
        objective = dense n m.objective;
        constraints }
    in
    match S.solve problem with
    | S.Infeasible -> Infeasible
    | S.Unbounded -> Unbounded
    | S.Optimal { objective; solution } ->
      Optimal { objective = F.add objective m.objective.constant; values = solution }

  let objective_value s = s.objective
  let value s x = s.values.(x)
end

module Float_lp = Make (Gripps_numeric.Field.Float)
module Rat_lp = Make (Gripps_numeric.Rat)
