(** Priority rules from the uni-processor literature (paper §4).

    Each rule maps a job, as seen in the current simulator state, to a
    key; lower keys mean higher priority, with ties broken by job id
    (i.e. release order).  The multi-machine extension of these rules is
    the list-scheduling loop of §3.2, implemented in {!List_sched}. *)

open Gripps_engine

type rule = Sim.state -> int -> float

val fcfs : rule
(** First come first served — optimal for max-flow on one processor
    (Bender et al. 1998). *)

val spt : rule
(** Shortest processing time first (original size [W_j]). *)

val srpt : rule
(** Shortest remaining processing time — optimal for sum-flow (Baker
    1974), 2-competitive for sum-stretch (Muthukrishnan et al. 1999). *)

val swpt : rule
(** Smith's ratio rule, [p_j / w_j = W_j²]: same order as SPT for stretch
    weights, as noted in §4.2. *)

val swrpt : rule
(** Shortest weighted remaining processing time, key [ρ_t(j) × W_j]: the
    natural sum-stretch heuristic studied by the paper (Theorem 2 shows
    its competitive ratio is no better than 2). *)

val key_with_tiebreak : rule -> Sim.state -> int -> float * int
(** Pair the rule's key with the job id, for use as a total order. *)
