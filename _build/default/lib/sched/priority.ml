open Gripps_model
open Gripps_engine

type rule = Sim.state -> int -> float

let job st j = Instance.job (Sim.instance st) j

let fcfs st j = (job st j).Job.release
let spt st j = (job st j).Job.size
let srpt st j = Sim.remaining st j

let swpt st j =
  let w = (job st j).Job.size in
  w *. w

let swrpt st j = Sim.remaining st j *. (job st j).Job.size

let key_with_tiebreak rule st j = (rule st j, j)
