lib/sched/priority.ml: Gripps_engine Gripps_model Instance Job Sim
