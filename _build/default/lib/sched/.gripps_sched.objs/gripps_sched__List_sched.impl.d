lib/sched/list_sched.ml: Array Gripps_engine Gripps_model Instance Job List Machine Platform Priority Sim
