lib/sched/list_sched.mli: Gripps_engine Priority Sim
