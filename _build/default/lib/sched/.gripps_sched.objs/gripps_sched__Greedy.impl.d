lib/sched/greedy.ml: Array Float Gripps_engine Gripps_model Instance Job List Machine Platform Sim
