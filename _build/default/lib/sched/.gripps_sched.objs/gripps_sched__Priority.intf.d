lib/sched/priority.mli: Gripps_engine Sim
