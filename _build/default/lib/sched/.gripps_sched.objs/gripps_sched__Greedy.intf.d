lib/sched/greedy.mli: Gripps_engine Sim
