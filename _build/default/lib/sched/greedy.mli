(** The greedy baselines of the simulation study (paper §5.3).

    [MCT] ("minimum completion time") is effectively the policy of the
    production GriPPS scheduler: each job is placed, on arrival, on the
    one machine that would finish it earliest, queues are FIFO, and
    nothing already scheduled is ever changed (no preemption, no
    divisibility).

    [MCT-Div] exploits divisibility: on arrival the job is poured into
    the earliest idle capacity of {e all} machines holding its databank
    (the §3.2 distribution rule), again without touching prior
    commitments. *)

open Gripps_engine

val mct : Sim.scheduler
val mct_div : Sim.scheduler
