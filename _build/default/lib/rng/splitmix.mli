(** SplitMix64 pseudo-random number generator.

    Deterministic, splittable, seedable — every experiment in the paper
    reproduction is driven by an explicit seed so tables regenerate
    identically run after run. *)

type t

val create : int -> t
(** [create seed]. *)

val copy : t -> t

val split : t -> t
(** Derive an independent stream (used to give each simulated instance its
    own generator so instances are reproducible in isolation). *)

val next_int64 : t -> int64
(** Uniform over all 64-bit values. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
