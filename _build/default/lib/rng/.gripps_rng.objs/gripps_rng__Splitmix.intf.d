lib/rng/splitmix.mli:
