lib/rng/dist.mli: Splitmix
