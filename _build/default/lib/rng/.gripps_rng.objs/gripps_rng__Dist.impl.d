lib/rng/dist.ml: Array List Splitmix
