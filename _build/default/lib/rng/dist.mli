(** Random distributions over a {!Splitmix} stream. *)

val uniform : Splitmix.t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi).  @raise Invalid_argument if [hi < lo]. *)

val exponential : Splitmix.t -> rate:float -> float
(** Exponential with mean [1/rate].  @raise Invalid_argument if
    [rate <= 0]. *)

val poisson_process : Splitmix.t -> rate:float -> horizon:float -> float list
(** Arrival dates of a Poisson process of intensity [rate] on
    [0, horizon), in increasing order. *)

val pick : Splitmix.t -> 'a array -> 'a
(** Uniform element.  @raise Invalid_argument on an empty array. *)

val bernoulli : Splitmix.t -> p:float -> bool

val shuffle : Splitmix.t -> 'a array -> unit
(** In-place Fisher-Yates. *)
