let uniform rng ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform: hi < lo";
  lo +. ((hi -. lo) *. Splitmix.float rng)

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: non-positive rate";
  (* Inverse transform; 1 - u avoids log 0. *)
  -.log (1.0 -. Splitmix.float rng) /. rate

let poisson_process rng ~rate ~horizon =
  let rec go t acc =
    let t = t +. exponential rng ~rate in
    if t >= horizon then List.rev acc else go t (t :: acc)
  in
  go 0.0 []

let pick rng a =
  if Array.length a = 0 then invalid_arg "Dist.pick: empty array";
  a.(Splitmix.int rng (Array.length a))

let bernoulli rng ~p = Splitmix.float rng < p

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
