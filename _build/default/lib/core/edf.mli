(** Exact preemptive EDF feasibility on one processor.

    Earliest Deadline First is optimal for preemptive deadline
    feasibility on a single machine (Labetoulle–Lawler–Lenstra–Rinnooy
    Kan [8], cited by the paper): a deadline assignment is feasible iff
    the EDF simulation meets every deadline.  By Lemma 1 this also decides
    the uniform divisible multi-machine case, which makes this module an
    independent combinatorial cross-check of {!Stretch_solver} (the two
    are property-tested against each other). *)

module Q = Gripps_numeric.Rat

type job = {
  release : Q.t;
  deadline : Q.t;
  work : Q.t;  (** processing time on the (unit-speed) processor *)
}

val feasible : job list -> bool
(** Exact rational EDF simulation; true iff every job can complete by its
    deadline.  Jobs with zero work are ignored.
    @raise Invalid_argument on negative work. *)
