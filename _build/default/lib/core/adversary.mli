(** Adversarial instances from the paper's negative results.

    {!starvation} builds the Theorem 1 family: one job of size [Δ] at date
    0 followed by [k] unit jobs, one per time unit.  Any algorithm with a
    non-trivial sum-stretch competitive ratio must starve the long job,
    making its max-stretch arbitrarily worse than optimal.

    {!swrpt_instance} builds the Appendix A family proving Theorem 2: on
    it, SWRPT's sum-stretch approaches twice SRPT's, so SWRPT is not
    [(2 − ε)]-competitive for sum-stretch. *)

open Gripps_model

val starvation : delta:float -> k:int -> Instance.t
(** Uni-processor (unit speed) instance.  @raise Invalid_argument when
    [delta < 1] or [k < 1]. *)

type swrpt_parameters = {
  alpha : float;  (** 1 − ε/3 *)
  n : int;        (** length of the square-root cascade *)
  k : int;        (** length of the doubling tail *)
  l : int;        (** number of trailing unit jobs *)
}

val swrpt_parameters : epsilon:float -> l:int -> swrpt_parameters
(** The constants of Appendix A for a target gap [ε].
    @raise Invalid_argument when [epsilon] is outside (0, 1] or [l < 1]. *)

val swrpt_instance : epsilon:float -> l:int -> Instance.t
(** The full adversarial instance on a unit-speed uni-processor. *)

val theorem2_lower_bound : epsilon:float -> l:int -> float
(** The ratio (sum-stretch of SWRPT) / (sum-stretch of SRPT) predicted to
    exceed [2 − ε] for large [l], computed analytically from the closed
    forms in Appendix A (used to cross-check the simulation). *)
