open Gripps_engine
open Gripps_sched

let has_arrival events =
  List.exists
    (fun e -> match e with Sim.Arrival _ -> true | Sim.Completion _ | Sim.Boundary -> false)
    events

(* The on-line heuristics run in doubles (as the paper's implementation
   did): only the clairvoyant Offline optimum needs exact arithmetic. *)
let solve_state st ~refine =
  let snap = Snapshot.of_state st in
  let floor = Gripps_numeric.Rat.to_float (Snapshot.stretch_floor st) in
  (snap, Stretch_solver.solve_float ~floor ~refine snap.Snapshot.problem)

(* Online and Online-EDF: solve + realize into commitments, replayed by a
   plan player until the next arrival. *)
let playback_scheduler name ~policy ~refine =
  { Sim.name;
    make =
      (fun inst ->
        let player = Plan_player.create () in
        let sizes = Snapshot.sizes_fn inst in
        fun st events ->
          if has_arrival events then begin
            let snap, a = solve_state st ~refine in
            Plan_player.set_plan player
              (Snapshot.expand_commitments snap
                 (Realize.commitments a ~policy ~sizes ~speeds:snap.Snapshot.vspeed))
          end;
          Plan_player.step player st) }

let online =
  playback_scheduler "Online" ~policy:Realize.Terminal_first ~refine:true

let online_edf =
  playback_scheduler "Online-EDF" ~policy:Realize.By_completion_interval ~refine:true

let online_non_optimized =
  playback_scheduler "Online-NonOpt" ~policy:Realize.Terminal_first ~refine:false

(* Online-EGDF: keep only the global completion-interval order and run the
   greedy distribution rule at every event. *)
let online_egdf =
  { Sim.name = "Online-EGDF";
    make =
      (fun inst ->
        let sizes = Snapshot.sizes_fn inst in
        let order = ref [] in
        fun st events ->
          if has_arrival events then begin
            let _snap, a = solve_state st ~refine:true in
            order := Realize.completion_order a ~sizes
          end;
          let alive = List.filter (fun j -> not (Sim.is_completed st j)) !order in
          (* Safety: any active job missing from the order (cannot happen
             for solver output, but cheap to guarantee) goes last. *)
          let missing =
            List.filter (fun j -> not (List.mem j alive)) (Sim.active_jobs st)
          in
          { Sim.allocation = List_sched.allocate st ~priority_order:(alive @ missing);
            horizon = None }) }
