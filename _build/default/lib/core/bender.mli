(** The two guaranteed on-line max-stretch algorithms from the literature,
    extended to the divisible restricted-availability setting with the
    §3.2 distribution rule (paper §4.3.2).

    [Bender98] (Bender, Chakrabarti & Muthukrishnan, SODA'98): at every
    arrival, recompute the optimal {e off-line} max-stretch [S*] of all
    jobs released so far (a full hindsight problem — this is what makes it
    prohibitively expensive, cf. §5.3), give every job the expanded
    deadline [r_j + α·S*·W_j] with [α = √Δ], and run Earliest Deadline
    First.

    [Bender02] (Bender, Muthukrishnan & Rajaraman, SODA'02): schedule by
    decreasing {e pseudo-stretch} [Ŝ_j(t) = (t − r_j)/√Δ] for short jobs,
    [(t − r_j)/Δ] for long ones, preempting at each arrival —
    O(√Δ)-competitive with negligible scheduling cost. *)

open Gripps_engine

val bender98 : Sim.scheduler
val bender02 : Sim.scheduler

val pseudo_stretch :
  delta:float -> min_size:float -> size:float -> release:float -> now:float -> float
(** The Bender02 priority value (exposed for unit tests). *)
