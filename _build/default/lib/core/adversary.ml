open Gripps_model

let starvation ~delta ~k =
  if delta < 1.0 then invalid_arg "Adversary.starvation: delta < 1";
  if k < 1 then invalid_arg "Adversary.starvation: k < 1";
  let long = Job.make ~id:0 ~release:0.0 ~size:delta ~databank:0 in
  let units =
    List.init k (fun t ->
        Job.make ~id:(t + 1) ~release:(float_of_int t) ~size:1.0 ~databank:0)
  in
  Instance.make ~platform:(Platform.single ~speed:1.0) ~jobs:(long :: units)

type swrpt_parameters = { alpha : float; n : int; k : int; l : int }

let log2 x = log x /. log 2.0

let swrpt_parameters ~epsilon ~l =
  if epsilon <= 0.0 || epsilon > 1.0 then
    invalid_arg "Adversary.swrpt_parameters: epsilon outside (0, 1]";
  if l < 1 then invalid_arg "Adversary.swrpt_parameters: l < 1";
  let alpha = 1.0 -. (epsilon /. 3.0) in
  let n =
    int_of_float (Float.ceil (log2 (log2 (3.0 *. (1.0 +. alpha) /. epsilon))))
  in
  let k = int_of_float (Float.ceil (-.log2 (-.log2 alpha))) in
  (* The proof also needs 1/2^(2^(n-1)) < ε/(3(1+α)); the ceiling above
     guarantees it, but n must be at least 2 for r1, r2 to make sense. *)
  { alpha; n = max n 2; k = max k 1; l }

(* Size of job J_j in the cascade: 2^(2^(n-j)), extended to the doubling
   tail where the exponent becomes negative. *)
let cascade_size ~n j = Float.pow 2.0 (Float.pow 2.0 (float_of_int (n - j)))

let swrpt_instance ~epsilon ~l =
  let { alpha; n; k; l } = swrpt_parameters ~epsilon ~l in
  let size0 = cascade_size ~n 0 in
  let jobs = ref [] in
  let add id release size =
    jobs := Job.make ~id ~release ~size ~databank:0 :: !jobs
  in
  add 0 0.0 size0;
  let r1 = size0 -. cascade_size ~n 2 in
  add 1 r1 (cascade_size ~n 1);
  let r2 = r1 +. cascade_size ~n 1 -. alpha in
  add 2 r2 (cascade_size ~n 2);
  (* J_3 .. J_n, then the doubling tail J_{n+1} .. J_{n+k}, then the unit
     tail: each arrives when its predecessor's work would finish. *)
  let prev_r = ref r2 and prev_p = ref (cascade_size ~n 2) in
  for j = 3 to n + k do
    let r = !prev_r +. !prev_p in
    let p = cascade_size ~n j in
    add j r p;
    prev_r := r;
    prev_p := p
  done;
  for j = 1 to l do
    let r = !prev_r +. !prev_p in
    add (n + k + j) r 1.0;
    prev_r := r;
    prev_p := 1.0
  done;
  Instance.make ~platform:(Platform.single ~speed:1.0) ~jobs:!jobs

let theorem2_lower_bound ~epsilon ~l =
  let { alpha; n; k; l } = swrpt_parameters ~epsilon ~l in
  let lf = float_of_int l in
  let tf =
    (* Total work: the cascade (including the doubling tail) plus l units. *)
    let cascade = ref 0.0 in
    for j = 0 to n + k do cascade := !cascade +. cascade_size ~n j done;
    !cascade +. lf
  in
  let size0 = cascade_size ~n 0 in
  let size1 = cascade_size ~n 1 in
  let swrpt_sum =
    (* J0 stretches over the whole schedule; J1 has stretch 1; every other
       job is delayed by α. *)
    let tail = ref 0.0 in
    for j = 2 to n + k do tail := !tail +. (alpha /. cascade_size ~n j) done;
    float_of_int (n + k - 1) +. (lf *. (1.0 +. alpha)) +. (tf /. size0) +. !tail
  in
  let srpt_sum =
    (* All stretches are 1 except J1, which ends last. *)
    let r1 = size0 -. cascade_size ~n 2 in
    float_of_int (n + k + l - 1) +. ((tf -. r1) /. size1)
  in
  swrpt_sum /. srpt_sum
