(** Replaying per-machine commitments inside the simulator.

    Shared by the clairvoyant [Offline] scheduler and the on-line LP
    heuristics: a plan is a set of {!Realize.commitment} lists, and the
    player turns "what should run right now" into engine allocations with
    a horizon at the next commitment edge.

    Floating-point hygiene: commitments come from exact rational layouts
    rounded to floats, so a job can complete a hair before its last chunk
    ends, or leave a sliver of work after the plan is exhausted.  The
    player filters completed jobs from allocations and, when the plan runs
    dry while work remains, falls back to SWRPT list scheduling to mop up
    the residue. *)

open Gripps_engine

type t

val create : unit -> t

val set_plan : t -> (int * Realize.commitment list) list -> unit
(** Replace all commitments (machine ids absent from the list become
    idle). *)

val step : t -> Sim.state -> Sim.plan
(** The allocation for the current date, with a horizon at the next
    commitment boundary. *)
