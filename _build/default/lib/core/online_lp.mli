(** The paper's on-line max-stretch heuristics (§4.3.2).

    Every time a job arrives:

    + preempt everything;
    + compute the best achievable max-stretch [S*] given the work already
      performed (exact rational solve of System (1), with the stretches of
      already-completed jobs as a floor);
    + solve System (2) — minimize the relaxed sum-stretch surrogate under
      the [S*]-deadlines (min-cost flow);
    + realize the assignment with one of three policies:
      {ul
      {- [Online]: per machine and interval, terminal jobs first under
         SWRPT;}
      {- [Online-EDF]: per machine, chunks ordered by the interval in
         which each job's total work completes;}
      {- [Online-EGDF]: a single global priority list (by completion
         interval) executed with the greedy distribution rule of §3.2.}}

    [online_non_optimized] stops after step 2 and realizes the raw
    feasibility witness instead of the System (2) optimum — the baseline
    of the Figure 3 comparison. *)

open Gripps_engine

val online : Sim.scheduler
val online_edf : Sim.scheduler
val online_egdf : Sim.scheduler
val online_non_optimized : Sim.scheduler
