open Gripps_model

let is_uniform inst =
  let platform = Instance.platform inst in
  Array.for_all
    (fun (m : Machine.t) -> Array.for_all Fun.id m.databanks)
    (Platform.machines platform)

let equivalent_speed platform = Platform.total_speed platform

let to_uniprocessor inst =
  if not (is_uniform inst) then
    invalid_arg "Equivalence.to_uniprocessor: restricted availability";
  let platform = Instance.platform inst in
  let speed = equivalent_speed platform in
  let jobs =
    Array.to_list (Instance.jobs inst)
    |> List.map (fun (j : Job.t) -> { j with databank = 0 })
  in
  Instance.make ~platform:(Platform.single ~speed) ~jobs
