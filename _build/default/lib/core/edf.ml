module Q = Gripps_numeric.Rat

type job = { release : Q.t; deadline : Q.t; work : Q.t }

let feasible jobs =
  List.iter
    (fun j -> if Q.sign j.work < 0 then invalid_arg "Edf.feasible: negative work")
    jobs;
  let upcoming =
    ref
      (List.sort
         (fun a b -> Q.compare a.release b.release)
         (List.filter (fun j -> Q.sign j.work > 0) jobs))
  in
  (* Active jobs as (deadline, remaining) sorted by deadline. *)
  let active = ref [] in
  let insert j =
    let rec go = function
      | [] -> [ j ]
      | (d, _) :: _ as rest when Q.lt (fst j) d -> j :: rest
      | x :: rest -> x :: go rest
    in
    active := go !active
  in
  let rec run t =
    (* Release everything due. *)
    let due, later = List.partition (fun j -> Q.le j.release t) !upcoming in
    upcoming := later;
    List.iter (fun j -> insert (j.deadline, j.work)) due;
    match !active with
    | [] ->
      (match !upcoming with
       | [] -> true
       | j :: _ -> run j.release)
    | (deadline, rem) :: rest ->
      let next_release =
        match !upcoming with [] -> None | j :: _ -> Some j.release
      in
      let finish = Q.add t rem in
      let run_until =
        match next_release with
        | Some r when Q.lt r finish -> r
        | Some _ | None -> finish
      in
      if Q.gt run_until deadline then false
      else begin
        if Q.equal run_until finish then active := rest
        else active := (deadline, Q.sub rem (Q.sub run_until t)) :: rest;
        run run_until
      end
  in
  match !upcoming with [] -> true | j :: _ -> run j.release
