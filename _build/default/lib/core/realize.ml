module Q = Gripps_numeric.Rat

type policy = Terminal_first | By_completion_interval

type commitment = { start_ : float; stop : float; job : int }

module IntMap = Map.Make (Int)
module PairMap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

(* (machine, interval) -> (job, work) list;  job -> interval -> work. *)
let group_work (a : Stretch_solver.assignment) =
  List.fold_left
    (fun (by_cell, by_job) (jid, t, mid, w) ->
      let key = (mid, t) in
      let cell = Option.value ~default:[] (PairMap.find_opt key by_cell) in
      let jmap = Option.value ~default:IntMap.empty (IntMap.find_opt jid by_job) in
      let prev = Option.value ~default:Q.zero (IntMap.find_opt t jmap) in
      ( PairMap.add key ((jid, w) :: cell) by_cell,
        IntMap.add jid (IntMap.add t (Q.add prev w) jmap) by_job ))
    (PairMap.empty, IntMap.empty) a.work

(* Work of [jid] still to be delivered from interval [t] on (used as the
   "remaining processing time" in SWRPT keys). *)
let remaining_before by_job jid t =
  match IntMap.find_opt jid by_job with
  | None -> Q.zero
  | Some jmap ->
    IntMap.fold (fun t' w acc -> if t' >= t then Q.add acc w else acc) jmap Q.zero

let completion_interval by_job jid =
  match IntMap.find_opt jid by_job with
  | None -> -1
  | Some jmap -> fst (IntMap.max_binding jmap)

let swrpt_key by_job ~sizes jid t =
  Q.to_float (Q.mul (remaining_before by_job jid t) (sizes jid))

let commitments (a : Stretch_solver.assignment) ~policy ~sizes ~speeds =
  let by_cell, by_job = group_work a in
  (* Last interval in which each job touches each machine (terminality for
     the Online policy). *)
  let last_on_machine =
    List.fold_left
      (fun m (jid, t, mid, _) ->
        let prev = Option.value ~default:(-1) (PairMap.find_opt (jid, mid) m) in
        PairMap.add (jid, mid) (max prev t) m)
      PairMap.empty a.work
  in
  let order_chunks mid t chunks =
    let key (jid, _w) =
      let swrpt = swrpt_key by_job ~sizes jid t in
      match policy with
      | Terminal_first ->
        let terminal = PairMap.find (jid, mid) last_on_machine = t in
        ((if terminal then 0 else 1), 0, swrpt, jid)
      | By_completion_interval -> (0, completion_interval by_job jid, swrpt, jid)
    in
    List.sort (fun c1 c2 -> compare (key c1) (key c2)) chunks
  in
  let machines =
    List.sort_uniq Int.compare (List.map (fun (_, _, mid, _) -> mid) a.work)
  in
  List.map
    (fun mid ->
      let speed = speeds mid in
      let comms = ref [] in
      Array.iteri
        (fun t (iv : Stretch_solver.interval) ->
          match PairMap.find_opt (mid, t) by_cell with
          | None -> ()
          | Some chunks ->
            (* Lay the ordered chunks end to end from the interval start;
               the solver's capacity constraint guarantees they fit. *)
            let cursor = ref iv.Stretch_solver.lo in
            List.iter
              (fun (jid, w) ->
                let stop = Q.add !cursor (Q.div w speed) in
                comms :=
                  { start_ = Q.to_float !cursor; stop = Q.to_float stop; job = jid }
                  :: !comms;
                cursor := stop)
              (order_chunks mid t chunks);
            (* Exact assignments fit exactly; float-pipeline assignments
               may overrun by rounding residue, which the plan player
               absorbs.  A macroscopic overrun is a solver bug. *)
            let over =
              Q.to_float (Q.sub !cursor iv.Stretch_solver.hi)
            in
            let span = 1.0 +. abs_float (Q.to_float iv.Stretch_solver.hi) in
            if over > 1e-6 *. span then
              failwith "Realize.commitments: interval capacity violated")
        a.intervals;
      (mid, List.rev !comms))
    machines

let completion_order (a : Stretch_solver.assignment) ~sizes =
  let _, by_job = group_work a in
  IntMap.bindings by_job
  |> List.map (fun (jid, jmap) ->
         let t = fst (IntMap.max_binding jmap) in
         ((t, swrpt_key by_job ~sizes jid t, jid), jid))
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  |> List.map snd
