(** Turning a {!Stretch_solver.assignment} into executable per-machine
    commitments (paper §4.3.2, step 4).

    The flow solution says how much of each job runs on each machine in
    each interval; within an interval the chunks assigned to one machine
    are sequenced according to a policy:

    - {!Terminal_first}: the [Online] variant — jobs that finish their
      whole fraction on that machine in that interval ({e terminal} jobs)
      run first, ordered by SWRPT; non-terminal chunks follow.
    - {!By_completion_interval}: the [Online-EDF] variant — chunks are
      ordered by the interval in which the job's {e total} work completes
      (a deadline-like order), ties broken by SWRPT.

    The [Online-EGDF] variant does not sequence chunks at all — it only
    extracts the global completion-interval order — so it lives in
    {!Online_lp}, not here. *)

module Q = Gripps_numeric.Rat

type policy = Terminal_first | By_completion_interval

(** One machine's committed run: work on [job] during [(start_, stop)]. *)
type commitment = { start_ : float; stop : float; job : int }

val commitments :
  Stretch_solver.assignment ->
  policy:policy ->
  sizes:(int -> Q.t) ->
  speeds:(int -> Q.t) ->
  (int * commitment list) list
(** [(machine, chronological commitments)] pairs.  [sizes jid] must give
    the original size [W_j] (for SWRPT keys) and [speeds mid] the machine
    speed (to convert work into duration).  Commitment bounds are exact
    rational layouts rounded to floats at the very end.
    @raise Failure if the assignment overruns an interval's capacity
    (cannot happen for solver-produced assignments). *)

val completion_order : Stretch_solver.assignment -> sizes:(int -> Q.t) -> int list
(** Job ids ordered by the interval in which their total assigned work
    completes (ties: SWRPT at that point, then id) — the global priority
    list used by [Online-EGDF]. *)
