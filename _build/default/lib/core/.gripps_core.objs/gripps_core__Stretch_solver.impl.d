lib/core/stretch_solver.ml: Array Float Fun Gripps_flow Gripps_numeric Hashtbl List Option
