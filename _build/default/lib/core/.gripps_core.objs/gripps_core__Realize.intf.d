lib/core/realize.mli: Gripps_numeric Stretch_solver
