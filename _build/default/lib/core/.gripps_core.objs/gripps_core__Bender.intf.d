lib/core/bender.mli: Gripps_engine Sim
