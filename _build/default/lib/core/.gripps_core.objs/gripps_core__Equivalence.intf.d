lib/core/equivalence.mli: Gripps_model Instance Platform
