lib/core/realize.ml: Array Gripps_numeric Int List Map Option Stretch_solver
