lib/core/online_lp.ml: Gripps_engine Gripps_numeric Gripps_sched List List_sched Plan_player Realize Sim Snapshot Stretch_solver
