lib/core/snapshot.mli: Gripps_engine Gripps_model Gripps_numeric Instance Realize Sim Stretch_solver
