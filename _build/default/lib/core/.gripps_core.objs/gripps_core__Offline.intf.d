lib/core/offline.mli: Gripps_engine Gripps_model Gripps_numeric Instance Sim
