lib/core/edf.ml: Gripps_numeric List
