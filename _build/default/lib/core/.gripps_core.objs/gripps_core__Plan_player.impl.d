lib/core/plan_player.ml: Gripps_engine Gripps_sched List List_sched Priority Realize Sim
