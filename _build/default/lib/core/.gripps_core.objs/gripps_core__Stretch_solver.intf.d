lib/core/stretch_solver.mli: Gripps_numeric
