lib/core/online_lp.mli: Gripps_engine Sim
