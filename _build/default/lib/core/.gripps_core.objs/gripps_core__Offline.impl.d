lib/core/offline.ml: Gripps_engine Gripps_numeric Plan_player Realize Sim Snapshot Stretch_solver
