lib/core/unrelated.ml: Array Gripps_lp Gripps_numeric Hashtbl Int List Option
