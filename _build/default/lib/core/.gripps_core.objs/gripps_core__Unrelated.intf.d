lib/core/unrelated.mli: Gripps_numeric
