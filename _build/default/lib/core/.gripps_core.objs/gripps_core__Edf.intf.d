lib/core/edf.mli: Gripps_numeric
