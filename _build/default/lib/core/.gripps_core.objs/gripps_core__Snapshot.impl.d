lib/core/snapshot.ml: Array Gripps_engine Gripps_model Gripps_numeric Hashtbl Instance Int Job List Machine Option Platform Sim Stretch_solver
