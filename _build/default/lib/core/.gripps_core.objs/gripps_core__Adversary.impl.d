lib/core/adversary.ml: Float Gripps_model Instance Job List Platform
