lib/core/adversary.mli: Gripps_model Instance
