lib/core/bender.ml: Float Fun Gripps_engine Gripps_model Gripps_sched Hashtbl Instance Job List List_sched Option Sim Snapshot Stretch_solver
