lib/core/plan_player.mli: Gripps_engine Realize Sim
