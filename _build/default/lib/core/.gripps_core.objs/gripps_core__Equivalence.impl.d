lib/core/equivalence.ml: Array Fun Gripps_model Instance Job List Machine Platform
