open Gripps_engine
module Q = Gripps_numeric.Rat

let optimal_max_stretch inst =
  Stretch_solver.optimal_max_stretch (Snapshot.of_instance inst).Snapshot.problem

let make_scheduler name ~refine =
  { Sim.name;
    make =
      (fun inst ->
        let player = Plan_player.create () in
        let planned = ref false in
        fun st _events ->
          if not !planned then begin
            planned := true;
            let snap = Snapshot.of_instance inst in
            let a = Stretch_solver.solve ~refine snap.Snapshot.problem in
            Plan_player.set_plan player
              (Snapshot.expand_commitments snap
                 (Realize.commitments a ~policy:Realize.Terminal_first
                    ~sizes:(Snapshot.sizes_fn inst) ~speeds:snap.Snapshot.vspeed))
          end;
          Plan_player.step player st) }

let scheduler = make_scheduler "Offline" ~refine:false
let scheduler_refined = make_scheduler "Offline-Refined" ~refine:true
