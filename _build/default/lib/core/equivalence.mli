(** Lemma 1 (paper §3.2): a uniform divisible multi-machine instance is
    equivalent to a single preemptive processor of aggregate speed
    [1 / Σᵢ 1/pᵢ = Σᵢ speedᵢ]. *)

open Gripps_model

val is_uniform : Instance.t -> bool
(** True when every machine hosts every databank (unrestricted
    availability) — the hypothesis of Lemma 1. *)

val to_uniprocessor : Instance.t -> Instance.t
(** The equivalent single-machine instance (same jobs, one machine of
    aggregate speed, single databank).
    @raise Invalid_argument when the instance is not uniform. *)

val equivalent_speed : Platform.t -> float
(** Aggregate speed of the equivalent processor. *)
