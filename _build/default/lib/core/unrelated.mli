(** Optimal max weighted flow on {e unrelated} machines (paper §4.3.1 in
    its full generality).

    The paper notes that the off-line algorithm "can in fact be solved for
    a set of unrelated processors": machine [i] needs an arbitrary time
    [p_{i,j}] to process job [j] (infinite — absent — when the databank is
    missing).  Unlike the uniform-with-restrictions case, the per-interval
    constraints Σ_j α⁽ᵗ⁾_{i,j}·p_{i,j} ≤ |I_t| carry job-dependent
    coefficients, so System (1) is a genuine linear program rather than a
    transportation problem; this module solves it with the exact rational
    {!Gripps_lp.Simplex} — the milestone machinery is shared with
    {!Stretch_solver}, and on uniform instances both solvers agree
    (property-tested).

    Intended for moderate instance sizes (the LP has
    [jobs × intervals × machines] variables); the production path for
    uniform platforms is {!Stretch_solver}. *)

module Q = Gripps_numeric.Rat

type job = {
  jid : int;
  release : Q.t;           (** release date [r_j] *)
  weight_inv : Q.t;        (** [1/w_j], the deadline slope (size for stretch) *)
  fraction : Q.t;          (** fraction of the job still to do, in [0, 1] *)
  times : (int * Q.t) list;
      (** [(machine, p_{i,j})]: time for the {e whole} job on that
          machine; machines absent from the list cannot process it *)
}

type problem = { now : Q.t; jobs : job list }

val optimal_max_weighted_flow : ?floor:Q.t -> problem -> Q.t
(** Exact optimum: milestone binary search + a [min F] linear program on
    the bracketing interval (the paper's System (1) with [F] as a
    variable).
    @raise Invalid_argument on malformed problems (non-positive
    [weight_inv] or [p_{i,j}], fraction outside [0, 1], pending job with
    no machine). *)

val feasible : problem -> objective:Q.t -> bool
(** Decide deadline feasibility at a fixed objective value (one LP). *)
