module Q = Gripps_numeric.Rat
module Lp = Gripps_lp.Lp.Rat_lp

type job = {
  jid : int;
  release : Q.t;
  weight_inv : Q.t;
  fraction : Q.t;
  times : (int * Q.t) list;
}

type problem = { now : Q.t; jobs : job list }

let validate p =
  List.iter
    (fun j ->
      if Q.sign j.weight_inv <= 0 then
        invalid_arg "Unrelated: non-positive weight_inv";
      if Q.sign j.fraction < 0 || Q.gt j.fraction Q.one then
        invalid_arg "Unrelated: fraction outside [0, 1]";
      List.iter
        (fun (_, t) ->
          if Q.sign t <= 0 then invalid_arg "Unrelated: non-positive processing time")
        j.times;
      if Q.sign j.fraction > 0 && j.times = [] then
        invalid_arg "Unrelated: pending job with no machine")
    p.jobs

let pending p = List.filter (fun j -> Q.sign j.fraction > 0) p.jobs

let deadline j ~f = Q.add j.release (Q.mul f j.weight_inv)

(* Sorted time points at objective [f], with right-limit tie-breaking by
   slope exactly as in Stretch_solver. *)
let points_at p ~f =
  let pts =
    (p.now, Q.zero)
    :: List.concat_map
         (fun j ->
           let rel = if Q.gt j.release p.now then [ (j.release, Q.zero) ] else [] in
           (deadline j ~f, j.weight_inv) :: rel)
         (pending p)
  in
  List.sort_uniq
    (fun (v1, s1) (v2, s2) ->
      match Q.compare v1 v2 with 0 -> Q.compare s1 s2 | c -> c)
    pts
  |> List.filter (fun (v, s) ->
         Q.gt v p.now || (Q.equal v p.now && Q.sign s >= 0))

(* Build and solve the System (1) LP on a fixed interval structure.  When
   [minimize] is given as (f_lo, f_hi), F is itself an LP variable bounded
   to that bracket and minimized; otherwise the structure and lengths are
   evaluated at the fixed [f]. *)
type lp_mode = Decide of Q.t | Minimize of Q.t * Q.t

let machines_of p =
  List.sort_uniq Int.compare
    (List.concat_map (fun j -> List.map fst j.times) (pending p))

let solve_lp p mode =
  let jobs = Array.of_list (pending p) in
  if Array.length jobs = 0 then Some Q.zero
  else begin
    let f_struct =
      match mode with
      | Decide f -> f
      | Minimize (lo, hi) ->
        (* Sample the structure strictly inside the bracket: the point
           ordering and window membership are constant on the open
           interval between consecutive milestones, and the affine
           constraints they induce remain valid (as limits) at both
           endpoints. *)
        Q.mul (Q.of_ints 1 2) (Q.add lo hi)
    in
    let pts = Array.of_list (points_at p ~f:f_struct) in
    let nints = max 0 (Array.length pts - 1) in
    let m = Lp.create () in
    let f_var = match mode with Minimize _ -> Some (Lp.variable m "F") | Decide _ -> None in
    (* Affine value of a point: constant + slope × F. *)
    let point_expr (v0, slope) =
      (* v0 is the value at f_struct: constant part = v0 - slope×f_struct. *)
      match f_var with
      | None -> Lp.const v0
      | Some f ->
        Lp.add
          (Lp.const (Q.sub v0 (Q.mul slope f_struct)))
          (Lp.scale slope (Lp.v f))
    in
    let vars = Hashtbl.create 64 in
    Array.iteri
      (fun ji j ->
        let wstart = Q.max_rat p.now j.release in
        for t = 0 to nints - 1 do
          let lo_v, _ = pts.(t) and hi_v, hi_s = pts.(t + 1) in
          (* Window membership at f_struct (right-limit consistent): the
             interval must start at/after the job's window start and end
             no later than its deadline. *)
          let dl = deadline j ~f:f_struct in
          let inside =
            Q.ge lo_v wstart
            && (Q.lt hi_v dl
                || (Q.equal hi_v dl && Q.le hi_s j.weight_inv))
          in
          if inside then
            List.iter
              (fun (mid, _) -> Hashtbl.replace vars (ji, t, mid) (Lp.variable m "a"))
              j.times
        done)
      jobs;
    (* Completeness: every pending job executes its fraction. *)
    let ok = ref true in
    Array.iteri
      (fun ji j ->
        let mine =
          Hashtbl.fold
            (fun (ji', _, _) v acc -> if ji' = ji then Lp.v v :: acc else acc)
            vars []
        in
        if mine = [] then ok := false
        else Lp.eq m (Lp.sum mine) (Lp.const j.fraction))
      jobs;
    if not !ok then None
    else begin
      (* Capacity per (interval, machine): Σ_j α p_{i,j} <= length. *)
      List.iter
        (fun mid ->
          for t = 0 to nints - 1 do
            let terms =
              Hashtbl.fold
                (fun (ji, t', mid') v acc ->
                  if t' = t && mid' = mid then begin
                    let pij = List.assoc mid jobs.(ji).times in
                    Lp.scale pij (Lp.v v) :: acc
                  end
                  else acc)
                vars []
            in
            if terms <> [] then begin
              let len = Lp.sub (point_expr pts.(t + 1)) (point_expr pts.(t)) in
              Lp.le m (Lp.sum terms) len
            end
          done)
        (machines_of p);
      (match f_var, mode with
       | Some f, Minimize (lo, hi) ->
         Lp.ge m (Lp.v f) (Lp.const lo);
         Lp.le m (Lp.v f) (Lp.const hi);
         Lp.set_objective m Lp.Minimize (Lp.v f)
       | None, Decide _ -> Lp.set_objective m Lp.Minimize (Lp.const Q.zero)
       | Some _, Decide _ | None, Minimize _ -> assert false);
      match Lp.solve m with
      | Lp.Optimal s ->
        Some (match f_var with Some f -> Lp.value s f | None -> Q.zero)
      | Lp.Infeasible -> None
      | Lp.Unbounded -> None
    end
  end

let feasible p ~objective =
  validate p;
  List.for_all (fun j -> Q.ge (deadline j ~f:objective) p.now) (pending p)
  && Option.is_some (solve_lp p (Decide objective))

let milestones p =
  let js = pending p in
  let constants = p.now :: List.map (fun j -> Q.max_rat p.now j.release) js in
  let cands = ref [] in
  List.iter
    (fun j ->
      List.iter
        (fun c ->
          let f = Q.div (Q.sub c j.release) j.weight_inv in
          if Q.sign f > 0 then cands := f :: !cands)
        constants)
    js;
  let arr = Array.of_list js in
  for a = 0 to Array.length arr - 1 do
    for b = a + 1 to Array.length arr - 1 do
      let ja = arr.(a) and jb = arr.(b) in
      if not (Q.equal ja.weight_inv jb.weight_inv) then begin
        let f =
          Q.div (Q.sub jb.release ja.release) (Q.sub ja.weight_inv jb.weight_inv)
        in
        if Q.sign f > 0 then cands := f :: !cands
      end
    done
  done;
  List.sort_uniq Q.compare !cands

let optimal_max_weighted_flow ?(floor = Q.zero) p =
  validate p;
  match pending p with
  | [] -> floor
  | js ->
    let f_base =
      List.fold_left
        (fun acc j -> Q.max_rat acc (Q.div (Q.sub p.now j.release) j.weight_inv))
        floor js
    in
    if feasible p ~objective:f_base then f_base
    else begin
      let ms = Array.of_list (List.filter (fun x -> Q.gt x f_base) (milestones p)) in
      let len = Array.length ms in
      let lo = ref 0 and hi = ref len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if feasible p ~objective:ms.(mid) then hi := mid else lo := mid + 1
      done;
      if !lo < len then begin
        let bracket_lo = if !lo = 0 then f_base else ms.(!lo - 1) in
        match solve_lp p (Minimize (bracket_lo, ms.(!lo))) with
        | Some f -> f
        | None -> failwith "Unrelated: bracketed LP unexpectedly infeasible"
      end
      else begin
        (* No feasible milestone: grow a feasible upper bound, then
           minimize on the last bracket. *)
        let lo_start = if len = 0 then f_base else ms.(len - 1) in
        let rec grow hi =
          if feasible p ~objective:hi then hi
          else grow (Q.mul (Q.of_int 2) hi)
        in
        let hi = grow (Q.max_rat Q.one (Q.mul (Q.of_int 2) lo_start)) in
        match solve_lp p (Minimize (lo_start, hi)) with
        | Some f -> f
        | None -> failwith "Unrelated: final LP unexpectedly infeasible"
      end
    end
