(* Values transcribed from RR-5724 (October 2005), Tables 1-16.  Row
   order follows the paper's tables. *)

type row = {
  scheduler : string;
  max_mean : float;
  max_sd : float;
  max_max : float;
  sum_mean : float;
  sum_sd : float;
  sum_max : float;
}

let r scheduler max_mean max_sd max_max sum_mean sum_sd sum_max =
  { scheduler; max_mean; max_sd; max_max; sum_mean; sum_sd; sum_max }

let table1 =
  [ r "Offline" 1.0000 0.0003 1.0167 1.6729 0.3825 4.4468;
    r "Online" 1.0025 0.0127 2.0388 1.0806 0.0724 2.0343;
    r "Online-EDF" 1.0024 0.0127 2.0581 1.0775 0.0708 2.0392;
    r "Online-EGDF" 1.0781 0.1174 2.4053 1.0021 0.0040 1.0707;
    r "Bender98" 1.0798 0.1315 2.0978 1.0024 0.0044 1.0530;
    r "SWRPT" 1.0845 0.1235 2.5307 1.0002 0.0012 1.0458;
    r "SRPT" 1.0939 0.1299 2.3741 1.0044 0.0055 1.0907;
    r "SPT" 1.1147 0.1603 2.8295 1.0027 0.0054 1.1195;
    r "Bender02" 3.4603 3.0260 28.4016 1.2053 0.2417 5.2022;
    r "MCT-Div" 6.3385 7.4375 73.4019 1.3732 0.5628 11.0440;
    r "MCT" 27.0124 20.1083 129.6119 50.9840 36.9797 157.8909 ]

let table2 =
  [ r "Offline" 1.0000 0.0001 1.0057 1.4346 0.3406 3.2160;
    r "Online" 1.0012 0.0083 1.2648 1.0604 0.0557 1.7044;
    r "Online-EDF" 1.0011 0.0082 1.2648 1.0548 0.0530 1.7017;
    r "Online-EGDF" 1.0557 0.1027 2.0936 1.0017 0.0037 1.0566;
    r "SWRPT" 1.0643 0.1153 2.5307 1.0002 0.0013 1.0433;
    r "SRPT" 1.0728 0.1205 2.1328 1.0042 0.0061 1.0907;
    r "SPT" 1.0949 0.1595 2.8295 1.0033 0.0063 1.1195;
    r "Bender02" 3.1209 2.8235 28.4016 1.2178 0.2922 5.2022;
    r "MCT-Div" 6.4998 7.9212 68.3501 1.4771 0.7660 11.0440;
    r "MCT" 10.3419 4.0266 121.6338 16.7938 4.8924 46.8819 ]

let table3 =
  [ r "Offline" 1.0000 0.0003 1.0167 1.7582 0.3548 3.9253;
    r "Online" 1.0026 0.0113 1.2634 1.0950 0.0832 2.0343;
    r "Online-EDF" 1.0025 0.0112 1.2634 1.0923 0.0808 2.0392;
    r "Online-EGDF" 1.0838 0.1223 2.1460 1.0022 0.0037 1.0707;
    r "SWRPT" 1.0884 0.1247 2.1469 1.0002 0.0010 1.0251;
    r "SRPT" 1.0971 0.1306 2.1469 1.0044 0.0045 1.0333;
    r "SPT" 1.1182 0.1582 2.3381 1.0025 0.0043 1.0448;
    r "Bender02" 3.4492 2.9337 27.5690 1.1993 0.2178 3.5167;
    r "MCT-Div" 6.3270 7.4253 73.4019 1.3367 0.4500 7.3333;
    r "MCT" 25.0726 12.1027 83.1075 46.3988 16.8691 84.9341 ]

let table4 =
  [ r "Offline" 1.0000 0.0004 1.0165 1.8255 0.3313 4.4468;
    r "Online" 1.0037 0.0169 2.0388 1.0865 0.0711 1.9958;
    r "Online-EDF" 1.0037 0.0171 2.0581 1.0853 0.0699 1.9863;
    r "Online-EGDF" 1.0949 0.1225 2.4053 1.0024 0.0046 1.0588;
    r "SWRPT" 1.1006 0.1275 2.0754 1.0001 0.0011 1.0458;
    r "SRPT" 1.1117 0.1351 2.3741 1.0047 0.0059 1.0333;
    r "SPT" 1.1311 0.1609 2.4130 1.0022 0.0053 1.0625;
    r "Bender02" 3.8102 3.2639 27.3621 1.1990 0.2056 3.5672;
    r "MCT-Div" 6.1890 6.9315 54.1129 1.3060 0.3802 5.6269;
    r "MCT" 45.5868 20.5669 129.6119 89.6846 33.2259 157.8909 ]

let table5 =
  [ r "Offline" 1.0000 0.0003 1.0148 1.6636 0.4310 4.4468;
    r "Online" 1.0008 0.0057 1.1244 1.0420 0.0443 1.9958;
    r "Online-EDF" 1.0008 0.0057 1.1244 1.0388 0.0394 1.7131;
    r "Online-EGDF" 1.0392 0.0715 1.6490 1.0007 0.0025 1.0477;
    r "SWRPT" 1.0413 0.0737 1.6490 1.0001 0.0010 1.0215;
    r "SRPT" 1.0528 0.0908 1.9064 1.0021 0.0044 1.0616;
    r "SPT" 1.0591 0.1033 1.9130 1.0012 0.0037 1.0796;
    r "Bender02" 2.6110 2.4933 27.3621 1.0886 0.1196 2.6219;
    r "MCT-Div" 4.2758 5.8801 57.8379 1.1587 0.2978 7.1549;
    r "MCT" 30.7513 22.6511 129.6119 51.6552 37.0841 154.5800 ]

let table6 =
  [ r "Offline" 1.0000 0.0002 1.0087 1.6815 0.4013 3.6012;
    r "Online" 1.0011 0.0068 1.1765 1.0546 0.0511 1.6325;
    r "Online-EDF" 1.0010 0.0066 1.1765 1.0505 0.0463 1.5247;
    r "Online-EGDF" 1.0493 0.0817 1.8226 1.0009 0.0026 1.0490;
    r "SWRPT" 1.0523 0.0850 1.8226 1.0001 0.0009 1.0205;
    r "SRPT" 1.0650 0.1027 1.8226 1.0027 0.0046 1.0521;
    r "SPT" 1.0746 0.1185 2.0091 1.0016 0.0044 1.1001;
    r "Bender02" 2.9802 2.7600 28.4016 1.1175 0.1321 3.0905;
    r "MCT-Div" 5.1722 6.6865 68.3501 1.2093 0.3189 6.0890;
    r "MCT" 29.0574 21.1960 118.9077 51.5397 36.9930 152.1818 ]

let table7 =
  [ r "Offline" 1.0000 0.0004 1.0165 1.6873 0.3835 3.9253;
    r "Online" 1.0017 0.0086 1.1490 1.0670 0.0553 1.7945;
    r "Online-EDF" 1.0016 0.0086 1.1556 1.0615 0.0508 1.7877;
    r "Online-EGDF" 1.0623 0.0936 1.7260 1.0013 0.0030 1.0311;
    r "SWRPT" 1.0671 0.0987 1.7649 1.0001 0.0009 1.0226;
    r "SRPT" 1.0779 0.1118 2.1469 1.0035 0.0051 1.0907;
    r "SPT" 1.0933 0.1323 2.0929 1.0022 0.0047 1.0957;
    r "Bender02" 3.2584 2.8377 26.5854 1.1506 0.1511 2.4128;
    r "MCT-Div" 5.8173 6.8755 60.7281 1.2690 0.3637 5.8874;
    r "MCT" 27.7061 20.1537 107.3472 51.2116 36.9157 157.8909 ]

let table8 =
  [ r "Offline" 1.0000 0.0004 1.0167 1.6898 0.3734 3.2586;
    r "Online" 1.0020 0.0102 1.2634 1.0744 0.0575 1.7630;
    r "Online-EDF" 1.0020 0.0102 1.2634 1.0734 0.0571 1.7352;
    r "Online-EGDF" 1.0739 0.1039 1.7812 1.0017 0.0035 1.0707;
    r "SWRPT" 1.0786 0.1077 1.9008 1.0002 0.0013 1.0433;
    r "SRPT" 1.0899 0.1195 1.9914 1.0041 0.0051 1.0440;
    r "SPT" 1.1079 0.1445 2.4130 1.0025 0.0049 1.0583;
    r "Bender02" 3.4825 2.9844 25.9149 1.1826 0.1767 3.1846;
    r "MCT-Div" 6.3037 7.1902 60.4304 1.3240 0.4200 6.2201;
    r "MCT" 26.4973 19.5775 94.3396 50.7819 36.8234 157.7347 ]

let table9 =
  [ r "Offline" 1.0000 0.0002 1.0084 1.6801 0.3566 3.3490;
    r "Online" 1.0030 0.0118 1.2390 1.0995 0.0721 1.8607;
    r "Online-EDF" 1.0030 0.0117 1.2390 1.0979 0.0716 1.8497;
    r "Online-EGDF" 1.1006 0.1269 2.0188 1.0026 0.0040 1.0476;
    r "SWRPT" 1.1069 0.1312 1.9647 1.0002 0.0012 1.0277;
    r "SRPT" 1.1159 0.1379 1.9647 1.0056 0.0054 1.0373;
    r "SPT" 1.1430 0.1668 2.6495 1.0034 0.0059 1.1195;
    r "Bender02" 3.9233 3.2009 27.5690 1.2574 0.2295 4.0166;
    r "MCT-Div" 7.4813 7.9766 55.3821 1.4696 0.5681 9.4111;
    r "MCT" 24.9462 18.5232 95.2381 50.4874 36.8712 156.0182 ]

let table10 =
  [ r "Offline" 1.0000 0.0002 1.0070 1.6349 0.3399 2.9322;
    r "Online" 1.0063 0.0236 2.0388 1.1461 0.0909 2.0343;
    r "Online-EDF" 1.0063 0.0237 2.0581 1.1427 0.0905 2.0392;
    r "Online-EGDF" 1.1433 0.1669 2.4053 1.0054 0.0056 1.0588;
    r "SWRPT" 1.1601 0.1754 2.5307 1.0003 0.0016 1.0458;
    r "SRPT" 1.1614 0.1695 2.3741 1.0087 0.0058 1.0561;
    r "SPT" 1.2102 0.2190 2.8295 1.0051 0.0071 1.1148;
    r "Bender02" 4.5031 3.4066 23.2689 1.4347 0.3627 5.2022;
    r "MCT-Div" 8.9719 8.7093 73.4019 1.8075 0.8904 11.0440;
    r "MCT" 23.1295 17.1353 121.6338 50.2310 37.1835 156.9455 ]

let table11 =
  [ r "Offline" 1.0000 0.0003 1.0167 1.4979 0.3444 3.3299;
    r "Online" 1.0024 0.0113 1.3026 1.0701 0.0564 1.7044;
    r "Online-EDF" 1.0024 0.0111 1.3026 1.0655 0.0539 1.7017;
    r "Online-EGDF" 1.0592 0.1095 2.1947 1.0022 0.0047 1.0707;
    r "SWRPT" 1.0639 0.1174 2.5307 1.0003 0.0018 1.0458;
    r "SRPT" 1.0690 0.1185 2.1328 1.0035 0.0055 1.0907;
    r "SPT" 1.0808 0.1497 2.8295 1.0021 0.0061 1.1195;
    r "Bender02" 2.3317 2.0982 22.4182 1.1401 0.2223 5.2022;
    r "MCT-Div" 3.2875 4.5014 62.0873 1.2246 0.4815 11.0440;
    r "MCT" 27.0797 18.8117 129.6119 53.5436 36.7236 157.8909 ]

let table12 =
  [ r "Offline" 1.0000 0.0003 1.0166 1.7476 0.3742 4.4468;
    r "Online" 1.0027 0.0153 2.0388 1.0870 0.0821 2.0343;
    r "Online-EDF" 1.0026 0.0154 2.0581 1.0845 0.0807 2.0392;
    r "Online-EGDF" 1.0854 0.1192 2.0460 1.0021 0.0038 1.0561;
    r "SWRPT" 1.0924 0.1263 2.0659 1.0001 0.0007 1.0205;
    r "SRPT" 1.1020 0.1314 2.1469 1.0048 0.0056 1.0565;
    r "SPT" 1.1255 0.1625 2.4009 1.0029 0.0051 1.0796;
    r "Bender02" 3.8022 3.1393 28.4016 1.2306 0.2509 4.3492;
    r "MCT-Div" 7.1260 7.5863 68.3501 1.4255 0.5959 10.1591;
    r "MCT" 26.5667 20.2844 117.3514 49.7426 37.0234 157.7347 ]

let table13 =
  [ r "Offline" 1.0000 0.0003 1.0165 1.7732 0.3662 4.1263;
    r "Online" 1.0023 0.0111 1.2634 1.0848 0.0751 1.9958;
    r "Online-EDF" 1.0024 0.0112 1.2634 1.0825 0.0734 1.8497;
    r "Online-EGDF" 1.0897 0.1208 2.4053 1.0020 0.0035 1.0323;
    r "SWRPT" 1.0971 0.1240 2.1458 1.0001 0.0005 1.0133;
    r "SRPT" 1.1106 0.1354 2.3741 1.0050 0.0055 1.0411;
    r "SPT" 1.1379 0.1626 2.6495 1.0031 0.0049 1.0462;
    r "Bender02" 4.2474 3.3475 27.5690 1.2453 0.2374 3.8653;
    r "MCT-Div" 8.6029 8.5496 73.4019 1.4696 0.5736 9.4838;
    r "MCT" 27.3910 21.1527 111.3333 49.6653 37.0615 149.3393 ]

let table14 =
  [ r "Offline" 1.0000 0.0001 1.0041 1.6418 0.4515 4.4468;
    r "Online" 1.0016 0.0096 1.1991 1.1178 0.0968 2.0343;
    r "Online-EDF" 1.0015 0.0094 1.1765 1.1115 0.0957 2.0392;
    r "Online-EGDF" 1.0742 0.1203 2.4053 1.0024 0.0038 1.0588;
    r "SWRPT" 1.0690 0.1154 2.3263 1.0003 0.0015 1.0458;
    r "SRPT" 1.0706 0.1126 2.1328 1.0041 0.0046 1.0565;
    r "SPT" 1.0883 0.1461 2.6785 1.0018 0.0044 1.0864;
    r "Bender02" 2.0534 1.9157 28.4016 1.1277 0.1771 4.3492;
    r "MCT-Div" 3.6172 5.4143 68.3501 1.2344 0.4738 10.3450;
    r "MCT" 14.5871 8.7936 121.6338 30.5590 18.2418 115.3582 ]

let table15 =
  [ r "Offline" 1.0000 0.0003 1.0167 1.7546 0.3262 3.7500;
    r "Online" 1.0028 0.0151 2.0388 1.0726 0.0507 1.7044;
    r "Online-EDF" 1.0028 0.0153 2.0581 1.0705 0.0494 1.7017;
    r "Online-EGDF" 1.0960 0.1267 2.0936 1.0025 0.0043 1.0561;
    r "SWRPT" 1.1025 0.1352 2.0936 1.0002 0.0012 1.0373;
    r "SRPT" 1.1083 0.1364 2.0912 1.0047 0.0055 1.0561;
    r "SPT" 1.1266 0.1657 2.8295 1.0024 0.0048 1.1148;
    r "Bender02" 2.9329 2.0364 27.5690 1.1826 0.1834 4.0166;
    r "MCT-Div" 4.9589 5.2580 73.4019 1.2980 0.4053 8.0257;
    r "MCT" 27.0743 16.7717 91.4105 50.1104 30.3253 128.8167 ]

let table16 =
  [ r "Offline" 1.0000 0.0004 1.0165 1.6222 0.3442 3.2160;
    r "Online" 1.0031 0.0128 1.2715 1.0515 0.0386 1.3593;
    r "Online-EDF" 1.0030 0.0127 1.2715 1.0504 0.0384 1.3593;
    r "Online-EGDF" 1.0642 0.1014 2.1947 1.0013 0.0039 1.0707;
    r "SWRPT" 1.0818 0.1166 2.5307 1.0000 0.0006 1.0240;
    r "SRPT" 1.1027 0.1359 2.3741 1.0045 0.0064 1.0907;
    r "SPT" 1.1294 0.1649 2.5322 1.0039 0.0065 1.1195;
    r "Bender02" 5.3951 3.6954 27.3621 1.3057 0.3060 5.2022;
    r "MCT-Div" 10.4401 9.1034 67.1243 1.5873 0.7005 11.0440;
    r "MCT" 39.3782 23.3925 129.6119 72.2866 44.4828 157.8909 ]

let tables =
  [| table1; table2; table3; table4; table5; table6; table7; table8; table9;
     table10; table11; table12; table13; table14; table15; table16 |]

let titles =
  [| "aggregate statistics over all 162 platform/application configurations";
     "configurations using 3 sites"; "configurations using 10 sites";
     "configurations using 20 sites"; "workload density 0.75";
     "workload density 1.00"; "workload density 1.25"; "workload density 1.50";
     "workload density 2.00"; "workload density 3.00"; "3 reference databases";
     "10 reference databases"; "20 reference databases";
     "database availability 30%"; "database availability 60%";
     "database availability 90%" |]

let check_number n =
  if n < 1 || n > 16 then invalid_arg "Paper_reference: table number outside 1-16"

let table n =
  check_number n;
  tables.(n - 1)

let title n =
  check_number n;
  titles.(n - 1)

(* Spearman rank correlation with average ranks on ties. *)
let ranks xs =
  let arr = Array.of_list xs in
  let idx = Array.init (Array.length arr) Fun.id in
  Array.sort (fun a b -> Float.compare arr.(a) arr.(b)) idx;
  let rk = Array.make (Array.length arr) 0.0 in
  let i = ref 0 in
  while !i < Array.length arr do
    let j = ref !i in
    while
      !j + 1 < Array.length arr && arr.(idx.(!j + 1)) = arr.(idx.(!i))
    do
      incr j
    done;
    (* Positions i..j share the average rank. *)
    let avg = float_of_int (!i + !j) /. 2.0 in
    for k = !i to !j do rk.(idx.(k)) <- avg done;
    i := !j + 1
  done;
  Array.to_list rk

let spearman xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Paper_reference.spearman: length mismatch";
  if List.length xs < 2 then invalid_arg "Paper_reference.spearman: too few points";
  let rx = ranks xs and ry = ranks ys in
  let n = float_of_int (List.length xs) in
  let mean = (n -. 1.0) /. 2.0 in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  List.iter2
    (fun a b ->
      num := !num +. ((a -. mean) *. (b -. mean));
      dx := !dx +. ((a -. mean) *. (a -. mean));
      dy := !dy +. ((b -. mean) *. (b -. mean)))
    rx ry;
  if !dx = 0.0 || !dy = 0.0 then 1.0 else !num /. sqrt (!dx *. !dy)

type comparison = {
  table_number : int;
  spearman_max : float;
  spearman_sum : float;
  common_rows : int;
}

let compare_tables n (t : Tables.table) =
  let published = table n in
  let pairs =
    List.filter_map
      (fun (row : Tables.row) ->
        List.find_opt (fun p -> p.scheduler = row.Tables.scheduler) published
        |> Option.map (fun p -> (row, p)))
      t.Tables.rows
  in
  let ours f = List.map (fun ((row : Tables.row), _) -> f row) pairs in
  let theirs f = List.map (fun (_, p) -> f p) pairs in
  { table_number = n;
    spearman_max =
      spearman
        (ours (fun row -> row.Tables.max_stretch.Stats.mean))
        (theirs (fun p -> p.max_mean));
    spearman_sum =
      spearman
        (ours (fun row -> row.Tables.sum_stretch.Stats.mean))
        (theirs (fun p -> p.sum_mean));
    common_rows = List.length pairs }

let render_comparison comps =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "Heuristic-ranking agreement with the published tables (Spearman)\n";
  add "%8s %12s %12s %8s\n" "table" "max-stretch" "sum-stretch" "rows";
  List.iter
    (fun c ->
      add "%8d %12.3f %12.3f %8d\n" c.table_number c.spearman_max c.spearman_sum
        c.common_rows)
    comps;
  Buffer.contents b
