(** Figure 3 of the paper (§5.2): the value of the System (2)
    optimization inside the on-line heuristic.

    For a sweep of workload densities, both versions of the on-line
    heuristic run on the same instances:
    - Figure 3(a): average max-stretch degradation (%) from the exact
      off-line optimum, for the optimized and non-optimized versions;
    - Figure 3(b): average relative sum-stretch gain (%) of the optimized
      version over the non-optimized one. *)

type sample = {
  density : float;
  optimized_degradation : float;      (** percent above optimal max-stretch *)
  non_optimized_degradation : float;  (** idem, non-optimized version *)
  sum_stretch_gain : float;           (** percent sum-stretch saved by optimizing *)
  instances : int;
}

val densities_of_paper : float list
(** The 0.0125 – 4.0 range of §5.2 (a geometric sweep of 13 points). *)

val sweep :
  ?seed:int ->
  ?instances_per_density:int ->
  ?densities:float list ->
  ?progress:(int -> int -> unit) ->
  base:Gripps_workload.Config.t ->
  unit ->
  sample list
(** Runs Offline (exact optimum), the optimized and the non-optimized
    on-line heuristics on common instances for each density. *)
