module W = Gripps_workload

let measure ?(seed = 20060303) ?(instances = 3) ?(horizon = 60.0) () =
  let config =
    W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0 ~horizon ()
  in
  let results = Runner.run_config ~seed ~instances config in
  List.filter_map
    (fun name ->
      let times =
        List.concat_map
          (fun (r : Runner.instance_result) ->
            List.filter_map
              (fun (m : Runner.measurement) ->
                if m.scheduler = name then Some m.wall_time else None)
              r.measurements)
          results
      in
      match times with
      | [] -> None
      | _ -> Some (name, Stats.summarize times))
    Runner.portfolio_names

type scaling_sample = {
  jobs : int;
  offline_s : float;
  online_s : float;
  bender98_s : float;
}

let scaling ?(seed = 20060404) ?(horizons = [ 15.0; 30.0; 60.0; 120.0 ]) () =
  List.map
    (fun horizon ->
      let config =
        W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0 ~horizon ()
      in
      let rng = Gripps_rng.Splitmix.create seed in
      let inst = Gripps_workload.Generator.instance rng config in
      let time s =
        let t0 = Unix.gettimeofday () in
        ignore (Gripps_engine.Sim.run ~horizon:1e9 s inst);
        Unix.gettimeofday () -. t0
      in
      { jobs = Gripps_model.Instance.num_jobs inst;
        offline_s = time Gripps_core.Offline.scheduler;
        online_s = time Gripps_core.Online_lp.online;
        bender98_s = time Gripps_core.Bender.bender98 })
    horizons
