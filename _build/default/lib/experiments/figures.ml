open Gripps_model
open Gripps_engine
open Gripps_core
module W = Gripps_workload
module Q = Gripps_numeric.Rat

type sample = {
  density : float;
  optimized_degradation : float;
  non_optimized_degradation : float;
  sum_stretch_gain : float;
  instances : int;
}

let densities_of_paper =
  [ 0.0125; 0.025; 0.05; 0.1; 0.2; 0.4; 0.6; 0.8; 1.0; 1.5; 2.0; 3.0; 4.0 ]

let sweep ?(seed = 20060202) ?(instances_per_density = 10) ?densities
    ?(progress = fun _ _ -> ()) ~base () =
  let densities = Option.value ~default:densities_of_paper densities in
  let total = List.length densities in
  List.mapi
    (fun i density ->
      let config = { base with W.Config.density } in
      let degr_opt = ref [] and degr_non = ref [] and gains = ref [] in
      for k = 0 to instances_per_density - 1 do
        let rng = Gripps_rng.Splitmix.create (seed + (1_000_003 * k) + (7919 * i)) in
        let inst = W.Generator.instance rng config in
        let opt = Q.to_float (Offline.optimal_max_stretch inst) in
        let run s = Metrics.of_schedule (Sim.run ~horizon:1e9 s inst) in
        let m_opt = run Online_lp.online in
        let m_non = run Online_lp.online_non_optimized in
        if opt > 0.0 then begin
          (* Realized completion times are floats while the optimum is
             exact; clamp the microscopic negative rounding residue. *)
          let d m = Float.max 0.0 (100.0 *. ((m /. opt) -. 1.0)) in
          degr_opt := d m_opt.Metrics.max_stretch :: !degr_opt;
          degr_non := d m_non.Metrics.max_stretch :: !degr_non
        end;
        if m_non.Metrics.sum_stretch > 0.0 then
          gains :=
            (100.0
             *. (m_non.Metrics.sum_stretch -. m_opt.Metrics.sum_stretch)
             /. m_non.Metrics.sum_stretch)
            :: !gains
      done;
      progress (i + 1) total;
      { density;
        optimized_degradation = Stats.mean !degr_opt;
        non_optimized_degradation = Stats.mean !degr_non;
        sum_stretch_gain = Stats.mean !gains;
        instances = instances_per_density })
    densities
