type summary = { mean : float; sd : float; max : float; count : int }

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sd xs =
  match xs with
  | [] -> invalid_arg "Stats.sd: empty"
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs)
    in
    sqrt var

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | x :: rest ->
    { mean = mean xs; sd = sd xs;
      max = List.fold_left Float.max x rest;
      count = List.length xs }

let quantile xs ~q =
  if xs = [] then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0, 1]";
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then a.(lo)
  else begin
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. a.(lo)) +. (w *. a.(hi))
  end
