(** Descriptive statistics for the result tables. *)

type summary = { mean : float; sd : float; max : float; count : int }

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val mean : float list -> float
val sd : float list -> float
(** Population standard deviation (the paper reports SD over all runs). *)

val quantile : float list -> q:float -> float
(** Linear-interpolation quantile, [q] in [0, 1].
    @raise Invalid_argument on an empty list or out-of-range [q]. *)
