(** The published values of the paper's Tables 1–16 (Legrand, Su &
    Vivien, RR-5724, October 2005), transcribed verbatim.

    Each row carries the six reported statistics (mean / SD / max of the
    per-instance ratio to the best observed value, for max-stretch and
    sum-stretch).  [Bender98] appears only in Table 1 (its results were
    limited to 3-cluster platforms).

    {!compare_tables} checks a regenerated table against the published
    one: because this reproduction runs at a much smaller scale (shorter
    arrival windows, fewer instances), absolute ratios are milder than the
    paper's; what must agree is the {e ordering} of the heuristics, which
    the comparison quantifies with Spearman rank correlations. *)

type row = {
  scheduler : string;
  max_mean : float;
  max_sd : float;
  max_max : float;
  sum_mean : float;
  sum_sd : float;
  sum_max : float;
}

val table : int -> row list
(** Published rows of the given paper table, top to bottom.
    @raise Invalid_argument outside [1, 16]. *)

val title : int -> string

type comparison = {
  table_number : int;
  spearman_max : float;  (** rank correlation of the max-stretch means *)
  spearman_sum : float;  (** rank correlation of the sum-stretch means *)
  common_rows : int;     (** heuristics present in both tables *)
}

val compare_tables : int -> Tables.table -> comparison
(** Compare a regenerated table with the published one over their common
    heuristics. *)

val spearman : float list -> float list -> float
(** Spearman rank correlation (average ranks on ties).
    @raise Invalid_argument on length mismatch or fewer than 2 points. *)

val render_comparison : comparison list -> string
