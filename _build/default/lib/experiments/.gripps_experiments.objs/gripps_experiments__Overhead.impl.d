lib/experiments/overhead.ml: Gripps_core Gripps_engine Gripps_model Gripps_rng Gripps_workload List Runner Stats Unix
