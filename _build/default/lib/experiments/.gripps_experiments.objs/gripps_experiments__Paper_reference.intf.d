lib/experiments/paper_reference.mli: Tables
