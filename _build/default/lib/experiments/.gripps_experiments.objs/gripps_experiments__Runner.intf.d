lib/experiments/runner.mli: Gripps_engine Gripps_model Gripps_workload Instance Sim
