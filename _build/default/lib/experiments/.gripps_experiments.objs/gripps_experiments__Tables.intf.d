lib/experiments/tables.mli: Gripps_workload Runner Stats
