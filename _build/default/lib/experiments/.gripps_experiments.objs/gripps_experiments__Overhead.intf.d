lib/experiments/overhead.mli: Stats
