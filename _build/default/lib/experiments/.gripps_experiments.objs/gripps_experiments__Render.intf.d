lib/experiments/render.mli: Figures Overhead Stats Tables
