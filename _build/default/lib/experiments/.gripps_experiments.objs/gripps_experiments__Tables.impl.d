lib/experiments/tables.ml: Gripps_workload List Printf Runner Stats
