lib/experiments/render.ml: Buffer Figures List Overhead Printf Stats String Tables
