lib/experiments/stats.mli:
