lib/experiments/figures.ml: Float Gripps_core Gripps_engine Gripps_model Gripps_numeric Gripps_rng Gripps_workload List Metrics Offline Online_lp Option Sim Stats
