lib/experiments/figures.mli: Gripps_workload
