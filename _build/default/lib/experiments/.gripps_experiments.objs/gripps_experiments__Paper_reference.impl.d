lib/experiments/paper_reference.ml: Array Buffer Float Fun List Option Printf Stats Tables
