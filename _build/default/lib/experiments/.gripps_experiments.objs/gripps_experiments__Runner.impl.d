lib/experiments/runner.ml: Bender Float Greedy Gripps_core Gripps_engine Gripps_model Gripps_rng Gripps_sched Gripps_workload Instance List List_sched Metrics Offline Online_lp Sim Unix
