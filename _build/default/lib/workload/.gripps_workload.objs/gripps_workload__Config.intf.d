lib/workload/config.mli:
