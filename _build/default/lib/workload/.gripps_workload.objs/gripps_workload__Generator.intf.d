lib/workload/generator.mli: Config Gripps_model Gripps_rng Instance Job Platform
