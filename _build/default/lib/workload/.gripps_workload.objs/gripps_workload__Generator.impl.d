lib/workload/generator.ml: Array Config Fun Gripps_model Gripps_rng Instance Job List Machine Platform
