lib/workload/config.ml: Array List Printf
