lib/engine/sim.mli: Gripps_model Instance Schedule
