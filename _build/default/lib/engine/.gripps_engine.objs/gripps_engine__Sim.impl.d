lib/engine/sim.ml: Array Float Gripps_model Instance Job List Machine Option Platform Printf Schedule
