open Gripps_model

type allocation = (int * (int * float) list) list

type event = Arrival of int | Completion of int | Boundary

type state = {
  inst : Instance.t;
  mutable now : float;
  remaining : float array;
  released : bool array;
  completed : float option array;
}

let instance st = st.inst
let now st = st.now

let is_released st j = st.released.(j)
let is_completed st j = Option.is_some st.completed.(j)

let remaining st j =
  if not st.released.(j) then invalid_arg "Sim.remaining: job not released";
  st.remaining.(j)

let active_jobs st =
  let acc = ref [] in
  for j = Array.length st.released - 1 downto 0 do
    if st.released.(j) && not (is_completed st j) then acc := j :: !acc
  done;
  !acc

let completion_time st j = st.completed.(j)

type plan = { allocation : allocation; horizon : float option }

let idle = { allocation = []; horizon = None }

type scheduler = {
  name : string;
  make : Instance.t -> state -> event list -> plan;
}

let stateless name f = { name; make = (fun _inst -> f) }

exception Stalled of { time : float; pending : int list }

let share_eps = 1e-9

(* Check the scheduler's allocation against the model invariants and
   compute per-job processing rates. *)
let check_allocation st name (alloc : allocation) =
  let platform = Instance.platform st.inst in
  let nj = Instance.num_jobs st.inst in
  let rates = Array.make nj 0.0 in
  List.iter
    (fun (mid, shares) ->
      if mid < 0 || mid >= Platform.num_machines platform then
        invalid_arg (name ^ ": allocation references unknown machine");
      let m = Platform.machine platform mid in
      let total = List.fold_left (fun s (_, share) -> s +. share) 0.0 shares in
      if total > 1.0 +. share_eps then
        invalid_arg (name ^ ": machine oversubscribed");
      List.iter
        (fun (jid, share) ->
          if jid < 0 || jid >= nj then
            invalid_arg (name ^ ": allocation references unknown job");
          if share <= 0.0 then invalid_arg (name ^ ": non-positive share");
          if not st.released.(jid) then
            invalid_arg (name ^ ": job allocated before release");
          if is_completed st jid then
            invalid_arg (name ^ ": completed job allocated");
          if not (Machine.hosts m (Instance.job st.inst jid).Job.databank) then
            invalid_arg (name ^ ": job allocated to machine missing its databank");
          rates.(jid) <- rates.(jid) +. (share *. m.Machine.speed))
        shares)
    alloc;
  rates

let run ?horizon scheduler inst =
  let nj = Instance.num_jobs inst in
  let st =
    { inst; now = 0.0; remaining = Array.map (fun (j : Job.t) -> j.size) (Instance.jobs inst);
      released = Array.make nj false; completed = Array.make nj None }
  in
  (* Residual work below the float resolution of the whole instance is
     physically negligible (sub-microsecond of compute); treating it as
     done prevents plans computed with 1e-9-relative tolerances from
     leaving slivers that would only complete when the schedule drains. *)
  let total_work = Array.fold_left ( +. ) 0.0 st.remaining in
  let callback = scheduler.make inst in
  let segments = ref [] in
  let next_arrival = ref 0 in
  (* Gather every job released at exactly the same date. *)
  let pop_arrivals t =
    let evs = ref [] in
    while
      !next_arrival < nj && (Instance.job inst !next_arrival).Job.release <= t +. 1e-12
    do
      st.released.(!next_arrival) <- true;
      evs := Arrival !next_arrival :: !evs;
      incr next_arrival
    done;
    List.rev !evs
  in
  let finished () = Array.for_all Option.is_some st.completed in
  let plan = ref idle in
  (* Kick off: jump to the first release date. *)
  if nj > 0 then begin
    st.now <- (Instance.job inst 0).Job.release;
    let evs = pop_arrivals st.now in
    plan := callback st evs
  end;
  while not (finished ()) do
    (match horizon with
     | Some h when st.now > h ->
       failwith
         (Printf.sprintf "%s: simulation passed the %g s guard" scheduler.name h)
     | Some _ | None -> ());
    let rates = check_allocation st scheduler.name !plan.allocation in
    (* Earliest completion under the current rates. *)
    let next_completion = ref infinity in
    for j = 0 to nj - 1 do
      if st.released.(j) && (not (is_completed st j)) && rates.(j) > 0.0 then begin
        let t = st.now +. (st.remaining.(j) /. rates.(j)) in
        if t < !next_completion then next_completion := t
      end
    done;
    let arrival_t =
      if !next_arrival < nj then (Instance.job inst !next_arrival).Job.release
      else infinity
    in
    let horizon_t = match !plan.horizon with Some h -> h | None -> infinity in
    (match !plan.horizon with
     | Some h when h <= st.now +. 1e-12 ->
       invalid_arg (scheduler.name ^ ": plan horizon not in the future")
     | Some _ | None -> ());
    let t_next = Float.min !next_completion (Float.min arrival_t horizon_t) in
    if t_next = infinity then
      raise (Stalled { time = st.now; pending = active_jobs st });
    (* Advance work and record the segment. *)
    let dt = t_next -. st.now in
    if dt > 0.0 && !plan.allocation <> [] then
      segments :=
        { Schedule.start_time = st.now; end_time = t_next;
          shares = !plan.allocation }
        :: !segments;
    let eps_t = 1e-9 *. Float.max 1.0 (abs_float t_next) in
    let completions = ref [] in
    for j = 0 to nj - 1 do
      if st.released.(j) && not (is_completed st j) then begin
        if rates.(j) > 0.0 then begin
          let t_fin = st.now +. (st.remaining.(j) /. rates.(j)) in
          if t_fin <= t_next +. eps_t then begin
            st.remaining.(j) <- 0.0;
            st.completed.(j) <- Some t_fin;
            completions := Completion j :: !completions
          end
          else st.remaining.(j) <- st.remaining.(j) -. (rates.(j) *. dt)
        end;
        (* A rounding sliver left by a float-computed plan counts as
           done — otherwise it would complete only when the scheduler
           next touches the job, wrecking its stretch. *)
        if
          (not (is_completed st j))
          && st.remaining.(j)
             <= 1e-9 *. Float.max (Instance.job inst j).Job.size total_work
        then begin
          st.remaining.(j) <- 0.0;
          st.completed.(j) <- Some t_next;
          completions := Completion j :: !completions
        end
      end
    done;
    st.now <- t_next;
    let arrivals = pop_arrivals t_next in
    let boundary =
      if horizon_t <= t_next +. eps_t && not (finished ()) then [ Boundary ] else []
    in
    let events = arrivals @ List.rev !completions @ boundary in
    if not (finished ()) then plan := callback st events
  done;
  Schedule.make ~instance:inst ~segments:(List.rev !segments)
    ~completion:(Array.copy st.completed)
