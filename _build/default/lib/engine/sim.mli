(** Event-driven simulator for divisible loads with free preemption.

    The divisible model without communication costs (paper §2.1) admits an
    exact fluid semantics: between two events every machine splits its
    time between jobs in fixed shares, and a job's processing rate is the
    sum of [share × speed] over machines.  The engine advances from event
    to event (arrival, completion, plan boundary), asking the scheduler
    for a fresh plan at each one, and records the realized
    {!Gripps_model.Schedule.t}.

    Schedulers are on-line: the callback only ever sees jobs released so
    far (enforced by construction — unreleased jobs have no remaining-work
    entry observable through {!active_jobs}) and the decisions it returns
    cannot be retracted for elapsed time. *)

open Gripps_model

(** [(machine, [(job, share); ...])]: shares of each machine's time.
    Machines absent from the list are idle; shares must be positive and
    sum to at most 1 per machine. *)
type allocation = (int * (int * float) list) list

type event =
  | Arrival of int     (** job id just released *)
  | Completion of int  (** job id just finished *)
  | Boundary           (** the previous plan's horizon was reached *)

type state

val instance : state -> Instance.t
val now : state -> float

val remaining : state -> int -> float
(** Remaining Mflop of a released job.
    @raise Invalid_argument for a job not yet released. *)

val is_released : state -> int -> bool
val is_completed : state -> int -> bool

val active_jobs : state -> int list
(** Released, not yet completed; increasing id (= release order). *)

val completion_time : state -> int -> float option

(** A plan: the allocation to apply from [now] on, valid until the next
    arrival/completion or until [horizon] (if any), whichever comes
    first.  [horizon], when given, must be strictly later than [now]. *)
type plan = { allocation : allocation; horizon : float option }

val idle : plan

(** A scheduler: a name and a factory producing the per-run callback (the
    callback may close over mutable per-run state such as a precomputed
    plan queue).  The callback receives the batch of simultaneous events
    that just fired. *)
type scheduler = {
  name : string;
  make : Instance.t -> state -> event list -> plan;
}

val stateless : string -> (state -> event list -> plan) -> scheduler

exception Stalled of { time : float; pending : int list }
(** Raised when the scheduler leaves pending work unallocated with no
    future event to wake it up. *)

val run : ?horizon:float -> scheduler -> Instance.t -> Schedule.t
(** Simulates to completion of all jobs.
    @param horizon abort guard: simulating past this date raises
    [Failure] (default: no guard).
    @raise Stalled see above.
    @raise Invalid_argument when the scheduler returns an invalid
    allocation (oversubscribed machine, job without its databank,
    unreleased or completed job, non-positive share, stale horizon). *)
