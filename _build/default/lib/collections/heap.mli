(** Imperative binary min-heap with a user-supplied order.

    Used for the simulator's event queue and for Dijkstra inside the
    min-cost-flow solver. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (smallest element on top). *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val peek_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive; ascending order. *)
