lib/collections/heap.ml: Array List
