lib/collections/vec.mli:
