lib/collections/heap.mli:
