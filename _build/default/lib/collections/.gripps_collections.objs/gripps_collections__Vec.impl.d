lib/collections/vec.ml: Array List
