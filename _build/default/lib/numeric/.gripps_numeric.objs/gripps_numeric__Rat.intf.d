lib/numeric/rat.mli: Bigint Field
