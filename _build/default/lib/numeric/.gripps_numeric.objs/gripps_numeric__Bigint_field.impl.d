lib/numeric/bigint_field.ml: Bigint Float
