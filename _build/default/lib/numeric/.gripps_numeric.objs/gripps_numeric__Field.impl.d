lib/numeric/field.ml: Float Format Stdlib
