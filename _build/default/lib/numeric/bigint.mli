(** Arbitrary-precision signed integers.

    Portable pure-OCaml bignums (sign–magnitude, base [2^30] limbs) built as
    a substrate for the exact rational arithmetic used by the offline
    max-stretch solver. The container is sealed: values are always
    normalized (no leading zero limbs, canonical zero). *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_int_opt : t -> int option
val fits_int : t -> bool

val of_string : string -> t
(** Decimal, with optional leading [-] or [+].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val to_float : t -> float
(** Nearest-double conversion; values beyond the double range map to
    infinities. *)

val pp : Format.formatter -> t -> unit

(** {1 Queries} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val numbits : t -> int
(** Number of bits of the magnitude; [numbits zero = 0]. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [sign r ∈ {0, sign a}].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: remainder in [0, |b|). *)

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd zero zero = zero]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift towards zero on the magnitude of non-negative values;
    for negative values this is the floor shift of the magnitude, negated
    (i.e. truncation towards zero). *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative exponent. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

(** {1 Comparisons} *)

val min : t -> t -> t
val max : t -> t -> t
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
