(* Normalized rationals: den > 0, gcd (num, den) = 1, zero is 0/1. *)

type t = { n : Bigint.t; d : Bigint.t }

let zero = { n = Bigint.zero; d = Bigint.one }
let one = { n = Bigint.one; d = Bigint.one }

let make_norm n d =
  (* d > 0 required here. *)
  if Bigint.is_zero n then zero
  else begin
    let g = Bigint.gcd n d in
    if Bigint.equal g Bigint.one then { n; d }
    else { n = Bigint.div n g; d = Bigint.div d g }
  end

let make n d =
  match Bigint.sign d with
  | 0 -> raise Division_by_zero
  | s when s > 0 -> make_norm n d
  | _ -> make_norm (Bigint.neg n) (Bigint.neg d)

let of_bigint n = { n; d = Bigint.one }
let of_int i = of_bigint (Bigint.of_int i)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)
let num r = r.n
let den r = r.d

let add a b =
  make_norm
    (Bigint.add (Bigint.mul a.n b.d) (Bigint.mul b.n a.d))
    (Bigint.mul a.d b.d)

let neg a = { a with n = Bigint.neg a.n }
let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce before multiplying to keep limbs small. *)
  let g1 = Bigint.gcd a.n b.d and g2 = Bigint.gcd b.n a.d in
  let n1 = Bigint.div a.n g1 and d2 = Bigint.div b.d g1 in
  let n2 = Bigint.div b.n g2 and d1 = Bigint.div a.d g2 in
  let n = Bigint.mul n1 n2 and d = Bigint.mul d1 d2 in
  if Bigint.is_zero n then zero else { n; d }

let inv a =
  match Bigint.sign a.n with
  | 0 -> raise Division_by_zero
  | s when s > 0 -> { n = a.d; d = a.n }
  | _ -> { n = Bigint.neg a.d; d = Bigint.neg a.n }

let div a b = mul a (inv b)
let sign a = Bigint.sign a.n
let is_zero a = sign a = 0
let abs a = if sign a < 0 then neg a else a

let compare a b =
  (* a.n/a.d ? b.n/b.d  <=>  a.n*b.d ? b.n*a.d  (denominators positive). *)
  Bigint.compare (Bigint.mul a.n b.d) (Bigint.mul b.n a.d)

let equal a b = Bigint.equal a.n b.n && Bigint.equal a.d b.d
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min_rat a b = if le a b then a else b
let max_rat a b = if ge a b then a else b
let min = min_rat
let max = max_rat

let floor a =
  let q, r = Bigint.divmod a.n a.d in
  if Bigint.sign r < 0 then Bigint.pred q else q

let ceil a =
  let q, r = Bigint.divmod a.n a.d in
  if Bigint.sign r > 0 then Bigint.succ q else q

let of_float f =
  if f <> f then invalid_arg "Rat.of_float: nan";
  if f = infinity || f = neg_infinity then invalid_arg "Rat.of_float: infinite";
  if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    (* m * 2^53 is an exact 53-bit integer. *)
    let n53 = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
    let e = e - 53 in
    if e >= 0 then of_bigint (Bigint.shift_left (Bigint.of_int n53) e)
    else make (Bigint.of_int n53) (Bigint.shift_left Bigint.one (-e))
  end

let to_float a =
  if is_zero a then 0.0
  else begin
    (* Scale so both operands fit comfortably in a double. *)
    let bn = Bigint.numbits a.n and bd = Bigint.numbits a.d in
    let shift = Stdlib.max 0 (Stdlib.min bn bd - 62) in
    let nf = Bigint.to_float (Bigint.shift_right a.n shift) in
    let df = Bigint.to_float (Bigint.shift_right a.d shift) in
    nf /. df
  end

let to_string a =
  if Bigint.equal a.d Bigint.one then Bigint.to_string a.n
  else Bigint.to_string a.n ^ "/" ^ Bigint.to_string a.d

let pp fmt a = Format.pp_print_string fmt (to_string a)

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let n = Bigint.of_string (String.sub s 0 i) in
    let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None ->
    match String.index_opt s '.' with
    | None -> of_bigint (Bigint.of_string s)
    | Some i ->
      let int_part = String.sub s 0 i in
      let frac = String.sub s (i + 1) (String.length s - i - 1) in
      if frac = "" then invalid_arg "Rat.of_string: malformed decimal";
      let digits = String.length frac in
      let combined = Bigint.of_string (int_part ^ frac) in
      make combined (Bigint.pow (Bigint.of_int 10) digits)
