(* Sign-magnitude bignums in base 2^30.  Limbs are stored little-endian in
   an int array with no leading (most-significant) zero limb; zero is the
   unique value with an empty magnitude and sign 0.  All limb products fit
   in OCaml's 63-bit native ints: (2^30 - 1)^2 + 2*(2^30 - 1) < 2^61. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* Strip most-significant zero limbs; detect zero. *)
let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_small_pos n =
  (* n >= 0, native *)
  if n = 0 then zero
  else if n < base then { sign = 1; mag = [| n |] }
  else begin
    let rec count m acc = if m = 0 then acc else count (m lsr base_bits) (acc + 1) in
    let len = count n 0 in
    let mag = Array.make len 0 in
    let rec fill i m =
      if m <> 0 then begin
        mag.(i) <- m land mask;
        fill (i + 1) (m lsr base_bits)
      end
    in
    fill 0 n;
    { sign = 1; mag }
  end

let of_int n =
  if n = 0 then zero
  else if n > 0 then of_small_pos n
  else if n = min_int then
    (* -(min_int) overflows: build from min_int+1 and subtract one more. *)
    let m = of_small_pos max_int in
    let mag = Array.copy m.mag in
    (* max_int = 2^62 - 1; min_int magnitude is 2^62 = max_int + 1 *)
    let carry = ref 1 in
    let i = ref 0 in
    while !carry > 0 && !i < Array.length mag do
      let s = mag.(!i) + !carry in
      mag.(!i) <- s land mask;
      carry := s lsr base_bits;
      incr i
    done;
    let mag = if !carry > 0 then Array.append mag [| !carry |] else mag in
    { sign = -1; mag }
  else { (of_small_pos (-n)) with sign = -1 }

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign a = a.sign
let is_zero a = a.sign = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0

let hash a =
  Array.fold_left (fun acc limb -> (acc * 31 + limb) land max_int) a.sign a.mag

let numbits_limb l =
  let rec go l acc = if l = 0 then acc else go (l lsr 1) (acc + 1) in
  go l 0

let numbits a =
  let n = Array.length a.mag in
  if n = 0 then 0 else (n - 1) * base_bits + numbits_limb a.mag.(n - 1)

(* Magnitude addition: |a| + |b|. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = if la > lb then la else lb in
  let r = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let x = if i < la then a.(i) else 0 in
    let y = if i < lb then b.(i) else 0 in
    let s = x + y + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(lmax) <- !carry;
  r

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let y = if i < lb then b.(i) else 0 in
    let d = a.(i) - y - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let neg a = if a.sign = 0 then a else { a with sign = -a.sign }
let abs a = if a.sign < 0 then { a with sign = 1 } else a

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let t = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- t land mask;
        carry := t lsr base_bits
      done;
      (* Propagate the final carry. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land mask;
        carry := t lsr base_bits;
        incr k
      done
    end
  done;
  r

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int a n = mul a (of_int n)
let add_int a n = add a (of_int n)

(* Shift a magnitude left by [s] bits, 0 <= s < base_bits. *)
let shift_mag_left_small a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) lsl s) lor !carry in
      r.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    r
  end

(* Shift a magnitude right by [s] bits, 0 <= s < base_bits. *)
let shift_mag_right_small a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let lo = a.(i) lsr s in
      let hi = if i + 1 < la then (a.(i + 1) lsl (base_bits - s)) land mask else 0 in
      r.(i) <- lo lor hi
    done;
    r
  end

let shift_left a n =
  if n < 0 then invalid_arg "Bigint.shift_left: negative shift";
  if a.sign = 0 || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let shifted = shift_mag_left_small a.mag bits in
    let mag = Array.append (Array.make limbs 0) shifted in
    normalize a.sign mag
  end

let shift_right a n =
  if n < 0 then invalid_arg "Bigint.shift_right: negative shift";
  if a.sign = 0 || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a.mag in
    if limbs >= la then zero
    else begin
      let dropped = Array.sub a.mag limbs (la - limbs) in
      normalize a.sign (shift_mag_right_small dropped bits)
    end
  end

(* Division of a magnitude by a single limb 0 < d < base.
   Returns quotient magnitude and remainder limb. *)
let divmod_mag_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

(* Knuth algorithm D on magnitudes; |u| >= |v|, length v >= 2.
   Returns (quotient, remainder) magnitudes. *)
let divmod_mag_knuth u v =
  let n = Array.length v in
  let m = Array.length u in
  (* Normalize so the top limb of v has its high bit set. *)
  let s = base_bits - numbits_limb v.(n - 1) in
  let vn = shift_mag_left_small v s in
  let vn = Array.sub vn 0 n in
  (* One guaranteed extra top limb on u. *)
  let un0 = shift_mag_left_small u s in
  let un =
    if Array.length un0 = m + 1 then un0 else Array.append un0 [| 0 |]
  in
  let q = Array.make (m - n + 1) 0 in
  let v1 = vn.(n - 1) and v2 = vn.(n - 2) in
  for j = m - n downto 0 do
    let top = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (top / v1) and rhat = ref (top mod v1) in
    let continue = ref true in
    while !continue do
      if !qhat >= base || !qhat * v2 > (!rhat lsl base_bits) lor un.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + v1;
        if !rhat >= base then continue := false
      end
      else continue := false
    done;
    (* Multiply and subtract: un[j .. j+n] -= qhat * vn. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr base_bits;
      let t = un.(i + j) - (p land mask) - !borrow in
      if t < 0 then begin un.(i + j) <- t + base; borrow := 1 end
      else begin un.(i + j) <- t; borrow := 0 end
    done;
    let t = un.(j + n) - !carry - !borrow in
    if t < 0 then begin
      (* qhat was one too large: add v back. *)
      un.(j + n) <- t + base;
      q.(j) <- !qhat - 1;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s2 = un.(i + j) + vn.(i) + !c in
        un.(i + j) <- s2 land mask;
        c := s2 lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !c) land mask
    end
    else begin
      un.(j + n) <- t;
      q.(j) <- !qhat
    end
  done;
  let r = shift_mag_right_small (Array.sub un 0 n) s in
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let c = compare_mag a.mag b.mag in
    if c < 0 then (zero, a)
    else if Array.length b.mag = 1 then begin
      let q, r = divmod_mag_limb a.mag b.mag.(0) in
      (normalize (a.sign * b.sign) q,
       if r = 0 then zero else { sign = a.sign; mag = [| r |] })
    end
    else begin
      let q, r = divmod_mag_knuth a.mag b.mag in
      (normalize (a.sign * b.sign) q, normalize a.sign r)
    end
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let rec gcd_pos a b = if is_zero b then a else gcd_pos b (rem a b)
let gcd a b = gcd_pos (abs a) (abs b)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let fits_int a =
  (* Native ints hold 62 bits of magnitude (63-bit ints, one sign bit);
     min_int itself has a 63-bit magnitude and needs a special case. *)
  numbits a <= 62
  || (a.sign < 0 && numbits a = 63 && equal a (of_int min_int))

let to_int_opt a =
  if not (fits_int a) then None
  else if a.sign = 0 then Some 0
  else if a.sign < 0 && numbits a = 63 then Some min_int
  else begin
    let v = ref 0 in
    for i = Array.length a.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor a.mag.(i)
    done;
    Some (a.sign * !v)
  end

let to_int a =
  match to_int_opt a with
  | Some v -> v
  | None -> failwith "Bigint.to_int: value does not fit"

let to_float a =
  if a.sign = 0 then 0.0
  else begin
    let nb = numbits a in
    if nb <= 62 then float_of_int (to_int a)
    else begin
      (* Take the top 62 bits and rescale. *)
      let top = shift_right (abs a) (nb - 62) in
      let f = ldexp (float_of_int (to_int top)) (nb - 62) in
      if a.sign < 0 then -.f else f
    end
  end

let chunk_base = 1_000_000_000 (* < 2^30 *)

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks mag acc =
      let q, r = divmod_mag_limb mag chunk_base in
      let len = ref (Array.length q) in
      while !len > 0 && q.(!len - 1) = 0 do decr len done;
      if !len = 0 then r :: acc
      else chunks (Array.sub q 0 !len) (r :: acc)
    in
    match chunks a.mag [] with
    | [] -> assert false
    | first :: rest ->
      if a.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | '0' .. '9' -> (1, 0)
    | _ -> invalid_arg "Bigint.of_string: malformed input"
  in
  if start >= len then invalid_arg "Bigint.of_string: malformed input";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  let flush () =
    if !chunk_len > 0 then begin
      let scale = pow (of_int 10) !chunk_len in
      acc := add (mul !acc scale) (of_int !chunk);
      chunk := 0;
      chunk_len := 0
    end
  in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
      chunk := (!chunk * 10) + (Char.code c - Char.code '0');
      incr chunk_len;
      if !chunk_len = 9 then flush ()
    | _ -> invalid_arg "Bigint.of_string: malformed input"
  done;
  flush ();
  if sign < 0 then neg !acc else !acc

let pp fmt a = Format.pp_print_string fmt (to_string a)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
