(** {!Bigint} packaged under the {!Field.ORDERED_FIELD} signature.

    Integers are not a field: [div] here is {e truncated integer
    division}.  This adapter exists for the flow algorithms
    ({!Gripps_flow.Maxflow}, {!Gripps_flow.Mcmf}), which only ever add,
    subtract, compare and take minima of capacities — never divide — and
    which run an order of magnitude faster on integers than on
    gcd-normalizing rationals.  Callers scale rational capacities to a
    common denominator first.  Do not instantiate division-using functors
    (e.g. {!Gripps_lp.Simplex}) with this module. *)

module B = Bigint

type t = B.t

let zero = B.zero
let one = B.one
let of_int = B.of_int
let add = B.add
let sub = B.sub
let mul = B.mul
let div = B.div
let neg = B.neg
let abs = B.abs
let min = B.min
let max = B.max
let compare = B.compare
let equal = B.equal
let sign = B.sign

let of_float f =
  if Float.is_integer f then B.of_int (int_of_float f)
  else invalid_arg "Bigint_field.of_float: not an integer"

let to_float = B.to_float
let to_string = B.to_string
let pp = B.pp
