(** Ordered-field abstraction.

    The simplex and flow solvers are functorized over this signature so the
    same code runs in fast [float] arithmetic (simulation hot paths) and in
    exact rational arithmetic (offline optimal max-stretch, milestone
    comparisons). *)

module type ORDERED_FIELD = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val min : t -> t -> t
  val max : t -> t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val sign : t -> int
  (** [-1], [0] or [1].  Implementations with rounding (floats) may treat
      tiny magnitudes as zero; exact implementations must be exact. *)

  val of_float : float -> t
  val to_float : t -> float
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

(** IEEE doubles with a small tolerance in [sign], suitable for the
    simulation hot paths where exactness is not required. *)
module Float : ORDERED_FIELD with type t = float = struct
  type t = float

  let eps = 1e-9
  let zero = 0.0
  let one = 1.0
  let of_int = float_of_int
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let abs = Stdlib.abs_float
  let min = Stdlib.min
  let max = Stdlib.max
  let compare = Float.compare
  let equal = Float.equal
  let sign x = if x > eps then 1 else if x < -.eps then -1 else 0
  let of_float x = x
  let to_float x = x
  let to_string = string_of_float
  let pp fmt x = Format.fprintf fmt "%g" x
end

(** Native integers packaged under the field signature.

    Not a field: [div] is truncated integer division.  This instance
    exists for the flow algorithms, which never divide; callers quantize
    real capacities onto an integer grid first, which bounds the number
    of augmenting steps of the successive-shortest-path algorithm (real
    or float capacities admit unboundedly many microscopic
    augmentations).  Do not use with division-dependent functors. *)
module Int : ORDERED_FIELD with type t = int = struct
  type t = int

  let zero = 0
  let one = 1
  let of_int n = n
  let add = ( + )
  let sub = ( - )
  let mul = ( * )
  let div = ( / )
  let neg x = -x
  let abs = Stdlib.abs
  let min = Stdlib.min
  let max = Stdlib.max
  let compare = Stdlib.Int.compare
  let equal = Stdlib.Int.equal
  let sign x = Stdlib.compare x 0

  let of_float f =
    if Stdlib.Float.is_integer f then int_of_float f
    else invalid_arg "Field.Int.of_float: not an integer"

  let to_float = float_of_int
  let to_string = string_of_int
  let pp = Format.pp_print_int
end
