(** Min-cost max-flow (successive shortest paths with potentials),
    functorized over an ordered field.

    System (2) of the paper — minimize the sum of mean execution times
    under max-stretch-optimal deadlines — is a transportation problem with
    linear costs; this solver computes it exactly at
    {!Gripps_numeric.Rat}.  Edge costs must be non-negative (true for
    System (2), whose costs are interval midpoints). *)

module Make (F : Gripps_numeric.Field.ORDERED_FIELD) : sig
  type t

  val create : n:int -> t

  val add_edge : t -> src:int -> dst:int -> cap:F.t -> cost:F.t -> int
  (** @raise Invalid_argument on out-of-range vertices, negative capacity
      or negative cost. *)

  val min_cost_max_flow : t -> source:int -> sink:int -> F.t * F.t
  (** [(flow, cost)] of a minimum-cost maximum flow. *)

  val flow_on : t -> int -> F.t
end
