lib/flow/maxflow.ml: Array Gripps_collections Gripps_numeric List Queue
