lib/flow/mcmf.mli: Gripps_numeric
