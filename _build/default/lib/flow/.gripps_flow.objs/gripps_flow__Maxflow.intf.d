lib/flow/maxflow.mli: Gripps_numeric
