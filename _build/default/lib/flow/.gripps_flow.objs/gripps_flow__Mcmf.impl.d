lib/flow/mcmf.ml: Array Gripps_collections Gripps_numeric List
