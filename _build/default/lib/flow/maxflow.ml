(* Dinic's algorithm over an arbitrary ordered field.  Edges are stored in
   a flat array with the residual twin of edge e at index (e lxor 1); each
   vertex keeps the list of incident edge indices. *)

module Make (F : Gripps_numeric.Field.ORDERED_FIELD) = struct
  module Vec = struct
    include Gripps_collections.Vec

    let size = length
  end

  type t = {
    n : int;
    adj : int list array;  (* edge indices leaving each vertex, reversed *)
    dst : int Vec.t;
    cap : F.t Vec.t;   (* residual capacity *)
    ocap : F.t Vec.t;  (* original capacity *)
    mutable level : int array;
    mutable iter : int list array;
  }

  let create ~n =
    { n; adj = Array.make n []; dst = Vec.create (); cap = Vec.create ();
      ocap = Vec.create (); level = [||]; iter = [||] }

  let num_vertices g = g.n

  let add_edge g ~src ~dst ~cap =
    if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
      invalid_arg "Maxflow.add_edge: vertex out of range";
    if F.sign cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
    let e = Vec.size g.dst in
    Vec.push g.dst dst;
    Vec.push g.cap cap;
    Vec.push g.ocap cap;
    g.adj.(src) <- e :: g.adj.(src);
    Vec.push g.dst src;
    Vec.push g.cap F.zero;
    Vec.push g.ocap F.zero;
    g.adj.(dst) <- (e + 1) :: g.adj.(dst);
    e

  let set_capacity g e cap =
    if F.sign cap < 0 then invalid_arg "Maxflow.set_capacity: negative capacity";
    Vec.set g.cap e cap;
    Vec.set g.ocap e cap;
    Vec.set g.cap (e lxor 1) F.zero;
    Vec.set g.ocap (e lxor 1) F.zero

  let reset_flows g =
    for e = 0 to Vec.size g.cap - 1 do
      Vec.set g.cap e (Vec.get g.ocap e)
    done

  let bfs g ~source ~sink =
    let level = Array.make g.n (-1) in
    level.(source) <- 0;
    let q = Queue.create () in
    Queue.push source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          let w = Vec.get g.dst e in
          if level.(w) < 0 && F.sign (Vec.get g.cap e) > 0 then begin
            level.(w) <- level.(u) + 1;
            Queue.push w q
          end)
        g.adj.(u)
    done;
    g.level <- level;
    level.(sink) >= 0

  (* Find an augmenting path in the level graph and push [limit] along it. *)
  let rec dfs g u ~sink limit =
    if u = sink then limit
    else begin
      let rec try_edges () =
        match g.iter.(u) with
        | [] -> F.zero
        | e :: rest ->
          let w = Vec.get g.dst e in
          let c = Vec.get g.cap e in
          if F.sign c > 0 && g.level.(w) = g.level.(u) + 1 then begin
            let pushed = dfs g w ~sink (F.min limit c) in
            if F.sign pushed > 0 then begin
              Vec.set g.cap e (F.sub (Vec.get g.cap e) pushed);
              Vec.set g.cap (e lxor 1) (F.add (Vec.get g.cap (e lxor 1)) pushed);
              pushed
            end
            else begin
              g.iter.(u) <- rest;
              try_edges ()
            end
          end
          else begin
            g.iter.(u) <- rest;
            try_edges ()
          end
      in
      try_edges ()
    end

  let max_flow g ~source ~sink =
    if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
    reset_flows g;
    let total = ref F.zero in
    (* An upper bound on any single augmentation: sum of source capacities. *)
    let limit =
      List.fold_left (fun acc e -> F.add acc (Vec.get g.ocap e)) F.zero g.adj.(source)
    in
    while bfs g ~source ~sink do
      g.iter <- Array.copy g.adj;
      let continue = ref true in
      while !continue do
        let pushed = dfs g source ~sink limit in
        if F.sign pushed > 0 then total := F.add !total pushed
        else continue := false
      done
    done;
    !total

  let flow_on g e = Vec.get g.cap (e lxor 1)
  let capacity_on g e = Vec.get g.ocap e

  let min_cut g ~source =
    let reachable = Array.make g.n false in
    reachable.(source) <- true;
    let q = Queue.create () in
    Queue.push source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          let w = Vec.get g.dst e in
          if (not reachable.(w)) && F.sign (Vec.get g.cap e) > 0 then begin
            reachable.(w) <- true;
            Queue.push w q
          end)
        g.adj.(u)
    done;
    reachable
end
