(* Successive shortest augmenting paths with Johnson potentials.  Because
   all edge costs are non-negative, the initial potential is zero and each
   iteration is a Dijkstra run on reduced costs (non-negative by
   induction); the flow pushed per iteration is the path bottleneck. *)

module Make (F : Gripps_numeric.Field.ORDERED_FIELD) = struct
  module Heap = Gripps_collections.Heap
  module Vec = Gripps_collections.Vec

  type t = {
    n : int;
    adj : int list array;
    dst : int Vec.t;
    cap : F.t Vec.t;
    cost : F.t Vec.t;
    ocap : F.t Vec.t;
  }

  let create ~n =
    { n; adj = Array.make n []; dst = Vec.create (); cap = Vec.create ();
      cost = Vec.create (); ocap = Vec.create () }

  let add_edge g ~src ~dst ~cap ~cost =
    if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
      invalid_arg "Mcmf.add_edge: vertex out of range";
    if F.sign cap < 0 then invalid_arg "Mcmf.add_edge: negative capacity";
    if F.sign cost < 0 then invalid_arg "Mcmf.add_edge: negative cost";
    let e = Vec.length g.dst in
    Vec.push g.dst dst;
    Vec.push g.cap cap;
    Vec.push g.cost cost;
    Vec.push g.ocap cap;
    g.adj.(src) <- e :: g.adj.(src);
    Vec.push g.dst src;
    Vec.push g.cap F.zero;
    Vec.push g.cost (F.neg cost);
    Vec.push g.ocap F.zero;
    g.adj.(dst) <- (e + 1) :: g.adj.(dst);
    e

  (* Dijkstra on reduced costs cost(e) + pot(u) - pot(w); returns distances
     (None = unreachable) and the incoming edge of each vertex on a
     shortest path tree. *)
  let dijkstra g ~source pot =
    let dist = Array.make g.n None in
    let prev_edge = Array.make g.n (-1) in
    let heap = Heap.create ~cmp:(fun (a, _) (b, _) -> F.compare a b) in
    dist.(source) <- Some F.zero;
    Heap.push heap (F.zero, source);
    let rec drain () =
      match Heap.pop heap with
      | None -> ()
      | Some (d, u) ->
        let stale = match dist.(u) with Some du -> F.compare d du > 0 | None -> true in
        if not stale then
          List.iter
            (fun e ->
              if F.sign (Vec.get g.cap e) > 0 then begin
                let w = Vec.get g.dst e in
                let rc = F.add (Vec.get g.cost e) (F.sub pot.(u) pot.(w)) in
                let cand = F.add d rc in
                let better =
                  match dist.(w) with
                  | None -> true
                  | Some dw -> F.compare cand dw < 0
                in
                if better then begin
                  dist.(w) <- Some cand;
                  prev_edge.(w) <- e;
                  Heap.push heap (cand, w)
                end
              end)
            g.adj.(u);
        drain ()
    in
    drain ();
    (dist, prev_edge)

  let min_cost_max_flow g ~source ~sink =
    if source = sink then invalid_arg "Mcmf.min_cost_max_flow: source = sink";
    (* Restore original capacities so the call is idempotent. *)
    for e = 0 to Vec.length g.cap - 1 do
      Vec.set g.cap e (Vec.get g.ocap e)
    done;
    let pot = Array.make g.n F.zero in
    let total_flow = ref F.zero and total_cost = ref F.zero in
    let continue = ref true in
    while !continue do
      let dist, prev_edge = dijkstra g ~source pot in
      match dist.(sink) with
      | None -> continue := false
      | Some _ ->
        (* Update potentials with the new distances. *)
        for v = 0 to g.n - 1 do
          match dist.(v) with
          | Some d -> pot.(v) <- F.add pot.(v) d
          | None -> ()
        done;
        (* Bottleneck along the path. *)
        let rec bottleneck v acc =
          if v = source then acc
          else begin
            let e = prev_edge.(v) in
            let acc =
              match acc with
              | None -> Some (Vec.get g.cap e)
              | Some a -> Some (F.min a (Vec.get g.cap e))
            in
            bottleneck (Vec.get g.dst (e lxor 1)) acc
          end
        in
        (match bottleneck sink None with
         | None -> continue := false
         | Some push ->
           let rec apply v =
             if v <> source then begin
               let e = prev_edge.(v) in
               Vec.set g.cap e (F.sub (Vec.get g.cap e) push);
               Vec.set g.cap (e lxor 1) (F.add (Vec.get g.cap (e lxor 1)) push);
               total_cost := F.add !total_cost (F.mul push (Vec.get g.cost e));
               apply (Vec.get g.dst (e lxor 1))
             end
           in
           apply sink;
           total_flow := F.add !total_flow push)
    done;
    (!total_flow, !total_cost)

  let flow_on g e = Vec.get g.cap (e lxor 1)
end
