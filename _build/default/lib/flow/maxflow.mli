(** Maximum flow (Dinic's algorithm), functorized over an ordered field.

    System (1) of the paper — deadline feasibility of divisible jobs on
    machines with restricted availability — is a transportation problem;
    instantiated at {!Gripps_numeric.Rat} this module decides it exactly.
    Dinic performs O(V²E) augmentations regardless of capacity values, so
    exact rational capacities are safe. *)

module Make (F : Gripps_numeric.Field.ORDERED_FIELD) : sig
  type t

  val create : n:int -> t
  (** Graph with vertices [0 .. n-1]. *)

  val num_vertices : t -> int

  val add_edge : t -> src:int -> dst:int -> cap:F.t -> int
  (** Adds a directed edge and its residual twin; returns an edge handle
      for {!flow_on} / {!capacity_on}.
      @raise Invalid_argument on out-of-range vertices or negative
      capacity. *)

  val set_capacity : t -> int -> F.t -> unit
  (** Reset an edge's capacity (its flow is reset to zero as well). *)

  val max_flow : t -> source:int -> sink:int -> F.t
  (** Computes a maximum flow; the flow decomposition is then readable via
      {!flow_on}.  Can be called again after capacity updates; flows are
      recomputed from scratch. *)

  val flow_on : t -> int -> F.t
  val capacity_on : t -> int -> F.t

  val min_cut : t -> source:int -> bool array
  (** After {!max_flow}: characteristic vector of the source side of a
      minimum cut (vertices reachable in the residual graph). *)
end
