type t = { id : int; speed : float; databanks : bool array }

let make ~id ~speed ~databanks =
  if speed <= 0.0 then invalid_arg "Machine.make: non-positive speed";
  { id; speed; databanks = Array.copy databanks }

let hosts m d = d >= 0 && d < Array.length m.databanks && m.databanks.(d)

let pp fmt m =
  let dbs =
    Array.to_list m.databanks
    |> List.mapi (fun i present -> if present then Some i else None)
    |> List.filter_map Fun.id
    |> List.map string_of_int
    |> String.concat ","
  in
  Format.fprintf fmt "M%d[speed=%g, dbs={%s}]" m.id m.speed dbs
