(** Scheduling objectives (paper §3).

    All functions take the completion times produced by a schedule and
    require every job to be completed.

    The stretch uses the paper's definition (§3.1): weighted flow with
    [w_j = 1/W_j].  The alternative {!slowdown}, normalized by each job's
    ideal time on its own machine set, is also provided — it is
    dimensionless and lower-bounded by 1, convenient for display — but all
    optimization and all reported tables use the paper's [S_j]. *)

type t = {
  makespan : float;
  max_flow : float;
  sum_flow : float;
  max_stretch : float;
  sum_stretch : float;
}

val flow : Instance.t -> completion:float array -> int -> float
(** [C_j - r_j].  @raise Invalid_argument if negative beyond tolerance. *)

val stretch : Instance.t -> completion:float array -> int -> float
(** [S_j = (C_j - r_j) / W_j]. *)

val slowdown : Instance.t -> completion:float array -> int -> float
(** [(C_j - r_j) / ideal_time j >= 1]. *)

val of_completion : Instance.t -> completion:float array -> t

val of_schedule : Schedule.t -> t
(** @raise Failure when some job did not complete. *)

val pp : Format.formatter -> t -> unit
