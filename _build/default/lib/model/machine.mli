(** A sequence-comparison server (paper §2).

    One machine models one cluster site: co-located identical processors
    sharing the same databank replicas are exactly equivalent, under the
    divisible model, to a single machine with their aggregate speed. *)

type t = {
  id : int;
  speed : float;          (** Mflop/s; the paper's [1/p_i] *)
  databanks : bool array; (** [databanks.(d)] = replica of databank [d] present *)
}

val make : id:int -> speed:float -> databanks:bool array -> t
(** @raise Invalid_argument on non-positive speed. *)

val hosts : t -> int -> bool
(** [hosts m d] is true when databank [d] is replicated on [m]; a job
    needing [d] can only run there (restricted availability, §2.1). *)

val pp : Format.formatter -> t -> unit
