type t = {
  makespan : float;
  max_flow : float;
  sum_flow : float;
  max_stretch : float;
  sum_stretch : float;
}

let flow inst ~completion j =
  let job = Instance.job inst j in
  let f = completion.(j) -. job.Job.release in
  if f < -1e-6 then invalid_arg "Metrics.flow: completion before release";
  Float.max f 0.0

let stretch inst ~completion j =
  flow inst ~completion j *. Job.stretch_weight (Instance.job inst j)

let slowdown inst ~completion j =
  flow inst ~completion j /. Instance.ideal_time inst j

let of_completion inst ~completion =
  let n = Instance.num_jobs inst in
  if n = 0 then
    { makespan = 0.0; max_flow = 0.0; sum_flow = 0.0; max_stretch = 0.0;
      sum_stretch = 0.0 }
  else begin
    let makespan = ref 0.0 and max_flow = ref 0.0 and sum_flow = ref 0.0 in
    let max_stretch = ref 0.0 and sum_stretch = ref 0.0 in
    for j = 0 to n - 1 do
      let f = flow inst ~completion j in
      let s = stretch inst ~completion j in
      makespan := Float.max !makespan completion.(j);
      max_flow := Float.max !max_flow f;
      sum_flow := !sum_flow +. f;
      max_stretch := Float.max !max_stretch s;
      sum_stretch := !sum_stretch +. s
    done;
    { makespan = !makespan; max_flow = !max_flow; sum_flow = !sum_flow;
      max_stretch = !max_stretch; sum_stretch = !sum_stretch }
  end

let of_schedule (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let completion =
    Array.init (Instance.num_jobs inst) (Schedule.completion_exn sched)
  in
  of_completion inst ~completion

let pp fmt m =
  Format.fprintf fmt
    "makespan=%.4g max_flow=%.4g sum_flow=%.4g max_stretch=%.4g sum_stretch=%.4g"
    m.makespan m.max_flow m.sum_flow m.max_stretch m.sum_stretch
