let job_char j =
  if j < 10 then Char.chr (Char.code '0' + j)
  else if j < 36 then Char.chr (Char.code 'a' + j - 10)
  else if j < 62 then Char.chr (Char.code 'A' + j - 36)
  else '*'

let render ?(width = 72) (s : Schedule.t) =
  let platform = Instance.platform s.Schedule.instance in
  let nm = Platform.num_machines platform in
  let horizon =
    List.fold_left (fun acc seg -> Float.max acc seg.Schedule.end_time) 0.0
      s.Schedule.segments
  in
  if horizon <= 0.0 then "(empty schedule)\n"
  else begin
    let cell_len = horizon /. float_of_int width in
    (* busy.(m).(c) = (job, time) pairs accumulated in cell c of machine m *)
    let busy = Array.init nm (fun _ -> Array.make width []) in
    List.iter
      (fun (seg : Schedule.segment) ->
        List.iter
          (fun (mid, shares) ->
            List.iter
              (fun (jid, share) ->
                (* Spread this chunk's machine-time over the cells it
                   overlaps. *)
                let t0 = seg.Schedule.start_time and t1 = seg.Schedule.end_time in
                let c0 = int_of_float (t0 /. cell_len) in
                let c1 = min (width - 1) (int_of_float (t1 /. cell_len)) in
                for c = max 0 c0 to c1 do
                  let cell_lo = float_of_int c *. cell_len in
                  let cell_hi = cell_lo +. cell_len in
                  let overlap = Float.min t1 cell_hi -. Float.max t0 cell_lo in
                  if overlap > 0.0 then
                    busy.(mid).(c) <- (jid, overlap *. share) :: busy.(mid).(c)
                done)
              shares)
          seg.Schedule.shares)
      s.Schedule.segments;
    let buf = Buffer.create (nm * (width + 16)) in
    Buffer.add_string buf
      (Printf.sprintf "time 0 .. %.3g (one column = %.3g)\n" horizon cell_len);
    for m = 0 to nm - 1 do
      Buffer.add_string buf (Printf.sprintf "M%-3d|" m);
      for c = 0 to width - 1 do
        let per_job = Hashtbl.create 4 in
        List.iter
          (fun (jid, t) ->
            Hashtbl.replace per_job jid
              (t +. Option.value ~default:0.0 (Hashtbl.find_opt per_job jid)))
          busy.(m).(c);
        let total = Hashtbl.fold (fun _ t acc -> acc +. t) per_job 0.0 in
        let best =
          Hashtbl.fold
            (fun jid t acc ->
              match acc with
              | Some (_, bt) when bt >= t -> acc
              | Some _ | None -> Some (jid, t))
            per_job None
        in
        let ch =
          if total < 0.05 *. cell_len then '.'
          else
            match best with
            | Some (jid, t) when t > 0.5 *. total -> job_char jid
            | Some _ -> '#'
            | None -> '.'
        in
        Buffer.add_char buf ch
      done;
      Buffer.add_string buf "|\n"
    done;
    Buffer.contents buf
  end
