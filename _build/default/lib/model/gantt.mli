(** Text Gantt charts of fluid schedules, for examples and debugging.

    One row per machine; time is discretized into character cells.  A cell
    shows the job occupying most of the machine's time in that slice
    (digits for jobs 0-9, letters beyond, ['.'] for idle, ['#'] for a
    slice shared between several jobs with no majority owner). *)

val render : ?width:int -> Schedule.t -> string
(** @param width number of time columns (default 72). *)
