lib/model/platform.ml: Array Format Job List Machine
