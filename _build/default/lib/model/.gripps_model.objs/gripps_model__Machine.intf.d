lib/model/machine.mli: Format
