lib/model/metrics.mli: Format Instance Schedule
