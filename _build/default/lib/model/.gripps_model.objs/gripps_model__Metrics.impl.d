lib/model/metrics.ml: Array Float Format Instance Job Schedule
