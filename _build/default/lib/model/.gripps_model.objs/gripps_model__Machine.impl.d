lib/model/machine.ml: Array Format Fun List String
