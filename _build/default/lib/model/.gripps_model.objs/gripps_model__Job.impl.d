lib/model/job.ml: Float Format Int
