lib/model/platform.mli: Format Job Machine
