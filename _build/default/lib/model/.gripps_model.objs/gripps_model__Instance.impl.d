lib/model/instance.ml: Array Float Format Job List Platform
