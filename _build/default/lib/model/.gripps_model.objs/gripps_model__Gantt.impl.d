lib/model/gantt.ml: Array Buffer Char Float Hashtbl Instance List Option Platform Printf Schedule
