lib/model/schedule.mli: Format Instance
