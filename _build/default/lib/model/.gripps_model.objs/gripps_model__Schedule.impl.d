lib/model/schedule.ml: Array Format Instance List Machine Option Platform Printf
