(* Lemma 1 and Figure 2 of the paper.

   Part 1 (Figure 1): a uniform divisible platform is equivalent to one
   preemptive processor of aggregate speed — every priority heuristic
   produces identical completion times on both.

   Part 2 (Figure 2): with restricted availability the equivalence breaks;
   distributing work greedily is no longer always dominant, and completion
   time vectors become incomparable.

   Run with:  dune exec examples/equivalence_demo.exe *)

open Gripps_model
open Gripps_engine
module Equivalence = Gripps_core.Equivalence

let () =
  (* --- Part 1: uniform platform ≡ aggregate uniprocessor -------------- *)
  let platform = Platform.uniform ~speeds:[ 1.0; 2.0; 3.0 ] in
  let jobs =
    [ Job.make ~id:0 ~release:0.0 ~size:6.0 ~databank:0;
      Job.make ~id:1 ~release:0.5 ~size:3.0 ~databank:0;
      Job.make ~id:2 ~release:1.0 ~size:1.5 ~databank:0 ]
  in
  let inst = Instance.make ~platform ~jobs in
  let uni = Equivalence.to_uniprocessor inst in
  Printf.printf "Lemma 1: 3 machines of speeds 1+2+3 == 1 machine of speed %.0f\n"
    (Equivalence.equivalent_speed platform);
  Printf.printf "%-8s %18s %18s\n" "job" "C_j (3 machines)" "C_j (equivalent)";
  let s3 = Sim.run Gripps_sched.List_sched.srpt inst in
  let s1 = Sim.run Gripps_sched.List_sched.srpt uni in
  List.iter
    (fun j ->
      Printf.printf "%-8d %18.4f %18.4f\n" j (Schedule.completion_exn s3 j)
        (Schedule.completion_exn s1 j))
    [ 0; 1; 2 ];

  (* --- Part 2: restricted availability breaks the equivalence --------- *)
  Printf.printf
    "\nFigure 2: with restricted availability, distributions are incomparable.\n";
  let restricted =
    Platform.make
      ~machines:
        [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; false |];
          Machine.make ~id:1 ~speed:1.0 ~databanks:[| true; true |] ]
      ~num_databanks:2
  in
  (* J0 can run anywhere; J1 only on machine 1. *)
  let jobs =
    [ Job.make ~id:0 ~release:0.0 ~size:2.0 ~databank:0;
      Job.make ~id:1 ~release:0.0 ~size:2.0 ~databank:1 ]
  in
  let rinst = Instance.make ~platform:restricted ~jobs in
  let describe name order =
    let fixed =
      Sim.stateless name (fun st _events ->
          let alive =
            List.filter (fun j -> not (Sim.is_completed st j)) order
          in
          { Sim.allocation = Gripps_sched.List_sched.allocate st ~priority_order:alive;
            horizon = None })
    in
    let s = Sim.run fixed rinst in
    Printf.printf "  %-24s C0 = %.2f, C1 = %.2f\n" name
      (Schedule.completion_exn s 0) (Schedule.completion_exn s 1)
  in
  (* Prioritizing J0 spreads it on both machines and delays J1; the
     reverse helps J1 but hurts J0: neither vector dominates. *)
  describe "J0 first (spread J0)" [ 0; 1 ];
  describe "J1 first (spread J1)" [ 1; 0 ];
  Printf.printf
    "Neither completion-time vector dominates the other: the uni-processor\n\
     reduction of Lemma 1 does not extend to restricted availability.\n"
