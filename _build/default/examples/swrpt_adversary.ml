(* Theorem 2 in action: SWRPT is not (2 - ε)-competitive for sum-stretch.

   The Appendix A construction — a cascade of square-root-decreasing job
   sizes with two carefully placed release dates, a doubling tail and a
   long stream of unit jobs — tricks SWRPT into dragging the first (huge)
   job across the whole schedule while SRPT would have finished it early.
   As the unit tail grows, the sum-stretch ratio SWRPT/SRPT approaches 2.

   Run with:  dune exec examples/swrpt_adversary.exe *)

open Gripps_model
open Gripps_engine
module Adversary = Gripps_core.Adversary

let sum_stretch scheduler inst =
  (Metrics.of_schedule (Sim.run ~horizon:1e12 scheduler inst)).Metrics.sum_stretch

let () =
  let epsilon = 0.6 in
  let p = Adversary.swrpt_parameters ~epsilon ~l:1 in
  Printf.printf "epsilon = %.2f: alpha = %.4f, n = %d, k = %d\n" epsilon
    p.Adversary.alpha p.Adversary.n p.Adversary.k;
  Printf.printf "target: SWRPT/SRPT sum-stretch ratio > 2 - eps = %.2f for large l\n\n"
    (2.0 -. epsilon);
  Printf.printf "%8s %8s %14s %14s %10s %12s\n" "l" "jobs" "SWRPT" "SRPT" "ratio"
    "analytic";
  List.iter
    (fun l ->
      let inst = Adversary.swrpt_instance ~epsilon ~l in
      let swrpt = sum_stretch Gripps_sched.List_sched.swrpt inst in
      let srpt = sum_stretch Gripps_sched.List_sched.srpt inst in
      let analytic = Adversary.theorem2_lower_bound ~epsilon ~l in
      Printf.printf "%8d %8d %14.2f %14.2f %10.4f %12.4f\n" l (Instance.num_jobs inst)
        swrpt srpt (swrpt /. srpt) analytic)
    [ 10; 50; 200; 1000; 3000 ]
