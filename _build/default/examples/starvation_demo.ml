(* Theorem 1 in action: sum-based metrics starve jobs.

   One long job (size Δ) arrives at t = 0, then a unit job arrives every
   time unit.  SRPT — 2-competitive for sum-stretch — keeps preferring the
   fresh unit jobs, so the long job's stretch grows without bound, while
   the optimal max-stretch stays small.  Max-stretch optimization is the
   fairness-preserving choice (paper §3.2).

   Run with:  dune exec examples/starvation_demo.exe *)

open Gripps_model
open Gripps_engine
module Adversary = Gripps_core.Adversary
module Offline = Gripps_core.Offline
module Q = Gripps_numeric.Rat

let () =
  let delta = 4.0 in
  Printf.printf "%6s %18s %18s %14s\n" "k" "SRPT max-stretch" "opt max-stretch"
    "SRPT sum-str";
  List.iter
    (fun k ->
      let inst = Adversary.starvation ~delta ~k in
      let srpt = Metrics.of_schedule (Sim.run Gripps_sched.List_sched.srpt inst) in
      let opt = Q.to_float (Offline.optimal_max_stretch inst) in
      Printf.printf "%6d %18.3f %18.3f %14.3f\n" k srpt.Metrics.max_stretch opt
        srpt.Metrics.sum_stretch)
    [ 5; 10; 20; 40; 80 ];
  print_newline ();
  Printf.printf
    "SRPT's max-stretch grows linearly in k (the long job starves) while the\n\
     optimal max-stretch converges: no sum-stretch-competitive algorithm can\n\
     bound the max-stretch (Theorem 1).\n"
