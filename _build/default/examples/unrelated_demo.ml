(* The §4.3.1 algorithm in full generality: unrelated machines.

   Beyond databank presence, real deployments have affinities the uniform
   model cannot express — say a motif comparison that is accelerated on a
   machine with a vector unit but runs poorly elsewhere.  The off-line
   optimal max-(weighted-)flow algorithm still applies: deadlines and
   milestones are unchanged, and System (1) becomes a genuine linear
   program, solved here with the exact rational simplex.

   Run with:  dune exec examples/unrelated_demo.exe *)

module Q = Gripps_numeric.Rat
module U = Gripps_core.Unrelated

let q = Q.of_ints

let () =
  (* Two servers; times p_{i,j} give each job's duration on each server.
     J0: a vectorizable scan — 2 s on the accelerated M0, 12 s on M1.
     J1: a memory-bound scan — 6 s on either.
     J2: arrives later, only staged on M1, 3 s.
     Weights are stretch weights (weight_inv = the job's "size"). *)
  let p =
    { U.now = Q.zero;
      jobs =
        [ { U.jid = 0; release = Q.zero; weight_inv = q 2 1; fraction = Q.one;
            times = [ (0, q 2 1); (1, q 12 1) ] };
          { U.jid = 1; release = Q.zero; weight_inv = q 6 1; fraction = Q.one;
            times = [ (0, q 6 1); (1, q 6 1) ] };
          { U.jid = 2; release = q 1 1; weight_inv = q 3 1; fraction = Q.one;
            times = [ (1, q 3 1) ] } ] }
  in
  let s = U.optimal_max_weighted_flow p in
  Printf.printf "optimal max weighted flow: %s = %.6f\n" (Q.to_string s) (Q.to_float s);
  Printf.printf "feasible at the optimum: %b\n" (U.feasible p ~objective:s);
  Printf.printf "feasible just below:     %b\n"
    (U.feasible p ~objective:(Q.sub s (q 1 1000000)));

  (* Contrast: force J0 onto its slow machine only (e.g. the accelerated
     node is down) and watch the optimum degrade. *)
  let degraded =
    { p with
      U.jobs =
        List.map
          (fun (j : U.job) ->
            if j.U.jid = 0 then { j with U.times = [ (1, q 12 1) ] } else j)
          p.U.jobs }
  in
  let s' = U.optimal_max_weighted_flow degraded in
  Printf.printf
    "\nwith the accelerated node unavailable for J0: %s = %.6f (%.2fx worse)\n"
    (Q.to_string s') (Q.to_float s')
    (Q.to_float s' /. Q.to_float s)
