(* A GriPPS-like campaign: a grid of clusters with partially replicated
   protein databanks receives a 60-second flow of motif-comparison
   requests; the whole heuristic portfolio is compared on it.

   This is the §5 simulation study in miniature: one realistic instance
   instead of 162 configurations.

   Run with:  dune exec examples/biosearch_campaign.exe *)

open Gripps_model
module W = Gripps_workload
module E = Gripps_experiments
module Q = Gripps_numeric.Rat

let () =
  let config =
    W.Config.make ~sites:3 ~databases:5 ~availability:0.6 ~density:1.25 ~horizon:30.0 ()
  in
  let rng = Gripps_rng.Splitmix.create 2006 in
  let inst = W.Generator.instance rng config in
  let platform = Instance.platform inst in
  Printf.printf "campaign: %s\n" (W.Config.describe config);
  Printf.printf "platform: %d clusters, aggregate %.0f MB/s\n"
    (Platform.num_machines platform) (Platform.total_speed platform);
  Printf.printf "workload: %d requests over %.0f s (delta = %.1f)\n\n"
    (Instance.num_jobs inst) config.W.Config.horizon (Instance.delta inst);

  let opt = Gripps_core.Offline.optimal_max_stretch inst in
  Printf.printf "exact optimal max-stretch: %.6f\n\n" (Q.to_float opt);

  let result = E.Runner.run_instance config inst in
  Printf.printf "%-14s %12s %12s %12s\n" "scheduler" "max-stretch" "sum-stretch"
    "overhead(s)";
  List.iter
    (fun (m : E.Runner.measurement) ->
      Printf.printf "%-14s %12.4f %12.4f %12.3f\n" m.scheduler m.max_stretch
        m.sum_stretch m.wall_time)
    result.E.Runner.measurements;

  (* The per-instance normalization used by the paper's tables. *)
  Printf.printf "\nratios to the best observed value:\n";
  Printf.printf "%-14s %12s %12s\n" "scheduler" "max ratio" "sum ratio";
  List.iter
    (fun (r : E.Runner.ratio) ->
      Printf.printf "%-14s %12.4f %12.4f\n" r.scheduler r.max_ratio r.sum_ratio)
    (E.Runner.ratios result)
