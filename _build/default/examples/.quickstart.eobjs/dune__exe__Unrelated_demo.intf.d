examples/unrelated_demo.mli:
