examples/starvation_demo.ml: Gripps_core Gripps_engine Gripps_model Gripps_numeric Gripps_sched List Metrics Printf Sim
