examples/swrpt_adversary.ml: Gripps_core Gripps_engine Gripps_model Gripps_sched Instance List Metrics Printf Sim
