examples/biosearch_campaign.mli:
