examples/quickstart.ml: Format Gantt Gripps_core Gripps_engine Gripps_model Gripps_numeric Gripps_sched Instance Job Machine Metrics Platform Printf Schedule Sim
