examples/quickstart.mli:
