examples/equivalence_demo.ml: Gripps_core Gripps_engine Gripps_model Gripps_sched Instance Job List Machine Platform Printf Schedule Sim
