examples/swrpt_adversary.mli:
