examples/unrelated_demo.ml: Gripps_core Gripps_numeric List Printf
