(* Quickstart: build a tiny heterogeneous platform by hand, submit a small
   flow of motif-comparison requests, and compare a classic heuristic with
   the exact optimal max-stretch scheduler.

   Run with:  dune exec examples/quickstart.exe *)

open Gripps_model
open Gripps_engine
module Q = Gripps_numeric.Rat

let () =
  (* Two sequence-comparison servers.  Server 0 hosts databanks 0 and 1;
     server 1 (twice as fast) only hosts databank 1. *)
  let platform =
    Platform.make
      ~machines:
        [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; true |];
          Machine.make ~id:1 ~speed:2.0 ~databanks:[| false; true |] ]
      ~num_databanks:2
  in
  (* Five requests: release date (s), work (MB of databank to scan),
     target databank. *)
  let jobs =
    [ Job.make ~id:0 ~release:0.0 ~size:6.0 ~databank:0;
      Job.make ~id:1 ~release:0.5 ~size:2.0 ~databank:1;
      Job.make ~id:2 ~release:1.0 ~size:1.0 ~databank:1;
      Job.make ~id:3 ~release:1.5 ~size:4.0 ~databank:0;
      Job.make ~id:4 ~release:2.0 ~size:0.5 ~databank:1 ]
  in
  let inst = Instance.make ~platform ~jobs in

  (* The exact optimal max-stretch, computed in rational arithmetic. *)
  let opt = Gripps_core.Offline.optimal_max_stretch inst in
  Printf.printf "exact optimal max-stretch: S* = %s = %.6f\n\n" (Q.to_string opt)
    (Q.to_float opt);

  (* Simulate three schedulers and print their metrics. *)
  let show scheduler =
    let schedule = Sim.run scheduler inst in
    assert (Schedule.validate schedule = []);
    let m = Metrics.of_schedule schedule in
    Printf.printf "%-12s max-stretch = %.4f   sum-stretch = %.4f\n" scheduler.Sim.name
      m.Metrics.max_stretch m.Metrics.sum_stretch
  in
  show Gripps_sched.List_sched.swrpt;
  show Gripps_core.Online_lp.online;
  show Gripps_core.Offline.scheduler;

  (* Inspect the realized optimal schedule segment by segment, then as a
     text Gantt chart. *)
  let optimal_schedule = Sim.run Gripps_core.Offline.scheduler inst in
  Printf.printf "\nrealized optimal schedule:\n";
  Format.printf "%a@." Schedule.pp optimal_schedule;
  Printf.printf "\n%s" (Gantt.render ~width:60 optimal_schedule)
