(* The flat (zero-allocation) engine path: a steady-state allocation
   budget pinned by the [sim.minor_words] counter, and a qcheck
   differential pinning the flat-buffer adapter byte-identical to the
   legacy list path across all five priority rules, under crash faults,
   on a restricted-availability platform, sharded over a 2-domain
   pool. *)

open Gripps_model
open Gripps_engine
open Gripps_sched
module W = Gripps_workload
module Pool = Gripps_parallel.Pool

(* ---- zero-allocation steady state ------------------------------------- *)

let minor_words () =
  match Gripps_obs.Obs.counter_value "sim.minor_words" with
  | Some w -> w
  | None -> 0

(* The engine allocates O(n) once per run (the completion option array
   and metric copies of the epilogue) and nothing per event; the
   epilogue amortizes to ~2 minor words per event on this workload.  A
   single leaked box in the hot loop adds >= 2 words to every event and
   blows the 3.0 budget, so the bound pins the loop at zero without
   being flaky about the fixed epilogue. *)
let test_zero_allocation_steady_state () =
  Gripps_obs.Obs.with_level Gripps_obs.Obs.Counters (fun () ->
      let cfg =
        W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0
          ~horizon:50_000.0 ()
      in
      let inst = W.Generator.instance (Gripps_rng.Splitmix.create 42) cfg in
      let run () =
        Sim.run_report_flat ~horizon:1e12 ~record:false List_sched.flat_swpt
          inst
      in
      (* Warm the engine state and the buffer columns: first-run growth
         to the working size is the one allocation steady state keeps. *)
      ignore (run ());
      let mw0 = minor_words () in
      let gc0 = Gc.minor_words () in
      let rep = run () in
      let gc_dw = Gc.minor_words () -. gc0 in
      let dw = minor_words () - mw0 in
      let events = float_of_int rep.Sim.events in
      let per_event = float_of_int dw /. events in
      (* The raw [Gc.minor_words] delta around the run additionally
         covers anything the engine's own counter window might miss
         (argument passing, the report record itself). *)
      let gc_per_event = gc_dw /. events in
      Alcotest.(check bool)
        (Printf.sprintf "workload is a real steady state (%d events)"
           rep.Sim.events)
        true
        (rep.Sim.events > 5_000);
      Alcotest.(check bool)
        (Printf.sprintf "engine minor words per event <= 3.0 (measured %.2f)"
           per_event)
        true
        (per_event <= 3.0);
      Alcotest.(check bool)
        (Printf.sprintf "Gc.minor_words per event <= 3.0 (measured %.2f)"
           gc_per_event)
        true
        (gc_per_event <= 3.0))

(* ---- differential: flat buffer vs legacy list path --------------------- *)

(* Two databanks, one machine of each flavor plus one hosting both, so
   the heap walk faces genuinely restricted availability. *)
let restricted_platform =
  Platform.make
    ~machines:
      [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; false |];
        Machine.make ~id:1 ~speed:2.0 ~databanks:[| false; true |];
        Machine.make ~id:2 ~speed:1.0 ~databanks:[| true; true |] ]
    ~num_databanks:2

let rule_pairs =
  [| ("FCFS", List_sched.flat_fcfs, List_sched.fcfs);
     ("SPT", List_sched.flat_spt, List_sched.spt);
     ("SRPT", List_sched.flat_srpt, List_sched.srpt);
     ("SWPT", List_sched.flat_swpt, List_sched.swpt);
     ("SWRPT", List_sched.flat_swrpt, List_sched.swrpt) |]

let scenario_gen =
  QCheck2.Gen.(
    let* jobs =
      list_size (int_range 4 20)
        (let* release = map (fun i -> float_of_int i /. 2.0) (int_range 0 16) in
         let* size = map (fun i -> float_of_int i /. 2.0) (int_range 1 6) in
         let* databank = int_range 0 1 in
         return (release, size, databank))
    in
    (* At most one crash outage per machine, each with a recovery edge,
       so outages never overlap on a machine and no databank loses its
       replicas forever (which would stall the run, not schedule it). *)
    let* outages =
      flatten_l
        (List.map
           (fun machine ->
             let* present = bool in
             if not present then return None
             else
               let* t =
                 map (fun i -> float_of_int i /. 2.0) (int_range 0 14)
               in
               let* dur =
                 map (fun i -> float_of_int i /. 2.0) (int_range 1 4)
               in
               return (Some (machine, t, dur)))
           [ 0; 1; 2 ])
    in
    return (jobs, List.filter_map Fun.id outages))

let faults_of outages =
  List.concat_map
    (fun (machine, t, dur) ->
      [ { Fault.time = t; machine; up = false };
        { Fault.time = t +. dur; machine; up = true } ])
    outages
  |> Fault.normalize

let same_report (a : Sim.report) (b : Sim.report) =
  a.Sim.metrics = b.Sim.metrics
  && a.Sim.schedule.Schedule.segments = b.Sim.schedule.Schedule.segments
  && a.Sim.schedule.Schedule.completion = b.Sim.schedule.Schedule.completion
  && a.Sim.lost = b.Sim.lost
  && a.Sim.events = b.Sim.events
  && a.Sim.replans = b.Sim.replans

(* A 2-domain pool: the flat-vs-legacy comparison runs sharded across
   domains, which doubles as a determinism check on the parallel path. *)
let pool = Pool.create ~domains:2 ()

let prop_flat_matches_legacy =
  QCheck2.Test.make
    ~name:"flat plan buffer = legacy list path (5 rules, crashes, 2-domain pool)"
    ~count:60 scenario_gen
    (fun (jobs, outages) ->
      let inst =
        Instance.make ~platform:restricted_platform
          ~jobs:
            (List.mapi
               (fun i (release, size, databank) ->
                 Job.make ~id:i ~release ~size ~databank)
               jobs)
      in
      let faults = faults_of outages in
      Pool.map_list pool ~shards:(Array.length rule_pairs) (fun i ->
          let _, flat, legacy = rule_pairs.(i) in
          let a =
            Sim.run_report_flat ~horizon:1e7 ~faults ~loss:Fault.Crash flat
              inst
          in
          let b =
            Sim.run_report ~horizon:1e7 ~faults ~loss:Fault.Crash legacy inst
          in
          same_report a b)
      |> List.for_all Fun.id)

let suite =
  ( "flat",
    [ Alcotest.test_case "steady state allocates nothing per event" `Quick
        test_zero_allocation_steady_state;
      QCheck_alcotest.to_alcotest prop_flat_matches_legacy ] )
