(* Experiment harness: statistics, ratio normalization, table aggregation
   and rendering — on tiny, fast configurations. *)

module E = Gripps_experiments
module W = Gripps_workload

let test_stats () =
  let s = E.Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-12)) "mean" 2.5 s.E.Stats.mean;
  Alcotest.(check (float 1e-9)) "sd" (sqrt 1.25) s.E.Stats.sd;
  Alcotest.(check (float 1e-12)) "max" 4.0 s.E.Stats.max;
  Alcotest.(check int) "count" 4 s.E.Stats.count;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (E.Stats.summarize []))

let test_quantile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-12)) "median" 3.0 (E.Stats.quantile xs ~q:0.5);
  Alcotest.(check (float 1e-12)) "min" 1.0 (E.Stats.quantile xs ~q:0.0);
  Alcotest.(check (float 1e-12)) "max" 5.0 (E.Stats.quantile xs ~q:1.0);
  Alcotest.(check (float 1e-12)) "interpolated" 1.5 (E.Stats.quantile xs ~q:0.125)

let tiny_config =
  W.Config.make ~sites:2 ~databases:2 ~availability:0.9 ~density:1.0 ~horizon:8.0 ()

let results = lazy (E.Runner.run_config ~seed:4242 ~instances:2 tiny_config)

let test_runner_portfolio () =
  let rs = Lazy.force results in
  Alcotest.(check int) "two instances" 2 (List.length rs);
  List.iter
    (fun (r : E.Runner.instance_result) ->
      (* Bender98 included (2 sites <= 3): full 11-row portfolio. *)
      Alcotest.(check int) "all schedulers" 11 (List.length r.E.Runner.measurements);
      List.iter
        (fun (m : E.Runner.measurement) ->
          Alcotest.(check bool) "positive stretch metrics" true
            (m.E.Runner.max_stretch > 0.0 && m.E.Runner.sum_stretch > 0.0))
        r.E.Runner.measurements)
    rs

let test_ratios_normalized () =
  let rs = Lazy.force results in
  List.iter
    (fun r ->
      let ratios = E.Runner.ratios r in
      (* Every ratio >= 1 and at least one equals 1 per metric. *)
      List.iter
        (fun (x : E.Runner.ratio) ->
          Alcotest.(check bool) "max ratio >= 1" true (x.E.Runner.max_ratio >= 1.0 -. 1e-9);
          Alcotest.(check bool) "sum ratio >= 1" true (x.E.Runner.sum_ratio >= 1.0 -. 1e-9))
        ratios;
      Alcotest.(check bool) "someone is best (max)" true
        (List.exists (fun (x : E.Runner.ratio) -> x.E.Runner.max_ratio < 1.0 +. 1e-9) ratios);
      Alcotest.(check bool) "someone is best (sum)" true
        (List.exists (fun (x : E.Runner.ratio) -> x.E.Runner.sum_ratio < 1.0 +. 1e-9) ratios))
    rs

let test_offline_near_best_max_ratio () =
  (* The exact Offline algorithm must (up to fp realization noise) be the
     best max-stretch row — the paper's anomaly, fixed. *)
  let rs = Lazy.force results in
  List.iter
    (fun r ->
      let ratios = E.Runner.ratios r in
      let offline =
        List.find (fun (x : E.Runner.ratio) -> x.E.Runner.scheduler = "Offline") ratios
      in
      Alcotest.(check bool) "offline ratio ~ 1" true
        (offline.E.Runner.max_ratio < 1.0 +. 1e-4))
    rs

let test_bender98_gated_on_big_platforms () =
  let big = { tiny_config with W.Config.sites = 10; horizon = 4.0 } in
  let rs = E.Runner.run_config ~seed:7 ~instances:1 big in
  List.iter
    (fun (r : E.Runner.instance_result) ->
      Alcotest.(check bool) "Bender98 skipped" false
        (List.exists
           (fun (m : E.Runner.measurement) -> m.E.Runner.scheduler = "Bender98")
           r.E.Runner.measurements))
    rs

let test_table_aggregation_and_render () =
  let rs = Lazy.force results in
  let t = E.Tables.table1 rs in
  Alcotest.(check int) "rows" 11 (List.length t.E.Tables.rows);
  Alcotest.(check int) "instances" 2 t.E.Tables.instances;
  let txt = E.Render.table t in
  Alcotest.(check bool) "has header" true
    (String.length txt > 0
     &&
     let contains sub =
       let n = String.length txt and m = String.length sub in
       let rec go i = i + m <= n && (String.sub txt i m = sub || go (i + 1)) in
       go 0
     in
     contains "Max-stretch" && contains "Sum-stretch" && contains "Offline")

let test_partitioned_tables () =
  let rs = Lazy.force results in
  let t = E.Tables.by_sites rs 2 in
  Alcotest.(check int) "partition keeps all instances" 2 t.E.Tables.instances;
  let empty = E.Tables.by_sites rs 20 in
  Alcotest.(check int) "missing partition is empty" 0 empty.E.Tables.instances

let test_figure_sweep_smoke () =
  let base =
    W.Config.make ~sites:2 ~databases:1 ~availability:1.0 ~density:1.0 ~horizon:6.0 ()
  in
  let samples =
    E.Figures.sweep ~seed:5 ~instances_per_density:2 ~densities:[ 0.5; 2.0 ] ~base ()
  in
  Alcotest.(check int) "two densities" 2 (List.length samples);
  List.iter
    (fun (s : E.Figures.sample) ->
      Alcotest.(check bool) "degradations non-negative" true
        (s.E.Figures.optimized_degradation >= 0.0
         && s.E.Figures.non_optimized_degradation >= 0.0))
    samples;
  let txt_a = E.Render.figure3a samples and txt_b = E.Render.figure3b samples in
  Alcotest.(check bool) "renders" true (String.length txt_a > 0 && String.length txt_b > 0)

let suite =
  ( "experiments",
    [ Alcotest.test_case "stats" `Quick test_stats;
      Alcotest.test_case "quantile" `Quick test_quantile;
      Alcotest.test_case "runner portfolio" `Slow test_runner_portfolio;
      Alcotest.test_case "ratios normalized" `Slow test_ratios_normalized;
      Alcotest.test_case "offline best max ratio" `Slow test_offline_near_best_max_ratio;
      Alcotest.test_case "bender98 gated" `Slow test_bender98_gated_on_big_platforms;
      Alcotest.test_case "table aggregation" `Slow test_table_aggregation_and_render;
      Alcotest.test_case "partitioned tables" `Slow test_partitioned_tables;
      Alcotest.test_case "figure sweep smoke" `Slow test_figure_sweep_smoke ] )

(* Published-table reference data and the ranking comparison. *)
let test_paper_reference_lookup () =
  let t1 = E.Paper_reference.table 1 in
  Alcotest.(check int) "table 1 rows" 11 (List.length t1);
  let offline = List.hd t1 in
  Alcotest.(check (float 1e-9)) "offline max max (the paper's anomaly)" 1.0167
    offline.E.Paper_reference.max_max;
  Alcotest.(check int) "table 2 has no Bender98 row" 10
    (List.length (E.Paper_reference.table 2));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Paper_reference: table number outside 1-16") (fun () ->
      ignore (E.Paper_reference.table 17))

let test_spearman () =
  let s = E.Paper_reference.spearman in
  Alcotest.(check (float 1e-9)) "identical order" 1.0
    (s [ 1.0; 2.0; 3.0 ] [ 10.0; 20.0; 30.0 ]);
  Alcotest.(check (float 1e-9)) "reversed order" (-1.0)
    (s [ 1.0; 2.0; 3.0 ] [ 30.0; 20.0; 10.0 ]);
  Alcotest.(check (float 1e-9)) "monotone transform invariant" 1.0
    (s [ 1.0; 2.0; 3.0; 4.0 ] [ 1.0; 8.0; 27.0; 64.0 ]);
  Alcotest.(check bool) "ties handled" true
    (abs_float (s [ 1.0; 1.0; 2.0 ] [ 1.0; 1.0; 2.0 ] -. 1.0) < 1e-9);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Paper_reference.spearman: length mismatch") (fun () ->
      ignore (s [ 1.0 ] [ 1.0; 2.0 ]))

let test_comparison_plumbing () =
  let rs = Lazy.force results in
  let t = E.Tables.table1 rs in
  let c = E.Paper_reference.compare_tables 1 t in
  Alcotest.(check int) "all 11 heuristics matched" 11 c.E.Paper_reference.common_rows;
  Alcotest.(check bool) "correlations in range" true
    (abs_float c.E.Paper_reference.spearman_max <= 1.0
     && abs_float c.E.Paper_reference.spearman_sum <= 1.0);
  let txt = E.Paper_reference.render_comparison [ c ] in
  Alcotest.(check bool) "renders" true (String.length txt > 0)

let suite =
  ( fst suite,
    snd suite
    @ [ Alcotest.test_case "paper reference lookup" `Quick test_paper_reference_lookup;
        Alcotest.test_case "spearman" `Quick test_spearman;
        Alcotest.test_case "comparison plumbing" `Slow test_comparison_plumbing ] )

(* End-to-end integration on generator-produced instances: every portfolio
   scheduler yields a valid complete schedule, and the exact offline
   optimum lower-bounds every realized max-stretch. *)
let prop_pipeline_integration =
  QCheck2.Test.make ~name:"full pipeline on generated instances" ~count:8
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 3))
    (fun (seed, density_q) ->
      let config =
        W.Config.make ~sites:2 ~databases:2 ~availability:0.8
          ~density:(float_of_int density_q) ~horizon:6.0 ()
      in
      let rng = Gripps_rng.Splitmix.create seed in
      let inst = Gripps_workload.Generator.instance rng config in
      let opt =
        Gripps_numeric.Rat.to_float (Gripps_core.Offline.optimal_max_stretch inst)
      in
      List.for_all
        (fun s ->
          let sched = Gripps_engine.Sim.run ~horizon:1e9 s inst in
          let m = Gripps_model.Metrics.of_schedule sched in
          Gripps_model.Schedule.validate sched = []
          && Gripps_model.Schedule.all_completed sched
          && m.Gripps_model.Metrics.max_stretch >= opt -. (1e-5 *. Float.max 1.0 opt))
        (E.Sched_registry.schedulers E.Sched_registry.paper_panel))

let suite =
  (fst suite, snd suite @ [ QCheck_alcotest.to_alcotest prop_pipeline_integration ])

(* Scale experiment: one tiny size, full panel, legacy oracle on — the
   identity bit is the differential gate CI relies on. *)
let test_scale_smoke () =
  let r = E.Scale.run ~sizes:[ 60 ] ~legacy_cap:100 ~seed:9 () in
  Alcotest.(check int) "one entry per panel scheduler"
    (List.length E.Scale.panel_names) (List.length r.E.Scale.entries);
  List.iter
    (fun (e : E.Scale.entry) ->
      Alcotest.(check bool) "realized jobs > 0" true (e.E.Scale.jobs > 0);
      Alcotest.(check bool) "events counted" true (e.E.Scale.events > 0);
      match e.E.Scale.legacy with
      | None -> Alcotest.fail "legacy oracle should run below the cap"
      | Some l ->
        Alcotest.(check bool) "byte-identical to resort" true
          l.E.Scale.l_identical)
    r.E.Scale.entries;
  Alcotest.(check bool) "report identity bit" true r.E.Scale.identical;
  (* The JSON artifact carries the gate CI greps for. *)
  let js = E.Scale.to_json r in
  let contains sub =
    let n = String.length js and m = String.length sub in
    let rec go i = i + m <= n && (String.sub js i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json gate present" true
    (contains "\"identical\": true");
  Alcotest.(check bool) "render mentions the verdict" true
    (String.length (E.Scale.render r) > 0)

let test_scale_above_cap_skips_legacy () =
  let r = E.Scale.run ~sizes:[ 60 ] ~legacy_cap:10 ~schedulers:[ "SRPT" ] ~seed:9 () in
  (match r.E.Scale.entries with
   | [ e ] -> Alcotest.(check bool) "no oracle above cap" true (e.E.Scale.legacy = None)
   | _ -> Alcotest.fail "expected exactly one entry");
  Alcotest.(check bool) "identity bit vacuously true" true r.E.Scale.identical

let suite =
  ( fst suite,
    snd suite
    @ [ Alcotest.test_case "scale smoke" `Slow test_scale_smoke;
        Alcotest.test_case "scale above legacy cap" `Quick
          test_scale_above_cap_skips_legacy ] )
