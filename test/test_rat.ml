(* Rat: field axioms, exact float conversion, ordering. *)

module B = Gripps_numeric.Bigint
module Q = Gripps_numeric.Rat

let q = Q.of_ints
let check_q msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let test_normalization () =
  check_q "6/4 = 3/2" "3/2" (q 6 4);
  check_q "-6/4" "-3/2" (q (-6) 4);
  check_q "6/-4" "-3/2" (q 6 (-4));
  check_q "-6/-4" "3/2" (q (-6) (-4));
  check_q "0/7" "0" (q 0 7);
  check_q "int form" "5" (q 5 1);
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () -> ignore (q 1 0))

let test_arith () =
  check_q "1/2 + 1/3" "5/6" (Q.add (q 1 2) (q 1 3));
  check_q "1/2 - 1/3" "1/6" (Q.sub (q 1 2) (q 1 3));
  check_q "2/3 * 9/4" "3/2" (Q.mul (q 2 3) (q 9 4));
  check_q "1/2 / 1/3" "3/2" (Q.div (q 1 2) (q 1 3));
  check_q "inv -2/5" "-5/2" (Q.inv (q (-2) 5));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Q.div Q.one Q.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.lt (q 1 3) (q 1 2));
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.lt (q (-1) 2) (q 1 3));
  Alcotest.(check bool) "equal cross forms" true (Q.equal (q 2 4) (q 1 2));
  Alcotest.(check int) "sign neg" (-1) (Q.sign (q (-3) 7));
  check_q "min" "1/3" (Q.min_rat (q 1 2) (q 1 3));
  check_q "max" "1/2" (Q.max_rat (q 1 2) (q 1 3))

let test_floor_ceil () =
  Alcotest.(check string) "floor 7/2" "3" (B.to_string (Q.floor (q 7 2)));
  Alcotest.(check string) "ceil 7/2" "4" (B.to_string (Q.ceil (q 7 2)));
  Alcotest.(check string) "floor -7/2" "-4" (B.to_string (Q.floor (q (-7) 2)));
  Alcotest.(check string) "ceil -7/2" "-3" (B.to_string (Q.ceil (q (-7) 2)));
  Alcotest.(check string) "floor 4" "4" (B.to_string (Q.floor (q 4 1)))

let test_of_float_exact () =
  check_q "0.5" "1/2" (Q.of_float 0.5);
  check_q "0.25" "1/4" (Q.of_float 0.25);
  check_q "3.0" "3" (Q.of_float 3.0);
  check_q "-1.5" "-3/2" (Q.of_float (-1.5));
  check_q "0.0" "0" (Q.of_float 0.0);
  (* 0.1 is NOT 1/10 in binary; conversion must be exact, not pretty. *)
  check_q "0.1 exact" "3602879701896397/36028797018963968" (Q.of_float 0.1);
  Alcotest.check_raises "nan" (Invalid_argument "Rat.of_float: nan") (fun () ->
      ignore (Q.of_float nan))

let test_of_string () =
  check_q "frac" "3/2" (Q.of_string "3/2");
  check_q "frac unnormalized" "3/2" (Q.of_string "6/4");
  check_q "int" "-7" (Q.of_string "-7");
  check_q "decimal" "5/4" (Q.of_string "1.25");
  check_q "neg decimal" "-3/2" (Q.of_string "-1.5")

let float_gen = QCheck2.Gen.float_range (-1e6) 1e6

let prop_of_float_roundtrip =
  QCheck2.Test.make ~name:"of_float/to_float exact round-trip" ~count:500 float_gen
    (fun f -> Q.to_float (Q.of_float f) = f)

let rat_gen =
  QCheck2.Gen.(
    let* n = int_range (-10_000) 10_000 in
    let* d = int_range 1 10_000 in
    return (q n d))

let prop_field_axioms =
  QCheck2.Test.make ~name:"field axioms" ~count:300
    QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c))
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.add a (Q.neg a)) Q.zero
      && (Q.is_zero a || Q.equal (Q.mul a (Q.inv a)) Q.one))

let prop_compare_antisymmetric =
  QCheck2.Test.make ~name:"ordering consistent with arithmetic" ~count:300
    QCheck2.Gen.(triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      Q.compare a b = -Q.compare b a
      && (Q.compare a b <> Q.compare b c || Q.compare a c = Q.compare a b
          || Q.compare a b = 0)
      && Q.compare (Q.add a c) (Q.add b c) = Q.compare a b)

let prop_exact_sum_of_floats =
  QCheck2.Test.make ~name:"rational sums of floats are exact" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) float_gen)
    (fun fs ->
      (* Summing forward and backward gives the same exact rational, while
         float sums would differ; this is the property the offline solver
         relies on. *)
      let sum l = List.fold_left (fun acc f -> Q.add acc (Q.of_float f)) Q.zero l in
      Q.equal (sum fs) (sum (List.rev fs)))

(* ---- fast path vs Bigint reference ------------------------------------

   Rat serves small values with overflow-checked native arithmetic and
   falls back to Bigint.  These properties recompute every operation
   through Q.make on raw Bigint products — a route that never uses the
   checked fast path — on operands drawn around the overflow boundaries
   (2^31, max_int/2, max_int), so both the hit and the fall branches are
   exercised and must agree. *)

let boundary_int_gen =
  QCheck2.Gen.(
    let* base =
      oneof
        [ int_range (-1000) 1000;
          map (fun k -> (1 lsl 31) + k) (int_range (-3) 3);
          map (fun k -> (max_int / 2) + k) (int_range (-3) 3);
          map (fun k -> max_int - k) (int_range 0 3) ]
    in
    let* neg = bool in
    return (if neg then -base else base))

let boundary_rat_gen =
  QCheck2.Gen.(
    let* n = boundary_int_gen in
    let* d = boundary_int_gen in
    return (q n (if d = 0 then 1 else d)))

let ref_add a b =
  Q.make
    (B.add (B.mul (Q.num a) (Q.den b)) (B.mul (Q.num b) (Q.den a)))
    (B.mul (Q.den a) (Q.den b))

let ref_mul a b = Q.make (B.mul (Q.num a) (Q.num b)) (B.mul (Q.den a) (Q.den b))

let prop_fast_path_matches_reference =
  QCheck2.Test.make ~name:"fast path agrees with Bigint reference" ~count:1000
    QCheck2.Gen.(pair boundary_rat_gen boundary_rat_gen)
    (fun (a, b) ->
      Q.equal (Q.add a b) (ref_add a b)
      && Q.equal (Q.sub a b) (ref_add a (Q.neg b))
      && Q.equal (Q.mul a b) (ref_mul a b)
      && (Q.is_zero b || Q.equal (Q.div a b) (ref_mul a (Q.inv b)))
      && Q.compare a b
         = B.compare (B.mul (Q.num a) (Q.den b)) (B.mul (Q.num b) (Q.den a)))

let prop_fast_path_string_identical =
  QCheck2.Test.make
    ~name:"fast and fallback results render identically (canonical form)"
    ~count:500
    QCheck2.Gen.(pair boundary_rat_gen boundary_rat_gen)
    (fun (a, b) ->
      String.equal (Q.to_string (Q.add a b)) (Q.to_string (ref_add a b))
      && String.equal (Q.to_string (Q.mul a b)) (Q.to_string (ref_mul a b)))

let test_fast_path_counters () =
  Q.reset_stats ();
  ignore (Q.add (q 1 2) (q 1 3));
  let s = Q.stats () in
  Alcotest.(check bool) "small add hits" true (s.Q.fast_hits > 0);
  Alcotest.(check int) "small add does not fall" 0 s.Q.fast_falls;
  Q.reset_stats ();
  (* (max_int-1)/1 + (max_int-1)/1 overflows the native numerator. *)
  let big = q (max_int - 1) 1 in
  let sum = Q.add big big in
  let s = Q.stats () in
  Alcotest.(check bool) "overflow falls back" true (s.Q.fast_falls > 0);
  Alcotest.(check bool) "fallback result exact" true
    (Q.equal sum (Q.make (B.mul (B.of_int 2) (B.of_int (max_int - 1))) (B.of_int 1)));
  Q.reset_stats ()

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_of_float_roundtrip; prop_field_axioms; prop_compare_antisymmetric;
      prop_exact_sum_of_floats; prop_fast_path_matches_reference;
      prop_fast_path_string_identical ]

let suite =
  ( "rat",
    [ Alcotest.test_case "normalization" `Quick test_normalization;
      Alcotest.test_case "arithmetic" `Quick test_arith;
      Alcotest.test_case "comparison" `Quick test_compare;
      Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
      Alcotest.test_case "of_float exactness" `Quick test_of_float_exact;
      Alcotest.test_case "of_string" `Quick test_of_string;
      Alcotest.test_case "fast-path counters" `Quick test_fast_path_counters ]
    @ qcheck_cases )
