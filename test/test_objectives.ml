(* The first-class objective layer: eval's ℓ_p laws (exactness at p = 1
   and p = ∞, monotone convergence, the n^(1/p) gap bound), bit-identity
   of the rebuilt Metrics.t with the historical five-accumulator loop,
   the typed Incomplete signal, per-user fairness, the redesigned
   registry (predicate selection, case-insensitive lookup, panels), the
   size-blind EQUI/RR schedulers, and the objective-parameterized
   tables. *)

open Gripps_model
module E = Gripps_experiments
module W = Gripps_workload
module Sim = Gripps_engine.Sim

(* ---- a completed run to evaluate objectives on ------------------------ *)

let completed_instance ?(users = 1) seed =
  let c =
    W.Config.make ~sites:2 ~databases:2 ~availability:0.8 ~density:1.5
      ~horizon:8.0 ~users ()
  in
  let inst = W.Generator.instance (Gripps_rng.Splitmix.create seed) c in
  let sched = Sim.run ~horizon:1e9 Gripps_sched.List_sched.srpt inst in
  let completion =
    Array.init (Instance.num_jobs inst) (fun j ->
        Option.get sched.Schedule.completion.(j))
  in
  (inst, completion)

(* ---- ℓ_p laws ---------------------------------------------------------- *)

let prop_lp_limits_exact =
  QCheck2.Test.make ~name:"Lp_stretch exact at p = 1 and p = inf" ~count:30
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let inst, completion = completed_instance seed in
      let m = Metrics.of_completion inst ~completion in
      Metrics.eval (Metrics.Lp_stretch 1.0) inst ~completion
        = m.Metrics.sum_stretch
      && Metrics.eval (Metrics.Lp_stretch infinity) inst ~completion
         = m.Metrics.max_stretch
      && Metrics.eval (Metrics.Lp_flow 1.0) inst ~completion
         = m.Metrics.sum_flow
      && Metrics.eval (Metrics.Lp_flow infinity) inst ~completion
         = m.Metrics.max_flow)

let prop_lp_monotone =
  QCheck2.Test.make
    ~name:"Lp_stretch monotone non-increasing in p, converging to the max"
    ~count:30
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let inst, completion = completed_instance seed in
      let ps = [ 1.0; 1.5; 2.0; 3.0; 8.0; 32.0; infinity ] in
      let vs =
        List.map (fun p -> Metrics.eval (Metrics.Lp_stretch p) inst ~completion) ps
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) ->
          (* tiny relative slack for the float power chain *)
          b <= a +. (1e-9 *. Float.max 1.0 a) && non_increasing rest
        | _ -> true
      in
      non_increasing vs)

let prop_lp_gap_bound =
  QCheck2.Test.make
    ~name:"max <= Lp_stretch p <= max * n^(1/p)" ~count:30
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 2 16))
    (fun (seed, p_num) ->
      let p = float_of_int p_num in
      let inst, completion = completed_instance seed in
      let n = float_of_int (Instance.num_jobs inst) in
      let mx = Metrics.eval Metrics.Max_stretch inst ~completion in
      let lp = Metrics.eval (Metrics.Lp_stretch p) inst ~completion in
      let slack = 1e-9 *. Float.max 1.0 mx in
      lp >= mx -. slack && lp <= (mx *. (n ** (1.0 /. p))) +. slack)

(* ---- bit-identity with the historical accumulator loop ----------------- *)

(* The pre-objective [of_completion]: one loop, five accumulators, in
   this exact order.  The refactored per-field loops must reproduce it
   bit for bit. *)
let legacy_of_completion inst ~completion =
  let n = Instance.num_jobs inst in
  if n = 0 then (0.0, 0.0, 0.0, 0.0, 0.0)
  else begin
    let makespan = ref 0.0 and max_flow = ref 0.0 and sum_flow = ref 0.0 in
    let max_stretch = ref 0.0 and sum_stretch = ref 0.0 in
    for j = 0 to n - 1 do
      let f = Metrics.flow inst ~completion j in
      let s = Metrics.stretch inst ~completion j in
      makespan := Float.max !makespan completion.(j);
      max_flow := Float.max !max_flow f;
      sum_flow := !sum_flow +. f;
      max_stretch := Float.max !max_stretch s;
      sum_stretch := !sum_stretch +. s
    done;
    (!makespan, !max_flow, !sum_flow, !max_stretch, !sum_stretch)
  end

let prop_bit_identical_to_legacy =
  QCheck2.Test.make
    ~name:"of_completion bit-identical to the historical single loop"
    ~count:50
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let inst, completion = completed_instance seed in
      let m = Metrics.of_completion inst ~completion in
      let mk, mf, sf, ms, ss = legacy_of_completion inst ~completion in
      m.Metrics.makespan = mk && m.Metrics.max_flow = mf
      && m.Metrics.sum_flow = sf && m.Metrics.max_stretch = ms
      && m.Metrics.sum_stretch = ss)

(* ---- typed Incomplete -------------------------------------------------- *)

let one_machine_platform =
  Platform.make
    ~machines:[ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true |] ]
    ~num_databanks:1

let test_incomplete_is_typed () =
  let inst =
    Instance.make ~platform:one_machine_platform
      ~jobs:
        [ Job.make ~id:0 ~release:0.0 ~size:1.0 ~databank:0;
          Job.make ~id:1 ~release:0.0 ~size:1.0 ~databank:0 ]
  in
  let sched =
    Schedule.make ~instance:inst ~segments:[]
      ~completion:[| Some 1.0; None |]
  in
  Alcotest.check_raises "job 1 never completed" (Metrics.Incomplete 1)
    (fun () -> ignore (Metrics.of_schedule sched))

(* ---- objective parsing and naming -------------------------------------- *)

let test_objective_of_string () =
  let check s expect =
    Alcotest.(check bool)
      (Printf.sprintf "parse %S" s)
      true
      (Metrics.objective_of_string s = expect)
  in
  check "max" (Some Metrics.Max_stretch);
  check "Max-Stretch" (Some Metrics.Max_stretch);
  check "sum" (Some Metrics.Sum_stretch);
  check "makespan" (Some Metrics.Makespan);
  check "max-flow" (Some Metrics.Max_flow);
  check "sum-flow" (Some Metrics.Sum_flow);
  check "user" (Some Metrics.Per_user_max_stretch);
  check "p1" (Some (Metrics.Lp_stretch 1.0));
  check "p2" (Some (Metrics.Lp_stretch 2.0));
  check "P2" (Some (Metrics.Lp_stretch 2.0));
  check "pinf" (Some (Metrics.Lp_stretch infinity));
  check "fp2" (Some (Metrics.Lp_flow 2.0));
  check "fpinf" (Some (Metrics.Lp_flow infinity));
  check "p0.5" None;
  check "p" None;
  check "bogus" None

let test_objective_names () =
  let check o s =
    Alcotest.(check string) s s (Metrics.objective_name o)
  in
  check Metrics.Max_stretch "max-stretch";
  check Metrics.Sum_stretch "sum-stretch";
  check (Metrics.Lp_stretch 2.0) "l2-stretch";
  check (Metrics.Lp_stretch infinity) "linf-stretch";
  check (Metrics.Lp_flow 3.0) "l3-flow";
  check Metrics.Per_user_max_stretch "user-max-stretch"

let test_eval_rejects_bad_p () =
  Alcotest.check_raises "p < 1 rejected"
    (Invalid_argument "Metrics.eval: Lp_stretch order must be >= 1")
    (fun () ->
      let inst, completion = completed_instance 1 in
      ignore (Metrics.eval (Metrics.Lp_stretch 0.5) inst ~completion))

(* ---- per-user fairness ------------------------------------------------- *)

let test_per_user_max_stretch_hand_computed () =
  (* Two users on one unit-speed machine: user 0 owns jobs 0 and 2,
     user 1 owns job 1.  SRPT order on sizes 1/2/1 released together:
     completions 1 (job 0), 2 (job 2), 4 (job 1).  Stretches: job0 = 1/1,
     job2 = 2/1, job1 = 4/2 -> user 0 aggregates 3, user 1 aggregates 2. *)
  let jobs =
    [ Job.with_user (Job.make ~id:0 ~release:0.0 ~size:1.0 ~databank:0) 0;
      Job.with_user (Job.make ~id:1 ~release:0.0 ~size:2.0 ~databank:0) 1;
      Job.with_user (Job.make ~id:2 ~release:0.0 ~size:1.0 ~databank:0) 0 ]
  in
  let inst = Instance.make ~platform:one_machine_platform ~jobs in
  Alcotest.(check int) "num_users" 2 (Instance.num_users inst);
  let completion = [| 1.0; 4.0; 2.0 |] in
  Alcotest.(check (float 0.0)) "worst per-user aggregate stretch" 3.0
    (Metrics.eval Metrics.Per_user_max_stretch inst ~completion);
  Alcotest.(check (float 0.0)) "sum over both users" 5.0
    (Metrics.eval Metrics.Sum_stretch inst ~completion)

let prop_single_user_degenerates_to_sum =
  QCheck2.Test.make
    ~name:"Per_user_max_stretch with one user = Sum_stretch" ~count:20
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let inst, completion = completed_instance seed in
      Metrics.eval Metrics.Per_user_max_stretch inst ~completion
      = Metrics.eval Metrics.Sum_stretch inst ~completion)

let test_generator_user_tags () =
  let seed = 7 in
  let tagged_inst, _ = completed_instance ~users:4 seed in
  let plain_inst, _ = completed_instance seed in
  Array.iter
    (fun (j : Job.t) ->
      Alcotest.(check bool) "tag in range" true (j.Job.user >= 0 && j.Job.user < 4))
    (Instance.jobs tagged_inst);
  Array.iter
    (fun (j : Job.t) -> Alcotest.(check int) "untagged user is 0" 0 j.Job.user)
    (Instance.jobs plain_inst);
  (* Tagging draws from the same stream after the job attributes, so the
     job set itself (ids, releases, sizes, databanks) is unchanged. *)
  Alcotest.(check int) "same job count" (Instance.num_jobs plain_inst)
    (Instance.num_jobs tagged_inst);
  Array.iteri
    (fun i (j : Job.t) ->
      let t = Instance.job tagged_inst i in
      Alcotest.(check bool) "same job attributes" true
        (j.Job.release = t.Job.release && j.Job.size = t.Job.size
        && j.Job.databank = t.Job.databank))
    (Instance.jobs plain_inst)

(* ---- the redesigned registry ------------------------------------------- *)

let table1_names =
  [ "Offline"; "Online"; "Online-EDF"; "Online-EGDF"; "Bender98"; "SWRPT";
    "SRPT"; "SPT"; "Bender02"; "MCT-Div"; "MCT" ]

let test_registry_shape () =
  Alcotest.(check (list string))
    "paper panel is the Table 1 portfolio in order" table1_names
    (E.Sched_registry.panel_names E.Sched_registry.paper_panel);
  Alcotest.(check (list string))
    "registry appends the non-clairvoyant extensions"
    (table1_names @ [ "EQUI"; "RR" ])
    (E.Sched_registry.panel_names E.Sched_registry.registry);
  Alcotest.(check (list string))
    "non-clairvoyant sub-panel" [ "EQUI"; "RR" ]
    (E.Sched_registry.panel_names
       (E.Sched_registry.select E.Sched_registry.is_nonclairvoyant))

let test_registry_find_case_insensitive () =
  let name n =
    match E.Sched_registry.find n with
    | Some e -> e.E.Sched_registry.name
    | None -> "<none>"
  in
  Alcotest.(check string) "exact" "SRPT" (name "SRPT");
  Alcotest.(check string) "lowercase" "SRPT" (name "srpt");
  Alcotest.(check string) "mixed case" "Online-EGDF" (name "online-egdf");
  Alcotest.(check string) "equi" "EQUI" (name "EqUi");
  Alcotest.(check bool) "unknown" true (E.Sched_registry.find "nope" = None);
  Alcotest.(check bool) "find_scheduler follows find" true
    (Option.is_some (E.Sched_registry.find_scheduler "rr"))

let test_registry_targets_and_describe () =
  let get n = Option.get (E.Sched_registry.find n) in
  Alcotest.(check bool) "Online targets max-stretch" true
    (E.Sched_registry.targets Metrics.Max_stretch (get "Online"));
  Alcotest.(check bool) "Online targets any stretch objective" true
    (E.Sched_registry.targets (Metrics.Lp_stretch 2.0) (get "Online"));
  Alcotest.(check bool) "MCT does not target stretch" false
    (E.Sched_registry.targets Metrics.Max_stretch (get "MCT"));
  Alcotest.(check bool) "SRPT targets flow" true
    (E.Sched_registry.targets Metrics.Sum_flow (get "SRPT"));
  let d = E.Sched_registry.describe (get "EQUI") in
  Alcotest.(check bool) "describe mentions the info model" true
    (String.length d > 0
    &&
    let contains sub =
      let n = String.length d and m = String.length sub in
      let rec go i = i + m <= n && (String.sub d i m = sub || go (i + 1)) in
      go 0
    in
    contains "non-clairvoyant")

(* ---- size-blind schedulers --------------------------------------------- *)

let test_equi_processor_sharing () =
  (* Two identical jobs sharing one unit-speed machine: both finish at 2. *)
  let inst =
    Instance.make ~platform:one_machine_platform
      ~jobs:
        [ Job.make ~id:0 ~release:0.0 ~size:1.0 ~databank:0;
          Job.make ~id:1 ~release:0.0 ~size:1.0 ~databank:0 ]
  in
  let sched = Sim.run ~horizon:1e9 Gripps_sched.Nonclairvoyant.equi inst in
  Alcotest.(check bool) "complete" true (Schedule.all_completed sched);
  Alcotest.(check (float 1e-6)) "job 0 shares to the end" 2.0
    (Option.get sched.Schedule.completion.(0));
  Alcotest.(check (float 1e-6)) "job 1 shares to the end" 2.0
    (Option.get sched.Schedule.completion.(1))

let test_rr_rotates () =
  (* Round-robin, quantum 1: job 0 runs [0,1) and finishes; job 1 owns
     the machine afterwards and finishes at 2. *)
  let inst =
    Instance.make ~platform:one_machine_platform
      ~jobs:
        [ Job.make ~id:0 ~release:0.0 ~size:1.0 ~databank:0;
          Job.make ~id:1 ~release:0.0 ~size:1.0 ~databank:0 ]
  in
  let sched = Sim.run ~horizon:1e9 Gripps_sched.Nonclairvoyant.rr inst in
  Alcotest.(check bool) "complete" true (Schedule.all_completed sched);
  Alcotest.(check (float 1e-6)) "job 0 first" 1.0
    (Option.get sched.Schedule.completion.(0));
  Alcotest.(check (float 1e-6)) "job 1 second" 2.0
    (Option.get sched.Schedule.completion.(1))

let prop_blind_schedulers_complete =
  QCheck2.Test.make
    ~name:"EQUI and RR run generated instances to a valid completion"
    ~count:20
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 1 3))
    (fun (seed, density_q) ->
      let c =
        W.Config.make ~sites:2 ~databases:2 ~availability:0.8
          ~density:(float_of_int density_q) ~horizon:6.0 ()
      in
      let inst = W.Generator.instance (Gripps_rng.Splitmix.create seed) c in
      List.for_all
        (fun s ->
          let sched = Sim.run ~horizon:1e9 s inst in
          Schedule.validate sched = [] && Schedule.all_completed sched)
        [ Gripps_sched.Nonclairvoyant.equi;
          Gripps_sched.Nonclairvoyant.rr;
          Gripps_sched.Nonclairvoyant.rr_with ~quantum:0.5 ])

let test_rr_rejects_bad_quantum () =
  Alcotest.check_raises "non-positive quantum"
    (Invalid_argument "Nonclairvoyant.rr_with: non-positive quantum")
    (fun () -> ignore (Gripps_sched.Nonclairvoyant.rr_with ~quantum:0.0))

(* ---- runner and table plumbing ------------------------------------------ *)

let small_config =
  W.Config.make ~sites:2 ~databases:2 ~availability:0.8 ~density:1.0
    ~horizon:4.0 ()

let test_runner_objectives_ride_along () =
  let inst =
    W.Generator.instance (Gripps_rng.Splitmix.create 5) small_config
  in
  let objectives = [ Metrics.Lp_stretch 2.0; Metrics.Per_user_max_stretch ] in
  let r =
    E.Runner.run_instance
      ~schedulers:
        [ Gripps_sched.List_sched.srpt; Gripps_sched.Nonclairvoyant.equi ]
      ~objectives small_config inst
  in
  Alcotest.(check int) "one measurement per scheduler" 2
    (List.length r.E.Runner.measurements);
  List.iter
    (fun (m : E.Runner.measurement) ->
      Alcotest.(check bool) "objectives in request order" true
        (List.map fst m.E.Runner.objectives = objectives);
      Alcotest.(check bool) "classic fields answer value" true
        (E.Runner.value m Metrics.Max_stretch = Some m.E.Runner.max_stretch);
      Alcotest.(check bool) "requested objective answers value" true
        (Option.is_some (E.Runner.value m (Metrics.Lp_stretch 2.0)));
      Alcotest.(check bool) "unrequested objective is None" true
        (E.Runner.value m Metrics.Makespan = None))
    r.E.Runner.measurements;
  let ratios = E.Runner.ratios_for (Metrics.Lp_stretch 2.0) r in
  Alcotest.(check int) "a ratio per measurement" 2 (List.length ratios);
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "min-best normalization >= 1" true (v >= 1.0))
    ratios;
  Alcotest.(check bool) "some scheduler attains the best" true
    (List.exists (fun (_, v) -> v = 1.0) ratios)

let test_lp_and_clairvoyance_tables () =
  let sweep ?schedulers ?objectives () =
    E.Tables.sweep ?schedulers ?objectives ~seed:3 ~instances_per_config:2
      ~configs:[ small_config ] ~horizon:4.0 ()
  in
  (* ℓ_p sweep on the default panel. *)
  let lp = E.Tables.lp_table (sweep ~objectives:E.Tables.lp_objectives ()) in
  Alcotest.(check int) "four ℓ_p columns" 4 (List.length lp.E.Tables.o_columns);
  Alcotest.(check bool) "rows present" true (lp.E.Tables.o_rows <> []);
  List.iter
    (fun (r : E.Tables.objective_row) ->
      Alcotest.(check int) "a cell per column" 4
        (List.length r.E.Tables.o_cells);
      Alcotest.(check bool) "every panel cell is populated" true
        (List.for_all Option.is_some r.E.Tables.o_cells))
    lp.E.Tables.o_rows;
  (* Clairvoyance gap on the full registry. *)
  let cl =
    E.Tables.clairvoyance_table
      (sweep
         ~schedulers:(E.Sched_registry.schedulers E.Sched_registry.registry)
         ())
  in
  let row name =
    List.find_opt
      (fun (r : E.Tables.objective_row) -> r.E.Tables.o_scheduler = name)
      cl.E.Tables.o_rows
  in
  Alcotest.(check bool) "EQUI row present" true (row "EQUI" <> None);
  Alcotest.(check bool) "RR row present" true (row "RR" <> None);
  Alcotest.(check string) "EQUI is marked non-clairvoyant" "non-clairvoyant"
    (Option.get (row "EQUI")).E.Tables.o_info;
  Alcotest.(check string) "SRPT is marked clairvoyant" "clairvoyant"
    (Option.get (row "SRPT")).E.Tables.o_info;
  (* Both tables render. *)
  Alcotest.(check bool) "lp table renders" true
    (String.length (E.Render.objective_table lp) > 0);
  Alcotest.(check bool) "clairvoyance table renders" true
    (String.length (E.Render.objective_table cl) > 0)

let suite =
  ( "objectives",
    [ QCheck_alcotest.to_alcotest prop_lp_limits_exact;
      QCheck_alcotest.to_alcotest prop_lp_monotone;
      QCheck_alcotest.to_alcotest prop_lp_gap_bound;
      QCheck_alcotest.to_alcotest prop_bit_identical_to_legacy;
      Alcotest.test_case "Incomplete is typed and carries the job" `Quick
        test_incomplete_is_typed;
      Alcotest.test_case "objective_of_string" `Quick test_objective_of_string;
      Alcotest.test_case "objective_name" `Quick test_objective_names;
      Alcotest.test_case "eval rejects p < 1" `Quick test_eval_rejects_bad_p;
      Alcotest.test_case "per-user max stretch, hand-computed" `Quick
        test_per_user_max_stretch_hand_computed;
      QCheck_alcotest.to_alcotest prop_single_user_degenerates_to_sum;
      Alcotest.test_case "generator tags users deterministically" `Quick
        test_generator_user_tags;
      Alcotest.test_case "registry shape and panels" `Quick test_registry_shape;
      Alcotest.test_case "registry find is case-insensitive" `Quick
        test_registry_find_case_insensitive;
      Alcotest.test_case "registry targets and describe" `Quick
        test_registry_targets_and_describe;
      Alcotest.test_case "EQUI is processor sharing" `Quick
        test_equi_processor_sharing;
      Alcotest.test_case "RR rotates on quantum boundaries" `Quick
        test_rr_rotates;
      QCheck_alcotest.to_alcotest prop_blind_schedulers_complete;
      Alcotest.test_case "rr_with rejects non-positive quantum" `Quick
        test_rr_rejects_bad_quantum;
      Alcotest.test_case "runner carries requested objectives" `Quick
        test_runner_objectives_ride_along;
      Alcotest.test_case "lp and clairvoyance tables" `Quick
        test_lp_and_clairvoyance_tables ] )
