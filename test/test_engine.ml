(* Engine: fluid semantics, event batching, plan horizons, invariant
   enforcement, and conservation laws under a random work-conserving
   scheduler. *)

open Gripps_model
open Gripps_engine

let mk_job ?(id = 0) ?(release = 0.0) ?(size = 1.0) ?(databank = 0) () =
  Job.make ~id ~release ~size ~databank

let run_all scheduler inst = Sim.run ~horizon:1e7 scheduler inst

(* A scheduler that runs every active job on every capable machine with
   equal shares: the "processor sharing" reference. *)
let fair_share =
  Sim.stateless "fair-share" (fun st _events ->
      let inst = Sim.instance st in
      let platform = Instance.platform inst in
      let active = Sim.active_jobs st in
      let allocation =
        Array.to_list (Platform.machines platform)
        |> List.filter_map (fun (m : Machine.t) ->
               let mine =
                 List.filter
                   (fun j -> Machine.hosts m (Instance.job inst j).Job.databank)
                   active
               in
               match mine with
               | [] -> None
               | _ ->
                 let share = 1.0 /. float_of_int (List.length mine) in
                 Some (m.Machine.id, List.map (fun j -> (j, share)) mine))
      in
      { Sim.allocation; horizon = None })

let test_single_job () =
  let inst =
    Instance.make ~platform:(Platform.single ~speed:2.0) ~jobs:[ mk_job ~size:6.0 () ]
  in
  let sched = run_all fair_share inst in
  Alcotest.(check (list string)) "valid" [] (Schedule.validate sched);
  Alcotest.(check (float 1e-9)) "completion" 3.0 (Schedule.completion_exn sched 0)

let test_two_jobs_sharing () =
  (* Two unit jobs released together on a unit machine under fair sharing:
     both complete at t = 2. *)
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0)
      ~jobs:[ mk_job ~size:1.0 (); mk_job ~id:1 ~size:1.0 () ]
  in
  let sched = run_all fair_share inst in
  Alcotest.(check (float 1e-9)) "C0" 2.0 (Schedule.completion_exn sched 0);
  Alcotest.(check (float 1e-9)) "C1" 2.0 (Schedule.completion_exn sched 1)

let test_arrival_preemption_point () =
  (* Job 0 alone until t = 1, then shares with job 1: C0 = 1 + 1 = 2 at
     half rate -> remaining 1 takes 2s -> C0 = 3; C1: 1 unit at half rate
     then full rate: worked 1 by t = 3, remaining 0... compute: between 1
     and 3 each gets 1 unit; job1 size 2 finishes its second unit alone by
     t = 4. *)
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0)
      ~jobs:[ mk_job ~size:2.0 (); mk_job ~id:1 ~release:1.0 ~size:2.0 () ]
  in
  let sched = run_all fair_share inst in
  Alcotest.(check (float 1e-9)) "C0" 3.0 (Schedule.completion_exn sched 0);
  Alcotest.(check (float 1e-9)) "C1" 4.0 (Schedule.completion_exn sched 1);
  Alcotest.(check (list string)) "valid" [] (Schedule.validate sched)

let test_simultaneous_arrivals_batched () =
  let batches = ref [] in
  let recorder =
    { Sim.name = "recorder";
      make =
        (fun _inst ->
          fun st events ->
            let arrivals =
              List.filter_map
                (fun e ->
                  match e with
                  | Sim.Arrival j -> Some j
                  | Sim.Completion _ | Sim.Boundary | Sim.Failure _ | Sim.Recovery _
                    -> None)
                events
            in
            if arrivals <> [] then batches := arrivals :: !batches;
            (* Run the lowest-id active job alone. *)
            match Sim.active_jobs st with
            | [] -> Sim.idle
            | j :: _ -> { Sim.allocation = [ (0, [ (j, 1.0) ]) ]; horizon = None }) }
  in
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0)
      ~jobs:
        [ mk_job ~size:1.0 (); mk_job ~id:1 ~size:1.0 ();
          mk_job ~id:2 ~release:5.0 ~size:1.0 () ]
  in
  ignore (run_all recorder inst);
  Alcotest.(check (list (list int))) "batches" [ [ 0; 1 ]; [ 2 ] ] (List.rev !batches)

let test_boundary_events () =
  (* A scheduler that only commits half time-quanta of 0.25 s. *)
  let quantum =
    Sim.stateless "quantum" (fun st _events ->
        match Sim.active_jobs st with
        | [] -> Sim.idle
        | j :: _ ->
          { Sim.allocation = [ (0, [ (j, 1.0) ]) ];
            horizon = Some (Sim.now st +. 0.25) })
  in
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0) ~jobs:[ mk_job ~size:1.0 () ]
  in
  let sched = run_all quantum inst in
  Alcotest.(check (float 1e-9)) "completion across quanta" 1.0
    (Schedule.completion_exn sched 0)

let test_idle_gap_then_arrival () =
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0)
      ~jobs:[ mk_job ~size:1.0 (); mk_job ~id:1 ~release:10.0 ~size:1.0 () ]
  in
  let sched = run_all fair_share inst in
  Alcotest.(check (float 1e-9)) "gap respected" 11.0 (Schedule.completion_exn sched 1)

let test_stalled_detection () =
  let lazy_sched = Sim.stateless "lazy" (fun _st _events -> Sim.idle) in
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0) ~jobs:[ mk_job ~size:1.0 () ]
  in
  match run_all lazy_sched inst with
  | _ -> Alcotest.fail "expected Stalled"
  | exception Sim.Stalled { pending; _ } ->
    Alcotest.(check (list int)) "pending job" [ 0 ] pending

let test_rejects_oversubscription () =
  let bad =
    Sim.stateless "bad" (fun st _events ->
        match Sim.active_jobs st with
        | [] -> Sim.idle
        | j :: _ -> { Sim.allocation = [ (0, [ (j, 0.7); (j, 0.7) ]) ]; horizon = None })
  in
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0) ~jobs:[ mk_job ~size:1.0 () ]
  in
  Alcotest.check_raises "oversubscribed" (Invalid_argument "bad: machine oversubscribed")
    (fun () -> ignore (run_all bad inst))

let test_rejects_wrong_databank () =
  let p =
    Platform.make
      ~machines:
        [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; false |];
          Machine.make ~id:1 ~speed:1.0 ~databanks:[| false; true |] ]
      ~num_databanks:2
  in
  let bad =
    Sim.stateless "bad-db" (fun st _events ->
        match Sim.active_jobs st with
        | [] -> Sim.idle
        | j :: _ -> { Sim.allocation = [ (1, [ (j, 1.0) ]) ]; horizon = None })
  in
  let inst = Instance.make ~platform:p ~jobs:[ mk_job ~size:1.0 ~databank:0 () ] in
  Alcotest.check_raises "missing databank"
    (Invalid_argument "bad-db: job allocated to machine missing its databank")
    (fun () -> ignore (run_all bad inst))

(* Remaining invalid-allocation rejections: each guard of the engine's
   [check_allocation] has a test pinning its message. *)

let one_job_inst () =
  Instance.make ~platform:(Platform.single ~speed:1.0) ~jobs:[ mk_job ~size:1.0 () ]

let reject_test name make_alloc expected =
  let bad =
    Sim.stateless name (fun st _events ->
        { Sim.allocation = make_alloc st; horizon = None })
  in
  Alcotest.check_raises expected (Invalid_argument (name ^ ": " ^ expected))
    (fun () -> ignore (run_all bad (one_job_inst ())))

let test_rejects_unknown_machine () =
  reject_test "bad-m" (fun _ -> [ (3, [ (0, 1.0) ]) ]) "allocation references unknown machine"

let test_rejects_unknown_job () =
  reject_test "bad-j" (fun _ -> [ (0, [ (9, 1.0) ]) ]) "allocation references unknown job"

let test_rejects_nonpositive_share () =
  reject_test "bad-s" (fun _ -> [ (0, [ (0, 0.0) ]) ]) "non-positive share"

let test_rejects_duplicate_entry () =
  (* Two sub-unit shares for the same job on one machine: the sum fits, so
     only the duplicate-entry guard can catch it. *)
  reject_test "bad-dup"
    (fun _ -> [ (0, [ (0, 0.3); (0, 0.3) ]) ])
    "duplicate entry for job 0 on machine 0"

let test_rejects_negative_share () =
  reject_test "bad-neg"
    (fun _ -> [ (0, [ (0, -0.5) ]) ])
    "negative share -0.5 for job 0 on machine 0"

let test_duplicate_across_machines_ok () =
  (* The duplicate guard is per machine: the same job may legitimately run
     on several machines at once. *)
  let spread =
    Sim.stateless "spread" (fun st _events ->
        match Sim.active_jobs st with
        | [] -> Sim.idle
        | j :: _ ->
          { Sim.allocation = [ (0, [ (j, 1.0) ]); (1, [ (j, 1.0) ]) ];
            horizon = None })
  in
  let inst =
    Instance.make ~platform:(Platform.uniform ~speeds:[ 1.0; 1.0 ])
      ~jobs:[ mk_job ~size:2.0 () ]
  in
  let sched = run_all spread inst in
  Alcotest.(check (float 1e-9)) "runs at combined speed" 1.0
    (Schedule.completion_exn sched 0)

let test_plan_version_and_dirty_set () =
  (* The version bumps at every scheduler invocation, and the dirty set
     after an invocation is the support of the plan it installed. *)
  let versions = ref [] and dirt = ref [] in
  let spy =
    Sim.stateless "version-spy" (fun st _events ->
        versions := Sim.plan_version st :: !versions;
        dirt := List.sort compare (Sim.dirty_jobs st) :: !dirt;
        match Sim.active_jobs st with
        | [] -> Sim.idle
        | js -> { Sim.allocation = [ (0, List.map (fun j -> (j, 0.5)) js) ];
                  horizon = None })
  in
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0)
      ~jobs:[ mk_job ~size:1.0 (); mk_job ~id:1 ~release:0.5 ~size:1.0 () ]
  in
  ignore (run_all spy inst);
  let versions = List.rev !versions and dirt = List.rev !dirt in
  Alcotest.(check bool) "strictly increasing versions" true
    (List.sort_uniq compare versions = versions);
  (* First call: nothing planned yet.  Second call (job 1's arrival): the
     dirty set is the support of the first plan, i.e. job 0. *)
  (match dirt with
   | [] :: ([ 0 ] :: _) -> ()
   | _ -> Alcotest.fail "unexpected dirty sets");
  (* Arrival of 0, arrival of 1, completion of 0 — the final completion
     batch ends the run without a replan. *)
  Alcotest.(check int) "one invocation per event batch" 3 (List.length versions)

let test_rejects_unreleased_job () =
  let bad =
    Sim.stateless "early" (fun _st _events ->
        { Sim.allocation = [ (0, [ (1, 1.0) ]) ]; horizon = None })
  in
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0)
      ~jobs:[ mk_job ~size:1.0 (); mk_job ~id:1 ~release:10.0 ~size:1.0 () ]
  in
  Alcotest.check_raises "unreleased"
    (Invalid_argument "early: job allocated before release") (fun () ->
      ignore (run_all bad inst))

let test_rejects_completed_job () =
  (* Keep allocating job 0 after it completes at t = 1. *)
  let bad =
    Sim.stateless "zombie" (fun _st _events ->
        { Sim.allocation = [ (0, [ (0, 1.0) ]) ]; horizon = None })
  in
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0)
      ~jobs:[ mk_job ~size:1.0 (); mk_job ~id:1 ~size:5.0 () ]
  in
  Alcotest.check_raises "completed"
    (Invalid_argument "zombie: completed job allocated") (fun () ->
      ignore (run_all bad inst))

let test_rejects_stale_horizon () =
  let bad =
    Sim.stateless "stale" (fun st _events ->
        match Sim.active_jobs st with
        | [] -> Sim.idle
        | j :: _ ->
          { Sim.allocation = [ (0, [ (j, 1.0) ]) ]; horizon = Some (Sim.now st) })
  in
  Alcotest.check_raises "stale horizon"
    (Invalid_argument "stale: plan horizon not in the future") (fun () ->
      ignore (run_all bad (one_job_inst ())))

let test_remaining_unreleased_hidden () =
  let spy_ok = ref true in
  let spy =
    Sim.stateless "spy" (fun st _events ->
        (match Sim.remaining st 1 with
         | _ -> if not (Sim.is_released st 1) then spy_ok := false
         | exception Invalid_argument _ -> ());
        match Sim.active_jobs st with
        | [] -> Sim.idle
        | j :: _ -> { Sim.allocation = [ (0, [ (j, 1.0) ]) ]; horizon = None })
  in
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0)
      ~jobs:[ mk_job ~size:1.0 (); mk_job ~id:1 ~release:100.0 ~size:1.0 () ]
  in
  ignore (run_all spy inst);
  Alcotest.(check bool) "unreleased job invisible" true !spy_ok

(* Conservation property on random instances under fair sharing. *)
let instance_gen =
  QCheck2.Gen.(
    let* njobs = int_range 1 8 in
    let* nmach = int_range 1 3 in
    let* speeds = list_size (return nmach) (map (fun i -> float_of_int i) (int_range 1 4)) in
    let* jobs =
      list_size (return njobs)
        (let* release = map (fun i -> float_of_int i /. 2.0) (int_range 0 10) in
         let* size = map (fun i -> float_of_int i /. 2.0) (int_range 1 8) in
         return (release, size))
    in
    return (speeds, jobs))

let prop_conservation =
  QCheck2.Test.make ~name:"work conservation and validity under fair sharing"
    ~count:100 instance_gen
    (fun (speeds, jobs) ->
      let platform = Platform.uniform ~speeds in
      let inst =
        Instance.make ~platform
          ~jobs:
            (List.mapi
               (fun i (release, size) -> mk_job ~id:i ~release ~size ())
               jobs)
      in
      let sched = run_all fair_share inst in
      Schedule.validate sched = []
      && Schedule.all_completed sched
      && List.for_all
           (fun i ->
             let size = (Instance.job inst i).Job.size in
             abs_float (Schedule.work_received sched i -. size) < 1e-6)
           (List.init (Instance.num_jobs inst) Fun.id))

let suite =
  ( "engine",
    [ Alcotest.test_case "single job" `Quick test_single_job;
      Alcotest.test_case "two jobs sharing" `Quick test_two_jobs_sharing;
      Alcotest.test_case "arrival preemption" `Quick test_arrival_preemption_point;
      Alcotest.test_case "simultaneous arrivals batched" `Quick
        test_simultaneous_arrivals_batched;
      Alcotest.test_case "plan boundaries" `Quick test_boundary_events;
      Alcotest.test_case "idle gap" `Quick test_idle_gap_then_arrival;
      Alcotest.test_case "stalled detection" `Quick test_stalled_detection;
      Alcotest.test_case "rejects oversubscription" `Quick test_rejects_oversubscription;
      Alcotest.test_case "rejects wrong databank" `Quick test_rejects_wrong_databank;
      Alcotest.test_case "rejects unknown machine" `Quick test_rejects_unknown_machine;
      Alcotest.test_case "rejects unknown job" `Quick test_rejects_unknown_job;
      Alcotest.test_case "rejects non-positive share" `Quick
        test_rejects_nonpositive_share;
      Alcotest.test_case "rejects duplicate entry" `Quick
        test_rejects_duplicate_entry;
      Alcotest.test_case "rejects negative share" `Quick
        test_rejects_negative_share;
      Alcotest.test_case "same job on two machines ok" `Quick
        test_duplicate_across_machines_ok;
      Alcotest.test_case "plan version and dirty set" `Quick
        test_plan_version_and_dirty_set;
      Alcotest.test_case "rejects unreleased job" `Quick test_rejects_unreleased_job;
      Alcotest.test_case "rejects completed job" `Quick test_rejects_completed_job;
      Alcotest.test_case "rejects stale horizon" `Quick test_rejects_stale_horizon;
      Alcotest.test_case "unreleased jobs hidden" `Quick test_remaining_unreleased_hidden;
      QCheck_alcotest.to_alcotest prop_conservation ] )

(* Failure injection: the simulation guard fires when a scheduler drags
   the simulation past the given date. *)
let test_horizon_guard () =
  (* A "procrastinating" scheduler: always idles until a far-future
     boundary before working. *)
  let lazy_boundary =
    Sim.stateless "procrastinate" (fun st _events ->
        { Sim.allocation = []; horizon = Some (Sim.now st +. 1000.0) })
  in
  let inst =
    Instance.make ~platform:(Platform.single ~speed:1.0) ~jobs:[ mk_job ~size:1.0 () ]
  in
  match Sim.run ~horizon:500.0 lazy_boundary inst with
  | _ -> Alcotest.fail "expected Horizon_exceeded"
  | exception Sim.Horizon_exceeded { scheduler; guard; pending; _ } ->
    Alcotest.(check string) "scheduler name" "procrastinate" scheduler;
    Alcotest.(check (float 0.0)) "guard value" 500.0 guard;
    Alcotest.(check (list int)) "pending jobs" [ 0 ] pending

(* Determinism: identical runs produce identical schedules. *)
let test_run_deterministic () =
  let inst =
    Instance.make ~platform:(Platform.uniform ~speeds:[ 1.0; 2.0 ])
      ~jobs:
        [ mk_job ~size:3.0 (); mk_job ~id:1 ~release:0.5 ~size:1.5 ();
          mk_job ~id:2 ~release:1.0 ~size:2.5 () ]
  in
  let s1 = run_all fair_share inst and s2 = run_all fair_share inst in
  List.iter
    (fun j ->
      Alcotest.(check (float 0.0)) "identical completions"
        (Schedule.completion_exn s1 j) (Schedule.completion_exn s2 j))
    [ 0; 1; 2 ]

let suite =
  ( fst suite,
    snd suite
    @ [ Alcotest.test_case "horizon guard" `Quick test_horizon_guard;
        Alcotest.test_case "deterministic runs" `Quick test_run_deterministic ] )
