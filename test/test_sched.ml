(* Classic heuristics: hand-checked traces on small instances, optimality
   facts from the literature verified against brute force, and MCT /
   MCT-Div behaviour. *)

open Gripps_model
open Gripps_engine
open Gripps_sched

let mk_job ?(id = 0) ?(release = 0.0) ?(size = 1.0) ?(databank = 0) () =
  Job.make ~id ~release ~size ~databank

let uni = Platform.single ~speed:1.0
let run sched inst = Sim.run ~horizon:1e7 sched inst
let completion sched inst j = Schedule.completion_exn (run sched inst) j

let metrics sched inst = Metrics.of_schedule (run sched inst)

let test_fcfs_order () =
  let inst =
    Instance.make ~platform:uni
      ~jobs:
        [ mk_job ~size:3.0 (); mk_job ~id:1 ~release:1.0 ~size:1.0 () ]
  in
  (* FCFS never preempts job 0 for job 1. *)
  Alcotest.(check (float 1e-9)) "C0" 3.0 (completion List_sched.fcfs inst 0);
  Alcotest.(check (float 1e-9)) "C1" 4.0 (completion List_sched.fcfs inst 1)

let test_srpt_preempts () =
  let inst =
    Instance.make ~platform:uni
      ~jobs:[ mk_job ~size:3.0 (); mk_job ~id:1 ~release:1.0 ~size:1.0 () ]
  in
  (* At t = 1, remaining are 2 and 1: SRPT switches to job 1. *)
  Alcotest.(check (float 1e-9)) "C1 preempts" 2.0 (completion List_sched.srpt inst 1);
  Alcotest.(check (float 1e-9)) "C0 resumes" 4.0 (completion List_sched.srpt inst 0)

let test_spt_vs_srpt_difference () =
  (* SPT uses original sizes: an almost-finished long job is preempted by
     a shorter one, unlike SRPT. *)
  let inst =
    Instance.make ~platform:uni
      ~jobs:[ mk_job ~size:4.0 (); mk_job ~id:1 ~release:3.5 ~size:2.0 () ]
  in
  (* At t = 3.5: remaining(J0) = 0.5 < 2 so SRPT finishes J0 first. *)
  Alcotest.(check (float 1e-9)) "SRPT finishes J0" 4.0 (completion List_sched.srpt inst 0);
  (* SPT compares original sizes 4 > 2 and preempts J0. *)
  Alcotest.(check (float 1e-9)) "SPT preempts J0" 5.5 (completion List_sched.spt inst 1);
  Alcotest.(check (float 1e-9)) "SPT delays J0" 6.0 (completion List_sched.spt inst 0)

let test_swrpt_keeps_almost_done_job () =
  (* SWRPT weighs remaining time by size: J0 nearly done wins even though
     its original size is larger. *)
  let inst =
    Instance.make ~platform:uni
      ~jobs:[ mk_job ~size:4.0 (); mk_job ~id:1 ~release:3.5 ~size:2.0 () ]
  in
  (* keys at 3.5: J0 = 0.5*4 = 2; J1 = 2*2 = 4 -> J0 first. *)
  Alcotest.(check (float 1e-9)) "SWRPT finishes J0" 4.0
    (completion List_sched.swrpt inst 0)

let test_restricted_availability_distribution () =
  (* Two machines; db 0 on both, db 1 on machine 1 only.  The high
     priority job (small) grabs both machines; the other waits. *)
  let p =
    Platform.make
      ~machines:
        [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; false |];
          Machine.make ~id:1 ~speed:1.0 ~databanks:[| true; true |] ]
      ~num_databanks:2
  in
  let inst =
    Instance.make ~platform:p
      ~jobs:[ mk_job ~size:2.0 ~databank:0 (); mk_job ~id:1 ~size:4.0 ~databank:1 () ]
  in
  let sched = run List_sched.srpt inst in
  Alcotest.(check (list string)) "valid" [] (Schedule.validate sched);
  (* J0 (remaining 2) runs on both machines, finishing at t = 1; J1 gets
     machine 1 only afterwards... J1 can only use machine 1: it idles
     while J0 holds both.  C1 = 1 + 4 = 5?  No: while J0 runs on both,
     machine 1 is taken; afterwards J1 runs on machine 1 alone. *)
  Alcotest.(check (float 1e-9)) "C0" 1.0 (Schedule.completion_exn sched 0);
  Alcotest.(check (float 1e-9)) "C1" 5.0 (Schedule.completion_exn sched 1)

(* Brute-force optimal preemptive schedules on a unit-speed uniprocessor:
   enumerate priority orders (an optimal preemptive schedule for sum-flow
   style objectives is induced by some priority list; see §3.2). *)
let brute_force_best inst ~objective =
  let n = Instance.num_jobs inst in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l
  in
  let best = ref infinity in
  List.iter
    (fun order ->
      let fixed =
        Sim.stateless "fixed-order" (fun st _events ->
            let alloc =
              List_sched.allocate st
                ~priority_order:(List.filter (fun j -> Sim.is_released st j
                                                      && not (Sim.is_completed st j)) order)
            in
            { Sim.allocation = alloc; horizon = None })
      in
      let m = Metrics.of_schedule (run fixed inst) in
      best := Float.min !best (objective m))
    (permutations (List.init n Fun.id));
  !best

let small_instance_gen =
  QCheck2.Gen.(
    let* njobs = int_range 1 5 in
    let* jobs =
      list_size (return njobs)
        (let* release = map (fun i -> float_of_int i /. 2.0) (int_range 0 8) in
         let* size = map (fun i -> float_of_int i /. 2.0) (int_range 1 6) in
         return (release, size))
    in
    return jobs)

let instance_of jobs =
  Instance.make ~platform:uni
    ~jobs:(List.mapi (fun i (release, size) -> mk_job ~id:i ~release ~size ()) jobs)

let prop_srpt_optimal_sum_flow =
  QCheck2.Test.make ~name:"SRPT is optimal for sum-flow (vs brute force)" ~count:60
    small_instance_gen
    (fun jobs ->
      let inst = instance_of jobs in
      let srpt = (metrics List_sched.srpt inst).Metrics.sum_flow in
      let best = brute_force_best inst ~objective:(fun m -> m.Metrics.sum_flow) in
      srpt <= best +. 1e-6)

let prop_fcfs_optimal_max_flow =
  QCheck2.Test.make ~name:"FCFS is optimal for max-flow (vs brute force)" ~count:60
    small_instance_gen
    (fun jobs ->
      let inst = instance_of jobs in
      let fcfs = (metrics List_sched.fcfs inst).Metrics.max_flow in
      let best = brute_force_best inst ~objective:(fun m -> m.Metrics.max_flow) in
      fcfs <= best +. 1e-6)

let prop_srpt_2_competitive_sum_stretch =
  QCheck2.Test.make
    ~name:"SRPT within 2x of best priority order for sum-stretch" ~count:60
    small_instance_gen
    (fun jobs ->
      let inst = instance_of jobs in
      let srpt = (metrics List_sched.srpt inst).Metrics.sum_stretch in
      let best = brute_force_best inst ~objective:(fun m -> m.Metrics.sum_stretch) in
      srpt <= (2.0 *. best) +. 1e-6)

let test_mct_queues_fifo () =
  (* Two machines, speeds 1 and 1.  Three unit jobs at t = 0: MCT places
     J0 on M0, J1 on M1, J2 behind one of them (completion 2). *)
  let p = Platform.uniform ~speeds:[ 1.0; 1.0 ] in
  let inst =
    Instance.make ~platform:p
      ~jobs:[ mk_job (); mk_job ~id:1 (); mk_job ~id:2 () ]
  in
  let sched = run Greedy.mct inst in
  Alcotest.(check (list string)) "valid" [] (Schedule.validate sched);
  Alcotest.(check (float 1e-9)) "C0" 1.0 (Schedule.completion_exn sched 0);
  Alcotest.(check (float 1e-9)) "C1" 1.0 (Schedule.completion_exn sched 1);
  Alcotest.(check (float 1e-9)) "C2 queued" 2.0 (Schedule.completion_exn sched 2)

let test_mct_no_preemption_small_job_suffers () =
  (* The paper's criticism: a small job behind a big one on MCT. *)
  let inst =
    Instance.make ~platform:uni
      ~jobs:[ mk_job ~size:100.0 (); mk_job ~id:1 ~release:1.0 ~size:1.0 () ]
  in
  Alcotest.(check (float 1e-9)) "small job waits" 101.0 (completion Greedy.mct inst 1)

let test_mct_div_uses_all_machines () =
  (* One job, two machines: MCT-Div runs it on both (rate 2). *)
  let p = Platform.uniform ~speeds:[ 1.0; 1.0 ] in
  let inst = Instance.make ~platform:p ~jobs:[ mk_job ~size:4.0 () ] in
  let sched = run Greedy.mct_div inst in
  Alcotest.(check (float 1e-9)) "parallel rate" 2.0 (Schedule.completion_exn sched 0)

let test_mct_div_fills_gaps_without_touching_commitments () =
  (* J0 occupies the machine for [0, 4]; J1 arrives at 1 and must wait
     (no preemption): C1 = 4 + 2 = 6. *)
  let inst =
    Instance.make ~platform:uni
      ~jobs:[ mk_job ~size:4.0 (); mk_job ~id:1 ~release:1.0 ~size:2.0 () ]
  in
  let sched = run Greedy.mct_div inst in
  Alcotest.(check (float 1e-9)) "C0 untouched" 4.0 (Schedule.completion_exn sched 0);
  Alcotest.(check (float 1e-9)) "C1 appended" 6.0 (Schedule.completion_exn sched 1);
  Alcotest.(check (list string)) "valid" [] (Schedule.validate sched)

let test_mct_div_two_machines_staggered () =
  (* M0 and M1 unit speed.  J0 (size 4, both) then J1 at t=1 (size 2,
     both): J0 committed [0,2] on both; J1 fills [2,3] on both. *)
  let p = Platform.uniform ~speeds:[ 1.0; 1.0 ] in
  let inst =
    Instance.make ~platform:p
      ~jobs:[ mk_job ~size:4.0 (); mk_job ~id:1 ~release:1.0 ~size:2.0 () ]
  in
  let sched = run Greedy.mct_div inst in
  Alcotest.(check (float 1e-9)) "C0" 2.0 (Schedule.completion_exn sched 0);
  Alcotest.(check (float 1e-9)) "C1" 3.0 (Schedule.completion_exn sched 1)

let prop_all_heuristics_produce_valid_schedules =
  QCheck2.Test.make ~name:"all classic heuristics yield valid complete schedules"
    ~count:40 small_instance_gen
    (fun jobs ->
      let inst = instance_of jobs in
      List.for_all
        (fun s ->
          let sched = run s inst in
          Schedule.validate sched = [] && Schedule.all_completed sched)
        [ List_sched.fcfs; List_sched.spt; List_sched.srpt; List_sched.swpt;
          List_sched.swrpt; Greedy.mct; Greedy.mct_div ])

let suite =
  ( "sched",
    [ Alcotest.test_case "fcfs order" `Quick test_fcfs_order;
      Alcotest.test_case "srpt preempts" `Quick test_srpt_preempts;
      Alcotest.test_case "spt vs srpt" `Quick test_spt_vs_srpt_difference;
      Alcotest.test_case "swrpt keeps almost-done job" `Quick
        test_swrpt_keeps_almost_done_job;
      Alcotest.test_case "restricted availability" `Quick
        test_restricted_availability_distribution;
      Alcotest.test_case "mct fifo queues" `Quick test_mct_queues_fifo;
      Alcotest.test_case "mct small job suffers" `Quick
        test_mct_no_preemption_small_job_suffers;
      Alcotest.test_case "mct-div parallelism" `Quick test_mct_div_uses_all_machines;
      Alcotest.test_case "mct-div gap filling" `Quick
        test_mct_div_fills_gaps_without_touching_commitments;
      Alcotest.test_case "mct-div staggered" `Quick test_mct_div_two_machines_staggered;
      QCheck_alcotest.to_alcotest prop_srpt_optimal_sum_flow;
      QCheck_alcotest.to_alcotest prop_fcfs_optimal_max_flow;
      QCheck_alcotest.to_alcotest prop_srpt_2_competitive_sum_stretch;
      QCheck_alcotest.to_alcotest prop_all_heuristics_produce_valid_schedules ] )

(* §4.2: with stretch weights (w = 1/W), Smith's ratio rule SWPT orders
   jobs exactly like SPT — the paper notes they have "exactly the same
   behavior".  Verified on random instances by comparing full traces. *)
let prop_swpt_equals_spt =
  QCheck2.Test.make ~name:"SWPT and SPT produce identical schedules" ~count:60
    small_instance_gen
    (fun jobs ->
      let inst = instance_of jobs in
      let c1 = run List_sched.swpt inst and c2 = run List_sched.spt inst in
      List.for_all
        (fun j ->
          abs_float (Schedule.completion_exn c1 j -. Schedule.completion_exn c2 j)
          < 1e-9)
        (List.init (Instance.num_jobs inst) Fun.id))

let suite =
  (fst suite, snd suite @ [ QCheck_alcotest.to_alcotest prop_swpt_equals_spt ])

(* ---- incremental vs legacy resort: the byte-identity contract ----------

   The heap-backed incremental schedulers must be indistinguishable from
   the sort-from-scratch originals: same metrics, same segment list, same
   completion vector, same journal (replans, allocations, sim events) —
   structural equality, i.e. float by float, fault traces included. *)

module Obs = Gripps_obs.Obs
module J = Obs.Journal
module Pool = Gripps_parallel.Pool
module Sweep = Gripps_parallel.Sweep
module W = Gripps_workload

let diff_panel =
  [ ("FCFS", Priority.fcfs, true); ("SPT", Priority.spt, true);
    ("SRPT", Priority.srpt, false); ("SWPT", Priority.swpt, true);
    ("SWRPT", Priority.swrpt, false) ]

(* A generated workload (restricted databank availability and all), or
   [None] when the Poisson draw comes up empty. *)
let gen_workload seed =
  let rng = Gripps_rng.Splitmix.create seed in
  let c =
    W.Config.make ~sites:2 ~databases:3 ~availability:0.7 ~density:1.0
      ~horizon:6.0 ()
  in
  let r = W.Generator.platform rng c in
  match W.Generator.jobs rng c r with
  | [] -> None
  | jobs -> Some (Instance.make ~platform:r.W.Generator.platform ~jobs)

(* Journal slice of one run, minus wall-clock span records. *)
let sim_journal (r : Sim.report) =
  List.filter (function J.Span_closed _ -> false | _ -> true) r.Sim.journal

let same_run (a : Sim.report) (b : Sim.report) =
  a.Sim.metrics = b.Sim.metrics
  && a.Sim.schedule.Schedule.segments = b.Sim.schedule.Schedule.segments
  && a.Sim.schedule.Schedule.completion = b.Sim.schedule.Schedule.completion
  && a.Sim.lost = b.Sim.lost
  && a.Sim.replans = b.Sim.replans
  && a.Sim.events = b.Sim.events
  && compare (sim_journal a) (sim_journal b) = 0

let journaled f =
  Obs.with_level Obs.Events (fun () ->
      J.clear ();
      Fun.protect ~finally:J.clear f)

let prop_incremental_equals_resort =
  QCheck2.Test.make
    ~name:"heap-backed schedulers byte-identical to resort originals"
    ~count:20
    QCheck2.Gen.(pair (int_range 1 100_000) bool)
    (fun (seed, with_faults) ->
      match gen_workload seed with
      | None -> true
      | Some inst ->
        let machines =
          Array.length (Platform.machines (Instance.platform inst))
        in
        let faults, loss =
          if with_faults then
            ( Some
                (Fault.poisson
                   (Gripps_rng.Splitmix.create (seed + 17))
                   ~mtbf:8.0 ~mttr:1.0 ~machines ~until:40.0),
              Some Fault.Crash )
          else (None, None)
        in
        List.for_all
          (fun (name, rule, static) ->
            journaled (fun () ->
                let incr =
                  Sim.run_report ~horizon:1e9 ?faults ?loss
                    (List_sched.scheduler ~static ~name ~rule ())
                    inst
                in
                let legacy =
                  Sim.run_report ~horizon:1e9 ?faults ?loss
                    (List_sched.resort_scheduler ~name ~rule)
                    inst
                in
                same_run incr legacy))
          diff_panel)

(* Under a 2-domain pool the merged journal stream (one shard per rule)
   must also match the legacy path's, shard order and all. *)
let test_incremental_differential_pool () =
  let rec first_workload seed =
    match gen_workload seed with
    | Some i -> i
    | None -> first_workload (seed + 1)
  in
  let inst = first_workload 11 in
  let run_panel mk =
    Obs.with_level Obs.Events (fun () ->
        J.clear ();
        let sweep =
          Sweep.of_list diff_panel (fun (name, rule, static) ->
              let r = Sim.run_report ~horizon:1e9 (mk ~name ~rule ~static) inst in
              ( r.Sim.metrics,
                r.Sim.schedule.Schedule.segments,
                r.Sim.schedule.Schedule.completion ))
        in
        let rs = Sweep.run ~pool:(Pool.create ~domains:2 ()) sweep in
        let evs =
          List.filter
            (function J.Span_closed _ -> false | _ -> true)
            (J.events ())
        in
        J.clear ();
        (rs, evs))
  in
  let ri, ji =
    run_panel (fun ~name ~rule ~static -> List_sched.scheduler ~static ~name ~rule ())
  in
  let rl, jl =
    run_panel (fun ~name ~rule ~static:_ -> List_sched.resort_scheduler ~name ~rule)
  in
  Alcotest.(check bool) "panel results identical under --jobs 2" true
    (compare ri rl = 0);
  Alcotest.(check bool) "merged journals identical under --jobs 2" true
    (compare ji jl = 0)

let suite =
  ( fst suite,
    snd suite
    @ [ QCheck_alcotest.to_alcotest prop_incremental_equals_resort;
        Alcotest.test_case "incremental differential under 2-domain pool" `Quick
          test_incremental_differential_pool ] )
