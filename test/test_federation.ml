(* Federation invariants.

   The load-bearing property is degeneration: a 1-shard federation must
   be byte-identical — metrics, completion vector, merged journal — to
   the plain single-aggregate run, for every scheduler in the registry.
   Everything the front-end adds (routing, fluid estimates, migration)
   must vanish without a trace when there is nothing to route between.

   The second pillar is conservation: every job is dispatched to exactly
   one shard and either completes or has its crash losses accounted in
   the merged [lost] vector — shards can't drop or duplicate work.

   Finally the pool-differential property of test_parallel extends to
   the federated runner: a federated report is bit-identical at any
   [--jobs] level, for every routing policy, migration included. *)

open Gripps_model
open Gripps_engine
module Fed = Gripps_federation.Federation
module Shard = Gripps_federation.Shard
module Frontend = Gripps_federation.Frontend
module Pool = Gripps_parallel.Pool
module Obs = Gripps_obs.Obs
module J = Obs.Journal
module W = Gripps_workload
module Reg = Gripps_experiments.Sched_registry
module Splitmix = Gripps_rng.Splitmix

(* Every test leaves the global observability singleton as it found it. *)
let sandboxed f () =
  let saved = Obs.level () in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_level saved;
      J.set_sink None;
      J.clear ())
    f

(* Wall-clock-free journal view (Span_closed carries durations). *)
let sim_events events =
  List.filter (function J.Span_closed _ -> false | _ -> true) events

let config ?faults ?(sites = 2) () =
  W.Config.make ?faults ~sites ~databases:2 ~availability:0.8 ~density:1.0
    ~horizon:6.0 ()

(* Instance and fault trace drawn from one stream — the Runner seed
   discipline, so conservation runs see non-trivial outages. *)
let realize ~seed cfg =
  let rng = Splitmix.create seed in
  let inst = W.Generator.instance rng cfg in
  let machines = Platform.num_machines (Instance.platform inst) in
  let faults = W.Generator.fault_trace rng cfg ~machines in
  (inst, faults)

let completion_of (r : Sim.report) =
  Array.map
    (function Some c -> c | None -> nan)
    r.Sim.schedule.Schedule.completion

(* ---- 1-shard degeneration: federation is invisible -------------------- *)

let prop_one_shard_identity =
  QCheck2.Test.make
    ~name:"1-shard federation = plain run (all registry schedulers)" ~count:2
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let inst, _ = realize ~seed (config ()) in
      List.for_all
        (fun (e : Reg.entry) ->
          Obs.with_level Obs.Events (fun () ->
              J.clear ();
              let plain = Sim.run_report e.Reg.scheduler inst in
              let jp = sim_events (J.events ()) in
              J.clear ();
              let fed = Fed.run ~shards:1 ~scheduler:e.Reg.scheduler inst in
              let jf = sim_events (J.events ()) in
              J.clear ();
              compare plain.Sim.metrics fed.Fed.metrics = 0
              && compare (completion_of plain) fed.Fed.completion = 0
              && compare jp jf = 0
              && fed.Fed.outcome.Frontend.migrations = 0))
        Reg.registry)

(* The degeneration also holds under an injected fault trace: the
   projection of a global trace onto the single shard is the trace. *)
let test_one_shard_identity_faults () =
  let inst, faults = realize ~seed:42 (config ~faults:(W.Config.fault_axis ~mtbf:3.0 ~mttr:0.5 ()) ()) in
  let sched = Gripps_sched.List_sched.swrpt in
  let plain = Sim.run_report ~faults sched inst in
  let fed = Fed.run ~shards:1 ~faults ~scheduler:sched inst in
  Alcotest.(check bool) "metrics identical" true
    (compare plain.Sim.metrics fed.Fed.metrics = 0);
  Alcotest.(check bool) "lost work identical" true
    (compare plain.Sim.lost fed.Fed.lost = 0);
  Alcotest.(check int) "replans identical" plain.Sim.replans fed.Fed.replans;
  Alcotest.(check int) "events identical" plain.Sim.events fed.Fed.events

(* ---- conservation: no job lost, none duplicated ------------------------ *)

let prop_conservation =
  QCheck2.Test.make
    ~name:"every job on exactly one shard; completes with losses accounted"
    ~count:4
    QCheck2.Gen.(
      pair (int_range 1 10_000)
        (pair (int_range 1 3) (oneofl Frontend.all_policies)))
    (fun (seed, (shards, policy)) ->
      let cfg =
        config ~sites:3 ~faults:(W.Config.fault_axis ~mtbf:3.0 ~mttr:0.5 ()) ()
      in
      let inst, faults = realize ~seed cfg in
      let fed =
        Fed.run ~shards ~policy ~migrate:true ~faults
          ~scheduler:Gripps_sched.List_sched.swrpt inst
      in
      let n = Instance.num_jobs inst in
      let k = Array.length fed.Fed.shards in
      (* Dispatched exactly once: [assignment] names one shard per job,
         and the shard sub-instances partition the global ids (their
         sizes add up to [n], so no job is duplicated or dropped). *)
      let per_shard_sum = Array.fold_left ( + ) 0 fed.Fed.shard_jobs in
      let on_one_shard =
        Array.for_all
          (fun s -> s >= 0 && s < k)
          fed.Fed.outcome.Frontend.assignment
        && per_shard_sum = n
      in
      (* Completed, causally (no completion before the original release),
         with crash losses accounted as finite non-negative Mflop. *)
      let accounted = ref true in
      for j = 0 to n - 1 do
        let c = fed.Fed.completion.(j) and l = fed.Fed.lost.(j) in
        if
          not
            (Float.is_finite c
            && c >= (Instance.job inst j).Job.release
            && Float.is_finite l && l >= 0.0)
        then accounted := false
      done;
      on_one_shard && !accounted
      && compare fed.Fed.metrics (Metrics.of_completion inst ~completion:fed.Fed.completion) = 0)

(* ---- pool differential: --jobs is unobservable ------------------------- *)

let fed_projection (fed : Fed.report) =
  ( fed.Fed.metrics,
    Array.to_list fed.Fed.completion,
    Array.to_list fed.Fed.shard_jobs,
    Array.to_list fed.Fed.outcome.Frontend.assignment,
    fed.Fed.outcome.Frontend.migrations,
    fed.Fed.replans,
    fed.Fed.events )

let prop_pool_differential =
  QCheck2.Test.make
    ~name:"federated run bit-identical at 1 and 4 domains (all policies)"
    ~count:2
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let cfg = config ~sites:3 () in
      let inst, _ = realize ~seed cfg in
      List.for_all
        (fun policy ->
          List.for_all
            (fun migrate ->
              let run pool =
                Obs.with_level Obs.Events (fun () ->
                    J.clear ();
                    let fed =
                      Fed.run ~pool ~shards:3 ~policy ~migrate
                        ~scheduler:Gripps_sched.List_sched.swrpt inst
                    in
                    let j = sim_events (J.events ()) in
                    J.clear ();
                    (fed_projection fed, j))
              in
              let p1, j1 = run Pool.sequential in
              let p4, j4 = run (Pool.create ~domains:4 ()) in
              compare p1 p4 = 0 && compare j1 j4 = 0)
            [ false; true ])
        Frontend.all_policies)

(* ---- shard mechanics --------------------------------------------------- *)

let toy_platform =
  (* 4 machines, 2 databanks; databank 1 only on machines 2-3, so a
     2-shard partition leaves shard 0 unable to host it. *)
  Platform.make ~num_databanks:2
    ~machines:
      [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true; false |];
        Machine.make ~id:1 ~speed:2.0 ~databanks:[| true; false |];
        Machine.make ~id:2 ~speed:1.0 ~databanks:[| true; true |];
        Machine.make ~id:3 ~speed:4.0 ~databanks:[| false; true |] ]

let test_partition () =
  let shards = Shard.partition toy_platform ~shards:2 in
  Alcotest.(check int) "two shards" 2 (Array.length shards);
  Alcotest.(check (list int)) "shard 0 machines" [ 0; 1 ]
    (Array.to_list shards.(0).Shard.machines);
  Alcotest.(check (list int)) "shard 1 machines" [ 2; 3 ]
    (Array.to_list shards.(1).Shard.machines);
  Alcotest.(check (float 1e-9)) "shard speeds" 3.0 (Shard.speed shards.(0));
  Alcotest.(check (float 1e-9)) "db_speed restricted" 5.0
    (Shard.db_speed shards.(1) 1);
  Alcotest.(check bool) "shard 0 lacks databank 1" false
    (Shard.hosts shards.(0) 1);
  Alcotest.(check bool) "shard 1 hosts databank 1" true
    (Shard.hosts shards.(1) 1);
  (* Uneven split: 4 machines over 3 shards. *)
  let three = Shard.partition toy_platform ~shards:3 in
  Alcotest.(check (list int)) "balanced remainders" [ 1; 1; 2 ]
    (Array.to_list (Array.map Shard.num_machines three));
  List.iter
    (fun bad ->
      match Shard.partition toy_platform ~shards:bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "partition accepted shards=%d" bad)
    [ 0; -1; 5 ]

let test_project_faults () =
  let shards = Shard.partition toy_platform ~shards:2 in
  let trace =
    [ { Fault.time = 1.0; machine = 0; up = false };
      { Fault.time = 2.0; machine = 3; up = false };
      { Fault.time = 3.0; machine = 3; up = true } ]
  in
  Alcotest.(check (list (triple (float 1e-9) int bool)))
    "shard 1 sees its own machines, renumbered"
    [ (2.0, 1, false); (3.0, 1, true) ]
    (List.map
       (fun (e : Fault.edge) -> (e.Fault.time, e.Fault.machine, e.Fault.up))
       (Shard.project_faults shards.(1) trace))

let test_sub_instance_rejects_unhosted () =
  let shards = Shard.partition toy_platform ~shards:2 in
  let inst =
    Instance.make ~platform:toy_platform
      ~jobs:[ Job.make ~id:0 ~release:0.0 ~size:1.0 ~databank:1 ]
  in
  match Shard.sub_instance shards.(0) inst [ (0, 0.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sub_instance accepted a job without its databank"

(* ---- front-end policies ------------------------------------------------ *)

let test_policy_names () =
  List.iter
    (fun p ->
      match Frontend.policy_of_string (Frontend.policy_name p) with
      | Some q when q = p -> ()
      | _ -> Alcotest.failf "policy %s does not round-trip" (Frontend.policy_name p))
    Frontend.all_policies;
  Alcotest.(check bool) "mct aliases greedy" true
    (Frontend.policy_of_string "MCT" = Some Frontend.Greedy);
  Alcotest.(check bool) "unknown rejected" true
    (Frontend.policy_of_string "sjf" = None)

let test_eligibility_respected () =
  (* Databank 1 lives only on shard 1: every policy must route its jobs
     there, whatever the load. *)
  let shards = Shard.partition toy_platform ~shards:2 in
  let jobs =
    List.init 6 (fun i ->
        Job.make ~id:i
          ~release:(0.1 *. float_of_int i)
          ~size:5.0
          ~databank:(if i mod 2 = 0 then 1 else 0))
  in
  let inst = Instance.make ~platform:toy_platform ~jobs in
  List.iter
    (fun policy ->
      let o = Frontend.dispatch ~policy shards inst in
      Array.iteri
        (fun j s ->
          if (Instance.job inst j).Job.databank = 1 then
            Alcotest.(check int)
              (Printf.sprintf "%s routes databank-1 job %d to shard 1"
                 (Frontend.policy_name policy) j)
              1 s)
        o.Frontend.assignment)
    Frontend.all_policies

let test_no_migration_without_flag () =
  (* A hand-rolled burst on a uniform platform: both shards eligible
     throughout, so routing is purely load-driven. *)
  let jobs =
    List.init 8 (fun i ->
        Job.make ~id:i ~release:(0.05 *. float_of_int i) ~size:3.0 ~databank:0)
  in
  let burst =
    Instance.make
      ~platform:
        (Platform.make ~num_databanks:1
           ~machines:
             [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true |];
               Machine.make ~id:1 ~speed:1.0 ~databanks:[| true |] ])
      ~jobs
  in
  let shards = Shard.partition (Instance.platform burst) ~shards:2 in
  let off = Frontend.dispatch ~policy:Frontend.Load shards burst in
  Alcotest.(check int) "no migrations without the flag" 0
    off.Frontend.migrations;
  Alcotest.(check bool) "assignment = dispatch" true
    (compare off.Frontend.assignment off.Frontend.dispatch = 0);
  Alcotest.(check bool) "releases untouched" true
    (Array.for_all2
       (fun r (j : Job.t) -> r = j.Job.release)
       off.Frontend.release (Instance.jobs burst))

let test_migration_rebalances () =
  (* Two equal-speed shards, both hosting the databank.  A huge job lands
     on shard 0 first; with migration on, the small jobs that queue up
     behind it must flow toward shard 1 rather than wait, so the final
     assignment is never more imbalanced than the frozen dispatch. *)
  let jobs =
    Job.make ~id:0 ~release:0.0 ~size:100.0 ~databank:0
    :: List.init 6 (fun i ->
           Job.make ~id:(i + 1) ~release:0.01 ~size:1.0 ~databank:0)
  in
  let platform =
    Platform.make ~num_databanks:1
      ~machines:
        [ Machine.make ~id:0 ~speed:1.0 ~databanks:[| true |];
          Machine.make ~id:1 ~speed:1.0 ~databanks:[| true |] ]
  in
  let inst = Instance.make ~platform ~jobs in
  let shards = Shard.partition platform ~shards:2 in
  let off = Frontend.dispatch ~migrate:false ~policy:Frontend.Load shards inst in
  let on = Frontend.dispatch ~migrate:true ~policy:Frontend.Load shards inst in
  let backlog o s =
    (* Final fluid backlog proxy: total size assigned to shard [s]. *)
    let acc = ref 0.0 in
    Array.iteri
      (fun j s' ->
        if s' = s then acc := !acc +. (Instance.job inst j).Job.size)
      o.Frontend.assignment;
    !acc
  in
  let spread o = Float.abs (backlog o 0 -. backlog o 1) in
  Alcotest.(check bool) "migration narrows the assignment imbalance" true
    (spread on <= spread off);
  (* A migrated job's effective release is the migration date, never
     earlier than its original release. *)
  Array.iteri
    (fun j r ->
      Alcotest.(check bool)
        (Printf.sprintf "release of job %d is causal" j)
        true
        (r >= (Instance.job inst j).Job.release))
    on.Frontend.release;
  (* End-to-end: both modes still complete everything with sane metrics. *)
  let run migrate =
    Fed.run ~shards:2 ~policy:Frontend.Load ~migrate
      ~scheduler:Gripps_sched.List_sched.swrpt inst
  in
  let fed_off = run false and fed_on = run true in
  Alcotest.(check bool) "makespans finite" true
    (Float.is_finite fed_off.Fed.metrics.Metrics.makespan
    && Float.is_finite fed_on.Fed.metrics.Metrics.makespan);
  Alcotest.(check bool) "migration helps the loaded burst" true
    (fed_on.Fed.metrics.Metrics.makespan
    <= fed_off.Fed.metrics.Metrics.makespan +. 1e-9)

(* ---- empty shards ------------------------------------------------------ *)

let test_empty_shard_ok () =
  (* One job, four shards: three shards simulate empty sub-instances. *)
  let platform =
    Platform.make ~num_databanks:1
      ~machines:
        (List.init 4 (fun i ->
             Machine.make ~id:i ~speed:1.0 ~databanks:[| true |]))
  in
  let inst =
    Instance.make ~platform
      ~jobs:[ Job.make ~id:0 ~release:0.5 ~size:2.0 ~databank:0 ]
  in
  let fed =
    Fed.run ~shards:4 ~scheduler:Gripps_sched.List_sched.swrpt inst
  in
  Alcotest.(check int) "one busy shard" 1
    (Array.fold_left ( + ) 0 fed.Fed.shard_jobs);
  Alcotest.(check (float 1e-9)) "completion on the lone shard" 2.5
    fed.Fed.completion.(0)

let suite =
  ( "federation",
    [ QCheck_alcotest.to_alcotest prop_one_shard_identity;
      Alcotest.test_case "1-shard identity under faults" `Quick
        (sandboxed test_one_shard_identity_faults);
      QCheck_alcotest.to_alcotest prop_conservation;
      QCheck_alcotest.to_alcotest prop_pool_differential;
      Alcotest.test_case "partition mechanics" `Quick (sandboxed test_partition);
      Alcotest.test_case "fault projection" `Quick
        (sandboxed test_project_faults);
      Alcotest.test_case "sub_instance rejects unhosted databank" `Quick
        (sandboxed test_sub_instance_rejects_unhosted);
      Alcotest.test_case "policy name round-trip" `Quick
        (sandboxed test_policy_names);
      Alcotest.test_case "eligibility respected by every policy" `Quick
        (sandboxed test_eligibility_respected);
      Alcotest.test_case "no migration without the flag" `Quick
        (sandboxed test_no_migration_without_flag);
      Alcotest.test_case "migration rebalances a loaded burst" `Quick
        (sandboxed test_migration_rebalances);
      Alcotest.test_case "empty shards simulate cleanly" `Quick
        (sandboxed test_empty_shard_ok) ] )
