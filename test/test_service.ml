(* The streaming daemon: admission control, bounded memory, agreement
   with the batch engine, and — the centerpiece — the kill-and-resume
   torture property: a daemon SIGKILLed at a random event index and
   restored from its checkpoint finishes with bit-identical metrics,
   journal segments and final checkpoint. *)

open Gripps_model
module Service = Gripps_service.Service
module Source = Gripps_workload.Source
module W = Gripps_workload
module Sim = Gripps_engine.Sim
module Replay = Gripps_engine.Replay
module Fault = Gripps_engine.Fault
module List_sched = Gripps_sched.List_sched
module Obs = Gripps_obs.Obs
module Fsio = Gripps_obs.Fsio
module Splitmix = Gripps_rng.Splitmix

(* ---- scratch directories ----------------------------------------------- *)

let tmp_counter = ref 0

let with_tmpdir f =
  incr tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gripps-serve-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm_rf d =
    if Sys.file_exists d then begin
      Array.iter
        (fun f ->
          let p = Filename.concat d f in
          if Sys.is_directory p then rm_rf p else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    end
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Every deterministic field of a report; the wall-clock observables
   (replan_p99_s, deadline_misses) are excluded by design. *)
let report_repr (r : Service.report) =
  Printf.sprintf
    "outcome=%s completed=%d sumS=%.17g maxS=%.17g sumF=%.17g maxF=%.17g \
     mk=%.17g adm=%d enq=%d drop=%d shed=%d peakL=%d peakQ=%d ev=%d rp=%d \
     ck=%d lost=%.17g t=%.17g cur=%d"
    (match r.outcome with
     | Service.Drained -> "drained"
     | Service.Horizon_reached -> "horizon"
     | Service.Killed -> "killed")
    r.metrics.Service.completed r.metrics.Service.sum_stretch
    r.metrics.Service.max_stretch r.metrics.Service.sum_flow
    r.metrics.Service.max_flow r.metrics.Service.makespan r.admitted
    r.enqueued r.dropped r.shed r.peak_live r.peak_queue r.events r.replans
    r.checkpoints r.lost_work r.final_time r.source_cursor

let journal_bytes dir =
  Service.segment_files ~dir
  |> List.map (fun p -> Filename.basename p ^ ":" ^ Fsio.read_file p)
  |> String.concat "\n--\n"

(* ---- fixed small scenarios --------------------------------------------- *)

let uni_platform speeds = Platform.uniform ~speeds

let items_of l =
  List.map (fun (r, w) -> { Source.release = r; size = w; databank = 0 }) l

let test_drains_simple () =
  (* One unit-speed machine, two unit jobs at t=0: SRPT finishes them at
     1 and 2; flows 1 and 2, stretches 1 and 2. *)
  let cfg =
    Service.config ~platform:(uni_platform [ 1.0 ]) ~rule:Service.Srpt ()
  in
  let r = Service.run cfg (Source.of_list (items_of [ (0.0, 1.0); (0.0, 1.0) ])) in
  Alcotest.(check bool) "drained" true (r.outcome = Service.Drained);
  Alcotest.(check int) "completed" 2 r.metrics.Service.completed;
  Alcotest.(check (float 1e-9)) "makespan" 2.0 r.metrics.Service.makespan;
  Alcotest.(check (float 1e-9)) "sum flow" 3.0 r.metrics.Service.sum_flow;
  Alcotest.(check (float 1e-9)) "sum stretch" 3.0 r.metrics.Service.sum_stretch;
  Alcotest.(check int) "admitted" 2 r.admitted;
  Alcotest.(check int) "peak live" 2 r.peak_live

let test_drop_policy () =
  (* One slot, no queue, three simultaneous jobs: two are dropped. *)
  let cfg =
    Service.config ~platform:(uni_platform [ 1.0 ]) ~policy:Service.Drop
      ~max_live:1 ~queue_cap:0 ()
  in
  let r =
    Service.run cfg
      (Source.of_list (items_of [ (0.0, 1.0); (0.0, 2.0); (0.0, 3.0) ]))
  in
  Alcotest.(check int) "admitted" 1 r.admitted;
  Alcotest.(check int) "dropped" 2 r.dropped;
  Alcotest.(check int) "completed" 1 r.metrics.Service.completed;
  Alcotest.(check int) "peak live bounded" 1 r.peak_live

let test_block_policy () =
  (* One slot, queue of one, blocking: nothing is lost — the daemon
     stops consuming the source until capacity frees, and every job
     completes with its original release date. *)
  let cfg =
    Service.config ~platform:(uni_platform [ 1.0 ]) ~policy:Service.Block
      ~rule:Service.Fcfs ~max_live:1 ~queue_cap:1 ()
  in
  let r =
    Service.run cfg
      (Source.of_list
         (items_of [ (0.0, 1.0); (0.0, 1.0); (0.0, 1.0); (0.0, 1.0) ]))
  in
  Alcotest.(check int) "all admitted" 4 r.admitted;
  Alcotest.(check int) "none dropped" 0 r.dropped;
  Alcotest.(check int) "completed" 4 r.metrics.Service.completed;
  Alcotest.(check int) "peak live" 1 r.peak_live;
  Alcotest.(check bool) "queue bounded" true (r.peak_queue <= 1);
  (* FCFS on one machine: completions at 1,2,3,4; all released at 0. *)
  Alcotest.(check (float 1e-9)) "sum flow" 10.0 r.metrics.Service.sum_flow;
  Alcotest.(check (float 1e-9)) "makespan" 4.0 r.metrics.Service.makespan

let test_shed_policy () =
  (* One slot, queue of one: when job 2 arrives, the pending queue holds
     job 1 (size 5); shedding evicts the largest pending job, so job 2
     (size 2) takes its place and completes. *)
  let cfg =
    Service.config ~platform:(uni_platform [ 1.0 ]) ~policy:Service.Shed
      ~rule:Service.Fcfs ~max_live:1 ~queue_cap:1 ()
  in
  let r =
    Service.run cfg
      (Source.of_list (items_of [ (0.0, 1.0); (0.0, 5.0); (0.0, 2.0) ]))
  in
  Alcotest.(check int) "shed" 1 r.shed;
  Alcotest.(check int) "completed" 2 r.metrics.Service.completed;
  Alcotest.(check (float 1e-9)) "makespan (1 then 2)" 3.0
    r.metrics.Service.makespan

let test_agrees_with_sim () =
  (* Fault-free, capacity above the job count: the daemon is the batch
     engine with a different sliver yardstick, so metrics agree to
     rounding.  Distinct sizes keep the tie-breaks out of play. *)
  let platform = uni_platform [ 1.0; 2.0 ] in
  let jobs_spec =
    [ (0.0, 5.0); (0.5, 3.0); (1.0, 8.0); (2.5, 2.0); (3.0, 7.0); (4.0, 4.0) ]
  in
  List.iter
    (fun (rule, sched) ->
      let cfg = Service.config ~platform ~rule ~max_live:16 () in
      let r = Service.run cfg (Source.of_list (items_of jobs_spec)) in
      let inst =
        Instance.make ~platform
          ~jobs:
            (List.mapi
               (fun i (rl, w) -> Job.make ~id:i ~release:rl ~size:w ~databank:0)
               jobs_spec)
      in
      let sim = Sim.run_report sched inst in
      let close what a b =
        Alcotest.(check bool)
          (Printf.sprintf "%s %s: %.12g vs %.12g" (Service.rule_name rule) what
             a b)
          true
          (abs_float (a -. b) <= 1e-6 *. Float.max 1.0 (abs_float b))
      in
      close "sum stretch" r.metrics.Service.sum_stretch
        sim.Sim.metrics.Metrics.sum_stretch;
      close "max stretch" r.metrics.Service.max_stretch
        sim.Sim.metrics.Metrics.max_stretch;
      close "sum flow" r.metrics.Service.sum_flow
        sim.Sim.metrics.Metrics.sum_flow;
      close "makespan" r.metrics.Service.makespan
        sim.Sim.metrics.Metrics.makespan)
    [ (Service.Fcfs, List_sched.fcfs); (Service.Spt, List_sched.spt);
      (Service.Srpt, List_sched.srpt); (Service.Swpt, List_sched.swpt);
      (Service.Swrpt, List_sched.swrpt) ]

(* ---- random scenarios for the torture property ------------------------- *)

type scenario = {
  cfg_for : checkpoint:string option -> journal_dir:string option -> Service.config;
  mk_source : cursor:int -> clock:float -> Source.t;
}

let scenario seed =
  let rng k = Splitmix.stream (Splitmix.create (0x5EED1 + seed)) k in
  let sites = 1 + Splitmix.int (rng 0) 4 in
  let dbs = 1 + Splitmix.int (rng 1) 3 in
  let conf = W.Config.make ~sites ~databases:dbs ~availability:0.7 ~density:1.0 () in
  let real = W.Generator.platform (rng 2) conf in
  let platform = real.W.Generator.platform in
  let sizes = real.W.Generator.db_sizes in
  let n = 20 + Splitmix.int (rng 3) 30 in
  let mean =
    Array.fold_left ( +. ) 0.0 sizes /. float_of_int (Array.length sizes)
  in
  let rate =
    Platform.total_speed platform /. mean
    *. (0.3 +. Splitmix.float (rng 4))
  in
  let faults =
    if Splitmix.int (rng 5) 2 = 0 then []
    else begin
      let until = float_of_int n /. rate in
      Fault.poisson (rng 6) ~mtbf:(until /. 2.0) ~mttr:(until /. 8.0)
        ~machines:sites ~until
    end
  in
  let loss = if Splitmix.int (rng 7) 2 = 0 then Fault.Crash else Fault.Pause in
  let policy =
    match Splitmix.int (rng 8) 3 with
    | 0 -> Service.Drop
    | 1 -> Service.Block
    | _ -> Service.Shed
  in
  let rule =
    match Splitmix.int (rng 9) 5 with
    | 0 -> Service.Fcfs
    | 1 -> Service.Spt
    | 2 -> Service.Srpt
    | 3 -> Service.Swpt
    | _ -> Service.Swrpt
  in
  let max_live = 2 + Splitmix.int (rng 10) 8 in
  let queue_cap = Splitmix.int (rng 11) 4 in
  let checkpoint_every = 1 + Splitmix.int (rng 12) 7 in
  let seg_limit = 1 + Splitmix.int (rng 13) 12 in
  let src_seed = (seed * 131) + 7 in
  { cfg_for =
      (fun ~checkpoint ~journal_dir ->
        Service.config ~platform ~rule ~policy ~max_live ~queue_cap ~faults
          ~loss ?checkpoint ?journal_dir ~checkpoint_every ~seg_limit
          ~source_desc:(Printf.sprintf "poisson seed=%d jobs=%d" src_seed n)
          ());
    mk_source =
      (fun ~cursor ~clock ->
        Source.poisson ~seed:src_seed ~rate ~sizes ~jobs:n ~cursor ~clock ()) }

let prop_kill_resume =
  QCheck2.Test.make
    ~name:"daemon killed at a random event resumes bit-identically" ~count:30
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let sc = scenario seed in
      with_tmpdir (fun dir_a ->
          with_tmpdir (fun dir_b ->
              let cfg_a =
                sc.cfg_for ~checkpoint:(Some (Filename.concat dir_a "ckpt"))
                  ~journal_dir:(Some (Filename.concat dir_a "journal"))
              in
              let r_a = Service.run cfg_a (sc.mk_source ~cursor:0 ~clock:0.0) in
              if r_a.outcome <> Service.Drained then
                QCheck2.Test.fail_report "reference run did not drain";
              (* Kill anywhere in [1, events]: after the initial
                 checkpoint exists, up to the very last batch. *)
              let k =
                1 + Splitmix.int (Splitmix.create (seed + 0xDEAD)) r_a.events
              in
              let cfg_b =
                sc.cfg_for ~checkpoint:(Some (Filename.concat dir_b "ckpt"))
                  ~journal_dir:(Some (Filename.concat dir_b "journal"))
              in
              let r_kill =
                Service.run ~stop_after_events:k cfg_b
                  (sc.mk_source ~cursor:0 ~clock:0.0)
              in
              if r_kill.outcome <> Service.Killed then
                QCheck2.Test.fail_report
                  (Printf.sprintf "expected a kill at %d/%d events" k
                     r_a.events);
              let r_b = Service.resume cfg_b sc.mk_source in
              if report_repr r_a <> report_repr r_b then
                QCheck2.Test.fail_report
                  (Printf.sprintf "report diverged after resume at %d/%d:\n%s\n%s"
                     k r_a.events (report_repr r_a) (report_repr r_b));
              let ja = journal_bytes (Filename.concat dir_a "journal") in
              let jb = journal_bytes (Filename.concat dir_b "journal") in
              if ja <> jb then
                QCheck2.Test.fail_report
                  (Printf.sprintf "journal diverged after resume at %d/%d" k
                     r_a.events);
              if
                Fsio.read_file (Filename.concat dir_a "ckpt")
                <> Fsio.read_file (Filename.concat dir_b "ckpt")
              then
                QCheck2.Test.fail_report "final checkpoints differ";
              true)))

let test_double_kill_resume () =
  (* A resumed daemon is itself killable: kill, resume, kill the resumed
     run, resume again — still bit-identical. *)
  let sc = scenario 42 in
  with_tmpdir (fun dir_a ->
      with_tmpdir (fun dir_b ->
          let cfg dir =
            sc.cfg_for ~checkpoint:(Some (Filename.concat dir "ckpt"))
              ~journal_dir:(Some (Filename.concat dir "journal"))
          in
          let r_a = Service.run (cfg dir_a) (sc.mk_source ~cursor:0 ~clock:0.0) in
          let k1 = r_a.events / 3 and k2 = 2 * r_a.events / 3 in
          let r1 =
            Service.run ~stop_after_events:(max 1 k1) (cfg dir_b)
              (sc.mk_source ~cursor:0 ~clock:0.0)
          in
          Alcotest.(check bool) "first kill" true (r1.outcome = Service.Killed);
          let r2 =
            Service.resume ~stop_after_events:(max 2 k2) (cfg dir_b) sc.mk_source
          in
          Alcotest.(check bool) "second kill" true (r2.outcome = Service.Killed);
          let r_b = Service.resume (cfg dir_b) sc.mk_source in
          Alcotest.(check string) "report identical after two kills"
            (report_repr r_a) (report_repr r_b);
          Alcotest.(check string) "journal identical after two kills"
            (journal_bytes (Filename.concat dir_a "journal"))
            (journal_bytes (Filename.concat dir_b "journal"))))

let test_replay_verifies_journal () =
  (* No-drop run: external ids coincide with instance job ids, so the
     spilled journal replays into a valid schedule whose metrics match
     the daemon's online accumulators. *)
  let sc = scenario 7 in
  (* Rebuild the full item list to construct the reference instance. *)
  let src = sc.mk_source ~cursor:0 ~clock:0.0 in
  let items = ref [] in
  let rec drain () =
    match Source.next src with
    | Some it -> items := it :: !items; drain ()
    | None -> ()
  in
  drain ();
  let items = List.rev !items in
  let n = List.length items in
  with_tmpdir (fun dir ->
      let base =
        sc.cfg_for ~checkpoint:None
          ~journal_dir:(Some (Filename.concat dir "journal"))
      in
      (* Override admission so nothing is ever dropped or queued. *)
      let cfg =
        { base with Service.max_live = n; policy = Service.Drop; faults = [];
          queue_cap = 0 }
      in
      let r = Service.run cfg (sc.mk_source ~cursor:0 ~clock:0.0) in
      Alcotest.(check int) "all admitted" n r.admitted;
      Alcotest.(check int) "all completed" n r.metrics.Service.completed;
      let inst =
        Instance.make ~platform:cfg.Service.platform
          ~jobs:
            (List.mapi
               (fun i (it : Source.item) ->
                 Job.make ~id:i ~release:it.release ~size:it.size
                   ~databank:it.databank)
               items)
      in
      let evs = Service.read_journal ~dir:(Filename.concat dir "journal") in
      let sched = Replay.schedule_of_journal inst evs in
      Alcotest.(check (list string)) "replayed schedule is valid" []
        (Schedule.validate sched);
      let m = Metrics.of_schedule sched in
      let close what a b =
        Alcotest.(check bool)
          (Printf.sprintf "%s: %.12g vs %.12g" what a b)
          true
          (abs_float (a -. b) <= 1e-9 *. Float.max 1.0 (abs_float b))
      in
      close "sum stretch" r.metrics.Service.sum_stretch m.Metrics.sum_stretch;
      close "max stretch" r.metrics.Service.max_stretch m.Metrics.max_stretch;
      close "sum flow" r.metrics.Service.sum_flow m.Metrics.sum_flow;
      close "makespan" r.metrics.Service.makespan m.Metrics.makespan)

let test_horizon_resume () =
  (* A horizon stop is a clean checkpointed pause: resuming with a wider
     horizon finishes the run with the same metrics as never stopping. *)
  let sc = scenario 3 in
  with_tmpdir (fun dir_a ->
      with_tmpdir (fun dir_b ->
          let cfg dir horizon =
            let c =
              sc.cfg_for ~checkpoint:(Some (Filename.concat dir "ckpt"))
                ~journal_dir:(Some (Filename.concat dir "journal"))
            in
            { c with Service.horizon }
          in
          let r_a = Service.run (cfg dir_a None) (sc.mk_source ~cursor:0 ~clock:0.0) in
          let h = r_a.final_time /. 2.0 in
          let r_stop =
            Service.run (cfg dir_b (Some h)) (sc.mk_source ~cursor:0 ~clock:0.0)
          in
          Alcotest.(check bool) "stopped at horizon" true
            (r_stop.outcome = Service.Horizon_reached);
          Alcotest.(check bool) "stopped early" true
            (r_stop.final_time <= h +. 1e-9);
          let r_b = Service.resume (cfg dir_b None) sc.mk_source in
          Alcotest.(check bool) "drained after resume" true
            (r_b.outcome = Service.Drained);
          (* The horizon pause adds checkpoint writes, so compare the
             workload-determined fields, not the checkpoint count. *)
          Alcotest.(check int) "completed" r_a.metrics.Service.completed
            r_b.metrics.Service.completed;
          Alcotest.(check (float 0.0)) "sum stretch"
            r_a.metrics.Service.sum_stretch r_b.metrics.Service.sum_stretch;
          Alcotest.(check (float 0.0)) "makespan" r_a.metrics.Service.makespan
            r_b.metrics.Service.makespan;
          Alcotest.(check int) "events" r_a.events r_b.events;
          Alcotest.(check string) "journal identical"
            (journal_bytes (Filename.concat dir_a "journal"))
            (journal_bytes (Filename.concat dir_b "journal"))))

let test_checkpoint_corruption_detected () =
  let sc = scenario 11 in
  with_tmpdir (fun dir ->
      let ckpt = Filename.concat dir "ckpt" in
      let cfg = sc.cfg_for ~checkpoint:(Some ckpt) ~journal_dir:None in
      let r =
        Service.run ~stop_after_events:5 cfg (sc.mk_source ~cursor:0 ~clock:0.0)
      in
      Alcotest.(check bool) "killed" true (r.outcome = Service.Killed);
      let original = Fsio.read_file ckpt in
      let expect_failure what =
        match Service.resume cfg sc.mk_source with
        | _ -> Alcotest.failf "%s accepted" what
        | exception Failure _ -> ()
      in
      (* Flip one payload byte: the checksum must catch it. *)
      let tampered = Bytes.of_string original in
      let i = String.length original - 2 in
      Bytes.set tampered i (if Bytes.get tampered i = '0' then '1' else '0');
      Fsio.write_atomic ~path:ckpt (Bytes.to_string tampered);
      expect_failure "tampered checkpoint";
      (* Truncate mid-payload: the length check must catch it. *)
      Fsio.write_atomic ~path:ckpt
        (String.sub original 0 (String.length original - 10));
      expect_failure "truncated checkpoint";
      (* Mismatched configuration: the fingerprint must catch it. *)
      Fsio.write_atomic ~path:ckpt original;
      let other =
        { cfg with
          Service.rule =
            (if cfg.Service.rule = Service.Fcfs then Service.Spt
             else Service.Fcfs) }
      in
      (match Service.resume other sc.mk_source with
       | _ -> Alcotest.fail "fingerprint mismatch accepted"
       | exception Failure m ->
         Alcotest.(check bool) "names the fingerprint" true
           (let re = "fingerprint" in
            let rec find i =
              i + String.length re <= String.length m
              && (String.sub m i (String.length re) = re || find (i + 1))
            in
            find 0));
      (* Intact checkpoint, intact config: resume completes. *)
      let r2 = Service.resume cfg sc.mk_source in
      Alcotest.(check bool) "clean resume drains" true
        (r2.outcome = Service.Drained))

let test_bounded_memory_counters () =
  (* An overloaded drop run never exceeds its configured capacities even
     with ~10x more jobs than slots. *)
  let platform = uni_platform [ 1.0 ] in
  let cfg =
    Service.config ~platform ~rule:Service.Swrpt ~policy:Service.Drop
      ~max_live:4 ~queue_cap:2 ()
  in
  let src =
    Source.poisson ~seed:5 ~rate:8.0 ~sizes:[| 1.0 |] ~jobs:200 ()
  in
  let r = Service.run cfg src in
  Alcotest.(check bool) "live bounded" true (r.peak_live <= 4);
  Alcotest.(check bool) "queue bounded" true (r.peak_queue <= 2);
  Alcotest.(check int) "every job accounted" 200
    (r.admitted + r.dropped);
  Alcotest.(check int) "source fully consumed" 200 r.source_cursor;
  Alcotest.(check int) "completions = admissions" r.admitted
    r.metrics.Service.completed

let suite =
  ( "service",
    [ Alcotest.test_case "drains a simple stream" `Quick test_drains_simple;
      Alcotest.test_case "drop policy" `Quick test_drop_policy;
      Alcotest.test_case "block policy" `Quick test_block_policy;
      Alcotest.test_case "shed policy" `Quick test_shed_policy;
      Alcotest.test_case "agrees with the batch engine" `Quick
        test_agrees_with_sim;
      QCheck_alcotest.to_alcotest prop_kill_resume;
      Alcotest.test_case "double kill and resume" `Quick test_double_kill_resume;
      Alcotest.test_case "journal replays into the online metrics" `Quick
        test_replay_verifies_journal;
      Alcotest.test_case "horizon stop resumes cleanly" `Quick
        test_horizon_resume;
      Alcotest.test_case "corrupt checkpoints are rejected" `Quick
        test_checkpoint_corruption_detected;
      Alcotest.test_case "memory bounds hold under overload" `Quick
        test_bounded_memory_counters ] )
