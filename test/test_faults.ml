(* Fault injection: trace generation, crash/pause loss semantics,
   availability enforcement, solver budget guardrails, and the resilience
   sweep plumbing. *)

open Gripps_model
open Gripps_engine
open Gripps_core
open Gripps_sched
module W = Gripps_workload
module E = Gripps_experiments

let mk_job ?(id = 0) ?(release = 0.0) ?(size = 1.0) ?(databank = 0) () =
  Job.make ~id ~release ~size ~databank

let single_job_inst ?(size = 10.0) () =
  Instance.make ~platform:(Platform.single ~speed:1.0) ~jobs:[ mk_job ~size () ]

let down t m = { Fault.time = t; machine = m; up = false }
let up t m = { Fault.time = t; machine = m; up = true }

(* ---- trace generation ------------------------------------------------- *)

let test_poisson_deterministic () =
  let draw () =
    Fault.poisson
      (Gripps_rng.Splitmix.create 99)
      ~mtbf:50.0 ~mttr:10.0 ~machines:3 ~until:500.0
  in
  let t1 = draw () and t2 = draw () in
  Alcotest.(check bool) "same seed, same trace" true (t1 = t2);
  Alcotest.(check bool) "non-empty at this rate" true (List.length t1 > 0)

let test_poisson_well_formed () =
  let trace =
    Fault.poisson
      (Gripps_rng.Splitmix.create 7)
      ~mtbf:30.0 ~mttr:5.0 ~machines:4 ~until:300.0
  in
  (* Chronological. *)
  let rec sorted = function
    | (a : Fault.edge) :: (b :: _ as rest) -> a.time <= b.time && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "chronological" true (sorted trace);
  (* Per machine: strict down/up alternation starting with a failure, and
     every failure has its repair (no machine stranded down). *)
  for m = 0 to 3 do
    let edges = List.filter (fun (e : Fault.edge) -> e.machine = m) trace in
    let rec alternates expect_up = function
      | [] -> true
      | (e : Fault.edge) :: rest -> e.up = expect_up && alternates (not expect_up) rest
    in
    Alcotest.(check bool) "starts down, alternates" true (alternates false edges);
    Alcotest.(check bool) "even edge count (all repairs present)" true
      (List.length edges mod 2 = 0)
  done

let test_normalize_rejects_bad_edges () =
  Alcotest.check_raises "negative machine"
    (Invalid_argument "Fault.normalize: negative machine id") (fun () ->
      ignore (Fault.normalize [ down 1.0 (-1) ]));
  Alcotest.check_raises "nan date" (Invalid_argument "Fault.normalize: NaN date")
    (fun () -> ignore (Fault.normalize [ down nan 0 ]))

(* ---- loss semantics --------------------------------------------------- *)

(* One unit-speed machine, one 10 MB job at t = 0, outage on [5, 7):
   - crash: the 5 MB processed before the failure are lost, so the job
     restarts from scratch at the repair and completes at 7 + 10 = 17;
   - pause: work survives, 5 MB remain at the repair, completion at 12. *)
let outage = [ down 5.0 0; up 7.0 0 ]

let test_crash_loses_in_flight_work () =
  let r =
    Sim.run_report ~horizon:1e6 ~faults:outage ~loss:Fault.Crash List_sched.srpt
      (single_job_inst ())
  in
  Alcotest.(check (float 1e-9)) "completion" 17.0
    (Schedule.completion_exn r.Sim.schedule 0);
  Alcotest.(check (float 1e-9)) "lost work" 5.0 r.Sim.lost.(0);
  Alcotest.(check (list string)) "valid" [] (Schedule.validate r.Sim.schedule)

let test_pause_preserves_work () =
  let r =
    Sim.run_report ~horizon:1e6 ~faults:outage ~loss:Fault.Pause List_sched.srpt
      (single_job_inst ())
  in
  Alcotest.(check (float 1e-9)) "completion" 12.0
    (Schedule.completion_exn r.Sim.schedule 0);
  Alcotest.(check (float 1e-9)) "nothing lost" 0.0 r.Sim.lost.(0);
  Alcotest.(check (list string)) "valid" [] (Schedule.validate r.Sim.schedule)

let test_static_downtime_equivalent () =
  (* The same outage encoded as a platform downtime window instead of an
     explicit trace. *)
  let platform =
    Platform.with_downtime (Platform.single ~speed:1.0) [ (0, [ (5.0, 7.0) ]) ]
  in
  let inst = Instance.make ~platform ~jobs:[ mk_job ~size:10.0 () ] in
  let sched = Sim.run ~horizon:1e6 ~loss:Fault.Pause List_sched.srpt inst in
  Alcotest.(check (float 1e-9)) "pause completion" 12.0
    (Schedule.completion_exn sched 0)

let test_down_machine_allocation_rejected () =
  let stubborn =
    Sim.stateless "stubborn" (fun st _events ->
        match Sim.active_jobs st with
        | [] -> Sim.idle
        | j :: _ -> { Sim.allocation = [ (0, [ (j, 1.0) ]) ]; horizon = None })
  in
  Alcotest.check_raises "down machine"
    (Invalid_argument "stubborn: allocation references down machine") (fun () ->
      ignore
        (Sim.run ~horizon:1e6
           ~faults:[ down 0.0 0; up 100.0 0 ]
           stubborn (single_job_inst ())))

let test_waiting_for_repair_is_not_stalled () =
  (* Every machine down at the release: the engine must idle until the
     repair rather than raise Stalled. *)
  let sched =
    Sim.run ~horizon:1e6
      ~faults:[ down 0.0 0; up 50.0 0 ]
      List_sched.srpt (single_job_inst ())
  in
  Alcotest.(check (float 1e-9)) "resumes at repair" 60.0
    (Schedule.completion_exn sched 0)

let test_fault_unknown_machine_rejected () =
  Alcotest.check_raises "unknown machine in trace"
    (Invalid_argument "SRPT: fault trace references unknown machine") (fun () ->
      ignore
        (Sim.run ~horizon:1e6 ~faults:[ down 1.0 5 ] List_sched.srpt
           (single_job_inst ())))

(* ---- conservation under failures (qcheck) ----------------------------- *)

let faulty_gen =
  QCheck2.Gen.(
    let* njobs = int_range 1 6 in
    let* nmach = int_range 1 3 in
    let* speeds = list_size (return nmach) (map float_of_int (int_range 1 3)) in
    let* jobs =
      list_size (return njobs)
        (let* release = map (fun i -> float_of_int i /. 2.0) (int_range 0 8) in
         let* size = map (fun i -> float_of_int i /. 2.0) (int_range 1 6) in
         return (release, size))
    in
    let* fault_seed = int_range 0 1000 in
    let* crash = bool in
    return (speeds, jobs, fault_seed, crash))

let prop_conservation_under_faults =
  QCheck2.Test.make
    ~name:"work conservation and validity under crash and pause faults" ~count:100
    faulty_gen
    (fun (speeds, jobs, fault_seed, crash) ->
      let platform = Platform.uniform ~speeds in
      let inst =
        Instance.make ~platform
          ~jobs:
            (List.mapi (fun i (release, size) -> mk_job ~id:i ~release ~size ()) jobs)
      in
      let faults =
        Fault.poisson
          (Gripps_rng.Splitmix.create fault_seed)
          ~mtbf:6.0 ~mttr:2.0
          ~machines:(Platform.num_machines platform)
          ~until:20.0
      in
      let loss = if crash then Fault.Crash else Fault.Pause in
      let r = Sim.run_report ~horizon:1e7 ~faults ~loss List_sched.swrpt inst in
      Schedule.validate r.Sim.schedule = []
      && Schedule.all_completed r.Sim.schedule
      && Array.for_all (fun l -> l >= 0.0) r.Sim.lost
      && ((not crash) = Array.for_all (fun l -> l = 0.0) r.Sim.lost || crash)
      (* Delivered work always equals each job's size: lost work is
         re-added to remaining and re-processed, never double-counted. *)
      && List.for_all
           (fun i ->
             let size = (Instance.job inst i).Job.size in
             abs_float (Schedule.work_received r.Sim.schedule i -. size) < 1e-6)
           (List.init (Instance.num_jobs inst) Fun.id))

(* ---- solver budget guardrails ----------------------------------------- *)

let tiny_problem =
  let q = Gripps_numeric.Rat.of_int in
  { Stretch_solver.now = q 0;
    jobs =
      [ { Stretch_solver.jid = 0; release = q 0; size = q 2; remaining = q 2;
          machines = [ 0 ] };
        { Stretch_solver.jid = 1; release = q 1; size = q 3; remaining = q 3;
          machines = [ 0 ] } ];
    machines = [ { Stretch_solver.mid = 0; speed = q 1 } ] }

let zero_budget = { Stretch_solver.max_iters = 0; max_seconds = infinity }

let test_budget_exhaustion_raises () =
  (match Stretch_solver.optimal_max_stretch ~budget:zero_budget tiny_problem with
  | _ -> Alcotest.fail "expected Budget_exhausted"
  | exception Stretch_solver.Budget_exhausted { stage; iters; _ } ->
    Alcotest.(check string) "exact stage" "exact" stage;
    Alcotest.(check bool) "counted" true (iters > 0));
  match Stretch_solver.optimal_max_stretch_float ~budget:zero_budget tiny_problem with
  | _ -> Alcotest.fail "expected Budget_exhausted"
  | exception Stretch_solver.Budget_exhausted { stage; _ } ->
    Alcotest.(check string) "float stage" "float" stage

let test_generous_budget_harmless () =
  let s = Stretch_solver.optimal_max_stretch tiny_problem in
  let s' =
    Stretch_solver.optimal_max_stretch
      ~budget:{ Stretch_solver.max_iters = 100_000; max_seconds = 60.0 }
      tiny_problem
  in
  Alcotest.(check bool) "same optimum" true (Gripps_numeric.Rat.equal s s')

let budgeted_instance () =
  let rng = Gripps_rng.Splitmix.create 2024 in
  let c =
    W.Config.make ~sites:2 ~databases:2 ~availability:0.8 ~density:1.0
      ~horizon:10.0 ()
  in
  W.Generator.instance rng c

let test_online_budget_degrades_to_swrpt () =
  (* With a zero budget every replan falls back to greedy SWRPT, so the
     degraded Online run must be indistinguishable from SWRPT — and, in
     particular, it must complete. *)
  let inst = budgeted_instance () in
  let degraded =
    Sim.run ~horizon:1e9 (Online_lp.online_budgeted zero_budget) inst
  in
  let swrpt = Sim.run ~horizon:1e9 List_sched.swrpt inst in
  Alcotest.(check bool) "completes" true (Schedule.all_completed degraded);
  for j = 0 to Instance.num_jobs inst - 1 do
    Alcotest.(check (float 1e-9)) "same completions"
      (Schedule.completion_exn swrpt j)
      (Schedule.completion_exn degraded j)
  done

let test_offline_budget_chain_completes () =
  let inst = budgeted_instance () in
  let sched = Sim.run ~horizon:1e9 (Offline.scheduler_budgeted zero_budget) inst in
  Alcotest.(check bool) "completes via greedy fallback" true
    (Schedule.all_completed sched);
  Alcotest.(check (list string)) "valid" [] (Schedule.validate sched)

(* ---- resilience sweep plumbing ---------------------------------------- *)

let test_resilience_sweep_smoke () =
  let c =
    W.Config.make ~sites:2 ~databases:2 ~availability:0.8 ~density:1.0
      ~horizon:10.0 ()
  in
  let panel = [ List_sched.swrpt; List_sched.srpt; Greedy.mct ] in
  let run () =
    E.Resilience.run ~schedulers:panel ~mtbf_grid:[ 30.0 ] ~mttr:5.0 ~seed:5
      ~instances:2 c
  in
  let s1 = run () in
  Alcotest.(check int) "cells = schedulers x (baseline + levels)" 6
    (List.length s1.E.Resilience.cells);
  List.iter
    (fun (cell : E.Resilience.cell) ->
      Alcotest.(check bool) "finite stretch" true
        (Float.is_finite cell.E.Resilience.mean_max_stretch);
      Alcotest.(check bool) "positive degradation" true
        (cell.E.Resilience.degradation > 0.0))
    s1.E.Resilience.cells;
  let s2 = run () in
  Alcotest.(check bool) "deterministic" true
    (s1.E.Resilience.cells = s2.E.Resilience.cells);
  Alcotest.(check bool) "renders" true
    (String.length (E.Resilience.render s1) > 0)

let test_fault_axis_config () =
  let fa = W.Config.fault_axis ~mtbf:100.0 ~mttr:10.0 () in
  let c = W.Config.with_faults W.Config.default fa in
  Alcotest.(check bool) "describe mentions faults" true
    (String.length (W.Config.describe c) > String.length (W.Config.describe W.Config.default));
  let trace = W.Generator.fault_trace (Gripps_rng.Splitmix.create 3) c ~machines:3 in
  Alcotest.(check bool) "trace drawn" true (List.length trace > 0);
  let none = W.Generator.fault_trace (Gripps_rng.Splitmix.create 3) W.Config.default ~machines:3 in
  Alcotest.(check int) "no axis, no trace" 0 (List.length none);
  Alcotest.check_raises "bad mtbf"
    (Invalid_argument "Config.fault_axis: non-positive mtbf") (fun () ->
      ignore (W.Config.fault_axis ~mtbf:0.0 ~mttr:1.0 ()))

let suite =
  ( "faults",
    [ Alcotest.test_case "poisson deterministic" `Quick test_poisson_deterministic;
      Alcotest.test_case "poisson well-formed" `Quick test_poisson_well_formed;
      Alcotest.test_case "normalize rejects bad edges" `Quick
        test_normalize_rejects_bad_edges;
      Alcotest.test_case "crash loses in-flight work" `Quick
        test_crash_loses_in_flight_work;
      Alcotest.test_case "pause preserves work" `Quick test_pause_preserves_work;
      Alcotest.test_case "static downtime windows" `Quick
        test_static_downtime_equivalent;
      Alcotest.test_case "down machine allocation rejected" `Quick
        test_down_machine_allocation_rejected;
      Alcotest.test_case "waiting for repair is not stalled" `Quick
        test_waiting_for_repair_is_not_stalled;
      Alcotest.test_case "fault trace validated" `Quick
        test_fault_unknown_machine_rejected;
      QCheck_alcotest.to_alcotest prop_conservation_under_faults;
      Alcotest.test_case "budget exhaustion raises" `Quick
        test_budget_exhaustion_raises;
      Alcotest.test_case "generous budget harmless" `Quick
        test_generous_budget_harmless;
      Alcotest.test_case "zero-budget Online degrades to SWRPT" `Quick
        test_online_budget_degrades_to_swrpt;
      Alcotest.test_case "zero-budget Offline completes" `Quick
        test_offline_budget_chain_completes;
      Alcotest.test_case "resilience sweep smoke" `Quick test_resilience_sweep_smoke;
      Alcotest.test_case "fault axis config" `Quick test_fault_axis_config ] )
