(* Observability: counters, span nesting with a deterministic clock, the
   zero-cost disabled path, JSONL round-trips, journal replay, and the
   trace-scenario verification loop. *)

open Gripps_model
open Gripps_engine
module Obs = Gripps_obs.Obs
module J = Obs.Journal
module W = Gripps_workload
module E = Gripps_experiments

(* Every test leaves the global singleton as it found it. *)
let sandboxed f () =
  let saved = Obs.level () in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_level saved;
      Obs.set_clock Unix.gettimeofday;
      J.set_sink None;
      J.clear ();
      Obs.Span.reset ())
    f

(* ---- counters --------------------------------------------------------- *)

let test_counters () =
  let c = Obs.Counter.make "test.obs.counter" in
  let c' = Obs.Counter.make "test.obs.counter" in
  Obs.Counter.reset c;
  Obs.Counter.incr c;
  Obs.Counter.add c' 4;
  Alcotest.(check int) "make is idempotent" 5 (Obs.Counter.value c);
  Alcotest.(check (option int)) "registry lookup" (Some 5)
    (Obs.counter_value "test.obs.counter");
  Alcotest.(check bool) "snapshot contains it" true
    (List.mem_assoc "test.obs.counter" (Obs.counters ()));
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c)

let test_poll () =
  let cell = ref 7 in
  Obs.register_poll "test.obs.poll" (fun () -> !cell);
  Alcotest.(check (option int)) "poll value" (Some 7)
    (Obs.counter_value "test.obs.poll");
  cell := 9;
  Alcotest.(check (option int)) "poll is live" (Some 9)
    (Obs.counter_value "test.obs.poll")

(* ---- spans ------------------------------------------------------------ *)

(* A deterministic clock advancing 1 s per reading: outer opens at 0,
   inner runs [1,2], outer closes at 3. *)
let test_span_nesting () =
  let t = ref (-1.0) in
  Obs.set_clock (fun () -> t := !t +. 1.0; !t);
  Obs.set_level Obs.Spans;
  Obs.Span.reset ();
  let v =
    Obs.Span.with_ "test.outer" (fun () ->
        Obs.Span.with_ "test.inner" (fun () -> 42))
  in
  Alcotest.(check int) "value threaded" 42 v;
  Alcotest.(check (float 1e-9)) "inner duration" 1.0 (Obs.Span.total "test.inner");
  Alcotest.(check (float 1e-9)) "outer contains inner" 3.0
    (Obs.Span.total "test.outer");
  Alcotest.(check int) "inner count" 1 (Obs.Span.count "test.inner");
  Alcotest.(check (float 1e-9)) "prefix sum" 4.0 (Obs.Span.total_prefix "test.")

let test_span_journal_depth () =
  let t = ref (-1.0) in
  Obs.set_clock (fun () -> t := !t +. 1.0; !t);
  Obs.set_level Obs.Events;
  J.clear ();
  Obs.Span.reset ();
  Obs.Span.with_ "test.outer" (fun () ->
      Obs.Span.with_ "test.inner" (fun () -> ()));
  let depths =
    List.filter_map
      (function J.Span_closed { name; depth; _ } -> Some (name, depth) | _ -> None)
      (J.events ())
  in
  (* Inner closes first (depth 1), then outer (depth 0). *)
  Alcotest.(check (list (pair string int)))
    "nesting depths journaled"
    [ ("test.inner", 1); ("test.outer", 0) ]
    depths

let test_span_exception_safe () =
  Obs.set_level Obs.Spans;
  Obs.Span.reset ();
  (try Obs.Span.with_ "test.raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1 (Obs.Span.count "test.raises");
  (* Depth unwound: a sibling span opens at depth 0 again. *)
  Obs.set_level Obs.Events;
  J.clear ();
  Obs.Span.with_ "test.sibling" (fun () -> ());
  match J.events () with
  | [ J.Span_closed { depth = 0; _ } ] -> ()
  | _ -> Alcotest.fail "depth not restored after exception"

let nop () = ()

let test_disabled_zero_alloc () =
  Obs.set_level Obs.Counters;
  (* Warm up so any one-time setup is out of the measured window. *)
  for _ = 1 to 64 do
    Obs.Span.with_ "test.noalloc" nop;
    if J.on () then J.record (J.Note { key = "x"; value = "y" })
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.Span.with_ "test.noalloc" nop;
    if J.on () then J.record (J.Note { key = "x"; value = "y" })
  done;
  let dw = Gc.minor_words () -. w0 in
  (* 10k disabled span+journal hooks; allow a little slop for the Gc
     call itself but nothing proportional to the iteration count. *)
  Alcotest.(check bool)
    (Printf.sprintf "no allocation when disabled (%.0f words)" dw)
    true (dw < 256.0)

(* ---- JSONL ------------------------------------------------------------ *)

let sample_events =
  [ J.Run_start { scheduler = "Online"; jobs = 3; machines = 2 };
    J.Sim_event { time = 1.0312345678901234; kind = J.Arrival; subject = 0 };
    J.Sim_event { time = 2.5; kind = J.Completion; subject = 1 };
    J.Sim_event { time = 2.5; kind = J.Boundary; subject = -1 };
    J.Sim_event { time = 3.0; kind = J.Failure; subject = 1 };
    J.Sim_event { time = 4.0; kind = J.Recovery; subject = 1 };
    J.Replan
      { time = 2.5; scheduler = "Online";
        allocation = [ (0, [ (1, 0.5); (2, 0.25) ]); (1, []) ];
        horizon = Some 3.75 };
    J.Replan { time = 2.5; scheduler = "Idle"; allocation = []; horizon = None };
    J.Segment
      { start_time = 0.1; end_time = 0.30000000000000004;
        shares = [ (0, [ (0, 1.0) ]) ] };
    J.Probe { pipeline = "exact"; stretch = 1.625; feasible = true };
    J.Probe { pipeline = "float"; stretch = Float.nan; feasible = false };
    J.Span_closed
      { name = "solver.exact"; depth = 1; start_s = 0.125; dur_s = 0.0625 };
    J.Note { key = "weird \"chars\"\n\t"; value = "\\backslash\r" };
    J.Run_end { time = 54.15123456789; completed = 6 } ]

(* [compare], not [=]: the NaN probe must round-trip too. *)
let same_events a b = compare (a : J.event list) b = 0

let test_jsonl_roundtrip () =
  let lines = List.map J.to_json sample_events in
  let back = List.filter_map J.of_json lines in
  Alcotest.(check int) "no line lost" (List.length sample_events)
    (List.length back);
  Alcotest.(check bool) "round-trip is the identity" true
    (same_events sample_events back)

let test_jsonl_file_roundtrip () =
  let path = Filename.temp_file "gripps_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      J.write_jsonl ~path sample_events;
      let back = J.read_jsonl ~path in
      Alcotest.(check bool) "file round-trip" true (same_events sample_events back))

let test_of_json_malformed () =
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" line)
        true
        (J.of_json line = None))
    [ ""; "garbage"; "{"; "{\"type\":\"bogus\"}"; "{\"type\":\"probe\"}";
      "[1,2,3]"; "{\"type\":\"event\",\"kind\":\"nope\",\"time\":1,\"subject\":0}" ]

(* ---- rotation, truncation, segment spill ------------------------------ *)

let note k = J.Note { key = "k"; value = string_of_int k }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_rotate_positions () =
  Obs.set_level Obs.Events;
  J.clear ();
  for k = 1 to 5 do
    J.record (note k)
  done;
  Alcotest.(check int) "position counts records" 5 (J.position ());
  let window = J.rotate () in
  Alcotest.(check int) "rotate takes the whole window" 5 (List.length window);
  Alcotest.(check bool) "buffer left empty" true (J.events () = []);
  Alcotest.(check int) "position survives rotation" 5 (J.position ());
  for k = 6 to 8 do
    J.record (note k)
  done;
  (* A mark older than the rotated-away prefix clamps to what is
     retained; a live mark addresses the exact suffix. *)
  Alcotest.(check bool) "stale mark clamps to retained suffix" true
    (compare (J.since 2) [ note 6; note 7; note 8 ] = 0);
  Alcotest.(check bool) "live mark addresses its suffix" true
    (compare (J.since 6) [ note 7; note 8 ] = 0);
  J.truncate_before 7;
  Alcotest.(check bool) "truncation keeps later positions stable" true
    (compare (J.since 5) [ note 8 ] = 0);
  J.clear ();
  Alcotest.(check int) "clear resets position" 0 (J.position ())

(* The daemon's spill loop: record a window, [rotate], [append_jsonl] it
   to a segment, repeat — the concatenated segments must read back as
   exactly the full journal. *)
let test_segment_spill_roundtrip () =
  let path = Filename.temp_file "gripps_obs_seg" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Sys.remove path (* append_jsonl must create the file itself *);
      Obs.set_level Obs.Events;
      J.clear ();
      List.iter J.record (List.filteri (fun i _ -> i < 7) sample_events);
      J.append_jsonl ~path (J.rotate ());
      List.iter J.record (List.filteri (fun i _ -> i >= 7) sample_events);
      J.append_jsonl ~path (J.rotate ());
      Alcotest.(check int) "position counts both windows"
        (List.length sample_events) (J.position ());
      let back = J.read_jsonl_strict ~path in
      Alcotest.(check bool) "spilled segments concatenate to the journal"
        true
        (same_events sample_events back))

let test_read_jsonl_strict_errors () =
  let path = Filename.temp_file "gripps_obs_bad" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let write s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      let expect_failure label fragment =
        match J.read_jsonl_strict ~path with
        | _ -> Alcotest.fail (label ^ ": accepted")
        | exception Failure msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s names the damage (%s)" label msg)
            true (contains msg fragment)
      in
      write (J.to_json (note 1) ^ "\n" ^ "garbage\n");
      expect_failure "malformed line" "line 2";
      Alcotest.(check int) "lenient reader skips the malformed line" 1
        (List.length (J.read_jsonl ~path));
      (* A file not ending in a newline is the signature of a crash-torn
         append: the strict reader must refuse the whole file. *)
      write (J.to_json (note 1) ^ "\n"
             ^ String.sub (J.to_json (note 2)) 0 5);
      expect_failure "torn last record" "truncated";
      write (J.to_json (note 1) ^ "\n" ^ J.to_json (note 2));
      expect_failure "missing trailing newline" "truncated")

(* ---- journal replay --------------------------------------------------- *)

let run_and_replay scheduler inst =
  Obs.with_level Obs.Events (fun () ->
      let report = Sim.run_report ~horizon:1e9 scheduler inst in
      (* Round-trip through the serialization before replaying, so the
         property covers the JSONL encoding too. *)
      let journal =
        List.filter_map J.of_json (List.map J.to_json report.Sim.journal)
      in
      (report, Replay.schedule_of_journal inst journal))

let prop_replay_reproduces_run =
  QCheck2.Test.make ~name:"journal replay reproduces the schedule" ~count:12
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 3))
    (fun (seed, density_q) ->
      let config =
        W.Config.make ~sites:2 ~databases:2 ~availability:0.8
          ~density:(float_of_int density_q) ~horizon:6.0 ()
      in
      let inst =
        W.Generator.instance (Gripps_rng.Splitmix.create seed) config
      in
      List.for_all
        (fun s ->
          let report, replayed = run_and_replay s inst in
          Schedule.validate replayed = []
          && Schedule.all_completed replayed
          && compare report.Sim.metrics (Metrics.of_schedule replayed) = 0)
        [ Gripps_core.Online_lp.online; Gripps_sched.List_sched.swrpt ])

let test_replay_under_faults () =
  let config =
    W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0
      ~horizon:20.0 ()
  in
  let inst = W.Generator.instance (Gripps_rng.Splitmix.create 5) config in
  let machines = Platform.num_machines (Instance.platform inst) in
  let faults =
    Fault.poisson
      (Gripps_rng.Splitmix.create 17)
      ~mtbf:10.0 ~mttr:2.0 ~machines ~until:20.0
  in
  Obs.with_level Obs.Events (fun () ->
      let report =
        Sim.run_report ~horizon:1e9 ~faults ~loss:Fault.Crash
          Gripps_sched.List_sched.swrpt inst
      in
      let replayed = Replay.schedule_of_journal inst report.Sim.journal in
      Alcotest.(check bool) "crash-run metrics reproduced bitwise" true
        (compare report.Sim.metrics (Metrics.of_schedule replayed) = 0);
      let has_failure =
        List.exists
          (function J.Sim_event { kind = J.Failure; _ } -> true | _ -> false)
          report.Sim.journal
      in
      Alcotest.(check bool) "journal recorded failures" true has_failure)

let two_job_inst () =
  Instance.make
    ~platform:(Platform.single ~speed:1.0)
    ~jobs:
      [ Job.make ~id:0 ~release:0.0 ~size:1.0 ~databank:0;
        Job.make ~id:1 ~release:0.0 ~size:1.0 ~databank:0 ]

let test_replay_empty_journal () =
  let inst = two_job_inst () in
  let sch = Replay.schedule_of_journal inst [] in
  Alcotest.(check (list string)) "empty journal is vacuously valid" []
    (Schedule.validate sch);
  Alcotest.(check bool) "nothing completed" false (Schedule.all_completed sch);
  Alcotest.(check int) "no completions counted" 0 (Replay.completed_jobs [])

(* A crash can journal a [Replan] whose realized segments never made it
   to disk: replay must yield the delivered prefix as a valid partial
   schedule, ignoring the dangling plan. *)
let test_replay_mid_replan_tail () =
  let inst = two_job_inst () in
  let journal =
    [ J.Run_start { scheduler = "daemon"; jobs = 2; machines = 1 };
      J.Segment
        { start_time = 0.0; end_time = 1.0; shares = [ (0, [ (0, 1.0) ]) ] };
      J.Sim_event { time = 1.0; kind = J.Completion; subject = 0 };
      J.Replan
        { time = 1.0; scheduler = "daemon";
          allocation = [ (0, [ (1, 1.0) ]) ]; horizon = None } ]
  in
  let sch = Replay.schedule_of_journal inst journal in
  Alcotest.(check (list string)) "partial schedule validates" []
    (Schedule.validate sch);
  Alcotest.(check bool) "job 1 still open" false (Schedule.all_completed sch);
  Alcotest.(check (float 0.0)) "job 0 got its work" 1.0
    (Schedule.work_received sch 0);
  Alcotest.(check (float 0.0)) "planned-only work not delivered" 0.0
    (Schedule.work_received sch 1);
  Alcotest.(check int) "one completion" 1 (Replay.completed_jobs journal)

(* Failure/Recovery subjects are machine ids, which may exceed the job
   range — replay must not misread them as completions. *)
let test_replay_ignores_fault_events () =
  let inst = two_job_inst () in
  let journal =
    [ J.Sim_event { time = 0.5; kind = J.Failure; subject = 7 };
      J.Sim_event { time = 0.9; kind = J.Recovery; subject = 7 };
      J.Segment
        { start_time = 1.0; end_time = 2.0; shares = [ (0, [ (0, 1.0) ]) ] };
      J.Sim_event { time = 2.0; kind = J.Completion; subject = 0 } ]
  in
  let sch = Replay.schedule_of_journal inst journal in
  Alcotest.(check (list string)) "fault records replay fine" []
    (Schedule.validate sch);
  Alcotest.(check int) "fault subjects not counted as completions" 1
    (Replay.completed_jobs journal)

let test_replay_rejects_foreign_jobs () =
  let inst =
    Instance.make
      ~platform:(Platform.single ~speed:1.0)
      ~jobs:[ Job.make ~id:0 ~release:0.0 ~size:1.0 ~databank:0 ]
  in
  Alcotest.check_raises "unknown job id"
    (Invalid_argument "Replay: completion record for unknown job")
    (fun () ->
      ignore
        (Replay.schedule_of_journal inst
           [ J.Sim_event { time = 1.0; kind = J.Completion; subject = 3 } ]))

let test_horizon_exceeded_carries_journal () =
  (* The guard is checked at the top of the event loop, so there must be
     an event (the second arrival) past the horizon for it to fire. *)
  let inst =
    Instance.make
      ~platform:(Platform.single ~speed:1.0)
      ~jobs:
        [ Job.make ~id:0 ~release:0.0 ~size:10.0 ~databank:0;
          Job.make ~id:1 ~release:5.0 ~size:1.0 ~databank:0 ]
  in
  Obs.with_level Obs.Events (fun () ->
      match Sim.run ~horizon:1.0 Gripps_sched.List_sched.swrpt inst with
      | _ -> Alcotest.fail "expected Horizon_exceeded"
      | exception Sim.Horizon_exceeded { journal; _ } ->
        Alcotest.(check bool) "partial journal non-empty" true (journal <> []);
        Alcotest.(check bool) "starts with run_start" true
          (match journal with J.Run_start _ :: _ -> true | _ -> false))

(* ---- parallel journals ------------------------------------------------- *)

(* Two simulations run in separate domains; the coordinator's merged
   journal must be exactly the concatenation of the per-shard journals in
   shard order, and each slice must still replay to the live metrics
   bit-for-bit. *)
let test_parallel_journal_merge () =
  let module Pool = Gripps_parallel.Pool in
  let instances =
    List.map
      (fun seed ->
        W.Generator.instance
          (Gripps_rng.Splitmix.create seed)
          (W.Config.make ~sites:2 ~databases:2 ~availability:0.8 ~density:1.0
             ~horizon:6.0 ()))
      [ 31; 32 ]
  in
  Obs.with_level Obs.Events (fun () ->
      J.clear ();
      let results =
        Pool.try_map (Pool.create ~domains:2 ()) ~shards:2 (fun i ->
            let inst = List.nth instances i in
            (inst, Sim.run_report ~horizon:1e9 Gripps_sched.List_sched.swrpt inst))
      in
      let reports =
        Array.to_list results
        |> List.map (function Ok r -> r | Error e -> raise e)
      in
      Alcotest.(check bool) "merged journal = shard journals in shard order"
        true
        (compare (J.events ())
           (List.concat_map (fun (_, r) -> r.Sim.journal) reports)
         = 0);
      List.iter
        (fun (inst, (r : Sim.report)) ->
          let replayed = Replay.schedule_of_journal inst r.Sim.journal in
          Alcotest.(check bool) "shard journal replays to live metrics" true
            (compare r.Sim.metrics (Metrics.of_schedule replayed) = 0))
        reports;
      J.clear ())

(* The CLI's [trace --verify --jobs N] path: verification through a
   2-domain sweep is indistinguishable from the sequential loop. *)
let test_trace_verify_parallel () =
  let module Sweep = Gripps_parallel.Sweep in
  let scenarios =
    List.filter
      (fun (sc : E.Trace.scenario) -> sc.E.Trace.scheduler <> "Offline")
      E.Trace.scenarios
  in
  let sequential = List.map E.Trace.verify scenarios in
  let parallel =
    Sweep.run
      ~pool:(Gripps_parallel.Pool.create ~domains:2 ())
      (Sweep.of_list scenarios E.Trace.verify)
  in
  Alcotest.(check bool) "parallel verification is bit-identical" true
    (compare sequential parallel = 0);
  List.iter
    (fun (v : E.Trace.verification) ->
      Alcotest.(check bool)
        (Printf.sprintf "scenario %s verifies in parallel" v.E.Trace.v_scenario)
        true v.E.Trace.v_ok)
    parallel

(* ---- trace scenarios --------------------------------------------------- *)

let test_trace_verify () =
  List.iter
    (fun (sc : E.Trace.scenario) ->
      let v = E.Trace.verify sc in
      Alcotest.(check bool)
        (Printf.sprintf "scenario %s verifies" sc.E.Trace.sc_name)
        true v.E.Trace.v_ok)
    (List.filter
       (fun (sc : E.Trace.scenario) -> sc.E.Trace.scheduler <> "Offline")
       E.Trace.scenarios)

let test_trace_verify_offline () =
  match E.Trace.find "offline-exact" with
  | None -> Alcotest.fail "offline-exact scenario missing"
  | Some sc ->
    let v = E.Trace.verify sc in
    Alcotest.(check bool) "offline-exact verifies" true v.E.Trace.v_ok

let suite =
  ( "obs",
    [ Alcotest.test_case "counters" `Quick (sandboxed test_counters);
      Alcotest.test_case "polled gauges" `Quick (sandboxed test_poll);
      Alcotest.test_case "span nesting" `Quick (sandboxed test_span_nesting);
      Alcotest.test_case "span journal depth" `Quick
        (sandboxed test_span_journal_depth);
      Alcotest.test_case "span exception safety" `Quick
        (sandboxed test_span_exception_safe);
      Alcotest.test_case "disabled hooks allocate nothing" `Quick
        (sandboxed test_disabled_zero_alloc);
      Alcotest.test_case "jsonl round-trip" `Quick (sandboxed test_jsonl_roundtrip);
      Alcotest.test_case "jsonl file round-trip" `Quick
        (sandboxed test_jsonl_file_roundtrip);
      Alcotest.test_case "malformed json rejected" `Quick
        (sandboxed test_of_json_malformed);
      Alcotest.test_case "journal rotation keeps positions" `Quick
        (sandboxed test_rotate_positions);
      Alcotest.test_case "segment spill round-trip" `Quick
        (sandboxed test_segment_spill_roundtrip);
      Alcotest.test_case "strict reader rejects damage" `Quick
        (sandboxed test_read_jsonl_strict_errors);
      Alcotest.test_case "replay of an empty journal" `Quick
        (sandboxed test_replay_empty_journal);
      Alcotest.test_case "replay of a mid-replan tail" `Quick
        (sandboxed test_replay_mid_replan_tail);
      Alcotest.test_case "replay ignores fault events" `Quick
        (sandboxed test_replay_ignores_fault_events);
      QCheck_alcotest.to_alcotest prop_replay_reproduces_run;
      Alcotest.test_case "replay under faults" `Quick
        (sandboxed test_replay_under_faults);
      Alcotest.test_case "replay validates job ids" `Quick
        (sandboxed test_replay_rejects_foreign_jobs);
      Alcotest.test_case "horizon_exceeded carries journal" `Quick
        (sandboxed test_horizon_exceeded_carries_journal);
      Alcotest.test_case "parallel journal merge" `Quick
        (sandboxed test_parallel_journal_merge);
      Alcotest.test_case "trace verify under parallelism" `Slow
        (sandboxed test_trace_verify_parallel);
      Alcotest.test_case "trace scenarios verify" `Slow
        (sandboxed test_trace_verify);
      Alcotest.test_case "trace offline-exact verifies" `Slow
        (sandboxed test_trace_verify_offline) ] )
