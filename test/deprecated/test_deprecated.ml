(* The deprecated registry aliases answer exactly as their replacements.
   This module deliberately uses the deprecated surface, so it lives in
   its own directory, excluded from the [nodeprecated] profile where the
   alert is an error; the alert is silenced here (and only here) because
   exercising the aliases is the point. *)

[@@@alert "-deprecated"]

module R = Gripps_experiments.Sched_registry

let test_all_is_paper_panel () =
  Alcotest.(check (list string))
    "all = paper_panel"
    (R.panel_names R.paper_panel)
    (R.panel_names R.all)

let test_names_alias () =
  Alcotest.(check (list string))
    "names = panel_names paper_panel"
    (R.panel_names R.paper_panel)
    R.names

let test_of_kind_is_clairvoyant_select () =
  List.iter
    (fun kind ->
      Alcotest.(check (list string))
        (Printf.sprintf "of_kind %s = clairvoyant select" (R.kind_name kind))
        (R.panel_names
           (R.select (fun e -> e.R.kind = kind && R.is_clairvoyant e)))
        (R.panel_names (R.of_kind kind)))
    [ R.Offline; R.Online; R.Heuristic ]

let () =
  Alcotest.run "gripps-deprecated"
    [ ( "registry aliases",
        [ Alcotest.test_case "all" `Quick test_all_is_paper_panel;
          Alcotest.test_case "names" `Quick test_names_alias;
          Alcotest.test_case "of_kind" `Quick test_of_kind_is_clairvoyant_select
        ] ) ]
