(* The multicore sweep engine: shard-boundary edge cases, the domain-safe
   counter path under contention, the differential property that a sweep
   is bit-identical at any pool size (including under injected faults),
   the index-derived seed discipline, and exception containment.

   The container running CI may expose a single core; every property here
   is about determinism, not speedup, so 2- and 4-domain pools are still
   meaningful — domains interleave on one core and any execution-order
   dependence would surface just the same. *)

open Gripps_engine
module Pool = Gripps_parallel.Pool
module Sweep = Gripps_parallel.Sweep
module Obs = Gripps_obs.Obs
module J = Obs.Journal
module W = Gripps_workload
module E = Gripps_experiments

(* Every test leaves the global observability singleton as it found it. *)
let sandboxed f () =
  let saved = Obs.level () in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_level saved;
      Obs.set_clock Unix.gettimeofday;
      J.set_sink None;
      J.clear ();
      Obs.Span.reset ())
    f

(* ---- shard-boundary edge cases ---------------------------------------- *)

let ints_of t pool = Sweep.run ~pool t

let test_edge_cases () =
  let square = Sweep.make ~length:0 (fun i -> i * i) in
  let pool4 = Pool.create ~domains:4 () in
  Alcotest.(check (list int)) "empty grid, sequential" [] (ints_of square Pool.sequential);
  Alcotest.(check (list int)) "empty grid, 4 domains" [] (ints_of square pool4);
  let one = Sweep.make ~length:1 (fun i -> i + 10) in
  Alcotest.(check (list int)) "one job, 4 domains" [ 10 ] (ints_of one pool4);
  (* Fewer jobs than domains: the pool must clamp, not spawn idle
     domains that return phantom shards. *)
  let two = Sweep.make ~length:2 (fun i -> i * 3) in
  Alcotest.(check (list int)) "jobs < domains" [ 0; 3 ] (ints_of two pool4);
  (* One more job than domains: some worker owns two shards. *)
  let five = Sweep.make ~length:5 (fun i -> i * i) in
  Alcotest.(check (list int)) "jobs = domains + 1" [ 0; 1; 4; 9; 16 ]
    (ints_of five pool4);
  Alcotest.(check int) "append length" 7
    (Sweep.length (Sweep.append two five));
  Alcotest.(check (list int)) "append runs left then right" [ 0; 3; 0; 1; 4; 9; 16 ]
    (ints_of (Sweep.append two five) pool4)

let test_progress_in_order () =
  let calls = ref [] in
  let progress k total = calls := (k, total) :: !calls in
  let r =
    Sweep.run ~pool:(Pool.create ~domains:3 ()) ~progress
      (Sweep.make ~length:5 (fun i -> i))
  in
  Alcotest.(check (list int)) "results in index order" [ 0; 1; 2; 3; 4 ] r;
  Alcotest.(check (list (pair int int)))
    "progress ticks once per job, in order"
    [ (1, 5); (2, 5); (3, 5); (4, 5); (5, 5) ]
    (List.rev !calls)

let test_negative_shards_rejected () =
  Alcotest.check_raises "negative length"
    (Invalid_argument "Sweep.make: negative length") (fun () ->
      ignore (Sweep.make ~length:(-1) (fun i -> i)))

(* ---- counter hammer: the Obs registry race fix ------------------------ *)

(* Before counters became domain-local, two domains bumping the same bare
   [int ref] lost increments.  Hammer the same counter from every shard
   and require the merged total to be exact. *)
let test_counter_hammer () =
  let c = Obs.Counter.make "test.parallel.hammer" in
  let per_shard = 100_000 in
  let hammer pool shards =
    Obs.Counter.reset c;
    Pool.map_reduce pool ~shards
      ~map:(fun _ ->
        for _ = 1 to per_shard do
          Obs.Counter.incr c
        done)
      ~init:() ~reduce:(fun () () -> ());
    Obs.Counter.value c
  in
  Alcotest.(check int) "2 domains, no lost increments" (2 * per_shard)
    (hammer (Pool.create ~domains:2 ()) 2);
  Alcotest.(check int) "4 domains x 8 shards, no lost increments"
    (8 * per_shard)
    (hammer (Pool.create ~domains:4 ()) 8);
  Alcotest.(check int) "sequential reference" (2 * per_shard)
    (hammer Pool.sequential 2)

(* ---- differential harness: pool size is unobservable ------------------ *)

(* Everything a sweep result feeds into the paper's tables, minus the
   wall-clock fields (those legitimately vary run to run). *)
let projection (rs : E.Runner.instance_result list) =
  List.map
    (fun (r : E.Runner.instance_result) ->
      ( r.num_jobs,
        List.map
          (fun (m : E.Runner.measurement) ->
            (m.scheduler, m.max_stretch, m.sum_stretch, m.solver))
          r.measurements ))
    rs

(* Journal events that are pure simulation output.  [Span_closed] records
   carry wall-clock durations and are excluded; everything else must be
   byte-identical across pool sizes. *)
let sim_events events =
  List.filter (function J.Span_closed _ -> false | _ -> true) events

let small_configs =
  let mk ?faults () =
    W.Config.make ?faults ~sites:2 ~databases:2 ~availability:0.8 ~density:1.0
      ~horizon:6.0 ()
  in
  [ mk (); mk ~faults:(W.Config.fault_axis ~mtbf:3.0 ~mttr:0.5 ()) () ]

let run_sweep ~seed pool =
  Obs.with_level Obs.Events (fun () ->
      J.clear ();
      let rs =
        E.Tables.sweep ~seed ~instances_per_config:2 ~configs:small_configs
          ~pool ~horizon:6.0 ()
      in
      let events = sim_events (J.events ()) in
      J.clear ();
      (projection rs, E.Render.table (E.Tables.table1 rs), events))

let prop_differential =
  QCheck2.Test.make
    ~name:"sweep is bit-identical at 1, 2 and 4 domains (faults included)"
    ~count:3
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let p1, t1, j1 = run_sweep ~seed Pool.sequential in
      let p2, t2, j2 = run_sweep ~seed (Pool.create ~domains:2 ()) in
      let p4, t4, j4 = run_sweep ~seed (Pool.create ~domains:4 ()) in
      compare p1 p2 = 0 && compare p1 p4 = 0
      && String.equal t1 t2 && String.equal t1 t4
      && compare j1 j2 = 0 && compare j1 j4 = 0)

(* Resilience aggregates means over per-level sample lists; the merge
   must preserve the sequential summation order or the float means
   drift.  Render output is the user-facing byte-identity contract. *)
let test_resilience_differential () =
  let config = List.nth small_configs 1 in
  let render pool =
    E.Resilience.render
      (E.Resilience.run ~mtbf_grid:[ 4.0; 2.0 ] ~mttr:0.5 ~pool ~seed:77
         ~instances:3 config)
  in
  let seq = render Pool.sequential in
  Alcotest.(check string) "2-domain resilience table" seq
    (render (Pool.create ~domains:2 ()));
  Alcotest.(check string) "4-domain resilience table" seq
    (render (Pool.create ~domains:4 ()))

(* The federation experiment nests differently from the table sweeps: the
   outer sweep shards instances across domains while every federated run
   inside an instance (front-end dispatch, migration, per-shard
   simulations) stays on the sequential pool.  The rendered gap table and
   the JSON artifact must still be byte-identical at any domain count. *)
let test_federation_differential () =
  let config =
    W.Config.make ~sites:4 ~processors_per_site:1 ~databases:2
      ~availability:0.8 ~density:1.25 ~horizon:40.0 ()
  in
  let run pool =
    let r =
      E.Federation.run ~config ~shard_grid:[ 2; 4 ] ~pool ~seed:91 ~instances:3
        ()
    in
    (E.Federation.render r, E.Federation.to_json r)
  in
  let seq_table, seq_json = run Pool.sequential in
  let t2, j2 = run (Pool.create ~domains:2 ()) in
  let t4, j4 = run (Pool.create ~domains:4 ()) in
  Alcotest.(check string) "2-domain federation table" seq_table t2;
  Alcotest.(check string) "4-domain federation table" seq_table t4;
  Alcotest.(check string) "2-domain federation json" seq_json j2;
  Alcotest.(check string) "4-domain federation json" seq_json j4

(* ---- seed discipline --------------------------------------------------- *)

(* More workers than shards: every shard still draws from its own
   index-derived stream, so an oversubscribed pool changes nothing. *)
let test_seed_discipline () =
  let run pool =
    let rs =
      E.Runner.run_config ~pool ~seed:123 ~instances:3 (List.hd small_configs)
    in
    projection rs
  in
  let reference = run Pool.sequential in
  Alcotest.(check bool) "--jobs 1 = --jobs 8" true
    (compare reference (run (Pool.create ~domains:8 ())) = 0)

(* ---- exception containment -------------------------------------------- *)

let tiny_overrun =
  (* Second arrival past the horizon: the guard fires mid-run, after
     journal records exist. *)
  Gripps_model.Instance.make
    ~platform:(Gripps_model.Platform.single ~speed:1.0)
    ~jobs:
      [ Gripps_model.Job.make ~id:0 ~release:0.0 ~size:10.0 ~databank:0;
        Gripps_model.Job.make ~id:1 ~release:5.0 ~size:1.0 ~databank:0 ]

let test_horizon_exceeded_in_shard () =
  Obs.with_level Obs.Events (fun () ->
      J.clear ();
      let results =
        Pool.try_map (Pool.create ~domains:2 ()) ~shards:3 (fun i ->
            if i = 1 then
              ignore (Sim.run ~horizon:1.0 Gripps_sched.List_sched.swrpt tiny_overrun)
            else ignore (Sim.run ~horizon:1e9 Gripps_sched.List_sched.swrpt tiny_overrun))
      in
      (match results.(1) with
       | Error (Sim.Horizon_exceeded { journal; _ }) ->
         Alcotest.(check bool) "in-shard exception carries partial journal" true
           (match journal with J.Run_start _ :: _ -> true | _ -> false)
       | Error e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)
       | Ok () -> Alcotest.fail "expected Horizon_exceeded in shard 1");
      Alcotest.(check bool) "sibling shards unaffected" true
        (match (results.(0), results.(2)) with Ok (), Ok () -> true | _ -> false);
      (* The failing shard's partial journal still merged, between its
         siblings' journals, in shard order. *)
      let starts =
        List.length
          (List.filter
             (function J.Run_start _ -> true | _ -> false)
             (J.events ()))
      in
      Alcotest.(check int) "all three shards' journals merged" 3 starts;
      J.clear ())

let test_map_reduce_reraises_lowest_index () =
  let pool = Pool.create ~domains:2 () in
  (try
     Pool.map_reduce pool ~shards:4
       ~map:(fun i -> if i >= 2 then failwith (string_of_int i))
       ~init:() ~reduce:(fun () () -> ());
     Alcotest.fail "expected Failure"
   with Failure i ->
     Alcotest.(check string) "lowest-index shard's exception wins" "2" i);
  (* The pool is stateless: the same pool value runs the next sweep. *)
  Alcotest.(check (list int)) "pool survives a failing sweep" [ 0; 1; 2 ]
    (Sweep.run ~pool (Sweep.make ~length:3 (fun i -> i)))

let suite =
  ( "parallel",
    [ Alcotest.test_case "shard-boundary edge cases" `Quick
        (sandboxed test_edge_cases);
      Alcotest.test_case "progress in job order" `Quick
        (sandboxed test_progress_in_order);
      Alcotest.test_case "negative length rejected" `Quick
        (sandboxed test_negative_shards_rejected);
      Alcotest.test_case "counter hammer across domains" `Quick
        (sandboxed test_counter_hammer);
      QCheck_alcotest.to_alcotest prop_differential;
      Alcotest.test_case "resilience render identical across pools" `Slow
        (sandboxed test_resilience_differential);
      Alcotest.test_case "federation sweep identical across pools" `Slow
        (sandboxed test_federation_differential);
      Alcotest.test_case "seed discipline: oversubscribed pool" `Quick
        (sandboxed test_seed_discipline);
      Alcotest.test_case "horizon_exceeded contained in shard" `Quick
        (sandboxed test_horizon_exceeded_in_shard);
      Alcotest.test_case "map_reduce re-raises lowest index" `Quick
        (sandboxed test_map_reduce_reraises_lowest_index) ] )
