module Splitmix = Gripps_rng.Splitmix
module Dist = Gripps_rng.Dist

let test_determinism () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done

let test_copy_independent () =
  let a = Splitmix.create 7 in
  ignore (Splitmix.next_int64 a);
  let c = Splitmix.copy a in
  Alcotest.(check int64) "copy continues identically"
    (Splitmix.next_int64 a) (Splitmix.next_int64 c)

let test_split_differs () =
  let a = Splitmix.create 7 in
  let child = Splitmix.split a in
  let xs = List.init 10 (fun _ -> Splitmix.next_int64 a) in
  let ys = List.init 10 (fun _ -> Splitmix.next_int64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_stream_pure () =
  let a = Splitmix.create 9 in
  let witness = Splitmix.copy a in
  let s1 = Splitmix.stream a 5 and s2 = Splitmix.stream a 5 in
  for _ = 1 to 10 do
    Alcotest.(check int64) "stream is a pure function of (state, k)"
      (Splitmix.next_int64 s1) (Splitmix.next_int64 s2)
  done;
  Alcotest.(check int64) "deriving streams does not advance the parent"
    (Splitmix.next_int64 witness) (Splitmix.next_int64 a)

(* The seed discipline of parallel sweeps: streams derived by index must
   be mutually independent and independent of the base's own output
   sequence, or shards would correlate. *)
let prop_stream_independence =
  QCheck2.Test.make ~name:"indexed streams are pairwise distinct" ~count:200
    QCheck2.Gen.(triple (int_range 0 1_000_000) (int_range 0 4096) (int_range 0 4096))
    (fun (seed, j, k) ->
      let base = Splitmix.create seed in
      let take8 rng = List.init 8 (fun _ -> Splitmix.next_int64 rng) in
      let draw i = take8 (Splitmix.stream base i) in
      let base_draws = take8 (Splitmix.copy base) in
      (j = k || draw j <> draw k) && draw j <> base_draws)

let test_float_range () =
  let rng = Splitmix.create 1 in
  for _ = 1 to 1000 do
    let f = Splitmix.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_int_bounds () =
  let rng = Splitmix.create 2 in
  for _ = 1 to 1000 do
    let v = Splitmix.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.int: non-positive bound")
    (fun () -> ignore (Splitmix.int rng 0))

let test_uniform_moments () =
  let rng = Splitmix.create 3 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do sum := !sum +. Dist.uniform rng ~lo:2.0 ~hi:4.0 done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.0) < 0.02)

let test_exponential_mean () =
  let rng = Splitmix.create 4 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do sum := !sum +. Dist.exponential rng ~rate:2.0 done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1/2" true (abs_float (mean -. 0.5) < 0.01)

let test_poisson_process () =
  let rng = Splitmix.create 5 in
  let arrivals = Dist.poisson_process rng ~rate:10.0 ~horizon:100.0 in
  let sorted = List.sort Float.compare arrivals in
  Alcotest.(check bool) "sorted" true (arrivals = sorted);
  List.iter (fun t -> Alcotest.(check bool) "in horizon" true (t >= 0.0 && t < 100.0)) arrivals;
  let n = List.length arrivals in
  (* Expect ~1000 arrivals; 4 sigma ≈ 126. *)
  Alcotest.(check bool) "count near rate*horizon" true (n > 850 && n < 1150)

let test_pick_and_shuffle () =
  let rng = Splitmix.create 6 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    let v = Dist.pick rng a in
    Alcotest.(check bool) "picked member" true (Array.exists (( = ) v) a)
  done;
  let arr = Array.init 50 Fun.id in
  Dist.shuffle rng arr;
  Alcotest.(check (list int)) "shuffle is a permutation"
    (List.init 50 Fun.id)
    (List.sort Int.compare (Array.to_list arr))

let suite =
  ( "rng",
    [ Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "copy" `Quick test_copy_independent;
      Alcotest.test_case "split" `Quick test_split_differs;
      Alcotest.test_case "stream purity" `Quick test_stream_pure;
      QCheck_alcotest.to_alcotest prop_stream_independence;
      Alcotest.test_case "float range" `Quick test_float_range;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "uniform moments" `Quick test_uniform_moments;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "poisson process" `Quick test_poisson_process;
      Alcotest.test_case "pick and shuffle" `Quick test_pick_and_shuffle ] )
