#!/usr/bin/env bash
# Exit-code contract of gripps_cli (see the table at the bottom of
# bin/gripps_cli.ml):
#   0 success; 1 verification mismatch; 2 usage/configuration error;
#   3 data or guardrail error (malformed stream, corrupt checkpoint,
#     solver budget exhausted).
# Run by the dune runtest alias with the CLI binary as $1.
set -u

CLI="$1"
TMP="$(mktemp -d "${TMPDIR:-/tmp}/gripps_cli_exit.XXXXXX")"
trap 'rm -rf "$TMP"' EXIT

fails=0

expect() {
  local want="$1"; shift
  local desc="$1"; shift
  "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: expected exit $want, got $got ($*)" >&2
    fails=$((fails + 1))
  else
    echo "ok: $desc (exit $got)"
  fi
}

# Positive controls.
expect 0 "optimal on a tiny instance" \
  "$CLI" optimal --seed 1 --sites 2 --databases 2 --horizon 5
expect 0 "serve drains a small poisson stream" \
  "$CLI" serve --seed 1 --n-jobs 20 --rate 4 --max-live 4 --queue-cap 2

expect 0 "federate a tiny instance over 2 shards" \
  "$CLI" federate --shards 2 --sites 4 --databases 2 --horizon 20 --seed 3

# Guardrail: a starved solver budget exits 3.
expect 3 "optimal with an exhausted budget" \
  "$CLI" optimal --seed 1 --sites 2 --databases 2 --horizon 5 --budget-iters 1

# Guardrail: an over-tight simulation guard leaves jobs pending, which
# surfaces as Metrics.Incomplete rather than a bogus table.
expect 3 "table with an over-tight abort guard" \
  "$CLI" table 1 --instances 1 --guard 0.001

# Usage/configuration errors exit 2.
expect 2 "negative workload density" "$CLI" run --density=-1
expect 2 "unknown trace scenario" "$CLI" trace no-such-scenario
expect 2 "unknown serve rule" "$CLI" serve --scheduler BOGUS
expect 2 "unknown federate routing policy" "$CLI" federate --route bogus
expect 2 "zero federate shards" \
  "$CLI" federate --shards 0 --sites 2 --databases 2 --horizon 5
expect 2 "unknown federate local scheduler" "$CLI" federate --scheduler BOGUS
expect 2 "serve on a missing source file" \
  "$CLI" serve --source "$TMP/absent.jobs"
expect 2 "resume without a checkpoint" "$CLI" serve --resume

# Malformed data exits 3.
printf '0.0 10.0 0\nbogus line\n' > "$TMP/bad.jobs"
expect 3 "malformed source stream" "$CLI" serve --source "$TMP/bad.jobs"

# A corrupt checkpoint exits 3.
"$CLI" serve --seed 1 --n-jobs 40 --rate 4 --max-live 4 --queue-cap 2 \
  --checkpoint "$TMP/ck.bin" --checkpoint-every 3 --stop-after-events 10 \
  >/dev/null 2>&1
printf 'garbage' >> "$TMP/ck.bin"
expect 3 "resume from a corrupt checkpoint" \
  "$CLI" serve --seed 1 --n-jobs 40 --rate 4 --max-live 4 --queue-cap 2 \
  --checkpoint "$TMP/ck.bin" --checkpoint-every 3 --resume

# The kill-and-resume flow itself succeeds end to end.
rm -f "$TMP/ck.bin"
"$CLI" serve --seed 1 --n-jobs 40 --rate 4 --max-live 4 --queue-cap 2 \
  --checkpoint "$TMP/ck.bin" --checkpoint-every 3 --stop-after-events 10 \
  >/dev/null 2>&1
expect 0 "resume a killed run to drain" \
  "$CLI" serve --seed 1 --n-jobs 40 --rate 4 --max-live 4 --queue-cap 2 \
  --checkpoint "$TMP/ck.bin" --checkpoint-every 3 --resume

if [ "$fails" -ne 0 ]; then
  echo "$fails exit-code check(s) failed" >&2
  exit 1
fi
echo "all exit-code checks passed"
