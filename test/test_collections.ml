module Heap = Gripps_collections.Heap
module Vec = Gripps_collections.Vec

let test_heap_basic () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check int) "peek min" 1 (Heap.peek_exn h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "to_sorted_list non-destructive" 5 (Heap.length h)

let test_heap_exn () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "peek_exn" (Invalid_argument "Heap.peek_exn: empty heap")
    (fun () -> ignore (Heap.peek_exn h));
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_custom_order () =
  let h = Heap.of_list ~cmp:(fun a b -> Int.compare b a) [ 1; 5; 3 ] in
  Alcotest.(check int) "max-heap top" 5 (Heap.pop_exn h);
  Alcotest.(check int) "next" 3 (Heap.pop_exn h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck2.Gen.(list small_int)
    (fun l ->
      let h = Heap.of_list ~cmp:Int.compare l in
      Heap.to_sorted_list h = List.sort Int.compare l)

let test_indexed_basic () =
  let h = Heap.Indexed.create ~capacity:8 in
  Alcotest.(check bool) "empty" true (Heap.Indexed.is_empty h);
  Alcotest.(check int) "capacity" 8 (Heap.Indexed.capacity h);
  Alcotest.(check (option int)) "min empty" None (Heap.Indexed.min_elt h);
  List.iter (fun (id, k) -> Heap.Indexed.add h id k)
    [ (3, 5.0); (0, 2.0); (5, 9.0); (1, 2.0); (7, 0.5) ];
  Alcotest.(check int) "size" 5 (Heap.Indexed.size h);
  Alcotest.(check bool) "mem 5" true (Heap.Indexed.mem h 5);
  Alcotest.(check bool) "mem 4" false (Heap.Indexed.mem h 4);
  Alcotest.(check (float 0.0)) "key" 5.0 (Heap.Indexed.key h 3);
  (* equal keys break ties by ascending id: 0 before 1 *)
  Alcotest.(check (list int)) "sorted drain" [ 7; 0; 1; 3; 5 ]
    (Heap.Indexed.to_sorted_list h);
  Alcotest.(check int) "non-destructive" 5 (Heap.Indexed.size h);
  Alcotest.(check int) "pop min" 7 (Heap.Indexed.pop_exn h);
  Alcotest.(check (option int)) "next min" (Some 0) (Heap.Indexed.min_elt h)

let test_indexed_update_remove () =
  let h = Heap.Indexed.create ~capacity:4 in
  List.iter (fun (id, k) -> Heap.Indexed.add h id k)
    [ (0, 4.0); (1, 3.0); (2, 2.0); (3, 1.0) ];
  Heap.Indexed.update h 0 0.5;          (* decrease-key to the top *)
  Alcotest.(check int) "decreased to min" 0 (Heap.Indexed.min_exn h);
  Heap.Indexed.update h 0 10.0;         (* increase-key to the bottom *)
  Alcotest.(check int) "increased away" 3 (Heap.Indexed.min_exn h);
  Heap.Indexed.remove h 3;
  Alcotest.(check bool) "removed" false (Heap.Indexed.mem h 3);
  Alcotest.(check (list int)) "order after edits" [ 2; 1; 0 ]
    (Heap.Indexed.to_sorted_list h);
  Heap.Indexed.clear h;
  Alcotest.(check bool) "cleared" true (Heap.Indexed.is_empty h)

let test_indexed_errors () =
  let h = Heap.Indexed.create ~capacity:2 in
  Heap.Indexed.add h 0 1.0;
  Alcotest.check_raises "double add"
    (Invalid_argument "Heap.Indexed.add: id already present")
    (fun () -> Heap.Indexed.add h 0 2.0);
  Alcotest.check_raises "update absent"
    (Invalid_argument "Heap.Indexed.update: absent id")
    (fun () -> Heap.Indexed.update h 1 2.0);
  Alcotest.check_raises "remove absent"
    (Invalid_argument "Heap.Indexed.remove: absent id")
    (fun () -> Heap.Indexed.remove h 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Heap.Indexed.add: id out of range")
    (fun () -> Heap.Indexed.add h 2 1.0);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Heap.Indexed.create: negative capacity")
    (fun () -> ignore (Heap.Indexed.create ~capacity:(-1)))

(* The load-bearing property: drain order = ascending sort of (key, id),
   even through interleaved adds, re-keys and removes. *)
let prop_indexed_matches_sort =
  QCheck2.Test.make ~name:"indexed heap drains as (key, id) sort" ~count:300
    QCheck2.Gen.(list (pair (int_bound 31) (float_bound_inclusive 10.0)))
    (fun ops ->
      let h = Heap.Indexed.create ~capacity:32 in
      let model = Hashtbl.create 32 in
      List.iteri
        (fun i (id, k) ->
          if Heap.Indexed.mem h id then
            if i mod 3 = 0 then (Heap.Indexed.remove h id; Hashtbl.remove model id)
            else (Heap.Indexed.update h id k; Hashtbl.replace model id k)
          else (Heap.Indexed.add h id k; Hashtbl.replace model id k))
        ops;
      let expect =
        Hashtbl.fold (fun id k acc -> (k, id) :: acc) model []
        |> List.sort compare |> List.map snd
      in
      Heap.Indexed.to_sorted_list h = expect)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do Vec.push v (i * i) done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 0;
  Alcotest.(check int) "set" 0 (Vec.get v 7);
  Alcotest.(check (option int)) "pop" (Some (99 * 99)) (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 99))

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 4 (List.length !acc);
  Vec.clear v;
  Alcotest.(check bool) "clear" true (Vec.is_empty v)

let suite =
  ( "collections",
    [ Alcotest.test_case "heap basic" `Quick test_heap_basic;
      Alcotest.test_case "heap exceptions" `Quick test_heap_exn;
      Alcotest.test_case "heap custom order" `Quick test_heap_custom_order;
      QCheck_alcotest.to_alcotest prop_heap_sorts;
      Alcotest.test_case "indexed heap basic" `Quick test_indexed_basic;
      Alcotest.test_case "indexed heap update/remove" `Quick
        test_indexed_update_remove;
      Alcotest.test_case "indexed heap errors" `Quick test_indexed_errors;
      QCheck_alcotest.to_alcotest prop_indexed_matches_sort;
      Alcotest.test_case "vec basic" `Quick test_vec_basic;
      Alcotest.test_case "vec iter/fold" `Quick test_vec_iter_fold ] )
