let () =
  Alcotest.run "gripps"
    [ Test_bigint.suite; Test_rat.suite; Test_collections.suite; Test_rng.suite;
      Test_lp.suite; Test_flow.suite; Test_model.suite; Test_objectives.suite;
      Test_engine.suite;
      Test_faults.suite; Test_sched.suite; Test_flat.suite; Test_core.suite; Test_workload.suite;
      Test_experiments.suite; Test_snapshot.suite; Test_obs.suite;
      Test_parallel.suite; Test_federation.suite; Test_service.suite;
      Test_unrelated.suite ]
