(* Flow solvers: classic instances with known values, min-cut validity,
   exact rational flows, min-cost flow vs LP cross-check, and random
   bipartite transportation instances compared against the simplex. *)

module Q = Gripps_numeric.Rat
module FMax = Gripps_flow.Maxflow.Make (Gripps_numeric.Field.Float)
module QMax = Gripps_flow.Maxflow.Make (Gripps_numeric.Rat)
module FMcmf = Gripps_flow.Mcmf.Make (Gripps_numeric.Field.Float)
module QMcmf = Gripps_flow.Mcmf.Make (Gripps_numeric.Rat)
module FS = Gripps_lp.Simplex.Make (Gripps_numeric.Field.Float)

let checkf msg expected actual = Alcotest.(check (float 1e-7)) msg expected actual

let test_maxflow_classic () =
  (* CLRS figure: max flow 23. *)
  let g = FMax.create ~n:6 in
  let s = 0 and t = 5 in
  let edges =
    [ (0, 1, 16.0); (0, 2, 13.0); (1, 2, 10.0); (2, 1, 4.0); (1, 3, 12.0);
      (3, 2, 9.0); (2, 4, 14.0); (4, 3, 7.0); (3, 5, 20.0); (4, 5, 4.0) ]
  in
  List.iter (fun (u, v, c) -> ignore (FMax.add_edge g ~src:u ~dst:v ~cap:c)) edges;
  checkf "CLRS max flow" 23.0 (FMax.max_flow g ~source:s ~sink:t)

let test_maxflow_disconnected () =
  let g = FMax.create ~n:3 in
  ignore (FMax.add_edge g ~src:0 ~dst:1 ~cap:5.0);
  checkf "no path" 0.0 (FMax.max_flow g ~source:0 ~sink:2)

let test_maxflow_flow_conservation () =
  let g = FMax.create ~n:4 in
  let e1 = FMax.add_edge g ~src:0 ~dst:1 ~cap:3.0 in
  let e2 = FMax.add_edge g ~src:0 ~dst:2 ~cap:2.0 in
  let e3 = FMax.add_edge g ~src:1 ~dst:3 ~cap:2.0 in
  let e4 = FMax.add_edge g ~src:2 ~dst:3 ~cap:3.0 in
  let f = FMax.max_flow g ~source:0 ~sink:3 in
  checkf "value" 4.0 f;
  checkf "conservation at 1" (FMax.flow_on g e1) (FMax.flow_on g e3);
  checkf "conservation at 2" (FMax.flow_on g e2) (FMax.flow_on g e4);
  checkf "out of source" f (FMax.flow_on g e1 +. FMax.flow_on g e2)

let test_mincut () =
  let g = FMax.create ~n:4 in
  ignore (FMax.add_edge g ~src:0 ~dst:1 ~cap:1.0);
  ignore (FMax.add_edge g ~src:1 ~dst:2 ~cap:10.0);
  ignore (FMax.add_edge g ~src:2 ~dst:3 ~cap:5.0);
  let f = FMax.max_flow g ~source:0 ~sink:3 in
  checkf "flow" 1.0 f;
  let cut = FMax.min_cut g ~source:0 in
  Alcotest.(check bool) "source side" true cut.(0);
  Alcotest.(check bool) "bottleneck separates" false cut.(1);
  Alcotest.(check bool) "sink side" false cut.(3)

let test_maxflow_exact_rational () =
  let q = Q.of_ints in
  let g = QMax.create ~n:3 in
  ignore (QMax.add_edge g ~src:0 ~dst:1 ~cap:(q 1 3));
  ignore (QMax.add_edge g ~src:1 ~dst:2 ~cap:(q 1 7));
  let f = QMax.max_flow g ~source:0 ~sink:2 in
  Alcotest.(check string) "exact bottleneck" "1/7" (Q.to_string f)

let test_maxflow_recompute_after_update () =
  let g = FMax.create ~n:2 in
  let e = FMax.add_edge g ~src:0 ~dst:1 ~cap:1.0 in
  checkf "first run" 1.0 (FMax.max_flow g ~source:0 ~sink:1);
  FMax.set_capacity g e 5.0;
  checkf "after update" 5.0 (FMax.max_flow g ~source:0 ~sink:1);
  checkf "idempotent rerun" 5.0 (FMax.max_flow g ~source:0 ~sink:1)

let test_mcmf_prefers_cheap_path () =
  (* Two parallel 2-hop paths; cheap one has capacity 1, flow 2 required. *)
  let g = FMcmf.create ~n:4 in
  ignore (FMcmf.add_edge g ~src:0 ~dst:1 ~cap:1.0 ~cost:1.0);
  ignore (FMcmf.add_edge g ~src:0 ~dst:2 ~cap:2.0 ~cost:5.0);
  ignore (FMcmf.add_edge g ~src:1 ~dst:3 ~cap:2.0 ~cost:0.0);
  ignore (FMcmf.add_edge g ~src:2 ~dst:3 ~cap:2.0 ~cost:0.0);
  let f, c = FMcmf.min_cost_max_flow g ~source:0 ~sink:3 in
  checkf "flow" 3.0 f;
  checkf "cost" 11.0 c

let test_mcmf_residual_rerouting () =
  (* Classic instance where the second augmentation must use a residual
     (negative reduced cost) arc. *)
  let g = FMcmf.create ~n:4 in
  ignore (FMcmf.add_edge g ~src:0 ~dst:1 ~cap:1.0 ~cost:1.0);
  ignore (FMcmf.add_edge g ~src:0 ~dst:2 ~cap:1.0 ~cost:10.0);
  ignore (FMcmf.add_edge g ~src:1 ~dst:2 ~cap:1.0 ~cost:1.0);
  ignore (FMcmf.add_edge g ~src:1 ~dst:3 ~cap:1.0 ~cost:10.0);
  ignore (FMcmf.add_edge g ~src:2 ~dst:3 ~cap:1.0 ~cost:1.0);
  let f, c = FMcmf.min_cost_max_flow g ~source:0 ~sink:3 in
  checkf "flow" 2.0 f;
  (* 0-1-2-3 (cost 3) then 0-2-...: only 0-2 then 2-3 is saturated, so
     0-2 (10), residual 2-1 (-1), 1-3 (10) -> total 3 + 19 = 22. *)
  checkf "cost" 22.0 c

let test_mcmf_exact_rational () =
  let q = Q.of_ints in
  let g = QMcmf.create ~n:3 in
  ignore (QMcmf.add_edge g ~src:0 ~dst:1 ~cap:(q 2 3) ~cost:(q 1 2));
  ignore (QMcmf.add_edge g ~src:1 ~dst:2 ~cap:(q 2 3) ~cost:(q 1 5));
  let f, c = QMcmf.min_cost_max_flow g ~source:0 ~sink:2 in
  Alcotest.(check string) "flow exact" "2/3" (Q.to_string f);
  (* 2/3 * (1/2 + 1/5) = 2/3 * 7/10 = 7/15. *)
  Alcotest.(check string) "cost exact" "7/15" (Q.to_string c)

(* Random bipartite transportation problems: compare max-flow value and
   min-cost value against the simplex LP formulation. *)
let transport_gen =
  QCheck2.Gen.(
    let* nsrc = int_range 1 3 in
    let* ndst = int_range 1 3 in
    let cap = map (fun i -> float_of_int i /. 2.0) (int_range 0 8) in
    let cost = map (fun i -> float_of_int i /. 2.0) (int_range 0 6) in
    let* supplies = list_size (return nsrc) cap in
    let* caps = list_size (return (nsrc * ndst)) cap in
    let* costs = list_size (return (nsrc * ndst)) cost in
    return (nsrc, ndst, supplies, caps, costs))

(* LP encoding: variables f_uv >= 0; maximize sum f_uv subject to
   sum_v f_uv <= supply_u and f_uv <= cap_uv. *)
let lp_of_transport (nsrc, ndst, supplies, caps, _costs) =
  let nv = nsrc * ndst in
  let var u v = (u * ndst) + v in
  let supply_rows =
    List.mapi
      (fun u s ->
        let row = Array.make nv 0.0 in
        for v = 0 to ndst - 1 do row.(var u v) <- 1.0 done;
        { FS.coeffs = row; relation = FS.Le; rhs = s })
      supplies
  in
  let cap_rows =
    List.mapi
      (fun i c ->
        let row = Array.make nv 0.0 in
        row.(i) <- 1.0;
        { FS.coeffs = row; relation = FS.Le; rhs = c })
      caps
  in
  { FS.num_vars = nv; maximize = true; objective = Array.make nv 1.0;
    constraints = supply_rows @ cap_rows }

let graph_of_transport (nsrc, ndst, supplies, caps, costs) =
  (* 0 = source, 1..nsrc = sources, nsrc+1..nsrc+ndst = sinks-1, last = sink *)
  let n = nsrc + ndst + 2 in
  let g = FMcmf.create ~n in
  List.iteri
    (fun u s -> ignore (FMcmf.add_edge g ~src:0 ~dst:(1 + u) ~cap:s ~cost:0.0))
    supplies;
  List.iteri
    (fun i c ->
      let u = i / ndst and v = i mod ndst in
      ignore
        (FMcmf.add_edge g ~src:(1 + u) ~dst:(1 + nsrc + v) ~cap:c
           ~cost:(List.nth costs i)))
    caps;
  for v = 0 to ndst - 1 do
    ignore
      (FMcmf.add_edge g ~src:(1 + nsrc + v) ~dst:(n - 1) ~cap:infinity ~cost:0.0)
  done;
  g

let prop_flow_matches_lp =
  QCheck2.Test.make ~name:"transportation max-flow matches simplex" ~count:120
    transport_gen
    (fun spec ->
      let nsrc, ndst, _, _, _ = spec in
      let g = graph_of_transport spec in
      let sink = nsrc + ndst + 1 in
      let flow, _cost = FMcmf.min_cost_max_flow g ~source:0 ~sink in
      match FS.solve (lp_of_transport spec) with
      | FS.Optimal { objective; _ } -> abs_float (flow -. objective) < 1e-6
      | FS.Infeasible | FS.Unbounded -> false)

let suite =
  ( "flow",
    [ Alcotest.test_case "maxflow classic CLRS" `Quick test_maxflow_classic;
      Alcotest.test_case "maxflow disconnected" `Quick test_maxflow_disconnected;
      Alcotest.test_case "flow conservation" `Quick test_maxflow_flow_conservation;
      Alcotest.test_case "min cut" `Quick test_mincut;
      Alcotest.test_case "exact rational maxflow" `Quick test_maxflow_exact_rational;
      Alcotest.test_case "capacity update" `Quick test_maxflow_recompute_after_update;
      Alcotest.test_case "mcmf cheap path first" `Quick test_mcmf_prefers_cheap_path;
      Alcotest.test_case "mcmf residual rerouting" `Quick test_mcmf_residual_rerouting;
      Alcotest.test_case "mcmf exact rational" `Quick test_mcmf_exact_rational;
      QCheck_alcotest.to_alcotest prop_flow_matches_lp ] )

(* Min-cost optimality cross-check: balanced transportation problems where
   the LP gives the reference optimum. *)
let balanced_gen =
  QCheck2.Gen.(
    let* nsrc = int_range 1 3 in
    let* ndst = int_range 1 3 in
    let* supplies = list_size (return nsrc) (int_range 1 6) in
    let* split = list_size (return (List.fold_left ( + ) 0 supplies)) (int_range 0 (ndst - 1)) in
    let* costs = list_size (return (nsrc * ndst)) (int_range 0 9) in
    return (nsrc, ndst, supplies, split, costs))

let prop_mcmf_cost_matches_lp =
  QCheck2.Test.make ~name:"min-cost flow cost matches LP optimum" ~count:100
    balanced_gen
    (fun (nsrc, ndst, supplies, split, costs) ->
      (* Demands: distribute each unit of supply to a destination. *)
      let demands = Array.make ndst 0 in
      List.iter (fun v -> demands.(v) <- demands.(v) + 1) split;
      let total = List.fold_left ( + ) 0 supplies in
      let cost u v = float_of_int (List.nth costs ((u * ndst) + v)) in
      (* Flow network. *)
      let g = FMcmf.create ~n:(nsrc + ndst + 2) in
      List.iteri
        (fun u s ->
          ignore
            (FMcmf.add_edge g ~src:0 ~dst:(1 + u) ~cap:(float_of_int s) ~cost:0.0))
        supplies;
      for u = 0 to nsrc - 1 do
        for v = 0 to ndst - 1 do
          ignore
            (FMcmf.add_edge g ~src:(1 + u) ~dst:(1 + nsrc + v)
               ~cap:(float_of_int total) ~cost:(cost u v))
        done
      done;
      for v = 0 to ndst - 1 do
        ignore
          (FMcmf.add_edge g ~src:(1 + nsrc + v) ~dst:(nsrc + ndst + 1)
             ~cap:(float_of_int demands.(v)) ~cost:0.0)
      done;
      let flow, mc = FMcmf.min_cost_max_flow g ~source:0 ~sink:(nsrc + ndst + 1) in
      (* Reference LP: min sum c x st row sums = supply, column sums = demand. *)
      let nv = nsrc * ndst in
      let var u v = (u * ndst) + v in
      let rows =
        List.mapi
          (fun u s ->
            let r = Array.make nv 0.0 in
            for v = 0 to ndst - 1 do r.(var u v) <- 1.0 done;
            { FS.coeffs = r; relation = FS.Le; rhs = float_of_int s })
          supplies
        @ List.init ndst (fun v ->
              let r = Array.make nv 0.0 in
              for u = 0 to nsrc - 1 do r.(var u v) <- 1.0 done;
              { FS.coeffs = r; relation = FS.Eq; rhs = float_of_int demands.(v) })
      in
      let objective = Array.init nv (fun i -> -.cost (i / ndst) (i mod ndst)) in
      match FS.solve { FS.num_vars = nv; maximize = true; objective; constraints = rows } with
      | FS.Optimal { objective = neg_cost; _ } ->
        abs_float (flow -. float_of_int total) < 1e-6
        && abs_float (mc +. neg_cost) < 1e-6
      | FS.Infeasible | FS.Unbounded -> false)

(* ---- residual-twin invariant and argument validation ------------------ *)

let test_residual_twin_invariant () =
  let q = Q.of_ints in
  let g = QMax.create ~n:4 in
  let e1 = QMax.add_edge g ~src:0 ~dst:1 ~cap:(q 3 2) in
  let e2 = QMax.add_edge g ~src:1 ~dst:3 ~cap:(q 1 1) in
  (* Handles are the even slots; the twin of e lives at e lxor 1. *)
  Alcotest.(check int) "first handle" 0 e1;
  Alcotest.(check int) "second handle" 2 e2;
  let f = QMax.max_flow g ~source:0 ~sink:3 in
  Alcotest.(check string) "value" "1" (Q.to_string f);
  (* flow_on reads the twin's residual capacity: both views must agree. *)
  List.iter
    (fun e ->
      Alcotest.(check string)
        (Printf.sprintf "cap split of edge %d" e)
        (Q.to_string (QMax.capacity_on g e))
        (Q.to_string (Q.add (QMax.flow_on g e) (Q.sub (QMax.capacity_on g e) (QMax.flow_on g e)))))
    [ e1; e2 ];
  Alcotest.(check string) "flow on saturated edge" "1" (Q.to_string (QMax.flow_on g e2))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_invalid msg fragment f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  | exception Invalid_argument m ->
    if not (contains m fragment) then
      Alcotest.failf "%s: message %S does not mention %S" msg m fragment

let test_maxflow_argument_errors () =
  let g = FMax.create ~n:3 in
  let e = FMax.add_edge g ~src:0 ~dst:1 ~cap:1.0 in
  check_invalid "src out of range" "src vertex 7 out of range [0, 3)" (fun () ->
      FMax.add_edge g ~src:7 ~dst:1 ~cap:1.0);
  check_invalid "negative src" "src vertex -1 out of range [0, 3)" (fun () ->
      FMax.add_edge g ~src:(-1) ~dst:1 ~cap:1.0);
  check_invalid "dst out of range" "dst vertex 3 out of range [0, 3)" (fun () ->
      FMax.add_edge g ~src:0 ~dst:3 ~cap:1.0);
  check_invalid "negative capacity" "negative capacity" (fun () ->
      FMax.add_edge g ~src:0 ~dst:1 ~cap:(-1.0));
  check_invalid "twin rejected" "residual twin, not an edge handle" (fun () ->
      FMax.set_capacity g (e + 1) 2.0);
  check_invalid "twin rejected (update)" "residual twin, not an edge handle"
    (fun () -> FMax.update_capacity g ~source:0 ~sink:2 (e + 1) 2.0);
  check_invalid "handle out of range" "edge handle 8 out of range [0, 2)"
    (fun () -> FMax.set_capacity g 8 2.0);
  check_invalid "negative handle" "edge handle -2 out of range" (fun () ->
      FMax.set_capacity g (-2) 2.0)

(* ---- warm-started max-flow vs cold recomputation ----------------------

   Random small graphs, random sequences of capacity updates.  After each
   update the warm graph resumes from its repaired residual state; a
   freshly built graph with the same capacities gives the reference.
   Values must agree exactly (rational arithmetic). *)

type update_script = {
  us_n : int;
  us_edges : (int * int * Q.t) list;  (* src, dst, initial cap *)
  us_updates : (int * Q.t) list;      (* edge index in us_edges, new cap *)
}

let small_cap_gen =
  QCheck2.Gen.(
    let* n = int_range 0 12 in
    let* d = int_range 1 4 in
    return (Q.of_ints n d))

let script_gen =
  QCheck2.Gen.(
    let* n = int_range 3 6 in
    let* nedges = int_range 2 10 in
    let edge_gen =
      let* u = int_range 0 (n - 1) in
      let* v = int_range 0 (n - 1) in
      let* c = small_cap_gen in
      return (u, (v + 1) mod n, c)
    in
    let* edges0 = list_size (return nedges) edge_gen in
    let edges = List.filter (fun (u, v, _) -> u <> v) edges0 in
    let nkept = List.length edges in
    let* updates =
      if nkept = 0 then return []
      else
        list_size (int_range 1 8)
          (let* i = int_range 0 (nkept - 1) in
           let* c = small_cap_gen in
           return (i, c))
    in
    return { us_n = n; us_edges = edges; us_updates = updates })

let build_graph n edges =
  let g = QMax.create ~n in
  let handles = List.map (fun (u, v, c) -> QMax.add_edge g ~src:u ~dst:v ~cap:c) edges in
  (g, Array.of_list handles)

let prop_warm_equals_cold =
  QCheck2.Test.make ~name:"warm-started max-flow equals cold recomputation"
    ~count:300 script_gen (fun sc ->
      let source = 0 and sink = sc.us_n - 1 in
      let caps = Array.of_list (List.map (fun (_, _, c) -> c) sc.us_edges) in
      let warm_g, warm_h = build_graph sc.us_n sc.us_edges in
      let f0 = QMax.max_flow warm_g ~source ~sink in
      let cold () =
        let g, _ = build_graph sc.us_n
            (List.mapi (fun i (u, v, _) -> (u, v, caps.(i))) sc.us_edges)
        in
        QMax.max_flow g ~source ~sink
      in
      Q.equal f0 (cold ())
      && List.for_all
           (fun (i, c) ->
             caps.(i) <- c;
             QMax.update_capacity warm_g ~source ~sink warm_h.(i) c;
             let fw = QMax.max_flow ~warm:true warm_g ~source ~sink in
             Q.equal fw (cold ())
             && Q.equal fw (QMax.flow_value warm_g ~source))
           sc.us_updates)

let test_warm_update_decrease_reroutes () =
  (* Two disjoint 2-hop paths; shrinking the used one mid-flight must
     reroute through the other and keep the flow maximal after a warm
     resume. *)
  let q = Q.of_ints in
  let g = QMax.create ~n:4 in
  let top = QMax.add_edge g ~src:0 ~dst:1 ~cap:(q 2 1) in
  ignore (QMax.add_edge g ~src:1 ~dst:3 ~cap:(q 2 1));
  ignore (QMax.add_edge g ~src:0 ~dst:2 ~cap:(q 2 1));
  ignore (QMax.add_edge g ~src:2 ~dst:3 ~cap:(q 2 1));
  Alcotest.(check string) "cold value" "4"
    (Q.to_string (QMax.max_flow g ~source:0 ~sink:3));
  QMax.update_capacity g ~source:0 ~sink:3 top (q 1 2);
  Alcotest.(check string) "warm value after shrink" "5/2"
    (Q.to_string (QMax.max_flow ~warm:true g ~source:0 ~sink:3));
  Alcotest.(check string) "clamped edge respects new cap" "1/2"
    (Q.to_string (QMax.flow_on g top));
  let before = QMax.augmentations g in
  Alcotest.(check string) "idempotent warm rerun" "5/2"
    (Q.to_string (QMax.max_flow ~warm:true g ~source:0 ~sink:3));
  Alcotest.(check int) "saturated warm rerun augments nothing" before
    (QMax.augmentations g)

let suite =
  ( fst suite,
    snd suite
    @ [ QCheck_alcotest.to_alcotest prop_mcmf_cost_matches_lp;
        Alcotest.test_case "residual twin invariant" `Quick
          test_residual_twin_invariant;
        Alcotest.test_case "argument validation messages" `Quick
          test_maxflow_argument_errors;
        Alcotest.test_case "warm update reroutes a shrunk edge" `Quick
          test_warm_update_decrease_reroutes;
        QCheck_alcotest.to_alcotest prop_warm_equals_cold ] )
