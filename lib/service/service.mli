(** Crash-safe streaming scheduler daemon.

    The batch engine ({!Gripps_engine.Sim}) holds every job of an
    instance in dense arrays and drains them to completion.  This module
    is its long-running sibling: jobs arrive from a {!Gripps_workload.Source}
    stream of unknown length, live in a bounded pool of {e slots}, and
    leave the daemon's memory the moment they complete — resident state
    is O(live jobs + pending queue), never O(jobs seen).

    {b Admission.}  At most [max_live] jobs are scheduled at once; up to
    [queue_cap] more wait in a FIFO pending queue.  When both are full
    the {!policy} decides: [Drop] discards the newcomer, [Block] stops
    consuming the source until capacity frees (an open-loop source keeps
    its release dates, so blocked jobs pay the wait in flow time), and
    [Shed] evicts the largest pending job to make room.

    {b Scheduling.}  The five heap-backed priority rules of
    {!Gripps_sched.List_sched}, re-implemented over the slot pool: one
    indexed min-heap per databank, greedy machine grab in ascending
    (key, slot) order.  The fluid advance (rates, crash-loss, sliver
    completion) mirrors the batch engine; the one necessary deviation is
    the sliver threshold — the batch engine scales it by the instance's
    total work, which a stream cannot know, so the daemon uses
    [1e-9 × job size].

    {b Crash safety.}  With [checkpoint] set, the daemon atomically
    (temp + fsync + rename, FNV-64 sealed) persists its complete state
    every [checkpoint_every] events: clock, live slots, free-slot stack,
    pending queue, current plan, metric accumulators, remaining fault
    edges, source cursor, and journal-segment offsets.  With
    [journal_dir] set, the in-memory event journal is rotated to on-disk
    JSONL segments at each checkpoint, so journal memory is bounded too.
    Restoring from the checkpoint (and truncating the journal segments
    to the recorded offsets) yields a daemon whose every subsequent
    event, journal record and metric is {e bit-identical} to the
    uninterrupted run — the property the kill-and-resume tests enforce.
    Everything the daemon does is a deterministic function of its
    checkpointed state; the only wall-clock observables (replan latency
    percentiles, watchdog deadline misses) are excluded from checkpoints
    and identity guarantees. *)

type rule = Fcfs | Spt | Srpt | Swpt | Swrpt

val rule_name : rule -> string
val rule_of_string : string -> rule option
(** Case-insensitive; [None] for unknown names. *)

type policy = Drop | Block | Shed

val policy_name : policy -> string
val policy_of_string : string -> policy option

type config = {
  platform : Gripps_model.Platform.t;
  rule : rule;
  policy : policy;
  max_live : int;       (** slot-pool capacity (≥ 1) *)
  queue_cap : int;      (** pending-queue capacity (≥ 0) *)
  faults : Gripps_engine.Fault.trace;
  loss : Gripps_engine.Fault.loss;
  horizon : float option;
      (** stop (outcome {!Horizon_reached}) before advancing past this
          date; a resumed daemon given a larger horizon continues *)
  checkpoint : string option;   (** checkpoint file path *)
  checkpoint_every : int;       (** events between checkpoints (≥ 1) *)
  journal_dir : string option;  (** segment directory; forces journaling *)
  seg_limit : int;              (** max records per journal segment *)
  source_desc : string;         (** fingerprinted source description *)
  replan_deadline : float option;
      (** watchdog: replans slower than this (wall-clock seconds) count
          as deadline misses — observability only, never control flow *)
}

val config :
  platform:Gripps_model.Platform.t ->
  ?rule:rule ->
  ?policy:policy ->
  ?max_live:int ->
  ?queue_cap:int ->
  ?faults:Gripps_engine.Fault.trace ->
  ?loss:Gripps_engine.Fault.loss ->
  ?horizon:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?journal_dir:string ->
  ?seg_limit:int ->
  ?source_desc:string ->
  ?replan_deadline:float ->
  unit ->
  config
(** Defaults: SWRPT, Drop, [max_live] 4096, [queue_cap] 1024, no
    faults, Crash loss, no horizon, no checkpointing, [checkpoint_every]
    4096, [seg_limit] 65536.
    @raise Invalid_argument on non-positive [max_live],
    [checkpoint_every] or [seg_limit], a negative [queue_cap], or a
    fault edge naming an unknown machine. *)

val fingerprint : config -> string
(** FNV-64 digest of everything that must match between the run that
    wrote a checkpoint and the run restoring it: platform, rule, policy,
    capacities, loss semantics, fault trace, segment limit and source
    description.  The horizon and checkpoint cadence are excluded — a
    resumed daemon may extend the horizon or change the cadence. *)

type outcome =
  | Drained          (** source exhausted and every admitted job done *)
  | Horizon_reached  (** next event lies past [config.horizon] *)
  | Killed           (** simulated kill: [stop_after_events] reached *)

type metrics = {
  completed : int;
  sum_stretch : float;
  max_stretch : float;
  sum_flow : float;
  max_flow : float;
  makespan : float;
}

type report = {
  outcome : outcome;
  metrics : metrics;
  admitted : int;       (** jobs that entered the slot pool *)
  enqueued : int;       (** jobs that waited in the pending queue *)
  dropped : int;
  shed : int;
  peak_live : int;
  peak_queue : int;
  events : int;
  replans : int;
  checkpoints : int;
  deadline_misses : int;
  lost_work : float;    (** work destroyed by crash-loss faults *)
  final_time : float;
  source_cursor : int;  (** items consumed from the source *)
  replan_p99_s : float;
      (** p99 replan latency (wall clock) since this process started or
          resumed; 0 when no replan ran.  Not checkpointed. *)
}

exception Stalled of { time : float; live : int; queued : int }
(** No completion, arrival or fault can ever fire again, yet jobs remain
    (e.g. a databank whose every replica is down forever). *)

val run : ?stop_after_events:int -> config -> Gripps_workload.Source.t -> report
(** Fresh daemon over the source.  [stop_after_events] simulates a
    SIGKILL: once the cumulative event count reaches it, the daemon
    returns {!Killed} {e without} flushing or checkpointing — exactly
    the state a real kill leaves on disk.  On {!Drained} and
    {!Horizon_reached} the journal is flushed and a final checkpoint is
    written.  A fresh run clears any stale journal segments in
    [journal_dir] (created if missing).
    @raise Failure on a malformed source stream or a job whose databank
    has no replica; @raise Stalled as documented. *)

val resume :
  ?stop_after_events:int ->
  config ->
  (cursor:int -> clock:float -> Gripps_workload.Source.t) ->
  report
(** Restore from [config.checkpoint] and continue.  The callback
    re-opens the source at the checkpointed position ([cursor] items
    consumed, [clock] the release of the last one) — e.g.
    [Source.of_file ~skip:cursor path] or [Source.poisson ~cursor
    ~clock ...].  Journal segments are truncated to the checkpointed
    offsets first, discarding any events the killed run spilled past
    its last checkpoint.
    @raise Invalid_argument when [config.checkpoint] is [None];
    @raise Failure on a missing, torn, corrupt or mismatched
    (fingerprint) checkpoint. *)

val segment_files : dir:string -> string list
(** The journal segment files under [dir], in order. *)

val read_journal : dir:string -> Gripps_obs.Obs.Journal.event list
(** Strict concatenated read of every segment ({!segment_files}).
    @raise Failure on a malformed or torn segment. *)
