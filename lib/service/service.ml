open Gripps_model
module Fault = Gripps_engine.Fault
module Pb = Gripps_engine.Sim.Plan_buf
module Source = Gripps_workload.Source
module Obs = Gripps_obs.Obs
module J = Obs.Journal
module Fsio = Gripps_obs.Fsio
module Vec = Gripps_collections.Vec
module Heap = Gripps_collections.Heap

(* ---- configuration ----------------------------------------------------- *)

type rule = Fcfs | Spt | Srpt | Swpt | Swrpt

let rule_name = function
  | Fcfs -> "FCFS"
  | Spt -> "SPT"
  | Srpt -> "SRPT"
  | Swpt -> "SWPT"
  | Swrpt -> "SWRPT"

let rule_of_string s =
  match String.uppercase_ascii s with
  | "FCFS" -> Some Fcfs
  | "SPT" -> Some Spt
  | "SRPT" -> Some Srpt
  | "SWPT" -> Some Swpt
  | "SWRPT" -> Some Swrpt
  | _ -> None

(* Static rules never re-key a released job (mirrors List_sched). *)
let rule_static = function Fcfs | Spt | Swpt -> true | Srpt | Swrpt -> false

type policy = Drop | Block | Shed

let policy_name = function Drop -> "drop" | Block -> "block" | Shed -> "shed"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "drop" -> Some Drop
  | "block" -> Some Block
  | "shed" -> Some Shed
  | _ -> None

type config = {
  platform : Platform.t;
  rule : rule;
  policy : policy;
  max_live : int;
  queue_cap : int;
  faults : Fault.trace;
  loss : Fault.loss;
  horizon : float option;
  checkpoint : string option;
  checkpoint_every : int;
  journal_dir : string option;
  seg_limit : int;
  source_desc : string;
  replan_deadline : float option;
}

let config ~platform ?(rule = Swrpt) ?(policy = Drop) ?(max_live = 4096)
    ?(queue_cap = 1024) ?(faults = []) ?(loss = Fault.Crash) ?horizon
    ?checkpoint ?(checkpoint_every = 4096) ?journal_dir ?(seg_limit = 65536)
    ?(source_desc = "") ?replan_deadline () =
  if max_live < 1 then invalid_arg "Service.config: max_live must be positive";
  if queue_cap < 0 then invalid_arg "Service.config: negative queue_cap";
  if checkpoint_every < 1 then
    invalid_arg "Service.config: checkpoint_every must be positive";
  if seg_limit < 1 then invalid_arg "Service.config: seg_limit must be positive";
  let nm = Platform.num_machines platform in
  List.iter
    (fun (e : Fault.edge) ->
      if e.machine >= nm then
        invalid_arg "Service.config: fault trace references unknown machine")
    faults;
  { platform; rule; policy; max_live; queue_cap;
    faults = Fault.normalize faults; loss; horizon; checkpoint;
    checkpoint_every; journal_dir; seg_limit; source_desc; replan_deadline }

let fingerprint cfg =
  let b = Buffer.create 256 in
  let nm = Platform.num_machines cfg.platform in
  (* The horizon and the checkpoint cadence are deliberately absent: a
     resumed daemon may push the horizon further or checkpoint at a
     different rhythm without invalidating the state it restores. *)
  Buffer.add_string b
    (Printf.sprintf "v1 %s %s live=%d cap=%d loss=%s seglim=%d src=%s m=%d d=%d"
       (rule_name cfg.rule) (policy_name cfg.policy) cfg.max_live cfg.queue_cap
       (match cfg.loss with Fault.Crash -> "crash" | Fault.Pause -> "pause")
       cfg.seg_limit cfg.source_desc nm
       (Platform.num_databanks cfg.platform));
  for m = 0 to nm - 1 do
    let mc = Platform.machine cfg.platform m in
    Buffer.add_string b (Printf.sprintf " %.17g:" mc.Machine.speed);
    Array.iter (fun h -> Buffer.add_char b (if h then '1' else '0')) mc.Machine.databanks
  done;
  List.iter
    (fun (e : Fault.edge) ->
      Buffer.add_string b
        (Printf.sprintf " f%.17g/%d/%b" e.Fault.time e.Fault.machine e.Fault.up))
    cfg.faults;
  Fsio.fnv64 (Buffer.contents b)

(* ---- outcomes and reports ---------------------------------------------- *)

type outcome = Drained | Horizon_reached | Killed

type metrics = {
  completed : int;
  sum_stretch : float;
  max_stretch : float;
  sum_flow : float;
  max_flow : float;
  makespan : float;
}

type report = {
  outcome : outcome;
  metrics : metrics;
  admitted : int;
  enqueued : int;
  dropped : int;
  shed : int;
  peak_live : int;
  peak_queue : int;
  events : int;
  replans : int;
  checkpoints : int;
  deadline_misses : int;
  lost_work : float;
  final_time : float;
  source_cursor : int;
  replan_p99_s : float;
}

exception Stalled of { time : float; live : int; queued : int }

let c_events = Obs.Counter.make "serve.events"
let c_replans = Obs.Counter.make "serve.replans"
let c_segments = Obs.Counter.make "serve.segments"
let c_admitted = Obs.Counter.make "serve.admitted"
let c_enqueued = Obs.Counter.make "serve.enqueued"
let c_dropped = Obs.Counter.make "serve.dropped"
let c_shed = Obs.Counter.make "serve.shed"
let c_checkpoints = Obs.Counter.make "serve.checkpoints"

(* ---- daemon state ------------------------------------------------------ *)

type qitem = { q_ext : int; q_release : float; q_size : float; q_db : int }

(* Replan latency histogram: 16 log-spaced bins per decade over
   [1e-8 s, 1 s), plus an overflow bin — fixed memory, any run length. *)
let lat_bins = 129

let lat_bin dur =
  if dur <= 1e-8 then 0
  else
    let i = int_of_float (16.0 *. (log10 dur +. 8.0)) in
    if i < 0 then 0 else if i >= lat_bins then lat_bins - 1 else i

let lat_upper i = 10.0 ** ((float_of_int (i + 1) /. 16.0) -. 8.0)

type daemon = {
  cfg : config;
  src : Source.t;
  nm : int;
  nd : int;
  speeds : float array;
  hosts : int array array;            (* machines per databank *)
  dbs_of_machine : int array array;
  up : bool array;
  mutable trace : Fault.edge list;
  (* slot pool: the only per-job storage, recycled on completion *)
  ext : int array;                    (* external job id; -1 = free *)
  release : float array;
  size : float array;
  db : int array;
  remaining : float array;
  ctime : float array;                (* completion date scratch *)
  free_slots : int Vec.t;             (* stack; top = next assigned *)
  mutable live : int;
  heaps : Heap.Indexed.t array;       (* per databank, ids = slots *)
  (* allocator scratch *)
  mfree : bool array;
  free_up : int array;
  mutable wd : int;                   (* walk: best databank, -1 = none *)
  mutable ws : int;                   (* walk: best slot *)
  scratch : float array;              (* scratch.(0): running minima (walk
                                         best key, next-completion fold).
                                         A cell, not a mutable field — a
                                         float field of a mixed record
                                         boxes on every store. *)
  (* live plan: flat slot-addressed runs, refilled in place at every
     replan instead of consing a [(machine, shares) list] *)
  plan : Pb.t;
  rates : float array;
  lost_rates : float array;
  rated : int Vec.t;
  crashing : bool array;
  crashed : int Vec.t;
  completions : int Vec.t;
  cmp_ext : int -> int -> int;        (* ascending external id; built once
                                         so the per-step sort closes over
                                         nothing (a closure literal would
                                         allocate at every batch) *)
  (* pending queue (FIFO; two-list queue so it serializes trivially) *)
  mutable q_front : qitem list;
  mutable q_back : qitem list;
  mutable q_len : int;
  (* clock and accounting *)
  mutable now : float;
  mutable events : int;
  mutable replans : int;
  mutable since_ckpt : int;
  mutable checkpoints : int;
  mutable completed : int;
  mutable sum_stretch : float;
  mutable max_stretch : float;
  mutable sum_flow : float;
  mutable max_flow : float;
  mutable makespan : float;
  mutable admitted : int;
  mutable enqueued : int;
  mutable dropped : int;
  mutable shed : int;
  mutable peak_live : int;
  mutable peak_queue : int;
  mutable deadline_misses : int;
  mutable lost_work : float;
  (* on-disk journal segments *)
  mutable seg_index : int;
  mutable seg_lines : int;
  (* wall-clock observables: never checkpointed *)
  lat_hist : int array;
  mutable lat_count : int;
}

let key d s =
  match d.cfg.rule with
  | Fcfs -> d.release.(s)
  | Spt -> d.size.(s)
  | Srpt -> d.remaining.(s)
  | Swpt -> d.size.(s) *. d.size.(s)
  | Swrpt -> d.remaining.(s) *. d.size.(s)

let make_daemon cfg src =
  let platform = cfg.platform in
  let nm = Platform.num_machines platform in
  let nd = Platform.num_databanks platform in
  let k = cfg.max_live in
  let free_slots = Vec.create () in
  for s = k - 1 downto 0 do
    Vec.push free_slots s
  done;
  let ext = Array.make k (-1) in
  { cfg; src; nm; nd;
    speeds = Array.init nm (fun m -> (Platform.machine platform m).Machine.speed);
    hosts =
      Array.init nd (fun d ->
          Platform.hosts_of platform d
          |> List.map (fun (m : Machine.t) -> m.id)
          |> Array.of_list);
    dbs_of_machine =
      Array.init nm (fun mid ->
          let m = Platform.machine platform mid in
          List.filter (fun d -> Machine.hosts m d) (List.init nd Fun.id)
          |> Array.of_list);
    up = Array.make nm true;
    trace = Fault.merge cfg.faults (Fault.of_platform platform);
    ext;
    release = Array.make k 0.0;
    size = Array.make k 0.0;
    db = Array.make k 0;
    remaining = Array.make k 0.0;
    ctime = Array.make k 0.0;
    free_slots; live = 0;
    heaps = Array.init nd (fun _ -> Heap.Indexed.create ~capacity:k);
    mfree = Array.make nm true;
    free_up = Array.make nd 0;
    wd = -1; ws = 0;
    scratch = Array.make 2 0.0;
    plan = Pb.create ();
    rates = Array.make k 0.0;
    lost_rates = Array.make k 0.0;
    rated = Vec.create ();
    crashing = Array.make nm false;
    crashed = Vec.create ();
    completions = Vec.create ();
    cmp_ext = (fun a b -> compare ext.(a) ext.(b));
    q_front = []; q_back = []; q_len = 0;
    now = 0.0; events = 0; replans = 0;
    (* force an initial checkpoint on the first loop iteration, so even
       an instantly-killed daemon leaves a resumable state behind *)
    since_ckpt = cfg.checkpoint_every;
    checkpoints = 0; completed = 0;
    sum_stretch = 0.0; max_stretch = 0.0; sum_flow = 0.0; max_flow = 0.0;
    makespan = 0.0; admitted = 0; enqueued = 0; dropped = 0; shed = 0;
    peak_live = 0; peak_queue = 0; deadline_misses = 0; lost_work = 0.0;
    seg_index = 0; seg_lines = 0;
    lat_hist = Array.make lat_bins 0; lat_count = 0 }

(* The live plan as a legacy allocation list, slots mapped to external
   ids, optionally dropping crashing machines.  Built back to front so
   the list comes out in the buffer's canonical order — only ever
   materialized for the journal (cold path). *)
let plan_ext_allocation ?(skip_crashing = false) d =
  let b = d.plan in
  let rec entries i k acc =
    if k < 0 then acc
    else
      entries i (k - 1)
        ((d.ext.(Pb.entry_job b i k), Pb.entry_share b i k) :: acc)
  in
  let rec go i acc =
    if i < 0 then acc
    else
      let m = Pb.run_machine b i in
      if skip_crashing && d.crashing.(m) then go (i - 1) acc
      else go (i - 1) ((m, entries i (Pb.run_length b i - 1) []) :: acc)
  in
  go (Pb.runs b - 1) []

(* ---- journal segments -------------------------------------------------- *)

let seg_path dir i = Filename.concat dir (Printf.sprintf "seg-%06d.jsonl" i)

let segment_index_of name = Scanf.sscanf_opt name "seg-%06d.jsonl%!" Fun.id

let segment_files ~dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> segment_index_of f <> None)
  |> List.sort compare
  |> List.map (Filename.concat dir)

let read_journal ~dir =
  segment_files ~dir
  |> List.concat_map (fun path -> J.read_jsonl_strict ~path)

let rec take_at_most n = function
  | [] -> ([], [])
  | l when n <= 0 -> ([], l)
  | x :: rest ->
    let a, b = take_at_most (n - 1) rest in
    (x :: a, b)

(* Spill the whole in-memory journal window to segment files, rolling to
   the next segment whenever the current one reaches [seg_limit] — the
   roll points are a pure function of the event sequence, so an
   uninterrupted run and a resumed one cut identical segments. *)
let flush_journal d =
  match d.cfg.journal_dir with
  | None -> ()
  | Some dir ->
    let rec spill evs =
      if evs <> [] then begin
        if d.seg_lines >= d.cfg.seg_limit then begin
          d.seg_index <- d.seg_index + 1;
          d.seg_lines <- 0
        end;
        let batch, rest = take_at_most (d.cfg.seg_limit - d.seg_lines) evs in
        J.append_jsonl ~path:(seg_path dir d.seg_index) batch;
        d.seg_lines <- d.seg_lines + List.length batch;
        spill rest
      end
    in
    spill (J.rotate ())

(* ---- checkpoint format ------------------------------------------------- *)

let ckpt_magic = "gripps-ckpt"
let ckpt_version = 1

let serialize d =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "now %.17g\n" d.now;
  pf "counts %d %d %d %d\n" d.events d.replans d.checkpoints d.deadline_misses;
  pf "metrics %d %.17g %.17g %.17g %.17g %.17g %.17g\n" d.completed
    d.sum_stretch d.max_stretch d.sum_flow d.max_flow d.makespan d.lost_work;
  pf "admission %d %d %d %d %d %d\n" d.admitted d.enqueued d.dropped d.shed
    d.peak_live d.peak_queue;
  pf "source %d %.17g\n" (Source.cursor d.src) (Source.clock d.src);
  Buffer.add_string b "up";
  Array.iter (fun u -> pf " %d" (if u then 1 else 0)) d.up;
  Buffer.add_char b '\n';
  pf "faults %d\n" (List.length d.trace);
  List.iter
    (fun (e : Fault.edge) ->
      pf "fault %.17g %d %d\n" e.Fault.time e.Fault.machine
        (if e.Fault.up then 1 else 0))
    d.trace;
  pf "live %d\n" d.live;
  for s = 0 to d.cfg.max_live - 1 do
    if d.ext.(s) >= 0 then
      pf "slot %d %d %.17g %.17g %d %.17g\n" s d.ext.(s) d.release.(s)
        d.size.(s) d.db.(s) d.remaining.(s)
  done;
  pf "free %d" (Vec.length d.free_slots);
  Vec.iter (fun s -> pf " %d" s) d.free_slots;
  Buffer.add_char b '\n';
  pf "queue %d\n" d.q_len;
  List.iter
    (fun q -> pf "qitem %d %.17g %.17g %d\n" q.q_ext q.q_release q.q_size q.q_db)
    (d.q_front @ List.rev d.q_back);
  (* Canonical (legacy list) order, so checkpoints written before and
     after the flat-plan change are byte-identical. *)
  pf "plan %d\n" (Pb.runs d.plan);
  for i = 0 to Pb.runs d.plan - 1 do
    let len = Pb.run_length d.plan i in
    pf "pentry %d %d" (Pb.run_machine d.plan i) len;
    for k = 0 to len - 1 do
      pf " %d %.17g" (Pb.entry_job d.plan i k) (Pb.entry_share d.plan i k)
    done;
    Buffer.add_char b '\n'
  done;
  pf "jseg %d %d\n" d.seg_index d.seg_lines;
  Buffer.contents b

let write_checkpoint d =
  match d.cfg.checkpoint with
  | None -> d.since_ckpt <- 0
  | Some path ->
    d.checkpoints <- d.checkpoints + 1;
    Obs.Counter.incr c_checkpoints;
    let payload = serialize d in
    let header =
      Printf.sprintf "%s %d %s %d %s\n" ckpt_magic ckpt_version
        (fingerprint d.cfg) (String.length payload) (Fsio.fnv64 payload)
    in
    Fsio.write_atomic ~path (header ^ payload);
    d.since_ckpt <- 0

(* ---- checkpoint restore ------------------------------------------------ *)

let corrupt path fmt =
  Printf.ksprintf (fun m -> failwith (path ^ ": " ^ m)) fmt

(* Sequential tagged-line parser over the payload. *)
type parser_state = { path : string; mutable lines : string list; mutable ln : int }

let next_line ps tag =
  match ps.lines with
  | [] -> corrupt ps.path "truncated checkpoint: missing '%s' record" tag
  | l :: rest ->
    ps.lines <- rest;
    ps.ln <- ps.ln + 1;
    (match String.split_on_char ' ' l with
     | t :: fields when t = tag -> fields
     | t :: _ ->
       corrupt ps.path "checkpoint line %d: expected '%s', found '%s'" ps.ln tag t
     | [] -> corrupt ps.path "checkpoint line %d: empty record" ps.ln)

let p_int ps v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> corrupt ps.path "checkpoint line %d: bad integer %S" ps.ln v

let p_float ps v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> corrupt ps.path "checkpoint line %d: bad float %S" ps.ln v

let restore cfg path make_source =
  let raw =
    try Fsio.read_file path
    with Sys_error m -> failwith ("cannot read checkpoint: " ^ m)
  in
  let header, payload =
    match String.index_opt raw '\n' with
    | None -> corrupt path "not a checkpoint (no header line)"
    | Some i ->
      (String.sub raw 0 i, String.sub raw (i + 1) (String.length raw - i - 1))
  in
  (match String.split_on_char ' ' header with
   | [ magic; version; fp; len; sum ] ->
     if magic <> ckpt_magic then corrupt path "not a checkpoint (bad magic %S)" magic;
     if int_of_string_opt version <> Some ckpt_version then
       corrupt path "unsupported checkpoint version %s" version;
     if fp <> fingerprint cfg then
       corrupt path
         "checkpoint was written under a different configuration (fingerprint %s, ours %s)"
         fp (fingerprint cfg);
     (match int_of_string_opt len with
      | Some l when l = String.length payload -> ()
      | _ -> corrupt path "torn checkpoint: payload length mismatch");
     if sum <> Fsio.fnv64 payload then corrupt path "checkpoint checksum mismatch"
   | _ -> corrupt path "not a checkpoint (malformed header)");
  let ps =
    { path;
      lines =
        (String.split_on_char '\n' payload
         |> List.filter (fun l -> l <> ""));
      ln = 1 }
  in
  let now =
    match next_line ps "now" with
    | [ v ] -> p_float ps v
    | _ -> corrupt path "malformed 'now' record"
  in
  let events, replans, checkpoints, deadline_misses =
    match next_line ps "counts" with
    | [ a; b; c; dl ] -> (p_int ps a, p_int ps b, p_int ps c, p_int ps dl)
    | _ -> corrupt path "malformed 'counts' record"
  in
  let completed, sum_stretch, max_stretch, sum_flow, max_flow, makespan, lost_work =
    match next_line ps "metrics" with
    | [ n; ss; ms; sf; mf; mk; lw ] ->
      (p_int ps n, p_float ps ss, p_float ps ms, p_float ps sf, p_float ps mf,
       p_float ps mk, p_float ps lw)
    | _ -> corrupt path "malformed 'metrics' record"
  in
  let admitted, enqueued, dropped, shed, peak_live, peak_queue =
    match next_line ps "admission" with
    | [ a; e; dr; sh; pl; pq ] ->
      (p_int ps a, p_int ps e, p_int ps dr, p_int ps sh, p_int ps pl, p_int ps pq)
    | _ -> corrupt path "malformed 'admission' record"
  in
  let cursor, clock =
    match next_line ps "source" with
    | [ c; k ] -> (p_int ps c, p_float ps k)
    | _ -> corrupt path "malformed 'source' record"
  in
  let src = make_source ~cursor ~clock in
  if Source.cursor src <> cursor then
    corrupt path "resumed source reports cursor %d, checkpoint says %d"
      (Source.cursor src) cursor;
  let d = make_daemon cfg src in
  d.now <- now;
  d.events <- events;
  d.replans <- replans;
  d.checkpoints <- checkpoints;
  d.deadline_misses <- deadline_misses;
  d.completed <- completed;
  d.sum_stretch <- sum_stretch;
  d.max_stretch <- max_stretch;
  d.sum_flow <- sum_flow;
  d.max_flow <- max_flow;
  d.makespan <- makespan;
  d.lost_work <- lost_work;
  d.admitted <- admitted;
  d.enqueued <- enqueued;
  d.dropped <- dropped;
  d.shed <- shed;
  d.peak_live <- peak_live;
  d.peak_queue <- peak_queue;
  let ups = next_line ps "up" in
  if List.length ups <> d.nm then corrupt path "malformed 'up' record";
  List.iteri (fun m v -> d.up.(m) <- p_int ps v <> 0) ups;
  let nfaults =
    match next_line ps "faults" with
    | [ n ] -> p_int ps n
    | _ -> corrupt path "malformed 'faults' record"
  in
  d.trace <-
    List.init nfaults (fun _ ->
        match next_line ps "fault" with
        | [ t; m; u ] ->
          { Fault.time = p_float ps t; machine = p_int ps m;
            up = p_int ps u <> 0 }
        | _ -> corrupt path "malformed 'fault' record");
  let nlive =
    match next_line ps "live" with
    | [ n ] -> p_int ps n
    | _ -> corrupt path "malformed 'live' record"
  in
  for _ = 1 to nlive do
    match next_line ps "slot" with
    | [ s; e; r; w; db; rem ] ->
      let s = p_int ps s in
      if s < 0 || s >= cfg.max_live then corrupt path "slot id out of range";
      d.ext.(s) <- p_int ps e;
      d.release.(s) <- p_float ps r;
      d.size.(s) <- p_float ps w;
      d.db.(s) <- p_int ps db;
      d.remaining.(s) <- p_float ps rem
    | _ -> corrupt path "malformed 'slot' record"
  done;
  d.live <- nlive;
  (* Rebuild the per-databank heaps from slot data: an indexed heap's
     drain order is the ascending (key, slot) sort of its members, so
     the rebuilt heaps schedule identically whatever the original
     insertion history was. *)
  for s = 0 to cfg.max_live - 1 do
    if d.ext.(s) >= 0 then begin
      if d.db.(s) < 0 || d.db.(s) >= d.nd then
        corrupt path "slot %d references unknown databank %d" s d.db.(s);
      Heap.Indexed.add d.heaps.(d.db.(s)) s (key d s)
    end
  done;
  (match next_line ps "free" with
   | n :: ids ->
     if p_int ps n <> List.length ids then corrupt path "malformed 'free' record";
     Vec.clear d.free_slots;
     List.iter
       (fun v ->
         let s = p_int ps v in
         if s < 0 || s >= cfg.max_live || d.ext.(s) >= 0 then
           corrupt path "free stack names an occupied or out-of-range slot";
         Vec.push d.free_slots s)
       ids
   | [] -> corrupt path "malformed 'free' record");
  if Vec.length d.free_slots + d.live <> cfg.max_live then
    corrupt path "slot accounting mismatch (%d free + %d live <> %d)"
      (Vec.length d.free_slots) d.live cfg.max_live;
  let nq =
    match next_line ps "queue" with
    | [ n ] -> p_int ps n
    | _ -> corrupt path "malformed 'queue' record"
  in
  d.q_front <-
    List.init nq (fun _ ->
        match next_line ps "qitem" with
        | [ e; r; w; db ] ->
          { q_ext = p_int ps e; q_release = p_float ps r;
            q_size = p_float ps w; q_db = p_int ps db }
        | _ -> corrupt path "malformed 'qitem' record");
  d.q_back <- [];
  d.q_len <- nq;
  let nplan =
    match next_line ps "plan" with
    | [ n ] -> p_int ps n
    | _ -> corrupt path "malformed 'plan' record"
  in
  (* The checkpoint lists runs in canonical order, so refill the buffer
     with [grab_order = false]: reads come back in write order, which is
     exactly the order the original run's canonical accessors used. *)
  Pb.clear d.plan;
  for _ = 1 to nplan do
    match next_line ps "pentry" with
    | m :: n :: rest ->
      let m = p_int ps m and n = p_int ps n in
      if m < 0 || m >= d.nm then corrupt path "plan references unknown machine";
      Pb.begin_machine d.plan m;
      let rec shares n = function
        | [] when n = 0 -> ()
        | s :: sh :: rest when n > 0 ->
          Pb.push_share d.plan ~job:(p_int ps s) ~share:(p_float ps sh);
          shares (n - 1) rest
        | _ -> corrupt path "malformed 'pentry' record"
      in
      shares n rest
    | _ -> corrupt path "malformed 'pentry' record"
  done;
  (* Reload the rates from the restored plan in allocation-list order —
     the same order the original run's loader used, so the completion
     scan walks [rated] identically. *)
  for i = 0 to Pb.runs d.plan - 1 do
    let m = Pb.run_machine d.plan i in
    for k = 0 to Pb.run_length d.plan i - 1 do
      let s = Pb.entry_job d.plan i k in
      if s < 0 || s >= cfg.max_live || d.ext.(s) < 0 then
        corrupt path "plan references a free slot";
      let r = Pb.entry_share d.plan i k *. d.speeds.(m) in
      if d.rates.(s) = 0.0 && r > 0.0 then Vec.push d.rated s;
      d.rates.(s) <- d.rates.(s) +. r
    done
  done;
  let seg_index, seg_lines =
    match next_line ps "jseg" with
    | [ i; n ] -> (p_int ps i, p_int ps n)
    | _ -> corrupt path "malformed 'jseg' record"
  in
  d.seg_index <- seg_index;
  d.seg_lines <- seg_lines;
  if ps.lines <> [] then corrupt path "trailing garbage after checkpoint payload";
  (* The restored run must not re-fire the checkpoint that produced this
     state: the writer reset its cadence exactly here. *)
  d.since_ckpt <- 0;
  d

(* Discard journal events the killed run spilled past its last
   checkpoint: segments after the recorded one are deleted, the recorded
   one is truncated to the recorded line count. *)
let truncate_segments d =
  match d.cfg.journal_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then
      failwith (dir ^ ": journal directory missing at resume");
    Array.iter
      (fun f ->
        match segment_index_of f with
        | Some i when i > d.seg_index -> Sys.remove (Filename.concat dir f)
        | Some _ | None -> ())
      (Sys.readdir dir);
    let path = seg_path dir d.seg_index in
    if d.seg_lines = 0 then begin
      if Sys.file_exists path then Sys.remove path
    end
    else begin
      if not (Sys.file_exists path) then
        failwith (Printf.sprintf "%s: checkpoint expects %d journal records, file missing"
                    path d.seg_lines);
      let lines =
        String.split_on_char '\n' (Fsio.read_file path)
        |> List.filter (fun l -> l <> "")
      in
      if List.length lines < d.seg_lines then
        failwith (Printf.sprintf "%s: checkpoint expects %d journal records, found %d"
                    path d.seg_lines (List.length lines));
      let keep, _ = take_at_most d.seg_lines lines in
      Fsio.write_atomic ~path (String.concat "\n" keep ^ "\n")
    end

(* ---- admission --------------------------------------------------------- *)

let admit_live d ~ext ~release ~size ~databank =
  if databank < 0 || databank >= d.nd then
    failwith
      (Printf.sprintf "service: job %d requests unknown databank %d" ext databank);
  if Array.length d.hosts.(databank) = 0 then
    failwith
      (Printf.sprintf "service: job %d requests databank %d with no replica"
         ext databank);
  let s =
    match Vec.pop d.free_slots with
    | Some s -> s
    | None -> assert false (* caller checks live < max_live *)
  in
  d.ext.(s) <- ext;
  d.release.(s) <- release;
  d.size.(s) <- size;
  d.db.(s) <- databank;
  d.remaining.(s) <- size;
  Heap.Indexed.add d.heaps.(databank) s (key d s);
  d.live <- d.live + 1;
  if d.live > d.peak_live then d.peak_live <- d.live;
  d.admitted <- d.admitted + 1;
  Obs.Counter.incr c_admitted;
  if J.on () then
    J.record (J.Sim_event { time = d.now; kind = J.Arrival; subject = ext })

let enqueue d q =
  d.q_back <- q :: d.q_back;
  d.q_len <- d.q_len + 1;
  if d.q_len > d.peak_queue then d.peak_queue <- d.q_len;
  d.enqueued <- d.enqueued + 1;
  Obs.Counter.incr c_enqueued;
  if J.on () then
    J.record (J.Note { key = "serve.enqueue"; value = string_of_int q.q_ext })

let dequeue d =
  (match d.q_front with
   | [] ->
     d.q_front <- List.rev d.q_back;
     d.q_back <- []
   | _ :: _ -> ());
  match d.q_front with
  | [] -> assert false (* caller checks q_len > 0 *)
  | q :: rest ->
    d.q_front <- rest;
    d.q_len <- d.q_len - 1;
    q

(* Shed: evict the largest pending job (ties to the most recent) to make
   room for the newcomer. *)
let shed_largest d =
  let all = d.q_front @ List.rev d.q_back in
  let _, victim_idx, _ =
    List.fold_left
      (fun (i, vi, vs) q ->
        if q.q_size >= vs then (i + 1, i, q.q_size) else (i + 1, vi, vs))
      (0, -1, neg_infinity) all
  in
  let victim = List.nth all victim_idx in
  d.q_front <- List.filteri (fun i _ -> i <> victim_idx) all;
  d.q_back <- [];
  d.q_len <- d.q_len - 1;
  d.shed <- d.shed + 1;
  Obs.Counter.incr c_shed;
  if J.on () then
    J.record (J.Note { key = "serve.shed"; value = string_of_int victim.q_ext })

(* Consume every due source item the policy allows.  Each consumed item
   becomes exactly one event (admission, enqueue, drop or shed+enqueue),
   so the loop always makes progress. *)
let pop_arrivals d batch =
  let continue_ = ref true in
  while !continue_ do
    match Source.peek d.src with
    | Some it when it.Source.release <= d.now +. 1e-12 ->
      let room = d.live < d.cfg.max_live || d.q_len < d.cfg.queue_cap in
      if d.cfg.policy = Block && not room then continue_ := false
      else begin
        let ext = Source.cursor d.src in
        ignore (Source.next d.src);
        if d.live < d.cfg.max_live then
          admit_live d ~ext ~release:it.Source.release ~size:it.Source.size
            ~databank:it.Source.databank
        else begin
          let q =
            { q_ext = ext; q_release = it.Source.release;
              q_size = it.Source.size; q_db = it.Source.databank }
          in
          if d.q_len < d.cfg.queue_cap then enqueue d q
          else
            match d.cfg.policy with
            | Block -> assert false (* no room: handled above *)
            | Drop ->
              d.dropped <- d.dropped + 1;
              Obs.Counter.incr c_dropped;
              if J.on () then
                J.record (J.Note { key = "serve.drop"; value = string_of_int ext })
            | Shed when d.q_len > 0 ->
              shed_largest d;
              enqueue d q
            | Shed ->
              (* nothing pending to evict (queue_cap = 0): shedding
                 degenerates to dropping the newcomer *)
              d.dropped <- d.dropped + 1;
              Obs.Counter.incr c_dropped;
              if J.on () then
                J.record (J.Note { key = "serve.drop"; value = string_of_int ext })
        end;
        incr batch
      end
    | Some _ | None -> continue_ := false
  done

(* ---- scheduling -------------------------------------------------------- *)

(* The List_sched heap walk, re-targeted at slots: repeatedly grab every
   free up replica of the globally smallest (key, slot) among databanks
   that still have one.  Slot ids stand in for job ids in the tiebreak;
   slot assignment is itself deterministic (and checkpointed), so the
   walk is reproducible across kill and resume.

   A winner takes every free up replica of its databank, driving that
   databank's [free_up] to zero — no databank yields twice, so the only
   candidate a databank ever offers is its heap root.  Reading the root
   through the slot accessors means the walk never mutates the heaps
   (the old pop-winners-then-restore pattern paid two full-depth sifts
   per winner), and the plan lands in the reusable flat buffer in grab
   order instead of a consed list.  The running best lives in daemon
   fields / the scratch cell: locals would box (the float) or allocate
   ref cells at every replan. *)
let rec walk d =
  d.wd <- -1;
  for db = 0 to d.nd - 1 do
    if d.free_up.(db) > 0 && Heap.Indexed.slot_count d.heaps.(db) > 0 then begin
      let s = Heap.Indexed.slot_id d.heaps.(db) 0 in
      let k = Heap.Indexed.slot_key d.heaps.(db) 0 in
      if d.wd < 0 || k < d.scratch.(0) || (k = d.scratch.(0) && s < d.ws)
      then begin
        d.wd <- db;
        d.ws <- s;
        d.scratch.(0) <- k
      end
    end
  done;
  if d.wd >= 0 then begin
    let s = d.ws in
    let hosts = d.hosts.(d.wd) in
    for i = 0 to Array.length hosts - 1 do
      let m = hosts.(i) in
      if d.mfree.(m) && d.up.(m) then begin
        d.mfree.(m) <- false;
        Pb.begin_machine d.plan m;
        Pb.push_unit_share d.plan ~job:s;
        let dbs = d.dbs_of_machine.(m) in
        for q = 0 to Array.length dbs - 1 do
          d.free_up.(dbs.(q)) <- d.free_up.(dbs.(q)) - 1
        done
      end
    done;
    walk d
  end

let heap_walk d =
  Array.fill d.mfree 0 d.nm true;
  for db = 0 to d.nd - 1 do
    d.free_up.(db) <- 0;
    let hosts = d.hosts.(db) in
    for i = 0 to Array.length hosts - 1 do
      if d.up.(hosts.(i)) then d.free_up.(db) <- d.free_up.(db) + 1
    done
  done;
  Pb.clear ~grab_order:true d.plan;
  walk d

let record_latency d dur =
  d.lat_hist.(lat_bin dur) <- d.lat_hist.(lat_bin dur) + 1;
  d.lat_count <- d.lat_count + 1;
  match d.cfg.replan_deadline with
  | Some dl when dur > dl -> d.deadline_misses <- d.deadline_misses + 1
  | Some _ | None -> ()

let replan d =
  let t0 = Unix.gettimeofday () in
  (* Re-key what the last segment advanced (still-live members of the
     old plan's support); static rules never need it.  [put_key] +
     [update_keyed] rather than [update]: same sift sequence, but the
     key never crosses a non-inlined call boundary, so no float box. *)
  if not (rule_static d.cfg.rule) then
    for i = 0 to Vec.length d.rated - 1 do
      let s = Vec.get d.rated i in
      if d.ext.(s) >= 0 then begin
        let h = d.heaps.(d.db.(s)) in
        if Heap.Indexed.mem h s then begin
          Heap.Indexed.put_key h s (key d s);
          Heap.Indexed.update_keyed h s
        end
      end
    done;
  for i = 0 to Vec.length d.rated - 1 do
    let s = Vec.get d.rated i in
    d.rates.(s) <- 0.0;
    d.lost_rates.(s) <- 0.0
  done;
  Vec.clear d.rated;
  heap_walk d;
  (* Rate loading walks the buffer in canonical order — the same order
     the old list loader used, float summation included. *)
  for i = 0 to Pb.runs d.plan - 1 do
    let m = Pb.run_machine d.plan i in
    for k = 0 to Pb.run_length d.plan i - 1 do
      let s = Pb.entry_job d.plan i k in
      let r = Pb.entry_share d.plan i k *. d.speeds.(m) in
      if d.rates.(s) = 0.0 && r > 0.0 then Vec.push d.rated s;
      d.rates.(s) <- d.rates.(s) +. r
    done
  done;
  d.replans <- d.replans + 1;
  Obs.Counter.incr c_replans;
  if J.on () then
    J.record
      (J.Replan
         { time = d.now; scheduler = rule_name d.cfg.rule;
           allocation = plan_ext_allocation d; horizon = None });
  record_latency d (Unix.gettimeofday () -. t0)

(* ---- the event step ---------------------------------------------------- *)

let complete d s t completions =
  d.ctime.(s) <- t;
  d.remaining.(s) <- 0.0;
  Vec.push completions s

(* Advance the fluid plan to [t_next], then process the event batch due
   there (completions, fault edges, promotions, admissions) and replan.
   Mirrors Sim's advance, including crash-loss semantics; the sliver
   threshold is per-job (1e-9 × size) because a stream has no
   total-work yardstick. *)
(* Does any plan run survive the crashes (= does the segment deliver
   anything worth recording)?  Top-level so the per-event call allocates
   no closure. *)
let rec plan_any_live d i =
  i < Pb.runs d.plan
  && ((not d.crashing.(Pb.run_machine d.plan i)) || plan_any_live d (i + 1))

let step d t_next =
  let dt = t_next -. d.now in
  for i = 0 to Vec.length d.crashed - 1 do
    d.crashing.(Vec.get d.crashed i) <- false
  done;
  Vec.clear d.crashed;
  let any_crash = ref false in
  if d.cfg.loss = Fault.Crash then begin
    let rec scan = function
      | (e : Fault.edge) :: rest when e.Fault.time <= t_next +. 1e-12 ->
        if
          (not e.Fault.up) && d.up.(e.Fault.machine)
          && not d.crashing.(e.Fault.machine)
        then begin
          d.crashing.(e.Fault.machine) <- true;
          Vec.push d.crashed e.Fault.machine;
          any_crash := true
        end;
        scan rest
      | _ :: _ | [] -> ()
    in
    scan d.trace
  end;
  if !any_crash then
    for i = 0 to Pb.runs d.plan - 1 do
      let mid = Pb.run_machine d.plan i in
      if d.crashing.(mid) then
        for k = 0 to Pb.run_length d.plan i - 1 do
          let s = Pb.entry_job d.plan i k in
          d.lost_rates.(s) <-
            d.lost_rates.(s) +. (Pb.entry_share d.plan i k *. d.speeds.(mid))
        done
    done;
  if dt > 0.0 && plan_any_live d 0 then begin
    Obs.Counter.incr c_segments;
    if J.on () then
      J.record
        (J.Segment
           { start_time = d.now; end_time = t_next;
             shares = plan_ext_allocation ~skip_crashing:true d })
  end;
  let eps_t = 1e-9 *. Float.max 1.0 (Float.abs t_next) in
  Vec.clear d.completions;
  (* The sliver rule may only fire on a job the branch above did not
     already complete (a completed job's remaining is 0.0, which is below
     any threshold) — so it sits on the two paths where none fired,
     rather than behind a per-job [ref] flag. *)
  for i = 0 to Vec.length d.rated - 1 do
    let s = Vec.get d.rated i in
    if d.lost_rates.(s) > 0.0 then begin
      d.remaining.(s) <-
        d.remaining.(s) -. ((d.rates.(s) -. d.lost_rates.(s)) *. dt);
      d.lost_work <- d.lost_work +. (d.lost_rates.(s) *. dt);
      if d.remaining.(s) <= 1e-9 *. d.size.(s) then
        complete d s t_next d.completions
    end
    else begin
      let t_fin = d.now +. (d.remaining.(s) /. d.rates.(s)) in
      if t_fin <= t_next +. eps_t then complete d s t_fin d.completions
      else begin
        d.remaining.(s) <- d.remaining.(s) -. (d.rates.(s) *. dt);
        if d.remaining.(s) <= 1e-9 *. d.size.(s) then
          complete d s t_next d.completions
      end
    end
  done;
  (* Simultaneous completions retire in ascending external-id order —
     the slot pool recycles ids, so slot order is not arrival order. *)
  Vec.sort d.cmp_ext d.completions;
  d.now <- t_next;
  let batch = ref 0 in
  for i = 0 to Vec.length d.completions - 1 do
    let s = Vec.get d.completions i in
    let e = d.ext.(s) and t = d.ctime.(s) in
    let flow = t -. d.release.(s) in
    let stretch = flow /. d.size.(s) in
    d.completed <- d.completed + 1;
    d.sum_flow <- d.sum_flow +. flow;
    if flow > d.max_flow then d.max_flow <- flow;
    d.sum_stretch <- d.sum_stretch +. stretch;
    if stretch > d.max_stretch then d.max_stretch <- stretch;
    if t > d.makespan then d.makespan <- t;
    if J.on () then
      J.record (J.Sim_event { time = t; kind = J.Completion; subject = e });
    Heap.Indexed.remove d.heaps.(d.db.(s)) s;
    d.ext.(s) <- -1;
    Vec.push d.free_slots s;
    d.live <- d.live - 1;
    incr batch
  done;
  let continue_ = ref true in
  while !continue_ do
    match d.trace with
    | e :: rest when e.Fault.time <= d.now +. 1e-12 ->
      d.trace <- rest;
      if e.Fault.up <> d.up.(e.Fault.machine) then begin
        d.up.(e.Fault.machine) <- e.Fault.up;
        if J.on () then
          J.record
            (J.Sim_event
               { time = d.now;
                 kind = (if e.Fault.up then J.Recovery else J.Failure);
                 subject = e.Fault.machine });
        incr batch
      end
    | _ :: _ | [] -> continue_ := false
  done;
  (* Queued jobs are strictly older than anything still in the source:
     promote them into freed slots first. *)
  while d.live < d.cfg.max_live && d.q_len > 0 do
    let q = dequeue d in
    admit_live d ~ext:q.q_ext ~release:q.q_release ~size:q.q_size
      ~databank:q.q_db;
    incr batch
  done;
  pop_arrivals d batch;
  d.events <- d.events + !batch;
  d.since_ckpt <- d.since_ckpt + !batch;
  Obs.Counter.add c_events !batch;
  replan d

(* ---- main loop --------------------------------------------------------- *)

let p99_latency d =
  if d.lat_count = 0 then 0.0
  else begin
    let target = int_of_float (ceil (0.99 *. float_of_int d.lat_count)) in
    let acc = ref 0 and bin = ref 0 in
    (try
       for i = 0 to lat_bins - 1 do
         acc := !acc + d.lat_hist.(i);
         if !acc >= target then begin
           bin := i;
           raise Exit
         end
       done
     with Exit -> ());
    lat_upper !bin
  end

let report_of d outcome =
  { outcome;
    metrics =
      { completed = d.completed; sum_stretch = d.sum_stretch;
        max_stretch = d.max_stretch; sum_flow = d.sum_flow;
        max_flow = d.max_flow; makespan = d.makespan };
    admitted = d.admitted; enqueued = d.enqueued; dropped = d.dropped;
    shed = d.shed; peak_live = d.peak_live; peak_queue = d.peak_queue;
    events = d.events; replans = d.replans; checkpoints = d.checkpoints;
    deadline_misses = d.deadline_misses; lost_work = d.lost_work;
    final_time = d.now; source_cursor = Source.cursor d.src;
    replan_p99_s = p99_latency d }

let loop d ~stop_after_events =
  let stop = Option.value ~default:max_int stop_after_events in
  let outcome = ref None in
  while !outcome = None do
    if d.events >= stop then outcome := Some Killed
    else begin
      (* The checkpoint lands at a post-replan quiescent point: the live
         plan, heap keys and metric accumulators are all current, so no
         in-flight information exists outside the serialized state. *)
      if
        (d.cfg.checkpoint <> None || d.cfg.journal_dir <> None)
        && d.since_ckpt >= d.cfg.checkpoint_every
      then begin
        flush_journal d;
        write_checkpoint d
      end;
      (* Next-date minimum folded through the scratch cell, as in Sim's
         loop: a [float ref] would box on every store, and a min chain
         mixing boxed operands ([Fault.time], [infinity]) with unboxed
         ones boxes at the if-join.  All dates are non-NaN, so the fold
         computes exactly the old
         [min next_completion (min arrival_t fault_t)]. *)
      d.scratch.(0) <- infinity;
      for i = 0 to Vec.length d.rated - 1 do
        let s = Vec.get d.rated i in
        let t = d.now +. (d.remaining.(s) /. d.rates.(s)) in
        if t < d.scratch.(0) then d.scratch.(0) <- t
      done;
      let arrival_t =
        match Source.peek d.src with
        | None -> infinity
        | Some it ->
          if
            d.cfg.policy = Block && d.live >= d.cfg.max_live
            && d.q_len >= d.cfg.queue_cap
          then infinity
          else Float.max d.now it.Source.release
      in
      let fault_t =
        match d.trace with e :: _ -> e.Fault.time | [] -> infinity
      in
      if arrival_t < d.scratch.(0) then d.scratch.(0) <- arrival_t;
      if fault_t < d.scratch.(0) then d.scratch.(0) <- fault_t;
      let t_next = d.scratch.(0) in
      if t_next = infinity then begin
        if d.live = 0 && d.q_len = 0 && Source.peek d.src = None then
          outcome := Some Drained
        else raise (Stalled { time = d.now; live = d.live; queued = d.q_len })
      end
      else
        match d.cfg.horizon with
        | Some h when t_next > h +. 1e-12 -> outcome := Some Horizon_reached
        | Some _ | None -> step d t_next
    end
  done;
  let outcome = Option.get !outcome in
  (match outcome with
   | Killed -> ()  (* a kill flushes nothing: that is the point *)
   | Drained | Horizon_reached ->
     if outcome = Drained && J.on () then
       J.record (J.Run_end { time = d.now; completed = d.completed });
     flush_journal d;
     if d.cfg.checkpoint <> None then write_checkpoint d;
     Source.close d.src);
  report_of d outcome

let with_journaling cfg f =
  match cfg.journal_dir with
  | None -> f ()
  | Some dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    Obs.with_level Obs.Events f

let run ?stop_after_events cfg src =
  with_journaling cfg (fun () ->
      (match cfg.journal_dir with
       | None -> ()
       | Some dir ->
         (* a fresh daemon owns the directory: stale segments from a
            previous run must not be mistaken for this run's journal *)
         List.iter Sys.remove (segment_files ~dir);
         J.clear ();
         J.record (J.Note { key = "serve.start"; value = cfg.source_desc }));
      let d = make_daemon cfg src in
      loop d ~stop_after_events)

let resume ?stop_after_events cfg make_source =
  let path =
    match cfg.checkpoint with
    | Some p -> p
    | None -> invalid_arg "Service.resume: config has no checkpoint path"
  in
  with_journaling cfg (fun () ->
      if cfg.journal_dir <> None then J.clear ();
      let d = restore cfg path make_source in
      truncate_segments d;
      loop d ~stop_after_events)
