(* Shard-by-index domain pool.

   Determinism is the design constraint, throughput second: shard [i]
   always runs on worker [i mod d] after shards [i - d, i - 2d, ...] of
   the same worker, every shard's observability delta is captured with
   [Obs.Export] in its own domain, and the coordinator merges deltas in
   shard-index order.  Since payloads are index-seeded, both the results
   and the merged observability state match a sequential run bit for
   bit. *)

module Obs = Gripps_obs.Obs

type t = { n_domains : int }

let default_jobs () =
  match Sys.getenv_opt "GRIPPS_JOBS" with
  | Some v -> (try max 1 (int_of_string (String.trim v)) with Failure _ -> 1)
  | None -> 1

let create ?domains () =
  let n = match domains with Some d -> d | None -> default_jobs () in
  { n_domains = max 1 n }

let sequential = { n_domains = 1 }
let domains t = t.n_domains

(* Worker w's slice of [0, shards): w, w+d, w+2d, ... in order.  Each
   shard is bracketed by Export.start/stop so its observability delta
   travels home with its result, and exceptions are captured per shard
   so one bad shard never takes down its siblings. *)
let run_slice ~shards ~d ~f w =
  let rec go i acc =
    if i >= shards then List.rev acc
    else begin
      let mark = Obs.Export.start () in
      let r = try Ok (f i) with e -> Error e in
      let delta = Obs.Export.stop mark in
      go (i + d) ((i, r, delta) :: acc)
    end
  in
  go w []

let try_map t ~shards f =
  if shards < 0 then invalid_arg "Pool.try_map: negative shards";
  let d = min t.n_domains shards in
  if d <= 1 then
    (* Inline sequential path: no spawn, no export round-trip — the
       caller's domain-local state accrues directly, exactly as every
       pre-pool call site behaved. *)
    Array.init shards (fun i -> try Ok (f i) with e -> Error e)
  else begin
    let workers =
      Array.init d (fun w -> Domain.spawn (fun () -> run_slice ~shards ~d ~f w))
    in
    let collected = Array.map Domain.join workers in
    let results = Array.make shards (Error Exit) in
    let deltas = Array.make shards None in
    Array.iter
      (List.iter (fun (i, r, delta) ->
           results.(i) <- r;
           deltas.(i) <- Some delta))
      collected;
    (* Canonical merge order: shard index, not domain completion. *)
    Array.iter (function Some delta -> Obs.Export.merge delta | None -> ()) deltas;
    results
  end

let map_reduce t ~shards ~map ~init ~reduce =
  if shards < 0 then invalid_arg "Pool.map_reduce: negative shards";
  let d = min t.n_domains shards in
  if d <= 1 then begin
    (* Reference semantics: strictly alternating map/reduce, shard by
       shard, all in the calling domain. *)
    let acc = ref init in
    for i = 0 to shards - 1 do
      acc := reduce !acc (map i)
    done;
    !acc
  end
  else begin
    let results = try_map t ~shards map in
    Array.iter (function Error e -> raise e | Ok _ -> ()) results;
    Array.fold_left
      (fun acc r -> match r with Ok v -> reduce acc v | Error _ -> acc)
      init results
  end

let map_list t ~shards f =
  List.rev
    (map_reduce t ~shards ~map:f ~init:[] ~reduce:(fun acc v -> v :: acc))
