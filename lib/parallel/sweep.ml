type 'a t = { length : int; job : int -> 'a }

let make ~length job =
  if length < 0 then invalid_arg "Sweep.make: negative length";
  { length; job }

let of_list xs f =
  let arr = Array.of_list xs in
  { length = Array.length arr; job = (fun i -> f arr.(i)) }

let append a b =
  { length = a.length + b.length;
    job = (fun i -> if i < a.length then a.job i else b.job (i - a.length)) }

let length t = t.length

let run ?(pool = Pool.sequential) ?(progress = fun _ _ -> ()) t =
  let k = ref 0 in
  List.rev
    (Pool.map_reduce pool ~shards:t.length ~map:t.job ~init:[]
       ~reduce:(fun acc v ->
         incr k;
         progress !k t.length;
         v :: acc))
