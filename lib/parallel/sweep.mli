(** A sweep: a finite grid of independent, index-addressed jobs.

    The one abstraction every experiment harness (tables, resilience,
    overhead, perf) expresses its grid through.  A job must derive all
    randomness from its index (seed arithmetic or
    {!Gripps_rng.Splitmix.stream}), never from execution order — that is
    what makes [run] with any pool size return identical results in
    identical order.  Once a sweep is a value, sharding it across
    domains (here), processes or machines is the same interface. *)

type 'a t = private { length : int; job : int -> 'a }

val make : length:int -> (int -> 'a) -> 'a t
(** @raise Invalid_argument on negative [length]. *)

val of_list : 'b list -> ('b -> 'a) -> 'a t
(** One job per list element, in list order. *)

val append : 'a t -> 'a t -> 'a t
(** The left sweep's jobs, then the right's. *)

val length : 'a t -> int

val run :
  ?pool:Pool.t -> ?progress:(int -> int -> unit) -> 'a t -> 'a list
(** Results in job-index order.  [pool] defaults to {!Pool.sequential}.
    [progress done total] is always called from the calling domain, once
    per job, in index order (live on a sequential pool; at the join on a
    parallel one).  Exceptions propagate as described in
    {!Pool.map_reduce}. *)
