(** Domain pool with static shard-by-index partitioning and
    deterministic, canonically-ordered reduction.

    A pool of [d] domains runs [shards] independent jobs: worker [w]
    executes shard indices [w, w+d, w+2d, ...] in increasing order
    (work-stealing-free — the assignment depends only on the index and
    the domain count, never on execution speed).  Each worker runs with
    a domain-local observability sink ({!Gripps_obs.Obs}): the
    coordinator inherits nothing from workers while they run, then folds
    every shard's observability delta back into its own state {e in
    shard-index order} at join.  Since shard payloads derive everything
    (RNG streams, fault traces) from their index, the results, merged
    counters and merged journal are bit-identical to a sequential run
    regardless of the domain count or how the OS interleaves domains.

    A pool with one domain executes shards inline in the calling domain
    — no spawns, no export/merge round-trip — which is the reference
    sequential semantics the parallel path is tested against. *)

type t

val create : ?domains:int -> unit -> t
(** [domains] defaults to {!default_jobs}[ ()]; values are clamped to at
    least 1.  Creating a pool allocates nothing: domains are spawned per
    {!map_reduce} call and joined before it returns. *)

val sequential : t
(** The 1-domain pool: runs everything inline in the calling domain. *)

val domains : t -> int

val default_jobs : unit -> int
(** The [GRIPPS_JOBS] environment variable, or 1 when unset or
    unparsable.  The conventional default for every [--jobs] knob. *)

val try_map : t -> shards:int -> (int -> 'a) -> ('a, exn) result array
(** Run every shard to completion — a raising shard is captured as
    [Error] without cancelling the others — and return the outcomes in
    shard-index order.  Observability deltas of {e all} shards
    (including failed ones, whose partial journals matter for post
    mortems) are merged into the caller in index order. *)

val map_reduce :
  t -> shards:int -> map:(int -> 'a) -> init:'b -> reduce:('b -> 'a -> 'b) -> 'b
(** [map_reduce p ~shards ~map ~init ~reduce] folds [reduce] over the
    shard results in index order ([reduce (... (reduce init (map 0))) (map 1) ...]).
    [reduce] always runs in the calling domain, so it may render,
    accumulate into non-thread-safe structures, or report progress.

    On a sequential pool, [map] and [reduce] alternate shard by shard.
    On a parallel pool every shard completes first; if any raised, the
    exception of the {e lowest} shard index is re-raised (after all
    observability deltas were merged, so e.g. a
    {!Gripps_engine.Sim.Horizon_exceeded} from inside a shard still
    surfaces its partial journal) and [reduce] is not called. *)

val map_list : t -> shards:int -> (int -> 'a) -> 'a list
(** [map_reduce] specialized to collecting the results in index order. *)
