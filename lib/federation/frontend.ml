open Gripps_model

type policy = Srpt | Greedy | Load | Locality

let all_policies = [ Srpt; Greedy; Load; Locality ]

let policy_name = function
  | Srpt -> "srpt"
  | Greedy -> "greedy"
  | Load -> "load"
  | Locality -> "locality"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "srpt" -> Some Srpt
  | "greedy" | "mct" -> Some Greedy
  | "load" -> Some Load
  | "locality" -> Some Locality
  | _ -> None

type outcome = {
  assignment : int array;
  dispatch : int array;
  release : float array;
  migrations : int;
}

(* The fluid estimate: per shard, the dispatched-but-unfinished jobs as
   a FIFO queue of (global id, remaining estimate), front first.  The
   head is the job in service; between arrivals the queue drains at the
   shard's aggregate speed.  Only the head can be partially served, so
   every queued job behind it is unstarted and carries its full size. *)
type fluid = { mutable queue : (int * float) list }

let backlog f = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 f.queue

let drain f ~capacity =
  let rec go cap = function
    | [] -> []
    | (gid, r) :: rest ->
      if r <= cap then go (cap -. r) rest
      else (gid, r -. cap) :: rest
  in
  if capacity > 0.0 then f.queue <- go capacity f.queue

let append f gid w = f.queue <- f.queue @ [ (gid, w) ]

let remove f gid =
  f.queue <- List.filter (fun (g, _) -> g <> gid) f.queue

let dispatch ?(migrate = false) ~policy shards inst =
  let k = Array.length shards in
  let n = Instance.num_jobs inst in
  let fluids = Array.init k (fun _ -> { queue = [] }) in
  let norm s = backlog fluids.(s) /. Shard.speed shards.(s) in
  let assignment = Array.make n (-1) in
  let dispatch_shard = Array.make n (-1) in
  let release = Array.make n nan in
  (* Lowest index wins ties: strict [<] on the candidate's key. *)
  let argmin ~eligible key =
    let best = ref (-1) and best_key = ref (infinity, infinity) in
    for s = 0 to k - 1 do
      if eligible s then begin
        let key_s = key s in
        if !best < 0 || compare key_s !best_key < 0 then begin
          best := s;
          best_key := key_s
        end
      end
    done;
    !best
  in
  let route (j : Job.t) =
    let db = j.Job.databank in
    let eligible s = Shard.hosts shards.(s) db in
    let s =
      match policy with
      | Load -> argmin ~eligible (fun s -> (norm s, 0.0))
      | Greedy ->
        argmin ~eligible (fun s ->
            (norm s +. (j.Job.size /. Shard.db_speed shards.(s) db), 0.0))
      | Srpt ->
        argmin ~eligible (fun s ->
            let smaller =
              List.fold_left
                (fun acc (_, r) -> if r <= j.Job.size then acc + 1 else acc)
                0 fluids.(s).queue
            in
            (float_of_int smaller, norm s))
      | Locality ->
        argmin ~eligible (fun s -> (-.Shard.db_speed shards.(s) db, norm s))
    in
    (* The partition covers every machine, so some shard hosts [db]. *)
    assert (s >= 0);
    s
  in
  (* One rebalancing move: the most recently dispatched unstarted job of
     the most loaded shard goes to the least loaded shard hosting its
     databank, iff that strictly lowers the pair's normalized-backlog
     maximum.  Returns true when a move happened. *)
  let rebalance_step now =
    let a = ref 0 and b = ref 0 in
    for s = k - 1 downto 0 do
      if norm s >= norm !a then a := s;
      if norm s <= norm !b then b := s
    done;
    let a = !a and b = !b in
    if a = b then false
    else begin
      let unstarted =
        match fluids.(a).queue with [] | [ _ ] -> [] | _ :: rest -> rest
      in
      let candidate =
        List.fold_left
          (fun acc (gid, r) ->
            let db = (Instance.job inst gid).Job.databank in
            if Shard.hosts shards.(b) db then Some (gid, r) else acc)
          None unstarted
      in
      match candidate with
      | None -> false
      | Some (gid, w) ->
        let old_max = Float.max (norm a) (norm b) in
        let new_a = (backlog fluids.(a) -. w) /. Shard.speed shards.(a) in
        let new_b = (backlog fluids.(b) +. w) /. Shard.speed shards.(b) in
        if Float.max new_a new_b < old_max then begin
          remove fluids.(a) gid;
          append fluids.(b) gid w;
          assignment.(gid) <- b;
          release.(gid) <- now;
          true
        end
        else false
    end
  in
  let rebalance now =
    (* Each move strictly lowers the most loaded shard involved, so the
       loop terminates; the cap is a belt-and-braces bound. *)
    let cap = ref (n + k) in
    while !cap > 0 && rebalance_step now do
      decr cap
    done
  in
  let last = ref 0.0 in
  Array.iter
    (fun (j : Job.t) ->
      let now = j.Job.release in
      let dt = now -. !last in
      if dt > 0.0 then
        Array.iteri
          (fun s f -> drain f ~capacity:(Shard.speed shards.(s) *. dt))
          fluids;
      last := now;
      let s = route j in
      append fluids.(s) j.Job.id j.Job.size;
      assignment.(j.Job.id) <- s;
      dispatch_shard.(j.Job.id) <- s;
      release.(j.Job.id) <- now;
      if migrate && k > 1 then rebalance now)
    (Instance.jobs inst);
  let migrations = ref 0 in
  for j = 0 to n - 1 do
    if assignment.(j) <> dispatch_shard.(j) then incr migrations
  done;
  { assignment; dispatch = dispatch_shard; release; migrations = !migrations }
