open Gripps_model
open Gripps_engine
module Pool = Gripps_parallel.Pool

type report = {
  shards : Shard.t array;
  policy : Frontend.policy;
  migrate : bool;
  scheduler : string;
  outcome : Frontend.outcome;
  shard_jobs : int array;
  shard_reports : Sim.report array;
  completion : float array;
  metrics : Metrics.t;
  lost : float array;
  replans : int;
  events : int;
  journal : Gripps_obs.Obs.Journal.event list;
}

let run ?(pool = Pool.sequential) ?(faults = []) ?loss ?horizon
    ?(migrate = false) ?(policy = Frontend.Srpt) ~shards:k ~scheduler inst =
  let shards = Shard.partition (Instance.platform inst) ~shards:k in
  let outcome = Frontend.dispatch ~migrate ~policy shards inst in
  let n = Instance.num_jobs inst in
  (* Routed jobs per shard, ascending global id. *)
  let routed = Array.make k [] in
  for j = n - 1 downto 0 do
    let s = outcome.Frontend.assignment.(j) in
    routed.(s) <- (j, outcome.Frontend.release.(j)) :: routed.(s)
  done;
  let subs =
    Array.init k (fun s -> Shard.sub_instance shards.(s) inst routed.(s))
  in
  (* Each shard's simulation is a pure function of its sub-instance and
     projected fault slice; the pool merges results (and observability
     deltas) in shard-index order, so the merge below is deterministic at
     any domain count. *)
  let shard_reports =
    Array.of_list
      (Pool.map_list pool ~shards:k (fun s ->
           let sub, _ = subs.(s) in
           let faults = Shard.project_faults shards.(s) faults in
           Sim.run_report ?horizon ~faults ?loss scheduler sub))
  in
  let completion = Array.make n nan in
  let completed = Array.make n false in
  let lost = Array.make n 0.0 in
  for s = 0 to k - 1 do
    let _, map = subs.(s) in
    let r = shard_reports.(s) in
    Array.iteri
      (fun l c ->
        let g = map.(l) in
        (match c with
        | Some c ->
          completion.(g) <- c;
          completed.(g) <- true
        | None -> ());
        lost.(g) <- r.Sim.lost.(l))
      r.Sim.schedule.Schedule.completion
  done;
  for j = 0 to n - 1 do
    if not completed.(j) then raise (Metrics.Incomplete j)
  done;
  let metrics = Metrics.of_completion inst ~completion in
  let journal =
    List.concat_map
      (fun (r : Sim.report) -> r.Sim.journal)
      (Array.to_list shard_reports)
  in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 shard_reports in
  {
    shards;
    policy;
    migrate;
    scheduler = scheduler.Sim.name;
    outcome;
    shard_jobs = Array.map (fun (sub, _) -> Instance.num_jobs sub) subs;
    shard_reports;
    completion;
    metrics;
    lost;
    replans = sum (fun r -> r.Sim.replans);
    events = sum (fun r -> r.Sim.events);
    journal;
  }

let stretch_ratios ~baseline r =
  let ratio v b = if b > 0.0 then v /. b else 1.0 in
  ( ratio r.metrics.Metrics.max_stretch baseline.Metrics.max_stretch,
    ratio r.metrics.Metrics.sum_stretch baseline.Metrics.sum_stretch )
