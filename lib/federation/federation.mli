(** Multi-cluster federation: sharded platforms behind a routing
    front-end.

    A federated run composes the two halves of this library:

    + {!Shard.partition} splits the fleet into [K] disjoint
      sub-platforms, each with its own scheduler instance;
    + {!Frontend.dispatch} routes every job at release time (and
      optionally rebalances unstarted work at arrival boundaries);
    + each shard then simulates {e its own} scheduling problem through
      the unmodified {!Gripps_engine.Sim} engine — concurrently, one
      shard per domain-pool slot.

    {b Determinism.}  Routing is a pure function of the instance
    (see {!Frontend}), each shard's simulation is a pure function of its
    sub-instance, and shard results, journals and observability deltas
    are merged in shard-index order by {!Gripps_parallel.Pool} — so a
    federated report is byte-identical at any [--jobs] level, and a
    1-shard federation is byte-identical (metrics, completion vector,
    journal) to the plain single-aggregate run of the same scheduler.

    {b Metrics.}  Global objectives are evaluated on the merged
    completion vector against the {e original} instance — original
    release dates, original job ids — through the one
    {!Gripps_model.Metrics.eval} layer, so stretches account for any
    delay the front-end introduced (a migrated job's waiting time counts
    against the federation, not for it). *)

open Gripps_model
open Gripps_engine

type report = {
  shards : Shard.t array;
  policy : Frontend.policy;
  migrate : bool;
  scheduler : string;
  outcome : Frontend.outcome;    (** routing decisions, global ids *)
  shard_jobs : int array;        (** jobs finally assigned per shard *)
  shard_reports : Sim.report array;
      (** per-shard engine reports (shard-local job/machine ids) *)
  completion : float array;      (** merged completion dates, global ids *)
  metrics : Metrics.t;           (** of the merged completion vector *)
  lost : float array;            (** merged crash-lost Mflop, global ids *)
  replans : int;                 (** total scheduler invocations *)
  events : int;                  (** total simulation events *)
  journal : Gripps_obs.Obs.Journal.event list;
      (** shard-ordered concatenation of the per-shard journals (empty
          unless the observability level is [Events]) *)
}

val run :
  ?pool:Gripps_parallel.Pool.t ->
  ?faults:Fault.trace ->
  ?loss:Fault.loss ->
  ?horizon:float ->
  ?migrate:bool ->
  ?policy:Frontend.policy ->
  shards:int ->
  scheduler:Sim.scheduler ->
  Instance.t ->
  report
(** Federate the instance across [shards] sub-platforms.  [policy]
    defaults to {!Frontend.Srpt} (the Fox–Moseley baseline), [migrate]
    to [false], [pool] to sequential (shards then run inline, still in
    shard order).  [faults] is a {e global} fault trace; each shard
    consumes its projection ({!Shard.project_faults}).  [horizon] is the
    per-shard simulation abort guard, as in {!Sim.run_report}.
    @raise Invalid_argument unless [1 <= shards <= num_machines].
    @raise Gripps_model.Metrics.Incomplete when some job never completed
    (only possible if a shard simulation was aborted). *)

val stretch_ratios : baseline:Metrics.t -> report -> float * float
(** [(max-stretch ratio, sum-stretch ratio)] of the federated run vs a
    single-aggregate baseline on the same instance — the federation gap.
    Zero-spread degenerate baselines normalize to 1. *)
