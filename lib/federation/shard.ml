open Gripps_model

type t = {
  index : int;
  machines : int array;
  platform : Platform.t;
}

let partition platform ~shards =
  let m = Platform.num_machines platform in
  if shards < 1 || shards > m then
    invalid_arg
      (Printf.sprintf "Shard.partition: shards must be in [1, %d], got %d" m
         shards);
  let nd = Platform.num_databanks platform in
  Array.init shards (fun k ->
      let lo = k * m / shards and hi = (k + 1) * m / shards in
      let machines = Array.init (hi - lo) (fun i -> lo + i) in
      let subs =
        Array.to_list
          (Array.mapi
             (fun i g ->
               { (Platform.machine platform g) with Machine.id = i })
             machines)
      in
      { index = k;
        machines;
        platform = Platform.make ~machines:subs ~num_databanks:nd })

let num_machines t = Array.length t.machines
let speed t = Platform.total_speed t.platform

let hosts t d = Platform.hosts_of t.platform d <> []
let db_speed t d = Platform.speed_for t.platform d

let project_faults t trace =
  (* Global machine id -> local slot, or -1 when the machine is not
     ours.  Shards own contiguous slices, but go through the array so
     the translation stays correct if the partition policy changes. *)
  let local = Hashtbl.create (Array.length t.machines) in
  Array.iteri (fun i g -> Hashtbl.replace local g i) t.machines;
  List.filter_map
    (fun (e : Gripps_engine.Fault.edge) ->
      match Hashtbl.find_opt local e.Gripps_engine.Fault.machine with
      | Some i -> Some { e with Gripps_engine.Fault.machine = i }
      | None -> None)
    trace

let sub_instance t inst routed =
  let jobs =
    List.map
      (fun (gid, release) ->
        let j = Instance.job inst gid in
        if not (hosts t j.Job.databank) then
          invalid_arg
            (Printf.sprintf
               "Shard.sub_instance: job %d needs databank %d, absent from \
                shard %d"
               gid j.Job.databank t.index);
        { j with Job.release })
      routed
  in
  (* Instance.make sorts by (release, id) and renumbers; jobs still carry
     their global ids here, so sorting the same way yields the
     local -> global map. *)
  let sorted = List.sort Job.compare_by_release jobs in
  let map = Array.of_list (List.map (fun (j : Job.t) -> j.Job.id) sorted) in
  (Instance.make ~platform:t.platform ~jobs, map)
