(** One shard of a federated platform.

    The paper's Lemma 1 collapses a whole platform into one aggregate
    processor; federation scales {e out} instead: the machine fleet is
    partitioned into [K] disjoint sub-platforms, each running its own
    scheduler instance.  A shard owns a contiguous slice of the global
    machine array, renumbered to a well-formed {!Gripps_model.Platform.t}
    of its own (machine ids [0 .. m_s-1]), plus the index maps needed to
    translate jobs, machines and fault edges between the global and the
    shard-local coordinate frames.

    Databank replication is preserved verbatim: every shard machine keeps
    its full-length databank vector (and its downtime windows), so a
    shard hosts exactly the databanks its machines replicate.  A job can
    only be routed to a shard hosting its databank — the {!hosts}
    predicate is the eligibility constraint every {!Frontend} policy
    routes under. *)

open Gripps_model

type t = {
  index : int;             (** shard id, [0 .. K-1] *)
  machines : int array;    (** global machine ids owned, ascending *)
  platform : Platform.t;   (** the renumbered sub-platform *)
}

val partition : Platform.t -> shards:int -> t array
(** Split the fleet into [shards] contiguous, balanced slices (shard [k]
    owns global machines [⌊k·m/K⌋ .. ⌊(k+1)·m/K⌋-1]).  With one shard the
    sub-platform is structurally identical to the input — a 1-shard
    federation degenerates to the single-aggregate platform.
    @raise Invalid_argument unless [1 <= shards <= num_machines]. *)

val num_machines : t -> int
val speed : t -> float
(** Aggregate speed of the shard — its Lemma 1 equivalent processor. *)

val hosts : t -> int -> bool
(** Does some machine of the shard replicate the given databank? *)

val db_speed : t -> int -> float
(** Aggregate speed of the shard machines replicating the databank: the
    shard's peak processing rate for a job needing it (0 when the shard
    does not host it). *)

val project_faults : t -> Gripps_engine.Fault.trace -> Gripps_engine.Fault.trace
(** The slice of a global fault trace that hits this shard's machines,
    with machine ids translated to shard-local — the trace a shard's own
    simulation consumes. *)

val sub_instance :
  t -> Instance.t -> (int * float) list -> Instance.t * int array
(** [sub_instance shard inst routed] builds the shard's own scheduling
    problem from the routed jobs: [(global job id, effective release)]
    pairs, where the effective release is the job's original release for
    a directly-dispatched job and the migration date for a migrated one
    (a shard can never see work before the front-end handed it over).
    Sizes, databanks and user tags are preserved.  Returns the
    sub-instance (jobs renumbered [0 .. n_s-1] in effective-release
    order) and the local→global id map.
    @raise Invalid_argument when a routed job's databank is not hosted
    by the shard (the front-end must respect {!hosts}). *)
