(** The routing front-end of a federated platform.

    Jobs arrive at the front-end in release order and are dispatched to a
    shard {e at release time} — immediate dispatch, the information model
    of Fox & Moseley's {e Online Scheduling on Identical Machines using
    SRPT}: once routed, a job is the target shard's problem (its local
    scheduler decides everything else).

    The front-end never inspects shard simulations.  It maintains its own
    {e fluid estimate} of each shard's state: dispatched jobs queue in
    FIFO order and drain at the shard's aggregate speed between arrivals
    (Lemma 1 applied per shard, ignoring databank placement inside the
    shard).  All routing policies read only this estimate, so dispatch is
    a pure function of the instance — deterministic, replayable, and
    independent of how the shard simulations are later scheduled across
    domains.

    {b Eligibility.}  Every policy routes only among shards hosting the
    job's databank ({!Shard.hosts}); the partition covers every machine,
    so at least one shard is always eligible.  Ties break toward the
    lowest shard index.

    {b Migration.}  With [~migrate:true] every arrival is also a replan
    boundary at which the front-end rebalances {e unstarted} work: while
    moving the most recently dispatched unstarted job of the most loaded
    shard to the least loaded eligible shard strictly reduces the pair's
    maximum normalized backlog, the job is re-routed.  A job is unstarted
    while the fluid FIFO head has not reached it, so its full size moves.
    The migrated job's effective release becomes the migration date — the
    receiving shard cannot see work before the hand-over, making
    migration conservative (it can only delay a job's availability, never
    teleport progress). *)

(** How the front-end picks among eligible shards.  Normalized backlog =
    (estimated unfinished dispatched work) / (aggregate shard speed). *)
type policy =
  | Srpt
      (** Immediate-dispatch SRPT (the Fox–Moseley baseline, counting
          rule in the spirit of Avrahami–Azar): route to the shard whose
          fluid queue holds the fewest jobs of remaining estimate at most
          the new job's size; each shard then runs SRPT (or any registry
          scheduler) locally.  Ties by normalized backlog, then index. *)
  | Greedy
      (** MCT-style: minimize the estimated completion time of the new
          job — normalized backlog plus [size / db_speed]. *)
  | Load  (** least pending work: minimize normalized backlog. *)
  | Locality
      (** replication-aware: maximize the shard's aggregate speed for
          the job's databank; ties by normalized backlog, then index. *)

val all_policies : policy list
val policy_name : policy -> string
(** ["srpt"], ["greedy"], ["load"], ["locality"] — the CLI spellings. *)

val policy_of_string : string -> policy option

type outcome = {
  assignment : int array;    (** final shard per global job id *)
  dispatch : int array;      (** shard of the initial immediate dispatch *)
  release : float array;     (** effective release per global job id *)
  migrations : int;          (** jobs whose final shard differs *)
}

val dispatch :
  ?migrate:bool ->
  policy:policy ->
  Shard.t array ->
  Gripps_model.Instance.t ->
  outcome
(** Walk the instance's jobs in release order, routing each under the
    policy (and rebalancing at each boundary when [migrate], default
    false).  Deterministic: the outcome depends only on the arguments. *)
