(** Maximum flow (Dinic's algorithm), functorized over an ordered field.

    System (1) of the paper — deadline feasibility of divisible jobs on
    machines with restricted availability — is a transportation problem;
    instantiated at {!Gripps_numeric.Rat} this module decides it exactly.
    Dinic performs O(V²E) augmentations regardless of capacity values, so
    exact rational capacities are safe.

    The graph keeps its residual state between calls, which enables the
    warm-start protocol used by the parametric solver: perturb a few
    capacities with {!update_capacity} (each call leaves a valid flow),
    then resume with {!max_flow}[ ~warm:true] instead of recomputing from
    zero. *)

module Make (F : Gripps_numeric.Field.ORDERED_FIELD) : sig
  type t

  val create : n:int -> t
  (** Graph with vertices [0 .. n-1]. *)

  val num_vertices : t -> int

  val add_edge : t -> src:int -> dst:int -> cap:F.t -> int
  (** Adds a directed edge and its residual twin; returns an edge handle
      for {!flow_on} / {!capacity_on}.  The twin of handle [e] lives at
      [e lxor 1].
      @raise Invalid_argument on out-of-range vertices (the message names
      the offending endpoint) or negative capacity. *)

  val set_capacity : t -> int -> F.t -> unit
  (** Reset an edge's capacity (its flow is reset to zero as well, so the
      network's flow is only meaningful again after a cold {!max_flow}).
      @raise Invalid_argument on a negative capacity or a handle that is
      out of range or a residual twin. *)

  val update_capacity : t -> source:int -> sink:int -> int -> F.t -> unit
  (** Warm capacity update: set edge [e]'s capacity while preserving a
      valid flow.  If the current flow on [e] exceeds the new capacity,
      the excess is rerouted through the residual network when possible
      and otherwise cancelled back towards [source]/[sink], so the graph
      always holds a feasible (not necessarily maximum) flow afterwards.
      @raise Invalid_argument as {!set_capacity}. *)

  val scale_capacities : t -> F.t -> unit
  (** Multiply every capacity (and the flow riding on it) by a positive
      factor.  Used to refine the integer grid of scaled-capacity graphs
      without discarding the current flow.
      @raise Invalid_argument on a non-positive factor. *)

  val max_flow : ?warm:bool -> t -> source:int -> sink:int -> F.t
  (** Computes a maximum flow; the flow decomposition is then readable via
      {!flow_on}.  With [~warm:true] the current residual state (as left
      by a previous run plus {!update_capacity} calls) is taken as the
      starting flow and only the missing augmentations run; the default
      [false] recomputes from scratch.  Both return the total flow
      value. *)

  val flow_on : t -> int -> F.t
  val capacity_on : t -> int -> F.t

  val flow_value : t -> source:int -> F.t
  (** Net flow currently leaving [source] (without recomputing anything). *)

  val min_cut : t -> source:int -> bool array
  (** After {!max_flow}: characteristic vector of the source side of a
      minimum cut (vertices reachable in the residual graph). *)

  val augmentations : t -> int
  (** Cumulative number of augmenting paths pushed since [create]
      (including warm-start repair walks). *)
end
