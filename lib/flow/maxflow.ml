(* Dinic's algorithm over an arbitrary ordered field.  Edges are stored in
   a flat array with the residual twin of edge e at index (e lxor 1); each
   vertex keeps the list of incident edge indices.

   Warm starts: the graph retains its residual state between runs, so a
   caller that only perturbs a few capacities ([update_capacity]) can ask
   [max_flow ~warm:true] to resume augmenting from the previous flow
   instead of re-running Dinic from zero. *)

(* Fleet-wide augmentation counter (all field instantiations, all graphs):
   the per-graph [augmentations] below drives warm-start accounting, this
   one feeds the shared observability registry. *)
let c_augmentations = Gripps_obs.Obs.Counter.make "flow.augmentations"

module Make (F : Gripps_numeric.Field.ORDERED_FIELD) = struct
  module Vec = struct
    include Gripps_collections.Vec

    let size = length
  end

  type t = {
    n : int;
    adj : int list array;  (* edge indices leaving each vertex, reversed *)
    dst : int Vec.t;
    cap : F.t Vec.t;   (* residual capacity *)
    ocap : F.t Vec.t;  (* original capacity *)
    mutable level : int array;
    mutable iter : int list array;
    mutable augmentations : int;
  }

  let create ~n =
    { n; adj = Array.make n []; dst = Vec.create (); cap = Vec.create ();
      ocap = Vec.create (); level = [||]; iter = [||]; augmentations = 0 }

  let num_vertices g = g.n
  let augmentations g = g.augmentations

  let check_vertex g ~fn ~role v =
    if v < 0 || v >= g.n then
      invalid_arg
        (Printf.sprintf "Maxflow.%s: %s vertex %d out of range [0, %d)" fn role
           v g.n)

  let add_edge g ~src ~dst ~cap =
    check_vertex g ~fn:"add_edge" ~role:"src" src;
    check_vertex g ~fn:"add_edge" ~role:"dst" dst;
    if F.sign cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
    let e = Vec.size g.dst in
    Vec.push g.dst dst;
    Vec.push g.cap cap;
    Vec.push g.ocap cap;
    g.adj.(src) <- e :: g.adj.(src);
    Vec.push g.dst src;
    Vec.push g.cap F.zero;
    Vec.push g.ocap F.zero;
    g.adj.(dst) <- (e + 1) :: g.adj.(dst);
    e

  let check_edge g ~fn e =
    if e < 0 || e >= Vec.size g.dst then
      invalid_arg
        (Printf.sprintf "Maxflow.%s: edge handle %d out of range [0, %d)" fn e
           (Vec.size g.dst));
    if e land 1 = 1 then
      invalid_arg
        (Printf.sprintf
           "Maxflow.%s: %d is a residual twin, not an edge handle" fn e)

  let set_capacity g e cap =
    check_edge g ~fn:"set_capacity" e;
    if F.sign cap < 0 then invalid_arg "Maxflow.set_capacity: negative capacity";
    Vec.set g.cap e cap;
    Vec.set g.ocap e cap;
    Vec.set g.cap (e lxor 1) F.zero;
    Vec.set g.ocap (e lxor 1) F.zero

  let reset_flows g =
    for e = 0 to Vec.size g.cap - 1 do
      Vec.set g.cap e (Vec.get g.ocap e)
    done

  let flow_on g e = Vec.get g.cap (e lxor 1)
  let capacity_on g e = Vec.get g.ocap e

  let flow_value g ~source =
    (* Net flow leaving [source]: flow on original edges out of it, minus
       flow on original edges into it (seen here as residual twins). *)
    List.fold_left
      (fun acc e ->
        if e land 1 = 0 then F.add acc (flow_on g e)
        else F.sub acc (Vec.get g.cap e))
      F.zero g.adj.(source)

  let bfs g ~source ~sink =
    let level = Array.make g.n (-1) in
    level.(source) <- 0;
    let q = Queue.create () in
    Queue.push source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          let w = Vec.get g.dst e in
          if level.(w) < 0 && F.sign (Vec.get g.cap e) > 0 then begin
            level.(w) <- level.(u) + 1;
            Queue.push w q
          end)
        g.adj.(u)
    done;
    g.level <- level;
    level.(sink) >= 0

  (* Find an augmenting path in the level graph and push [limit] along it. *)
  let rec dfs g u ~sink limit =
    if u = sink then limit
    else begin
      let rec try_edges () =
        match g.iter.(u) with
        | [] -> F.zero
        | e :: rest ->
          let w = Vec.get g.dst e in
          let c = Vec.get g.cap e in
          if F.sign c > 0 && g.level.(w) = g.level.(u) + 1 then begin
            let pushed = dfs g w ~sink (F.min limit c) in
            if F.sign pushed > 0 then begin
              Vec.set g.cap e (F.sub (Vec.get g.cap e) pushed);
              Vec.set g.cap (e lxor 1) (F.add (Vec.get g.cap (e lxor 1)) pushed);
              pushed
            end
            else begin
              g.iter.(u) <- rest;
              try_edges ()
            end
          end
          else begin
            g.iter.(u) <- rest;
            try_edges ()
          end
      in
      try_edges ()
    end

  let max_flow ?(warm = false) g ~source ~sink =
    if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
    if not warm then reset_flows g;
    let total = ref (if warm then flow_value g ~source else F.zero) in
    (* An upper bound on any single augmentation: sum of source capacities. *)
    let limit =
      List.fold_left (fun acc e -> F.add acc (Vec.get g.ocap e)) F.zero g.adj.(source)
    in
    while bfs g ~source ~sink do
      g.iter <- Array.copy g.adj;
      let continue = ref true in
      while !continue do
        let pushed = dfs g source ~sink limit in
        if F.sign pushed > 0 then begin
          total := F.add !total pushed;
          g.augmentations <- g.augmentations + 1;
          Gripps_obs.Obs.Counter.incr c_augmentations
        end
        else continue := false
      done
    done;
    !total

  (* One bounded augmentation pass over the raw residual graph (no level
     structure: these repair walks move tiny amounts between two fixed
     vertices, so plain DFS is cheaper than Dinic's phases). *)
  let augment_limited g ~src ~dst ~limit =
    if src = dst then limit
    else begin
      let total = ref F.zero in
      let continue = ref true in
      while !continue && F.sign (F.sub limit !total) > 0 do
        let visited = Array.make g.n false in
        let rec walk u lim =
          if u = dst then lim
          else begin
            visited.(u) <- true;
            let rec try_edges = function
              | [] -> F.zero
              | e :: rest ->
                let w = Vec.get g.dst e in
                let c = Vec.get g.cap e in
                if (not visited.(w)) && F.sign c > 0 then begin
                  let pushed = walk w (F.min lim c) in
                  if F.sign pushed > 0 then begin
                    Vec.set g.cap e (F.sub (Vec.get g.cap e) pushed);
                    Vec.set g.cap (e lxor 1)
                      (F.add (Vec.get g.cap (e lxor 1)) pushed);
                    pushed
                  end
                  else try_edges rest
                end
                else try_edges rest
            in
            try_edges g.adj.(u)
          end
        in
        let pushed = walk src (F.sub limit !total) in
        if F.sign pushed > 0 then begin
          total := F.add !total pushed;
          g.augmentations <- g.augmentations + 1;
          Gripps_obs.Obs.Counter.incr c_augmentations
        end
        else continue := false
      done;
      !total
    end

  let update_capacity g ~source ~sink e cap =
    check_edge g ~fn:"update_capacity" e;
    if F.sign cap < 0 then
      invalid_arg "Maxflow.update_capacity: negative capacity";
    let f = flow_on g e in
    Vec.set g.ocap e cap;
    if F.compare f cap <= 0 then
      (* The current flow still fits: just adjust the residual headroom. *)
      Vec.set g.cap e (F.sub cap f)
    else begin
      (* The flow exceeds the new capacity.  Clamp it to [cap]; this
         strands [excess] units of inflow at the edge's tail u and starves
         its head v by the same amount.  Repair the imbalance entirely
         inside the residual network:
           1. reroute u -> v along other residual paths (flow value kept);
           2. any remainder is cancelled back — u's surplus to [source]
              and v's deficit from [sink] — shrinking the flow value.
         Flow decomposition guarantees step 2 always completes: surplus
         not reroutable to v must have arrived from the source side, and
         symmetrically for v's missing inflow. *)
      let excess = F.sub f cap in
      Vec.set g.cap e F.zero;
      Vec.set g.cap (e lxor 1) cap;
      let u = Vec.get g.dst (e lxor 1) in
      let v = Vec.get g.dst e in
      let moved = augment_limited g ~src:u ~dst:v ~limit:excess in
      let rest = F.sub excess moved in
      if F.sign rest > 0 then begin
        if u <> source && u <> sink then begin
          let cancelled = augment_limited g ~src:u ~dst:source ~limit:rest in
          if F.sign (F.sub rest cancelled) <> 0 then
            failwith "Maxflow.update_capacity: could not cancel tail surplus"
        end;
        if v <> source && v <> sink then begin
          let refilled = augment_limited g ~src:sink ~dst:v ~limit:rest in
          if F.sign (F.sub rest refilled) <> 0 then
            failwith "Maxflow.update_capacity: could not cancel head deficit"
        end
      end
    end

  let scale_capacities g k =
    if F.sign k <= 0 then
      invalid_arg "Maxflow.scale_capacities: scale must be positive";
    for e = 0 to Vec.size g.cap - 1 do
      Vec.set g.cap e (F.mul (Vec.get g.cap e) k);
      Vec.set g.ocap e (F.mul (Vec.get g.ocap e) k)
    done

  let min_cut g ~source =
    let reachable = Array.make g.n false in
    reachable.(source) <- true;
    let q = Queue.create () in
    Queue.push source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          let w = Vec.get g.dst e in
          if (not reachable.(w)) && F.sign (Vec.get g.cap e) > 0 then begin
            reachable.(w) <- true;
            Queue.push w q
          end)
        g.adj.(u)
    done;
    reachable
  end
