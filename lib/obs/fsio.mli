(** Crash-safe small-file IO shared by checkpoints and benchmark
    artifacts.

    A tracked artifact (BENCH_*.json) or a daemon checkpoint must never
    be observable half-written: {!write_atomic} stages the content in a
    temporary file in the same directory, fsyncs it, and renames it over
    the destination — on POSIX the rename is atomic, so a reader (or a
    resumed daemon) sees either the old complete file or the new one,
    never a torn mix. *)

val write_atomic : path:string -> string -> unit
(** Write [content] to [path] via temp-file + fsync + atomic rename.
    @raise Sys_error / [Unix.Unix_error] on IO failure (the temp file is
    removed on a failed attempt). *)

val read_file : string -> string
(** Whole-file read (binary). @raise Sys_error on unreadable files. *)

val fnv64 : string -> string
(** FNV-1a 64-bit checksum, as 16 lowercase hex digits — the integrity
    seal of checkpoint payloads.  Not cryptographic: it detects torn or
    bit-rotted files, not adversaries. *)
