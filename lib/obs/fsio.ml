(* Atomic small-file writes and a cheap integrity checksum.

   The rename trick requires the temp file to live in the destination
   directory (rename across filesystems is not atomic, and not a rename);
   the pid suffix keeps concurrent writers from clobbering each other's
   staging files. *)

let write_atomic ~path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     let oc = Unix.out_channel_of_descr fd in
     output_string oc content;
     flush oc;
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Unix.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* FNV-1a over bytes; OCaml's native int is 63-bit so the fold runs on
   Int64 and renders the full 64-bit digest. *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h
