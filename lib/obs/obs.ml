(* Observability singleton: levels, counters, spans, event journal.

   Everything here is deliberately dependency-free (only [unix] for the
   clock) so that any layer of the system — numeric, flow, engine,
   experiments — can report through it without dependency cycles. *)

type level = Counters | Spans | Events

let level_rank = function Counters -> 0 | Spans -> 1 | Events -> 2
let current_level = ref Counters
let level () = !current_level
let set_level l = current_level := l

let with_level l f =
  let saved = !current_level in
  current_level := l;
  Fun.protect ~finally:(fun () -> current_level := saved) f

let spans_on () = level_rank !current_level >= 1
let events_on () = level_rank !current_level >= 2

let clock = ref Unix.gettimeofday
let set_clock c = clock := c

(* ---- counters --------------------------------------------------------- *)

module Counter = struct
  type t = { name : string; mutable v : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { name; v = 0 } in
      Hashtbl.replace registry name c;
      c

  let incr c = c.v <- c.v + 1
  let add c k = c.v <- c.v + k
  let value c = c.v
  let reset c = c.v <- 0
  let name c = c.name
end

let polls : (string, unit -> int) Hashtbl.t = Hashtbl.create 8
let register_poll name f = Hashtbl.replace polls name f

let reset_hooks : (unit -> unit) list ref = ref []
let register_reset f = reset_hooks := f :: !reset_hooks

let counters () =
  let acc = ref [] in
  Hashtbl.iter (fun name c -> acc := (name, Counter.value c) :: !acc) Counter.registry;
  Hashtbl.iter (fun name f -> acc := (name, f ()) :: !acc) polls;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let counter_value name =
  match Hashtbl.find_opt Counter.registry name with
  | Some c -> Some (Counter.value c)
  | None -> Option.map (fun f -> f ()) (Hashtbl.find_opt polls name)

let reset_counters () =
  Hashtbl.iter (fun _ c -> Counter.reset c) Counter.registry;
  List.iter (fun f -> f ()) !reset_hooks

(* ---- journal (type first: spans record into it) ----------------------- *)

module Journal_t = struct
  type sim_kind = Arrival | Completion | Boundary | Failure | Recovery

  type alloc = (int * (int * float) list) list

  type event =
    | Run_start of { scheduler : string; jobs : int; machines : int }
    | Sim_event of { time : float; kind : sim_kind; subject : int }
    | Replan of {
        time : float;
        scheduler : string;
        allocation : alloc;
        horizon : float option;
      }
    | Segment of { start_time : float; end_time : float; shares : alloc }
    | Probe of { pipeline : string; stretch : float; feasible : bool }
    | Span_closed of {
        name : string;
        depth : int;
        start_s : float;
        dur_s : float;
      }
    | Note of { key : string; value : string }
    | Run_end of { time : float; completed : int }
end

open Journal_t

(* Growable array store; a list would allocate a cons per event on the
   hot path and reverse on every read. *)
let dummy_event = Note { key = ""; value = "" }
let jbuf = ref (Array.make 256 dummy_event)
let jlen = ref 0
let jsink : (event -> unit) option ref = ref None

let journal_push e =
  if !jlen = Array.length !jbuf then begin
    let bigger = Array.make (2 * !jlen) dummy_event in
    Array.blit !jbuf 0 bigger 0 !jlen;
    jbuf := bigger
  end;
  !jbuf.(!jlen) <- e;
  incr jlen;
  match !jsink with Some f -> f e | None -> ()

(* ---- spans ------------------------------------------------------------ *)

module Span = struct
  type agg = { mutable count : int; mutable total_s : float }

  let aggregates : (string, agg) Hashtbl.t = Hashtbl.create 16
  let depth = ref 0

  let agg_of name =
    match Hashtbl.find_opt aggregates name with
    | Some a -> a
    | None ->
      let a = { count = 0; total_s = 0.0 } in
      Hashtbl.replace aggregates name a;
      a

  let close name d t0 =
    let dur = !clock () -. t0 in
    let a = agg_of name in
    a.count <- a.count + 1;
    a.total_s <- a.total_s +. dur;
    if events_on () then
      journal_push (Span_closed { name; depth = d; start_s = t0; dur_s = dur })

  let with_ name f =
    if not (spans_on ()) then f ()
    else begin
      let d = !depth in
      depth := d + 1;
      let t0 = !clock () in
      match f () with
      | v ->
        depth := d;
        close name d t0;
        v
      | exception e ->
        depth := d;
        close name d t0;
        raise e
    end

  type summary = { name : string; count : int; total_s : float }

  let summaries () =
    Hashtbl.fold
      (fun name (a : agg) acc ->
        { name; count = a.count; total_s = a.total_s } :: acc)
      aggregates []
    |> List.sort (fun a b -> String.compare a.name b.name)

  let total name =
    match Hashtbl.find_opt aggregates name with
    | Some a -> a.total_s
    | None -> 0.0

  let total_prefix prefix =
    Hashtbl.fold
      (fun name (a : agg) acc ->
        if String.starts_with ~prefix name then acc +. a.total_s else acc)
      aggregates 0.0

  let count name =
    match Hashtbl.find_opt aggregates name with Some a -> a.count | None -> 0

  let reset () =
    Hashtbl.reset aggregates;
    depth := 0
end

(* ---- journal: API and JSONL ------------------------------------------- *)

module Journal = struct
  include Journal_t

  let on () = events_on ()
  let record e = if events_on () then journal_push e
  let set_sink s = jsink := s
  let position () = !jlen
  let since k = Array.to_list (Array.sub !jbuf k (!jlen - k))
  let events () = since 0
  let clear () = jlen := 0

  (* -- JSON writing.  17 significant digits round-trip every finite
     double; non-finite floats are encoded as null / signed sentinels. -- *)

  let add_float buf f =
    if Float.is_nan f then Buffer.add_string buf "null"
    else if f = Float.infinity then Buffer.add_string buf "1e999"
    else if f = Float.neg_infinity then Buffer.add_string buf "-1e999"
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)

  let add_string buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let add_alloc buf (a : alloc) =
    Buffer.add_char buf '[';
    List.iteri
      (fun i (m, shares) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "[%d,[" m);
        List.iteri
          (fun k (j, share) ->
            if k > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "[%d," j);
            add_float buf share;
            Buffer.add_char buf ']')
          shares;
        Buffer.add_string buf "]]")
      a;
    Buffer.add_char buf ']'

  let kind_name = function
    | Arrival -> "arrival"
    | Completion -> "completion"
    | Boundary -> "boundary"
    | Failure -> "failure"
    | Recovery -> "recovery"

  let kind_of_name = function
    | "arrival" -> Some Arrival
    | "completion" -> Some Completion
    | "boundary" -> Some Boundary
    | "failure" -> Some Failure
    | "recovery" -> Some Recovery
    | _ -> None

  let to_json e =
    let buf = Buffer.create 128 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    (match e with
     | Run_start { scheduler; jobs; machines } ->
       add "{\"type\":\"run_start\",\"scheduler\":";
       add_string buf scheduler;
       add ",\"jobs\":%d,\"machines\":%d}" jobs machines
     | Sim_event { time; kind; subject } ->
       add "{\"type\":\"event\",\"kind\":\"%s\",\"time\":" (kind_name kind);
       add_float buf time;
       add ",\"subject\":%d}" subject
     | Replan { time; scheduler; allocation; horizon } ->
       add "{\"type\":\"replan\",\"time\":";
       add_float buf time;
       add ",\"scheduler\":";
       add_string buf scheduler;
       add ",\"alloc\":";
       add_alloc buf allocation;
       add ",\"horizon\":";
       (match horizon with
        | None -> add "null"
        | Some h -> add_float buf h);
       add "}"
     | Segment { start_time; end_time; shares } ->
       add "{\"type\":\"segment\",\"start\":";
       add_float buf start_time;
       add ",\"end\":";
       add_float buf end_time;
       add ",\"shares\":";
       add_alloc buf shares;
       add "}"
     | Probe { pipeline; stretch; feasible } ->
       add "{\"type\":\"probe\",\"pipeline\":";
       add_string buf pipeline;
       add ",\"stretch\":";
       add_float buf stretch;
       add ",\"feasible\":%b}" feasible
     | Span_closed { name; depth; start_s; dur_s } ->
       add "{\"type\":\"span\",\"name\":";
       add_string buf name;
       add ",\"depth\":%d,\"start\":" depth;
       add_float buf start_s;
       add ",\"dur\":";
       add_float buf dur_s;
       add "}"
     | Note { key; value } ->
       add "{\"type\":\"note\",\"key\":";
       add_string buf key;
       add ",\"value\":";
       add_string buf value;
       add "}"
     | Run_end { time; completed } ->
       add "{\"type\":\"run_end\",\"time\":";
       add_float buf time;
       add ",\"completed\":%d}" completed);
    Buffer.contents buf

  (* -- Minimal JSON reader, sufficient for lines [to_json] emits. -- *)

  type json =
    | Jnull
    | Jbool of bool
    | Jnum of float
    | Jstr of string
    | Jlist of json list
    | Jobj of (string * json) list

  exception Parse_error

  let parse_json (s : string) : json =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise Parse_error in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c = if peek () <> c then raise Parse_error else advance () in
    let literal lit v =
      String.iter (fun c -> expect c) lit;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
             advance ();
             if !pos + 4 > n then raise Parse_error;
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex) with Failure _ -> raise Parse_error
             in
             (* Only ASCII escapes are ever emitted. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else raise Parse_error
           | _ -> raise Parse_error);
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        advance ()
      done;
      if !pos = start then raise Parse_error;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> raise Parse_error
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | 'n' -> literal "null" Jnull
      | 't' -> literal "true" (Jbool true)
      | 'f' -> literal "false" (Jbool false)
      | '"' -> Jstr (parse_string ())
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Jlist [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Jlist (List.rev !items)
        end
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Jobj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Jobj (List.rev !fields)
        end
      | _ -> parse_number () |> fun f -> Jnum f
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise Parse_error;
    v

  let jfield k = function Jobj fs -> List.assoc_opt k fs | _ -> None

  let jnum = function
    | Some (Jnum f) -> f
    | Some Jnull -> Float.nan
    | _ -> raise Parse_error

  let jint v = int_of_float (jnum v)
  let jstr = function Some (Jstr s) -> s | _ -> raise Parse_error
  let jbool = function Some (Jbool b) -> b | _ -> raise Parse_error

  let jalloc v : alloc =
    match v with
    | Some (Jlist machines) ->
      List.map
        (function
          | Jlist [ Jnum m; Jlist shares ] ->
            ( int_of_float m,
              List.map
                (function
                  | Jlist [ Jnum j; Jnum share ] -> (int_of_float j, share)
                  | _ -> raise Parse_error)
                shares )
          | _ -> raise Parse_error)
        machines
    | _ -> raise Parse_error

  let of_json line =
    match parse_json line with
    | exception Parse_error -> None
    | j ->
      (try
         match jfield "type" j with
         | Some (Jstr "run_start") ->
           Some
             (Run_start
                { scheduler = jstr (jfield "scheduler" j);
                  jobs = jint (jfield "jobs" j);
                  machines = jint (jfield "machines" j) })
         | Some (Jstr "event") ->
           (match kind_of_name (jstr (jfield "kind" j)) with
            | None -> None
            | Some kind ->
              Some
                (Sim_event
                   { time = jnum (jfield "time" j);
                     kind;
                     subject = jint (jfield "subject" j) }))
         | Some (Jstr "replan") ->
           Some
             (Replan
                { time = jnum (jfield "time" j);
                  scheduler = jstr (jfield "scheduler" j);
                  allocation = jalloc (jfield "alloc" j);
                  horizon =
                    (match jfield "horizon" j with
                     | Some Jnull | None -> None
                     | Some (Jnum h) -> Some h
                     | Some _ -> raise Parse_error) })
         | Some (Jstr "segment") ->
           Some
             (Segment
                { start_time = jnum (jfield "start" j);
                  end_time = jnum (jfield "end" j);
                  shares = jalloc (jfield "shares" j) })
         | Some (Jstr "probe") ->
           Some
             (Probe
                { pipeline = jstr (jfield "pipeline" j);
                  stretch = jnum (jfield "stretch" j);
                  feasible = jbool (jfield "feasible" j) })
         | Some (Jstr "span") ->
           Some
             (Span_closed
                { name = jstr (jfield "name" j);
                  depth = jint (jfield "depth" j);
                  start_s = jnum (jfield "start" j);
                  dur_s = jnum (jfield "dur" j) })
         | Some (Jstr "note") ->
           Some
             (Note
                { key = jstr (jfield "key" j); value = jstr (jfield "value" j) })
         | Some (Jstr "run_end") ->
           Some
             (Run_end
                { time = jnum (jfield "time" j);
                  completed = jint (jfield "completed" j) })
         | _ -> None
       with Parse_error | Not_found -> None)

  let write_jsonl ~path events =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (to_json e);
            output_char oc '\n')
          events)

  let read_jsonl ~path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match of_json line with
               | Some e -> acc := e :: !acc
               | None -> ()
           done
         with End_of_file -> ());
        List.rev !acc)
end
