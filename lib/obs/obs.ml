(* Observability singleton: levels, counters, spans, event journal.

   Everything here is deliberately dependency-free (only [unix] for the
   clock) so that any layer of the system — numeric, flow, engine,
   experiments — can report through it without dependency cycles.

   Domain safety.  All mutable observability state (level, counter
   cells, span aggregates, journal buffer, streaming sink) is
   domain-local: each domain accumulates into its own copy, reached
   through one [Domain.DLS] slot, so hot-path increments never contend
   and never lose updates.  Only the name registries (counter name → id,
   polls, merge injectors, reset hooks) are process-global, guarded by a
   mutex; they are written during module initialization and rarely
   after.  A worker domain's accumulated state is folded back into its
   parent with {!Export} — deltas are captured around a unit of work and
   merged in whatever canonical order the caller fixes, which is how the
   parallel sweep engine keeps merged journals bit-identical to a
   sequential run. *)

type level = Counters | Spans | Events

let level_rank = function Counters -> 0 | Spans -> 1 | Events -> 2

(* ---- journal event type (needed by the domain state) ------------------- *)

module Journal_t = struct
  type sim_kind = Arrival | Completion | Boundary | Failure | Recovery

  type alloc = (int * (int * float) list) list

  type event =
    | Run_start of { scheduler : string; jobs : int; machines : int }
    | Sim_event of { time : float; kind : sim_kind; subject : int }
    | Replan of {
        time : float;
        scheduler : string;
        allocation : alloc;
        horizon : float option;
      }
    | Segment of { start_time : float; end_time : float; shares : alloc }
    | Probe of { pipeline : string; stretch : float; feasible : bool }
    | Span_closed of {
        name : string;
        depth : int;
        start_s : float;
        dur_s : float;
      }
    | Note of { key : string; value : string }
    | Run_end of { time : float; completed : int }
end

open Journal_t

let dummy_event = Note { key = ""; value = "" }

(* ---- per-domain state -------------------------------------------------- *)

type span_agg = { mutable s_count : int; mutable s_total : float }

type dstate = {
  mutable lvl : level;
  mutable clock : unit -> float;
  mutable cells : int array;  (* counter values, indexed by registry id *)
  spans : (string, span_agg) Hashtbl.t;
  mutable depth : int;
  mutable jbuf : event array;
  mutable jlen : int;
  mutable jbase : int;  (* absolute position of jbuf.(0): events rotated or
                           truncated away keep later positions stable *)
  mutable sink : (event -> unit) option;
}

let fresh_dstate ~lvl ~clock =
  { lvl;
    clock;
    cells = Array.make 32 0;
    spans = Hashtbl.create 16;
    depth = 0;
    jbuf = Array.make 256 dummy_event;
    jlen = 0;
    jbase = 0;
    sink = None }

(* A spawned domain inherits its parent's verbosity level and clock (so
   parallel shards trace at the level the coordinator chose) but starts
   with empty accumulators. *)
let dstate_key : dstate Domain.DLS.key =
  Domain.DLS.new_key
    ~split_from_parent:(fun parent ->
      fresh_dstate ~lvl:parent.lvl ~clock:parent.clock)
    (fun () -> fresh_dstate ~lvl:Counters ~clock:Unix.gettimeofday)

let[@inline] st () = Domain.DLS.get dstate_key

let level () = (st ()).lvl
let set_level l = (st ()).lvl <- l

let with_level l f =
  let s = st () in
  let saved = s.lvl in
  s.lvl <- l;
  Fun.protect ~finally:(fun () -> s.lvl <- saved) f

let spans_on () = level_rank (st ()).lvl >= 1
let events_on () = level_rank (st ()).lvl >= 2

let set_clock c = (st ()).clock <- c

(* ---- global registries ------------------------------------------------- *)

(* Registrations happen at module-initialization time in practice, but
   tests (and worker domains warming up lazily) may race them, so every
   access to the shared tables takes the lock.  None of these paths is
   hot: the hot path is [Counter.incr], which touches only domain-local
   cells. *)
let reg_mutex = Mutex.create ()

let locked f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let reg_ids : (string, int) Hashtbl.t = Hashtbl.create 32
let reg_names : string array ref = ref (Array.make 32 "")
let reg_count = ref 0

let polls : (string, unit -> int) Hashtbl.t = Hashtbl.create 8
let poll_merges : (string, int -> unit) Hashtbl.t = Hashtbl.create 8
let reset_hooks : (unit -> unit) list ref = ref []

let register_poll name f = locked (fun () -> Hashtbl.replace polls name f)

let register_poll_merge name f =
  locked (fun () -> Hashtbl.replace poll_merges name f)

let register_reset f = locked (fun () -> reset_hooks := f :: !reset_hooks)

(* ---- counters ---------------------------------------------------------- *)

module Counter = struct
  type t = { name : string; id : int }

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt reg_ids name with
        | Some id -> { name; id }
        | None ->
          let id = !reg_count in
          incr reg_count;
          if id >= Array.length !reg_names then begin
            let bigger = Array.make (2 * id) "" in
            Array.blit !reg_names 0 bigger 0 (Array.length !reg_names);
            reg_names := bigger
          end;
          !reg_names.(id) <- name;
          Hashtbl.replace reg_ids name id;
          { name; id })

  let[@inline] cells_for s id =
    if id >= Array.length s.cells then begin
      let bigger = Array.make (max (2 * Array.length s.cells) (id + 1)) 0 in
      Array.blit s.cells 0 bigger 0 (Array.length s.cells);
      s.cells <- bigger
    end;
    s.cells

  let incr c =
    let s = st () in
    let cells = cells_for s c.id in
    cells.(c.id) <- cells.(c.id) + 1

  let add c k =
    let s = st () in
    let cells = cells_for s c.id in
    cells.(c.id) <- cells.(c.id) + k

  let value c =
    let s = st () in
    if c.id < Array.length s.cells then s.cells.(c.id) else 0

  let reset c =
    let s = st () in
    if c.id < Array.length s.cells then s.cells.(c.id) <- 0

  let name c = c.name
end

(* Registered (name, id) pairs, sorted by name; snapshot under the lock. *)
let registered () =
  locked (fun () ->
      Hashtbl.fold (fun name id acc -> (name, id) :: acc) reg_ids [])

let poll_list () =
  locked (fun () -> Hashtbl.fold (fun name f acc -> (name, f) :: acc) polls [])

let counters () =
  let s = st () in
  let acc =
    List.map
      (fun (name, id) ->
        (name, if id < Array.length s.cells then s.cells.(id) else 0))
      (registered ())
  in
  let acc = List.fold_left (fun acc (name, f) -> (name, f ()) :: acc) acc (poll_list ()) in
  List.sort (fun (a, _) (b, _) -> String.compare a b) acc

let counter_value name =
  match locked (fun () -> Hashtbl.find_opt reg_ids name) with
  | Some id ->
    let s = st () in
    Some (if id < Array.length s.cells then s.cells.(id) else 0)
  | None ->
    Option.map (fun f -> f ()) (locked (fun () -> Hashtbl.find_opt polls name))

let reset_counters () =
  let s = st () in
  Array.fill s.cells 0 (Array.length s.cells) 0;
  List.iter (fun f -> f ()) (locked (fun () -> !reset_hooks))

(* ---- journal store ----------------------------------------------------- *)

let journal_push s e =
  if s.jlen = Array.length s.jbuf then begin
    let bigger = Array.make (2 * s.jlen) dummy_event in
    Array.blit s.jbuf 0 bigger 0 s.jlen;
    s.jbuf <- bigger
  end;
  s.jbuf.(s.jlen) <- e;
  s.jlen <- s.jlen + 1;
  match s.sink with Some f -> f e | None -> ()

(* ---- spans ------------------------------------------------------------- *)

module Span = struct
  let agg_of s name =
    match Hashtbl.find_opt s.spans name with
    | Some a -> a
    | None ->
      let a = { s_count = 0; s_total = 0.0 } in
      Hashtbl.replace s.spans name a;
      a

  let close s name d t0 =
    let dur = s.clock () -. t0 in
    let a = agg_of s name in
    a.s_count <- a.s_count + 1;
    a.s_total <- a.s_total +. dur;
    if level_rank s.lvl >= 2 then
      journal_push s (Span_closed { name; depth = d; start_s = t0; dur_s = dur })

  let with_ name f =
    let s = st () in
    if level_rank s.lvl < 1 then f ()
    else begin
      let d = s.depth in
      s.depth <- d + 1;
      let t0 = s.clock () in
      match f () with
      | v ->
        s.depth <- d;
        close s name d t0;
        v
      | exception e ->
        s.depth <- d;
        close s name d t0;
        raise e
    end

  type summary = { name : string; count : int; total_s : float }

  let summaries () =
    Hashtbl.fold
      (fun name (a : span_agg) acc ->
        { name; count = a.s_count; total_s = a.s_total } :: acc)
      (st ()).spans []
    |> List.sort (fun a b -> String.compare a.name b.name)

  let total name =
    match Hashtbl.find_opt (st ()).spans name with
    | Some a -> a.s_total
    | None -> 0.0

  let total_prefix prefix =
    Hashtbl.fold
      (fun name (a : span_agg) acc ->
        if String.starts_with ~prefix name then acc +. a.s_total else acc)
      (st ()).spans 0.0

  let count name =
    match Hashtbl.find_opt (st ()).spans name with
    | Some a -> a.s_count
    | None -> 0

  let reset () =
    let s = st () in
    Hashtbl.reset s.spans;
    s.depth <- 0
end

(* ---- journal: API and JSONL -------------------------------------------- *)

module Journal = struct
  include Journal_t

  let on () = events_on ()

  let record e =
    let s = st () in
    if level_rank s.lvl >= 2 then journal_push s e

  let set_sink sk = (st ()).sink <- sk
  let position () = let s = st () in s.jbase + s.jlen

  (* Positions are absolute (monotone across rotations).  A mark that has
     been rotated or truncated away is clamped to the oldest retained
     event, mirroring the pre-rotation tolerance for a mid-run [clear]. *)
  let since k =
    let s = st () in
    let from = min (max k s.jbase) (s.jbase + s.jlen) in
    Array.to_list (Array.sub s.jbuf (from - s.jbase) (s.jbase + s.jlen - from))

  let events () = since 0

  let clear () =
    let s = st () in
    s.jlen <- 0;
    s.jbase <- 0

  let truncate_before k =
    let s = st () in
    let k = min (max k s.jbase) (s.jbase + s.jlen) in
    let d = k - s.jbase in
    if d > 0 then begin
      Array.blit s.jbuf d s.jbuf 0 (s.jlen - d);
      (* Release the dropped slots so rotated events can be collected. *)
      Array.fill s.jbuf (s.jlen - d) d dummy_event;
      s.jlen <- s.jlen - d;
      s.jbase <- k
    end

  let rotate () =
    let evs = events () in
    truncate_before (position ());
    evs

  (* -- JSON writing.  17 significant digits round-trip every finite
     double; non-finite floats are encoded as null / signed sentinels. -- *)

  let add_float buf f =
    if Float.is_nan f then Buffer.add_string buf "null"
    else if f = Float.infinity then Buffer.add_string buf "1e999"
    else if f = Float.neg_infinity then Buffer.add_string buf "-1e999"
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)

  let add_string buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let add_alloc buf (a : alloc) =
    Buffer.add_char buf '[';
    List.iteri
      (fun i (m, shares) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "[%d,[" m);
        List.iteri
          (fun k (j, share) ->
            if k > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "[%d," j);
            add_float buf share;
            Buffer.add_char buf ']')
          shares;
        Buffer.add_string buf "]]")
      a;
    Buffer.add_char buf ']'

  let kind_name = function
    | Arrival -> "arrival"
    | Completion -> "completion"
    | Boundary -> "boundary"
    | Failure -> "failure"
    | Recovery -> "recovery"

  let kind_of_name = function
    | "arrival" -> Some Arrival
    | "completion" -> Some Completion
    | "boundary" -> Some Boundary
    | "failure" -> Some Failure
    | "recovery" -> Some Recovery
    | _ -> None

  let to_json e =
    let buf = Buffer.create 128 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    (match e with
     | Run_start { scheduler; jobs; machines } ->
       add "{\"type\":\"run_start\",\"scheduler\":";
       add_string buf scheduler;
       add ",\"jobs\":%d,\"machines\":%d}" jobs machines
     | Sim_event { time; kind; subject } ->
       add "{\"type\":\"event\",\"kind\":\"%s\",\"time\":" (kind_name kind);
       add_float buf time;
       add ",\"subject\":%d}" subject
     | Replan { time; scheduler; allocation; horizon } ->
       add "{\"type\":\"replan\",\"time\":";
       add_float buf time;
       add ",\"scheduler\":";
       add_string buf scheduler;
       add ",\"alloc\":";
       add_alloc buf allocation;
       add ",\"horizon\":";
       (match horizon with
        | None -> add "null"
        | Some h -> add_float buf h);
       add "}"
     | Segment { start_time; end_time; shares } ->
       add "{\"type\":\"segment\",\"start\":";
       add_float buf start_time;
       add ",\"end\":";
       add_float buf end_time;
       add ",\"shares\":";
       add_alloc buf shares;
       add "}"
     | Probe { pipeline; stretch; feasible } ->
       add "{\"type\":\"probe\",\"pipeline\":";
       add_string buf pipeline;
       add ",\"stretch\":";
       add_float buf stretch;
       add ",\"feasible\":%b}" feasible
     | Span_closed { name; depth; start_s; dur_s } ->
       add "{\"type\":\"span\",\"name\":";
       add_string buf name;
       add ",\"depth\":%d,\"start\":" depth;
       add_float buf start_s;
       add ",\"dur\":";
       add_float buf dur_s;
       add "}"
     | Note { key; value } ->
       add "{\"type\":\"note\",\"key\":";
       add_string buf key;
       add ",\"value\":";
       add_string buf value;
       add "}"
     | Run_end { time; completed } ->
       add "{\"type\":\"run_end\",\"time\":";
       add_float buf time;
       add ",\"completed\":%d}" completed);
    Buffer.contents buf

  (* -- Minimal JSON reader, sufficient for lines [to_json] emits. -- *)

  type json =
    | Jnull
    | Jbool of bool
    | Jnum of float
    | Jstr of string
    | Jlist of json list
    | Jobj of (string * json) list

  exception Parse_error

  let parse_json (s : string) : json =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise Parse_error in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c = if peek () <> c then raise Parse_error else advance () in
    let literal lit v =
      String.iter (fun c -> expect c) lit;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
             advance ();
             if !pos + 4 > n then raise Parse_error;
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex) with Failure _ -> raise Parse_error
             in
             (* Only ASCII escapes are ever emitted. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else raise Parse_error
           | _ -> raise Parse_error);
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        advance ()
      done;
      if !pos = start then raise Parse_error;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> raise Parse_error
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | 'n' -> literal "null" Jnull
      | 't' -> literal "true" (Jbool true)
      | 'f' -> literal "false" (Jbool false)
      | '"' -> Jstr (parse_string ())
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Jlist [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Jlist (List.rev !items)
        end
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Jobj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Jobj (List.rev !fields)
        end
      | _ -> parse_number () |> fun f -> Jnum f
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise Parse_error;
    v

  let jfield k = function Jobj fs -> List.assoc_opt k fs | _ -> None

  let jnum = function
    | Some (Jnum f) -> f
    | Some Jnull -> Float.nan
    | _ -> raise Parse_error

  let jint v = int_of_float (jnum v)
  let jstr = function Some (Jstr s) -> s | _ -> raise Parse_error
  let jbool = function Some (Jbool b) -> b | _ -> raise Parse_error

  let jalloc v : alloc =
    match v with
    | Some (Jlist machines) ->
      List.map
        (function
          | Jlist [ Jnum m; Jlist shares ] ->
            ( int_of_float m,
              List.map
                (function
                  | Jlist [ Jnum j; Jnum share ] -> (int_of_float j, share)
                  | _ -> raise Parse_error)
                shares )
          | _ -> raise Parse_error)
        machines
    | _ -> raise Parse_error

  let of_json line =
    match parse_json line with
    | exception Parse_error -> None
    | j ->
      (try
         match jfield "type" j with
         | Some (Jstr "run_start") ->
           Some
             (Run_start
                { scheduler = jstr (jfield "scheduler" j);
                  jobs = jint (jfield "jobs" j);
                  machines = jint (jfield "machines" j) })
         | Some (Jstr "event") ->
           (match kind_of_name (jstr (jfield "kind" j)) with
            | None -> None
            | Some kind ->
              Some
                (Sim_event
                   { time = jnum (jfield "time" j);
                     kind;
                     subject = jint (jfield "subject" j) }))
         | Some (Jstr "replan") ->
           Some
             (Replan
                { time = jnum (jfield "time" j);
                  scheduler = jstr (jfield "scheduler" j);
                  allocation = jalloc (jfield "alloc" j);
                  horizon =
                    (match jfield "horizon" j with
                     | Some Jnull | None -> None
                     | Some (Jnum h) -> Some h
                     | Some _ -> raise Parse_error) })
         | Some (Jstr "segment") ->
           Some
             (Segment
                { start_time = jnum (jfield "start" j);
                  end_time = jnum (jfield "end" j);
                  shares = jalloc (jfield "shares" j) })
         | Some (Jstr "probe") ->
           Some
             (Probe
                { pipeline = jstr (jfield "pipeline" j);
                  stretch = jnum (jfield "stretch" j);
                  feasible = jbool (jfield "feasible" j) })
         | Some (Jstr "span") ->
           Some
             (Span_closed
                { name = jstr (jfield "name" j);
                  depth = jint (jfield "depth" j);
                  start_s = jnum (jfield "start" j);
                  dur_s = jnum (jfield "dur" j) })
         | Some (Jstr "note") ->
           Some
             (Note
                { key = jstr (jfield "key" j); value = jstr (jfield "value" j) })
         | Some (Jstr "run_end") ->
           Some
             (Run_end
                { time = jnum (jfield "time" j);
                  completed = jint (jfield "completed" j) })
         | _ -> None
       with Parse_error | Not_found -> None)

  let write_jsonl_gen ~append ~path events =
    let oc =
      if append then
        open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
      else open_out path
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (to_json e);
            output_char oc '\n')
          events)

  let write_jsonl ~path events = write_jsonl_gen ~append:false ~path events
  let append_jsonl ~path events = write_jsonl_gen ~append:true ~path events

  let read_jsonl ~path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match of_json line with
               | Some e -> acc := e :: !acc
               | None -> ()
           done
         with End_of_file -> ());
        List.rev !acc)

  (* The strict reader refuses what the lenient one skips: a malformed
     line is named by number, and a partial last record (no trailing
     newline — the signature of a write cut short by a crash) is called
     out as truncation rather than silently dropped.  Replay-grade
     integrity checks must use this path. *)
  let read_jsonl_strict ~path =
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let n = String.length contents in
    let complete = n = 0 || contents.[n - 1] = '\n' in
    let body = if complete then String.sub contents 0 (max 0 (n - 1)) else contents in
    if body = "" then []
    else begin
      let lines = String.split_on_char '\n' body in
      let total = List.length lines in
      let acc = ref [] in
      List.iteri
        (fun i line ->
          if String.trim line <> "" then
            match of_json line with
            | Some e -> acc := e :: !acc
            | None ->
              if i = total - 1 && not complete then
                failwith
                  (Printf.sprintf
                     "%s: truncated journal: partial record on last line %d \
                      (no trailing newline)"
                     path (i + 1))
              else
                failwith
                  (Printf.sprintf "%s: malformed journal record at line %d"
                     path (i + 1)))
        lines;
      if not complete then
        (* The last line parsed even without its newline: the file was cut
           exactly at a record boundary minus the terminator.  Still a
           torn write — reject it, the caller must repair or truncate. *)
        failwith
          (Printf.sprintf
             "%s: truncated journal: missing trailing newline after line %d"
             path total);
      List.rev !acc
    end
end

(* ---- export: delta capture and cross-domain merge ----------------------- *)

module Export = struct
  type mark = {
    m_cells : int array;                     (* counter snapshot (copy) *)
    m_polls : (string * int) list;           (* polled gauges at start *)
    m_spans : (string * int * float) list;   (* span aggregates at start *)
    m_jpos : int;
  }

  type t = {
    e_counters : (string * int) list;        (* per-name deltas, sorted *)
    e_polls : (string * int) list;
    e_spans : (string * int * float) list;
    e_journal : Journal_t.event array;
  }

  let poll_values () =
    List.sort compare (List.map (fun (name, f) -> (name, f ())) (poll_list ()))

  let span_values () =
    List.sort compare
      (List.map
         (fun (s : Span.summary) -> (s.Span.name, s.Span.count, s.Span.total_s))
         (Span.summaries ()))

  let start () =
    let s = st () in
    { m_cells = Array.copy s.cells;
      m_polls = poll_values ();
      m_spans = span_values ();
      m_jpos = s.jbase + s.jlen }

  let stop mark =
    let s = st () in
    let deltas =
      List.filter_map
        (fun (name, id) ->
          let now = if id < Array.length s.cells then s.cells.(id) else 0 in
          let before =
            if id < Array.length mark.m_cells then mark.m_cells.(id) else 0
          in
          if now = before then None else Some (name, now - before))
        (registered ())
      |> List.sort compare
    in
    let delta_polls =
      List.filter_map
        (fun (name, v) ->
          let before =
            Option.value ~default:0 (List.assoc_opt name mark.m_polls)
          in
          if v = before then None else Some (name, v - before))
        (poll_values ())
    in
    let delta_spans =
      List.filter_map
        (fun (name, c, t) ->
          let bc, bt =
            match List.find_opt (fun (n, _, _) -> n = name) mark.m_spans with
            | Some (_, bc, bt) -> (bc, bt)
            | None -> (0, 0.0)
          in
          if c = bc && t = bt then None else Some (name, c - bc, t -. bt))
        (span_values ())
    in
    (* Clamp like {!Journal.since}: a mark invalidated by a mid-shard
       clear or rotation exports the retained suffix. *)
    let jpos = min (max mark.m_jpos s.jbase) (s.jbase + s.jlen) in
    { e_counters = deltas;
      e_polls = delta_polls;
      e_spans = delta_spans;
      e_journal = Array.sub s.jbuf (jpos - s.jbase) (s.jbase + s.jlen - jpos) }

  let merge e =
    let s = st () in
    List.iter
      (fun (name, d) ->
        let c = Counter.make name in
        Counter.add c d)
      e.e_counters;
    List.iter
      (fun (name, d) ->
        match locked (fun () -> Hashtbl.find_opt poll_merges name) with
        | Some inject -> inject d
        | None -> ())
      e.e_polls;
    List.iter
      (fun (name, dc, dt) ->
        let a = Span.agg_of s name in
        a.s_count <- a.s_count + dc;
        a.s_total <- a.s_total +. dt)
      e.e_spans;
    Array.iter (fun ev -> journal_push s ev) e.e_journal

  let journal e = Array.to_list e.e_journal

  let counter e name = Option.value ~default:0 (List.assoc_opt name e.e_counters)
end
