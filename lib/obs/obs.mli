(** Observability: trace spans, named counters, structured event journal.

    Zero external dependencies (only [unix], for the wall clock).  The
    subsystem is a process-global singleton with three verbosity levels:

    - {!Counters} (default): named counters count, nothing else happens.
      Counter increments are plain mutations of preallocated cells, so
      this level costs what the pre-observability ad-hoc counters cost.
    - {!Spans}: {!Span.with_} additionally records wall-clock durations,
      aggregated per span name (two clock reads per span).
    - {!Events}: the {!Journal} additionally accumulates typed records of
      everything the simulator and solvers do, replayable and
      serializable as JSONL.

    Below the active level every hook is a cheap no-op: {!Span.with_}
    reduces to calling its thunk and {!Journal.record} to a branch.
    Call sites that would allocate an event record should guard with
    {!Journal.on} so the disabled path allocates nothing.

    {b Domain safety.}  All mutable observability state — level, counter
    cells, span aggregates, the journal and its sink — is domain-local:
    each domain accumulates into its own copy, so concurrent solver runs
    in different domains never contend and never lose increments.  A
    freshly spawned domain inherits its parent's level and clock but
    starts with empty accumulators.  Only the name registries
    ({!Counter.make}, {!register_poll}, {!register_reset}) are shared
    (and mutex-guarded), so a counter handle created in one domain
    addresses that same counter's domain-local cell in every other.  Use
    {!Export} to capture the deltas a unit of work produced in one
    domain and fold them into another: merging worker deltas in a fixed
    canonical order makes a parallel run's counters, span aggregates and
    journal bit-identical to the sequential run's. *)

type level = Counters | Spans | Events

val level : unit -> level
val set_level : level -> unit

val with_level : level -> (unit -> 'a) -> 'a
(** Run the thunk with the level temporarily set (restored on return and
    on exception). *)

val spans_on : unit -> bool   (** [level () >= Spans] *)

val events_on : unit -> bool  (** [level () = Events] *)

val set_clock : (unit -> float) -> unit
(** Replace the span clock (default [Unix.gettimeofday]) — for
    deterministic tests.  The clock must be monotone non-decreasing for
    span durations to be meaningful. *)

(** {1 Counters}

    Named monotone counters, registered once and incremented from hot
    loops.  Unlike spans and the journal they are {e always} live —
    an increment is a single unboxed mutation — because the solver
    statistics contract ({!Gripps_core.Stretch_solver.stats}) predates
    the observability levels and must keep working at any level. *)

module Counter : sig
  type t

  val make : string -> t
  (** Create-or-get the counter registered under [name] (idempotent). *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
  val name : t -> string
end

val register_poll : string -> (unit -> int) -> unit
(** Expose an externally-owned counter (e.g. the {!Gripps_numeric.Rat}
    fast-path counters) in the registry snapshot without moving its
    storage.  Re-registering a name replaces the callback. *)

val register_reset : (unit -> unit) -> unit
(** Hook called by {!reset_counters} — lets externally-owned counters
    participate in a registry-wide reset. *)

val register_poll_merge : string -> (int -> unit) -> unit
(** Injector for a polled counter: [register_poll_merge name add] lets
    {!Export.merge} fold a worker domain's polled delta back into the
    external storage ([add delta] must add [delta] to the counter the
    poll reads).  Polls without an injector are skipped by merges. *)

val counters : unit -> (string * int) list
(** Snapshot of every registered counter and poll, sorted by name. *)

val counter_value : string -> int option
(** Look up one registered counter or poll by name. *)

val reset_counters : unit -> unit
(** Zero every registered counter and run every registered reset hook. *)

(** {1 Spans}

    Hierarchical wall-clock trace spans.  Nesting is tracked with a
    depth counter; per-name aggregates (count, total seconds) answer
    "where did the time go" queries, and at {!Events} level each span
    closure is also journaled with its depth, start and duration. *)

module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a span.  Below {!Spans} level this is exactly
      [f ()] — no clock read, no allocation.  Exception-safe: the span
      closes (and is journaled) even when the thunk raises. *)

  type summary = { name : string; count : int; total_s : float }

  val summaries : unit -> summary list
  (** Per-name aggregates since the last {!reset}, sorted by name. *)

  val total : string -> float
  (** Accumulated seconds of the named span (0 if never opened). *)

  val total_prefix : string -> float
  (** Sum of {!total} over every span whose name starts with the
      prefix — e.g. [total_prefix "solver."] for all solver pipelines. *)

  val count : string -> int
  val reset : unit -> unit
end

(** {1 Event journal}

    Typed records of everything observable in a run, in order.  The
    journal is the replay substrate: {!Gripps_engine.Replay} rebuilds
    the realized schedule from [Segment] and [Completion] records, and
    [gripps_cli trace --verify] checks the rebuilt metrics against the
    live ones. *)

module Journal : sig
  type sim_kind = Arrival | Completion | Boundary | Failure | Recovery

  type alloc = (int * (int * float) list) list
  (** [(machine, [(job, share); ...])] — mirrors
      {!Gripps_engine.Sim.allocation} without depending on the engine. *)

  type event =
    | Run_start of { scheduler : string; jobs : int; machines : int }
    | Sim_event of { time : float; kind : sim_kind; subject : int }
        (** [subject] is the job id (arrival/completion) or machine id
            (failure/recovery); [-1] for boundaries.  For completions
            [time] is the exact completion date [C_j], which may precede
            the segment end by a rounding sliver. *)
    | Replan of {
        time : float;
        scheduler : string;
        allocation : alloc;
        horizon : float option;
      }  (** a plan returned by the scheduler callback *)
    | Segment of { start_time : float; end_time : float; shares : alloc }
        (** a realized schedule segment (crash-lost shares excluded) *)
    | Probe of { pipeline : string; stretch : float; feasible : bool }
        (** one solver feasibility probe; [pipeline] is ["exact"] or
            ["float"]; [stretch] is the candidate objective (NaN when
            the probe tests a flow value rather than a stretch). *)
    | Span_closed of {
        name : string;
        depth : int;
        start_s : float;
        dur_s : float;
      }
    | Note of { key : string; value : string }
    | Run_end of { time : float; completed : int }

  val on : unit -> bool
  (** Equal to {!events_on}; guard event-record construction with it. *)

  val record : event -> unit
  (** Append to the journal ({!on} permitting) and forward to the sink. *)

  val set_sink : (event -> unit) option -> unit
  (** Streaming sink called on every recorded event (e.g. incremental
      JSONL writing); [None] disables. *)

  val position : unit -> int
  (** Current absolute position — marks a point to {!since} from.
      Monotone across {!rotate}/{!truncate_before}, so a mark taken
      before a rotation still addresses the right suffix. *)

  val since : int -> event list
  (** Events recorded after the given {!position}, in order.  A position
      older than the oldest retained event (rotated or truncated away)
      is clamped: only what is still buffered comes back. *)

  val events : unit -> event list

  val clear : unit -> unit
  (** Drop everything and reset {!position} to 0. *)

  val truncate_before : int -> unit
  (** Drop every buffered event before the given absolute position
      (clamped to the buffered range).  Later events keep their
      positions: this is the memory-bounding primitive of long-running
      runs — journal a window, persist it, truncate it away. *)

  val rotate : unit -> event list
  (** Atomically take the whole buffered window and truncate it away:
      returns the events in order, leaves the buffer empty, and leaves
      {!position} unchanged (it keeps counting from where it was).  The
      streaming-service daemon calls this at every checkpoint to spill
      the window to an on-disk segment, keeping resident journal memory
      O(window), not O(run). *)

  (** {2 JSONL}

      One JSON object per line.  Floats are printed with 17 significant
      digits, so every finite double round-trips bit-identically. *)

  val to_json : event -> string
  val of_json : string -> event option
  (** Parse a line emitted by {!to_json}; [None] on malformed input. *)

  val write_jsonl : path:string -> event list -> unit

  val append_jsonl : path:string -> event list -> unit
  (** Like {!write_jsonl} but appends (creating the file if absent) —
      the segment-spilling primitive of rotated journals. *)

  val read_jsonl : path:string -> event list
  (** @raise Sys_error on unreadable files; malformed lines are
      skipped. *)

  val read_jsonl_strict : path:string -> event list
  (** Like {!read_jsonl} but integrity-checking: a malformed line raises
      [Failure] naming the line number, and a partial last record (the
      file does not end in a newline — the signature of a crash-torn
      write) raises [Failure] naming the truncation, instead of being
      silently dropped.
      @raise Sys_error on unreadable files. *)
end

(** {1 Export: delta capture and cross-domain merge}

    The bridge the parallel sweep engine is built on.  A worker domain
    brackets each shard with {!Export.start}/{!Export.stop}, producing a
    self-contained delta (counter increments, polled-gauge increments,
    span aggregates, the journal slice).  The coordinator then
    {!Export.merge}s the deltas {e in shard-index order}: counter and
    span addition is order-insensitive, and the journal slices
    concatenate into exactly the event sequence a sequential run would
    have recorded — which is what makes parallel sweeps bit-identical to
    sequential ones. *)

module Export : sig
  type mark
  (** A point-in-time snapshot of the calling domain's observability
      state. *)

  type t
  (** The deltas accumulated between a {!start} and a {!stop}. *)

  val start : unit -> mark

  val stop : mark -> t
  (** Deltas since [mark], in the calling domain.  Counter deltas are
      [value now - value at mark]; a shard that resets counters midway
      therefore exports the net change, exactly as a sequential run
      would leave the shared state. *)

  val merge : t -> unit
  (** Fold the deltas into the calling domain's state: add counters and
      span aggregates, apply registered poll injectors
      ({!register_poll_merge}), and append the journal slice (also
      forwarding it to the calling domain's sink). *)

  val journal : t -> Journal.event list
  (** The captured journal slice, in recording order. *)

  val counter : t -> string -> int
  (** The delta of one named counter (0 if unchanged). *)
end
