open Gripps_model
module J = Gripps_obs.Obs.Journal

let schedule_of_journal inst events =
  let nj = Instance.num_jobs inst in
  let completion = Array.make nj None in
  let segments = ref [] in
  List.iter
    (fun (e : J.event) ->
      match e with
      | J.Sim_event { time; kind = J.Completion; subject } ->
        if subject < 0 || subject >= nj then
          invalid_arg "Replay: completion record for unknown job";
        completion.(subject) <- Some time
      | J.Segment { start_time; end_time; shares } ->
        List.iter
          (fun (_, js) ->
            List.iter
              (fun (j, _) ->
                if j < 0 || j >= nj then
                  invalid_arg "Replay: segment record for unknown job")
              js)
          shares;
        segments :=
          { Schedule.start_time; end_time; shares } :: !segments
      | J.Sim_event _ | J.Run_start _ | J.Replan _ | J.Probe _
      | J.Span_closed _ | J.Note _ | J.Run_end _ -> ())
    events;
  Schedule.make ~instance:inst ~segments:(List.rev !segments) ~completion

let completed_jobs events =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (e : J.event) ->
      match e with
      | J.Sim_event { kind = J.Completion; subject; _ } ->
        Hashtbl.replace seen subject ()
      | _ -> ())
    events;
  Hashtbl.length seen
