(** GC posture for throughput-bound runs (benchmarks, the serve daemon).

    The engine's steady-state event loop allocates nothing on the minor
    heap, so GC time is dominated by the bursts around it — instance
    generation, buffer growth, journal flushes.  {!throughput} sizes the
    minor heap at {!throughput_minor_words} (64 MB on 64-bit) so those
    bursts trigger rare, cheap scavenges, and raises [space_overhead] to
    {!throughput_space_overhead} so the major collector stays lazy about
    multi-gigabyte job columns.  Applied by [bench/main.exe scale],
    [bench/main.exe serve] and the CLI's [scale]/[serve] commands; a
    one-way switch (benchmark processes exit anyway), not a scoped
    override. *)

val throughput_minor_words : int
val throughput_space_overhead : int

val throughput : unit -> unit
(** Apply the throughput posture to the current process. *)

val describe : unit -> string
(** The live GC knobs, for benchmark provenance lines. *)
