(* GC posture for throughput-bound runs.  The engine's steady state
   allocates (almost) nothing, so what remains to tune is the cost of
   everything around it: instance generation, plan-buffer growth, the
   occasional journal flush.  A big minor heap turns those bursts into
   rare, cheap scavenges instead of frequent ones, and a relaxed space
   overhead keeps the major collector from compacting multi-gigabyte
   job columns mid-benchmark. *)

let throughput_minor_words = 8 * 1024 * 1024 (* 64 MB of minor heap on 64-bit *)
let throughput_space_overhead = 200

let throughput () =
  let c = Gc.get () in
  Gc.set
    { c with
      Gc.minor_heap_size = throughput_minor_words;
      space_overhead = throughput_space_overhead }

let describe () =
  let c = Gc.get () in
  Printf.sprintf "minor_heap_size=%d space_overhead=%d" c.Gc.minor_heap_size
    c.Gc.space_overhead
