(** Event-driven simulator for divisible loads with free preemption.

    The divisible model without communication costs (paper §2.1) admits an
    exact fluid semantics: between two events every machine splits its
    time between jobs in fixed shares, and a job's processing rate is the
    sum of [share × speed] over machines.  The engine advances from event
    to event (arrival, completion, plan boundary, machine failure/repair),
    asking the scheduler for a fresh plan at each one, and records the
    realized {!Gripps_model.Schedule.t}.

    Schedulers are on-line: the callback only ever sees jobs released so
    far (enforced by construction — unreleased jobs have no remaining-work
    entry observable through {!active_jobs}) and the decisions it returns
    cannot be retracted for elapsed time.

    {b Faults.}  A {!Fault.trace} (explicit, or encoded as platform
    downtime intervals) makes machines fail and recover mid-run.  The
    scheduler is re-invoked with {!Failure}/{!Recovery} events exactly as
    it is on arrivals, allocations on down machines are rejected, and the
    {!Fault.loss} semantics decides whether in-flight work on a dying
    machine survives ([Pause]) or is re-added to the job's remaining work
    ([Crash]).

    {b Memory layout.}  Engine state is columnar — parallel [float array]
    / [int array] / [bool array] columns indexed by job or machine id —
    and the event loop is written so that steady-state event processing
    allocates nothing on the OCaml minor heap once the run's buffers have
    grown to their working size (list-based {!scheduler}s and journaling
    excepted).  {!flat_scheduler}s plug into this regime by writing their
    plans into a reusable {!Plan_buf.t} instead of consing allocation
    lists. *)

open Gripps_model

(** [(machine, [(job, share); ...])]: shares of each machine's time.
    Machines absent from the list are idle; shares must be positive and
    sum to at most 1 per machine. *)
type allocation = (int * (int * float) list) list

type event =
  | Arrival of int     (** job id just released *)
  | Completion of int  (** job id just finished *)
  | Boundary           (** the previous plan's horizon was reached *)
  | Failure of int     (** machine id just went down *)
  | Recovery of int    (** machine id just came back up *)

(** {1 Flat plan buffer}

    A plan as parallel columns instead of the nested [allocation] list:
    machine "runs" indexing into a flat [(job, share)] entry array.  The
    engine owns one buffer per simulation and clears/refills it at every
    replan, so steady-state replanning allocates nothing.

    {b Order contract.}  Accessors index runs in {e canonical} order —
    the order of the equivalent legacy [allocation] list.  Writers that
    emit runs in grab order (like the heap walk, whose legacy counterpart
    builds its list by {e prepending}) clear with [~grab_order:true]; the
    accessors then transparently reverse, reproducing the legacy list —
    float summation order included — bit for bit. *)
module Plan_buf : sig
  type t

  val create : unit -> t

  val clear : ?grab_order:bool -> t -> unit
  (** Empty the buffer and reset the horizon.  [grab_order] (default
      false) declares that runs will be pushed in reverse canonical
      order. *)

  val begin_machine : t -> int -> unit
  (** Start a new run for the given machine; subsequent {!push_share}
      calls append to it. *)

  val push_share : t -> job:int -> share:float -> unit
  (** @raise Invalid_argument before any {!begin_machine}. *)

  val push_unit_share : t -> job:int -> unit
  (** [push_share ~share:1.0] without a float in the signature, so the
      call allocates nothing (a [float] argument of a non-inlined call
      is boxed).  Full-share grabs are the common case — all of list
      scheduling. *)

  val set_horizon : t -> float -> unit
  (** Declare the plan valid only up to this date (the legacy
      [plan.horizon = Some h]). *)

  val horizon : t -> float
  (** The declared horizon, or [infinity] when none was set. *)

  val runs : t -> int
  val is_empty : t -> bool

  val run_machine : t -> int -> int
  (** Machine of the [i]-th run, canonical order. *)

  val run_length : t -> int -> int

  val entry_job : t -> int -> int -> int
  (** [entry_job b i k]: job of the [k]-th share of the [i]-th canonical
      run. *)

  val entry_share : t -> int -> int -> float

  val of_allocation : t -> allocation -> unit
  (** Clear and refill from a legacy list (canonical write order). *)

  val to_allocation : t -> allocation
  (** Materialize the canonical-order legacy list (allocates). *)
end

type state

val instance : state -> Instance.t
val now : state -> float

val remaining : state -> int -> float
(** Remaining Mflop of a released job.
    @raise Invalid_argument for a job not yet released. *)

val is_released : state -> int -> bool
val is_completed : state -> int -> bool

val machine_up : state -> int -> bool
(** Is the machine currently available?  Schedulers must not allocate work
    on a down machine.  @raise Invalid_argument on a bad machine id. *)

val lost_work : state -> int -> float
(** Mflop of the job's work destroyed so far by crash-semantics failures
    (always 0 under [Pause]). *)

val active_jobs : state -> int list
(** Released, not yet completed; increasing id (= release order). *)

val completion_time : state -> int -> float option

(** Raw columnar views for flat schedulers: direct (read-only by
    convention) access to the engine's per-job columns, so a hot
    scheduler can read remaining work without the bounds check and
    box-free only thanks to cross-module inlining of {!remaining}. *)
module Columns : sig
  val remaining : state -> float array
  (** [remaining.(j)]: remaining Mflop.  Meaningful only for released
      jobs. *)

  val completion_times : state -> float array
  (** [ctimes.(j)]: completion date, or NaN while pending. *)
end

(** {1 Incremental scheduling support}

    The engine maintains a versioned dirty set so an incremental
    scheduler can update per-run structures (priority heaps, cached
    plans) in O(changes · log n) instead of rescanning every job. *)

val plan_version : state -> int
(** Monotone counter bumped at every scheduler invocation; two callbacks
    observing different versions are separated by at least one executed
    plan segment. *)

val dirty_jobs : state -> int list
(** During a scheduler callback: the support of the plan segment that
    just ended — every job that was allocated a positive rate since the
    previous callback.  This is a superset of the jobs whose remaining
    work changed (a zero-length segment leaves work untouched); jobs
    completed by the segment appear both here and as {!Completion}
    events.  Empty at the initial invocation.  Reset when the returned
    plan is validated, so it is only meaningful inside the callback. *)

val iter_dirty : (int -> unit) -> state -> unit
(** Allocation-free iteration over {!dirty_jobs} (unspecified order). *)

val dirty_count : state -> int
(** [List.length (dirty_jobs st)], allocation-free. *)

val dirty_job : state -> int -> int
(** [dirty_job st i]: the [i]-th dirty job, [0 <= i < dirty_count st].
    With {!dirty_count}, an indexed (closure-free) alternative to
    {!iter_dirty}. *)

(** Indexed, allocation-free view of the event batch a {!flat_scheduler}
    is being invoked for (the flat counterpart of the [event list]
    argument of legacy callbacks). *)
module Events : sig
  val count : state -> int

  val kind :
    state ->
    int ->
    [ `Arrival | `Completion | `Boundary | `Failure | `Recovery ]
  (** Immediate (unallocated) constant variants. *)

  val subject : state -> int -> int
  (** Job id for [`Arrival]/[`Completion], machine id for
      [`Failure]/[`Recovery], meaningless for [`Boundary]. *)
end

(** A plan: the allocation to apply from [now] on, valid until the next
    arrival/completion/failure/recovery or until [horizon] (if any),
    whichever comes first.  [horizon], when given, must be strictly later
    than [now]. *)
type plan = { allocation : allocation; horizon : float option }

val idle : plan

(** A scheduler: a name and a factory producing the per-run callback (the
    callback may close over mutable per-run state such as a precomputed
    plan queue).  The callback receives the batch of simultaneous events
    that just fired. *)
type scheduler = {
  name : string;
  make : Instance.t -> state -> event list -> plan;
}

val stateless : string -> (state -> event list -> plan) -> scheduler

val incremental :
  name:string ->
  init:(Instance.t -> 's) ->
  on_event:('s -> state -> event list -> plan) ->
  scheduler
(** An incremental scheduler: [init] builds the per-run state once (a
    fresh ['s] per simulation, so one scheduler value can be reused
    across runs and domains), and [on_event] folds each event batch into
    it — typically consulting {!dirty_jobs} to re-key only what moved.
    Layered on the {!scheduler} record, so every entry point accepts
    both styles unchanged. *)

(** A flat scheduler: the zero-allocation counterpart of {!scheduler}.
    The callback reads the pending events through {!Events}, updates its
    per-run state, and {e writes} the new plan into the provided
    {!Plan_buf.t} (pre-cleared with [grab_order = true], so runs are
    pushed in grab order) instead of returning an allocation list. *)
type flat_scheduler = {
  fname : string;
  fmake : Instance.t -> state -> Plan_buf.t -> unit;
}

val flat_stateless : string -> (state -> Plan_buf.t -> unit) -> flat_scheduler

val flat_incremental :
  name:string ->
  init:(Instance.t -> 's) ->
  on_event:('s -> state -> Plan_buf.t -> unit) ->
  flat_scheduler

(** {1 Non-clairvoyant schedulers}

    A non-clairvoyant scheduler (Robert–Schabanel) never observes job
    sizes: not [W_j], not remaining work, not the instance.  The
    restriction is enforced by the API, not by convention — {!Blind.view}
    is abstract, only {!nonclairvoyant}/{!nonclairvoyant_incremental}
    callbacks receive one, and the view exposes no size-bearing accessor
    ({!remaining}, {!Columns}, {!instance} and {!Instance.t} itself are
    all unreachable from it).  Per-job accessors further refuse jobs that
    have not arrived yet, so arrival dates cannot leak either. *)
module Blind : sig
  type view
  (** The engine state, stripped to what a size-blind scheduler may see. *)

  val platform : view -> Platform.t
  (** Machines, speeds and databank replication are public knowledge. *)

  val now : view -> float

  val active_jobs : view -> int list
  (** Released, not yet completed; increasing id (= release order). *)

  val is_completed : view -> int -> bool
  val machine_up : view -> int -> bool

  val databank : view -> int -> int
  (** @raise Invalid_argument for a job not yet released. *)

  val release : view -> int -> float
  (** @raise Invalid_argument for a job not yet released. *)

  val user : view -> int -> int
  (** @raise Invalid_argument for a job not yet released. *)
end

val nonclairvoyant : string -> (Blind.view -> event list -> plan) -> scheduler
(** A stateless size-blind scheduler.  Runs on the ordinary engine —
    only the callback's view is restricted. *)

val nonclairvoyant_incremental :
  name:string ->
  init:(Platform.t -> 's) ->
  on_event:('s -> Blind.view -> event list -> plan) ->
  scheduler
(** Like {!incremental}, but [init] sees only the platform (the instance
    would leak sizes and the job count) and [on_event] the blind view. *)

exception Stalled of { time : float; pending : int list }
(** Raised when the scheduler leaves pending work unallocated with no
    future event (arrival, plan boundary, or machine repair) to wake it
    up. *)

exception
  Horizon_exceeded of {
    scheduler : string;
    time : float;            (** simulation date when the guard fired *)
    guard : float;           (** the [?horizon] value *)
    pending : int list;      (** jobs still unfinished *)
    last_event : event option;  (** last event dispatched to the scheduler *)
    journal : Gripps_obs.Obs.Journal.event list;
        (** the partial event journal of the aborted run — empty unless
            the observability level is [Events] *)
  }
(** Raised when the simulation advances past the [?horizon] abort guard —
    the diagnostic payload identifies where and on whose watch the run was
    dragged out, and (at [Events] observability level) carries the partial
    journal so the drag-out can be traced post mortem. *)

(** The single result shape of a simulation: the realized schedule, its
    metrics, the fault diagnostics, and the observability summary.  All
    entry points return it ({!run} merely projects out the schedule). *)
type report = {
  schedule : Schedule.t;
  metrics : Metrics.t;  (** objectives of the realized schedule *)
  lost : float array;   (** per-job Mflop destroyed by crashes *)
  replans : int;        (** scheduler callback invocations *)
  events : int;         (** simulation events dispatched (incl. batches) *)
  journal : Gripps_obs.Obs.Journal.event list;
      (** typed per-run trace — empty unless the observability level is
          [Events] (see {!Gripps_obs.Obs.set_level}).  Captured as a
          delta of the calling domain's journal buffer, so concurrent
          simulations in separate domains (a {!Gripps_parallel} sweep)
          each get exactly their own slice; a parallel sweep's merged
          journal is the concatenation of these slices in shard order. *)
}

val run_report :
  ?horizon:float ->
  ?faults:Fault.trace ->
  ?loss:Fault.loss ->
  scheduler ->
  Instance.t ->
  report
(** Simulates to completion of all jobs.
    @param horizon abort guard: simulating past this date raises
    {!Horizon_exceeded} (default: no guard).
    @param faults availability edges injected during the run (default
    none), merged with the platform's static downtime intervals.
    @param loss what happens to in-flight work when a machine dies
    (default [Crash]).
    @raise Stalled see above.
    @raise Invalid_argument when the scheduler returns an invalid
    allocation (oversubscribed machine, down machine, job without its
    databank, unreleased or completed job, negative or zero share,
    duplicate entry for one job on one machine, stale horizon), or when
    the fault trace references an unknown machine. *)

val run_report_flat :
  ?horizon:float ->
  ?faults:Fault.trace ->
  ?loss:Fault.loss ->
  ?record:bool ->
  flat_scheduler ->
  Instance.t ->
  report
(** {!run_report} for a {!flat_scheduler} — same semantics, same
    exceptions, bit-identical metrics and completion dates for equivalent
    schedulers.
    @param record when [false] (default [true]), skip materializing the
    per-segment schedule: [report.schedule] has no segments and
    [report.metrics] is computed directly from the completion dates
    (bit-identical to the recorded path).  This removes the last
    per-event allocation, so a steady-state run at [Counters]
    observability allocates nothing per event — the benchmarking
    posture. *)

val run :
  ?horizon:float ->
  ?faults:Fault.trace ->
  ?loss:Fault.loss ->
  scheduler ->
  Instance.t ->
  Schedule.t
(** [run ... = (run_report ...).schedule]. *)


