(** Event-driven simulator for divisible loads with free preemption.

    The divisible model without communication costs (paper §2.1) admits an
    exact fluid semantics: between two events every machine splits its
    time between jobs in fixed shares, and a job's processing rate is the
    sum of [share × speed] over machines.  The engine advances from event
    to event (arrival, completion, plan boundary, machine failure/repair),
    asking the scheduler for a fresh plan at each one, and records the
    realized {!Gripps_model.Schedule.t}.

    Schedulers are on-line: the callback only ever sees jobs released so
    far (enforced by construction — unreleased jobs have no remaining-work
    entry observable through {!active_jobs}) and the decisions it returns
    cannot be retracted for elapsed time.

    {b Faults.}  A {!Fault.trace} (explicit, or encoded as platform
    downtime intervals) makes machines fail and recover mid-run.  The
    scheduler is re-invoked with {!Failure}/{!Recovery} events exactly as
    it is on arrivals, allocations on down machines are rejected, and the
    {!Fault.loss} semantics decides whether in-flight work on a dying
    machine survives ([Pause]) or is re-added to the job's remaining work
    ([Crash]). *)

open Gripps_model

(** [(machine, [(job, share); ...])]: shares of each machine's time.
    Machines absent from the list are idle; shares must be positive and
    sum to at most 1 per machine. *)
type allocation = (int * (int * float) list) list

type event =
  | Arrival of int     (** job id just released *)
  | Completion of int  (** job id just finished *)
  | Boundary           (** the previous plan's horizon was reached *)
  | Failure of int     (** machine id just went down *)
  | Recovery of int    (** machine id just came back up *)

type state

val instance : state -> Instance.t
val now : state -> float

val remaining : state -> int -> float
(** Remaining Mflop of a released job.
    @raise Invalid_argument for a job not yet released. *)

val is_released : state -> int -> bool
val is_completed : state -> int -> bool

val machine_up : state -> int -> bool
(** Is the machine currently available?  Schedulers must not allocate work
    on a down machine.  @raise Invalid_argument on a bad machine id. *)

val lost_work : state -> int -> float
(** Mflop of the job's work destroyed so far by crash-semantics failures
    (always 0 under [Pause]). *)

val active_jobs : state -> int list
(** Released, not yet completed; increasing id (= release order). *)

val completion_time : state -> int -> float option

(** {1 Incremental scheduling support}

    The engine maintains a versioned dirty set so an incremental
    scheduler can update per-run structures (priority heaps, cached
    plans) in O(changes · log n) instead of rescanning every job. *)

val plan_version : state -> int
(** Monotone counter bumped at every scheduler invocation; two callbacks
    observing different versions are separated by at least one executed
    plan segment. *)

val dirty_jobs : state -> int list
(** During a scheduler callback: the support of the plan segment that
    just ended — every job that was allocated a positive rate since the
    previous callback.  This is a superset of the jobs whose remaining
    work changed (a zero-length segment leaves work untouched); jobs
    completed by the segment appear both here and as {!Completion}
    events.  Empty at the initial invocation.  Reset when the returned
    plan is validated, so it is only meaningful inside the callback. *)

val iter_dirty : (int -> unit) -> state -> unit
(** Allocation-free iteration over {!dirty_jobs} (unspecified order). *)

(** A plan: the allocation to apply from [now] on, valid until the next
    arrival/completion/failure/recovery or until [horizon] (if any),
    whichever comes first.  [horizon], when given, must be strictly later
    than [now]. *)
type plan = { allocation : allocation; horizon : float option }

val idle : plan

(** A scheduler: a name and a factory producing the per-run callback (the
    callback may close over mutable per-run state such as a precomputed
    plan queue).  The callback receives the batch of simultaneous events
    that just fired. *)
type scheduler = {
  name : string;
  make : Instance.t -> state -> event list -> plan;
}

val stateless : string -> (state -> event list -> plan) -> scheduler

val incremental :
  name:string ->
  init:(Instance.t -> 's) ->
  on_event:('s -> state -> event list -> plan) ->
  scheduler
(** An incremental scheduler: [init] builds the per-run state once (a
    fresh ['s] per simulation, so one scheduler value can be reused
    across runs and domains), and [on_event] folds each event batch into
    it — typically consulting {!dirty_jobs} to re-key only what moved.
    Layered on the {!scheduler} record, so every entry point accepts
    both styles unchanged. *)

exception Stalled of { time : float; pending : int list }
(** Raised when the scheduler leaves pending work unallocated with no
    future event (arrival, plan boundary, or machine repair) to wake it
    up. *)

exception
  Horizon_exceeded of {
    scheduler : string;
    time : float;            (** simulation date when the guard fired *)
    guard : float;           (** the [?horizon] value *)
    pending : int list;      (** jobs still unfinished *)
    last_event : event option;  (** last event dispatched to the scheduler *)
    journal : Gripps_obs.Obs.Journal.event list;
        (** the partial event journal of the aborted run — empty unless
            the observability level is [Events] *)
  }
(** Raised when the simulation advances past the [?horizon] abort guard —
    the diagnostic payload identifies where and on whose watch the run was
    dragged out, and (at [Events] observability level) carries the partial
    journal so the drag-out can be traced post mortem. *)

(** The single result shape of a simulation: the realized schedule, its
    metrics, the fault diagnostics, and the observability summary.  All
    entry points return it ({!run} merely projects out the schedule). *)
type report = {
  schedule : Schedule.t;
  metrics : Metrics.t;  (** objectives of the realized schedule *)
  lost : float array;   (** per-job Mflop destroyed by crashes *)
  replans : int;        (** scheduler callback invocations *)
  events : int;         (** simulation events dispatched (incl. batches) *)
  journal : Gripps_obs.Obs.Journal.event list;
      (** typed per-run trace — empty unless the observability level is
          [Events] (see {!Gripps_obs.Obs.set_level}).  Captured as a
          delta of the calling domain's journal buffer, so concurrent
          simulations in separate domains (a {!Gripps_parallel} sweep)
          each get exactly their own slice; a parallel sweep's merged
          journal is the concatenation of these slices in shard order. *)
}

val run_report :
  ?horizon:float ->
  ?faults:Fault.trace ->
  ?loss:Fault.loss ->
  scheduler ->
  Instance.t ->
  report
(** Simulates to completion of all jobs.
    @param horizon abort guard: simulating past this date raises
    {!Horizon_exceeded} (default: no guard).
    @param faults availability edges injected during the run (default
    none), merged with the platform's static downtime intervals.
    @param loss what happens to in-flight work when a machine dies
    (default [Crash]).
    @raise Stalled see above.
    @raise Invalid_argument when the scheduler returns an invalid
    allocation (oversubscribed machine, down machine, job without its
    databank, unreleased or completed job, negative or zero share,
    duplicate entry for one job on one machine, stale horizon), or when
    the fault trace references an unknown machine. *)

val run :
  ?horizon:float ->
  ?faults:Fault.trace ->
  ?loss:Fault.loss ->
  scheduler ->
  Instance.t ->
  Schedule.t
(** [run ... = (run_report ...).schedule]. *)
