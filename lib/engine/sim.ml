open Gripps_model
module Obs = Gripps_obs.Obs
module J = Obs.Journal
module Vec = Gripps_collections.Vec

type allocation = (int * (int * float) list) list

type event =
  | Arrival of int
  | Completion of int
  | Boundary
  | Failure of int
  | Recovery of int

type state = {
  inst : Instance.t;
  mutable now : float;
  remaining : float array;
  released : bool array;
  completed : float option array;
  up : bool array;
  lost : float array;
  (* Dense per-run scratch of the incremental core.  All of it persists
     across events so that processing one event costs O(size of the live
     plan), never O(n): the hot loop performs no allocation or scan
     proportional to the number of jobs. *)
  rates : float array;       (* processing rate per job under the live plan *)
  lost_rates : float array;  (* rate share evaporating on crashing machines *)
  rated : int Vec.t;         (* support of the live plan: jobs with rate > 0 *)
  tiny : int Vec.t;          (* jobs released with sub-resolution size *)
  seen : int array;          (* duplicate-entry stamps (validation) *)
  mutable stamp : int;
  mutable n_completed : int;
  mutable version : int;     (* bumps at every scheduler invocation *)
}

let instance st = st.inst
let now st = st.now

let is_released st j = st.released.(j)
let is_completed st j = Option.is_some st.completed.(j)

let remaining st j =
  if not st.released.(j) then invalid_arg "Sim.remaining: job not released";
  st.remaining.(j)

let machine_up st m =
  if m < 0 || m >= Array.length st.up then invalid_arg "Sim.machine_up: bad machine";
  st.up.(m)

let lost_work st j = st.lost.(j)

let active_jobs st =
  let acc = ref [] in
  for j = Array.length st.released - 1 downto 0 do
    if st.released.(j) && not (is_completed st j) then acc := j :: !acc
  done;
  !acc

let completion_time st j = st.completed.(j)

(* The dirty set handed to incremental schedulers: during a callback,
   [rated] still holds the support of the plan segment that just ended —
   a superset of the jobs whose remaining work changed since the previous
   callback (it is only reset when the next plan is validated). *)
let plan_version st = st.version
let iter_dirty f st = Vec.iter f st.rated
let dirty_jobs st = Vec.to_list st.rated

let complete st j t =
  st.remaining.(j) <- 0.0;
  st.completed.(j) <- Some t;
  st.n_completed <- st.n_completed + 1

type plan = { allocation : allocation; horizon : float option }

let idle = { allocation = []; horizon = None }

type scheduler = {
  name : string;
  make : Instance.t -> state -> event list -> plan;
}

let stateless name f = { name; make = (fun _inst -> f) }

let incremental ~name ~init ~on_event =
  { name;
    make =
      (fun inst ->
        let s = init inst in
        fun st evs -> on_event s st evs) }

exception Stalled of { time : float; pending : int list }

exception
  Horizon_exceeded of {
    scheduler : string;
    time : float;
    guard : float;
    pending : int list;
    last_event : event option;
    journal : J.event list;
  }

(* Engine-level observability counters: live at every level (they are
   plain increments), reported through the shared registry. *)
let c_events = Obs.Counter.make "sim.events"
let c_replans = Obs.Counter.make "sim.replans"
let c_segments = Obs.Counter.make "sim.segments"
let c_runs = Obs.Counter.make "sim.runs"

let share_eps = 1e-9

(* Check the scheduler's allocation against the model invariants and load
   the per-job processing rates into [st.rates]/[st.rated].  The previous
   plan's support is zeroed first, so the cost is O(|old plan| + |new
   plan|) — independent of the total number of jobs. *)
let check_allocation st name (alloc : allocation) =
  let platform = Instance.platform st.inst in
  let nj = Instance.num_jobs st.inst in
  Vec.iter
    (fun j ->
      st.rates.(j) <- 0.0;
      st.lost_rates.(j) <- 0.0)
    st.rated;
  Vec.clear st.rated;
  List.iter
    (fun (mid, shares) ->
      if mid < 0 || mid >= Platform.num_machines platform then
        invalid_arg (name ^ ": allocation references unknown machine");
      if not st.up.(mid) then
        invalid_arg (name ^ ": allocation references down machine");
      let m = Platform.machine platform mid in
      let total = List.fold_left (fun s (_, share) -> s +. share) 0.0 shares in
      if total > 1.0 +. share_eps then
        invalid_arg (name ^ ": machine oversubscribed");
      st.stamp <- st.stamp + 1;
      let stamp = st.stamp in
      List.iter
        (fun (jid, share) ->
          if jid < 0 || jid >= nj then
            invalid_arg (name ^ ": allocation references unknown job");
          if st.seen.(jid) = stamp then
            invalid_arg
              (Printf.sprintf "%s: duplicate entry for job %d on machine %d"
                 name jid mid);
          st.seen.(jid) <- stamp;
          if share < 0.0 then
            invalid_arg
              (Printf.sprintf "%s: negative share %g for job %d on machine %d"
                 name share jid mid);
          if share <= 0.0 then invalid_arg (name ^ ": non-positive share");
          if not st.released.(jid) then
            invalid_arg (name ^ ": job allocated before release");
          if is_completed st jid then
            invalid_arg (name ^ ": completed job allocated");
          if not (Machine.hosts m (Instance.job st.inst jid).Job.databank) then
            invalid_arg (name ^ ": job allocated to machine missing its databank");
          let d = share *. m.Machine.speed in
          if st.rates.(jid) = 0.0 && d > 0.0 then Vec.push st.rated jid;
          st.rates.(jid) <- st.rates.(jid) +. d)
        shares)
    alloc

type report = {
  schedule : Schedule.t;
  metrics : Metrics.t;
  lost : float array;
  replans : int;
  events : int;
  journal : J.event list;
}

let run_report ?horizon ?(faults = []) ?(loss = Fault.Crash) scheduler inst =
  let nj = Instance.num_jobs inst in
  let platform = Instance.platform inst in
  let nm = Platform.num_machines platform in
  let mark = J.position () in
  let replan_count = ref 0 in
  let event_count = ref 0 in
  Obs.Counter.incr c_runs;
  if J.on () then
    J.record
      (J.Run_start { scheduler = scheduler.name; jobs = nj; machines = nm });
  let st =
    { inst; now = 0.0; remaining = Array.map (fun (j : Job.t) -> j.size) (Instance.jobs inst);
      released = Array.make nj false; completed = Array.make nj None;
      up = Array.make nm true; lost = Array.make nj 0.0;
      rates = Array.make nj 0.0; lost_rates = Array.make nj 0.0;
      rated = Vec.create (); tiny = Vec.create ();
      seen = Array.make nj 0; stamp = 0;
      n_completed = 0; version = 0 }
  in
  (* The effective fault trace: explicit edges merged with the platform's
     static downtime intervals. *)
  let trace = ref (Fault.merge faults (Fault.of_platform platform)) in
  List.iter
    (fun (e : Fault.edge) ->
      if e.machine >= nm then
        invalid_arg (scheduler.name ^ ": fault trace references unknown machine"))
    !trace;
  (* Residual work below the float resolution of the whole instance is
     physically negligible (sub-microsecond of compute); treating it as
     done prevents plans computed with 1e-9-relative tolerances from
     leaving slivers that would only complete when the schedule drains. *)
  let total_work = Array.fold_left ( +. ) 0.0 st.remaining in
  let callback = scheduler.make inst in
  (* Dispatch a batch of events to the scheduler: journal the events and
     the plan it answers with, and keep the per-run tallies. *)
  let dispatch evs =
    event_count := !event_count + List.length evs;
    Obs.Counter.add c_events (List.length evs);
    incr replan_count;
    Obs.Counter.incr c_replans;
    if J.on () then
      List.iter
        (fun e ->
          J.record
            (match e with
             | Arrival j ->
               J.Sim_event { time = st.now; kind = J.Arrival; subject = j }
             | Completion j ->
               (* The exact completion date [C_j] may precede the dispatch
                  date by a rounding sliver; record the exact one so the
                  journal re-derives bit-identical stretches. *)
               let t = Option.value ~default:st.now st.completed.(j) in
               J.Sim_event { time = t; kind = J.Completion; subject = j }
             | Boundary ->
               J.Sim_event { time = st.now; kind = J.Boundary; subject = -1 }
             | Failure m ->
               J.Sim_event { time = st.now; kind = J.Failure; subject = m }
             | Recovery m ->
               J.Sim_event { time = st.now; kind = J.Recovery; subject = m }))
        evs;
    st.version <- st.version + 1;
    let p = callback st evs in
    if J.on () then
      J.record
        (J.Replan
           { time = st.now; scheduler = scheduler.name;
             allocation = p.allocation; horizon = p.horizon });
    p
  in
  let segments = Schedule.Builder.create () in
  let completions : int Vec.t = Vec.create () in
  let crashing = Array.make nm false in
  let crashed : int Vec.t = Vec.create () in
  let next_arrival = ref 0 in
  let last_event = ref None in
  (* Gather every job released at exactly the same date, flagging those
     whose whole size is already below the sliver resolution — they are
     the only unallocated jobs the sliver rule can ever fire on (an
     unallocated job's remaining work is constant, and an allocated job
     that drops below the threshold completes in that same advance). *)
  let pop_arrivals t =
    let evs = ref [] in
    while
      !next_arrival < nj && (Instance.job inst !next_arrival).Job.release <= t +. 1e-12
    do
      let j = !next_arrival in
      st.released.(j) <- true;
      let size = (Instance.job inst j).Job.size in
      if size <= 1e-9 *. Float.max size total_work then Vec.push st.tiny j;
      evs := Arrival j :: !evs;
      incr next_arrival
    done;
    List.rev !evs
  in
  (* Apply every availability edge due at [t], emitting Failure/Recovery
     for real state flips (duplicate edges are silently absorbed). *)
  let pop_faults t =
    let evs = ref [] in
    let continue_ = ref true in
    while !continue_ do
      match !trace with
      | e :: rest when e.Fault.time <= t +. 1e-12 ->
        trace := rest;
        if e.Fault.up <> st.up.(e.Fault.machine) then begin
          st.up.(e.Fault.machine) <- e.Fault.up;
          evs :=
            (if e.Fault.up then Recovery e.Fault.machine else Failure e.Fault.machine)
            :: !evs
        end
      | _ :: _ | [] -> continue_ := false
    done;
    List.rev !evs
  in
  let finished () = st.n_completed = nj in
  let plan = ref idle in
  (* Kick off: jump to the first release date, applying any availability
     edge that predates it. *)
  if nj > 0 then begin
    st.now <- (Instance.job inst 0).Job.release;
    let fault_evs = pop_faults st.now in
    let evs = pop_arrivals st.now @ fault_evs in
    (match List.rev evs with e :: _ -> last_event := Some e | [] -> ());
    plan := dispatch evs
  end;
  while not (finished ()) do
    (match horizon with
     | Some h when st.now > h ->
       raise
         (Horizon_exceeded
            { scheduler = scheduler.name; time = st.now; guard = h;
              pending = active_jobs st; last_event = !last_event;
              journal = J.since mark })
     | Some _ | None -> ());
    check_allocation st scheduler.name !plan.allocation;
    (* Earliest completion under the current rates: only the plan's
       support can complete, so scan [rated] instead of every job. *)
    let next_completion = ref infinity in
    Vec.iter
      (fun j ->
        let t = st.now +. (st.remaining.(j) /. st.rates.(j)) in
        if t < !next_completion then next_completion := t)
      st.rated;
    let arrival_t =
      if !next_arrival < nj then (Instance.job inst !next_arrival).Job.release
      else infinity
    in
    let fault_t = match !trace with e :: _ -> e.Fault.time | [] -> infinity in
    let horizon_t = match !plan.horizon with Some h -> h | None -> infinity in
    (match !plan.horizon with
     | Some h when h <= st.now +. 1e-12 ->
       invalid_arg (scheduler.name ^ ": plan horizon not in the future")
     | Some _ | None -> ());
    let t_next =
      Float.min !next_completion (Float.min arrival_t (Float.min horizon_t fault_t))
    in
    if t_next = infinity then
      raise (Stalled { time = st.now; pending = active_jobs st });
    let dt = t_next -. st.now in
    (* Machines dying at [t_next] under crash semantics lose the whole
       segment's work: it is re-added to the jobs' remaining work and the
       segment records no delivery from those machines. *)
    Vec.iter (fun m -> crashing.(m) <- false) crashed;
    Vec.clear crashed;
    let any_crash = ref false in
    if loss = Fault.Crash then begin
      let rec scan = function
        | (e : Fault.edge) :: rest when e.Fault.time <= t_next +. 1e-12 ->
          if (not e.Fault.up) && st.up.(e.Fault.machine)
             && not crashing.(e.Fault.machine)
          then begin
            crashing.(e.Fault.machine) <- true;
            Vec.push crashed e.Fault.machine;
            any_crash := true
          end;
          scan rest
        | _ :: _ | [] -> ()
      in
      scan !trace
    end;
    if !any_crash then
      List.iter
        (fun (mid, shares) ->
          if crashing.(mid) then begin
            let speed = (Platform.machine platform mid).Machine.speed in
            List.iter
              (fun (jid, share) ->
                st.lost_rates.(jid) <- st.lost_rates.(jid) +. (share *. speed))
              shares
          end)
        !plan.allocation;
    (* Advance work and record the segment (crashed machines deliver
       nothing, so their shares are dropped from the record). *)
    let delivered =
      if !any_crash then List.filter (fun (mid, _) -> not crashing.(mid)) !plan.allocation
      else !plan.allocation
    in
    if dt > 0.0 && delivered <> [] then begin
      Schedule.Builder.add segments
        { Schedule.start_time = st.now; end_time = t_next; shares = delivered };
      Obs.Counter.incr c_segments;
      if J.on () then
        J.record
          (J.Segment
             { start_time = st.now; end_time = t_next; shares = delivered })
    end;
    let eps_t = 1e-9 *. Float.max 1.0 (abs_float t_next) in
    Vec.clear completions;
    (* Advance the plan's support only.  A released, uncompleted job
       outside [rated ∪ tiny] has rate 0 and remaining work untouched
       since the last time it was allocated (when any sub-threshold
       sliver would already have completed it), so neither branch below
       could fire on it. *)
    Vec.iter
      (fun j ->
        if st.lost_rates.(j) > 0.0 then begin
          (* Part of this job's rate evaporates with the crash: only the
             surviving machines' work counts. *)
          st.remaining.(j) <- st.remaining.(j) -. ((st.rates.(j) -. st.lost_rates.(j)) *. dt);
          st.lost.(j) <- st.lost.(j) +. (st.lost_rates.(j) *. dt)
        end
        else begin
          let t_fin = st.now +. (st.remaining.(j) /. st.rates.(j)) in
          if t_fin <= t_next +. eps_t then begin
            complete st j t_fin;
            Vec.push completions j
          end
          else st.remaining.(j) <- st.remaining.(j) -. (st.rates.(j) *. dt)
        end;
        (* A rounding sliver left by a float-computed plan counts as
           done — otherwise it would complete only when the scheduler
           next touches the job, wrecking its stretch. *)
        if
          (not (is_completed st j))
          && st.remaining.(j)
             <= 1e-9 *. Float.max (Instance.job inst j).Job.size total_work
        then begin
          complete st j t_next;
          Vec.push completions j
        end)
      st.rated;
    Vec.iter
      (fun j ->
        if
          (not (is_completed st j))
          && st.remaining.(j)
             <= 1e-9 *. Float.max (Instance.job inst j).Job.size total_work
        then begin
          complete st j t_next;
          Vec.push completions j
        end)
      st.tiny;
    Vec.clear st.tiny;
    (* The scheduler contract emits simultaneous completions in ascending
       job order; the support scan discovers them in plan order, so sort. *)
    Vec.sort compare completions;
    st.now <- t_next;
    let arrivals = pop_arrivals t_next in
    let fault_evs = pop_faults t_next in
    let boundary =
      if horizon_t <= t_next +. eps_t && not (finished ()) then [ Boundary ] else []
    in
    let completion_evs = List.map (fun j -> Completion j) (Vec.to_list completions) in
    let events = arrivals @ completion_evs @ fault_evs @ boundary in
    (match List.rev events with e :: _ -> last_event := Some e | [] -> ());
    if not (finished ()) then plan := dispatch events
    else begin
      (* Journal the final completion batch even though no replan follows:
         the journal must contain every job's exact completion date. *)
      event_count := !event_count + List.length events;
      Obs.Counter.add c_events (List.length events);
      if J.on () then
        List.iter
          (fun e ->
            match e with
            | Completion j ->
              let t = Option.value ~default:st.now st.completed.(j) in
              J.record (J.Sim_event { time = t; kind = J.Completion; subject = j })
            | Arrival _ | Boundary | Failure _ | Recovery _ -> ())
          events
    end
  done;
  if J.on () then J.record (J.Run_end { time = st.now; completed = nj });
  let schedule =
    Schedule.make ~instance:inst ~segments:(Schedule.Builder.segments segments)
      ~completion:(Array.copy st.completed)
  in
  { schedule;
    metrics = Metrics.of_schedule schedule;
    lost = Array.copy st.lost;
    replans = !replan_count;
    events = !event_count;
    journal = J.since mark }

let run ?horizon ?faults ?loss scheduler inst =
  (run_report ?horizon ?faults ?loss scheduler inst).schedule
