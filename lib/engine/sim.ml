open Gripps_model
module Obs = Gripps_obs.Obs
module J = Obs.Journal
module Vec = Gripps_collections.Vec

type allocation = (int * (int * float) list) list

type event =
  | Arrival of int
  | Completion of int
  | Boundary
  | Failure of int
  | Recovery of int

(* Buffered event codes: the hot loop stores the pending batch as two int
   columns instead of consing an [event list] per dispatch. *)
let k_arrival = 0
let k_completion = 1
let k_boundary = 2
let k_failure = 3
let k_recovery = 4

let event_of_code k subj =
  match k with
  | 0 -> Arrival subj
  | 1 -> Completion subj
  | 2 -> Boundary
  | 3 -> Failure subj
  | _ -> Recovery subj

(* ------------------------------------------------------------------ *)
(* Flat plan buffer                                                    *)
(* ------------------------------------------------------------------ *)

module Plan_buf = struct
  (* A plan as four parallel columns instead of the legacy
     [(machine, (job, share) list) list]: machine "runs" (one per legacy
     group, in write order) indexing into a flat (job, share) entry
     array.  The buffer is cleared and refilled at every replan, so a
     steady-state dispatch allocates nothing once the columns have grown
     to the plan's working size.

     Write order vs. canonical order: the legacy heap walk builds its
     list by prepending, so the allocation list is the {e reverse} of
     grab order.  A flat writer pushes runs in grab order and clears the
     buffer with [~grab_order:true]; every canonical-order accessor then
     maps run [i] to raw run [nruns - 1 - i], reproducing the legacy
     list order — float summation order included — bit for bit.  The
     engine's adapter for legacy list-returning schedulers flattens in
     list order with [grab_order = false]. *)
  type t = {
    mutable run_mach : int array;  (* machine id per run, write order *)
    mutable run_start : int array; (* first entry of each run *)
    mutable nruns : int;
    mutable e_job : int array;
    mutable e_share : float array;
    mutable len : int;
    hor : float array;             (* hor.(0): horizon; [infinity] = none.
                                      A cell, not a mutable field: float
                                      fields of a mixed record box on
                                      every store. *)
    mutable grab_order : bool;
  }

  let create () =
    { run_mach = Array.make 8 0;
      run_start = Array.make 8 0;
      nruns = 0;
      e_job = Array.make 16 0;
      e_share = Array.make 16 0.0;
      len = 0;
      hor = Array.make 1 infinity;
      grab_order = false }

  let clear ?(grab_order = false) b =
    b.nruns <- 0;
    b.len <- 0;
    b.hor.(0) <- infinity;
    b.grab_order <- grab_order

  let set_horizon b h = b.hor.(0) <- h
  let horizon b = b.hor.(0)

  let begin_machine b m =
    if b.nruns = Array.length b.run_mach then begin
      let ncap = 2 * b.nruns in
      let nm = Array.make ncap 0 and ns = Array.make ncap 0 in
      Array.blit b.run_mach 0 nm 0 b.nruns;
      Array.blit b.run_start 0 ns 0 b.nruns;
      b.run_mach <- nm;
      b.run_start <- ns
    end;
    b.run_mach.(b.nruns) <- m;
    b.run_start.(b.nruns) <- b.len;
    b.nruns <- b.nruns + 1

  let push_share b ~job ~share =
    if b.nruns = 0 then invalid_arg "Plan_buf.push_share: no current machine";
    if b.len = Array.length b.e_job then begin
      let ncap = 2 * b.len in
      let nj = Array.make ncap 0 and nsh = Array.make ncap 0.0 in
      Array.blit b.e_job 0 nj 0 b.len;
      Array.blit b.e_share 0 nsh 0 b.len;
      b.e_job <- nj;
      b.e_share <- nsh
    end;
    b.e_job.(b.len) <- job;
    b.e_share.(b.len) <- share;
    b.len <- b.len + 1

  (* [push_share ~share:1.0] without the float argument: [push_share] is
     too big to inline, so its [share] is boxed at every call — one
     minor-heap block per machine grab.  Full-share grabs are the whole
     of list scheduling, so give them a float-free entry point (the 1.0
     is a static constant inside the callee). *)
  let push_unit_share b ~job = push_share b ~job ~share:1.0

  let runs b = b.nruns
  let is_empty b = b.nruns = 0

  (* Canonical-order indexing (one-liners so they inline and stay
     allocation-free at every call site). *)
  let raw b i = if b.grab_order then b.nruns - 1 - i else i
  let run_machine b i = b.run_mach.(raw b i)

  let run_length b i =
    let r = raw b i in
    (if r + 1 < b.nruns then b.run_start.(r + 1) else b.len) - b.run_start.(r)

  let entry_job b i k = b.e_job.(b.run_start.(raw b i) + k)
  let entry_share b i k = b.e_share.(b.run_start.(raw b i) + k)

  let of_allocation b (alloc : allocation) =
    clear b;
    List.iter
      (fun (m, shares) ->
        begin_machine b m;
        List.iter (fun (j, share) -> push_share b ~job:j ~share) shares)
      alloc

  let to_allocation b : allocation =
    let rec entries i k acc =
      if k < 0 then acc
      else entries i (k - 1) ((entry_job b i k, entry_share b i k) :: acc)
    in
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) ((run_machine b i, entries i (run_length b i - 1) []) :: acc)
    in
    go (runs b - 1) []
end

(* ------------------------------------------------------------------ *)
(* Engine state                                                        *)
(* ------------------------------------------------------------------ *)

type state = {
  inst : Instance.t;
  clock : float array;       (* clock.(0) = now.  A float cell instead of a
                                mutable field: mixed-record float stores box
                                on the minor heap at every event. *)
  scratch : float array;     (* scratch.(0): rolling accumulator (running
                                minima / share totals); scratch.(1): the
                                segment end date, visible to the loop's
                                pre-built closures without a boxed float
                                argument. *)
  remaining : float array;
  released : bool array;
  ctimes : float array;      (* completion date per job; NaN = pending.  A
                                float column instead of [float option array]:
                                completing a job is an unboxed store, not a
                                [Some] allocation. *)
  up : bool array;
  lost : float array;
  (* Dense per-run scratch of the incremental core.  All of it persists
     across events so that processing one event costs O(size of the live
     plan), never O(n): the hot loop performs no allocation or scan
     proportional to the number of jobs. *)
  rates : float array;       (* processing rate per job under the live plan *)
  lost_rates : float array;  (* rate share evaporating on crashing machines *)
  rated : int Vec.t;         (* support of the live plan: jobs with rate > 0 *)
  tiny : int Vec.t;          (* jobs released with sub-resolution size *)
  seen : int array;          (* duplicate-entry stamps (validation) *)
  mutable stamp : int;
  mutable n_completed : int;
  mutable version : int;     (* bumps at every scheduler invocation *)
  (* the pending event batch, as int columns *)
  mutable ev_kinds : int array;
  mutable ev_subj : int array;
  mutable ev_len : int;
  mutable last_kind : int;   (* last dispatched event; -1 = none *)
  mutable last_subj : int;
  plan : Plan_buf.t;         (* the live plan *)
}

let instance st = st.inst
let now st = st.clock.(0)

let is_released st j = st.released.(j)
let is_completed st j = not (Float.is_nan st.ctimes.(j))

let remaining st j =
  if not st.released.(j) then invalid_arg "Sim.remaining: job not released";
  st.remaining.(j)

let machine_up st m =
  if m < 0 || m >= Array.length st.up then invalid_arg "Sim.machine_up: bad machine";
  st.up.(m)

let lost_work st j = st.lost.(j)

let active_jobs st =
  let acc = ref [] in
  for j = Array.length st.released - 1 downto 0 do
    if st.released.(j) && not (is_completed st j) then acc := j :: !acc
  done;
  !acc

let completion_time st j =
  if is_completed st j then Some st.ctimes.(j) else None

module Columns = struct
  let remaining st = st.remaining
  let completion_times st = st.ctimes
end

(* The dirty set handed to incremental schedulers: during a callback,
   [rated] still holds the support of the plan segment that just ended —
   a superset of the jobs whose remaining work changed since the previous
   callback (it is only reset when the next plan is validated). *)
let plan_version st = st.version
let iter_dirty f st = Vec.iter f st.rated
let dirty_jobs st = Vec.to_list st.rated
let dirty_count st = Vec.length st.rated
let dirty_job st i = Vec.get st.rated i

module Events = struct
  let count st = st.ev_len

  let kind st i =
    match st.ev_kinds.(i) with
    | 0 -> `Arrival
    | 1 -> `Completion
    | 2 -> `Boundary
    | 3 -> `Failure
    | _ -> `Recovery

  let subject st i = st.ev_subj.(i)
end

let push_event st k subj =
  let cap = Array.length st.ev_kinds in
  if st.ev_len = cap then begin
    let ncap = 2 * cap in
    let nk = Array.make ncap 0 and ns = Array.make ncap 0 in
    Array.blit st.ev_kinds 0 nk 0 st.ev_len;
    Array.blit st.ev_subj 0 ns 0 st.ev_len;
    st.ev_kinds <- nk;
    st.ev_subj <- ns
  end;
  st.ev_kinds.(st.ev_len) <- k;
  st.ev_subj.(st.ev_len) <- subj;
  st.ev_len <- st.ev_len + 1

let materialize_events st =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (event_of_code st.ev_kinds.(i) st.ev_subj.(i) :: acc)
  in
  go (st.ev_len - 1) []



let complete st j t =
  st.remaining.(j) <- 0.0;
  st.ctimes.(j) <- t;
  st.n_completed <- st.n_completed + 1

type plan = { allocation : allocation; horizon : float option }

let idle = { allocation = []; horizon = None }

type scheduler = {
  name : string;
  make : Instance.t -> state -> event list -> plan;
}

let stateless name f = { name; make = (fun _inst -> f) }

let incremental ~name ~init ~on_event =
  { name;
    make =
      (fun inst ->
        let s = init inst in
        fun st evs -> on_event s st evs) }

type flat_scheduler = {
  fname : string;
  fmake : Instance.t -> state -> Plan_buf.t -> unit;
}

let flat_stateless name f = { fname = name; fmake = (fun _inst -> f) }

let flat_incremental ~name ~init ~on_event =
  { fname = name;
    fmake =
      (fun inst ->
        let s = init inst in
        fun st buf -> on_event s st buf) }

(* The blind view is the engine state itself; the restriction is entirely
   in the signature (sim.mli keeps [view] abstract and only the accessors
   below can be applied to one).  Per-job accessors additionally refuse
   unreleased jobs: a non-clairvoyant scheduler learns a job's databank,
   release date and owner when the job arrives, never before. *)
module Blind = struct
  type view = state

  let platform v = Instance.platform v.inst
  let now = now
  let active_jobs = active_jobs
  let is_completed = is_completed
  let machine_up = machine_up

  let job_field name field v j =
    if j < 0 || j >= Array.length v.released || not v.released.(j) then
      invalid_arg ("Sim.Blind." ^ name ^ ": job not released");
    field (Instance.job v.inst j)

  let databank v j = job_field "databank" (fun (j : Job.t) -> j.databank) v j
  let release v j = job_field "release" (fun (j : Job.t) -> j.release) v j
  let user v j = job_field "user" (fun (j : Job.t) -> j.user) v j
end

let nonclairvoyant name f = stateless name f

let nonclairvoyant_incremental ~name ~init ~on_event =
  { name;
    make =
      (fun inst ->
        let s = init (Instance.platform inst) in
        fun st evs -> on_event s st evs) }

exception Stalled of { time : float; pending : int list }

exception
  Horizon_exceeded of {
    scheduler : string;
    time : float;
    guard : float;
    pending : int list;
    last_event : event option;
    journal : J.event list;
  }

(* Engine-level observability counters: live at every level (they are
   plain increments), reported through the shared registry. *)
let c_events = Obs.Counter.make "sim.events"
let c_replans = Obs.Counter.make "sim.replans"
let c_segments = Obs.Counter.make "sim.segments"
let c_runs = Obs.Counter.make "sim.runs"

(* Minor-heap words allocated inside [run_core], accumulated through the
   registry so harnesses (Scale, CI's allocations-per-event gate) can
   read allocations-per-event without instrumenting the engine. *)
let c_minor_words = Obs.Counter.make "sim.minor_words"

let share_eps = 1e-9

(* Local min/max over finite floats: one-liners the compiler inlines, so
   no boxing at a call boundary (the [Float.min]/[Float.max] NaN-handling
   branches are irrelevant here — event dates and work sizes are never
   NaN). *)
let fmin (a : float) (b : float) = if b < a then b else a
let fmax (a : float) (b : float) = if b > a then b else a

(* Integer comparator at the top level: passing it to
   [Vec.insertion_sort] allocates nothing (a closure literal would). *)
let int_compare (a : int) (b : int) = compare a b

(* Check the plan buffer against the model invariants and load the
   per-job processing rates into [st.rates]/[st.rated].  The previous
   plan's support is zeroed first, so the cost is O(|old plan| + |new
   plan|) — independent of the total number of jobs — and the pass
   allocates nothing (error paths excepted). *)
let check_plan st name (b : Plan_buf.t) =
  let platform = Instance.platform st.inst in
  let nmach = Platform.num_machines platform in
  let nj = Instance.num_jobs st.inst in
  for i = 0 to Vec.length st.rated - 1 do
    let j = Vec.get st.rated i in
    st.rates.(j) <- 0.0;
    st.lost_rates.(j) <- 0.0
  done;
  Vec.clear st.rated;
  let nr = Plan_buf.runs b in
  for i = 0 to nr - 1 do
    let mid = Plan_buf.run_machine b i in
    if mid < 0 || mid >= nmach then
      invalid_arg (name ^ ": allocation references unknown machine");
    if not st.up.(mid) then
      invalid_arg (name ^ ": allocation references down machine");
    let m = Platform.machine platform mid in
    let len = Plan_buf.run_length b i in
    st.scratch.(0) <- 0.0;
    for k = 0 to len - 1 do
      st.scratch.(0) <- st.scratch.(0) +. Plan_buf.entry_share b i k
    done;
    if st.scratch.(0) > 1.0 +. share_eps then
      invalid_arg (name ^ ": machine oversubscribed");
    st.stamp <- st.stamp + 1;
    let stamp = st.stamp in
    for k = 0 to len - 1 do
      let jid = Plan_buf.entry_job b i k in
      let share = Plan_buf.entry_share b i k in
      if jid < 0 || jid >= nj then
        invalid_arg (name ^ ": allocation references unknown job");
      if st.seen.(jid) = stamp then
        invalid_arg
          (Printf.sprintf "%s: duplicate entry for job %d on machine %d"
             name jid mid);
      st.seen.(jid) <- stamp;
      if share < 0.0 then
        invalid_arg
          (Printf.sprintf "%s: negative share %g for job %d on machine %d"
             name share jid mid);
      if share <= 0.0 then invalid_arg (name ^ ": non-positive share");
      if not st.released.(jid) then
        invalid_arg (name ^ ": job allocated before release");
      if is_completed st jid then
        invalid_arg (name ^ ": completed job allocated");
      if not (Machine.hosts m (Instance.job st.inst jid).Job.databank) then
        invalid_arg (name ^ ": job allocated to machine missing its databank");
      let d = share *. m.Machine.speed in
      if st.rates.(jid) = 0.0 && d > 0.0 then Vec.push st.rated jid;
      st.rates.(jid) <- st.rates.(jid) +. d
    done
  done

type report = {
  schedule : Schedule.t;
  metrics : Metrics.t;
  lost : float array;
  replans : int;
  events : int;
  journal : J.event list;
}

(* The per-run scheduler callback, either style. *)
type driver =
  | Legacy of (state -> event list -> plan)
  | Flat of (state -> Plan_buf.t -> unit)


let run_core ?horizon ?(faults = []) ?(loss = Fault.Crash) ~record ~name
    ~driver inst =
  let nj = Instance.num_jobs inst in
  let platform = Instance.platform inst in
  let nm = Platform.num_machines platform in
  let mark = J.position () in
  let replan_count = ref 0 in
  let event_count = ref 0 in
  let mw0 = Gc.minor_words () in
  Obs.Counter.incr c_runs;
  if J.on () then
    J.record (J.Run_start { scheduler = name; jobs = nj; machines = nm });
  let st =
    { inst;
      clock = Array.make 1 0.0;
      scratch = Array.make 2 0.0;
      remaining = Array.map (fun (j : Job.t) -> j.size) (Instance.jobs inst);
      released = Array.make nj false;
      ctimes = Array.make nj nan;
      up = Array.make nm true;
      lost = Array.make nj 0.0;
      rates = Array.make nj 0.0;
      lost_rates = Array.make nj 0.0;
      rated = Vec.create ();
      tiny = Vec.create ();
      seen = Array.make nj 0;
      stamp = 0;
      n_completed = 0;
      version = 0;
      ev_kinds = Array.make 16 0;
      ev_subj = Array.make 16 0;
      ev_len = 0;
      last_kind = -1;
      last_subj = 0;
      plan = Plan_buf.create () }
  in
  (* The effective fault trace: explicit edges merged with the platform's
     static downtime intervals. *)
  let trace = ref (Fault.merge faults (Fault.of_platform platform)) in
  List.iter
    (fun (e : Fault.edge) ->
      if e.machine >= nm then
        invalid_arg (name ^ ": fault trace references unknown machine"))
    !trace;
  (* Residual work below the float resolution of the whole instance is
     physically negligible (sub-microsecond of compute); treating it as
     done prevents plans computed with 1e-9-relative tolerances from
     leaving slivers that would only complete when the schedule drains. *)
  let total_work =
    (* Explicit loop through the scratch cell: [Array.fold_left ( +. )]
       boxes every intermediate sum — 2 words per job before the run
       even starts. *)
    st.scratch.(0) <- 0.0;
    for j = 0 to nj - 1 do
      st.scratch.(0) <- st.scratch.(0) +. st.remaining.(j)
    done;
    st.scratch.(0)
  in
  let last_event_opt () =
    if st.last_kind < 0 then None
    else Some (event_of_code st.last_kind st.last_subj)
  in
  let note_last () =
    if st.ev_len > 0 then begin
      st.last_kind <- st.ev_kinds.(st.ev_len - 1);
      st.last_subj <- st.ev_subj.(st.ev_len - 1)
    end
  in
  let journal_events () =
    for i = 0 to st.ev_len - 1 do
      let subj = st.ev_subj.(i) in
      J.record
        (match st.ev_kinds.(i) with
         | 0 -> J.Sim_event { time = now st; kind = J.Arrival; subject = subj }
         | 1 ->
           (* The exact completion date [C_j] may precede the dispatch
              date by a rounding sliver; record the exact one so the
              journal re-derives bit-identical stretches. *)
           J.Sim_event { time = st.ctimes.(subj); kind = J.Completion; subject = subj }
         | 2 -> J.Sim_event { time = now st; kind = J.Boundary; subject = -1 }
         | 3 -> J.Sim_event { time = now st; kind = J.Failure; subject = subj }
         | _ -> J.Sim_event { time = now st; kind = J.Recovery; subject = subj })
    done
  in
  (* Dispatch the buffered batch to the scheduler: journal the events and
     the plan it answers with, and keep the per-run tallies.  Flat
     schedulers write into the reusable plan buffer; legacy list
     schedulers get the batch as an [event list] and their answer is
     flattened into the same buffer, so one advance loop serves both. *)
  let dispatch () =
    event_count := !event_count + st.ev_len;
    Obs.Counter.add c_events st.ev_len;
    incr replan_count;
    Obs.Counter.incr c_replans;
    if J.on () then journal_events ();
    st.version <- st.version + 1;
    match driver with
    | Flat f ->
      Plan_buf.clear ~grab_order:true st.plan;
      f st st.plan;
      if J.on () then
        J.record
          (J.Replan
             { time = now st; scheduler = name;
               allocation = Plan_buf.to_allocation st.plan;
               horizon =
                 (let h = Plan_buf.horizon st.plan in
                  if h = infinity then None else Some h) })
    | Legacy cb ->
      let p = cb st (materialize_events st) in
      if J.on () then
        J.record
          (J.Replan
             { time = now st; scheduler = name; allocation = p.allocation;
               horizon = p.horizon });
      Plan_buf.of_allocation st.plan p.allocation;
      (match p.horizon with
       | Some h -> Plan_buf.set_horizon st.plan h
       | None -> ())
  in
  let segments = Schedule.Builder.create () in
  let completions : int Vec.t = Vec.create () in
  let crashing = Array.make nm false in
  let crashed : int Vec.t = Vec.create () in
  let next_arrival = ref 0 in
  (* Gather every job released at exactly the current date, flagging those
     whose whole size is already below the sliver resolution — they are
     the only unallocated jobs the sliver rule can ever fire on (an
     unallocated job's remaining work is constant, and an allocated job
     that drops below the threshold completes in that same advance).
     Reads the date from [st.clock] rather than taking it as an argument:
     a float argument to this (non-inlined, recursive) closure would be
     boxed at every event. *)
  let rec pop_arrivals () =
    if
      !next_arrival < nj
      && (Instance.job inst !next_arrival).Job.release <= st.clock.(0) +. 1e-12
    then begin
      let j = !next_arrival in
      st.released.(j) <- true;
      let size = (Instance.job inst j).Job.size in
      if size <= 1e-9 *. fmax size total_work then Vec.push st.tiny j;
      push_event st k_arrival j;
      incr next_arrival;
      pop_arrivals ()
    end
  in
  (* Apply every availability edge due at the current date, emitting
     Failure/Recovery for real state flips (duplicate edges are silently
     absorbed). *)
  let rec pop_faults () =
    match !trace with
    | e :: rest when e.Fault.time <= st.clock.(0) +. 1e-12 ->
      trace := rest;
      if e.Fault.up <> st.up.(e.Fault.machine) then begin
        st.up.(e.Fault.machine) <- e.Fault.up;
        push_event st
          (if e.Fault.up then k_recovery else k_failure)
          e.Fault.machine
      end;
      pop_faults ()
    | _ :: _ | [] -> ()
  in
  (* Machines dying at the segment end (scratch.(1)) under crash
     semantics: collect them into [crashed]/[crashing]. *)
  let rec crash_scan l =
    match l with
    | (e : Fault.edge) :: rest when e.Fault.time <= st.scratch.(1) +. 1e-12 ->
      if
        (not e.Fault.up) && st.up.(e.Fault.machine)
        && not crashing.(e.Fault.machine)
      then begin
        crashing.(e.Fault.machine) <- true;
        Vec.push crashed e.Fault.machine
      end;
      crash_scan rest
    | _ :: _ | [] -> ()
  in
  (* Does any plan run survive the crashes (= does the segment deliver
     anything worth recording)? *)
  let rec any_live_run i =
    i < Plan_buf.runs st.plan
    && ((not crashing.(Plan_buf.run_machine st.plan i)) || any_live_run (i + 1))
  in
  (* The delivered shares as a legacy list, canonical order, crashed
     machines dropped — materialized only when a segment is actually
     recorded (record mode or journaling). *)
  let delivered_shares () =
    let b = st.plan in
    let rec entries i k acc =
      if k < 0 then acc
      else
        entries i (k - 1)
          ((Plan_buf.entry_job b i k, Plan_buf.entry_share b i k) :: acc)
    in
    let rec go i acc =
      if i < 0 then acc
      else
        let m = Plan_buf.run_machine b i in
        if crashing.(m) then go (i - 1) acc
        else go (i - 1) ((m, entries i (Plan_buf.run_length b i - 1) []) :: acc)
    in
    go (Plan_buf.runs b - 1) []
  in
  let finished () = st.n_completed = nj in
  (* Kick off: jump to the first release date, applying any availability
     edge that predates it.  The batch order contract is arrivals first,
     faults second, but the fault edges must be {e applied} first — so
     pop them into the buffer head and rotate the arrivals in front. *)
  if nj > 0 then begin
    st.clock.(0) <- (Instance.job inst 0).Job.release;
    st.ev_len <- 0;
    pop_faults ();
    let nfaults = st.ev_len in
    pop_arrivals ();
    if nfaults > 0 && st.ev_len > nfaults then begin
      let rev a lo hi =
        let i = ref lo and j = ref hi in
        while !i < !j do
          let t = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- t;
          incr i;
          decr j
        done
      in
      rev st.ev_kinds 0 (nfaults - 1);
      rev st.ev_subj 0 (nfaults - 1);
      rev st.ev_kinds nfaults (st.ev_len - 1);
      rev st.ev_subj nfaults (st.ev_len - 1);
      rev st.ev_kinds 0 (st.ev_len - 1);
      rev st.ev_subj 0 (st.ev_len - 1)
    end;
    note_last ();
    dispatch ()
  end;
  while not (finished ()) do
    (match horizon with
     | Some h when now st > h ->
       raise
         (Horizon_exceeded
            { scheduler = name; time = now st; guard = h;
              pending = active_jobs st; last_event = last_event_opt ();
              journal = J.since mark })
     | Some _ | None -> ());
    check_plan st name st.plan;
    (* Earliest completion under the current rates: only the plan's
       support can complete, so scan [rated] instead of every job.  The
       running minimum lives in a scratch cell — a [float ref] would box
       on every store. *)
    st.scratch.(0) <- infinity;
    let nowv = st.clock.(0) in
    for i = 0 to Vec.length st.rated - 1 do
      let j = Vec.get st.rated i in
      let t = nowv +. (st.remaining.(j) /. st.rates.(j)) in
      if t < st.scratch.(0) then st.scratch.(0) <- t
    done;
    let arrival_t =
      if !next_arrival < nj then (Instance.job inst !next_arrival).Job.release
      else infinity
    in
    let fault_t = match !trace with e :: _ -> e.Fault.time | [] -> infinity in
    let horizon_t = st.plan.Plan_buf.hor.(0) in
    if horizon_t <= nowv +. 1e-12 then
      invalid_arg (name ^ ": plan horizon not in the future");
    (* Fold the next-date minimum through the scratch cell rather than an
       [fmin] chain: the chain's if-joins mix unboxed floats with boxed
       field loads ([Fault.time], the [infinity] constant), and the
       compiler reconciles such a join by boxing the unboxed side — one
       minor-heap block per iteration.  Array compares/stores stay
       unboxed.  All four dates are non-NaN, so the fold computes exactly
       [fmin next_completion (fmin arrival_t (fmin horizon_t fault_t))]. *)
    if arrival_t < st.scratch.(0) then st.scratch.(0) <- arrival_t;
    if fault_t < st.scratch.(0) then st.scratch.(0) <- fault_t;
    if horizon_t < st.scratch.(0) then st.scratch.(0) <- horizon_t;
    let t_next = st.scratch.(0) in
    if t_next = infinity then
      raise (Stalled { time = st.clock.(0); pending = active_jobs st });
    let dt = t_next -. nowv in
    (* Machines dying at [t_next] under crash semantics lose the whole
       segment's work: it is re-added to the jobs' remaining work and the
       segment records no delivery from those machines. *)
    for i = 0 to Vec.length crashed - 1 do
      crashing.(Vec.get crashed i) <- false
    done;
    Vec.clear crashed;
    (* [scratch.(1)] carries the segment end past this point: reading it
       back where a {e boxed} [t_next] is needed (the segment records
       below, built only when recording or journaling) keeps the binding
       itself unboxed — a float [let] with even one boxed use site is
       boxed at every iteration, branch taken or not. *)
    st.scratch.(1) <- t_next;
    if loss = Fault.Crash then crash_scan !trace;
    let any_crash = Vec.length crashed > 0 in
    if any_crash then begin
      let b = st.plan in
      for i = 0 to Plan_buf.runs b - 1 do
        let mid = Plan_buf.run_machine b i in
        if crashing.(mid) then begin
          let speed = (Platform.machine platform mid).Machine.speed in
          let len = Plan_buf.run_length b i in
          for k = 0 to len - 1 do
            let jid = Plan_buf.entry_job b i k in
            st.lost_rates.(jid) <-
              st.lost_rates.(jid) +. (Plan_buf.entry_share b i k *. speed)
          done
        end
      done
    end;
    (* Advance work and record the segment (crashed machines deliver
       nothing, so their shares are dropped from the record). *)
    if dt > 0.0 && any_live_run 0 then begin
      if record || J.on () then begin
        let seg_start = st.clock.(0) and seg_end = st.scratch.(1) in
        let shares = delivered_shares () in
        if record then
          Schedule.Builder.add segments
            { Schedule.start_time = seg_start; end_time = seg_end; shares };
        if J.on () then
          J.record
            (J.Segment { start_time = seg_start; end_time = seg_end; shares })
      end;
      Obs.Counter.incr c_segments
    end;
    let eps_t = 1e-9 *. fmax 1.0 (abs_float t_next) in
    Vec.clear completions;
    (* Advance the plan's support only.  A released, uncompleted job
       outside [rated ∪ tiny] has rate 0 and remaining work untouched
       since the last time it was allocated (when any sub-threshold
       sliver would already have completed it), so neither branch below
       could fire on it. *)
    for i = 0 to Vec.length st.rated - 1 do
      let j = Vec.get st.rated i in
      if st.lost_rates.(j) > 0.0 then begin
        (* Part of this job's rate evaporates with the crash: only the
           surviving machines' work counts. *)
        st.remaining.(j) <-
          st.remaining.(j) -. ((st.rates.(j) -. st.lost_rates.(j)) *. dt);
        st.lost.(j) <- st.lost.(j) +. (st.lost_rates.(j) *. dt)
      end
      else begin
        let t_fin = nowv +. (st.remaining.(j) /. st.rates.(j)) in
        if t_fin <= t_next +. eps_t then begin
          complete st j t_fin;
          Vec.push completions j
        end
        else st.remaining.(j) <- st.remaining.(j) -. (st.rates.(j) *. dt)
      end;
      (* A rounding sliver left by a float-computed plan counts as
         done — otherwise it would complete only when the scheduler
         next touches the job, wrecking its stretch. *)
      if
        (not (is_completed st j))
        && st.remaining.(j)
           <= 1e-9 *. fmax (Instance.job inst j).Job.size total_work
      then begin
        complete st j t_next;
        Vec.push completions j
      end
    done;
    for i = 0 to Vec.length st.tiny - 1 do
      let j = Vec.get st.tiny i in
      if
        (not (is_completed st j))
        && st.remaining.(j)
           <= 1e-9 *. fmax (Instance.job inst j).Job.size total_work
      then begin
        complete st j t_next;
        Vec.push completions j
      end
    done;
    Vec.clear st.tiny;
    (* The scheduler contract emits simultaneous completions in ascending
       job order; the support scan discovers them in plan order, so sort
       (in place: batches are tiny and [Vec.sort] copies). *)
    Vec.insertion_sort int_compare completions;
    st.clock.(0) <- t_next;
    st.ev_len <- 0;
    pop_arrivals ();
    for i = 0 to Vec.length completions - 1 do
      push_event st k_completion (Vec.get completions i)
    done;
    pop_faults ();
    if horizon_t <= t_next +. eps_t && not (finished ()) then
      push_event st k_boundary (-1);
    note_last ();
    if not (finished ()) then dispatch ()
    else begin
      (* Journal the final completion batch even though no replan follows:
         the journal must contain every job's exact completion date. *)
      event_count := !event_count + st.ev_len;
      Obs.Counter.add c_events st.ev_len;
      if J.on () then
        for i = 0 to st.ev_len - 1 do
          if st.ev_kinds.(i) = k_completion then begin
            let j = st.ev_subj.(i) in
            J.record
              (J.Sim_event { time = st.ctimes.(j); kind = J.Completion; subject = j })
          end
        done
    end
  done;
  if J.on () then J.record (J.Run_end { time = now st; completed = nj });
  let completion =
    Array.init nj (fun j ->
        if is_completed st j then Some st.ctimes.(j) else None)
  in
  let schedule =
    Schedule.make ~instance:inst
      ~segments:(if record then Schedule.Builder.segments segments else [])
      ~completion
  in
  let metrics =
    if record then Metrics.of_schedule schedule
    else Metrics.of_completion inst ~completion:(Array.copy st.ctimes)
  in
  Obs.Counter.add c_minor_words (int_of_float (Gc.minor_words () -. mw0));
  { schedule;
    metrics;
    lost = Array.copy st.lost;
    replans = !replan_count;
    events = !event_count;
    journal = J.since mark }

let run_report ?horizon ?faults ?loss scheduler inst =
  run_core ?horizon ?faults ?loss ~record:true ~name:scheduler.name
    ~driver:(Legacy (scheduler.make inst)) inst

let run_report_flat ?horizon ?faults ?loss ?(record = true) fs inst =
  run_core ?horizon ?faults ?loss ~record ~name:fs.fname
    ~driver:(Flat (fs.fmake inst)) inst

let run ?horizon ?faults ?loss scheduler inst =
  (run_report ?horizon ?faults ?loss scheduler inst).schedule
