open Gripps_model

type loss = Crash | Pause

type edge = { time : float; machine : int; up : bool }

type trace = edge list

let compare_edge a b =
  match Float.compare a.time b.time with
  | 0 ->
    (* A repair sorts before a failure at the same date so a
       down-at-the-same-instant machine ends the instant down — the
       conservative reading. *)
    (match Int.compare a.machine b.machine with
     | 0 -> Bool.compare b.up a.up
     | c -> c)
  | c -> c

let normalize trace =
  List.iter
    (fun e ->
      if Float.is_nan e.time then invalid_arg "Fault.normalize: NaN date";
      if e.machine < 0 then invalid_arg "Fault.normalize: negative machine id")
    trace;
  List.stable_sort compare_edge trace

let merge a b = normalize (a @ b)

let of_platform platform =
  Array.to_list (Platform.machines platform)
  |> List.concat_map (fun (m : Machine.t) ->
         List.concat_map
           (fun (s, e) ->
             [ { time = s; machine = m.Machine.id; up = false };
               { time = e; machine = m.Machine.id; up = true } ])
           m.Machine.downtime)
  |> normalize

(* Per-machine alternating renewal process: exponential up-times of mean
   [mtbf], exponential repair times of mean [mttr].  Failures are only
   drawn before [until], but every failure gets its repair even when the
   repair date falls past [until] — a trace never strands a machine down
   forever, so a simulation draining work after the arrival window cannot
   deadlock waiting for a repair that was clipped away. *)
let poisson rng ~mtbf ~mttr ~machines ~until =
  if mtbf <= 0.0 then invalid_arg "Fault.poisson: non-positive mtbf";
  if mttr <= 0.0 then invalid_arg "Fault.poisson: non-positive mttr";
  if machines <= 0 then invalid_arg "Fault.poisson: no machines";
  let events = ref [] in
  for m = 0 to machines - 1 do
    let t = ref (Gripps_rng.Dist.exponential rng ~rate:(1.0 /. mtbf)) in
    while !t < until do
      events := { time = !t; machine = m; up = false } :: !events;
      t := !t +. Gripps_rng.Dist.exponential rng ~rate:(1.0 /. mttr);
      events := { time = !t; machine = m; up = true } :: !events;
      t := !t +. Gripps_rng.Dist.exponential rng ~rate:(1.0 /. mtbf)
    done
  done;
  normalize !events

let pp fmt trace =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf fmt "%8.3f M%d %s@," e.time e.machine
        (if e.up then "up" else "DOWN"))
    trace;
  Format.fprintf fmt "@]"
