(** Machine failure traces and loss semantics.

    A fault trace is a chronological list of availability edges — machine
    [m] goes down / comes back up at date [t].  The simulator consumes a
    trace alongside the workload and turns each edge into a
    [Failure]/[Recovery] scheduler event (see {!Sim}).

    Two loss semantics govern what happens to in-flight work when a
    machine dies:

    - {!Crash}: the work performed on the dying machine since the last
      simulation event is lost and re-added to each affected job's
      remaining work (the job must be re-processed elsewhere or later);
    - {!Pause}: work is preserved; the machine is merely unavailable until
      its repair.

    Traces are deterministic: {!poisson} draws from an explicit
    {!Gripps_rng.Splitmix} stream, so a fixed seed reproduces the same
    outage pattern run after run. *)

open Gripps_model

type loss = Crash | Pause

type edge = { time : float; machine : int; up : bool }

type trace = edge list
(** Chronological (see {!normalize}); multiple machines may share a
    date. *)

val normalize : trace -> trace
(** Sort edges chronologically (repairs before failures at equal dates, so
    an instantaneous down/up pair leaves the machine down for the
    zero-length instant — the conservative reading).
    @raise Invalid_argument on NaN dates or negative machine ids. *)

val merge : trace -> trace -> trace
(** Union of two traces, normalized. *)

val of_platform : Platform.t -> trace
(** The trace encoded by the platform's static downtime intervals
    ({!Machine.with_downtime}); empty when no machine has downtime. *)

val poisson :
  Gripps_rng.Splitmix.t ->
  mtbf:float ->
  mttr:float ->
  machines:int ->
  until:float ->
  trace
(** Independent alternating renewal processes, one per machine id in
    [0, machines): exponential time-to-failure of mean [mtbf], exponential
    repair time of mean [mttr].  Failures are drawn on [0, until); every
    failure is paired with its repair even when the repair lands past
    [until], so no machine is left down forever.
    @raise Invalid_argument on non-positive [mtbf]/[mttr]/[machines]. *)

val pp : Format.formatter -> trace -> unit
