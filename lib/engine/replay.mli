(** Rebuilding realized schedules from observability journals.

    A run journaled at [Events] level ({!Gripps_obs.Obs.set_level})
    records every realized segment and every exact completion date, which
    is exactly the content of a {!Gripps_model.Schedule.t}.  Replaying is
    the integrity check behind [gripps_cli trace --verify]: the schedule
    re-derived from the journal must yield the same
    {!Gripps_model.Metrics.t} as the live run — bit-identical, since both
    paths read the same floats (the JSONL encoding round-trips doubles
    exactly). *)

open Gripps_model

val schedule_of_journal :
  Instance.t -> Gripps_obs.Obs.Journal.event list -> Schedule.t
(** Rebuild the realized schedule of the (single) run recorded in the
    journal: segments from [Segment] records, completion dates from
    [Sim_event Completion] records.  Events of other kinds are ignored,
    so a journal slice containing span or probe records replays fine.
    @raise Invalid_argument when a record references a job outside the
    instance. *)

val completed_jobs : Gripps_obs.Obs.Journal.event list -> int
(** Number of distinct jobs with a completion record. *)
