(** Greedy divisible list scheduling with restricted availability.

    The paper's rule (§3.2): {e while some processors are idle, select the
    job with the highest priority and distribute its processing on all
    appropriate processors that are available}.  Rescheduling happens at
    every arrival and completion (free preemption). *)

open Gripps_engine

val scheduler : name:string -> rule:Priority.rule -> Sim.scheduler

val allocate :
  Sim.state -> priority_order:int list -> Sim.allocation
(** The one-shot allocation the rule produces for a given priority order
    over (a subset of) the active jobs: each job in turn grabs every
    still-idle {e up} machine hosting its databank, at full share (down
    machines are never allocated, so list scheduling degrades gracefully
    under failures).  Exposed for reuse by the on-line LP heuristics
    (Online-EGDF) and Bender's algorithms, which supply their own
    orders. *)

(** {1 Ready-made schedulers} *)

val fcfs : Sim.scheduler
val spt : Sim.scheduler
val srpt : Sim.scheduler
val swpt : Sim.scheduler
val swrpt : Sim.scheduler
