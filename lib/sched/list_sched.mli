(** Greedy divisible list scheduling with restricted availability.

    The paper's rule (§3.2): {e while some processors are idle, select the
    job with the highest priority and distribute its processing on all
    appropriate processors that are available}.  Rescheduling happens at
    every arrival and completion (free preemption).

    Two implementations of the same policy coexist:
    - {!scheduler} is incremental: one indexed min-heap per databank keyed
      by the rule, fed by the engine's event batches and dirty set, so an
      event costs O(changes · log n) instead of a full re-sort;
    - {!resort_scheduler} rebuilds and re-sorts the whole active-job list
      at every event — the original O(n log n)-per-event path, kept as
      the differential-test oracle.

    Both produce bit-identical allocations (the heap walk reproduces the
    sorted walk's grab sequence exactly), hence bit-identical schedules,
    metrics and journals. *)

open Gripps_engine

val scheduler :
  ?static:bool -> name:string -> rule:Priority.rule -> unit -> Sim.scheduler
(** Incremental heap-backed list scheduler.  [static] declares that the
    rule's key for a released job never changes (FCFS/SPT/SWPT), letting
    the scheduler skip re-keying the dirty set after each segment;
    default [false] (always safe). *)

val resort_scheduler : name:string -> rule:Priority.rule -> Sim.scheduler
(** The legacy recompute-from-scratch path (differential-test oracle). *)

val allocate :
  Sim.state -> priority_order:int list -> Sim.allocation
(** The one-shot allocation the rule produces for a given priority order
    over (a subset of) the active jobs: each job in turn grabs every
    still-idle {e up} machine hosting its databank, at full share (down
    machines are never allocated, so list scheduling degrades gracefully
    under failures).  Exposed for reuse by the on-line LP heuristics
    (Online-EGDF) and Bender's algorithms, which supply their own
    orders. *)

(** {1 Ready-made schedulers} *)

val fcfs : Sim.scheduler
val spt : Sim.scheduler
val srpt : Sim.scheduler
val swpt : Sim.scheduler
val swrpt : Sim.scheduler

(** {1 Flat (zero-allocation) variants}

    The same heap-backed policy as {!scheduler}, writing grab-order runs
    directly into the engine's reusable {!Sim.Plan_buf.t} and keying the
    heaps through the allocation-free
    {!Gripps_collections.Heap.Indexed.put_key} protocol: steady-state
    event handling allocates nothing on the minor heap.  Allocations,
    schedules, metrics and journals are bit-identical to both list
    paths. *)

type flat_rule = Rule_fcfs | Rule_spt | Rule_srpt | Rule_swpt | Rule_swrpt

val flat_scheduler : flat_rule -> Sim.flat_scheduler

val flat_fcfs : Sim.flat_scheduler
val flat_spt : Sim.flat_scheduler
val flat_srpt : Sim.flat_scheduler
val flat_swpt : Sim.flat_scheduler
val flat_swrpt : Sim.flat_scheduler

