(** Non-clairvoyant schedulers (Robert–Schabanel, PAPERS.md).

    Both schedulers are written exclusively against the size-blind
    {!Gripps_engine.Sim.Blind} view, so they compile without any access
    to [W_j], remaining work or the instance: non-clairvoyance holds by
    construction, not by convention.  They quantify the price of
    clairvoyance against the paper's size-aware heuristics (see the
    clairvoyance-gap table in {!Gripps_experiments.Tables}). *)

open Gripps_engine

val equi : Sim.scheduler
(** EQUI: each up machine shares its time equally among the active jobs
    whose databank it hosts (processor sharing). *)

val default_quantum : float
(** 1 second — the quantum of {!rr}. *)

val rr : Sim.scheduler
(** Round-robin with the default quantum: the active jobs, rotated one
    position per expired quantum, grab free hosts of their databank in
    rotation order (list scheduling); the plan horizon fires the
    preemption. *)

val rr_with : quantum:float -> Sim.scheduler
(** @raise Invalid_argument on a non-positive quantum. *)
