open Gripps_model
open Gripps_engine

(* ------------------------------------------------------------------ *)
(* MCT: one FIFO queue per machine, no preemption, no divisibility.    *)
(* ------------------------------------------------------------------ *)

let mct =
  { Sim.name = "MCT";
    make =
      (fun inst ->
        let platform = Instance.platform inst in
        let nm = Platform.num_machines platform in
        let queues = Array.make nm [] in
        (* Estimated completion of machine [m]'s whole queue. *)
        let queue_clear_time st m =
          let speed = (Platform.machine platform m).Machine.speed in
          let work =
            List.fold_left
              (fun acc j ->
                if Sim.is_completed st j then acc else acc +. Sim.remaining st j)
              0.0 queues.(m)
          in
          Sim.now st +. (work /. speed)
        in
        let place st j =
          let db = (Instance.job inst j).Job.databank in
          let best = ref None in
          List.iter
            (fun (m : Machine.t) ->
              let eta = queue_clear_time st m.id +. ((Instance.job inst j).Job.size /. m.speed) in
              match !best with
              | Some (_, beta) when beta <= eta -> ()
              | Some _ | None -> best := Some (m.id, eta))
            (Platform.hosts_of platform db);
          match !best with
          | Some (m, _) -> queues.(m) <- queues.(m) @ [ j ]
          | None -> assert false (* Instance.make guarantees a host exists *)
        in
        fun st events ->
          List.iter
            (fun ev ->
              match ev with
              | Sim.Arrival j -> place st j
              | Sim.Completion _ | Sim.Boundary | Sim.Failure _ | Sim.Recovery _ -> ())
            events;
          let allocation = ref [] in
          for m = 0 to nm - 1 do
            (* Drop completed prefix, run the head (a down machine's queue
               waits for its repair — MCT never migrates). *)
            queues.(m) <- List.filter (fun j -> not (Sim.is_completed st j)) queues.(m);
            match queues.(m) with
            | j :: _ when Sim.machine_up st m ->
              allocation := (m, [ (j, 1.0) ]) :: !allocation
            | _ :: _ | [] -> ()
          done;
          { Sim.allocation = !allocation; horizon = None }) }

(* ------------------------------------------------------------------ *)
(* MCT-Div: divisible placement into the earliest idle capacity of all *)
(* capable machines; prior commitments are never modified.             *)
(* ------------------------------------------------------------------ *)

(* Per-machine commitments: disjoint (start, stop, job) triples sorted by
   start time.  Machine m is idle outside its commitments. *)
type commitments = (float * float * int) list array

let busy_at (c : (float * float * int) list) t =
  List.exists (fun (s, e, _) -> s <= t +. 1e-12 && t < e -. 1e-12) c

(* Pour [size] Mflop of job [j] into the idle capacity of [capable]
   machines starting at [t0]; returns the new commitments. *)
let pour (comms : commitments) ~capable ~t0 ~size ~j =
  (* Window boundaries: t0 and every commitment edge after t0. *)
  let edges =
    List.concat_map
      (fun (m : Machine.t) ->
        List.concat_map
          (fun (s, e, _) ->
            List.filter (fun t -> t > t0 +. 1e-12) [ s; e ])
          comms.(m.id))
      capable
    |> List.sort_uniq Float.compare
  in
  let rate_in window_start =
    List.fold_left
      (fun acc (m : Machine.t) ->
        if busy_at comms.(m.id) window_start then acc else acc +. m.speed)
      0.0 capable
  in
  (* Find the completion date t*. *)
  let rec sweep t lo remaining = function
    | [] ->
      let r = rate_in lo in
      (* Past the last edge every capable machine is idle forever. *)
      ignore t;
      lo +. (remaining /. r)
    | e :: rest ->
      let r = rate_in lo in
      let cap = r *. (e -. lo) in
      if cap >= remaining -. 1e-12 && r > 0.0 then lo +. (remaining /. r)
      else sweep t e (remaining -. cap) rest
  in
  let t_star = sweep t0 t0 size edges in
  (* Commit all idle sub-intervals within [t0, t_star]. *)
  let windows =
    let rec build lo = function
      | [] -> if lo < t_star -. 1e-12 then [ (lo, t_star) ] else []
      | e :: rest ->
        if e >= t_star then (if lo < t_star -. 1e-12 then [ (lo, t_star) ] else [])
        else (lo, e) :: build e rest
    in
    build t0 edges
  in
  List.iter
    (fun (m : Machine.t) ->
      let additions =
        List.filter (fun (lo, _) -> not (busy_at comms.(m.id) lo)) windows
        |> List.map (fun (lo, hi) -> (lo, hi, j))
      in
      if additions <> [] then
        comms.(m.id) <-
          List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b)
            (comms.(m.id) @ additions))
    capable;
  t_star

let mct_div =
  { Sim.name = "MCT-Div";
    make =
      (fun inst ->
        let platform = Instance.platform inst in
        let nm = Platform.num_machines platform in
        let comms : commitments = Array.make nm [] in
        fun st events ->
          List.iter
            (fun ev ->
              match ev with
              | Sim.Arrival j ->
                let job = Instance.job inst j in
                let capable = Platform.hosts_of platform job.Job.databank in
                ignore (pour comms ~capable ~t0:(Sim.now st) ~size:job.Job.size ~j)
              | Sim.Completion _ | Sim.Boundary | Sim.Failure _ | Sim.Recovery _ -> ())
            events;
          (* Play back commitments covering the current date. *)
          let t = Sim.now st in
          let allocation = ref [] and next_edge = ref infinity in
          for m = 0 to nm - 1 do
            (* Garbage-collect past commitments. *)
            comms.(m) <- List.filter (fun (_, e, _) -> e > t +. 1e-12) comms.(m);
            List.iter
              (fun (s, e, j) ->
                if s <= t +. 1e-12 then begin
                  if (not (Sim.is_completed st j)) && Sim.machine_up st m then
                    allocation := (m, [ (j, 1.0) ]) :: !allocation;
                  if e < !next_edge then next_edge := e
                end
                else if s < !next_edge then next_edge := s)
              comms.(m)
          done;
          (* Commitments never account for failures: crashed work or time
             spent down can leave residual work after the plan drains.
             Mop it up with SWRPT list scheduling instead of stalling. *)
          if !allocation = [] && !next_edge = infinity && Sim.active_jobs st <> [] then begin
            let order =
              Sim.active_jobs st
              |> List.map (fun j -> (Priority.key_with_tiebreak Priority.swrpt st j, j))
              |> List.sort compare
              |> List.map snd
            in
            { Sim.allocation = List_sched.allocate st ~priority_order:order;
              horizon = None }
          end
          else begin
            let horizon = if !next_edge = infinity then None else Some !next_edge in
            { Sim.allocation = !allocation; horizon }
          end) }
