open Gripps_model
open Gripps_engine

(* Both schedulers below are written exclusively against [Sim.Blind]: the
   view type is abstract, so neither can observe W_j, remaining work or
   the instance — non-clairvoyance is enforced by the compiler. *)

(* EQUI (equal processor sharing): every up machine splits its time
   evenly among the active jobs whose databank it hosts.  No sizes, no
   priorities — the textbook non-clairvoyant baseline, generalized to the
   databank-constrained platform by sharing each machine only among the
   jobs it can actually serve. *)
let equi =
  Sim.nonclairvoyant "EQUI" (fun v _events ->
      let platform = Sim.Blind.platform v in
      let nm = Platform.num_machines platform in
      let per_machine = Array.make nm [] in
      List.iter
        (fun j ->
          List.iter
            (fun (m : Machine.t) ->
              if Sim.Blind.machine_up v m.id then
                per_machine.(m.id) <- j :: per_machine.(m.id))
            (Platform.hosts_of platform (Sim.Blind.databank v j)))
        (Sim.Blind.active_jobs v);
      let alloc = ref [] in
      for m = nm - 1 downto 0 do
        match per_machine.(m) with
        | [] -> ()
        | js ->
          let share = 1.0 /. float_of_int (List.length js) in
          alloc := (m, List.rev_map (fun j -> (j, share)) js) :: !alloc
      done;
      { Sim.allocation = !alloc; horizon = None })

(* Round-robin with a time quantum: list scheduling (each job grabs every
   free up host of its databank) over the active jobs rotated by a cursor
   that advances whenever a quantum expires.  The plan horizon drives the
   preemption: every [quantum] seconds the engine fires a [Boundary]
   event and the next rotation gets the machines. *)
type rr = { mutable cursor : int }

let rr_with ~quantum =
  if not (quantum > 0.0) then
    invalid_arg "Nonclairvoyant.rr_with: non-positive quantum";
  Sim.nonclairvoyant_incremental ~name:"RR"
    ~init:(fun _platform -> { cursor = 0 })
    ~on_event:(fun s v events ->
      if List.exists (function Sim.Boundary -> true | _ -> false) events then
        s.cursor <- s.cursor + 1;
      match Sim.Blind.active_jobs v with
      | [] -> { Sim.allocation = []; horizon = None }
      | active ->
        let arr = Array.of_list active in
        let n = Array.length arr in
        let platform = Sim.Blind.platform v in
        let free = Array.make (Platform.num_machines platform) true in
        let alloc = ref [] in
        for i = 0 to n - 1 do
          let j = arr.((i + s.cursor) mod n) in
          List.iter
            (fun (m : Machine.t) ->
              if free.(m.id) && Sim.Blind.machine_up v m.id then begin
                free.(m.id) <- false;
                alloc := (m.id, [ (j, 1.0) ]) :: !alloc
              end)
            (Platform.hosts_of platform (Sim.Blind.databank v j))
        done;
        (* With every relevant machine down, park until an arrival or a
           repair (matching the other schedulers' stall semantics) rather
           than spinning on quantum boundaries. *)
        if !alloc = [] then { Sim.allocation = []; horizon = None }
        else
          { Sim.allocation = !alloc;
            horizon = Some (Sim.Blind.now v +. quantum) })

let default_quantum = 1.0
let rr = rr_with ~quantum:default_quantum
