open Gripps_model
open Gripps_engine
module Heap = Gripps_collections.Heap
module Vec = Gripps_collections.Vec

let allocate st ~priority_order =
  let inst = Sim.instance st in
  let platform = Instance.platform inst in
  let nm = Platform.num_machines platform in
  let free = Array.make nm true in
  let alloc = ref [] in
  List.iter
    (fun j ->
      if (not (Sim.is_completed st j)) && Sim.is_released st j then begin
        let db = (Instance.job inst j).Job.databank in
        List.iter
          (fun (m : Machine.t) ->
            if free.(m.id) && Sim.machine_up st m.id then begin
              free.(m.id) <- false;
              alloc := (m.id, [ (j, 1.0) ]) :: !alloc
            end)
          (Platform.hosts_of platform db)
      end)
    priority_order;
  !alloc

(* ------------------------------------------------------------------ *)
(* Legacy path: rebuild and re-sort the whole active-job list at every
   event.  O(n log n) per event; kept as the differential-test oracle
   for the incremental schedulers below.                               *)
(* ------------------------------------------------------------------ *)

let resort_scheduler ~name ~rule =
  Sim.stateless name (fun st _events ->
      let order =
        Sim.active_jobs st
        |> List.map (fun j -> (Priority.key_with_tiebreak rule st j, j))
        |> List.sort compare
        |> List.map snd
      in
      { Sim.allocation = allocate st ~priority_order:order; horizon = None })

(* ------------------------------------------------------------------ *)
(* Incremental path: one indexed min-heap per databank, keyed by the
   priority rule with job-id tiebreak.  An arrival/completion costs
   O(log n); re-keying after a segment costs O(log n) per job the plan
   touched (and nothing at all for static rules).                      *)
(* ------------------------------------------------------------------ *)

type incr = {
  rule : Priority.rule;
  static : bool;  (* keys never change once released (FCFS/SPT/SWPT) *)
  heaps : Heap.Indexed.t array;      (* one heap per databank *)
  db_of_job : int array;
  hosts : int array array;           (* machines per databank, hosts_of order *)
  dbs_of_machine : int list array;
  (* per-event scratch *)
  free : bool array;                 (* machine not yet grabbed this event *)
  free_up : int array;               (* per databank: # free ∧ up hosts *)
}

let make_incr ~rule ~static inst =
  let platform = Instance.platform inst in
  let nj = Instance.num_jobs inst in
  let nm = Platform.num_machines platform in
  let nd = Platform.num_databanks platform in
  let hosts =
    Array.init nd (fun d ->
        Platform.hosts_of platform d
        |> List.map (fun (m : Machine.t) -> m.id)
        |> Array.of_list)
  in
  let dbs_of_machine =
    Array.init nm (fun mid ->
        let m = Platform.machine platform mid in
        List.filter (fun d -> Machine.hosts m d) (List.init nd Fun.id))
  in
  { rule; static;
    heaps = Array.init nd (fun _ -> Heap.Indexed.create ~capacity:nj);
    db_of_job = Array.init nj (fun j -> (Instance.job inst j).Job.databank);
    hosts; dbs_of_machine;
    free = Array.make nm true;
    free_up = Array.make nd 0 }

(* One list-scheduling pass driven by the heaps instead of a global sort.

   Equivalence to [allocate] over the fully sorted active-job list: the
   sorted walk only changes machine state at jobs whose databank still
   has a free up host, and such a job takes {e all} of them — so its
   databank immediately stops qualifying, and the next state-changing
   job is exactly the minimum (key, id) among the tops of the databanks
   that still qualify.  Grabs are emitted in the same (job-major,
   hosts_of-minor) prepend order, so the resulting allocation list —
   and hence every downstream segment, journal entry and metric — is
   identical, not just equivalent. *)
let heap_allocate s st =
  let nd = Array.length s.heaps in
  Array.fill s.free 0 (Array.length s.free) true;
  for d = 0 to nd - 1 do
    let n = ref 0 in
    Array.iter (fun m -> if Sim.machine_up st m then incr n) s.hosts.(d);
    s.free_up.(d) <- !n
  done;
  let alloc = ref [] in
  let popped = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let best_d = ref (-1) and best_j = ref max_int and best_k = ref nan in
    for d = 0 to nd - 1 do
      if s.free_up.(d) > 0 then
        match Heap.Indexed.min_elt s.heaps.(d) with
        | None -> ()
        | Some j ->
          let k = Heap.Indexed.key s.heaps.(d) j in
          if !best_d < 0 || k < !best_k || (k = !best_k && j < !best_j) then begin
            best_d := d;
            best_j := j;
            best_k := k
          end
    done;
    if !best_d < 0 then continue_ := false
    else begin
      let d = !best_d and j = !best_j and k = !best_k in
      ignore (Heap.Indexed.pop_exn s.heaps.(d));
      popped := (d, j, k) :: !popped;
      Array.iter
        (fun m ->
          if s.free.(m) && Sim.machine_up st m then begin
            s.free.(m) <- false;
            alloc := (m, [ (j, 1.0) ]) :: !alloc;
            List.iter
              (fun d' -> s.free_up.(d') <- s.free_up.(d') - 1)
              s.dbs_of_machine.(m)
          end)
        s.hosts.(d)
    end
  done;
  (* The popped jobs are still active: restore them with their keys
     untouched. *)
  List.iter (fun (d, j, k) -> Heap.Indexed.add s.heaps.(d) j k) !popped;
  !alloc

let on_event s st events =
  List.iter
    (fun e ->
      match e with
      | Sim.Arrival j ->
        Heap.Indexed.add s.heaps.(s.db_of_job.(j)) j (s.rule st j)
      | Sim.Completion j -> Heap.Indexed.remove s.heaps.(s.db_of_job.(j)) j
      | Sim.Boundary | Sim.Failure _ | Sim.Recovery _ -> ())
    events;
  (* Re-key what the last segment touched.  The fresh key is computed by
     the very expression the resort oracle sorts on, so stored keys stay
     bit-identical to recomputed ones. *)
  if not s.static then
    Sim.iter_dirty
      (fun j ->
        let h = s.heaps.(s.db_of_job.(j)) in
        if Heap.Indexed.mem h j then Heap.Indexed.update h j (s.rule st j))
      st;
  { Sim.allocation = heap_allocate s st; horizon = None }

let scheduler ?(static = false) ~name ~rule () =
  Sim.incremental ~name ~init:(make_incr ~rule ~static) ~on_event

let fcfs = scheduler ~static:true ~name:"FCFS" ~rule:Priority.fcfs ()
let spt = scheduler ~static:true ~name:"SPT" ~rule:Priority.spt ()
let srpt = scheduler ~name:"SRPT" ~rule:Priority.srpt ()
let swpt = scheduler ~static:true ~name:"SWPT" ~rule:Priority.swpt ()
let swrpt = scheduler ~name:"SWRPT" ~rule:Priority.swrpt ()

(* ------------------------------------------------------------------ *)
(* Flat path: the same heap walk, but writing grab-order runs into the
   engine's reusable plan buffer and keying the heaps through the
   allocation-free put_key/add_keyed protocol.  Steady-state event
   handling allocates nothing on the minor heap.                       *)
(* ------------------------------------------------------------------ *)

type flat_rule = Rule_fcfs | Rule_spt | Rule_srpt | Rule_swpt | Rule_swrpt

let flat_rule_static = function
  | Rule_fcfs | Rule_spt | Rule_swpt -> true
  | Rule_srpt | Rule_swrpt -> false

let flat_rule_name = function
  | Rule_fcfs -> "FCFS"
  | Rule_spt -> "SPT"
  | Rule_srpt -> "SRPT"
  | Rule_swpt -> "SWPT"
  | Rule_swrpt -> "SWRPT"

type flat = {
  kind : flat_rule;
  fstatic : bool;
  fheaps : Heap.Indexed.t array;
  fdb_of_job : int array;
  fhosts : int array array;
  fdbs_of_machine : int array array;  (* int arrays: closure-free loops *)
  ffree : bool array;
  ffree_up : int array;
  rel : float array;                  (* release date per job *)
  jsize : float array;                (* size per job *)
  (* walk scratch, persisted across events.  [fcand]/[fcand_len] hold
     each databank's frontier of candidate heap slots while a walk
     enumerates successive minima without mutating the heap (consuming a
     slot adds its two children, and at most one slot is consumed per
     machine grab, so [2 nm + 3] slots bound the frontier). *)
  fcand : int array array;
  fcand_len : int array;
  mutable bd : int;                   (* best databank, -1 = none *)
  mutable bj : int;                   (* best job *)
  mutable bs : int;                   (* best heap slot *)
  mutable bc : int;                   (* best index into fcand.(bd) *)
  bk : float array;                   (* bk.(0): best key (float cell — a
                                         mutable float field would box on
                                         every store) *)
}

let make_flat ~kind inst =
  let platform = Instance.platform inst in
  let nj = Instance.num_jobs inst in
  let nm = Platform.num_machines platform in
  let nd = Platform.num_databanks platform in
  { kind;
    fstatic = flat_rule_static kind;
    fheaps = Array.init nd (fun _ -> Heap.Indexed.create ~capacity:nj);
    fdb_of_job = Array.init nj (fun j -> (Instance.job inst j).Job.databank);
    fhosts =
      Array.init nd (fun d ->
          Platform.hosts_of platform d
          |> List.map (fun (m : Machine.t) -> m.id)
          |> Array.of_list);
    fdbs_of_machine =
      Array.init nm (fun mid ->
          let m = Platform.machine platform mid in
          List.filter (fun d -> Machine.hosts m d) (List.init nd Fun.id)
          |> Array.of_list);
    ffree = Array.make nm true;
    ffree_up = Array.make nd 0;
    rel = Array.init nj (fun j -> (Instance.job inst j).Job.release);
    jsize = Array.init nj (fun j -> (Instance.job inst j).Job.size);
    fcand = Array.init nd (fun _ -> Array.make ((2 * nm) + 3) 0);
    fcand_len = Array.make nd 0;
    bd = -1;
    bj = max_int;
    bs = 0;
    bc = 0;
    bk = Array.make 1 nan }

(* Stage job [j]'s priority key into its heap.  Each rule computes the
   exact expression the legacy [Priority] closures evaluate — same
   operands, same order — so stored keys stay bit-identical to the
   oracle's.  [Heap.Indexed.put_key] is a one-line array store the
   compiler inlines, so the float never crosses a call boundary. *)
let stage_key s st h j =
  match s.kind with
  | Rule_fcfs -> Heap.Indexed.put_key h j s.rel.(j)
  | Rule_spt -> Heap.Indexed.put_key h j s.jsize.(j)
  | Rule_srpt -> Heap.Indexed.put_key h j (Sim.Columns.remaining st).(j)
  | Rule_swpt -> Heap.Indexed.put_key h j (s.jsize.(j) *. s.jsize.(j))
  | Rule_swrpt ->
    Heap.Indexed.put_key h j ((Sim.Columns.remaining st).(j) *. s.jsize.(j))

let rec count_up st (hosts : int array) i acc =
  if i >= Array.length hosts then acc
  else
    count_up st hosts (i + 1)
      (if Sim.machine_up st hosts.(i) then acc + 1 else acc)

(* The walk loop, top level so no closure is built per event: find the
   minimum (key, id) among the qualifying databanks' pending jobs, let it
   grab every free up host of its databank, repeat.

   Successive minima are read through each databank's candidate-slot
   frontier ([fcand]) instead of popping the heap: a pop is a full-depth
   sift plus a matching full-depth restore once the walk is over — the
   dominant cost of a replan on a deep queue — while the frontier only
   reads [slot_key]/[slot_id].  The frontier of a db starts at slot 0
   (its minimum); consuming a slot adds its two children, whose keys are
   [>=] by the heap property, so the minimum over all live candidates is
   exactly the next pending job in [(key, id)] order — the same job the
   popping walk would select. *)
let rec walk s st buf =
  s.bd <- -1;
  s.bj <- max_int;
  for d = 0 to Array.length s.fheaps - 1 do
    if s.ffree_up.(d) > 0 then begin
      let h = s.fheaps.(d) in
      let cand = s.fcand.(d) in
      for c = 0 to s.fcand_len.(d) - 1 do
        let i = cand.(c) in
        let j = Heap.Indexed.slot_id h i in
        let k = Heap.Indexed.slot_key h i in
        if s.bd < 0 || k < s.bk.(0) || (k = s.bk.(0) && j < s.bj) then begin
          s.bd <- d;
          s.bj <- j;
          s.bs <- i;
          s.bc <- c;
          s.bk.(0) <- k
        end
      done
    end
  done;
  if s.bd >= 0 then begin
    let d = s.bd and j = s.bj in
    (* Consume the winning slot: replace it by the last candidate and
       append its children. *)
    let h = s.fheaps.(d) in
    let cand = s.fcand.(d) in
    let len = s.fcand_len.(d) - 1 in
    cand.(s.bc) <- cand.(len);
    let l = (2 * s.bs) + 1 in
    let r = l + 1 in
    let n = Heap.Indexed.slot_count h in
    let len = if l < n then (cand.(len) <- l; len + 1) else len in
    let len = if r < n then (cand.(len) <- r; len + 1) else len in
    s.fcand_len.(d) <- len;
    let hosts = s.fhosts.(d) in
    for i = 0 to Array.length hosts - 1 do
      let m = hosts.(i) in
      if s.ffree.(m) && Sim.machine_up st m then begin
        s.ffree.(m) <- false;
        Sim.Plan_buf.begin_machine buf m;
        Sim.Plan_buf.push_unit_share buf ~job:j;
        let dbs = s.fdbs_of_machine.(m) in
        for q = 0 to Array.length dbs - 1 do
          s.ffree_up.(dbs.(q)) <- s.ffree_up.(dbs.(q)) - 1
        done
      end
    done;
    walk s st buf
  end


let heap_allocate_flat s st buf =
  Array.fill s.ffree 0 (Array.length s.ffree) true;
  for d = 0 to Array.length s.fheaps - 1 do
    s.ffree_up.(d) <- count_up st s.fhosts.(d) 0 0
  done;
  for d = 0 to Array.length s.fheaps - 1 do
    s.fcand_len.(d) <-
      (if Heap.Indexed.is_empty s.fheaps.(d) then 0
       else begin
         s.fcand.(d).(0) <- 0;
         1
       end)
  done;
  walk s st buf

let flat_on_event s st buf =
  for i = 0 to Sim.Events.count st - 1 do
    match Sim.Events.kind st i with
    | `Arrival ->
      let j = Sim.Events.subject st i in
      let h = s.fheaps.(s.fdb_of_job.(j)) in
      stage_key s st h j;
      Heap.Indexed.add_keyed h j
    | `Completion ->
      let j = Sim.Events.subject st i in
      Heap.Indexed.remove s.fheaps.(s.fdb_of_job.(j)) j
    | `Boundary | `Failure | `Recovery -> ()
  done;
  if not s.fstatic then
    for i = 0 to Sim.dirty_count st - 1 do
      let j = Sim.dirty_job st i in
      let h = s.fheaps.(s.fdb_of_job.(j)) in
      if Heap.Indexed.mem h j then begin
        stage_key s st h j;
        Heap.Indexed.update_keyed h j
      end
    done;
  heap_allocate_flat s st buf

let flat_scheduler kind =
  Sim.flat_incremental ~name:(flat_rule_name kind) ~init:(make_flat ~kind)
    ~on_event:flat_on_event

let flat_fcfs = flat_scheduler Rule_fcfs
let flat_spt = flat_scheduler Rule_spt
let flat_srpt = flat_scheduler Rule_srpt
let flat_swpt = flat_scheduler Rule_swpt
let flat_swrpt = flat_scheduler Rule_swrpt
