open Gripps_model
open Gripps_engine

let allocate st ~priority_order =
  let inst = Sim.instance st in
  let platform = Instance.platform inst in
  let nm = Platform.num_machines platform in
  let free = Array.make nm true in
  let alloc = ref [] in
  List.iter
    (fun j ->
      if (not (Sim.is_completed st j)) && Sim.is_released st j then begin
        let db = (Instance.job inst j).Job.databank in
        List.iter
          (fun (m : Machine.t) ->
            if free.(m.id) && Sim.machine_up st m.id then begin
              free.(m.id) <- false;
              alloc := (m.id, [ (j, 1.0) ]) :: !alloc
            end)
          (Platform.hosts_of platform db)
      end)
    priority_order;
  !alloc

let scheduler ~name ~rule =
  Sim.stateless name (fun st _events ->
      let order =
        Sim.active_jobs st
        |> List.map (fun j -> (Priority.key_with_tiebreak rule st j, j))
        |> List.sort compare
        |> List.map snd
      in
      { Sim.allocation = allocate st ~priority_order:order; horizon = None })

let fcfs = scheduler ~name:"FCFS" ~rule:Priority.fcfs
let spt = scheduler ~name:"SPT" ~rule:Priority.spt
let srpt = scheduler ~name:"SRPT" ~rule:Priority.srpt
let swpt = scheduler ~name:"SWPT" ~rule:Priority.swpt
let swrpt = scheduler ~name:"SWRPT" ~rule:Priority.swrpt
