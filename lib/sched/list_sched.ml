open Gripps_model
open Gripps_engine
module Heap = Gripps_collections.Heap

let allocate st ~priority_order =
  let inst = Sim.instance st in
  let platform = Instance.platform inst in
  let nm = Platform.num_machines platform in
  let free = Array.make nm true in
  let alloc = ref [] in
  List.iter
    (fun j ->
      if (not (Sim.is_completed st j)) && Sim.is_released st j then begin
        let db = (Instance.job inst j).Job.databank in
        List.iter
          (fun (m : Machine.t) ->
            if free.(m.id) && Sim.machine_up st m.id then begin
              free.(m.id) <- false;
              alloc := (m.id, [ (j, 1.0) ]) :: !alloc
            end)
          (Platform.hosts_of platform db)
      end)
    priority_order;
  !alloc

(* ------------------------------------------------------------------ *)
(* Legacy path: rebuild and re-sort the whole active-job list at every
   event.  O(n log n) per event; kept as the differential-test oracle
   for the incremental schedulers below.                               *)
(* ------------------------------------------------------------------ *)

let resort_scheduler ~name ~rule =
  Sim.stateless name (fun st _events ->
      let order =
        Sim.active_jobs st
        |> List.map (fun j -> (Priority.key_with_tiebreak rule st j, j))
        |> List.sort compare
        |> List.map snd
      in
      { Sim.allocation = allocate st ~priority_order:order; horizon = None })

(* ------------------------------------------------------------------ *)
(* Incremental path: one indexed min-heap per databank, keyed by the
   priority rule with job-id tiebreak.  An arrival/completion costs
   O(log n); re-keying after a segment costs O(log n) per job the plan
   touched (and nothing at all for static rules).                      *)
(* ------------------------------------------------------------------ *)

type incr = {
  rule : Priority.rule;
  static : bool;  (* keys never change once released (FCFS/SPT/SWPT) *)
  heaps : Heap.Indexed.t array;      (* one heap per databank *)
  db_of_job : int array;
  hosts : int array array;           (* machines per databank, hosts_of order *)
  dbs_of_machine : int list array;
  (* per-event scratch *)
  free : bool array;                 (* machine not yet grabbed this event *)
  free_up : int array;               (* per databank: # free ∧ up hosts *)
}

let make_incr ~rule ~static inst =
  let platform = Instance.platform inst in
  let nj = Instance.num_jobs inst in
  let nm = Platform.num_machines platform in
  let nd = Platform.num_databanks platform in
  let hosts =
    Array.init nd (fun d ->
        Platform.hosts_of platform d
        |> List.map (fun (m : Machine.t) -> m.id)
        |> Array.of_list)
  in
  let dbs_of_machine =
    Array.init nm (fun mid ->
        let m = Platform.machine platform mid in
        List.filter (fun d -> Machine.hosts m d) (List.init nd Fun.id))
  in
  { rule; static;
    heaps = Array.init nd (fun _ -> Heap.Indexed.create ~capacity:nj);
    db_of_job = Array.init nj (fun j -> (Instance.job inst j).Job.databank);
    hosts; dbs_of_machine;
    free = Array.make nm true;
    free_up = Array.make nd 0 }

(* One list-scheduling pass driven by the heaps instead of a global sort.

   Equivalence to [allocate] over the fully sorted active-job list: the
   sorted walk only changes machine state at jobs whose databank still
   has a free up host, and such a job takes {e all} of them — so its
   databank immediately stops qualifying, and the next state-changing
   job is exactly the minimum (key, id) among the tops of the databanks
   that still qualify.  Grabs are emitted in the same (job-major,
   hosts_of-minor) prepend order, so the resulting allocation list —
   and hence every downstream segment, journal entry and metric — is
   identical, not just equivalent. *)
let heap_allocate s st =
  let nd = Array.length s.heaps in
  Array.fill s.free 0 (Array.length s.free) true;
  for d = 0 to nd - 1 do
    let n = ref 0 in
    Array.iter (fun m -> if Sim.machine_up st m then incr n) s.hosts.(d);
    s.free_up.(d) <- !n
  done;
  let alloc = ref [] in
  let popped = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let best_d = ref (-1) and best_j = ref max_int and best_k = ref nan in
    for d = 0 to nd - 1 do
      if s.free_up.(d) > 0 then
        match Heap.Indexed.min_elt s.heaps.(d) with
        | None -> ()
        | Some j ->
          let k = Heap.Indexed.key s.heaps.(d) j in
          if !best_d < 0 || k < !best_k || (k = !best_k && j < !best_j) then begin
            best_d := d;
            best_j := j;
            best_k := k
          end
    done;
    if !best_d < 0 then continue_ := false
    else begin
      let d = !best_d and j = !best_j and k = !best_k in
      ignore (Heap.Indexed.pop_exn s.heaps.(d));
      popped := (d, j, k) :: !popped;
      Array.iter
        (fun m ->
          if s.free.(m) && Sim.machine_up st m then begin
            s.free.(m) <- false;
            alloc := (m, [ (j, 1.0) ]) :: !alloc;
            List.iter
              (fun d' -> s.free_up.(d') <- s.free_up.(d') - 1)
              s.dbs_of_machine.(m)
          end)
        s.hosts.(d)
    end
  done;
  (* The popped jobs are still active: restore them with their keys
     untouched. *)
  List.iter (fun (d, j, k) -> Heap.Indexed.add s.heaps.(d) j k) !popped;
  !alloc

let on_event s st events =
  List.iter
    (fun e ->
      match e with
      | Sim.Arrival j ->
        Heap.Indexed.add s.heaps.(s.db_of_job.(j)) j (s.rule st j)
      | Sim.Completion j -> Heap.Indexed.remove s.heaps.(s.db_of_job.(j)) j
      | Sim.Boundary | Sim.Failure _ | Sim.Recovery _ -> ())
    events;
  (* Re-key what the last segment touched.  The fresh key is computed by
     the very expression the resort oracle sorts on, so stored keys stay
     bit-identical to recomputed ones. *)
  if not s.static then
    Sim.iter_dirty
      (fun j ->
        let h = s.heaps.(s.db_of_job.(j)) in
        if Heap.Indexed.mem h j then Heap.Indexed.update h j (s.rule st j))
      st;
  { Sim.allocation = heap_allocate s st; horizon = None }

let scheduler ?(static = false) ~name ~rule () =
  Sim.incremental ~name ~init:(make_incr ~rule ~static) ~on_event

let fcfs = scheduler ~static:true ~name:"FCFS" ~rule:Priority.fcfs ()
let spt = scheduler ~static:true ~name:"SPT" ~rule:Priority.spt ()
let srpt = scheduler ~name:"SRPT" ~rule:Priority.srpt ()
let swpt = scheduler ~static:true ~name:"SWPT" ~rule:Priority.swpt ()
let swrpt = scheduler ~name:"SWRPT" ~rule:Priority.swrpt ()
