(** Growable arrays (the stdlib gains [Dynarray] only in 5.2). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-bounds access. *)

val pop : 'a t -> 'a option
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val clear : 'a t -> unit

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place (not stable) sort of the live prefix. *)

val insertion_sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place stable insertion sort of the live prefix.  Unlike {!sort}
    (which round-trips through an exact-size array copy) this allocates
    nothing, making it the right choice for small, nearly-sorted batches
    inside zero-allocation hot loops — e.g. the simulator's simultaneous
    completion batches.  O(k²) worst case over the live prefix of length
    k; O(k) when already sorted. *)

val dedup_sorted : ('a -> 'a -> bool) -> 'a t -> unit
(** Collapse runs of adjacent equal elements; on sorted input this leaves
    each equivalence class's first representative. *)

val sort_uniq : ('a -> 'a -> int) -> 'a t -> unit
(** [sort] followed by [dedup_sorted] under the same ordering. *)
