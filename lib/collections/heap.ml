type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let nd = Array.make ncap x in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let peek_exn h =
  if h.size = 0 then invalid_arg "Heap.peek_exn: empty heap";
  h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h = h.size <- 0

let of_list ~cmp l =
  let h = create ~cmp in
  List.iter (push h) l;
  h

let to_sorted_list h =
  let copy = { h with data = Array.sub h.data 0 h.size } in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []

(* ------------------------------------------------------------------ *)
(* Indexed heap: small-int elements with float keys, id tiebreak.      *)
(* ------------------------------------------------------------------ *)

module Indexed = struct
  type t = {
    keys : float array;  (* key per id; meaningful while pos.(id) >= 0 *)
    pos : int array;     (* heap slot of id, or -1 when absent *)
    heap : int array;    (* slots 0..size-1 hold member ids *)
    mutable size : int;
  }

  let create ~capacity =
    if capacity < 0 then invalid_arg "Heap.Indexed.create: negative capacity";
    { keys = Array.make capacity 0.0;
      pos = Array.make capacity (-1);
      heap = Array.make capacity 0;
      size = 0 }

  let capacity h = Array.length h.pos
  let size h = h.size
  let is_empty h = h.size = 0

  let check h id name =
    if id < 0 || id >= Array.length h.pos then
      invalid_arg ("Heap.Indexed." ^ name ^ ": id out of range")

  let mem h id =
    check h id "mem";
    h.pos.(id) >= 0

  let key h id =
    check h id "key";
    if h.pos.(id) < 0 then invalid_arg "Heap.Indexed.key: absent id";
    h.keys.(id)

  (* Strict (key, id) lexicographic order: all members are distinct ids,
     so the induced total order is unique — the drain order of the heap
     is exactly the sorted order of its (key, id) pairs. *)
  let less h a b = h.keys.(a) < h.keys.(b) || (h.keys.(a) = h.keys.(b) && a < b)

  let swap h i j =
    let a = h.heap.(i) and b = h.heap.(j) in
    h.heap.(i) <- b;
    h.heap.(j) <- a;
    h.pos.(b) <- i;
    h.pos.(a) <- j

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if less h h.heap.(i) h.heap.(p) then begin
        swap h i p;
        sift_up h p
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let s = ref i in
    if l < h.size && less h h.heap.(l) h.heap.(!s) then s := l;
    if r < h.size && less h h.heap.(r) h.heap.(!s) then s := r;
    if !s <> i then begin
      swap h i !s;
      sift_down h !s
    end

  let add h id k =
    check h id "add";
    if h.pos.(id) >= 0 then invalid_arg "Heap.Indexed.add: id already present";
    h.keys.(id) <- k;
    h.heap.(h.size) <- id;
    h.pos.(id) <- h.size;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let update h id k =
    check h id "update";
    let i = h.pos.(id) in
    if i < 0 then invalid_arg "Heap.Indexed.update: absent id";
    h.keys.(id) <- k;
    sift_up h i;
    sift_down h h.pos.(id)

  let remove h id =
    check h id "remove";
    let i = h.pos.(id) in
    if i < 0 then invalid_arg "Heap.Indexed.remove: absent id";
    let last = h.size - 1 in
    h.size <- last;
    h.pos.(id) <- -1;
    if i <> last then begin
      let moved = h.heap.(last) in
      h.heap.(i) <- moved;
      h.pos.(moved) <- i;
      sift_up h i;
      sift_down h h.pos.(moved)
    end

  let min_elt h = if h.size = 0 then None else Some h.heap.(0)

  let min_exn h =
    if h.size = 0 then invalid_arg "Heap.Indexed.min_exn: empty heap";
    h.heap.(0)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.heap.(0) in
      remove h top;
      Some top
    end

  let pop_exn h =
    match pop h with
    | Some x -> x
    | None -> invalid_arg "Heap.Indexed.pop_exn: empty heap"

  let clear h =
    for i = 0 to h.size - 1 do
      h.pos.(h.heap.(i)) <- -1
    done;
    h.size <- 0

  let to_sorted_list h =
    let ids = Array.sub h.heap 0 h.size in
    Array.sort (fun a b -> if less h a b then -1 else if less h b a then 1 else 0) ids;
    Array.to_list ids
end
