type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let nd = Array.make ncap x in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let peek_exn h =
  if h.size = 0 then invalid_arg "Heap.peek_exn: empty heap";
  h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h = h.size <- 0

let of_list ~cmp l =
  let h = create ~cmp in
  List.iter (push h) l;
  h

let to_sorted_list h =
  let copy = { h with data = Array.sub h.data 0 h.size } in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []

(* ------------------------------------------------------------------ *)
(* Indexed heap: small-int elements with float keys, id tiebreak.      *)
(* ------------------------------------------------------------------ *)

module Indexed = struct
  type t = {
    keys : float array;  (* key per id; meaningful while pos.(id) >= 0 *)
    pos : int array;     (* heap slot of id, or -1 when absent *)
    heap : int array;    (* slots 0..size-1 hold member ids *)
    hkeys : float array; (* key per SLOT: hkeys.(i) = keys.(heap.(i)).
                            Sift comparisons read this column instead of
                            chasing [keys.(id)] through random ids — on a
                            deep heap the id-indexed reads are a cache
                            miss per comparison, and sibling slots
                            [2i+1]/[2i+2] share a line here.  Key values
                            are identical either way, so the comparison
                            sequence — and the drain order — is
                            unchanged. *)
    mutable size : int;
  }

  let create ~capacity =
    if capacity < 0 then invalid_arg "Heap.Indexed.create: negative capacity";
    { keys = Array.make capacity 0.0;
      pos = Array.make capacity (-1);
      heap = Array.make capacity 0;
      hkeys = Array.make capacity 0.0;
      size = 0 }

  let capacity h = Array.length h.pos
  let size h = h.size
  let is_empty h = h.size = 0

  let check h id name =
    if id < 0 || id >= Array.length h.pos then
      invalid_arg ("Heap.Indexed." ^ name ^ ": id out of range")

  let mem h id =
    check h id "mem";
    h.pos.(id) >= 0

  let key h id =
    check h id "key";
    if h.pos.(id) < 0 then invalid_arg "Heap.Indexed.key: absent id";
    h.keys.(id)

  (* Strict (key, id) lexicographic order: all members are distinct ids,
     so the induced total order is unique — the drain order of the heap
     is exactly the sorted order of its (key, id) pairs. *)
  let less h a b = h.keys.(a) < h.keys.(b) || (h.keys.(a) = h.keys.(b) && a < b)

  (* The same order read through the slot columns. *)
  let less_slot h i j =
    h.hkeys.(i) < h.hkeys.(j)
    || (h.hkeys.(i) = h.hkeys.(j) && h.heap.(i) < h.heap.(j))

  let swap h i j =
    let a = h.heap.(i) and b = h.heap.(j) in
    h.heap.(i) <- b;
    h.heap.(j) <- a;
    let k = h.hkeys.(i) in
    h.hkeys.(i) <- h.hkeys.(j);
    h.hkeys.(j) <- k;
    h.pos.(b) <- i;
    h.pos.(a) <- j

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if less_slot h i p then begin
        swap h i p;
        sift_up h p
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let s = ref i in
    if l < h.size && less_slot h l !s then s := l;
    if r < h.size && less_slot h r !s then s := r;
    if !s <> i then begin
      swap h i !s;
      sift_down h !s
    end

  (* Append id (whose key is staged in [keys]) at the bottom and restore
     the heap property. *)
  let append h id =
    h.heap.(h.size) <- id;
    h.hkeys.(h.size) <- h.keys.(id);
    h.pos.(id) <- h.size;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let add h id k =
    check h id "add";
    if h.pos.(id) >= 0 then invalid_arg "Heap.Indexed.add: id already present";
    h.keys.(id) <- k;
    append h id

  let update h id k =
    check h id "update";
    let i = h.pos.(id) in
    if i < 0 then invalid_arg "Heap.Indexed.update: absent id";
    h.keys.(id) <- k;
    h.hkeys.(i) <- k;
    sift_up h i;
    sift_down h h.pos.(id)

  let remove h id =
    check h id "remove";
    let i = h.pos.(id) in
    if i < 0 then invalid_arg "Heap.Indexed.remove: absent id";
    let last = h.size - 1 in
    h.size <- last;
    h.pos.(id) <- -1;
    if i <> last then begin
      let moved = h.heap.(last) in
      h.heap.(i) <- moved;
      h.hkeys.(i) <- h.hkeys.(last);
      h.pos.(moved) <- i;
      sift_up h i;
      sift_down h h.pos.(moved)
    end

  (* Allocation-free key passing.  In native code (no flambda) a [float]
     argument or result of a non-inlined call is boxed at the boundary,
     so [add]/[update]/[key] each cost one minor-heap box per call.  The
     [_keyed] variants instead read the key from the [keys] column, and
     [put_key]/[get_key] are single array accesses — small enough that
     the compiler inlines them, keeping the float unboxed end to end. *)

  let put_key h id k = h.keys.(id) <- k

  let get_key h id = h.keys.(id)

  let add_keyed h id =
    check h id "add_keyed";
    if h.pos.(id) >= 0 then
      invalid_arg "Heap.Indexed.add_keyed: id already present";
    append h id

  let update_keyed h id =
    check h id "update_keyed";
    let i = h.pos.(id) in
    if i < 0 then invalid_arg "Heap.Indexed.update_keyed: absent id";
    h.hkeys.(i) <- h.keys.(id);
    sift_up h i;
    sift_down h h.pos.(id)

  (* Read-only slot views.  The array layout is a binary min-heap: slot 0
     is the minimum and the children of slot [i] are [2i+1]/[2i+2], so a
     caller can enumerate the k smallest members in order — without
     modifying the heap — by keeping a small frontier of candidate slots
     (start at 0; consuming a slot adds its children).  One-liners so
     they inline: [slot_key] then reads an unboxed float. *)
  let slot_count h = h.size
  let slot_id h i = h.heap.(i)
  let slot_key h i = h.hkeys.(i)

  let min_elt h = if h.size = 0 then None else Some h.heap.(0)

  let min_exn h =
    if h.size = 0 then invalid_arg "Heap.Indexed.min_exn: empty heap";
    h.heap.(0)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.heap.(0) in
      remove h top;
      Some top
    end

  let pop_exn h =
    match pop h with
    | Some x -> x
    | None -> invalid_arg "Heap.Indexed.pop_exn: empty heap"

  let clear h =
    for i = 0 to h.size - 1 do
      h.pos.(h.heap.(i)) <- -1
    done;
    h.size <- 0

  let to_sorted_list h =
    let ids = Array.sub h.heap 0 h.size in
    Array.sort (fun a b -> if less h a b then -1 else if less h b a then 1 else 0) ids;
    Array.to_list ids
end
