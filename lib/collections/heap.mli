(** Imperative binary min-heap with a user-supplied order.

    Used for the simulator's event queue and for Dijkstra inside the
    min-cost-flow solver. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (smallest element on top). *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val peek_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive; ascending order. *)

(** Indexed min-heap over the dense id space [0, capacity): float keys,
    id as deterministic tiebreak, O(log n) add / decrease-or-increase-key
    / remove by id.  The drain order is exactly the ascending sort of the
    members' [(key, id)] pairs, which is what lets a heap-backed priority
    scheduler reproduce a sort-based one bit for bit.

    Backing for the incremental priority schedulers: one heap per
    databank keyed by the priority rule, ids = job ids. *)
module Indexed : sig
  type t

  val create : capacity:int -> t
  (** Empty heap accepting ids in [0, capacity).
      @raise Invalid_argument on a negative capacity. *)

  val capacity : t -> int
  val size : t -> int
  val is_empty : t -> bool

  val mem : t -> int -> bool
  (** @raise Invalid_argument on an out-of-range id (all id-taking
      operations do). *)

  val key : t -> int -> float
  (** Current key of a member. @raise Invalid_argument if absent. *)

  val add : t -> int -> float -> unit
  (** @raise Invalid_argument if the id is already present. *)

  val update : t -> int -> float -> unit
  (** Re-key a member (decrease or increase).
      @raise Invalid_argument if absent. *)

  val remove : t -> int -> unit
  (** @raise Invalid_argument if absent. *)

  val min_elt : t -> int option
  (** Member with the smallest [(key, id)], without removing it. *)

  val min_exn : t -> int
  val pop : t -> int option
  val pop_exn : t -> int
  val clear : t -> unit

  val to_sorted_list : t -> int list
  (** Non-destructive; ascending [(key, id)] order. *)
end
