(** Imperative binary min-heap with a user-supplied order.

    Used for the simulator's event queue and for Dijkstra inside the
    min-cost-flow solver. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (smallest element on top). *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val peek_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive; ascending order. *)

(** Indexed min-heap over the dense id space [0, capacity): float keys,
    id as deterministic tiebreak, O(log n) add / decrease-or-increase-key
    / remove by id.  The drain order is exactly the ascending sort of the
    members' [(key, id)] pairs, which is what lets a heap-backed priority
    scheduler reproduce a sort-based one bit for bit.

    Backing for the incremental priority schedulers: one heap per
    databank keyed by the priority rule, ids = job ids. *)
module Indexed : sig
  type t

  val create : capacity:int -> t
  (** Empty heap accepting ids in [0, capacity).
      @raise Invalid_argument on a negative capacity. *)

  val capacity : t -> int
  val size : t -> int
  val is_empty : t -> bool

  val mem : t -> int -> bool
  (** @raise Invalid_argument on an out-of-range id (all id-taking
      operations do). *)

  val key : t -> int -> float
  (** Current key of a member. @raise Invalid_argument if absent. *)

  val add : t -> int -> float -> unit
  (** @raise Invalid_argument if the id is already present. *)

  val update : t -> int -> float -> unit
  (** Re-key a member (decrease or increase).
      @raise Invalid_argument if absent. *)

  val remove : t -> int -> unit
  (** @raise Invalid_argument if absent.  The removed id's key cell is
      left untouched, so a later {!add_keyed} reinstates the member with
      its old key without the caller having to save it. *)

  (** {2 Allocation-free key passing}

      In native code a [float] crossing a non-inlined call boundary is
      boxed on the minor heap, so [add h id k] costs one allocation per
      call.  The split protocol below stages the key with a single
      (inlinable) array store and then runs the O(log n) operation with
      no float in its signature — nothing is boxed. *)

  val put_key : t -> int -> float -> unit
  (** Stage [id]'s key.  No membership check: for a member this re-keys
      it {e without} restoring heap order (pair with {!update_keyed});
      for a non-member it sets the key a later {!add_keyed} will use.
      @raise Invalid_argument on an out-of-range id. *)

  val get_key : t -> int -> float
  (** Raw key-cell read, no membership check: meaningful for members and
      for ids staged with {!put_key} or removed with {!remove} since
      their last key write.  @raise Invalid_argument on out-of-range. *)

  val add_keyed : t -> int -> unit
  (** {!add} with the key already staged by {!put_key} (or left behind
      by {!remove}).  @raise Invalid_argument if already present. *)

  val update_keyed : t -> int -> unit
  (** Restore heap order around [id] after {!put_key} changed its key.
      @raise Invalid_argument if absent. *)

  val slot_count : t -> int
  (** Number of members; slots [0 .. slot_count - 1] are live. *)

  val slot_id : t -> int -> int
  (** Member id stored in a heap slot.  Slot 0 is the minimum and the
      children of slot [i] are [2i+1] and [2i+2], so the k smallest
      members can be enumerated in [(key, id)] order — without mutating
      the heap — from a frontier of candidate slots (start with slot 0;
      consuming a slot adds its children).  Unchecked: the slot must be
      [< slot_count]. *)

  val slot_key : t -> int -> float
  (** Key stored in a heap slot.  Inlines to an unboxed float read.
      Unchecked: the slot must be [< slot_count]. *)

  val min_elt : t -> int option
  (** Member with the smallest [(key, id)], without removing it. *)

  val min_exn : t -> int
  val pop : t -> int option
  val pop_exn : t -> int
  val clear : t -> unit

  val to_sorted_list : t -> int list
  (** Non-destructive; ascending [(key, id)] order. *)
end
