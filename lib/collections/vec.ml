type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length v = v.size
let is_empty v = v.size = 0

let push v x =
  let cap = Array.length v.data in
  if v.size = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let nd = Array.make ncap x in
    Array.blit v.data 0 nd 0 v.size;
    v.data <- nd
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let check v i =
  if i < 0 || i >= v.size then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x

let pop v =
  if v.size = 0 then None
  else begin
    v.size <- v.size - 1;
    Some v.data.(v.size)
  end

let iter f v = for i = 0 to v.size - 1 do f v.data.(i) done
let iteri f v = for i = 0 to v.size - 1 do f i v.data.(i) done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do acc := f !acc v.data.(i) done;
  !acc

let exists p v =
  let rec go i = i < v.size && (p v.data.(i) || go (i + 1)) in
  go 0

let to_array v = Array.sub v.data 0 v.size
let to_list v = Array.to_list (to_array v)

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let clear v = v.size <- 0

let sort cmp v =
  (* Array.sort needs an exact-size array: the slack beyond [size] holds
     stale slots that must not participate. *)
  let a = to_array v in
  Array.sort cmp a;
  v.data <- a

(* Top-level so no closure is created per call: [insertion_sort] runs in
   zero-allocation hot loops where even a 3-word closure per event would
   show up in the minor-words audit. *)
let rec shift_left cmp a j x =
  if j > 0 && cmp a.(j - 1) x > 0 then begin
    a.(j) <- a.(j - 1);
    shift_left cmp a (j - 1) x
  end
  else a.(j) <- x

let insertion_sort cmp v =
  let a = v.data in
  for i = 1 to v.size - 1 do
    shift_left cmp a i a.(i)
  done

let dedup_sorted eq v =
  if v.size > 1 then begin
    let w = ref 1 in
    for r = 1 to v.size - 1 do
      if not (eq v.data.(!w - 1) v.data.(r)) then begin
        v.data.(!w) <- v.data.(r);
        incr w
      end
    done;
    v.size <- !w
  end

let sort_uniq cmp v =
  sort cmp v;
  dedup_sorted (fun a b -> cmp a b = 0) v
