open Gripps_engine
module Q = Gripps_numeric.Rat

let optimal_max_stretch ?budget inst =
  Stretch_solver.optimal_max_stretch ?budget (Snapshot.of_instance inst).Snapshot.problem

(* Degradation chain for the clairvoyant solve: the exact rational
   pipeline falls back to the float pipeline under the same budget, and
   the float pipeline falls back to greedy list scheduling (an empty plan
   makes [Plan_player.step] run its SWRPT mop-up). *)
let solve_guarded ?(budget = Stretch_solver.default_budget) ~refine problem =
  match Stretch_solver.solve ~budget ~refine problem with
  | a -> Some a
  | exception Stretch_solver.Budget_exhausted _ -> (
    match Stretch_solver.solve_float ~budget ~refine problem with
    | a -> Some a
    | exception Stretch_solver.Budget_exhausted _ -> None)

let make_scheduler ?budget name ~refine =
  { Sim.name;
    make =
      (fun inst ->
        let player = Plan_player.create () in
        let planned = ref false in
        fun st _events ->
          if not !planned then begin
            planned := true;
            let snap = Snapshot.of_instance inst in
            match solve_guarded ?budget ~refine snap.Snapshot.problem with
            | Some a ->
              Plan_player.set_plan player
                (Snapshot.expand_commitments snap
                   (Realize.commitments a ~policy:Realize.Terminal_first
                      ~sizes:(Snapshot.sizes_fn inst) ~speeds:snap.Snapshot.vspeed))
            | None -> Plan_player.set_plan player []
          end;
          Plan_player.step player st) }

let scheduler = make_scheduler "Offline" ~refine:false
let scheduler_refined = make_scheduler "Offline-Refined" ~refine:true
let scheduler_budgeted budget = make_scheduler ~budget "Offline-Budgeted" ~refine:false
