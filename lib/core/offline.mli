(** The clairvoyant optimal max-stretch algorithm (paper §4.3.1).

    Knows the whole instance in advance; computes the exact optimal
    max-stretch [S*] (milestone binary search + parametric flow) and
    realizes one feasible schedule for it.  Matching the paper's [Offline]
    row, the realization is the raw System (1) witness — {e not} the
    System (2) refinement — which is why its sum-stretch is mediocre in
    Table 1 while its max-stretch is optimal. *)

open Gripps_model
open Gripps_engine
module Q = Gripps_numeric.Rat

val optimal_max_stretch : ?budget:Stretch_solver.budget -> Instance.t -> Q.t
(** The exact optimum [S*] for the whole instance.
    @raise Stretch_solver.Budget_exhausted when the optional guardrail is
    blown (default: {!Stretch_solver.default_budget}, which well-posed
    instances never hit). *)

val scheduler : Sim.scheduler
(** Simulator realization of the optimal schedule. *)

val scheduler_refined : Sim.scheduler
(** Variant realizing the System (2) refinement instead (an upper bound on
    what the on-line heuristics can hope for on the sum-stretch side). *)

val scheduler_budgeted : Stretch_solver.budget -> Sim.scheduler
(** [Offline] with a solver guardrail: the exact pipeline falls back to
    the float pipeline when the budget is blown, and the float pipeline
    falls back to greedy SWRPT list scheduling — the run always completes,
    only the quality degrades. *)
