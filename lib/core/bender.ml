open Gripps_model
open Gripps_engine
open Gripps_sched


let arrived_delta inst st =
  let sizes =
    List.filter_map
      (fun jid ->
        if Sim.is_released st jid then Some (Instance.job inst jid).Job.size
        else None)
      (List.init (Instance.num_jobs inst) Fun.id)
  in
  match sizes with
  | [] -> 1.0
  | s :: rest ->
    let lo = List.fold_left Float.min s rest in
    let hi = List.fold_left Float.max s rest in
    hi /. lo

let min_arrived_size inst st =
  List.fold_left
    (fun acc jid ->
      if Sim.is_released st jid then Float.min acc (Instance.job inst jid).Job.size
      else acc)
    infinity
    (List.init (Instance.num_jobs inst) Fun.id)

let bender98 =
  { Sim.name = "Bender98";
    make =
      (fun inst ->
        let deadlines = Hashtbl.create 64 in
        fun st events ->
          if
            List.exists
              (fun e ->
                match e with
                (* Failures and recoveries don't change the hindsight
                   problem (it ignores work performed and machine state),
                   but they do invalidate the deadline-driven priorities'
                   assumptions, so recompute anyway — it is cheap relative
                   to the arrival-driven recomputation. *)
                | Sim.Arrival _ | Sim.Failure _ | Sim.Recovery _ -> true
                | Sim.Completion _ | Sim.Boundary -> false)
              events
          then begin
            (* Full hindsight optimum over every job released so far,
               ignoring the work actually performed — the expensive
               recomputation the paper measures in §5.3. *)
            let problem =
              (Snapshot.of_instance ~subset:(fun jid -> Sim.is_released st jid) inst).Snapshot.problem
            in
            (* Guardrail: if the hindsight solve blows its budget, keep
               the previous deadlines — the list scheduler still runs. *)
            (match Stretch_solver.optimal_max_stretch_float problem with
            | s_star ->
              let alpha = sqrt (arrived_delta inst st) in
              Hashtbl.reset deadlines;
              List.iter
                (fun jid ->
                  let j = Instance.job inst jid in
                  let d = j.Job.release +. (alpha *. s_star *. j.Job.size) in
                  Hashtbl.replace deadlines jid d)
                (Sim.active_jobs st)
            | exception Stretch_solver.Budget_exhausted _ -> ())
          end;
          let order =
            Sim.active_jobs st
            |> List.map (fun j ->
                   ((Option.value ~default:infinity (Hashtbl.find_opt deadlines j), j), j))
            |> List.sort compare
            |> List.map snd
          in
          { Sim.allocation = List_sched.allocate st ~priority_order:order;
            horizon = None }) }

let pseudo_stretch ~delta ~min_size ~size ~release ~now =
  let p = size /. min_size in
  let denom = if p <= sqrt delta then sqrt delta else delta in
  (now -. release) /. denom

let bender02 =
  Sim.stateless "Bender02" (fun st _events ->
      let inst = Sim.instance st in
      let delta = arrived_delta inst st in
      let min_size = min_arrived_size inst st in
      let order =
        Sim.active_jobs st
        |> List.map (fun j ->
               let job = Instance.job inst j in
               let s =
                 pseudo_stretch ~delta ~min_size ~size:job.Job.size
                   ~release:job.Job.release ~now:(Sim.now st)
               in
               (* Decreasing pseudo-stretch: negate for ascending sort. *)
               ((-.s, j), j))
        |> List.sort compare
        |> List.map snd
      in
      { Sim.allocation = List_sched.allocate st ~priority_order:order;
        horizon = None })
