(** Building solver problems from simulator states and instances.

    Floats (dates, sizes, remaining work) convert to rationals exactly, so
    the solver's milestone comparisons are exact even though the workload
    generator and the engine work in doubles.

    Machines with identical databank-hosting signatures are aggregated
    into one {e virtual machine} of summed speed: under the divisible
    fluid model this is exact (any aggregate assignment splits freely
    among the signature's members, cf. Lemma 1), and it shrinks the flow
    networks considerably on replicated platforms.  {!expand_commitments}
    maps a realized plan on virtual machines back to the real ones: a
    virtual chunk becomes the same time window on every member machine,
    which delivers exactly the aggregated work. *)

open Gripps_model
open Gripps_engine
module Q = Gripps_numeric.Rat

type t = {
  problem : Stretch_solver.problem;  (** machines are virtual *)
  members : int -> int list;
      (** real machine ids of a virtual machine (singleton lists when no
          aggregation happened) *)
  vspeed : int -> Q.t;  (** virtual machine speed *)
}

val of_state : Sim.state -> t
(** The pending-work problem at the current simulation date: active jobs
    with their remaining work, original release dates and sizes (so
    deadlines keep their on-line meaning).  Machines that are currently
    down ({!Sim.machine_up}) are excluded from the problem; a job whose
    every capable machine is down is dropped entirely (it waits,
    unplanned, until a recovery triggers the next replan).  When every
    machine is down the problem has no machines — callers must treat that
    as "idle until recovery" rather than invoke the solver. *)

val stretch_floor : Sim.state -> Q.t
(** Largest stretch already realized by a completed job: no schedule of
    the pending work can bring the final max-stretch below it ("the
    decisions already made", §4.3.2 step 2). *)

val of_instance : ?subset:(int -> bool) -> Instance.t -> t
(** The clairvoyant whole-instance problem (all jobs, full sizes, from
    date 0); [subset] filters jobs by id (default: all). *)

val expand_commitments :
  t -> (int * Realize.commitment list) list -> (int * Realize.commitment list) list
(** Turn per-virtual-machine commitments into per-real-machine ones. *)

val sizes_fn : Instance.t -> int -> Q.t
(** Original job sizes, for {!Realize} policies. *)
