open Gripps_engine
open Gripps_sched
module Obs = Gripps_obs.Obs

(* Observability: one counter per replan outcome.  [degraded] replans are
   the fallback path (solver budget blown, or every machine down) — the
   resilience study watches this to tell "scheduler coped" apart from
   "scheduler gave up". *)
let c_replans = Obs.Counter.make "online.replans"
let c_degraded = Obs.Counter.make "online.degraded_replans"

(* Arrivals change the pending-work problem; so do machine failures and
   recoveries (the snapshot excludes down machines, so the LP must be
   re-solved on either edge).  Completions and boundaries never do. *)
let needs_replan events =
  List.exists
    (fun e ->
      match e with
      | Sim.Arrival _ | Sim.Failure _ | Sim.Recovery _ -> true
      | Sim.Completion _ | Sim.Boundary -> false)
    events

(* The on-line heuristics run in doubles (as the paper's implementation
   did): only the clairvoyant Offline optimum needs exact arithmetic.

   Returns [None] when no plan can be computed right now: either every
   machine is down (the caller idles until a recovery triggers the next
   replan) or the solver blew its budget (the caller degrades to greedy
   SWRPT list scheduling — the plan player's own fallback). *)
let solve_state ?budget st ~refine =
  Obs.Span.with_ "online.replan" @@ fun () ->
  Obs.Counter.incr c_replans;
  let degraded reason =
    Obs.Counter.incr c_degraded;
    if Obs.Journal.on () then
      Obs.Journal.record
        (Obs.Journal.Note { key = "online.degraded"; value = reason });
    None
  in
  let snap = Snapshot.of_state st in
  if snap.Snapshot.problem.Stretch_solver.machines = [] then
    degraded "all machines down"
  else begin
    let floor = Gripps_numeric.Rat.to_float (Snapshot.stretch_floor st) in
    match Stretch_solver.solve_float ?budget ~floor ~refine snap.Snapshot.problem with
    | a -> Some (snap, a)
    | exception Stretch_solver.Budget_exhausted _ -> degraded "solver budget exhausted"
  end

(* Online and Online-EDF: solve + realize into commitments, replayed by a
   plan player until the next arrival, failure or recovery. *)
let playback_scheduler ?budget name ~policy ~refine =
  { Sim.name;
    make =
      (fun inst ->
        let player = Plan_player.create () in
        let sizes = Snapshot.sizes_fn inst in
        fun st events ->
          if needs_replan events then begin
            match solve_state ?budget st ~refine with
            | Some (snap, a) ->
              Plan_player.set_plan player
                (Snapshot.expand_commitments snap
                   (Realize.commitments a ~policy ~sizes ~speeds:snap.Snapshot.vspeed))
            | None ->
              (* Degraded mode: an empty plan makes [Plan_player.step]
                 fall through to its SWRPT mop-up (or to idling when
                 every machine is down). *)
              Plan_player.set_plan player []
          end;
          Plan_player.step player st) }

let online =
  playback_scheduler "Online" ~policy:Realize.Terminal_first ~refine:true

let online_edf =
  playback_scheduler "Online-EDF" ~policy:Realize.By_completion_interval ~refine:true

let online_non_optimized =
  playback_scheduler "Online-NonOpt" ~policy:Realize.Terminal_first ~refine:false

let online_budgeted budget =
  playback_scheduler ~budget "Online-Budgeted" ~policy:Realize.Terminal_first
    ~refine:true

(* Online-EGDF: keep only the global completion-interval order and run the
   greedy distribution rule at every event. *)
let online_egdf =
  { Sim.name = "Online-EGDF";
    make =
      (fun inst ->
        let sizes = Snapshot.sizes_fn inst in
        let order = ref [] in
        (* Stamped membership marks: the straggler check below used to be
           [List.mem] inside a filter — O(n²) per event. *)
        let mark = Array.make (Gripps_model.Instance.num_jobs inst) 0 in
        let stamp = ref 0 in
        fun st events ->
          if needs_replan events then begin
            match solve_state st ~refine:true with
            | Some (_snap, a) -> order := Realize.completion_order a ~sizes
            | None -> order := []
          end;
          let alive = List.filter (fun j -> not (Sim.is_completed st j)) !order in
          (* Safety: any active job missing from the order (possible after
             a degraded replan, guaranteed absent for solver output) goes
             last. *)
          incr stamp;
          List.iter (fun j -> mark.(j) <- !stamp) alive;
          let missing =
            List.filter (fun j -> mark.(j) <> !stamp) (Sim.active_jobs st)
          in
          { Sim.allocation = List_sched.allocate st ~priority_order:(alive @ missing);
            horizon = None }) }
