module Q = Gripps_numeric.Rat
module B = Gripps_numeric.Bigint
module Vec = Gripps_collections.Vec
module ZFlow = Gripps_flow.Maxflow.Make (Gripps_numeric.Bigint_field)
module ZMcmf = Gripps_flow.Mcmf.Make (Gripps_numeric.Bigint_field)
module FFlow = Gripps_flow.Maxflow.Make (Gripps_numeric.Field.Float)

type job_spec = {
  jid : int;
  release : Q.t;
  size : Q.t;
  remaining : Q.t;
  machines : int list;
}

type machine_spec = { mid : int; speed : Q.t }

type problem = { now : Q.t; jobs : job_spec list; machines : machine_spec list }

type interval = { lo : Q.t; hi : Q.t }

type assignment = {
  s_star : Q.t;
  intervals : interval array;
  work : (int * int * int * Q.t) list;
}

(* Time points are affine functions of the objective F: value a + b·F with
   b >= 0 (b = 0 for the current date and release dates, b = W_j for the
   deadline of job j).  Inside a milestone interval their order is fixed;
   sorting by (value at F, slope) yields the order valid on [F, F + ε),
   which is exactly what the Newton iteration needs when starting from a
   milestone. *)
(* ------------------------------------------------------------------ *)
(* Guardrail budgets.  Both solver pipelines iterate (milestone probes, *)
(* Newton steps, bisection): a budget caps the number of iterations and *)
(* the wall time so a pathological instance degrades service (callers   *)
(* fall back to a cheaper pipeline) instead of hanging the run.         *)
(* ------------------------------------------------------------------ *)

type budget = { max_iters : int; max_seconds : float }

let default_budget = { max_iters = 100_000; max_seconds = infinity }

exception Budget_exhausted of { stage : string; iters : int; elapsed : float }

(* A ticker counts one solver iteration (feasibility probe or Newton
   step) per call and raises once the budget is blown. *)
let make_ticker budget stage =
  let count = ref 0 and t0 = Sys.time () in
  fun () ->
    incr count;
    if
      !count > budget.max_iters
      || (budget.max_seconds < infinity && Sys.time () -. t0 > budget.max_seconds)
    then
      raise
        (Budget_exhausted { stage; iters = !count; elapsed = Sys.time () -. t0 })

(* ------------------------------------------------------------------ *)
(* Instrumentation.  Global counters over every solver run since the    *)
(* last [reset_stats]; the perf harness and the §5.3 overhead study     *)
(* read them to attribute wall time to probes vs. network work.         *)
(* ------------------------------------------------------------------ *)

type stats = {
  exact_probes : int;
  float_probes : int;
  graph_builds : int;
  warm_updates : int;
  augmenting_paths : int;
  rat_fast_hits : int;
  rat_fast_falls : int;
}

(* The counters live in the shared observability registry
   ([Gripps_obs.Obs]); [stats]/[reset_stats] remain as the historical
   facade over them.  The rational fast-path counters keep their storage
   in [Gripps_numeric.Rat] (the numeric layer stays dependency-free) and
   are exposed to the registry as polled gauges. *)

module Obs = Gripps_obs.Obs

let exact_probe_count = Obs.Counter.make "solver.exact_probes"
let float_probe_count = Obs.Counter.make "solver.float_probes"
let build_count = Obs.Counter.make "solver.graph_builds"
let warm_update_count = Obs.Counter.make "solver.warm_updates"
let augmenting_path_count = Obs.Counter.make "solver.augmenting_paths"

let () =
  Obs.register_poll "rat.fast_hits" (fun () -> (Q.stats ()).Q.fast_hits);
  Obs.register_poll "rat.fast_falls" (fun () -> (Q.stats ()).Q.fast_falls);
  (* The Rat counters are domain-local; these injectors let a parallel
     sweep fold a worker domain's counts back into the coordinator's. *)
  Obs.register_poll_merge "rat.fast_hits" (fun d ->
      Q.add_stats { Q.fast_hits = d; fast_falls = 0 });
  Obs.register_poll_merge "rat.fast_falls" (fun d ->
      Q.add_stats { Q.fast_hits = 0; fast_falls = d });
  Obs.register_reset Q.reset_stats

let reset_stats () =
  Obs.Counter.reset exact_probe_count;
  Obs.Counter.reset float_probe_count;
  Obs.Counter.reset build_count;
  Obs.Counter.reset warm_update_count;
  Obs.Counter.reset augmenting_path_count;
  Q.reset_stats ()

let stats () =
  let r = Q.stats () in
  { exact_probes = Obs.Counter.value exact_probe_count;
    float_probes = Obs.Counter.value float_probe_count;
    graph_builds = Obs.Counter.value build_count;
    warm_updates = Obs.Counter.value warm_update_count;
    augmenting_paths = Obs.Counter.value augmenting_path_count;
    rat_fast_hits = r.Q.fast_hits;
    rat_fast_falls = r.Q.fast_falls }

(* Debug/bench knob: with [warm_enabled := false] every exact probe
   rebuilds the flow network from scratch (the pre-warm-start pipeline);
   the perf harness uses it to verify that warm and cold paths agree. *)
let warm_enabled = ref true

type point = { a : Q.t; b : Q.t }

let point_value p ~f = Q.add p.a (Q.mul p.b f)

let validate p =
  if p.machines = [] then invalid_arg "Stretch_solver: no machines";
  List.iter
    (fun m ->
      if Q.sign m.speed <= 0 then invalid_arg "Stretch_solver: non-positive speed")
    p.machines;
  List.iter
    (fun j ->
      if Q.sign j.size <= 0 then invalid_arg "Stretch_solver: non-positive size";
      if Q.sign j.remaining < 0 then
        invalid_arg "Stretch_solver: negative remaining work";
      if Q.sign j.remaining > 0 && j.machines = [] then
        invalid_arg "Stretch_solver: pending job with no machine")
    p.jobs

(* A normalized view: only jobs with pending work. *)
type norm = {
  now : Q.t;
  jobs : job_spec array;
  machines : machine_spec array;
  machine_index : (int, int) Hashtbl.t;
  total : Q.t;
}

let normalize p =
  validate p;
  let jobs = Array.of_list (List.filter (fun j -> Q.sign j.remaining > 0) p.jobs) in
  let machines = Array.of_list p.machines in
  let machine_index = Hashtbl.create 16 in
  Array.iteri (fun i m -> Hashtbl.replace machine_index m.mid i) machines;
  Array.iter
    (fun (j : job_spec) ->
      List.iter
        (fun mid ->
          if not (Hashtbl.mem machine_index mid) then
            invalid_arg "Stretch_solver: job references unknown machine")
        j.machines)
    jobs;
  let total = Array.fold_left (fun acc j -> Q.add acc j.remaining) Q.zero jobs in
  { now = p.now; jobs; machines; machine_index; total }

let deadline_point j = { a = j.release; b = j.size }

(* Start of job j's schedulable window. *)
let window_start n j = Q.max_rat n.now j.release

type structure = {
  points : point array;  (* strictly increasing by (value at f, slope) *)
  ints : (point * point) array;
}

(* Interval geometry at objective [f]: the sorted point array together
   with the cached value of every point at [f] and, per job, the indices
   of its window-start and deadline points.  A job's window covers
   interval [t] iff [start_idx <= t && t + 1 <= dead_idx] — two integer
   comparisons instead of a symbolic rational comparison per
   (job × interval) pair, and each point's value is computed once per
   objective instead of once per comparison. *)
type geometry = {
  s : structure;
  values : Q.t array;    (* values.(i) = value of points.(i) at [f] *)
  start_idx : int array;
  dead_idx : int array;  (* -1 when the deadline lies before [now] *)
}

let build_geometry n ~f =
  let v = Vec.create () in
  Vec.push v (n.now, { a = n.now; b = Q.zero });
  Array.iter
    (fun j ->
      if Q.gt j.release n.now then
        Vec.push v (j.release, { a = j.release; b = Q.zero });
      let d = deadline_point j in
      Vec.push v (point_value d ~f, d))
    n.jobs;
  (* Sorting by (value, slope) yields the order valid on [f, f + ε); a
     pair equal on both is the same affine function, so dedup under the
     same key matches the symbolic sort_uniq of the points themselves. *)
  let cmp (va, pa) (vb, pb) =
    match Q.compare va vb with 0 -> Q.compare pa.b pb.b | c -> c
  in
  Vec.sort_uniq cmp v;
  (* Drop points before the current date (slopes are all >= 0, so only a
     strictly smaller value sorts below the now-point). *)
  let first = ref 0 in
  while !first < Vec.length v && Q.lt (fst (Vec.get v !first)) n.now do
    incr first
  done;
  let npts = Vec.length v - !first in
  let points = Array.init npts (fun i -> snd (Vec.get v (!first + i))) in
  let values = Array.init npts (fun i -> fst (Vec.get v (!first + i))) in
  let find value slope =
    let lo = ref 0 and hi = ref (npts - 1) and res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c =
        match Q.compare values.(mid) value with
        | 0 -> Q.compare points.(mid).b slope
        | c -> c
      in
      if c = 0 then begin
        res := mid;
        lo := !hi + 1
      end
      else if c < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    !res
  in
  let start_idx =
    Array.map
      (fun j ->
        let i = find (window_start n j) Q.zero in
        if i < 0 then
          failwith "Stretch_solver: internal error (missing start point)";
        i)
      n.jobs
  in
  let dead_idx =
    Array.map
      (fun j ->
        let d = deadline_point j in
        find (point_value d ~f) d.b)
      n.jobs
  in
  let ints =
    Array.init (max 0 (npts - 1)) (fun t -> (points.(t), points.(t + 1)))
  in
  { s = { points; ints }; values; start_idx; dead_idx }

(* Node numbering for the flow graphs. *)
let source = 0
let sink = 1
let job_node ji = 2 + ji
let cell_node ~njobs ~nmach t mi = 2 + njobs + (t * nmach) + mi

(* ------------------------------------------------------------------ *)
(* Exact graphs.  All capacities are rationals; we scale them to a     *)
(* common denominator and run the flow over integers — Dinic and the   *)
(* min-cost augmentation never divide, and integer arithmetic avoids a *)
(* gcd normalization per operation.                                    *)
(* ------------------------------------------------------------------ *)

let lcm a b = B.mul (B.div a (B.gcd a b)) b

(* A persistent flow network for one interval structure.  Capacities sit
   on an integer grid: [z = q / grid], with [grid] chosen at build time
   so every capacity is integral.  Warm re-installations at a new
   objective may refine the grid by an integer factor (the flow already
   routed is rescaled in place by {!ZFlow.scale_capacities}). *)
type built = {
  graph : ZFlow.t;
  mutable grid : Q.t;   (* work units per integer flow unit *)
  job_edges : (int * int * int * int) list;  (* jobindex, t, machindex, edge *)
  cell_edges : (int * int * int) list;       (* t, machindex, edge to sink *)
  structure : structure;
  start_idx : int array;
  dead_idx : int array;
  mutable values : Q.t array;  (* point values at the installed objective *)
  mutable f : Q.t;             (* objective the capacities encode *)
  mutable total_scaled : B.t;
  mutable solved : bool;       (* residual state holds a valid flow *)
  mutable aug_seen : int;
}

let to_z b q =
  let r = Q.div q b.grid in
  if not (B.equal (Q.den r) B.one) then
    failwith "Stretch_solver: internal error (capacity off the integer grid)";
  Q.num r

let of_z b w = Q.mul (Q.of_bigint w) b.grid

let cell_cap n (values : Q.t array) t mi =
  let len = Q.sub values.(t + 1) values.(t) in
  Q.mul len n.machines.(mi).speed

let build_graph n (geo : geometry) ~f =
  Obs.Counter.incr build_count;
  let njobs = Array.length n.jobs and nmach = Array.length n.machines in
  let nints = Array.length geo.s.ints in
  let cell_caps =
    Array.init nints (fun t ->
        Array.init nmach (fun mi -> cell_cap n geo.values t mi))
  in
  (* Common denominator of every capacity, then strip the common factor of
     the numerators to keep the integers as small as possible. *)
  let scale = ref B.one in
  Array.iter (fun j -> scale := lcm !scale (Q.den j.remaining)) n.jobs;
  Array.iter (Array.iter (fun c -> scale := lcm !scale (Q.den c))) cell_caps;
  let raw_scale = !scale in
  let raw_z q = B.mul (Q.num q) (B.div raw_scale (Q.den q)) in
  let shrink = ref B.zero in
  Array.iter (fun j -> shrink := B.gcd !shrink (raw_z j.remaining)) n.jobs;
  Array.iter (Array.iter (fun c -> shrink := B.gcd !shrink (raw_z c))) cell_caps;
  let shrink = if B.is_zero !shrink then B.one else !shrink in
  let zq q = B.div (raw_z q) shrink in
  let g = ZFlow.create ~n:(2 + njobs + (nints * nmach)) in
  Array.iteri
    (fun ji j ->
      ignore (ZFlow.add_edge g ~src:source ~dst:(job_node ji) ~cap:(zq j.remaining)))
    n.jobs;
  let cell_edges = ref [] and job_edges = ref [] in
  (* Zero-length intervals (ties at a milestone) are kept: their capacity
     is 0 at [f] but grows for F > f, and the Newton step must account for
     that growth when measuring the cut's slope. *)
  for t = 0 to nints - 1 do
    for mi = 0 to nmach - 1 do
      let e =
        ZFlow.add_edge g ~src:(cell_node ~njobs ~nmach t mi) ~dst:sink
          ~cap:(zq cell_caps.(t).(mi))
      in
      cell_edges := (t, mi, e) :: !cell_edges
    done
  done;
  Array.iteri
    (fun ji j ->
      let zrem = zq j.remaining in
      for t = geo.start_idx.(ji) to geo.dead_idx.(ji) - 1 do
        List.iter
          (fun mid ->
            let mi = Hashtbl.find n.machine_index mid in
            let e =
              ZFlow.add_edge g ~src:(job_node ji)
                ~dst:(cell_node ~njobs ~nmach t mi) ~cap:zrem
            in
            job_edges := (ji, t, mi, e) :: !job_edges)
          j.machines
      done)
    n.jobs;
  { graph = g; grid = Q.make shrink raw_scale; job_edges = !job_edges;
    cell_edges = !cell_edges; structure = geo.s; start_idx = geo.start_idx;
    dead_idx = geo.dead_idx; values = geo.values; f;
    total_scaled = zq n.total; solved = false; aug_seen = 0 }

(* Re-install the capacities of an existing network at a new objective
   with the same structure, preserving the flow (warm start).  Only the
   cell -> sink capacities depend on F. *)
let install b n ~f ~values =
  Obs.Counter.incr warm_update_count;
  (* The point order must still hold at [f] (crossing-free invariant). *)
  Array.iteri
    (fun i v ->
      if i > 0 && Q.gt values.(i - 1) v then
        failwith "Stretch_solver: internal error (structure crossed)")
    values;
  (* Refine the integer grid when the new capacities need it. *)
  let k = ref B.one in
  List.iter
    (fun (t, mi, _e) -> k := lcm !k (Q.den (Q.div (cell_cap n values t mi) b.grid)))
    b.cell_edges;
  if not (B.equal !k B.one) then begin
    ZFlow.scale_capacities b.graph !k;
    b.grid <- Q.div b.grid (Q.of_bigint !k);
    b.total_scaled <- B.mul b.total_scaled !k
  end;
  List.iter
    (fun (t, mi, e) ->
      ZFlow.update_capacity b.graph ~source ~sink e (to_z b (cell_cap n values t mi)))
    b.cell_edges;
  b.values <- values;
  b.f <- f

let sync_augmentations b =
  let a = ZFlow.augmentations b.graph in
  Obs.Counter.add augmenting_path_count (a - b.aug_seen);
  b.aug_seen <- a

let probe b =
  Obs.Counter.incr exact_probe_count;
  let flow = ZFlow.max_flow ~warm:(b.solved && !warm_enabled) b.graph ~source ~sink in
  b.solved <- true;
  sync_augmentations b;
  if Obs.Journal.on () then
    Obs.Journal.record
      (Obs.Journal.Probe
         { pipeline = "exact"; stretch = Q.to_float b.f;
           feasible = B.equal flow b.total_scaled });
  flow

let same_structure (s : structure) (s' : structure) =
  Array.length s.points = Array.length s'.points
  && Array.for_all2
       (fun p p' -> Q.equal p.a p'.a && Q.equal p.b p'.b)
       s.points s'.points

(* Obtain a network matching the structure at [f]: reuse (and warm-update)
   the cached one when the interval structure is unchanged, else build
   cold. *)
let acquire ~cache n ~f =
  let geo = build_geometry n ~f in
  match !cache with
  | Some b when !warm_enabled && same_structure b.structure geo.s ->
    if not (Q.equal b.f f) then install b n ~f ~values:geo.values;
    b
  | _ ->
    let b = build_graph n geo ~f in
    cache := Some b;
    b

(* Move a network to a new objective inside the same crossing-free
   interval: values are recomputed directly, skipping the structure
   rebuild.  With warm starts disabled this degenerates to a cold
   rebuild, reproducing the pre-warm pipeline. *)
let shift ~cache b n ~f =
  if Q.equal b.f f then b
  else if !warm_enabled then begin
    install b n ~f ~values:(Array.map (fun p -> point_value p ~f) b.structure.points);
    b
  end
  else acquire ~cache n ~f

let feasible_norm n ~f =
  if Array.length n.jobs = 0 then true
  else begin
    let b = acquire ~cache:(ref None) n ~f in
    B.equal (probe b) b.total_scaled
  end

(* Fast approximate feasibility in doubles, used only to pre-locate the
   milestone bracket; bracket endpoints are re-verified exactly, so a
   wrong answer here costs time, never correctness. *)
let feasible_float n ~f =
  Obs.Counter.incr float_probe_count;
  let njobs = Array.length n.jobs and nmach = Array.length n.machines in
  if njobs = 0 then true
  else begin
    let now = Q.to_float n.now in
    let release = Array.map (fun j -> Q.to_float (window_start n j)) n.jobs in
    let deadline =
      Array.map (fun j -> Q.to_float j.release +. (f *. Q.to_float j.size)) n.jobs
    in
    let points =
      Array.to_list release @ Array.to_list deadline @ [ now ]
      |> List.filter (fun t -> t >= now)
      |> List.sort_uniq Float.compare
      |> Array.of_list
    in
    let nints = Array.length points - 1 in
    let g = FFlow.create ~n:(2 + njobs + (nints * nmach)) in
    let total = ref 0.0 in
    Array.iteri
      (fun ji j ->
        let rem = Q.to_float j.remaining in
        total := !total +. rem;
        ignore (FFlow.add_edge g ~src:source ~dst:(job_node ji) ~cap:rem))
      n.jobs;
    let cell_used = Array.make (max 1 (nints * nmach)) false in
    Array.iteri
      (fun ji j ->
        let rem = Q.to_float j.remaining in
        for t = 0 to nints - 1 do
          if
            points.(t) >= release.(ji) -. 1e-12
            && points.(t + 1) <= deadline.(ji) +. 1e-12
          then
            List.iter
              (fun mid ->
                let mi = Hashtbl.find n.machine_index mid in
                cell_used.((t * nmach) + mi) <- true;
                ignore
                  (FFlow.add_edge g ~src:(job_node ji)
                     ~dst:(cell_node ~njobs ~nmach t mi) ~cap:rem))
              j.machines
        done)
      n.jobs;
    for t = 0 to nints - 1 do
      let len = points.(t + 1) -. points.(t) in
      Array.iteri
        (fun mi m ->
          if cell_used.((t * nmach) + mi) then
            ignore
              (FFlow.add_edge g ~src:(cell_node ~njobs ~nmach t mi) ~dst:sink
                 ~cap:(len *. Q.to_float m.speed)))
        n.machines
    done;
    let flow = FFlow.max_flow g ~source ~sink in
    let ok = flow >= !total *. (1.0 -. 1e-9) in
    if Obs.Journal.on () then
      Obs.Journal.record
        (Obs.Journal.Probe { pipeline = "float"; stretch = f; feasible = ok });
    ok
  end

(* Milestones: positive F where a deadline crosses another deadline, a
   release date, or the current date. *)
let milestones n =
  let cands = Vec.create () in
  let constants =
    n.now :: (Array.to_list n.jobs |> List.map (fun j -> window_start n j))
  in
  Array.iter
    (fun j ->
      List.iter
        (fun c ->
          let f = Q.div (Q.sub c j.release) j.size in
          if Q.sign f > 0 then Vec.push cands f)
        constants)
    n.jobs;
  let njobs = Array.length n.jobs in
  for a = 0 to njobs - 1 do
    for b = a + 1 to njobs - 1 do
      let ja = n.jobs.(a) and jb = n.jobs.(b) in
      if not (Q.equal ja.size jb.size) then begin
        let f = Q.div (Q.sub jb.release ja.release) (Q.sub ja.size jb.size) in
        if Q.sign f > 0 then Vec.push cands f
      end
    done
  done;
  Vec.sort_uniq Q.compare cands;
  Vec.to_array cands

(* Newton / Dinkelbach iteration on the parametric min cut, starting at
   [f0] and restricted to a crossing-free interval [f0, hi].  The outcome
   certifies the bracket as a side effect of the iteration itself:
   - [Feasible_at_start]: [f0] is already feasible (search further left);
   - [Converged (f, built)]: [f0] was infeasible and [f] is the smallest
     feasible objective in the interval, with the flow network solved at
     [f] (reused by [solve] to avoid one more max-flow);
   - [Exceeded]: no feasible objective in [f0, hi].
   Soundness: within a crossing-free interval the min-cut capacity is a
   minimum of affine functions of F, hence concave; the line of the cut
   found at an infeasible iterate upper-bounds it, so the Newton step
   never overshoots the interval's first feasible point. *)
type newton_outcome =
  | Feasible_at_start of built
  | Converged of Q.t * built
  | Exceeded

let newton_bounded ~tick ~cache n ~f:f0 ~hi =
  let rec go b f iter =
    tick ();
    let flow = probe b in
    if B.equal flow b.total_scaled then
      if iter = 0 then Feasible_at_start b else Converged (f, b)
    else begin
      let deficit = of_z b (B.sub b.total_scaled flow) in
      let cut = ZFlow.min_cut b.graph ~source in
      (* Growth rate of the cut capacity: only cell -> sink edges depend
         on F; their capacity slope is speed × (hi.b - lo.b). *)
      let njobs = Array.length n.jobs and nmach = Array.length n.machines in
      let rho =
        List.fold_left
          (fun acc (t, mi, _e) ->
            if cut.(cell_node ~njobs ~nmach t mi) then begin
              let lo, hi = b.structure.ints.(t) in
              let slope = Q.sub hi.b lo.b in
              Q.add acc (Q.mul n.machines.(mi).speed slope)
            end
            else acc)
          Q.zero b.cell_edges
      in
      if Q.sign rho <= 0 then Exceeded
      else begin
        let f_next = Q.add f (Q.div deficit rho) in
        match hi with
        | Some h when Q.gt f_next h -> Exceeded
        | Some _ | None -> go (shift ~cache b n ~f:f_next) f_next (iter + 1)
      end
    end
  in
  go (acquire ~cache n ~f:f0) f0 0

(* Full search: float-guided milestone bracket, certified and refined by
   the exact Newton iteration.  Returns the optimum and the solved flow
   network at the optimum. *)
let find_optimum ?(floor = Q.zero) ~tick n =
  (* Smallest F at which every pending deadline is >= now. *)
  let f_base =
    Array.fold_left
      (fun acc j -> Q.max_rat acc (Q.div (Q.sub n.now j.release) j.size))
      floor n.jobs
  in
  let ms_all = milestones n in
  (* [ms_all] is sorted: keep the suffix strictly above [f_base]. *)
  let skip = ref 0 in
  while !skip < Array.length ms_all && not (Q.gt ms_all.(!skip) f_base) do
    incr skip
  done;
  let ms = Array.sub ms_all !skip (Array.length ms_all - !skip) in
  let len = Array.length ms in
  (* Locate the first feasible milestone with the float fast path; the
     exact loop below repairs any misjudgment. *)
  let lo = ref 0 and hi = ref len in
  tick ();
  if not (feasible_float n ~f:(Q.to_float f_base)) then begin
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      tick ();
      if feasible_float n ~f:(Q.to_float ms.(mid)) then hi := mid else lo := mid + 1
    done
  end;
  let cache = ref None in
  let rec attempt i =
    if i > len then failwith "Stretch_solver: no feasible stretch";
    let start = if i = 0 then f_base else ms.(i - 1) in
    let bound = if i < len then Some ms.(i) else None in
    match newton_bounded ~tick ~cache n ~f:start ~hi:bound with
    | Converged (f, b) -> (f, b)
    | Feasible_at_start b ->
      if i = 0 then (f_base, b) else attempt (i - 1)
    | Exceeded -> attempt (i + 1)
  in
  attempt !lo

let optimal_max_stretch ?(budget = default_budget) ?(floor = Q.zero) p =
  Obs.Span.with_ "solver.exact" (fun () ->
      let n = normalize p in
      if Array.length n.jobs = 0 then floor
      else fst (find_optimum ~floor ~tick:(make_ticker budget "exact") n))

let feasible p ~stretch =
  let n = normalize p in
  Array.for_all
    (fun j -> Q.ge (point_value (deadline_point j) ~f:stretch) n.now)
    n.jobs
  && feasible_norm n ~f:stretch

let solve ?(budget = default_budget) ?(floor = Q.zero) ?(refine = false) p =
  Obs.Span.with_ "solver.exact" @@ fun () ->
  let n = normalize p in
  if Array.length n.jobs = 0 then { s_star = floor; intervals = [||]; work = [] }
  else begin
    (* find_optimum hands back the flow network already solved at the
       optimum, saving one max-flow in the unrefined path. *)
    let s_star, b = find_optimum ~floor ~tick:(make_ticker budget "exact") n in
    (* [b] is installed at [s_star], so its cached point values are the
       interval bounds of the optimum. *)
    let intervals =
      Array.init (Array.length b.structure.ints) (fun t ->
          { lo = b.values.(t); hi = b.values.(t + 1) })
    in
    let work_of_flow ~of_z flow_on job_edges =
      List.filter_map
        (fun (ji, t, mi, e) ->
          let w = flow_on e in
          if B.sign w > 0 then
            Some (n.jobs.(ji).jid, t, n.machines.(mi).mid, of_z w)
          else None)
        job_edges
    in
    if not refine then
      { s_star; intervals;
        work = work_of_flow ~of_z:(of_z b) (ZFlow.flow_on b.graph) b.job_edges }
    else begin
      (* System (2): same network with cost midpoint(t)/W_j per unit of
         work of job j placed in interval t.  Costs are scaled to a
         common integer denominator of their own (scaling all costs by a
         positive constant does not change the argmin). *)
      let njobs = Array.length n.jobs and nmach = Array.length n.machines in
      let nints = Array.length b.structure.ints in
      let half = Q.of_ints 1 2 in
      let cost_of ji t =
        let iv = intervals.(t) in
        let mid = Q.mul half (Q.add iv.lo iv.hi) in
        Q.div mid n.jobs.(ji).size
      in
      let cost_scale = ref B.one in
      List.iter
        (fun (ji, t, _mi, _e) -> cost_scale := lcm !cost_scale (Q.den (cost_of ji t)))
        b.job_edges;
      let to_zcost q = B.mul (Q.num q) (B.div !cost_scale (Q.den q)) in
      let to_zcap = to_z b in
      let g = ZMcmf.create ~n:(2 + njobs + (nints * nmach)) in
      Array.iteri
        (fun ji j ->
          ignore
            (ZMcmf.add_edge g ~src:source ~dst:(job_node ji)
               ~cap:(to_zcap j.remaining) ~cost:B.zero))
        n.jobs;
      List.iter
        (fun (t, mi, _) ->
          let iv = intervals.(t) in
          let len = Q.sub iv.hi iv.lo in
          ignore
            (ZMcmf.add_edge g ~src:(cell_node ~njobs ~nmach t mi) ~dst:sink
               ~cap:(to_zcap (Q.mul len n.machines.(mi).speed)) ~cost:B.zero))
        b.cell_edges;
      let refined_edges =
        List.map
          (fun (ji, t, mi, _) ->
            let e =
              ZMcmf.add_edge g ~src:(job_node ji) ~dst:(cell_node ~njobs ~nmach t mi)
                ~cap:(to_zcap n.jobs.(ji).remaining) ~cost:(to_zcost (cost_of ji t))
            in
            (ji, t, mi, e))
          b.job_edges
      in
      let flow, _cost = ZMcmf.min_cost_max_flow g ~source ~sink in
      if not (B.equal flow b.total_scaled) then
        failwith "Stretch_solver: internal error (refined optimum not feasible)";
      { s_star; intervals;
        work = work_of_flow ~of_z:(of_z b) (ZMcmf.flow_on g) refined_edges }
    end
  end

(* ------------------------------------------------------------------ *)
(* Floating-point pipeline (used by the on-line schedulers).           *)
(* ------------------------------------------------------------------ *)

(* The refine path quantizes capacities and costs onto an integer grid:
   successive-shortest-paths over real capacities can make unboundedly
   many microscopic augmentations, while over integers the number of
   augmentations is bounded by the total quantized demand. *)
module IMcmf = Gripps_flow.Mcmf.Make (Gripps_numeric.Field.Int)

type fnorm = {
  fnow : float;
  frelease : float array;   (* original release dates *)
  fwstart : float array;    (* max (now, release) *)
  fsize : float array;
  frem : float array;
  fmach : int list array;   (* internal machine indices *)
  fspeed : float array;
  fjid : int array;
  fmid : int array;
  ftotal : float;
}

let fnormalize n =
  let njobs = Array.length n.jobs in
  { fnow = Q.to_float n.now;
    frelease = Array.map (fun j -> Q.to_float j.release) n.jobs;
    fwstart = Array.map (fun j -> Q.to_float (window_start n j)) n.jobs;
    fsize = Array.map (fun j -> Q.to_float j.size) n.jobs;
    frem = Array.map (fun j -> Q.to_float j.remaining) n.jobs;
    fmach =
      Array.map
        (fun (j : job_spec) -> List.map (Hashtbl.find n.machine_index) j.machines)
        n.jobs;
    fspeed = Array.map (fun m -> Q.to_float m.speed) n.machines;
    fjid = Array.map (fun j -> j.jid) n.jobs;
    fmid = Array.map (fun m -> m.mid) n.machines;
    ftotal =
      (let t = ref 0.0 in
       for ji = 0 to njobs - 1 do t := !t +. Q.to_float n.jobs.(ji).remaining done;
       !t) }

(* Interval structure at objective [f]: sorted time points from now on. *)
let fpoints fn ~f =
  let deadline ji = fn.frelease.(ji) +. (f *. fn.fsize.(ji)) in
  (fn.fnow :: Array.to_list fn.fwstart)
  @ List.init (Array.length fn.frem) deadline
  |> List.filter (fun t -> t >= fn.fnow)
  |> List.sort_uniq Float.compare
  |> Array.of_list

(* Max-flow feasibility graph at [f]; returns
   (graph, points, job_edges, source_edges). *)
let fbuild fn ~f =
  let njobs = Array.length fn.frem and nmach = Array.length fn.fspeed in
  let points = fpoints fn ~f in
  let nints = max 0 (Array.length points - 1) in
  let g = FFlow.create ~n:(2 + njobs + (nints * nmach)) in
  let src_edges =
    Array.init njobs (fun ji ->
        FFlow.add_edge g ~src:source ~dst:(job_node ji) ~cap:fn.frem.(ji))
  in
  let cell_used = Array.make (max 1 (nints * nmach)) false in
  let job_edges = ref [] in
  for ji = 0 to njobs - 1 do
    let dl = fn.frelease.(ji) +. (f *. fn.fsize.(ji)) in
    for t = 0 to nints - 1 do
      if points.(t) >= fn.fwstart.(ji) -. 1e-12 && points.(t + 1) <= dl +. 1e-12 then
        List.iter
          (fun mi ->
            cell_used.((t * nmach) + mi) <- true;
            let e =
              FFlow.add_edge g ~src:(job_node ji) ~dst:(cell_node ~njobs ~nmach t mi)
                ~cap:fn.frem.(ji)
            in
            job_edges := (ji, t, mi, e) :: !job_edges)
          fn.fmach.(ji)
    done
  done;
  for t = 0 to nints - 1 do
    let len = points.(t + 1) -. points.(t) in
    for mi = 0 to nmach - 1 do
      if cell_used.((t * nmach) + mi) then
        ignore
          (FFlow.add_edge g ~src:(cell_node ~njobs ~nmach t mi) ~dst:sink
             ~cap:(len *. fn.fspeed.(mi)))
    done
  done;
  (g, points, !job_edges, src_edges)

(* Feasibility must hold per job, not just in aggregate: with a tolerance
   relative to the total work, the entire (microscopic) remaining work of
   a nearly-finished job could be "forgiven", its deadline would stop
   pushing the objective, and the job would starve until the plan drains. *)
let ffeasible fn ~f =
  Obs.Counter.incr float_probe_count;
  let ok =
    if Array.length fn.frem = 0 then true
    else begin
      let g, _, _, src_edges = fbuild fn ~f in
      ignore (FFlow.max_flow g ~source ~sink);
      Array.for_all
        (fun ji ->
          FFlow.flow_on g src_edges.(ji) >= fn.frem.(ji) *. (1.0 -. 1e-9))
        (Array.init (Array.length fn.frem) Fun.id)
    end
  in
  if Obs.Journal.on () then
    Obs.Journal.record
      (Obs.Journal.Probe { pipeline = "float"; stretch = f; feasible = ok });
  ok

let fmilestones fn =
  let njobs = Array.length fn.frem in
  let cands = ref [] in
  let constants = fn.fnow :: Array.to_list fn.fwstart in
  for ji = 0 to njobs - 1 do
    List.iter
      (fun c ->
        let f = (c -. fn.frelease.(ji)) /. fn.fsize.(ji) in
        if f > 0.0 then cands := f :: !cands)
      constants
  done;
  for a = 0 to njobs - 1 do
    for b = a + 1 to njobs - 1 do
      if fn.fsize.(a) <> fn.fsize.(b) then begin
        let f = (fn.frelease.(b) -. fn.frelease.(a)) /. (fn.fsize.(a) -. fn.fsize.(b)) in
        if f > 0.0 then cands := f :: !cands
      end
    done
  done;
  List.sort_uniq Float.compare !cands

let optimal_float ?(floor = 0.0) ~tick fn =
  if Array.length fn.frem = 0 then floor
  else begin
    let f_base =
      Array.to_list fn.frelease
      |> List.mapi (fun ji r -> (fn.fnow -. r) /. fn.fsize.(ji))
      |> List.fold_left Float.max floor
    in
    tick ();
    if ffeasible fn ~f:f_base then f_base
    else begin
      let ms = Array.of_list (List.filter (fun m -> m > f_base) (fmilestones fn)) in
      let len = Array.length ms in
      let lo = ref 0 and hi = ref len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        tick ();
        if ffeasible fn ~f:ms.(mid) then hi := mid else lo := mid + 1
      done;
      let f_lo = ref (if !lo = 0 then f_base else ms.(!lo - 1)) in
      let f_hi =
        ref
          (if !lo < len then ms.(!lo)
           else begin
             (* No feasible milestone: grow geometrically until feasible.
                The tick also bounds this loop, which could otherwise spin
                forever on a degenerate problem. *)
             let h = ref (Float.max 1e-9 (2.0 *. Float.max f_base 1e-9)) in
             while (tick (); not (ffeasible fn ~f:!h)) do h := !h *. 2.0 done;
             !h
           end)
      in
      (* Bisection to relative 1e-12. *)
      for _ = 1 to 60 do
        let mid = 0.5 *. (!f_lo +. !f_hi) in
        if mid > !f_lo && mid < !f_hi then begin
          tick ();
          if ffeasible fn ~f:mid then f_hi := mid else f_lo := mid
        end
      done;
      !f_hi
    end
  end

let optimal_max_stretch_float ?(budget = default_budget) ?floor p =
  Obs.Span.with_ "solver.float" (fun () ->
      let n = normalize p in
      optimal_float ?floor ~tick:(make_ticker budget "float") (fnormalize n))

let solve_float ?(budget = default_budget) ?(floor = 0.0) ?(refine = false) p =
  Obs.Span.with_ "solver.float" @@ fun () ->
  let n = normalize p in
  let fn = fnormalize n in
  let njobs = Array.length fn.frem in
  if njobs = 0 then
    { s_star = Q.of_float floor; intervals = [||]; work = [] }
  else begin
    let s_star = optimal_float ~floor ~tick:(make_ticker budget "float") fn in
    let nmach = Array.length fn.fspeed in
    let work =
      if not refine then begin
        let g, points, job_edges, _src_edges = fbuild fn ~f:s_star in
        ignore (FFlow.max_flow g ~source ~sink);
        ignore points;
        List.filter_map
          (fun (ji, t, mi, e) ->
            let w = FFlow.flow_on g e in
            if w > 1e-12 then
              Some (fn.fjid.(ji), t, fn.fmid.(mi), Q.of_float w)
            else None)
          job_edges
      end
      else begin
        (* System (2), quantized: capacities on a 2^36 grid relative to
           the total demand, costs on a 2^20 grid relative to the largest
           cost.  Quantization error is ~1e-11 of each job's work and is
           absorbed by the snap-to-demand step below. *)
        let points = fpoints fn ~f:s_star in
        let nints = max 0 (Array.length points - 1) in
        let cap_unit = fn.ftotal /. 68719476736.0 (* 2^36 *) in
        let zcap c = int_of_float (c /. cap_unit) in
        let max_cost =
          let m = ref 1e-300 in
          for ji = 0 to njobs - 1 do
            if nints > 0 then begin
              let c = points.(nints) /. fn.fsize.(ji) in
              if c > !m then m := c
            end
          done;
          !m
        in
        let cost_unit = max_cost /. 1048576.0 (* 2^20 *) in
        let zcost c = int_of_float (c /. cost_unit) in
        let g = IMcmf.create ~n:(2 + njobs + (nints * nmach)) in
        for ji = 0 to njobs - 1 do
          ignore
            (IMcmf.add_edge g ~src:source ~dst:(job_node ji)
               ~cap:(zcap fn.frem.(ji)) ~cost:0)
        done;
        let cell_used = Array.make (max 1 (nints * nmach)) false in
        let job_edges = ref [] in
        for ji = 0 to njobs - 1 do
          let dl = fn.frelease.(ji) +. (s_star *. fn.fsize.(ji)) in
          for t = 0 to nints - 1 do
            if points.(t) >= fn.fwstart.(ji) -. 1e-12 && points.(t + 1) <= dl +. 1e-12
            then begin
              let mid_t = 0.5 *. (points.(t) +. points.(t + 1)) in
              let cost = mid_t /. fn.fsize.(ji) in
              List.iter
                (fun mi ->
                  cell_used.((t * nmach) + mi) <- true;
                  let e =
                    IMcmf.add_edge g ~src:(job_node ji)
                      ~dst:(cell_node ~njobs ~nmach t mi)
                      ~cap:(zcap fn.frem.(ji)) ~cost:(zcost cost)
                  in
                  job_edges := (ji, t, mi, e) :: !job_edges)
                fn.fmach.(ji)
            end
          done
        done;
        for t = 0 to nints - 1 do
          let len = points.(t + 1) -. points.(t) in
          for mi = 0 to nmach - 1 do
            if cell_used.((t * nmach) + mi) then
              ignore
                (IMcmf.add_edge g ~src:(cell_node ~njobs ~nmach t mi) ~dst:sink
                   ~cap:(zcap (len *. fn.fspeed.(mi))) ~cost:0)
          done
        done;
        ignore (IMcmf.min_cost_max_flow g ~source ~sink);
        List.filter_map
          (fun (ji, t, mi, e) ->
            let w = float_of_int (IMcmf.flow_on g e) *. cap_unit in
            if w > 1e-12 then
              Some (fn.fjid.(ji), t, fn.fmid.(mi), Q.of_float w)
            else None)
          !job_edges
      end
    in
    (* Float flows can fall short of the demand by rounding residue; snap
       each job's chunks so they sum to exactly its remaining work (the
       ~1e-9 relative capacity overrun is absorbed downstream). *)
    let work =
      let jid_to_rem = Hashtbl.create 16 in
      Array.iteri (fun ji rem -> Hashtbl.replace jid_to_rem fn.fjid.(ji) rem) fn.frem;
      let delivered = Hashtbl.create 16 in
      List.iter
        (fun (jid, _, _, w) ->
          Hashtbl.replace delivered jid
            (Q.add w (Option.value ~default:Q.zero (Hashtbl.find_opt delivered jid))))
        work;
      List.map
        (fun (jid, t, mid, w) ->
          let rem = Q.of_float (Hashtbl.find jid_to_rem jid) in
          let got = Hashtbl.find delivered jid in
          if Q.sign got > 0 && not (Q.equal got rem) then
            (jid, t, mid, Q.div (Q.mul w rem) got)
          else (jid, t, mid, w))
        work
    in
    let points = fpoints fn ~f:s_star in
    let intervals =
      Array.init
        (max 0 (Array.length points - 1))
        (fun t -> { lo = Q.of_float points.(t); hi = Q.of_float points.(t + 1) })
    in
    { s_star = Q.of_float s_star; intervals; work }
  end
