(** Exact optimal max-stretch for divisible loads with restricted
    availability (paper §4.3.1).

    Bounding the max (weighted) stretch by [F] is equivalent to giving
    every pending job the deadline [d̄_j(F) = r_j + F·W_j] and asking for a
    feasible preemptive divisible schedule.  Between two {e milestones} —
    values of [F] where the relative order of release dates and deadlines
    changes — the interval structure is fixed and feasibility is System
    (1) of the paper.  System (1) only couples the [α] variables through
    per-(machine × interval) capacities and per-job demands, so it is a
    transportation problem; we decide it by max-flow instead of a generic
    LP (the LP route is kept in tests as a cross-check).

    The optimum is found exactly, in rational arithmetic, by a binary
    search over milestones followed by Newton/Dinkelbach iterations on the
    parametric min-cut inside the final milestone interval.  This removes
    the floating-point anomaly the paper reports in §5.3 (their off-line
    "optimal" was occasionally beaten because the milestone search missed
    intervals separated by tiny [F] variations). *)

module Q = Gripps_numeric.Rat

type job_spec = {
  jid : int;          (** caller's identifier, echoed back *)
  release : Q.t;      (** original release date [r_j] *)
  size : Q.t;         (** original size [W_j] — the stretch weight is [1/W_j] *)
  remaining : Q.t;    (** work still to process (0 allowed; such jobs are dropped) *)
  machines : int list;(** machines able to process the job *)
}
(** The solver only ever uses [size] as the deadline slope
    [d̄_j(F) = release + F × size], i.e. as the inverse weight [1/w_j] of
    the max {e weighted flow} objective (§4.3.1 treats that general case).
    To optimize arbitrary weights rather than stretch, set
    [size = 1/w_j] while keeping [remaining] in work units. *)

type machine_spec = { mid : int; speed : Q.t }

type problem = {
  now : Q.t;          (** date from which the remaining work may be scheduled *)
  jobs : job_spec list;
  machines : machine_spec list;
}

(** A concrete interval of the optimal solution, with the work assignment
    found by the flow computation. *)
type interval = { lo : Q.t; hi : Q.t }

type assignment = {
  s_star : Q.t;  (** the optimal max-stretch objective *)
  intervals : interval array;  (** chronological, covering [now, last deadline] *)
  work : (int * int * int * Q.t) list;
      (** [(jid, interval index, machine id, work)] with positive work *)
}

(** {1 Guardrail budgets}

    Both pipelines iterate (milestone feasibility probes, Newton steps,
    bisection).  A budget caps the iteration count and the wall time so a
    pathological instance degrades service instead of hanging the run:
    callers catch {!Budget_exhausted} and fall back to a cheaper pipeline
    (exact → float → greedy list scheduling). *)

type budget = {
  max_iters : int;      (** max feasibility probes / Newton steps *)
  max_seconds : float;  (** wall-clock cap; [infinity] disables it *)
}

val default_budget : budget
(** [{ max_iters = 100_000; max_seconds = infinity }] — generous enough
    that well-posed instances never hit it. *)

exception Budget_exhausted of { stage : string; iters : int; elapsed : float }
(** Raised by the solving entry points when their [?budget] is blown.
    [stage] is ["exact"] or ["float"]. *)

val optimal_max_stretch : ?budget:budget -> ?floor:Q.t -> problem -> Q.t
(** Smallest [F >= floor] (default floor 0) such that every pending job
    can meet [d̄_j(F)].  @raise Invalid_argument on malformed problems
    (negative remaining work, job with no machine, non-positive size or
    speed, release after [now] is allowed — the job is simply not
    schedulable before its release).
    @raise Budget_exhausted when the budget is blown. *)

val solve : ?budget:budget -> ?floor:Q.t -> ?refine:bool -> problem -> assignment
(** Like {!optimal_max_stretch} but also returns a witness schedule
    skeleton.  With [refine = true] (default [false]) the witness is the
    System (2) optimum: among all schedules achieving [s_star], it
    minimizes the paper's relaxed sum-stretch surrogate
    Σ_j Σ_t (fraction of j in t) × midpoint(t) — computed by min-cost
    max-flow. *)

val feasible : problem -> stretch:Q.t -> bool
(** Decide System (1) directly for a given objective value. *)

(** {1 Floating-point pipeline}

    The paper's own implementation solved the on-line Systems (1)/(2) with
    a floating-point LP solver; exactness only matters for the clairvoyant
    off-line optimum (where the paper reports a precision anomaly, fixed
    by the rational path above).  The [_float] variants run the same
    algorithms in doubles — milestones, bracketing by bisection, flow
    solvers — and are 1–2 orders of magnitude faster; the on-line
    schedulers use them. *)

val optimal_max_stretch_float : ?budget:budget -> ?floor:float -> problem -> float
(** Approximate optimum (feasible side of a 1e-12-wide bisection
    bracket). *)

val solve_float : ?budget:budget -> ?floor:float -> ?refine:bool -> problem -> assignment
(** Like {!solve} but computed in doubles; the returned rationals are
    exact images of the float computation.  Tiny (≤1e-9 relative)
    shortfalls of work may remain in the witness; the simulator's plan
    player mops them up. *)

(** {1 Instrumentation}

    Global counters over every solver run (both pipelines) since the last
    {!reset_stats}.  The perf harness ([gripps_cli perf]) and the §5.3
    overhead study read them to attribute wall time to feasibility probes
    vs. flow-network work. *)

type stats = {
  exact_probes : int;      (** exact feasibility probes (Newton evaluations) *)
  float_probes : int;      (** float-pipeline feasibility probes *)
  graph_builds : int;      (** cold flow-network constructions *)
  warm_updates : int;      (** warm capacity re-installations *)
  augmenting_paths : int;  (** augmenting paths pushed by the exact networks *)
  rat_fast_hits : int;     (** {!Q} ops served by the native fast path *)
  rat_fast_falls : int;    (** {!Q} ops that fell back to Bigint *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

val warm_enabled : bool ref
(** Debug/bench knob, default [true].  When [false], every exact probe
    rebuilds its flow network from scratch (the pre-warm-start pipeline);
    the perf harness flips it to verify that warm and cold paths return
    identical results. *)
