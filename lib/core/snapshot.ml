open Gripps_model
open Gripps_engine
module Q = Gripps_numeric.Rat

type t = {
  problem : Stretch_solver.problem;
  members : int -> int list;
  vspeed : int -> Q.t;
}

(* Group machines by identical databank-hosting vectors.  The virtual
   machine inherits the smallest member id (stable, deterministic).
   [include_] filters the machines considered at all — the on-line path
   uses it to exclude machines that are currently down. *)
let aggregate ?(include_ = fun (_ : Machine.t) -> true) platform =
  let groups = Hashtbl.create 16 in
  Array.iter
    (fun (m : Machine.t) ->
      if include_ m then begin
        let key = Array.to_list m.databanks in
        let speed, ids =
          Option.value ~default:(0.0, []) (Hashtbl.find_opt groups key)
        in
        Hashtbl.replace groups key (speed +. m.speed, m.id :: ids)
      end)
    (Platform.machines platform);
  let specs = ref [] and members_tbl = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _key (speed, ids) ->
      let vid = List.fold_left min (List.hd ids) ids in
      Hashtbl.replace members_tbl vid (List.sort Int.compare ids);
      specs := { Stretch_solver.mid = vid; speed = Q.of_float speed } :: !specs)
    groups;
  let specs =
    List.sort (fun a b -> Int.compare a.Stretch_solver.mid b.Stretch_solver.mid) !specs
  in
  (* Per-databank virtual host lists. *)
  let vhosts d =
    List.filter_map
      (fun (s : Stretch_solver.machine_spec) ->
        let members = Hashtbl.find members_tbl s.mid in
        if Machine.hosts (Platform.machine platform (List.hd members)) d then
          Some s.mid
        else None)
      specs
  in
  (specs, members_tbl, vhosts)

let job_spec vhosts (j : Job.t) ~remaining =
  { Stretch_solver.jid = j.id;
    release = Q.of_float j.release;
    size = Q.of_float j.size;
    remaining;
    machines = vhosts j.databank }

let make_snapshot ?include_ platform ~now ~jobs =
  let specs, members_tbl, vhosts = aggregate ?include_ platform in
  let speed_tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Stretch_solver.machine_spec) -> Hashtbl.replace speed_tbl s.mid s.speed)
    specs;
  (* A job whose every capable machine is excluded (all down) cannot be
     planned now; it is dropped from the problem and waits for a
     Recovery-triggered replan. *)
  let jobs =
    List.filter_map
      (fun (j, rem) ->
        let spec = job_spec vhosts j ~remaining:rem in
        if spec.Stretch_solver.machines = [] then None else Some spec)
      jobs
  in
  { problem = { Stretch_solver.now; jobs; machines = specs };
    members = (fun vid -> Hashtbl.find members_tbl vid);
    vspeed = (fun vid -> Hashtbl.find speed_tbl vid) }

let of_state st =
  let inst = Sim.instance st in
  let platform = Instance.platform inst in
  let jobs =
    Sim.active_jobs st
    |> List.map (fun jid ->
           (Instance.job inst jid, Q.of_float (Sim.remaining st jid)))
  in
  make_snapshot platform ~now:(Q.of_float (Sim.now st)) ~jobs
    ~include_:(fun (m : Machine.t) -> Sim.machine_up st m.Machine.id)

let stretch_floor st =
  let inst = Sim.instance st in
  let floor = ref Q.zero in
  for jid = 0 to Instance.num_jobs inst - 1 do
    match Sim.completion_time st jid with
    | None -> ()
    | Some c ->
      let j = Instance.job inst jid in
      let s =
        Q.div
          (Q.sub (Q.of_float c) (Q.of_float j.Job.release))
          (Q.of_float j.Job.size)
      in
      if Q.gt s !floor then floor := s
  done;
  !floor

let of_instance ?(subset = fun _ -> true) inst =
  let platform = Instance.platform inst in
  let jobs =
    Array.to_list (Instance.jobs inst)
    |> List.filter (fun (j : Job.t) -> subset j.id)
    |> List.map (fun (j : Job.t) -> (j, Q.of_float j.size))
  in
  make_snapshot platform ~now:Q.zero ~jobs

let expand_commitments t per_virtual =
  List.concat_map
    (fun (vid, comms) -> List.map (fun real -> (real, comms)) (t.members vid))
    per_virtual

let sizes_fn inst jid = Q.of_float (Instance.job inst jid).Job.size
