module Q = Gripps_numeric.Rat
module Heap = Gripps_collections.Heap

type job = { release : Q.t; deadline : Q.t; work : Q.t }

(* Active job: deadline with an insertion sequence number as tiebreak, so
   the heap pops equal deadlines in the order the old sorted-list insert
   kept them (new arrivals after existing ones). *)
type active = { deadline : Q.t; seq : int; mutable rem : Q.t }

let feasible jobs =
  List.iter
    (fun j -> if Q.sign j.work < 0 then invalid_arg "Edf.feasible: negative work")
    jobs;
  let upcoming =
    ref
      (List.sort
         (fun a b -> Q.compare a.release b.release)
         (List.filter (fun j -> Q.sign j.work > 0) jobs))
  in
  (* Earliest deadline on top: O(log n) per release/completion instead of
     the former O(n) sorted insert. *)
  let cmp a b =
    let c = Q.compare a.deadline b.deadline in
    if c <> 0 then c else compare a.seq b.seq
  in
  let active = Heap.create ~cmp in
  let seq = ref 0 in
  let insert deadline work =
    incr seq;
    Heap.push active { deadline; seq = !seq; rem = work }
  in
  let rec run t =
    (* Release everything due: a prefix of the release-sorted list. *)
    let rec pop_due () =
      match !upcoming with
      | j :: rest when Q.le j.release t ->
        upcoming := rest;
        insert j.deadline j.work;
        pop_due ()
      | _ :: _ | [] -> ()
    in
    pop_due ();
    match Heap.peek active with
    | None ->
      (match !upcoming with
       | [] -> true
       | j :: _ -> run j.release)
    | Some top ->
      let next_release =
        match !upcoming with [] -> None | j :: _ -> Some j.release
      in
      let finish = Q.add t top.rem in
      let run_until =
        match next_release with
        | Some r when Q.lt r finish -> r
        | Some _ | None -> finish
      in
      if Q.gt run_until top.deadline then false
      else begin
        if Q.equal run_until finish then ignore (Heap.pop_exn active)
        else top.rem <- Q.sub top.rem (Q.sub run_until t);
        run run_until
      end
  in
  match !upcoming with [] -> true | j :: _ -> run j.release
