open Gripps_engine
open Gripps_sched

type t = { mutable comms : (int * Realize.commitment list) list }

let create () = { comms = [] }

let set_plan t plan = t.comms <- plan

let time_eps = 1e-9

let swrpt_fallback st =
  let order =
    Sim.active_jobs st
    |> List.map (fun j -> (Priority.key_with_tiebreak Priority.swrpt st j, j))
    |> List.sort compare
    |> List.map snd
  in
  List_sched.allocate st ~priority_order:order

let step t st =
  let now = Sim.now st in
  (* Garbage-collect elapsed commitments. *)
  t.comms <-
    List.map
      (fun (m, cs) ->
        (m, List.filter (fun (c : Realize.commitment) -> c.stop > now +. time_eps) cs))
      t.comms;
  let allocation = ref [] and next_edge = ref infinity in
  List.iter
    (fun (m, cs) ->
      List.iter
        (fun (c : Realize.commitment) ->
          if c.start_ <= now +. time_eps then begin
            (* Down machines keep their commitments (work resumes if they
               recover mid-window) but must not appear in the allocation. *)
            if (not (Sim.is_completed st c.job)) && Sim.machine_up st m then
              allocation := (m, [ (c.job, 1.0) ]) :: !allocation;
            if c.stop < !next_edge then next_edge := c.stop
          end
          else if c.start_ < !next_edge then next_edge := c.start_)
        cs)
    t.comms;
  if !allocation = [] && !next_edge = infinity && Sim.active_jobs st <> [] then
    (* Plan exhausted with residual work: mop up. *)
    { Sim.allocation = swrpt_fallback st; horizon = None }
  else begin
    let horizon =
      if !next_edge = infinity || !next_edge <= now +. time_eps then None
      else Some !next_edge
    in
    { Sim.allocation = !allocation; horizon }
  end
