(** The paper's on-line max-stretch heuristics (§4.3.2).

    Every time a job arrives:

    + preempt everything;
    + compute the best achievable max-stretch [S*] given the work already
      performed (exact rational solve of System (1), with the stretches of
      already-completed jobs as a floor);
    + solve System (2) — minimize the relaxed sum-stretch surrogate under
      the [S*]-deadlines (min-cost flow);
    + realize the assignment with one of three policies:
      {ul
      {- [Online]: per machine and interval, terminal jobs first under
         SWRPT;}
      {- [Online-EDF]: per machine, chunks ordered by the interval in
         which each job's total work completes;}
      {- [Online-EGDF]: a single global priority list (by completion
         interval) executed with the greedy distribution rule of §3.2.}}

    [online_non_optimized] stops after step 2 and realizes the raw
    feasibility witness instead of the System (2) optimum — the baseline
    of the Figure 3 comparison.

    {b Fault tolerance.}  All heuristics replan on machine failures and
    recoveries as well as on arrivals.  When every machine is down they
    idle until the next recovery; when the solver blows its iteration/time
    budget they degrade to greedy SWRPT list scheduling for the rest of
    the inter-event period (service degrades, the run completes). *)

open Gripps_engine

val online : Sim.scheduler
val online_edf : Sim.scheduler
val online_egdf : Sim.scheduler
val online_non_optimized : Sim.scheduler

val online_budgeted : Stretch_solver.budget -> Sim.scheduler
(** [Online] with an explicit solver budget instead of
    {!Stretch_solver.default_budget}; exercises the degradation path
    (with [max_iters = 0] it behaves exactly like SWRPT). *)
