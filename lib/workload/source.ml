module Splitmix = Gripps_rng.Splitmix
module Dist = Gripps_rng.Dist

type item = { release : float; size : float; databank : int }

type t = {
  mutable cursor : int;        (* items consumed *)
  mutable clock : float;       (* release of the last consumed item *)
  mutable lookahead : item option;
  pull : t -> item option;     (* produce the next item after the lookahead *)
  mutable chan : in_channel option;
  mutable line_no : int;       (* line-protocol bookkeeping *)
  name : string;
}

let cursor s = s.cursor
let clock s = s.clock

let close s =
  match s.chan with
  | Some ic ->
    s.chan <- None;
    close_in_noerr ic
  | None -> ()

let peek s =
  match s.lookahead with
  | Some _ as it -> it
  | None ->
    let it = s.pull s in
    s.lookahead <- it;
    it

let next s =
  match peek s with
  | None -> None
  | Some it as r ->
    s.lookahead <- None;
    s.cursor <- s.cursor + 1;
    s.clock <- it.release;
    r

let skip_items n s =
  for _ = 1 to n do
    match next s with
    | Some _ -> ()
    | None ->
      failwith
        (Printf.sprintf "%s: resume skip overruns the stream (cursor %d)"
           s.name n)
  done

(* ---- line protocol ----------------------------------------------------- *)

let parse_line line =
  let body =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) body)
    |> List.filter (fun f -> f <> "")
  with
  | [] -> Ok None
  | [ r; w; d ] ->
    (match (float_of_string_opt r, float_of_string_opt w, int_of_string_opt d) with
     | Some release, Some size, Some databank ->
       if Float.is_nan release || release < 0.0 then
         Error "negative or NaN release date"
       else if Float.is_nan size || size <= 0.0 then
         Error "non-positive or NaN size"
       else if databank < 0 then Error "negative databank index"
       else Ok (Some { release; size; databank })
     | None, _, _ -> Error "unparsable release date"
     | _, None, _ -> Error "unparsable size"
     | _, _, None -> Error "unparsable databank index")
  | fields ->
    Error
      (Printf.sprintf "expected 3 fields <release> <size> <databank>, got %d"
         (List.length fields))

let pull_lines s =
  match s.chan with
  | None -> None
  | Some ic ->
    let rec go () =
      match input_line ic with
      | exception End_of_file ->
        close s;
        None
      | line ->
        s.line_no <- s.line_no + 1;
        (match parse_line line with
         | Ok None -> go ()
         | Ok (Some it) ->
           (* [pull] only runs with an empty lookahead, so [clock] is the
              release frontier of everything produced so far. *)
           if it.release < s.clock then
             failwith
               (Printf.sprintf
                  "%s: line %d: release date %g before previous %g (the \
                   protocol streams in non-decreasing release order)"
                  s.name s.line_no it.release s.clock);
           Some it
         | Error reason ->
           failwith (Printf.sprintf "%s: line %d: %s" s.name s.line_no reason))
    in
    go ()

let of_channel ?(skip = 0) ~name ic =
  let s =
    { cursor = 0; clock = 0.0; lookahead = None; pull = pull_lines;
      chan = Some ic; line_no = 0; name }
  in
  skip_items skip s;
  s.cursor <- skip;  (* the skipped prefix is the restored cursor *)
  s

let of_file ?skip path = of_channel ?skip ~name:path (open_in path)

let of_list ?(skip = 0) items =
  let rec check = function
    | a :: (b :: _ as rest) ->
      if b.release < a.release then
        invalid_arg "Source.of_list: decreasing release dates";
      check rest
    | [ _ ] | [] -> ()
  in
  check items;
  let remaining = ref items in
  let pull _ =
    match !remaining with
    | [] -> None
    | it :: rest ->
      remaining := rest;
      Some it
  in
  let s =
    { cursor = 0; clock = 0.0; lookahead = None; pull; chan = None;
      line_no = 0; name = "<list>" }
  in
  skip_items skip s;
  s.cursor <- skip;
  s

(* ---- open-loop Poisson driver ------------------------------------------ *)

(* Item [k] draws its gap, size and databank from derived stream [k]; the
   release date is the running sum of gaps, carried in [clock] — which is
   why [(cursor, clock)] is a complete resume point. *)
let poisson ~seed ~rate ~sizes ~jobs ?(cursor = 0) ?(clock = 0.0) () =
  if rate <= 0.0 then invalid_arg "Source.poisson: rate must be positive";
  if jobs <= 0 then invalid_arg "Source.poisson: jobs must be positive";
  if Array.length sizes = 0 then invalid_arg "Source.poisson: empty size table";
  if cursor < 0 || cursor > jobs then invalid_arg "Source.poisson: bad cursor";
  let base = Splitmix.create seed in
  (* [pull] only runs with an empty lookahead, so every earlier item has
     been consumed: the next index is exactly [cursor] and [clock] is the
     previous release. *)
  let pull s =
    if s.cursor >= jobs then None
    else begin
      let rng = Splitmix.stream base s.cursor in
      let gap = Dist.exponential rng ~rate in
      let db = Splitmix.int rng (Array.length sizes) in
      Some { release = s.clock +. gap; size = sizes.(db); databank = db }
    end
  in
  { cursor; clock; lookahead = None; pull; chan = None; line_no = 0;
    name = "<poisson>" }
