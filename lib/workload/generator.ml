open Gripps_model
module Splitmix = Gripps_rng.Splitmix
module Dist = Gripps_rng.Dist

type realized = { platform : Platform.t; db_sizes : float array }

let platform rng (c : Config.t) =
  let db_sizes =
    let lo, hi = c.db_size_range in
    Array.init c.databases (fun _ -> Dist.uniform rng ~lo ~hi)
  in
  let replicas =
    Array.init c.databases (fun _ ->
        Array.init c.sites (fun _ -> Dist.bernoulli rng ~p:c.availability))
  in
  (* A databank hosted nowhere could never be served: force one replica. *)
  Array.iter
    (fun row ->
      if not (Array.exists Fun.id row) then row.(Splitmix.int rng c.sites) <- true)
    replicas;
  let machines =
    List.init c.sites (fun site ->
        let per_cpu = Dist.pick rng c.reference_speeds in
        let speed = per_cpu *. float_of_int c.processors_per_site in
        let databanks = Array.init c.databases (fun d -> replicas.(d).(site)) in
        Machine.make ~id:site ~speed ~databanks)
  in
  { platform = Platform.make ~machines ~num_databanks:c.databases; db_sizes }

let jobs rng (c : Config.t) r =
  let total_speed = Platform.total_speed r.platform in
  let per_db_work = c.density *. total_speed *. c.horizon /. float_of_int c.databases in
  let all =
    List.concat
      (List.init c.databases (fun d ->
           let size = r.db_sizes.(d) in
           let rate = per_db_work /. (size *. c.horizon) in
           Dist.poisson_process rng ~rate ~horizon:c.horizon
           |> List.map (fun release ->
                  Job.make ~id:0 ~release ~size ~databank:d)))
  in
  let tagged =
    (* Tag after the Poisson draws so a single-user configuration (the
       default, and every historical one) consumes exactly the same RNG
       stream as before the users axis existed — bit-identity preserved. *)
    if c.users <= 1 then all
    else List.map (fun j -> Job.with_user j (Splitmix.int rng c.users)) all
  in
  List.sort Job.compare_by_release tagged
  |> List.mapi (fun i (j : Job.t) -> { j with id = i })

let rec instance rng c =
  let r = platform rng c in
  match jobs rng c r with
  | [] -> instance rng c
  | js -> Instance.make ~platform:r.platform ~jobs:js

let fault_trace rng (c : Config.t) ~machines =
  match c.faults with
  | None -> []
  | Some f ->
    Gripps_engine.Fault.poisson rng ~mtbf:f.Config.mtbf ~mttr:f.Config.mttr
      ~machines ~until:c.horizon
