type fault_axis = {
  mtbf : float;
  mttr : float;
  loss : Gripps_engine.Fault.loss;
}

type t = {
  sites : int;
  processors_per_site : int;
  databases : int;
  availability : float;
  density : float;
  horizon : float;
  db_size_range : float * float;
  reference_speeds : float array;
  faults : fault_axis option;
  users : int;
}

(* Six per-processor reference speeds (MB/s), mimicking the spread of the
   six GriPPS benchmark platforms of [11]. *)
let gripps_reference_speeds = [| 0.6; 0.9; 1.2; 1.5; 1.9; 2.4 |]

let fault_axis ?(loss = Gripps_engine.Fault.Crash) ~mtbf ~mttr () =
  if not (mtbf > 0.0) then invalid_arg "Config.fault_axis: non-positive mtbf";
  if not (mttr > 0.0) then invalid_arg "Config.fault_axis: non-positive mttr";
  { mtbf; mttr; loss }

let make ?(processors_per_site = 10) ?(horizon = 900.0)
    ?(db_size_range = (10.0, 1000.0)) ?(reference_speeds = gripps_reference_speeds)
    ?faults ?(users = 1) ~sites ~databases ~availability ~density () =
  if sites <= 0 then invalid_arg "Config.make: non-positive sites";
  if processors_per_site <= 0 then
    invalid_arg "Config.make: non-positive processors_per_site";
  if databases <= 0 then invalid_arg "Config.make: non-positive databases";
  if availability <= 0.0 || availability > 1.0 then
    invalid_arg "Config.make: availability outside (0, 1]";
  if density <= 0.0 then invalid_arg "Config.make: non-positive density";
  if horizon <= 0.0 then invalid_arg "Config.make: non-positive horizon";
  let lo, hi = db_size_range in
  if lo <= 0.0 || hi < lo then invalid_arg "Config.make: degenerate size range";
  if Array.length reference_speeds = 0 then
    invalid_arg "Config.make: no reference speeds";
  if users <= 0 then invalid_arg "Config.make: non-positive users";
  { sites; processors_per_site; databases; availability; density; horizon;
    db_size_range; reference_speeds; faults; users }

let with_faults c faults = { c with faults = Some faults }

let default =
  make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0 ()

let paper_grid ?(scale_window = true) ~horizon () =
  List.concat_map
    (fun sites ->
      (* The paper kept a 15-minute window for every platform size, so job
         counts grew with the aggregate speed; at reproduction scale we
         instead keep the *expected job count* comparable by shrinking the
         window on larger platforms (3x baseline at 3 sites).  Stretch
         ratios are scale-free, and the platform-size effects of Tables
         2-4 come from the machine count, which is preserved. *)
      let horizon =
        if scale_window then horizon *. 3.0 /. float_of_int sites else horizon
      in
      List.concat_map
        (fun databases ->
          List.concat_map
            (fun availability ->
              List.map
                (fun density ->
                  make ~horizon ~sites ~databases ~availability ~density ())
                [ 0.75; 1.0; 1.25; 1.5; 2.0; 3.0 ])
            [ 0.3; 0.6; 0.9 ])
        [ 3; 10; 20 ])
    [ 3; 10; 20 ]

let describe c =
  let base =
    Printf.sprintf "%d sites x %d cpus, %d dbs, avail %.0f%%, density %.2f"
      c.sites c.processors_per_site c.databases (100.0 *. c.availability) c.density
  in
  let base = if c.users > 1 then Printf.sprintf "%s, %d users" base c.users else base in
  match c.faults with
  | None -> base
  | Some f ->
    Printf.sprintf "%s, faults mtbf %.0fs mttr %.0fs (%s)" base f.mtbf f.mttr
      (match f.loss with Gripps_engine.Fault.Crash -> "crash" | Pause -> "pause")
