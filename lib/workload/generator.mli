(** Random realization of platforms and workloads from a configuration
    (paper §5.1, "concrete simulation instances").

    Deterministic given the RNG stream; every experiment seeds its own
    {!Gripps_rng.Splitmix} so tables regenerate identically. *)

open Gripps_model

type realized = {
  platform : Platform.t;     (** one machine per cluster (aggregate speed) *)
  db_sizes : float array;    (** databank sizes, MB *)
}

val platform : Gripps_rng.Splitmix.t -> Config.t -> realized
(** Draw cluster speeds from the reference values, databank sizes from the
    configured range, and replicate each databank at each site with the
    configured probability (forcing at least one replica per databank). *)

val jobs : Gripps_rng.Splitmix.t -> Config.t -> realized -> Job.t list
(** Per-databank Poisson processes over the arrival window, with rates set
    so the expected total work matches the workload density; the merged
    flow is sorted by release date.  Every job's size is its databank's
    size (a motif scans the whole databank). *)

val instance : Gripps_rng.Splitmix.t -> Config.t -> Instance.t
(** [platform] + [jobs], retrying (with the same stream) in the unlikely
    event that a draw produces no job at all. *)

val fault_trace :
  Gripps_rng.Splitmix.t -> Config.t -> machines:int -> Gripps_engine.Fault.trace
(** The fault trace for the configuration's {!Config.fault_axis}, drawn on
    the arrival window (empty when [faults = None]).  Deterministic given
    the stream, like everything else here. *)
