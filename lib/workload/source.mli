(** Streaming job sources for the long-running scheduler daemon.

    A source is a pull stream of requests in non-decreasing release
    order, with one-item lookahead ({!peek}) so an event-driven consumer
    can learn the next arrival date without committing to it, and an
    explicit {b cursor} (items consumed so far) so a checkpointed daemon
    can reconstruct the exact same stream position after a crash.

    Two constructors:
    - {!of_file}/{!of_channel}: the line protocol — one request per line,
      [<release> <size> <databank>] (seconds, MB, 0-based index), with
      [#] comments and blank lines ignored.  Malformed lines raise
      [Failure] naming the line number; releases must be non-decreasing.
    - {!poisson}: the synthetic open-loop driver.  Item [k] is drawn from
      {!Gripps_rng.Splitmix.stream}[ base k] — a pure function of the
      seed and the index — so the stream can be re-entered at any cursor
      given only [(seed, cursor, clock)]: exactly what a checkpoint
      stores. *)

type item = { release : float; size : float; databank : int }

type t

val peek : t -> item option
(** The next item without consuming it ([None] = exhausted). *)

val next : t -> item option
(** Consume and return the next item. *)

val cursor : t -> int
(** Items consumed so far (lookahead by {!peek} does not count). *)

val clock : t -> float
(** Release date of the last {e consumed} item (0 before the first) —
    together with {!cursor} this is the source's whole restorable
    state. *)

val close : t -> unit
(** Release the underlying channel, if any (idempotent). *)

val parse_line : string -> (item option, string) result
(** One line of the protocol: [Ok None] for blanks and comments,
    [Error] with a human-readable reason otherwise.  Exposed for
    tests. *)

val of_channel : ?skip:int -> name:string -> in_channel -> t
(** Stream the line protocol from a channel.  [skip] consumes (and
    discards) that many leading items — the resume path; the skipped
    items must exist.  [name] labels parse errors (a path, or
    ["stdin"]).
    @raise Failure on a malformed or out-of-order line, or when [skip]
    overruns the stream. *)

val of_file : ?skip:int -> string -> t
(** [of_channel] on an opened file.  @raise Sys_error if unreadable. *)

val of_list : ?skip:int -> item list -> t
(** In-memory source (tests).  @raise Invalid_argument on decreasing
    releases. *)

val poisson :
  seed:int ->
  rate:float ->
  sizes:float array ->
  jobs:int ->
  ?cursor:int ->
  ?clock:float ->
  unit ->
  t
(** Open-loop Poisson arrivals: exponential inter-arrival gaps of mean
    [1/rate]; item [k]'s size and databank are a uniform pick from
    [sizes] (databank = picked index), everything drawn from the derived
    stream [k] of the seed.  Exactly [jobs] items.  [cursor]/[clock]
    re-enter the stream at a checkpointed position — resuming at
    [(cursor, clock)] yields bit-identical remaining items.
    @raise Invalid_argument on a non-positive [rate]/[jobs], an empty
    [sizes], or a [cursor] beyond [jobs]. *)
