(** Simulation configurations (paper §5.1).

    A configuration fixes the six experimental features of the study:
    platform size (clusters), processor power (empirical reference
    values), number of databanks, databank sizes, databank availability,
    and workload density.  Instances are then realized from a
    configuration and a random seed.

    Units: databank sizes in MB; processor speeds in MB/s (a job's size in
    MB is the work of scanning its whole databank; the paper's Mflop and
    second·Mflop⁻¹ are proportional).  The workload density [d] means the
    total work released during the arrival window is [d × total platform
    speed × window length], split evenly across databanks — a density
    above 1 overloads the platform while requests keep arriving, exactly
    the regime where stretch-based fairness matters. *)

type fault_axis = {
  mtbf : float;  (** per-machine mean time between failures, seconds *)
  mttr : float;  (** mean time to repair, seconds *)
  loss : Gripps_engine.Fault.loss;  (** crash (work lost) or pause (preserved) *)
}
(** The fault-model axis: each machine fails as an independent alternating
    renewal process (exponential uptime of mean [mtbf], exponential repair
    of mean [mttr]) during the arrival window. *)

type t = {
  sites : int;                 (** number of clusters *)
  processors_per_site : int;   (** identical processors per cluster (paper: 10) *)
  databases : int;             (** number of distinct databanks *)
  availability : float;        (** per-(databank, site) replication probability *)
  density : float;             (** workload density (see above) *)
  horizon : float;             (** arrival window, seconds (paper: 900) *)
  db_size_range : float * float;  (** databank sizes, MB (paper: 10–1000) *)
  reference_speeds : float array; (** per-processor speeds, MB/s (empirical) *)
  faults : fault_axis option;  (** fault model; [None] = reliable machines *)
  users : int;                 (** submitting users; jobs are tagged uniformly
                                   at random when above 1 (default 1) *)
}

val default : t
(** 3 sites × 10 processors, 3 databanks, availability 0.6, density 1.0,
    900 s window, 10–1000 MB databanks, the six GriPPS-like reference
    speeds. *)

val fault_axis :
  ?loss:Gripps_engine.Fault.loss -> mtbf:float -> mttr:float -> unit -> fault_axis
(** [loss] defaults to {!Gripps_engine.Fault.Crash}.
    @raise Invalid_argument on non-positive [mtbf] or [mttr]. *)

val make :
  ?processors_per_site:int ->
  ?horizon:float ->
  ?db_size_range:float * float ->
  ?reference_speeds:float array ->
  ?faults:fault_axis ->
  ?users:int ->
  sites:int ->
  databases:int ->
  availability:float ->
  density:float ->
  unit ->
  t
(** @raise Invalid_argument on non-positive counts (including [users]),
    availability outside (0, 1], or a degenerate size range. *)

val with_faults : t -> fault_axis -> t

val paper_grid : ?scale_window:bool -> horizon:float -> unit -> t list
(** The full factorial design of §5.3: sites ∈ {3, 10, 20} × databases ∈
    {3, 10, 20} × availability ∈ {0.3, 0.6, 0.9} × density ∈
    {0.75, 1, 1.25, 1.5, 2, 3} — 162 configurations.  With [scale_window]
    (default true) the arrival window of larger platforms shrinks as
    [3/sites] so the expected job count stays comparable across platform
    sizes (the paper instead kept 15 minutes everywhere and let job
    counts grow with aggregate speed). *)

val describe : t -> string
