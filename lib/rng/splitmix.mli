(** SplitMix64 pseudo-random number generator.

    Deterministic, splittable, seedable — every experiment in the paper
    reproduction is driven by an explicit seed so tables regenerate
    identically run after run. *)

type t

val create : int -> t
(** [create seed]. *)

val copy : t -> t

val split : t -> t
(** Derive an independent stream (used to give each simulated instance its
    own generator so instances are reproducible in isolation).  Advances
    the parent. *)

val stream : t -> int -> t
(** [stream t k] is the [k]-th derived stream of [t]: a pure function of
    [t]'s current state and the index — the parent is {e not} advanced,
    and the same [(state, k)] always yields the same stream.  This is
    the seed discipline of parallel sweeps: shard [k] draws from
    [stream base k], never from whichever generator happens to be free,
    so a sweep replays identically at any [--jobs] level. *)

val next_int64 : t -> int64
(** Uniform over all 64-bit values. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
