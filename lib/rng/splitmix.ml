(* SplitMix64 (Steele, Lea & Flood 2014): a 64-bit state advanced by the
   golden-gamma constant, output scrambled by two xor-shift-multiplies. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = mix s }

(* Index-addressed stream derivation: the k-th stream is a pure function
   of the base state and k (the base is not advanced), so parallel sweep
   shards can derive their streams by index and replay identically
   regardless of execution order or domain count.  Double mixing
   decorrelates neighbouring indices and the base's own output
   sequence. *)
let stream t k =
  { state =
      mix (Int64.add (mix t.state) (Int64.mul (Int64.of_int k) golden_gamma)) }

let float t =
  (* 53 uniform mantissa bits. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: non-positive bound";
  (* Rejection sampling over the top bits to avoid modulo bias. *)
  let rec draw () =
    let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let v = raw mod bound in
    if raw - v > max_int - bound + 1 then draw () else v
  in
  draw ()
