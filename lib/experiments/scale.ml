(* Large-n scale experiment: how fast does each priority scheduler chew
   through events as the workload grows?

   For each target size n the generator's arrival window is solved from
   its own rate formula (per-databank rate = density × total speed /
   (databases × size_d), independent of the window), so one pinned seed
   yields one instance of ≈ n jobs shared by every scheduler.  Each
   (n, scheduler) cell times the flat zero-allocation path in its
   benchmarking posture (no schedule recording) — the headline events/s —
   and reads the engine's [sim.minor_words] counter around the run to
   report allocations per event.  Below [legacy_cap] it also runs the
   flat path with recording on, the incremental heap path and the legacy
   resort-from-scratch oracle on the same instance, and checks all four
   runs are identical — metrics, segment list and completion vector
   compared structurally, i.e. float by float.  The [identical] bit of
   the report gates CI. *)

open Gripps_model
open Gripps_engine
open Gripps_sched
module W = Gripps_workload

type spec = {
  s_name : string;
  rule : Priority.rule;
  static : bool;
  flat : List_sched.flat_rule;
}

let panel =
  [ { s_name = "FCFS"; rule = Priority.fcfs; static = true;
      flat = List_sched.Rule_fcfs };
    { s_name = "SPT"; rule = Priority.spt; static = true;
      flat = List_sched.Rule_spt };
    { s_name = "SRPT"; rule = Priority.srpt; static = false;
      flat = List_sched.Rule_srpt };
    { s_name = "SWPT"; rule = Priority.swpt; static = true;
      flat = List_sched.Rule_swpt };
    { s_name = "SWRPT"; rule = Priority.swrpt; static = false;
      flat = List_sched.Rule_swrpt } ]

let panel_names = List.map (fun s -> s.s_name) panel
let default_sizes = [ 100; 1_000; 10_000; 100_000; 1_000_000 ]
let default_legacy_cap = 10_000

type legacy_run = {
  l_wall_s : float;
  l_events_per_s : float;
  l_speedup : float;    (* legacy wall / flat wall *)
  l_identical : bool;   (* flat (both modes) = incremental = resort *)
}

type entry = {
  n_target : int;
  scheduler : string;
  jobs : int;           (* realized job count (Poisson draw around n) *)
  events : int;
  replans : int;
  wall_s : float;
  events_per_s : float;
  mw_per_event : float; (* minor-heap words allocated per event *)
  legacy : legacy_run option;
}

type report = {
  seed : int;
  domains : int;
  sizes : int list;
  legacy_cap : int;
  repeats : int;        (* timed headline runs per cell (min-of-N wall) *)
  entries : entry list;
  identical : bool;     (* conjunction over every legacy comparison *)
}

let base_config =
  W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0
    ~horizon:1.0 ()

(* The instance of target size [n]: a pure function of (seed, n), so a
   parallel sweep regenerates it identically in whichever domain the
   (n, scheduler) cell lands. *)
let instance_for ~seed n =
  let rng = Gripps_rng.Splitmix.create (seed + (1_000_003 * n)) in
  let r = W.Generator.platform rng base_config in
  let total_speed = Platform.total_speed r.W.Generator.platform in
  let inv_sizes = Array.fold_left (fun s z -> s +. (1.0 /. z)) 0.0 r.W.Generator.db_sizes in
  let total_rate =
    base_config.W.Config.density *. total_speed *. inv_sizes
    /. float_of_int base_config.W.Config.databases
  in
  let c = { base_config with W.Config.horizon = float_of_int n /. total_rate } in
  let rec draw () =
    match W.Generator.jobs rng c r with [] -> draw () | js -> js
  in
  Instance.make ~platform:r.W.Generator.platform ~jobs:(draw ())

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let same_report (a : Sim.report) (b : Sim.report) =
  a.Sim.metrics = b.Sim.metrics
  && a.Sim.schedule.Schedule.segments = b.Sim.schedule.Schedule.segments
  && a.Sim.schedule.Schedule.completion = b.Sim.schedule.Schedule.completion

let minor_words () =
  match Gripps_obs.Obs.counter_value "sim.minor_words" with
  | Some w -> w
  | None -> 0

let measure_cell ~seed ~legacy_cap ~repeats n spec =
  let inst = instance_for ~seed n in
  let flat = List_sched.flat_scheduler spec.flat in
  (* Headline run: flat path, no schedule recording.  The minor-words
     delta is domain-local (the counter lives in the measuring domain's
     observability state), so cells sharded across a pool don't bleed
     into each other. *)
  let mw0 = minor_words () in
  let wall_s, rep =
    time (fun () -> Sim.run_report_flat ~horizon:1e12 ~record:false flat inst)
  in
  let mw = minor_words () - mw0 in
  (* Min-of-N against run-to-run scheduling noise: the run is
     deterministic, so only the wall clock needs repeating. *)
  let wall_s = ref wall_s in
  for _ = 2 to repeats do
    let w, _ =
      time (fun () -> Sim.run_report_flat ~horizon:1e12 ~record:false flat inst)
    in
    if w < !wall_s then wall_s := w
  done;
  let wall_s = !wall_s in
  let per_s w = if w > 0.0 then float_of_int rep.Sim.events /. w else infinity in
  let legacy =
    if n > legacy_cap then None
    else begin
      let frec =
        Sim.run_report_flat ~horizon:1e12 ~record:true flat inst
      in
      let incr =
        List_sched.scheduler ~static:spec.static ~name:spec.s_name
          ~rule:spec.rule ()
      in
      let irep = Sim.run_report ~horizon:1e12 incr inst in
      let oracle = List_sched.resort_scheduler ~name:spec.s_name ~rule:spec.rule in
      let l_wall_s, l_rep = time (fun () -> Sim.run_report ~horizon:1e12 oracle inst) in
      Some
        { l_wall_s;
          l_events_per_s =
            (if l_wall_s > 0.0 then float_of_int l_rep.Sim.events /. l_wall_s
             else infinity);
          l_speedup = (if wall_s > 0.0 then l_wall_s /. wall_s else infinity);
          l_identical =
            same_report frec irep && same_report irep l_rep
            && frec.Sim.metrics = rep.Sim.metrics
            && frec.Sim.schedule.Schedule.completion
               = rep.Sim.schedule.Schedule.completion }
    end
  in
  { n_target = n; scheduler = spec.s_name; jobs = Instance.num_jobs inst;
    events = rep.Sim.events; replans = rep.Sim.replans; wall_s;
    events_per_s = per_s wall_s;
    mw_per_event =
      (if rep.Sim.events > 0 then float_of_int mw /. float_of_int rep.Sim.events
       else 0.0);
    legacy }

let run ?(sizes = default_sizes) ?(legacy_cap = default_legacy_cap)
    ?(schedulers = panel_names) ?(repeats = 1) ?pool ?progress ~seed () =
  let repeats = max 1 repeats in
  let specs = List.filter (fun s -> List.mem s.s_name schedulers) panel in
  let cells = List.concat_map (fun n -> List.map (fun s -> (n, s)) specs) sizes in
  let sweep =
    Gripps_parallel.Sweep.of_list cells (fun (n, s) ->
        measure_cell ~seed ~legacy_cap ~repeats n s)
  in
  let entries = Gripps_parallel.Sweep.run ?pool ?progress sweep in
  let domains =
    match pool with
    | Some p -> Gripps_parallel.Pool.domains p
    | None -> 1
  in
  { seed; domains; sizes; legacy_cap; repeats; entries;
    identical =
      List.for_all
        (fun e -> match e.legacy with None -> true | Some l -> l.l_identical)
        entries }

let failing_cells r =
  List.filter_map
    (fun e ->
      match e.legacy with
      | Some l when not l.l_identical -> Some (e.n_target, e.scheduler)
      | Some _ | None -> None)
    r.entries

(* ---- output ----------------------------------------------------------- *)

let to_json r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"schema\": \"gripps-bench-scale/3\",\n";
  add "  \"seed\": %d, \"domains\": %d, \"legacy_cap\": %d, \"repeats\": %d,\n"
    r.seed r.domains r.legacy_cap r.repeats;
  add "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      add "    {\"n\": %d, \"scheduler\": %S, \"jobs\": %d, \"events\": %d, \
           \"replans\": %d,\n"
        e.n_target e.scheduler e.jobs e.events e.replans;
      add "     \"wall_s\": %.6f, \"events_per_s\": %.1f, \"mw_per_event\": %.3f"
        e.wall_s e.events_per_s e.mw_per_event;
      (match e.legacy with
       | None -> add ", \"legacy\": null}"
       | Some l ->
         add ",\n     \"legacy\": {\"wall_s\": %.6f, \"events_per_s\": %.1f, \
              \"speedup\": %.2f, \"identical\": %b}}"
           l.l_wall_s l.l_events_per_s l.l_speedup l.l_identical);
      add "%s\n" (if i = List.length r.entries - 1 then "" else ","))
    r.entries;
  add "  ],\n  \"identical\": %b\n}\n" r.identical;
  Buffer.contents buf

(* Atomic, like {!Perf.write_json}: no torn BENCH_scale.json on a kill. *)
let write_json ~path r = Gripps_obs.Fsio.write_atomic ~path (to_json r)

let render r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Scale experiment (seed %d, %d domain%s; legacy oracle up to n = %d; \
       best of %d)\n"
    r.seed r.domains (if r.domains = 1 then "" else "s") r.legacy_cap r.repeats;
  add "%8s %-6s %8s %9s %9s %12s %7s %12s %8s %5s\n" "n" "sched" "jobs"
    "events" "wall(s)" "events/s" "mw/ev" "legacy ev/s" "speedup" "same";
  List.iter
    (fun e ->
      match e.legacy with
      | Some l ->
        add "%8d %-6s %8d %9d %9.3f %12.0f %7.2f %12.0f %7.1fx %5b\n" e.n_target
          e.scheduler e.jobs e.events e.wall_s e.events_per_s e.mw_per_event
          l.l_events_per_s l.l_speedup l.l_identical
      | None ->
        add "%8d %-6s %8d %9d %9.3f %12.0f %7.2f %12s %8s %5s\n" e.n_target
          e.scheduler e.jobs e.events e.wall_s e.events_per_s e.mw_per_event
          "-" "-" "-")
    r.entries;
  add "all legacy comparisons identical: %b\n" r.identical;
  Buffer.contents buf
