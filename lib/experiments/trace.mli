(** Pinned trace scenarios for [gripps_cli trace].

    A scenario is a deterministic (seeded) workload plus one registry
    scheduler, optionally under a seeded machine-failure trace.  Running
    one at {!Gripps_obs.Obs.Events} level produces the full structured
    journal; [--verify] replays that journal through
    {!Gripps_engine.Replay} and checks that the rebuilt schedule yields
    exactly the metrics of the live run — after a JSONL round-trip, so
    the serialization is covered too. *)

open Gripps_model
open Gripps_engine
module Obs = Gripps_obs.Obs

type scenario = {
  sc_name : string;
  description : string;
  scheduler : string;  (** registry display name, see {!Sched_registry} *)
  seed : int;
  config : Gripps_workload.Config.t;
  fault_mtbf : float option;
      (** when set, a Poisson failure trace with this per-machine MTBF
          (and MTTR = a tenth of it) is injected *)
}

val scenarios : scenario list
(** The pinned set: an exact-solver offline run, an on-line LP run, and
    an on-line run under machine failures. *)

val find : string -> scenario option

val instance_of : scenario -> Instance.t
(** The deterministic instance realized by the scenario's seed. *)

val faults_of : scenario -> Instance.t -> Fault.trace

type result = {
  scenario : scenario;
  report : Sim.report;
  spans : Obs.Span.summary list;
  counters : (string * int) list;
}

val run : ?level:Obs.level -> scenario -> result
(** Execute the scenario at the given observability level (default
    {!Obs.Events}), with spans and counters reset beforehand so the
    result is self-contained.  The journal is in
    [result.report.Sim.journal]. *)

type verification = {
  v_scenario : string;
  v_events : int;
  v_roundtrip_ok : bool;  (** JSONL encode/decode reproduced every event *)
  v_metrics_match : bool; (** replayed metrics = live metrics, bitwise *)
  v_live : Metrics.t;
  v_replayed : Metrics.t;
  v_ok : bool;
}

val verify : scenario -> verification
(** Run at {!Obs.Events} level, round-trip the journal through its JSONL
    encoding, rebuild the schedule with {!Replay.schedule_of_journal}
    and compare metrics bit-for-bit. *)

val render_result : result -> string
(** Human-readable summary: event histogram, replans, spans, counters. *)

val render_verification : verification -> string
