open Gripps_engine
open Gripps_core
open Gripps_sched

type kind = Offline | Online | Heuristic

type entry = { name : string; scheduler : Sim.scheduler; kind : kind }

let entry kind (s : Sim.scheduler) = { name = s.Sim.name; scheduler = s; kind }

(* Table 1 order.  Bender98/Bender02 re-solve a stretch optimization at
   every arrival, so they are on-line solver-driven schedulers even
   though their decision rules differ from the Online family. *)
let all =
  [ entry Offline Gripps_core.Offline.scheduler;
    entry Online Online_lp.online;
    entry Online Online_lp.online_edf;
    entry Online Online_lp.online_egdf;
    entry Online Bender.bender98;
    entry Heuristic List_sched.swrpt;
    entry Heuristic List_sched.srpt;
    entry Heuristic List_sched.spt;
    entry Online Bender.bender02;
    entry Heuristic Greedy.mct_div;
    entry Heuristic Greedy.mct ]

let names = List.map (fun e -> e.name) all
let schedulers panel = List.map (fun e -> e.scheduler) panel
let find name = List.find_opt (fun e -> e.name = name) all
let find_scheduler name = Option.map (fun e -> e.scheduler) (find name)
let of_kind k = List.filter (fun e -> e.kind = k) all

let kind_name = function
  | Offline -> "offline"
  | Online -> "online"
  | Heuristic -> "heuristic"
