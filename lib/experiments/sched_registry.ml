open Gripps_engine
open Gripps_core
open Gripps_sched
module Metrics = Gripps_model.Metrics

type kind = Offline | Online | Heuristic
type info = Clairvoyant | Nonclairvoyant

type caps = { objectives : Metrics.objective list }

type entry = {
  name : string;
  scheduler : Sim.scheduler;
  kind : kind;
  info : info;
  caps : caps;
}

let entry ?(info = Clairvoyant) ~targets kind (s : Sim.scheduler) =
  { name = s.Sim.name;
    scheduler = s;
    kind;
    info;
    caps = { objectives = targets } }

(* Table 1 order, then the non-clairvoyant extensions.  Bender98/Bender02
   re-solve a stretch optimization at every arrival, so they are on-line
   solver-driven schedulers even though their decision rules differ from
   the Online family. *)
let registry =
  [ entry Offline Gripps_core.Offline.scheduler
      ~targets:[ Metrics.Max_stretch ];
    entry Online Online_lp.online
      ~targets:[ Metrics.Max_stretch; Metrics.Sum_stretch ];
    entry Online Online_lp.online_edf ~targets:[ Metrics.Max_stretch ];
    entry Online Online_lp.online_egdf ~targets:[ Metrics.Max_stretch ];
    entry Online Bender.bender98 ~targets:[ Metrics.Max_stretch ];
    entry Heuristic List_sched.swrpt ~targets:[ Metrics.Sum_stretch ];
    entry Heuristic List_sched.srpt
      ~targets:[ Metrics.Sum_flow; Metrics.Sum_stretch ];
    entry Heuristic List_sched.spt ~targets:[ Metrics.Sum_stretch ];
    entry Online Bender.bender02 ~targets:[ Metrics.Max_stretch ];
    entry Heuristic Greedy.mct_div ~targets:[ Metrics.Makespan ];
    entry Heuristic Greedy.mct ~targets:[ Metrics.Makespan ];
    entry Heuristic Nonclairvoyant.equi ~info:Nonclairvoyant
      ~targets:[ Metrics.Sum_flow ];
    entry Heuristic Nonclairvoyant.rr ~info:Nonclairvoyant
      ~targets:[ Metrics.Sum_flow ] ]

let select p = List.filter p registry

let is_clairvoyant e = e.info = Clairvoyant
let is_nonclairvoyant e = e.info = Nonclairvoyant

let paper_panel = select is_clairvoyant

let targets o e =
  List.exists (fun o' -> Metrics.family o' = Metrics.family o) e.caps.objectives

let panel_names panel = List.map (fun e -> e.name) panel
let schedulers panel = List.map (fun e -> e.scheduler) panel

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = name) registry

let find_scheduler name = Option.map (fun e -> e.scheduler) (find name)

let kind_name = function
  | Offline -> "offline"
  | Online -> "online"
  | Heuristic -> "heuristic"

let info_name = function
  | Clairvoyant -> "clairvoyant"
  | Nonclairvoyant -> "non-clairvoyant"

let describe e =
  Printf.sprintf "%-14s %-10s %-16s targets: %s" e.name (kind_name e.kind)
    (info_name e.info)
    (String.concat ", " (List.map Metrics.objective_name e.caps.objectives))

(* Deprecated surface (one release): the pre-objective list-shaped
   accessors, now thin wrappers over the clairvoyant panel. *)
let all = paper_panel
let names = panel_names paper_panel
let of_kind k = List.filter (fun e -> e.kind = k) paper_panel
