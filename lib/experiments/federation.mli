(** The federation-gap experiment: what does sharding the platform cost?

    For each random instance of a pinned configuration, the single
    aggregate run (the paper's setting: one scheduler sees the whole
    platform) is the baseline; the same scheduler is then run federated
    across a grid of shard counts × routing policies × migration on/off
    ({!Gripps_federation.Federation.run}), and each cell reports its
    max-stretch and sum-stretch ratios to the baseline — the price of
    scaling out coordination-free.

    Every cell of every instance is a pure function of [(seed, k)]; the
    sweep shards over {e instances} (the federated runs inside a cell use
    the sequential pool — no nested domain spawning), so the report is
    bit-identical at any pool size. *)

module Frontend = Gripps_federation.Frontend

type cell = {
  shards : int;
  policy : Frontend.policy;
  migrate : bool;
  mean_max_ratio : float;   (** geometric-free arithmetic mean over instances *)
  mean_sum_ratio : float;
  worst_max_ratio : float;  (** the worst instance's max-stretch ratio *)
  mean_migrations : float;  (** mean migrated-job count (0 unless migrate) *)
}

type report = {
  seed : int;
  instances : int;
  scheduler : string;       (** the local scheduler every shard runs *)
  config : Gripps_workload.Config.t;
  shard_grid : int list;
  policies : Frontend.policy list;
  migrate_axis : bool list;
  mean_jobs : float;        (** mean realized job count per instance *)
  cells : cell list;        (** shard-major, policy-minor, migrate-innermost *)
}

val default_config : Gripps_workload.Config.t
(** 8 single-processor sites (so 2/4/8-shard partitions are meaningful),
    4 databanks at availability 0.7, density 1.25 — the overloaded regime
    where routing quality matters. *)

val default_shard_grid : int list
(** [[2; 4; 8]]. *)

val run :
  ?config:Gripps_workload.Config.t ->
  ?shard_grid:int list ->
  ?policies:Frontend.policy list ->
  ?migrate_axis:bool list ->
  ?scheduler:string ->
  ?pool:Gripps_parallel.Pool.t ->
  ?progress:(int -> int -> unit) ->
  seed:int ->
  instances:int ->
  unit ->
  report
(** [scheduler] (default ["SRPT"] — the local rule of the Fox–Moseley
    immediate-dispatch baseline) names a {!Sched_registry} entry.
    @raise Invalid_argument on an unknown scheduler name, an empty grid
    or axis, or a shard count exceeding the configuration's machine
    count. *)

val render : report -> string
val to_json : report -> string
val write_json : path:string -> report -> unit
