module W = Gripps_workload
module S = Gripps_core.Stretch_solver

type entry = {
  scheduler : string;
  wall : Stats.summary;
  solver_wall : Stats.summary;
  solver : S.stats;  (* summed over the scheduler's runs *)
}

let sum_stats (a : S.stats) (b : S.stats) =
  { S.exact_probes = a.S.exact_probes + b.S.exact_probes;
    float_probes = a.S.float_probes + b.S.float_probes;
    graph_builds = a.S.graph_builds + b.S.graph_builds;
    warm_updates = a.S.warm_updates + b.S.warm_updates;
    augmenting_paths = a.S.augmenting_paths + b.S.augmenting_paths;
    rat_fast_hits = a.S.rat_fast_hits + b.S.rat_fast_hits;
    rat_fast_falls = a.S.rat_fast_falls + b.S.rat_fast_falls }

let zero_stats =
  { S.exact_probes = 0; float_probes = 0; graph_builds = 0; warm_updates = 0;
    augmenting_paths = 0; rat_fast_hits = 0; rat_fast_falls = 0 }

let measure ?(seed = 20060303) ?(instances = 3) ?(horizon = 60.0) ?pool () =
  let config =
    W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0 ~horizon ()
  in
  let results = Runner.run_config ?pool ~seed ~instances config in
  List.filter_map
    (fun name ->
      let runs =
        List.concat_map
          (fun (r : Runner.instance_result) ->
            List.filter_map
              (fun (m : Runner.measurement) ->
                if m.scheduler = name then
                  Some (m.wall_time, m.solver_time, m.solver)
                else None)
              r.measurements)
          results
      in
      match runs with
      | [] -> None
      | _ ->
        Some
          { scheduler = name;
            wall = Stats.summarize (List.map (fun (w, _, _) -> w) runs);
            solver_wall = Stats.summarize (List.map (fun (_, s, _) -> s) runs);
            solver =
              List.fold_left
                (fun acc (_, _, s) -> sum_stats acc s)
                zero_stats runs })
    (Sched_registry.panel_names Sched_registry.paper_panel)

type scaling_sample = {
  jobs : int;
  offline_s : float;
  online_s : float;
  bender98_s : float;
}

let scaling ?(seed = 20060404) ?(horizons = [ 15.0; 30.0; 60.0; 120.0 ]) () =
  List.map
    (fun horizon ->
      let config =
        W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0 ~horizon ()
      in
      let rng = Gripps_rng.Splitmix.create seed in
      let inst = Gripps_workload.Generator.instance rng config in
      let time s =
        let t0 = Unix.gettimeofday () in
        ignore (Gripps_engine.Sim.run ~horizon:1e9 s inst);
        Unix.gettimeofday () -. t0
      in
      { jobs = Gripps_model.Instance.num_jobs inst;
        offline_s = time Gripps_core.Offline.scheduler;
        online_s = time Gripps_core.Online_lp.online;
        bender98_s = time Gripps_core.Bender.bender98 })
    horizons
