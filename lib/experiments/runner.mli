(** Running the heuristic portfolio over random instances (paper §5.3).

    The portfolio is the eleven heuristics of Table 1, now defined once
    in {!Sched_registry} (the default panel is
    {!Sched_registry.paper_panel}).  [Bender98] is only run on platforms
    of at most [bender98_max_sites] clusters (default 3) and on workloads
    of at most [bender98_max_jobs] jobs (default 60), mirroring the
    paper, whose larger simulations were "practically infeasible, due to
    the algorithm's prohibitive overhead costs" (it solves a full
    hindsight optimum at every arrival).

    Beyond the classic max-/sum-stretch pair, a run can evaluate any
    list of {!Gripps_model.Metrics.objective}s ([?objectives]); the extra
    values ride on each measurement and feed the ℓ_p and clairvoyance
    tables. *)

open Gripps_model
open Gripps_engine

type measurement = {
  scheduler : string;
  max_stretch : float;
  sum_stretch : float;
  objectives : (Metrics.objective * float) list;
  (** the values of the extra requested objectives, in request order
      (empty unless [?objectives] was passed) *)
  wall_time : float;
  (** seconds of wall time for the whole simulated run (scheduling
      overhead + engine bookkeeping) *)
  solver_time : float;
  (** seconds spent inside the stretch-solver pipelines during the run,
      from the observability span data — the §5.3 overhead table reports
      this separately so simulation time is no longer double-counted as
      solver cost *)
  solver : Gripps_core.Stretch_solver.stats;
  (** solver-internal counters accumulated during this run (feasibility
      probes, flow-network builds and warm updates, augmenting paths,
      rational fast-path hits/falls) *)
}

type instance_result = {
  config : Gripps_workload.Config.t;
  num_jobs : int;
  measurements : measurement list;
}

val run_instance :
  ?bender98_max_sites:int ->
  ?bender98_max_jobs:int ->
  ?schedulers:Sim.scheduler list ->
  ?objectives:Metrics.objective list ->
  ?faults:Fault.trace ->
  ?loss:Fault.loss ->
  ?guard:float ->
  Gripps_workload.Config.t ->
  Instance.t ->
  instance_result
(** [faults] (default none) and [loss] (default {!Fault.Crash}) inject the
    same machine-failure trace into every scheduler's run, so the
    portfolio is compared under identical outages.  Runs are measured at
    observability level [Spans] at least (promoted temporarily when the
    ambient level is [Counters]) so that [solver_time] is populated.
    [guard] (default [1e9]) is the simulation abort guard: a run dragged
    past it cannot deliver complete metrics, so the engine's
    {!Sim.Horizon_exceeded} is converted to the typed
    {!Gripps_model.Metrics.Incomplete} (naming the first pending job) —
    the same data-error every metrics consumer already maps to exit 3. *)

val value : measurement -> Metrics.objective -> float option
(** The measured value of an objective: the classic fields answer
    [Max_stretch]/[Sum_stretch] directly, anything else must have been
    requested via [?objectives]. *)

type ratio = { scheduler : string; max_ratio : float; sum_ratio : float }

val ratios : instance_result -> ratio list
(** Per-instance ratios to the best observed value of each metric across
    the portfolio — the normalization used by every aggregate table. *)

val ratios_for : Metrics.objective -> instance_result -> (string * float) list
(** {!ratios} generalized to one objective: [(scheduler, value / best)]
    for every measurement carrying that objective (degenerate zero-spread
    instances normalize to 1, as in {!ratios}). *)

val instance_job :
  ?bender98_max_sites:int ->
  ?bender98_max_jobs:int ->
  ?schedulers:Sim.scheduler list ->
  ?objectives:Metrics.objective list ->
  ?guard:float ->
  seed:int ->
  Gripps_workload.Config.t ->
  int ->
  instance_result
(** [instance_job ~seed config k] realizes and measures the [k]-th random
    instance of [config].  All randomness (workload and fault trace) is a
    pure function of [(seed, k)], so the job can run in any domain, in
    any order, and return the same result — this is the unit every sweep
    shards on. *)

val config_sweep :
  ?bender98_max_sites:int ->
  ?bender98_max_jobs:int ->
  ?schedulers:Sim.scheduler list ->
  ?objectives:Metrics.objective list ->
  ?guard:float ->
  seed:int ->
  instances:int ->
  Gripps_workload.Config.t ->
  instance_result Gripps_parallel.Sweep.t
(** The [instances] jobs of a configuration as a shardable sweep. *)

val run_config :
  ?bender98_max_sites:int ->
  ?bender98_max_jobs:int ->
  ?schedulers:Sim.scheduler list ->
  ?objectives:Metrics.objective list ->
  ?guard:float ->
  ?pool:Gripps_parallel.Pool.t ->
  seed:int ->
  instances:int ->
  Gripps_workload.Config.t ->
  instance_result list
(** Realize [instances] random instances of the configuration (seeded
    deterministically) and measure the portfolio on each.  When the
    configuration carries a {!Gripps_workload.Config.fault_axis}, each
    instance also gets a deterministic fault trace drawn from the same
    stream.  [pool] (default sequential) shards instances across domains;
    results are identical at any pool size. *)
