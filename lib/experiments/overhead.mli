(** The §5.3 scheduling-overhead study: wall time of each scheduler on
    3-cluster workloads.  The paper reports ≈0.28 s for the on-line
    heuristics, 0.54 s for the off-line optimal and 19.76 s for Bender98
    on 15-minute workloads; the shape to reproduce is
    Bender98 ≫ Offline > on-line LP heuristics ≫ list heuristics. *)

type entry = {
  scheduler : string;
  wall : Stats.summary;
  solver_wall : Stats.summary;
  (** seconds inside the stretch-solver pipelines per run (span data) —
      separated from [wall] so the table no longer conflates simulation
      time with solver time *)
  solver : Gripps_core.Stretch_solver.stats;
  (** solver counters summed over this scheduler's runs — attributes the
      wall time to feasibility probes / flow work / rational arithmetic *)
}

val measure :
  ?seed:int ->
  ?instances:int ->
  ?horizon:float ->
  ?pool:Gripps_parallel.Pool.t ->
  unit ->
  entry list
(** Per-scheduler wall-time summaries and solver counters on 3-cluster
    configurations (portfolio order).  [pool] shards by instance; the
    solver counters are merged back deterministically, though wall-time
    summaries remain measurements (they vary run to run regardless). *)

type scaling_sample = {
  jobs : int;
  offline_s : float;
  online_s : float;
  bender98_s : float;
}

val scaling :
  ?seed:int -> ?horizons:float list -> unit -> scaling_sample list
(** Wall time of the three expensive schedulers as the workload grows
    (3-cluster platform, increasing arrival windows) — the quantitative
    version of the paper's remark that Bender98 becomes intractable with
    the job count (it performs one full hindsight solve per arrival). *)
