(* The federation-gap experiment: baseline single-aggregate run vs the
   same scheduler federated across shard-count × policy × migration
   cells, ratio-ed per instance and averaged.

   The sweep unit is one instance: realize it from (seed, k), run the
   baseline once, then every cell on the same instance.  All federated
   runs inside the unit use the sequential pool, so the instance-level
   sweep can shard across domains without nested spawning. *)

open Gripps_model
open Gripps_engine
module W = Gripps_workload
module Fed = Gripps_federation.Federation
module Frontend = Gripps_federation.Frontend
module Pool = Gripps_parallel.Pool
module Sweep = Gripps_parallel.Sweep

type cell = {
  shards : int;
  policy : Frontend.policy;
  migrate : bool;
  mean_max_ratio : float;
  mean_sum_ratio : float;
  worst_max_ratio : float;
  mean_migrations : float;
}

type report = {
  seed : int;
  instances : int;
  scheduler : string;
  config : W.Config.t;
  shard_grid : int list;
  policies : Frontend.policy list;
  migrate_axis : bool list;
  mean_jobs : float;
  cells : cell list;
}

let default_config =
  W.Config.make ~sites:8 ~processors_per_site:1 ~databases:4 ~availability:0.7
    ~density:1.25 ~horizon:900.0 ()

let default_shard_grid = [ 2; 4; 8 ]

(* One instance's worth of measurements: per cell, the (max, sum,
   migrations) triple of ratios to this instance's own baseline. *)
type instance_cells = {
  i_jobs : int;
  i_ratios : (float * float * float) list;  (* cell order *)
}

let cell_grid ~shard_grid ~policies ~migrate_axis =
  List.concat_map
    (fun shards ->
      List.concat_map
        (fun policy ->
          List.map (fun migrate -> (shards, policy, migrate)) migrate_axis)
        policies)
    shard_grid

let instance_job ~seed ~config ~scheduler ~grid k =
  let rng = Gripps_rng.Splitmix.create (seed + (1_000_003 * k)) in
  let inst = W.Generator.instance rng config in
  let baseline = (Sim.run_report scheduler inst).Sim.metrics in
  let ratios =
    List.map
      (fun (shards, policy, migrate) ->
        let fed =
          Fed.run ~pool:Pool.sequential ~shards ~policy ~migrate ~scheduler
            inst
        in
        let max_r, sum_r = Fed.stretch_ratios ~baseline fed in
        (max_r, sum_r, float_of_int fed.Fed.outcome.Frontend.migrations))
      grid
  in
  { i_jobs = Instance.num_jobs inst; i_ratios = ratios }

let run ?(config = default_config) ?(shard_grid = default_shard_grid)
    ?(policies = Frontend.all_policies) ?(migrate_axis = [ false; true ])
    ?(scheduler = "SRPT") ?(pool = Pool.sequential) ?progress ~seed ~instances
    () =
  if shard_grid = [] then invalid_arg "Federation.run: empty shard grid";
  if policies = [] then invalid_arg "Federation.run: empty policy list";
  if migrate_axis = [] then invalid_arg "Federation.run: empty migrate axis";
  if instances < 1 then invalid_arg "Federation.run: instances must be >= 1";
  (* The generator realizes one machine per cluster site (aggregate
     speed), so the shardable machine count is the site count. *)
  let machines = config.W.Config.sites in
  List.iter
    (fun s ->
      if s < 1 || s > machines then
        invalid_arg
          (Printf.sprintf
             "Federation.run: shard count %d outside [1, %d machines]" s
             machines))
    shard_grid;
  let sched =
    match Sched_registry.find_scheduler scheduler with
    | Some s -> s
    | None ->
      invalid_arg
        (Printf.sprintf "Federation.run: unknown scheduler %S" scheduler)
  in
  let grid = cell_grid ~shard_grid ~policies ~migrate_axis in
  let sweep =
    Sweep.make ~length:instances
      (instance_job ~seed ~config ~scheduler:sched ~grid)
  in
  let per_instance = Sweep.run ~pool ?progress sweep in
  let nf = float_of_int instances in
  let cells =
    List.mapi
      (fun i (shards, policy, migrate) ->
        let col = List.map (fun r -> List.nth r.i_ratios i) per_instance in
        let sum3 (a, b, c) (a', b', c') = (a +. a', b +. b', c +. c') in
        let ma, sa, mg = List.fold_left sum3 (0.0, 0.0, 0.0) col in
        let worst =
          List.fold_left (fun acc (m, _, _) -> Float.max acc m) 0.0 col
        in
        { shards;
          policy;
          migrate;
          mean_max_ratio = ma /. nf;
          mean_sum_ratio = sa /. nf;
          worst_max_ratio = worst;
          mean_migrations = mg /. nf })
      grid
  in
  let mean_jobs =
    List.fold_left (fun acc r -> acc +. float_of_int r.i_jobs) 0.0 per_instance
    /. nf
  in
  { seed;
    instances;
    scheduler = sched.Sim.name;
    config;
    shard_grid;
    policies;
    migrate_axis;
    mean_jobs;
    cells }

let render r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "Federation gap (seed %d, %d instances, local scheduler %s, ~%.0f \
     jobs/instance)\n"
    r.seed r.instances r.scheduler r.mean_jobs;
  add "ratios vs the single-aggregate %s run (1.00 = no loss)\n" r.scheduler;
  add "%6s %-9s %-7s %10s %10s %10s %8s\n" "shards" "policy" "migrate"
    "max-ratio" "sum-ratio" "worst-max" "moved";
  List.iter
    (fun c ->
      add "%6d %-9s %-7s %10.3f %10.3f %10.3f %8.1f\n" c.shards
        (Frontend.policy_name c.policy)
        (if c.migrate then "on" else "off")
        c.mean_max_ratio c.mean_sum_ratio c.worst_max_ratio c.mean_migrations)
    r.cells;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"schema\": \"gripps-bench-federate/1\",\n";
  add "  \"seed\": %d, \"instances\": %d, \"scheduler\": %S,\n" r.seed
    r.instances r.scheduler;
  add "  \"config\": %S,\n" (W.Config.describe r.config);
  add "  \"mean_jobs\": %.1f,\n" r.mean_jobs;
  add "  \"cells\": [\n";
  let last = List.length r.cells - 1 in
  List.iteri
    (fun i c ->
      add
        "    {\"shards\": %d, \"policy\": %S, \"migrate\": %b, \
         \"max_ratio\": %.4f, \"sum_ratio\": %.4f, \"worst_max_ratio\": \
         %.4f, \"mean_migrations\": %.2f}%s\n"
        c.shards
        (Frontend.policy_name c.policy)
        c.migrate c.mean_max_ratio c.mean_sum_ratio c.worst_max_ratio
        c.mean_migrations
        (if i = last then "" else ","))
    r.cells;
  add "  ]\n}\n";
  Buffer.contents buf

let write_json ~path r = Gripps_obs.Fsio.write_atomic ~path (to_json r)
