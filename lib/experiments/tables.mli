(** The aggregate statistic tables of the paper (Table 1 and the appendix
    Tables 2–16).

    One sweep over the 162-configuration factorial design produces all
    sixteen tables: Table 1 aggregates everything; Tables 2–4 partition by
    platform size, 5–10 by workload density, 11–13 by databank count,
    14–16 by availability.  Each cell is the mean / standard deviation /
    maximum over instances of the per-instance ratio of a heuristic's
    metric to the best value observed on that instance. *)

module W = Gripps_workload

type row = {
  scheduler : string;
  max_stretch : Stats.summary;
  sum_stretch : Stats.summary;
}

type table = {
  title : string;
  rows : row list;  (** portfolio order *)
  instances : int;
}

val sweep :
  ?seed:int ->
  ?instances_per_config:int ->
  ?configs:W.Config.t list ->
  ?progress:(int -> int -> unit) ->
  ?pool:Gripps_parallel.Pool.t ->
  horizon:float ->
  unit ->
  Runner.instance_result list
(** Run the full factorial design (or [configs]); [progress done total] is
    called after each (configuration, instance) job, in job order.  [pool]
    (default sequential) shards the jobs across domains; the result list
    and every table derived from it are identical at any pool size. *)

val table1 : Runner.instance_result list -> table

val by_sites : Runner.instance_result list -> int -> table
(** Tables 2–4: [by_sites results 3 | 10 | 20]. *)

val by_density : Runner.instance_result list -> float -> table
(** Tables 5–10: densities 0.75, 1.0, 1.25, 1.5, 2.0, 3.0. *)

val by_databases : Runner.instance_result list -> int -> table
(** Tables 11–13. *)

val by_availability : Runner.instance_result list -> float -> table
(** Tables 14–16: availabilities 0.3, 0.6, 0.9. *)

val all_tables : Runner.instance_result list -> (int * table) list
(** [(paper table number, table)] for Tables 1–16. *)
