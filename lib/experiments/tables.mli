(** The aggregate statistic tables of the paper (Table 1 and the appendix
    Tables 2–16), plus the objective-parameterized generalizations.

    One sweep over the 162-configuration factorial design produces all
    sixteen tables: Table 1 aggregates everything; Tables 2–4 partition by
    platform size, 5–10 by workload density, 11–13 by databank count,
    14–16 by availability.  Each cell is the mean / standard deviation /
    maximum over instances of the per-instance ratio of a heuristic's
    metric to the best value observed on that instance.

    An {!objective_table} carries the same statistics for an arbitrary
    column list of {!Gripps_model.Metrics.objective}s over an arbitrary
    registry panel — the ℓ_p sweep ({!lp_table}) and the clairvoyant vs
    non-clairvoyant comparison ({!clairvoyance_table}) are instances. *)

module W = Gripps_workload
module Metrics = Gripps_model.Metrics

type row = {
  scheduler : string;
  max_stretch : Stats.summary;
  sum_stretch : Stats.summary;
}

type table = {
  title : string;
  rows : row list;  (** portfolio order *)
  instances : int;
}

val sweep :
  ?seed:int ->
  ?instances_per_config:int ->
  ?configs:W.Config.t list ->
  ?schedulers:Gripps_engine.Sim.scheduler list ->
  ?objectives:Metrics.objective list ->
  ?guard:float ->
  ?progress:(int -> int -> unit) ->
  ?pool:Gripps_parallel.Pool.t ->
  horizon:float ->
  unit ->
  Runner.instance_result list
(** Run the full factorial design (or [configs]); [progress done total] is
    called after each (configuration, instance) job, in job order.
    [schedulers] (default the Table 1 portfolio), [objectives] (extra
    objectives to evaluate per run) and [guard] (simulation abort guard,
    surfaced as {!Metrics.Incomplete}) are forwarded to
    {!Runner.instance_job}.  [pool] (default sequential) shards the jobs
    across domains; the result list and every table derived from it are
    identical at any pool size. *)

val table1 : Runner.instance_result list -> table

val by_sites : Runner.instance_result list -> int -> table
(** Tables 2–4: [by_sites results 3 | 10 | 20]. *)

val by_density : Runner.instance_result list -> float -> table
(** Tables 5–10: densities 0.75, 1.0, 1.25, 1.5, 2.0, 3.0. *)

val by_databases : Runner.instance_result list -> int -> table
(** Tables 11–13. *)

val by_availability : Runner.instance_result list -> float -> table
(** Tables 14–16: availabilities 0.3, 0.6, 0.9. *)

val all_tables : Runner.instance_result list -> (int * table) list
(** [(paper table number, table)] for Tables 1–16. *)

(** {1 Objective-parameterized tables} *)

type objective_column = { label : string; objective : Metrics.objective }

type objective_row = {
  o_scheduler : string;
  o_info : string;  (** information model, {!Sched_registry.info_name} *)
  o_cells : Stats.summary option list;
      (** one per column; [None] when no run carried that objective *)
}

type objective_table = {
  o_title : string;
  o_columns : objective_column list;
  o_rows : objective_row list;  (** panel order; all-empty rows dropped *)
  o_instances : int;
}

val aggregate_objectives :
  ?panel:Sched_registry.entry list ->
  title:string ->
  columns:objective_column list ->
  Runner.instance_result list ->
  objective_table
(** The generic aggregation: per column, per-instance ratios to the best
    observed value ({!Runner.ratios_for}), summarized per panel entry
    (default {!Sched_registry.paper_panel}). *)

val lp_columns : objective_column list
val lp_objectives : Metrics.objective list
(** ℓ_p stretch at p ∈ {1, 2, 3, ∞} — pass [lp_objectives] to {!sweep}
    so the measurements carry the values [lp_table] aggregates. *)

val lp_table : Runner.instance_result list -> objective_table

val clairvoyance_columns : objective_column list
(** Max-stretch and sum-stretch — both already on every measurement, so
    a clairvoyance sweep needs no [?objectives], only
    [~schedulers:(Sched_registry.schedulers Sched_registry.registry)]. *)

val clairvoyance_table : Runner.instance_result list -> objective_table
(** The price of clairvoyance: the full registry (Table 1 portfolio plus
    EQUI/RR) compared on max-/sum-stretch. *)

val objective_tables :
  ?panel:Sched_registry.entry list ->
  columns:objective_column list ->
  Runner.instance_result list ->
  (int * objective_table) list
(** The sixteen partitions of {!all_tables}, each aggregated over the
    given objective columns instead of the classic pair. *)
