(** Tracked solver benchmark ([gripps_cli perf], [bench perf]).

    Times the exact offline max-stretch solver, its float counterpart and
    the on-line heuristic on a pinned seeded corpus, compares against the
    checked-in pre-optimization baseline ([bench/BASELINE_stretch.json],
    whose numbers are embedded here as constants), and cross-checks that
    the warm-started pipeline returns the exact same rational optimum as
    a cold from-scratch solve. *)

type instance_report = {
  name : string;
  jobs : int;                         (** pending jobs in the instance *)
  s_star : string;                    (** exact optimum, as [Rat.to_string] *)
  exact_ms : float;                   (** median wall time, exact solver *)
  float_ms : float;                   (** median wall time, float solver *)
  solver : Gripps_core.Stretch_solver.stats;
      (** counters for one instrumented exact solve *)
  fast_hit_rate : float;              (** native-rational fast-path hit rate *)
  speedup : float;                    (** baseline exact_ms / current exact_ms *)
  cold_warm_match : bool;             (** warm pipeline = cold pipeline, exactly *)
  baseline_match : bool;              (** s_star equals the recorded baseline *)
}

type sweep_bench = {
  sweep_jobs : int;                   (** jobs in the pinned mini-sweep *)
  sweep_domains : int;                (** pool width of the parallel leg *)
  seq_s : float;                      (** sequential wall time, seconds *)
  par_s : float;                      (** [sweep_domains]-pool wall time *)
  par_speedup : float;                (** [seq_s /. par_s] *)
  deterministic : bool;
  (** rendered aggregate tables of the two legs byte-identical — a
      [false] here is a correctness bug in the parallel merge *)
}

type report = {
  instances : instance_report list;
  online_ms : float;
  online_baseline_ms : float;
  all_cold_warm_match : bool;
  (** conjunction over instances — a [false] here is a correctness bug *)
  all_baseline_match : bool;
  (** may be [false] on a different libm (the workload generator is
      float-seeded); informational, not fatal *)
  sweep : sweep_bench;
}

val run :
  ?repeats:int -> ?sweep_domains:int -> ?progress:(string -> unit) -> unit ->
  report
(** Runs the whole corpus.  [repeats] defaults to [$GRIPPS_PERF_REPEATS]
    or 5 (median after one warmup run); [sweep_domains] (default 2) is
    the pool width of the parallel sweep-bench leg; [progress] is called
    with each instance name before it is measured. *)

val to_json : report -> string
(** Machine-readable form (the BENCH_stretch.json schema). *)

val write_json : path:string -> report -> unit

val render : report -> string
(** Human-readable table. *)
