(* Tracked solver benchmark: pinned seeded workloads, timed end to end,
   with the pre-optimization baseline checked in for trajectory tracking.

   The harness times the exact offline solver, the float solver and the
   on-line heuristic on a fixed corpus, captures the solver
   instrumentation counters, and verifies two result invariants:

   - warm/cold agreement: the warm-started pipeline
     ([Stretch_solver.warm_enabled = true], the default) must return the
     exact same rational optimum as the cold from-scratch pipeline —
     this is machine-independent and treated as a hard failure;
   - baseline agreement: the optimum must equal the [s_star] recorded in
     the baseline below.  The workload generator goes through libm
     (exp/log), so on a machine with a different libm the generated
     instances — and hence the optima — can legitimately differ; a
     mismatch is therefore reported but left to the caller to escalate.

   Baseline timings were measured at the pre-optimization commit (the
   parent of the change introducing this module) on the reference
   machine, median of 5 after warmup; they give the "before" column of
   BENCH_stretch.json. *)

module S = Gripps_core.Stretch_solver
module W = Gripps_workload
module Q = Gripps_numeric.Rat

type spec = {
  name : string;
  sites : int;
  databases : int;
  availability : float;
  density : float;
  horizon : float;
  seed : int;
}

let corpus =
  [ { name = "n06"; sites = 3; databases = 3; availability = 0.6;
      density = 1.0; horizon = 60.0; seed = 13 };
    { name = "n76"; sites = 3; databases = 3; availability = 0.6;
      density = 1.0; horizon = 150.0; seed = 7 };
    { name = "n52"; sites = 3; databases = 3; availability = 0.6;
      density = 1.0; horizon = 302.9; seed = 42 } ]

type baseline_entry = { b_s_star : string; b_exact_ms : float; b_float_ms : float }

let baseline =
  [ ("n06",
     { b_s_star = "4114905997506199231/97499325005730634752";
       b_exact_ms = 10.046; b_float_ms = 1.020 });
    ("n76",
     { b_s_star = "6734715689046693/92413416673918189";
       b_exact_ms = 681.869; b_float_ms = 29.594 });
    ("n52",
     { b_s_star = "84470385685057034/608723212653874665";
       b_exact_ms = 370.634; b_float_ms = 53.579 }) ]

let baseline_online_ms = 4.629

type instance_report = {
  name : string;
  jobs : int;
  s_star : string;
  exact_ms : float;
  float_ms : float;
  solver : S.stats;  (* counters for one exact solve *)
  fast_hit_rate : float;
  speedup : float;         (* baseline exact / current exact *)
  cold_warm_match : bool;
  baseline_match : bool;
}

type sweep_bench = {
  sweep_jobs : int;
  sweep_domains : int;
  seq_s : float;
  par_s : float;
  par_speedup : float;
  deterministic : bool;
}

type report = {
  instances : instance_report list;
  online_ms : float;
  online_baseline_ms : float;
  all_cold_warm_match : bool;
  all_baseline_match : bool;
  sweep : sweep_bench;
}

let problem_of spec =
  let c =
    W.Config.make ~sites:spec.sites ~databases:spec.databases
      ~availability:spec.availability ~density:spec.density
      ~horizon:spec.horizon ()
  in
  let inst = W.Generator.instance (Gripps_rng.Splitmix.create spec.seed) c in
  (Gripps_core.Snapshot.of_instance inst).Gripps_core.Snapshot.problem

let time_median_ms ~repeats f =
  ignore (f ());  (* warmup *)
  let ts =
    Array.init (max 1 repeats) (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare ts;
  1000.0 *. ts.(Array.length ts / 2)

let measure_instance ~repeats spec =
  let p = problem_of spec in
  let jobs =
    List.length (List.filter (fun j -> Q.sign j.S.remaining > 0) p.S.jobs)
  in
  (* One instrumented solve for the counters, then timed repetitions. *)
  S.reset_stats ();
  let s_warm = S.optimal_max_stretch p in
  let solver = S.stats () in
  let exact_ms = time_median_ms ~repeats (fun () -> S.optimal_max_stretch p) in
  let float_ms =
    time_median_ms ~repeats (fun () -> S.optimal_max_stretch_float p)
  in
  (* Cold re-solve: the pre-warm-start pipeline must agree exactly. *)
  let s_cold =
    S.warm_enabled := false;
    Fun.protect ~finally:(fun () -> S.warm_enabled := true) (fun () ->
        S.optimal_max_stretch p)
  in
  let fast_hit_rate =
    let total = solver.S.rat_fast_hits + solver.S.rat_fast_falls in
    if total = 0 then 1.0
    else float_of_int solver.S.rat_fast_hits /. float_of_int total
  in
  let b = List.assoc spec.name baseline in
  { name = spec.name; jobs; s_star = Q.to_string s_warm; exact_ms; float_ms;
    solver; fast_hit_rate;
    speedup = (if exact_ms > 0.0 then b.b_exact_ms /. exact_ms else infinity);
    cold_warm_match = Q.equal s_warm s_cold;
    baseline_match = String.equal (Q.to_string s_warm) b.b_s_star }

let measure_online ~repeats () =
  let c =
    W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0
      ~horizon:30.0 ()
  in
  let inst = W.Generator.instance (Gripps_rng.Splitmix.create 42) c in
  let online =
    match Sched_registry.find_scheduler "Online" with
    | Some s -> s
    | None -> invalid_arg "Perf: Online missing from the scheduler registry"
  in
  time_median_ms ~repeats (fun () ->
      Gripps_engine.Sim.run ~horizon:1e9 online inst)

(* Sweep benchmark: the same pinned mini-sweep timed on a sequential pool
   and on a [domains]-wide pool, with the rendered aggregate tables
   byte-compared — the tracked evidence that parallelism changes wall
   time and nothing else.  The panel is the cheap half of the portfolio
   so the benchmark stays in seconds even at GRIPPS_PERF_REPEATS=1. *)
let sweep_panel = [ "Online"; "Online-EDF"; "SWRPT"; "SRPT"; "SPT"; "MCT" ]

let measure_sweep ~domains () =
  let schedulers =
    List.filter_map Sched_registry.find_scheduler sweep_panel
  in
  let config =
    W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0
      ~horizon:45.0 ()
  in
  let instances = 4 in
  let sweep = Runner.config_sweep ~schedulers ~seed:20060505 ~instances config in
  let run_with pool =
    let t0 = Unix.gettimeofday () in
    let rs = Gripps_parallel.Sweep.run ~pool sweep in
    (Unix.gettimeofday () -. t0, Render.table (Tables.table1 rs))
  in
  let seq_s, seq_table = run_with Gripps_parallel.Pool.sequential in
  let par_s, par_table = run_with (Gripps_parallel.Pool.create ~domains ()) in
  { sweep_jobs = instances; sweep_domains = domains; seq_s; par_s;
    par_speedup = (if par_s > 0.0 then seq_s /. par_s else infinity);
    deterministic = String.equal seq_table par_table }

let default_repeats =
  match Sys.getenv_opt "GRIPPS_PERF_REPEATS" with
  | Some v -> (try max 1 (int_of_string v) with Failure _ -> 5)
  | None -> 5

let run ?(repeats = default_repeats) ?(sweep_domains = 2)
    ?(progress = fun _ -> ()) () =
  let instances =
    List.map
      (fun (spec : spec) ->
        progress spec.name;
        measure_instance ~repeats spec)
      corpus
  in
  progress "online";
  let online_ms = measure_online ~repeats () in
  progress "sweep";
  let sweep = measure_sweep ~domains:(max 1 sweep_domains) () in
  { instances; online_ms; online_baseline_ms = baseline_online_ms;
    all_cold_warm_match = List.for_all (fun i -> i.cold_warm_match) instances;
    all_baseline_match = List.for_all (fun i -> i.baseline_match) instances;
    sweep }

(* ---- output ----------------------------------------------------------- *)

let to_json r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"schema\": \"gripps-bench-stretch/1\",\n  \"instances\": [\n";
  List.iteri
    (fun i e ->
      let b = List.assoc e.name baseline in
      add "    {\"name\": %S, \"jobs\": %d, \"s_star\": %S,\n" e.name e.jobs
        e.s_star;
      add "     \"exact_ms\": %.3f, \"float_ms\": %.3f, \"speedup\": %.2f,\n"
        e.exact_ms e.float_ms e.speedup;
      add
        "     \"exact_probes\": %d, \"float_probes\": %d, \"graph_builds\": \
         %d, \"warm_updates\": %d,\n"
        e.solver.S.exact_probes e.solver.S.float_probes
        e.solver.S.graph_builds e.solver.S.warm_updates;
      add "     \"augmenting_paths\": %d, \"fast_hit_rate\": %.4f,\n"
        e.solver.S.augmenting_paths e.fast_hit_rate;
      add
        "     \"baseline\": {\"s_star\": %S, \"exact_ms\": %.3f, \
         \"float_ms\": %.3f},\n"
        b.b_s_star b.b_exact_ms b.b_float_ms;
      add "     \"cold_warm_match\": %b, \"baseline_match\": %b}%s\n"
        e.cold_warm_match e.baseline_match
        (if i = List.length r.instances - 1 then "" else ","))
    r.instances;
  add "  ],\n";
  add "  \"online_ms\": %.3f,\n  \"baseline_online_ms\": %.3f,\n" r.online_ms
    r.online_baseline_ms;
  add
    "  \"sweep\": {\"jobs\": %d, \"domains\": %d, \"seq_s\": %.3f, \
     \"par_s\": %.3f, \"speedup\": %.2f, \"deterministic\": %b},\n"
    r.sweep.sweep_jobs r.sweep.sweep_domains r.sweep.seq_s r.sweep.par_s
    r.sweep.par_speedup r.sweep.deterministic;
  add "  \"all_cold_warm_match\": %b,\n  \"all_baseline_match\": %b\n}\n"
    r.all_cold_warm_match r.all_baseline_match;
  Buffer.contents buf

(* Atomic (temp + fsync + rename): a killed benchmark never leaves a torn
   BENCH_*.json behind for the CI comparison step to choke on. *)
let write_json ~path r = Gripps_obs.Fsio.write_atomic ~path (to_json r)

let render r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Solver benchmark (pinned corpus; baseline = pre-optimization commit)\n";
  add "%-6s %5s %12s %12s %8s %12s %7s %7s %6s %6s\n" "name" "jobs"
    "exact(ms)" "before(ms)" "speedup" "float(ms)" "probes" "builds" "warm"
    "hit%";
  List.iter
    (fun e ->
      let b = List.assoc e.name baseline in
      add "%-6s %5d %12.2f %12.2f %7.1fx %12.2f %7d %7d %6d %5.1f%%\n" e.name
        e.jobs e.exact_ms b.b_exact_ms e.speedup e.float_ms
        e.solver.S.exact_probes e.solver.S.graph_builds
        e.solver.S.warm_updates (100.0 *. e.fast_hit_rate))
    r.instances;
  add "online heuristic: %.2f ms (baseline %.2f ms)\n" r.online_ms
    r.online_baseline_ms;
  add "sweep bench: %d jobs, sequential %.2f s, %d-domain %.2f s (%.2fx), \
       deterministic: %b\n"
    r.sweep.sweep_jobs r.sweep.seq_s r.sweep.sweep_domains r.sweep.par_s
    r.sweep.par_speedup r.sweep.deterministic;
  add "warm/cold results identical: %b; baseline s* identical: %b\n"
    r.all_cold_warm_match r.all_baseline_match;
  Buffer.contents buf
