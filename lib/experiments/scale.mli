(** Large-n scale experiment: events/sec of the priority schedulers as
    the workload grows (n ∈ 10²…10⁶ by default, 10⁷ by request).

    Each (n, scheduler) cell is one shardable sweep job: it regenerates
    the pinned instance of ≈ n jobs (a pure function of [(seed, n)], so
    every scheduler at a given n sees the same instance in whichever
    domain the cell lands), times the flat zero-allocation scheduler in
    its benchmarking posture (no schedule recording) — the headline
    events/s — and reports minor-heap words allocated per event from the
    engine's [sim.minor_words] counter.  Up to [legacy_cap] it also runs
    the flat path with recording on, the incremental heap path, and the
    legacy resort-from-scratch oracle on the same instance, recording a
    speedup and an identity bit (metrics, segment list and completion
    vector compared structurally across all four runs).  The report's
    [identical] conjunction is the differential gate CI enforces. *)

type legacy_run = {
  l_wall_s : float;
  l_events_per_s : float;
  l_speedup : float;    (** legacy wall / flat wall *)
  l_identical : bool;   (** flat (both modes) = incremental = resort *)
}

type entry = {
  n_target : int;
  scheduler : string;
  jobs : int;           (** realized job count (Poisson draw around n) *)
  events : int;
  replans : int;
  wall_s : float;
  events_per_s : float;
  mw_per_event : float; (** minor-heap words allocated per event during
                            the headline run (0 in steady state; the
                            residue is run setup amortized over the
                            events) *)
  legacy : legacy_run option;  (** [None] above [legacy_cap] *)
}

type report = {
  seed : int;
  domains : int;
  sizes : int list;
  legacy_cap : int;
  repeats : int;        (** timed headline runs per cell (min-of-N wall) *)
  entries : entry list;
  identical : bool;     (** conjunction over every legacy comparison *)
}

val panel_names : string list
(** The five priority rules: FCFS, SPT, SRPT, SWPT, SWRPT. *)

val default_sizes : int list
(** [[100; 1_000; 10_000; 100_000; 1_000_000]]. *)

val default_legacy_cap : int
(** [10_000] — the largest n the O(n log n)-per-event oracle is run at. *)

val run :
  ?sizes:int list ->
  ?legacy_cap:int ->
  ?schedulers:string list ->
  ?repeats:int ->
  ?pool:Gripps_parallel.Pool.t ->
  ?progress:(int -> int -> unit) ->
  seed:int ->
  unit ->
  report
(** [schedulers] filters {!panel_names} (unknown names are ignored);
    [pool] shards cells across domains (default sequential) — entries
    come back in (size-major, panel-minor) order either way.
    [repeats] (default 1, clamped to at least 1) times the headline run
    that many times and keeps the {e minimum} wall clock — the standard
    answer to run-to-run scheduling noise on a contended box; events,
    minor-words and the legacy comparison come from the first run (they
    are deterministic, so repetition adds nothing). *)

val failing_cells : report -> (int * string) list
(** The (n, scheduler) cells whose legacy comparison was not identical
    (empty iff [report.identical]). *)

val render : report -> string
val to_json : report -> string
val write_json : path:string -> report -> unit
