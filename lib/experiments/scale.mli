(** Large-n scale experiment: events/sec of the priority schedulers as
    the workload grows (n ∈ 10²…10⁵ by default).

    Each (n, scheduler) cell is one shardable sweep job: it regenerates
    the pinned instance of ≈ n jobs (a pure function of [(seed, n)], so
    every scheduler at a given n sees the same instance in whichever
    domain the cell lands), times the incremental heap-backed scheduler,
    and — up to [legacy_cap] — also times the legacy
    resort-from-scratch oracle on the same instance, recording both a
    speedup and an identity bit (metrics, segment list and completion
    vector compared structurally).  The report's [identical] conjunction
    is the differential gate CI greps for in the JSON artifact. *)

type legacy_run = {
  l_wall_s : float;
  l_events_per_s : float;
  l_speedup : float;    (** legacy wall / incremental wall *)
  l_identical : bool;   (** metrics, segments, completions all equal *)
}

type entry = {
  n_target : int;
  scheduler : string;
  jobs : int;           (** realized job count (Poisson draw around n) *)
  events : int;
  replans : int;
  wall_s : float;
  events_per_s : float;
  legacy : legacy_run option;  (** [None] above [legacy_cap] *)
}

type report = {
  seed : int;
  domains : int;
  sizes : int list;
  legacy_cap : int;
  entries : entry list;
  identical : bool;     (** conjunction over every legacy comparison *)
}

val panel_names : string list
(** The five priority rules: FCFS, SPT, SRPT, SWPT, SWRPT. *)

val default_sizes : int list
(** [[100; 1_000; 10_000; 100_000]]. *)

val default_legacy_cap : int
(** [10_000] — the largest n the O(n log n)-per-event oracle is run at. *)

val run :
  ?sizes:int list ->
  ?legacy_cap:int ->
  ?schedulers:string list ->
  ?pool:Gripps_parallel.Pool.t ->
  ?progress:(int -> int -> unit) ->
  seed:int ->
  unit ->
  report
(** [schedulers] filters {!panel_names} (unknown names are ignored);
    [pool] shards cells across domains (default sequential) — entries
    come back in (size-major, panel-minor) order either way. *)

val render : report -> string
val to_json : report -> string
val write_json : path:string -> report -> unit
