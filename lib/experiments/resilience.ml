open Gripps_model
open Gripps_engine
module W = Gripps_workload

(* Default heuristic panel for the resilience sweep: the cheap list
   schedulers, the greedy baselines, and the LP-driven Online variants
   (which exercise the replan-on-failure path).  Offline and Bender98 are
   left out by default — their cost is the subject of the overhead study,
   not this one — but callers may pass any panel. *)
let default_panel =
  let wanted = [ "Online"; "Online-EGDF"; "SWRPT"; "SRPT"; "MCT-Div"; "MCT" ] in
  let panel =
    Sched_registry.(
      schedulers (select (fun e -> List.mem e.name wanted && is_clairvoyant e)))
  in
  assert (List.length panel = List.length wanted);
  panel

type cell = {
  scheduler : string;
  mtbf : float;  (* [infinity] marks the fault-free baseline *)
  mean_max_stretch : float;
  mean_sum_stretch : float;
  mean_lost : float;
  degradation : float;
}

type sweep = {
  config : W.Config.t;
  loss : Fault.loss;
  mttr : float;
  mtbf_grid : float list;
  instances : int;
  cells : cell list;
}

let total_lost (r : Sim.report) = Array.fold_left ( +. ) 0.0 r.Sim.lost

let run ?(schedulers = default_panel) ?(loss = Fault.Crash)
    ?(mtbf_grid = [ 3600.0; 900.0; 300.0 ]) ?(mttr = 60.0) ?pool ~seed ~instances
    config =
  if instances <= 0 then invalid_arg "Resilience.run: non-positive instances";
  List.iter
    (fun m -> if not (m > 0.0) then invalid_arg "Resilience.run: non-positive mtbf")
    mtbf_grid;
  (* levels.(0) is the fault-free baseline. *)
  let levels = Array.of_list (infinity :: mtbf_grid) in
  let nlevels = Array.length levels in
  (* One shard per instance: the job replays instance [k] across every
     fault level and scheduler and returns its samples tagged with the
     level index, in the traversal order of the old nested loops.  All
     randomness is arithmetic on [(seed, k, i)], so shards are
     order-free. *)
  let instance_job k =
    let rng = Gripps_rng.Splitmix.create (seed + (1_000_003 * k)) in
    let inst = W.Generator.instance rng config in
    let machines = Platform.num_machines (Instance.platform inst) in
    let samples = ref [] in
    Array.iteri
      (fun i mtbf ->
        (* The same instance faces every fault level; each level draws its
           trace from its own derived stream so adding levels never
           perturbs the others. *)
        let faults =
          if mtbf = infinity then []
          else
            Fault.poisson
              (Gripps_rng.Splitmix.create (seed + (1_000_003 * k) + (7919 * i)))
              ~mtbf ~mttr ~machines ~until:config.W.Config.horizon
        in
        List.iter
          (fun s ->
            let report = Sim.run_report ~horizon:1e9 ~faults ~loss s inst in
            let m = report.Sim.metrics in
            samples :=
              (i, s.Sim.name,
               (m.Metrics.max_stretch, m.Metrics.sum_stretch, total_lost report))
              :: !samples)
          schedulers)
      levels;
    List.rev !samples
  in
  let per_instance =
    Gripps_parallel.Sweep.run ?pool
      (Gripps_parallel.Sweep.make ~length:instances instance_job)
  in
  (* acc.(level) binds scheduler name -> (max, sum, lost) samples.  The
     fold visits instances in ascending [k] and prepends, reproducing the
     sequential accumulator (and hence every mean's float summation
     order) exactly. *)
  let acc = Array.init nlevels (fun _ -> Hashtbl.create 8) in
  List.iter
    (List.iter (fun (i, name, sample) ->
         let samples = Option.value ~default:[] (Hashtbl.find_opt acc.(i) name) in
         Hashtbl.replace acc.(i) name (sample :: samples)))
    per_instance;
  let mean_of select name table =
    match Hashtbl.find_opt table name with
    | None | Some [] -> nan
    | Some samples -> Stats.mean (List.map select samples)
  in
  let cells =
    List.concat_map
      (fun (s : Sim.scheduler) ->
        let name = s.Sim.name in
        let baseline_max = mean_of (fun (m, _, _) -> m) name acc.(0) in
        List.init nlevels (fun i ->
            let mean_max = mean_of (fun (m, _, _) -> m) name acc.(i) in
            { scheduler = name;
              mtbf = levels.(i);
              mean_max_stretch = mean_max;
              mean_sum_stretch = mean_of (fun (_, s, _) -> s) name acc.(i);
              mean_lost = mean_of (fun (_, _, l) -> l) name acc.(i);
              degradation =
                (if baseline_max > 0.0 then mean_max /. baseline_max else 1.0) }))
      schedulers
  in
  { config; loss; mttr; mtbf_grid; instances; cells }

let render sweep =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Resilience sweep: %s\n" (W.Config.describe sweep.config));
  Buffer.add_string buf
    (Printf.sprintf "loss = %s, mttr = %.0f s, %d instance%s per level\n\n"
       (match sweep.loss with Fault.Crash -> "crash" | Fault.Pause -> "pause")
       sweep.mttr sweep.instances
       (if sweep.instances > 1 then "s" else ""));
  let levels = infinity :: sweep.mtbf_grid in
  let level_label mtbf =
    if mtbf = infinity then "no faults" else Printf.sprintf "mtbf %.0fs" mtbf
  in
  (* Header: one column group (max-stretch, degradation, lost MB) per
     fault level; the baseline shows only the max-stretch. *)
  Buffer.add_string buf (Printf.sprintf "%-14s" "Scheduler");
  List.iter
    (fun mtbf ->
      if mtbf = infinity then
        Buffer.add_string buf (Printf.sprintf " | %10s" (level_label mtbf))
      else Buffer.add_string buf (Printf.sprintf " | %24s" (level_label mtbf)))
    levels;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%-14s" "");
  List.iter
    (fun mtbf ->
      if mtbf = infinity then Buffer.add_string buf (Printf.sprintf " | %10s" "S_max")
      else
        Buffer.add_string buf
          (Printf.sprintf " | %8s %6s %8s" "S_max" "degr" "lost MB"))
    levels;
  Buffer.add_char buf '\n';
  let schedulers =
    List.sort_uniq compare (List.map (fun c -> c.scheduler) sweep.cells)
  in
  (* Preserve first-appearance order rather than alphabetical. *)
  let schedulers =
    List.filter
      (fun n -> List.mem n schedulers)
      (List.fold_left
         (fun seen c -> if List.mem c.scheduler seen then seen else seen @ [ c.scheduler ])
         [] sweep.cells)
  in
  List.iter
    (fun name ->
      Buffer.add_string buf (Printf.sprintf "%-14s" name);
      List.iter
        (fun mtbf ->
          match
            List.find_opt
              (fun c -> c.scheduler = name && c.mtbf = mtbf)
              sweep.cells
          with
          | None -> Buffer.add_string buf (Printf.sprintf " | %24s" "-")
          | Some c ->
            if mtbf = infinity then
              Buffer.add_string buf (Printf.sprintf " | %10.3f" c.mean_max_stretch)
            else
              Buffer.add_string buf
                (Printf.sprintf " | %8.3f %5.2fx %8.1f" c.mean_max_stretch
                   c.degradation c.mean_lost))
        levels;
      Buffer.add_char buf '\n')
    schedulers;
  Buffer.contents buf
