(** Fixed-width text rendering of tables and figure series, matching the
    layout of the paper's tables. *)

val table : Tables.table -> string
(** The paper's layout: one heuristic per row, Max-stretch and Sum-stretch
    column groups with Mean / SD / Max. *)

val objective_table : Tables.objective_table -> string
(** The objective-parameterized layout: one scheduler per row with its
    information model, one Mean / SD / Max column group per objective;
    cells without samples render as dashes. *)

val figure3a : Figures.sample list -> string
val figure3b : Figures.sample list -> string

val overhead : Overhead.entry list -> string
(** The §5.3 scheduling-overhead comparison: per-scheduler wall time plus
    solver counters (probes, flow builds/warm updates, augmenting paths,
    rational fast-path hit rate). *)

val overhead_scaling : Overhead.scaling_sample list -> string
