open Gripps_model
open Gripps_engine
module W = Gripps_workload
module Obs = Gripps_obs.Obs
module J = Obs.Journal

type scenario = {
  sc_name : string;
  description : string;
  scheduler : string;
  seed : int;
  config : W.Config.t;
  fault_mtbf : float option;
}

let scenarios =
  let small = W.Config.make ~sites:3 ~databases:3 ~availability:0.6 ~density:1.0 in
  [ { sc_name = "offline-exact";
      description = "exact rational offline optimum on a 3-cluster workload";
      scheduler = "Offline"; seed = 13; config = small ~horizon:30.0 ();
      fault_mtbf = None };
    { sc_name = "online-lp";
      description = "on-line LP heuristic replanning at every event";
      scheduler = "Online"; seed = 42; config = small ~horizon:30.0 ();
      fault_mtbf = None };
    { sc_name = "online-faults";
      description = "on-line LP heuristic under Poisson machine failures";
      scheduler = "Online"; seed = 42; config = small ~horizon:30.0 ();
      fault_mtbf = Some 15.0 } ]

let find name = List.find_opt (fun s -> s.sc_name = name) scenarios

let instance_of sc =
  W.Generator.instance (Gripps_rng.Splitmix.create sc.seed) sc.config

let faults_of sc inst =
  match sc.fault_mtbf with
  | None -> []
  | Some mtbf ->
    let machines = Platform.num_machines (Instance.platform inst) in
    Fault.poisson
      (Gripps_rng.Splitmix.create (sc.seed + 7919))
      ~mtbf ~mttr:(mtbf /. 10.0) ~machines
      ~until:sc.config.W.Config.horizon

type result = {
  scenario : scenario;
  report : Sim.report;
  spans : Obs.Span.summary list;
  counters : (string * int) list;
}

let scheduler_of sc =
  match Sched_registry.find_scheduler sc.scheduler with
  | Some s -> s
  | None -> invalid_arg ("Trace: unknown scheduler " ^ sc.scheduler)

let run ?(level = Obs.Events) sc =
  let s = scheduler_of sc in
  let inst = instance_of sc in
  let faults = faults_of sc inst in
  Obs.reset_counters ();
  Obs.Span.reset ();
  let report =
    Obs.with_level level (fun () -> Sim.run_report ~horizon:1e9 ~faults s inst)
  in
  { scenario = sc; report; spans = Obs.Span.summaries ();
    counters = Obs.counters () }

type verification = {
  v_scenario : string;
  v_events : int;
  v_roundtrip_ok : bool;
  v_metrics_match : bool;
  v_live : Metrics.t;
  v_replayed : Metrics.t;
  v_ok : bool;
}

(* Structural [compare] rather than [=]: Probe records carry NaN
   stretches for raw flow probes, and compare treats nan = nan. *)
let same_events a b = compare (a : J.event list) b = 0

let verify sc =
  let r = run ~level:Obs.Events sc in
  let journal = r.report.Sim.journal in
  let round_tripped = List.filter_map J.of_json (List.map J.to_json journal) in
  let v_roundtrip_ok = same_events journal round_tripped in
  let inst = instance_of sc in
  let replayed_schedule = Replay.schedule_of_journal inst round_tripped in
  let v_replayed = Metrics.of_schedule replayed_schedule in
  let v_live = r.report.Sim.metrics in
  let v_metrics_match = compare v_live v_replayed = 0 in
  { v_scenario = sc.sc_name;
    v_events = List.length journal;
    v_roundtrip_ok; v_metrics_match; v_live; v_replayed;
    v_ok = v_roundtrip_ok && v_metrics_match }

(* ---- rendering -------------------------------------------------------- *)

let event_histogram journal =
  let tally = Hashtbl.create 16 in
  let bump k =
    Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k))
  in
  List.iter
    (fun (e : J.event) ->
      bump
        (match e with
         | J.Run_start _ -> "run-start"
         | J.Sim_event { kind = J.Arrival; _ } -> "arrival"
         | J.Sim_event { kind = J.Completion; _ } -> "completion"
         | J.Sim_event { kind = J.Boundary; _ } -> "boundary"
         | J.Sim_event { kind = J.Failure; _ } -> "failure"
         | J.Sim_event { kind = J.Recovery; _ } -> "recovery"
         | J.Replan _ -> "replan"
         | J.Segment _ -> "segment"
         | J.Probe _ -> "probe"
         | J.Span_closed _ -> "span"
         | J.Note _ -> "note"
         | J.Run_end _ -> "run-end"))
    journal;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])

let render_result r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let sc = r.scenario in
  add "Trace scenario %s: %s\n" sc.sc_name sc.description;
  add "scheduler %s, seed %d, %s%s\n" sc.scheduler sc.seed
    (W.Config.describe sc.config)
    (match sc.fault_mtbf with
     | None -> ""
     | Some m -> Printf.sprintf ", faults mtbf %.0fs" m);
  let m = r.report.Sim.metrics in
  add "max-stretch %.6f  sum-stretch %.6f  makespan %.3f\n"
    m.Metrics.max_stretch m.Metrics.sum_stretch m.Metrics.makespan;
  add "%d events, %d replans\n" r.report.Sim.events r.report.Sim.replans;
  (match r.report.Sim.journal with
   | [] -> ()
   | journal ->
     add "journal (%d records):\n" (List.length journal);
     List.iter
       (fun (k, n) -> add "  %-12s %6d\n" k n)
       (event_histogram journal));
  (match r.spans with
   | [] -> ()
   | spans ->
     add "spans:\n";
     List.iter
       (fun (s : Obs.Span.summary) ->
         add "  %-16s %6d x %10.6f s\n" s.Obs.Span.name s.Obs.Span.count
           s.Obs.Span.total_s)
       spans);
  add "counters:\n";
  List.iter
    (fun (name, v) -> if v <> 0 then add "  %-24s %10d\n" name v)
    r.counters;
  Buffer.contents b

let render_verification v =
  Printf.sprintf
    "verify %-14s %s  (%d events; jsonl round-trip %s; live max-stretch \
     %.9f, replayed %.9f)\n"
    v.v_scenario
    (if v.v_ok then "OK" else "FAIL")
    v.v_events
    (if v.v_roundtrip_ok then "ok" else "MISMATCH")
    v.v_live.Metrics.max_stretch v.v_replayed.Metrics.max_stretch
