(** First-class named-scheduler registry.

    The paper's Table 1 portfolio used to live as two parallel lists
    ([Runner.portfolio] / [Runner.portfolio_names]); every consumer
    (runner, overhead study, resilience sweep, perf harness, CLI) kept
    its own name-matching logic on top.  This module is the single
    source of truth: one entry per scheduler, carrying its display name,
    the {!Gripps_engine.Sim.scheduler} itself, and a coarse kind used to
    select panels (e.g. "everything on-line" for the resilience sweep).

    The deprecated [Runner.portfolio] / [Runner.portfolio_names] aliases
    shipped for one release and have been removed. *)

open Gripps_engine

type kind =
  | Offline    (** clairvoyant: solves the hindsight optimum once *)
  | Online     (** re-solves an optimization problem at events *)
  | Heuristic  (** list scheduling / greedy rules, no solver *)

type entry = { name : string; scheduler : Sim.scheduler; kind : kind }

val all : entry list
(** The Table 1 portfolio, in table order: Offline, Online, Online-EDF,
    Online-EGDF, Bender98, SWRPT, SRPT, SPT, Bender02, MCT-Div, MCT. *)

val names : string list
(** Display names of {!all}, in the same order. *)

val schedulers : entry list -> Sim.scheduler list
(** Project the engine schedulers out of a panel. *)

val find : string -> entry option
(** Lookup by exact display name. *)

val find_scheduler : string -> Sim.scheduler option

val of_kind : kind -> entry list
(** The sub-panel of a given kind, in portfolio order. *)

val kind_name : kind -> string
