(** First-class named-scheduler registry.

    One entry per scheduler, carrying its display name, the
    {!Gripps_engine.Sim.scheduler} itself, a coarse kind, its
    information model ({!info}: does it see job sizes?) and the
    objective families it targets ({!caps}).  Panels are carved out of
    the single {!registry} with the predicate-based {!select};
    {!paper_panel} is the Table 1 portfolio (the clairvoyant eleven),
    and remains the default panel everywhere.

    {b Deprecation window.}  The pre-objective list-shaped accessors
    ({!all}, {!names}, {!of_kind}) are kept for one release as thin
    wrappers over {!paper_panel} / {!select}; the [nodeprecated] dune
    profile (used by CI) turns any remaining use into a build error. *)

open Gripps_engine
module Metrics = Gripps_model.Metrics

type kind =
  | Offline    (** clairvoyant: solves the hindsight optimum once *)
  | Online     (** re-solves an optimization problem at events *)
  | Heuristic  (** list scheduling / greedy / sharing rules, no solver *)

type info =
  | Clairvoyant     (** sees [W_j] on arrival (the paper's model) *)
  | Nonclairvoyant  (** size-blind: runs on {!Sim.Blind} only *)

type caps = { objectives : Metrics.objective list }
(** Representative objectives the scheduler was designed to optimize —
    matched at {!Metrics.family} granularity by {!targets}. *)

type entry = {
  name : string;
  scheduler : Sim.scheduler;
  kind : kind;
  info : info;
  caps : caps;
}

val registry : entry list
(** Every known scheduler: the Table 1 portfolio in table order
    (Offline, Online, Online-EDF, Online-EGDF, Bender98, SWRPT, SRPT,
    SPT, Bender02, MCT-Div, MCT) followed by the non-clairvoyant
    extensions (EQUI, RR). *)

val select : (entry -> bool) -> entry list
(** The sub-panel of {!registry} satisfying the predicate, in registry
    order. *)

val is_clairvoyant : entry -> bool
val is_nonclairvoyant : entry -> bool

val targets : Metrics.objective -> entry -> bool
(** Does the scheduler target this objective's {!Metrics.family}? *)

val paper_panel : entry list
(** [select is_clairvoyant]: the paper's Table 1 portfolio, the default
    panel of every experiment. *)

val panel_names : entry list -> string list
val schedulers : entry list -> Sim.scheduler list
(** Project display names / engine schedulers out of a panel. *)

val find : string -> entry option
(** Case-insensitive lookup by display name over the whole registry. *)

val find_scheduler : string -> Sim.scheduler option

val kind_name : kind -> string
val info_name : info -> string

val describe : entry -> string
(** One line: name, kind, info model, targeted objectives (the
    [--list-schedulers] format). *)

(** {1 Deprecated aliases} *)

val all : entry list
[@@deprecated "use Sched_registry.paper_panel (or select) instead"]
(** The Table 1 portfolio — now {!paper_panel}. *)

val names : string list
[@@deprecated "use Sched_registry.panel_names paper_panel instead"]
(** Display names of {!all}, in the same order. *)

val of_kind : kind -> entry list
[@@deprecated "use Sched_registry.select (fun e -> e.kind = k) instead"]
(** The clairvoyant sub-panel of a given kind, in portfolio order. *)
