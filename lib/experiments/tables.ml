module W = Gripps_workload

type row = {
  scheduler : string;
  max_stretch : Stats.summary;
  sum_stretch : Stats.summary;
}

type table = { title : string; rows : row list; instances : int }

let sweep ?(seed = 20060101) ?(instances_per_config = 3) ?configs
    ?(progress = fun _ _ -> ()) ?pool ~horizon () =
  let configs =
    match configs with
    | Some cs -> cs
    | None -> W.Config.paper_grid ~horizon ()
  in
  let configs = Array.of_list configs in
  (* One shard per (configuration, instance) pair, config-major — the
     exact order the sequential nested loops produced, and fine enough
     grain that domains stay busy across configs of uneven cost.  Each
     job's seed is arithmetic on its indices, so the sweep is a pure
     function of [seed] at any pool size. *)
  let shards = Array.length configs * instances_per_config in
  let sweep =
    Gripps_parallel.Sweep.make ~length:shards (fun s ->
        let i = s / instances_per_config and k = s mod instances_per_config in
        Runner.instance_job ~seed:(seed + (7919 * i)) configs.(i) k)
  in
  Gripps_parallel.Sweep.run ?pool ~progress sweep

let aggregate ~title results =
  let ratios = List.concat_map Runner.ratios results in
  let rows =
    List.filter_map
      (fun name ->
        let mine = List.filter (fun (r : Runner.ratio) -> r.scheduler = name) ratios in
        match mine with
        | [] -> None
        | _ ->
          Some
            { scheduler = name;
              max_stretch =
                Stats.summarize (List.map (fun (r : Runner.ratio) -> r.max_ratio) mine);
              sum_stretch =
                Stats.summarize (List.map (fun (r : Runner.ratio) -> r.sum_ratio) mine) })
      Sched_registry.names
  in
  { title; rows; instances = List.length results }

let table1 results =
  aggregate ~title:"Table 1: aggregate statistics over all configurations" results

let filter_config p results =
  List.filter (fun (r : Runner.instance_result) -> p r.config) results

let by_sites results sites =
  aggregate
    ~title:(Printf.sprintf "Aggregate statistics for configurations using %d sites" sites)
    (filter_config (fun c -> c.W.Config.sites = sites) results)

let by_density results density =
  aggregate
    ~title:
      (Printf.sprintf "Aggregate statistics for configurations with workload density %.2f"
         density)
    (filter_config (fun c -> abs_float (c.W.Config.density -. density) < 1e-9) results)

let by_databases results databases =
  aggregate
    ~title:
      (Printf.sprintf "Aggregate statistics for configurations with %d reference databases"
         databases)
    (filter_config (fun c -> c.W.Config.databases = databases) results)

let by_availability results availability =
  aggregate
    ~title:
      (Printf.sprintf
         "Aggregate statistics for configurations with database availability %.0f%%"
         (100.0 *. availability))
    (filter_config
       (fun c -> abs_float (c.W.Config.availability -. availability) < 1e-9)
       results)

let all_tables results =
  (1, table1 results)
  :: (List.mapi (fun i s -> (2 + i, by_sites results s)) [ 3; 10; 20 ]
     @ List.mapi (fun i d -> (5 + i, by_density results d)) [ 0.75; 1.0; 1.25; 1.5; 2.0; 3.0 ]
     @ List.mapi (fun i d -> (11 + i, by_databases results d)) [ 3; 10; 20 ]
     @ List.mapi (fun i a -> (14 + i, by_availability results a)) [ 0.3; 0.6; 0.9 ])
