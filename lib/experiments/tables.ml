module W = Gripps_workload
module Metrics = Gripps_model.Metrics

type row = {
  scheduler : string;
  max_stretch : Stats.summary;
  sum_stretch : Stats.summary;
}

type table = { title : string; rows : row list; instances : int }

let sweep ?(seed = 20060101) ?(instances_per_config = 3) ?configs ?schedulers
    ?objectives ?guard ?(progress = fun _ _ -> ()) ?pool ~horizon () =
  let configs =
    match configs with
    | Some cs -> cs
    | None -> W.Config.paper_grid ~horizon ()
  in
  let configs = Array.of_list configs in
  (* One shard per (configuration, instance) pair, config-major — the
     exact order the sequential nested loops produced, and fine enough
     grain that domains stay busy across configs of uneven cost.  Each
     job's seed is arithmetic on its indices, so the sweep is a pure
     function of [seed] at any pool size. *)
  let shards = Array.length configs * instances_per_config in
  let sweep =
    Gripps_parallel.Sweep.make ~length:shards (fun s ->
        let i = s / instances_per_config and k = s mod instances_per_config in
        Runner.instance_job ?schedulers ?objectives ?guard
          ~seed:(seed + (7919 * i)) configs.(i) k)
  in
  Gripps_parallel.Sweep.run ?pool ~progress sweep

let aggregate ~title results =
  let ratios = List.concat_map Runner.ratios results in
  let rows =
    List.filter_map
      (fun name ->
        let mine = List.filter (fun (r : Runner.ratio) -> r.scheduler = name) ratios in
        match mine with
        | [] -> None
        | _ ->
          Some
            { scheduler = name;
              max_stretch =
                Stats.summarize (List.map (fun (r : Runner.ratio) -> r.max_ratio) mine);
              sum_stretch =
                Stats.summarize (List.map (fun (r : Runner.ratio) -> r.sum_ratio) mine) })
      (Sched_registry.panel_names Sched_registry.paper_panel)
  in
  { title; rows; instances = List.length results }

let table1 results =
  aggregate ~title:"Table 1: aggregate statistics over all configurations" results

let filter_config p results =
  List.filter (fun (r : Runner.instance_result) -> p r.config) results

let by_sites results sites =
  aggregate
    ~title:(Printf.sprintf "Aggregate statistics for configurations using %d sites" sites)
    (filter_config (fun c -> c.W.Config.sites = sites) results)

let by_density results density =
  aggregate
    ~title:
      (Printf.sprintf "Aggregate statistics for configurations with workload density %.2f"
         density)
    (filter_config (fun c -> abs_float (c.W.Config.density -. density) < 1e-9) results)

let by_databases results databases =
  aggregate
    ~title:
      (Printf.sprintf "Aggregate statistics for configurations with %d reference databases"
         databases)
    (filter_config (fun c -> c.W.Config.databases = databases) results)

let by_availability results availability =
  aggregate
    ~title:
      (Printf.sprintf
         "Aggregate statistics for configurations with database availability %.0f%%"
         (100.0 *. availability))
    (filter_config
       (fun c -> abs_float (c.W.Config.availability -. availability) < 1e-9)
       results)

let all_tables results =
  (1, table1 results)
  :: (List.mapi (fun i s -> (2 + i, by_sites results s)) [ 3; 10; 20 ]
     @ List.mapi (fun i d -> (5 + i, by_density results d)) [ 0.75; 1.0; 1.25; 1.5; 2.0; 3.0 ]
     @ List.mapi (fun i d -> (11 + i, by_databases results d)) [ 3; 10; 20 ]
     @ List.mapi (fun i a -> (14 + i, by_availability results a)) [ 0.3; 0.6; 0.9 ])

(* ---- objective tables ------------------------------------------------- *)

type objective_column = { label : string; objective : Metrics.objective }

type objective_row = {
  o_scheduler : string;
  o_info : string;
  o_cells : Stats.summary option list;
}

type objective_table = {
  o_title : string;
  o_columns : objective_column list;
  o_rows : objective_row list;
  o_instances : int;
}

let aggregate_objectives ?(panel = Sched_registry.paper_panel) ~title ~columns
    results =
  let per_column =
    List.map
      (fun c -> List.concat_map (Runner.ratios_for c.objective) results)
      columns
  in
  let rows =
    List.filter_map
      (fun (e : Sched_registry.entry) ->
        let cells =
          List.map
            (fun ratios ->
              match
                List.filter_map
                  (fun (name, v) ->
                    if name = e.Sched_registry.name then Some v else None)
                  ratios
              with
              | [] -> None
              | vs -> Some (Stats.summarize vs))
            per_column
        in
        if List.for_all Option.is_none cells then None
        else
          Some
            { o_scheduler = e.Sched_registry.name;
              o_info = Sched_registry.info_name e.Sched_registry.info;
              o_cells = cells })
      panel
  in
  { o_title = title;
    o_columns = columns;
    o_rows = rows;
    o_instances = List.length results }

let lp_columns =
  [ { label = "p=1"; objective = Metrics.Lp_stretch 1.0 };
    { label = "p=2"; objective = Metrics.Lp_stretch 2.0 };
    { label = "p=3"; objective = Metrics.Lp_stretch 3.0 };
    { label = "p=inf"; objective = Metrics.Lp_stretch infinity } ]

let lp_objectives = List.map (fun c -> c.objective) lp_columns

let lp_table results =
  aggregate_objectives
    ~title:
      "L_p stretch sweep: per-instance ratios to the best L_p stretch, \
       p in {1, 2, 3, inf}"
    ~columns:lp_columns results

let clairvoyance_columns =
  [ { label = "max-stretch"; objective = Metrics.Max_stretch };
    { label = "sum-stretch"; objective = Metrics.Sum_stretch } ]

let clairvoyance_table results =
  aggregate_objectives ~panel:Sched_registry.registry
    ~title:
      "Clairvoyance gap: Table 1 portfolio vs the size-blind EQUI and RR"
    ~columns:clairvoyance_columns results

(* The partitioning of Tables 1-16, factored so an objective sweep can be
   sliced the same way ([all_tables] keeps its own titles verbatim). *)
let partitions : (int * string * (W.Config.t -> bool)) list =
  (1, "over all configurations", fun _ -> true)
  :: (List.mapi
        (fun i s ->
          ( 2 + i,
            Printf.sprintf "for configurations using %d sites" s,
            fun (c : W.Config.t) -> c.W.Config.sites = s ))
        [ 3; 10; 20 ]
     @ List.mapi
         (fun i d ->
           ( 5 + i,
             Printf.sprintf "for configurations with workload density %.2f" d,
             fun (c : W.Config.t) -> abs_float (c.W.Config.density -. d) < 1e-9 ))
         [ 0.75; 1.0; 1.25; 1.5; 2.0; 3.0 ]
     @ List.mapi
         (fun i d ->
           ( 11 + i,
             Printf.sprintf "for configurations with %d reference databases" d,
             fun (c : W.Config.t) -> c.W.Config.databases = d ))
         [ 3; 10; 20 ]
     @ List.mapi
         (fun i a ->
           ( 14 + i,
             Printf.sprintf "for configurations with database availability %.0f%%"
               (100.0 *. a),
             fun (c : W.Config.t) ->
               abs_float (c.W.Config.availability -. a) < 1e-9 ))
         [ 0.3; 0.6; 0.9 ])

let objective_tables ?panel ~columns results =
  let labels = String.concat ", " (List.map (fun c -> c.label) columns) in
  List.map
    (fun (n, part, p) ->
      ( n,
        aggregate_objectives ?panel ~columns
          ~title:(Printf.sprintf "Table %d (%s): ratios to best %s" n labels part)
          (filter_config p results) ))
    partitions
