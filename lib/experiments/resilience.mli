(** Resilience study: how much each heuristic's service degrades as the
    machine failure rate grows.

    Every fault level replays the {e same} instances (same seed-derived
    workload streams) under a level-specific failure trace, so the columns
    of the rendered table are directly comparable: the degradation factor
    is mean max-stretch at the level divided by the scheduler's own
    fault-free mean.  Crash semantics additionally report the mean work
    destroyed by failures ({!Gripps_engine.Sim.report} lost array). *)

open Gripps_engine
module W = Gripps_workload

val default_panel : Sim.scheduler list
(** Online, Online-EGDF, SWRPT, SRPT, MCT-Div, MCT. *)

type cell = {
  scheduler : string;
  mtbf : float;               (** [infinity] marks the fault-free baseline *)
  mean_max_stretch : float;
  mean_sum_stretch : float;
  mean_lost : float;          (** mean total work destroyed, MB (0 under pause) *)
  degradation : float;        (** mean max-stretch / fault-free mean max-stretch *)
}

type sweep = {
  config : W.Config.t;
  loss : Fault.loss;
  mttr : float;
  mtbf_grid : float list;
  instances : int;
  cells : cell list;
}

val run :
  ?schedulers:Sim.scheduler list ->
  ?loss:Fault.loss ->
  ?mtbf_grid:float list ->
  ?mttr:float ->
  ?pool:Gripps_parallel.Pool.t ->
  seed:int ->
  instances:int ->
  W.Config.t ->
  sweep
(** Defaults: {!default_panel}, crash losses, mtbf grid
    [3600; 900; 300] s, mttr 60 s.  Deterministic for a fixed seed —
    including across pool sizes: [pool] (default sequential) shards by
    instance and the per-level sample lists are merged back in instance
    order, so every mean is bit-identical to the sequential run.
    @raise Invalid_argument on non-positive [instances] or mtbf values. *)

val render : sweep -> string
(** Fixed-width degradation table, one heuristic per row and one column
    group per fault level. *)
