open Gripps_model
open Gripps_engine
open Gripps_core
module W = Gripps_workload
module Obs = Gripps_obs.Obs

type measurement = {
  scheduler : string;
  max_stretch : float;
  sum_stretch : float;
  objectives : (Metrics.objective * float) list;
  wall_time : float;
  solver_time : float;
  solver : Stretch_solver.stats;
}

type instance_result = {
  config : W.Config.t;
  num_jobs : int;
  measurements : measurement list;
}

(* Timing wants span data (that is where solver seconds come from), so a
   run measured at the default Counters level is temporarily promoted to
   Spans; an ambient Events level is left alone so traced runs still
   journal. *)
let with_spans f =
  let l = Obs.level () in
  Obs.with_level (if l = Obs.Counters then Obs.Spans else l) f

let run_instance ?(bender98_max_sites = 3) ?(bender98_max_jobs = 60)
    ?(schedulers = Sched_registry.schedulers Sched_registry.paper_panel)
    ?(objectives = []) ?(faults = []) ?(loss = Fault.Crash) ?(guard = 1e9)
    config inst =
  let measurements =
    List.filter_map
      (fun s ->
        if
          s.Sim.name = "Bender98"
          && (config.W.Config.sites > bender98_max_sites
              || Instance.num_jobs inst > bender98_max_jobs)
        then None
        else begin
          Stretch_solver.reset_stats ();
          with_spans @@ fun () ->
          let solver0 = Obs.Span.total_prefix "solver." in
          let t0 = Unix.gettimeofday () in
          (* An over-tight guard is a data problem (the run cannot deliver
             complete metrics), not a usage error: surface it as the same
             typed [Metrics.Incomplete] every metrics consumer already
             maps to exit 3, naming the first job left pending. *)
          let report =
            try Sim.run_report ~horizon:guard ~faults ~loss s inst
            with Sim.Horizon_exceeded { pending; _ } as e ->
              (match pending with
              | j :: _ -> raise (Metrics.Incomplete j)
              | [] -> raise e)
          in
          let m = report.Sim.metrics in
          let wall_time = Unix.gettimeofday () -. t0 in
          let solver_time = Obs.Span.total_prefix "solver." -. solver0 in
          let solver = Stretch_solver.stats () in
          let objective_values =
            match objectives with
            | [] -> []
            | objs ->
              let completion =
                Array.init (Instance.num_jobs inst) (fun j ->
                    match report.Sim.schedule.Schedule.completion.(j) with
                    | Some c -> c
                    | None -> raise (Metrics.Incomplete j))
              in
              List.map (fun o -> (o, Metrics.eval o inst ~completion)) objs
          in
          Some
            { scheduler = s.Sim.name;
              max_stretch = m.Metrics.max_stretch;
              sum_stretch = m.Metrics.sum_stretch;
              objectives = objective_values;
              wall_time;
              solver_time;
              solver }
        end)
      schedulers
  in
  { config; num_jobs = Instance.num_jobs inst; measurements }

let value (m : measurement) = function
  | Metrics.Max_stretch -> Some m.max_stretch
  | Metrics.Sum_stretch -> Some m.sum_stretch
  | o -> List.assoc_opt o m.objectives

type ratio = { scheduler : string; max_ratio : float; sum_ratio : float }

let ratios r =
  match r.measurements with
  | [] -> []
  | ms ->
    let best f = List.fold_left (fun acc m -> Float.min acc (f m)) infinity ms in
    let best_max = best (fun m -> m.max_stretch) in
    let best_sum = best (fun m -> m.sum_stretch) in
    (* Degenerate single-job instances can have zero stretch spread; guard
       divisions so ratios stay meaningful. *)
    let div a b = if b > 0.0 then a /. b else 1.0 in
    List.map
      (fun (m : measurement) ->
        { scheduler = m.scheduler;
          max_ratio = div m.max_stretch best_max;
          sum_ratio = div m.sum_stretch best_sum })
      ms

let ratios_for obj r =
  let vals =
    List.filter_map
      (fun (m : measurement) ->
        Option.map (fun v -> (m.scheduler, v)) (value m obj))
      r.measurements
  in
  match vals with
  | [] -> []
  | _ ->
    let best = List.fold_left (fun acc (_, v) -> Float.min acc v) infinity vals in
    let div a b = if b > 0.0 then a /. b else 1.0 in
    List.map (fun (s, v) -> (s, div v best)) vals

let instance_job ?bender98_max_sites ?bender98_max_jobs ?schedulers ?objectives
    ?guard ~seed config k =
  (* One independent stream per instance, derived from the index alone:
     results do not shift when the instance count changes, and shard [k]
     of a parallel sweep replays identically wherever it runs. *)
  let rng = Gripps_rng.Splitmix.create (seed + (1_000_003 * k)) in
  let inst = W.Generator.instance rng config in
  (* Fault draws continue the same stream, after the workload draws. *)
  let faults =
    W.Generator.fault_trace rng config
      ~machines:(Platform.num_machines (Instance.platform inst))
  in
  let loss =
    match config.W.Config.faults with
    | Some f -> f.W.Config.loss
    | None -> Fault.Crash
  in
  run_instance ?bender98_max_sites ?bender98_max_jobs ?schedulers ?objectives
    ?guard ~faults ~loss config inst

let config_sweep ?bender98_max_sites ?bender98_max_jobs ?schedulers ?objectives
    ?guard ~seed ~instances config =
  Gripps_parallel.Sweep.make ~length:instances
    (instance_job ?bender98_max_sites ?bender98_max_jobs ?schedulers ?objectives
       ?guard ~seed config)

let run_config ?bender98_max_sites ?bender98_max_jobs ?schedulers ?objectives
    ?guard ?pool ~seed ~instances config =
  Gripps_parallel.Sweep.run ?pool
    (config_sweep ?bender98_max_sites ?bender98_max_jobs ?schedulers ?objectives
       ?guard ~seed ~instances config)
