let hline width = String.make width '-'

let table (t : Tables.table) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "%s\n" t.title;
  add "(%d instances per row; ratios to the best observed value)\n" t.instances;
  let width = 14 + (2 * 27) in
  add "%s\n" (hline width);
  add "%-14s| %-25s | %-25s\n" "" "Max-stretch" "Sum-stretch";
  add "%-14s| %8s %8s %8s | %8s %8s %8s\n" "Scheduler" "Mean" "SD" "Max" "Mean" "SD" "Max";
  add "%s\n" (hline width);
  List.iter
    (fun (r : Tables.row) ->
      add "%-14s| %8.4f %8.4f %8.4f | %8.4f %8.4f %8.4f\n" r.scheduler
        r.max_stretch.Stats.mean r.max_stretch.Stats.sd r.max_stretch.Stats.max
        r.sum_stretch.Stats.mean r.sum_stretch.Stats.sd r.sum_stretch.Stats.max)
    t.rows;
  add "%s\n" (hline width);
  Buffer.contents b

let objective_table (t : Tables.objective_table) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "%s\n" t.Tables.o_title;
  add "(%d instances per row; ratios to the best observed value)\n"
    t.Tables.o_instances;
  let ncols = List.length t.Tables.o_columns in
  let width = 14 + 2 + 15 + (29 * ncols) in
  add "%s\n" (hline width);
  add "%-14s| %-15s" "" "";
  List.iter
    (fun (c : Tables.objective_column) -> add " | %26s" c.Tables.label)
    t.Tables.o_columns;
  add "\n%-14s| %-15s" "Scheduler" "Info";
  List.iter (fun _ -> add " | %8s %8s %8s" "Mean" "SD" "Max") t.Tables.o_columns;
  add "\n%s\n" (hline width);
  List.iter
    (fun (r : Tables.objective_row) ->
      add "%-14s| %-15s" r.Tables.o_scheduler r.Tables.o_info;
      List.iter
        (function
          | None -> add " | %8s %8s %8s" "-" "-" "-"
          | Some (s : Stats.summary) ->
            add " | %8.4f %8.4f %8.4f" s.Stats.mean s.Stats.sd s.Stats.max)
        r.Tables.o_cells;
      add "\n")
    t.Tables.o_rows;
  add "%s\n" (hline width);
  Buffer.contents b

let figure3a samples =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "Figure 3(a): max-stretch degradation from optimal (%%) vs workload density\n";
  add "%10s %24s %24s\n" "density" "non-optimized (%)" "optimized (%)";
  List.iter
    (fun (s : Figures.sample) ->
      add "%10.4f %24.4f %24.4f\n" s.density s.non_optimized_degradation
        s.optimized_degradation)
    samples;
  Buffer.contents b

let figure3b samples =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "Figure 3(b): sum-stretch gain of the optimized on-line heuristic (%%)\n";
  add "%10s %24s\n" "density" "relative gain (%)";
  List.iter
    (fun (s : Figures.sample) -> add "%10.4f %24.4f\n" s.density s.sum_stretch_gain)
    samples;
  Buffer.contents b

let overhead entries =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "Scheduling overhead (wall time per simulated workload, seconds)\n";
  add "%-14s %10s %10s %10s %10s %8s %7s %6s %8s %6s\n" "Scheduler" "Mean" "SD"
    "Max" "Solver" "probes" "builds" "warm" "augment" "hit%";
  List.iter
    (fun (e : Overhead.entry) ->
      let s = e.wall in
      let c = e.solver in
      let module S = Gripps_core.Stretch_solver in
      let hits = c.S.rat_fast_hits and falls = c.S.rat_fast_falls in
      let hit_pct =
        if hits + falls = 0 then 100.0
        else 100.0 *. float_of_int hits /. float_of_int (hits + falls)
      in
      add "%-14s %10.4f %10.4f %10.4f %10.4f %8d %7d %6d %8d %5.1f%%\n" e.scheduler
        s.Stats.mean s.Stats.sd s.Stats.max e.solver_wall.Stats.mean
        (c.S.exact_probes + c.S.float_probes)
        c.S.graph_builds c.S.warm_updates c.S.augmenting_paths hit_pct)
    entries;
  Buffer.contents b

let overhead_scaling samples =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "Scheduling overhead vs workload size (3-cluster platform, seconds)\n";
  add "%8s %12s %12s %12s\n" "jobs" "Offline" "Online" "Bender98";
  List.iter
    (fun (s : Overhead.scaling_sample) ->
      add "%8d %12.3f %12.3f %12.3f\n" s.jobs s.offline_s s.online_s s.bender98_s)
    samples;
  Buffer.contents b
