(** A motif-comparison request (paper §2.2).

    A job [J_j] arrives at its release date [r_j], must scan [W_j] Mflop
    worth of a given protein databank, and may be split arbitrarily across
    the machines hosting that databank (divisible load, negligible
    communication).

    Jobs additionally carry a [user] tag (default 0): the paper's
    motivation is multi-user fairness on a shared cluster, and the
    per-user objectives ({!Metrics.Per_user_max_stretch}) aggregate
    stretches by this tag.  Single-user workloads leave every tag at 0. *)

type t = {
  id : int;           (** position in the instance, 0-based *)
  release : float;    (** release date [r_j], seconds *)
  size : float;       (** amount of work [W_j], Mflop *)
  databank : int;     (** index of the databank the motif is compared to *)
  user : int;         (** submitting user, 0-based (default 0) *)
}

val make : id:int -> release:float -> size:float -> databank:int -> t
(** The job belongs to user 0; tag it with {!with_user} if needed.
    @raise Invalid_argument on negative release, non-positive size or
    negative databank index. *)

val with_user : t -> int -> t
(** [with_user j u] is [j] resubmitted by user [u].
    @raise Invalid_argument on a negative user index. *)

val stretch_weight : t -> float
(** The paper's weight [w_j = 1 / W_j] (§3.1): the stretch of a job is its
    flow time multiplied by this weight. *)

val compare_by_release : t -> t -> int
(** Release date order, ties by id — the order in which an on-line
    scheduler discovers jobs. *)

val pp : Format.formatter -> t -> unit
