(** A scheduling problem instance: a platform plus a flow of requests.

    Jobs are stored sorted by release date (the paper numbers jobs by
    increasing release dates, §2.2). *)

type t

val make : platform:Platform.t -> jobs:Job.t list -> t
(** Sorts the jobs by release date and renumbers their [id] fields to the
    sorted positions.
    @raise Invalid_argument when a job references a databank absent from
    every machine (it could never run) or out of range. *)

val platform : t -> Platform.t
val jobs : t -> Job.t array
val num_jobs : t -> int
val job : t -> int -> Job.t

val num_users : t -> int
(** [1 + max user tag] — the size of the array a per-user aggregate needs.
    Always at least 1 (an empty or untagged instance has one user). *)

val delta : t -> float
(** The paper's Δ: ratio of the largest to the smallest job size. *)

val ideal_time : t -> int -> float
(** [ideal_time inst j]: time job [j] would take alone, using every
    machine hosting its databank at full speed — the lower bound on its
    flow time. *)

val pp : Format.formatter -> t -> unit
