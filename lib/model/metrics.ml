type objective =
  | Makespan
  | Max_flow
  | Sum_flow
  | Max_stretch
  | Sum_stretch
  | Lp_flow of float
  | Lp_stretch of float
  | Per_user_max_stretch

type family = Stretch | Flow | Completion_time

exception Incomplete of int

let () =
  Printexc.register_printer (function
    | Incomplete j -> Some (Printf.sprintf "Metrics.Incomplete(job %d)" j)
    | _ -> None)

type t = {
  makespan : float;
  max_flow : float;
  sum_flow : float;
  max_stretch : float;
  sum_stretch : float;
}

let flow inst ~completion j =
  let job = Instance.job inst j in
  let f = completion.(j) -. job.Job.release in
  if f < -1e-6 then invalid_arg "Metrics.flow: completion before release";
  Float.max f 0.0

let stretch inst ~completion j =
  flow inst ~completion j *. Job.stretch_weight (Instance.job inst j)

let slowdown inst ~completion j =
  flow inst ~completion j /. Instance.ideal_time inst j

let family = function
  | Makespan -> Completion_time
  | Max_flow | Sum_flow | Lp_flow _ -> Flow
  | Max_stretch | Sum_stretch | Lp_stretch _ | Per_user_max_stretch -> Stretch

let objective_name = function
  | Makespan -> "makespan"
  | Max_flow -> "max-flow"
  | Sum_flow -> "sum-flow"
  | Max_stretch -> "max-stretch"
  | Sum_stretch -> "sum-stretch"
  | Per_user_max_stretch -> "user-max-stretch"
  | Lp_stretch p ->
    if p = infinity then "linf-stretch" else Printf.sprintf "l%g-stretch" p
  | Lp_flow p ->
    if p = infinity then "linf-flow" else Printf.sprintf "l%g-flow" p

let objective_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let parse_p prefix =
    let n = String.length prefix in
    if String.length s > n && String.starts_with ~prefix s then
      match String.sub s n (String.length s - n) with
      | "inf" -> Some infinity
      | num ->
        (match float_of_string_opt num with
         | Some p when p >= 1.0 && not (Float.is_nan p) -> Some p
         | _ -> None)
    else None
  in
  match s with
  | "makespan" -> Some Makespan
  | "max" | "max-stretch" -> Some Max_stretch
  | "sum" | "sum-stretch" -> Some Sum_stretch
  | "max-flow" -> Some Max_flow
  | "sum-flow" -> Some Sum_flow
  | "user" | "user-max-stretch" -> Some Per_user_max_stretch
  | _ ->
    (match parse_p "fp" with
     | Some p -> Some (Lp_flow p)
     | None ->
       (match parse_p "p" with
        | Some p -> Some (Lp_stretch p)
        | None -> None))

(* The per-field loops below reproduce the historical [of_completion]
   accumulators exactly: ascending job id, [Float.max] / [(+.)] from 0.0.
   Splitting the old single five-accumulator loop into one loop per field
   changes no summation order, so every derived field is bit-identical.

   The loops are hand-monomorphized — one concrete loop per (aggregate,
   value) pair calling the [@inline] helpers below directly — instead of
   taking the per-job value as a closure.  Without flambda an indirect
   call boxes its float result, which would cost O(jobs) minor words per
   [of_completion] and break the record:false simulation epilogue's
   zero-allocation budget (bench/main.exe objectives gates on it). *)

let[@inline] flow_v inst completion j =
  let job = Instance.job inst j in
  let f = completion.(j) -. job.Job.release in
  if f < -1e-6 then invalid_arg "Metrics.flow: completion before release";
  Float.max f 0.0

let[@inline] stretch_v inst completion j =
  flow_v inst completion j *. Job.stretch_weight (Instance.job inst j)

let max_completion inst completion =
  let n = Instance.num_jobs inst in
  let acc = ref 0.0 in
  for j = 0 to n - 1 do
    acc := Float.max !acc completion.(j)
  done;
  !acc

let max_flow_of inst completion =
  let n = Instance.num_jobs inst in
  let acc = ref 0.0 in
  for j = 0 to n - 1 do
    acc := Float.max !acc (flow_v inst completion j)
  done;
  !acc

let sum_flow_of inst completion =
  let n = Instance.num_jobs inst in
  let acc = ref 0.0 in
  for j = 0 to n - 1 do
    acc := !acc +. flow_v inst completion j
  done;
  !acc

let max_stretch_of inst completion =
  let n = Instance.num_jobs inst in
  let acc = ref 0.0 in
  for j = 0 to n - 1 do
    acc := Float.max !acc (stretch_v inst completion j)
  done;
  !acc

let sum_stretch_of inst completion =
  let n = Instance.num_jobs inst in
  let acc = ref 0.0 in
  for j = 0 to n - 1 do
    acc := !acc +. stretch_v inst completion j
  done;
  !acc

(* ℓ_p norm of the per-job values, max-normalized: M · (Σ (v_j/M)^p)^(1/p).
   Dividing by the max keeps every power in [0, 1], so the sum never
   overflows even for large p, and the result is exact at the limits:
   monotone non-increasing in p, equal to the max at p = ∞ (up to the
   n^(1/p) factor bounding the gap). *)
let lp_flow_of inst completion p =
  let m = max_flow_of inst completion in
  if m <= 0.0 then 0.0
  else begin
    let n = Instance.num_jobs inst in
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. ((flow_v inst completion j /. m) ** p)
    done;
    m *. (!acc ** (1.0 /. p))
  end

let lp_stretch_of inst completion p =
  let m = max_stretch_of inst completion in
  if m <= 0.0 then 0.0
  else begin
    let n = Instance.num_jobs inst in
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. ((stretch_v inst completion j /. m) ** p)
    done;
    m *. (!acc ** (1.0 /. p))
  end

let check_p ctx p =
  if Float.is_nan p || p < 1.0 then
    invalid_arg (Printf.sprintf "Metrics.eval: %s order must be >= 1" ctx)

let eval obj inst ~completion =
  match obj with
  | Makespan -> max_completion inst completion
  | Max_flow -> max_flow_of inst completion
  | Sum_flow -> sum_flow_of inst completion
  | Max_stretch -> max_stretch_of inst completion
  | Sum_stretch -> sum_stretch_of inst completion
  | Lp_flow p ->
    check_p "Lp_flow" p;
    if p = infinity then max_flow_of inst completion
    else if p = 1.0 then sum_flow_of inst completion
    else lp_flow_of inst completion p
  | Lp_stretch p ->
    check_p "Lp_stretch" p;
    if p = infinity then max_stretch_of inst completion
    else if p = 1.0 then sum_stretch_of inst completion
    else lp_stretch_of inst completion p
  | Per_user_max_stretch ->
    let acc = Array.make (Instance.num_users inst) 0.0 in
    let n = Instance.num_jobs inst in
    for j = 0 to n - 1 do
      let u = (Instance.job inst j).Job.user in
      acc.(u) <- acc.(u) +. stretch_v inst completion j
    done;
    Array.fold_left Float.max 0.0 acc

let of_completion inst ~completion =
  { makespan = eval Makespan inst ~completion;
    max_flow = eval Max_flow inst ~completion;
    sum_flow = eval Sum_flow inst ~completion;
    max_stretch = eval Max_stretch inst ~completion;
    sum_stretch = eval Sum_stretch inst ~completion }

let of_schedule (sched : Schedule.t) =
  let inst = sched.Schedule.instance in
  let completion =
    Array.init (Instance.num_jobs inst) (fun j ->
        match sched.Schedule.completion.(j) with
        | Some c -> c
        | None -> raise (Incomplete j))
  in
  of_completion inst ~completion

let pp fmt m =
  Format.fprintf fmt
    "makespan=%.4g max_flow=%.4g sum_flow=%.4g max_stretch=%.4g sum_stretch=%.4g"
    m.makespan m.max_flow m.sum_flow m.max_stretch m.sum_stretch
