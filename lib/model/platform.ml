type t = {
  machines : Machine.t array;
  num_databanks : int;
  hosts_by_db : Machine.t list array;  (* cached reverse index *)
}

let make ~machines ~num_databanks =
  if machines = [] then invalid_arg "Platform.make: no machines";
  if num_databanks <= 0 then invalid_arg "Platform.make: no databanks";
  List.iteri
    (fun i (m : Machine.t) ->
      if m.id <> i then invalid_arg "Platform.make: machine ids must be 0..m-1";
      if Array.length m.databanks <> num_databanks then
        invalid_arg "Platform.make: databank vector length mismatch")
    machines;
  let machines = Array.of_list machines in
  let hosts_by_db =
    Array.init num_databanks (fun d ->
        Array.to_list machines |> List.filter (fun m -> Machine.hosts m d))
  in
  { machines; num_databanks; hosts_by_db }

let machines p = p.machines
let num_machines p = Array.length p.machines
let num_databanks p = p.num_databanks
let machine p i = p.machines.(i)

let total_speed p =
  Array.fold_left (fun acc (m : Machine.t) -> acc +. m.speed) 0.0 p.machines

let hosts_of p d =
  if d < 0 || d >= p.num_databanks then invalid_arg "Platform.hosts_of: bad databank";
  p.hosts_by_db.(d)

let speed_for p d =
  List.fold_left (fun acc (m : Machine.t) -> acc +. m.speed) 0.0 (hosts_of p d)

let can_run _p (j : Job.t) m = Machine.hosts m j.databank

let available_at p i t = Machine.available_at p.machines.(i) t

let speed_at p t =
  Array.fold_left
    (fun acc (m : Machine.t) ->
      if Machine.available_at m t then acc +. m.speed else acc)
    0.0 p.machines

let has_downtime p =
  Array.exists (fun (m : Machine.t) -> m.downtime <> []) p.machines

let with_downtime p windows =
  let machines =
    Array.to_list p.machines
    |> List.map (fun (m : Machine.t) ->
           match List.assoc_opt m.id windows with
           | Some ivs -> Machine.with_downtime m ivs
           | None -> m)
  in
  List.iter
    (fun (mid, _) ->
      if mid < 0 || mid >= Array.length p.machines then
        invalid_arg "Platform.with_downtime: unknown machine")
    windows;
  make ~machines ~num_databanks:p.num_databanks

let uniform ~speeds =
  let machines =
    List.mapi (fun i s -> Machine.make ~id:i ~speed:s ~databanks:[| true |]) speeds
  in
  make ~machines ~num_databanks:1

let single ~speed = uniform ~speeds:[ speed ]

let pp fmt p =
  Format.fprintf fmt "@[<v>platform (%d machines, %d databanks)@," (num_machines p)
    p.num_databanks;
  Array.iter (fun m -> Format.fprintf fmt "  %a@," Machine.pp m) p.machines;
  Format.fprintf fmt "@]"
