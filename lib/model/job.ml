type t = { id : int; release : float; size : float; databank : int; user : int }

let make ~id ~release ~size ~databank =
  if release < 0.0 then invalid_arg "Job.make: negative release date";
  if size <= 0.0 then invalid_arg "Job.make: non-positive size";
  if databank < 0 then invalid_arg "Job.make: negative databank index";
  { id; release; size; databank; user = 0 }

let with_user j user =
  if user < 0 then invalid_arg "Job.with_user: negative user index";
  { j with user }

let stretch_weight j = 1.0 /. j.size

let compare_by_release a b =
  match Float.compare a.release b.release with
  | 0 -> Int.compare a.id b.id
  | c -> c

let pp fmt j =
  if j.user = 0 then
    Format.fprintf fmt "J%d[r=%g, W=%g, db=%d]" j.id j.release j.size j.databank
  else
    Format.fprintf fmt "J%d[r=%g, W=%g, db=%d, u=%d]" j.id j.release j.size
      j.databank j.user
