type t = { platform : Platform.t; jobs : Job.t array }

let make ~platform ~jobs =
  let sorted = List.sort Job.compare_by_release jobs in
  let jobs =
    Array.of_list
      (List.mapi
         (fun i (j : Job.t) ->
           if j.databank < 0 || j.databank >= Platform.num_databanks platform then
             invalid_arg "Instance.make: job databank out of range";
           if Platform.hosts_of platform j.databank = [] then
             invalid_arg "Instance.make: job databank hosted nowhere";
           { j with id = i })
         sorted)
  in
  { platform; jobs }

let platform t = t.platform
let jobs t = t.jobs
let num_jobs t = Array.length t.jobs
let job t i = t.jobs.(i)

let num_users t =
  1 + Array.fold_left (fun acc (j : Job.t) -> Int.max acc j.user) 0 t.jobs

let delta t =
  if Array.length t.jobs = 0 then 1.0
  else begin
    let sizes = Array.map (fun (j : Job.t) -> j.size) t.jobs in
    let lo = Array.fold_left Float.min sizes.(0) sizes in
    let hi = Array.fold_left Float.max sizes.(0) sizes in
    hi /. lo
  end

let ideal_time t i =
  let j = t.jobs.(i) in
  j.size /. Platform.speed_for t.platform j.databank

let pp fmt t =
  Format.fprintf fmt "@[<v>%a%d jobs:@," Platform.pp t.platform (num_jobs t);
  Array.iter (fun j -> Format.fprintf fmt "  %a@," Job.pp j) t.jobs;
  Format.fprintf fmt "@]"
