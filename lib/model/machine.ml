type t = {
  id : int;
  speed : float;
  databanks : bool array;
  downtime : (float * float) list;
}

let check_downtime downtime =
  let rec go last = function
    | [] -> ()
    | (s, e) :: rest ->
      if e <= s then invalid_arg "Machine: empty downtime interval";
      if s < last then invalid_arg "Machine: downtime intervals overlap or unsorted";
      go e rest
  in
  go neg_infinity downtime

let make ~id ~speed ~databanks =
  if speed <= 0.0 then invalid_arg "Machine.make: non-positive speed";
  { id; speed; databanks = Array.copy databanks; downtime = [] }

let with_downtime m downtime =
  check_downtime downtime;
  { m with downtime }

let hosts m d = d >= 0 && d < Array.length m.databanks && m.databanks.(d)

let available_at m t =
  not (List.exists (fun (s, e) -> s <= t && t < e) m.downtime)

let pp fmt m =
  let dbs =
    Array.to_list m.databanks
    |> List.mapi (fun i present -> if present then Some i else None)
    |> List.filter_map Fun.id
    |> List.map string_of_int
    |> String.concat ","
  in
  let down =
    match m.downtime with
    | [] -> ""
    | ivs ->
      ", down:"
      ^ String.concat ";" (List.map (fun (s, e) -> Printf.sprintf "[%g,%g)" s e) ivs)
  in
  Format.fprintf fmt "M%d[speed=%g, dbs={%s}%s]" m.id m.speed dbs down
