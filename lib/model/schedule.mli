(** Realized fluid schedules.

    A schedule is a sequence of time segments; within a segment each
    machine divides its time between jobs in fixed proportions (shares).
    This fluid view is fully general for the divisible model: any divisible
    schedule is piecewise constant between events, and time-multiplexing
    within a segment realizes fractional shares at no cost (preemption is
    free, §2.1). *)

type segment = {
  start_time : float;
  end_time : float;
  shares : (int * (int * float) list) list;
      (** [(machine, [(job, share); ...])]: share ∈ (0, 1] of the machine's
          time devoted to each job during the segment *)
}

type t = {
  instance : Instance.t;
  segments : segment list;            (** chronological *)
  completion : float option array;    (** [completion.(j)] = C_j, if finished *)
}

val make :
  instance:Instance.t ->
  segments:segment list ->
  completion:float option array ->
  t

(** Amortized O(1) segment accumulator for the simulator's hot loop —
    appends in chronological order without the [seg :: acc] / final
    [List.rev] churn of the list encoding. *)
module Builder : sig
  type builder

  val create : unit -> builder
  val length : builder -> int

  val add : builder -> segment -> unit
  (** Append a segment (amortized O(1)). *)

  val segments : builder -> segment list
  (** The accumulated segments in append order. *)
end

(** {1 Validation}

    [validate] checks the divisible-model invariants and returns a list of
    human-readable violations (empty = valid):
    - segments are chronological and non-degenerate;
    - per-machine shares are positive and sum to at most 1;
    - a job only runs on machines hosting its databank;
    - a job never runs before its release date;
    - every completed job received exactly its size in work (within
      tolerance), and no job received more;
    - completion times are consistent with the last segment in which the
      job ran. *)

val validate : t -> string list

val work_received : t -> int -> float
(** Total Mflop delivered to a job across all segments. *)

val machine_busy_time : t -> int -> float
(** Total busy time of a machine across all segments. *)

val completion_exn : t -> int -> float
(** @raise Failure when the job did not complete. *)

val all_completed : t -> bool
val pp : Format.formatter -> t -> unit
