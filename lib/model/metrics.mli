(** Scheduling objectives (paper §3), as a first-class algebra.

    An {!objective} names a scalar function of the completion-time vector;
    {!eval} is the single entry point every consumer (runner, tables,
    resilience, CLI) goes through.  The classic record {!t} survives as
    five derived accessors computed through {!eval}, bit-identical to the
    historical single-loop implementation.

    All functions take the completion times produced by a schedule and
    require every job to be completed.

    The stretch uses the paper's definition (§3.1): weighted flow with
    [w_j = 1/W_j].  The alternative {!slowdown}, normalized by each job's
    ideal time on its own machine set, is also provided — it is
    dimensionless and lower-bounded by 1, convenient for display — but all
    optimization and all reported tables use the paper's [S_j]. *)

(** The objective family.  [Lp_stretch p] is the ℓ_p norm of the stretch
    vector (Moseley–Pruhs–Stein): [(Σ_j S_j^p)^(1/p)], interpolating
    sum-stretch ([p = 1], exactly) and max-stretch ([p = ∞], exactly);
    computed max-normalized so large [p] cannot overflow.  [Lp_flow] is
    the same norm of the flow times.  [Per_user_max_stretch] is the
    fairness objective: the worst per-user aggregate, [max_u Σ_{j∈u} S_j]
    over the jobs' {!Job.t.user} tags — with a single user it degenerates
    to [Sum_stretch]. *)
type objective =
  | Makespan                (** [max_j C_j] *)
  | Max_flow                (** [max_j (C_j - r_j)] *)
  | Sum_flow                (** [Σ_j (C_j - r_j)] *)
  | Max_stretch             (** [max_j S_j] *)
  | Sum_stretch             (** [Σ_j S_j] *)
  | Lp_flow of float        (** ℓ_p norm of flows, [p ∈ [1, ∞]] *)
  | Lp_stretch of float     (** ℓ_p norm of stretches, [p ∈ [1, ∞]] *)
  | Per_user_max_stretch    (** [max_u Σ_{j : user j = u} S_j] *)

(** Which per-job quantity an objective aggregates — the granularity at
    which scheduler capabilities ({!Sched_registry}) are declared. *)
type family = Stretch | Flow | Completion_time

val family : objective -> family

exception Incomplete of int
(** Raised by {!of_schedule} when the job with this id has no completion
    date — a typed replacement for the old bare [Failure]. *)

type t = {
  makespan : float;
  max_flow : float;
  sum_flow : float;
  max_stretch : float;
  sum_stretch : float;
}

val eval : objective -> Instance.t -> completion:float array -> float
(** Evaluate one objective on a completion-time vector.  For the five
    record fields this is bit-identical to the historical accumulators
    (same traversal order, same float operations); [Lp_stretch 1.] is
    computed by the very same loop as [Sum_stretch], and [Lp_stretch
    infinity] by the [Max_stretch] loop, so those identities are exact.
    @raise Invalid_argument on an [Lp_*] order below 1 or NaN, or when
    some completion precedes its release beyond tolerance. *)

val objective_name : objective -> string
(** Stable display name ("max-stretch", "l2-stretch", "user-max-stretch",
    ...). *)

val objective_of_string : string -> objective option
(** Case-insensitive parser for CLI spellings: ["p1"]/["p2"]/["p2.5"]/
    ["pinf"] (ℓ_p stretch), ["fp2"]/["fpinf"] (ℓ_p flow), ["max"],
    ["sum"], ["max-flow"], ["sum-flow"], ["makespan"], ["user"], and the
    {!objective_name} spellings. *)

val flow : Instance.t -> completion:float array -> int -> float
(** [C_j - r_j].  @raise Invalid_argument if negative beyond tolerance. *)

val stretch : Instance.t -> completion:float array -> int -> float
(** [S_j = (C_j - r_j) / W_j]. *)

val slowdown : Instance.t -> completion:float array -> int -> float
(** [(C_j - r_j) / ideal_time j >= 1]. *)

val of_completion : Instance.t -> completion:float array -> t
(** The five classic fields, each via {!eval}. *)

val of_schedule : Schedule.t -> t
(** @raise Incomplete when some job did not complete. *)

val pp : Format.formatter -> t -> unit
