(** A sequence-comparison server (paper §2).

    One machine models one cluster site: co-located identical processors
    sharing the same databank replicas are exactly equivalent, under the
    divisible model, to a single machine with their aggregate speed.

    The paper's platform never fails; the production extension attaches
    {e downtime intervals} — half-open [(start, stop)) windows during
    which the machine is unavailable.  The engine turns them into
    failure/recovery events (see {!Gripps_engine} [Fault]); the model layer
    only stores and queries them. *)

type t = {
  id : int;
  speed : float;          (** Mflop/s; the paper's [1/p_i] *)
  databanks : bool array; (** [databanks.(d)] = replica of databank [d] present *)
  downtime : (float * float) list;
      (** sorted, disjoint half-open [(start, stop)) unavailability windows *)
}

val make : id:int -> speed:float -> databanks:bool array -> t
(** No downtime; attach it with {!with_downtime}.
    @raise Invalid_argument on non-positive speed. *)

val with_downtime : t -> (float * float) list -> t
(** A copy of the machine with the given unavailability windows.
    @raise Invalid_argument when intervals are empty, unsorted, or
    overlapping. *)

val hosts : t -> int -> bool
(** [hosts m d] is true when databank [d] is replicated on [m]; a job
    needing [d] can only run there (restricted availability, §2.1). *)

val available_at : t -> float -> bool
(** Is the machine up at date [t] according to its downtime intervals?
    (Half-open: a machine is down at the start of a window and up again at
    its end.) *)

val pp : Format.formatter -> t -> unit
