type segment = {
  start_time : float;
  end_time : float;
  shares : (int * (int * float) list) list;
}

type t = {
  instance : Instance.t;
  segments : segment list;
  completion : float option array;
}

let make ~instance ~segments ~completion = { instance; segments; completion }

module Builder = struct
  (* Growable array of segments in append order: the engine's hot loop
     pushes one segment per event without the [seg :: acc] + final
     [List.rev] churn of the list encoding. *)
  type builder = {
    mutable data : segment array;
    mutable len : int;
  }

  let dummy = { start_time = 0.0; end_time = 0.0; shares = [] }
  let create () = { data = [||]; len = 0 }
  let length b = b.len

  let add b seg =
    let cap = Array.length b.data in
    if b.len = cap then begin
      let ncap = if cap = 0 then 16 else 2 * cap in
      let nd = Array.make ncap dummy in
      Array.blit b.data 0 nd 0 b.len;
      b.data <- nd
    end;
    b.data.(b.len) <- seg;
    b.len <- b.len + 1

  let segments b = List.init b.len (fun i -> b.data.(i))
end

let rel_eps = 1e-6

let work_received t j =
  let platform = Instance.platform t.instance in
  List.fold_left
    (fun acc seg ->
      let dt = seg.end_time -. seg.start_time in
      List.fold_left
        (fun acc (mid, shares) ->
          let speed = (Platform.machine platform mid).Machine.speed in
          List.fold_left
            (fun acc (jid, share) ->
              if jid = j then acc +. (share *. speed *. dt) else acc)
            acc shares)
        acc seg.shares)
    0.0 t.segments

let machine_busy_time t m =
  List.fold_left
    (fun acc seg ->
      let dt = seg.end_time -. seg.start_time in
      List.fold_left
        (fun acc (mid, shares) ->
          if mid = m then
            acc +. (dt *. List.fold_left (fun s (_, share) -> s +. share) 0.0 shares)
          else acc)
        acc seg.shares)
    0.0 t.segments

let completion_exn t j =
  match t.completion.(j) with
  | Some c -> c
  | None -> failwith (Printf.sprintf "Schedule.completion_exn: job %d unfinished" j)

let all_completed t = Array.for_all Option.is_some t.completion

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let platform = Instance.platform t.instance in
  let nj = Instance.num_jobs t.instance in
  (* Chronology. *)
  let rec chrono prev = function
    | [] -> ()
    | seg :: rest ->
      if seg.end_time < seg.start_time -. 1e-12 then
        err "segment [%g, %g] reversed" seg.start_time seg.end_time;
      if seg.start_time < prev -. 1e-9 then
        err "segment at %g overlaps previous ending at %g" seg.start_time prev;
      chrono seg.end_time rest
  in
  chrono neg_infinity t.segments;
  (* Per-segment share and placement constraints. *)
  List.iter
    (fun seg ->
      List.iter
        (fun (mid, shares) ->
          if mid < 0 || mid >= Platform.num_machines platform then
            err "segment references machine %d out of range" mid
          else begin
            let total = List.fold_left (fun s (_, share) -> s +. share) 0.0 shares in
            if total > 1.0 +. rel_eps then
              err "machine %d oversubscribed (%g) in segment [%g, %g]" mid total
                seg.start_time seg.end_time;
            List.iter
              (fun (jid, share) ->
                if share <= 0.0 then
                  err "non-positive share %g for job %d on machine %d" share jid mid;
                if jid < 0 || jid >= nj then
                  err "segment references job %d out of range" jid
                else begin
                  let j = Instance.job t.instance jid in
                  if not (Machine.hosts (Platform.machine platform mid) j.databank)
                  then
                    err "job %d runs on machine %d lacking databank %d" jid mid
                      j.databank;
                  if seg.start_time < j.release -. 1e-9 then
                    err "job %d runs at %g before release %g" jid seg.start_time
                      j.release
                end)
              shares
          end)
        seg.shares)
    t.segments;
  (* Work accounting and completion consistency. *)
  for jid = 0 to nj - 1 do
    let j = Instance.job t.instance jid in
    let w = work_received t jid in
    (match t.completion.(jid) with
     | Some c ->
       if abs_float (w -. j.size) > rel_eps *. j.size +. 1e-9 then
         err "job %d completed but received %g of %g Mflop" jid w j.size;
       if c < j.release then err "job %d completes at %g before release %g" jid c j.release;
       (* The job must not run after its recorded completion. *)
       List.iter
         (fun seg ->
           if seg.start_time > c +. 1e-9 then
             List.iter
               (fun (_, shares) ->
                 if List.mem_assoc jid shares then
                   err "job %d runs after its completion %g" jid c)
               seg.shares)
         t.segments
     | None ->
       if w > j.size +. (rel_eps *. j.size) +. 1e-9 then
         err "job %d unfinished yet received %g > %g Mflop" jid w j.size)
  done;
  List.rev !errors

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule (%d segments)@," (List.length t.segments);
  List.iter
    (fun seg ->
      Format.fprintf fmt "  [%8.3f, %8.3f]:" seg.start_time seg.end_time;
      List.iter
        (fun (mid, shares) ->
          Format.fprintf fmt " M%d{" mid;
          List.iter (fun (jid, share) -> Format.fprintf fmt "J%d:%.2f " jid share) shares;
          Format.fprintf fmt "}")
        seg.shares;
      Format.fprintf fmt "@,")
    t.segments;
  Format.fprintf fmt "@]"
