(** A heterogeneous collection of databank servers. *)

type t

val make : machines:Machine.t list -> num_databanks:int -> t
(** @raise Invalid_argument when empty, when machine ids are not
    [0 .. m-1] in order, or when a machine's databank vector has the wrong
    length. *)

val machines : t -> Machine.t array
val num_machines : t -> int
val num_databanks : t -> int
val machine : t -> int -> Machine.t

val total_speed : t -> float
(** Aggregate speed of every machine — the equivalent-processor speed of
    Lemma 1 when availability is unrestricted. *)

val hosts_of : t -> int -> Machine.t list
(** Machines holding a replica of the given databank. *)

val speed_for : t -> int -> float
(** Aggregate speed of the machines holding the given databank: the peak
    processing rate of a job needing it. *)

val can_run : t -> Job.t -> Machine.t -> bool

(** {1 Availability}

    Queries over the machines' downtime intervals (see
    {!Machine.with_downtime}). *)

val available_at : t -> int -> float -> bool
(** Is machine [i] up at date [t]? *)

val speed_at : t -> float -> float
(** Aggregate speed of the machines up at date [t]. *)

val has_downtime : t -> bool

val with_downtime : t -> (int * (float * float) list) list -> t
(** A copy of the platform with downtime windows attached to the listed
    machines (others keep theirs).
    @raise Invalid_argument on an unknown machine id or malformed
    windows. *)

val uniform : speeds:float list -> t
(** Platform with a single databank replicated everywhere — the uniform
    (unrestricted) setting of Lemma 1. *)

val single : speed:float -> t
(** One machine, one databank: the uni-processor model of §4. *)

val pp : Format.formatter -> t -> unit
